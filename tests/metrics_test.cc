#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "metrics/error_metric.h"

namespace dcrm::metrics {
namespace {

TEST(VectorDiff, IdenticalIsZero) {
  const std::vector<float> a{1, 2, 3};
  EXPECT_EQ(VectorDiffFraction(a, a), 0.0);
  EXPECT_EQ(VectorDiffFractionRel(a, a, 1e-6, 1e-6), 0.0);
}

TEST(VectorDiff, CountsDifferingElements) {
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{1, 9, 3, 9};
  EXPECT_DOUBLE_EQ(VectorDiffFraction(a, b), 0.5);
}

TEST(VectorDiff, ToleranceMasksSmallDeviations) {
  const std::vector<float> a{100.0f, 200.0f};
  const std::vector<float> b{100.0001f, 200.1f};
  // rel 1e-5 masks the 1e-4 deviation on 100 but not 0.1 on 200.
  EXPECT_DOUBLE_EQ(VectorDiffFractionRel(a, b, 1e-5, 1e-9), 0.5);
  // A tight tolerance flags both.
  EXPECT_DOUBLE_EQ(VectorDiffFractionRel(a, b, 1e-8, 1e-9), 1.0);
  // A loose tolerance masks both.
  EXPECT_DOUBLE_EQ(VectorDiffFractionRel(a, b, 1e-2, 1e-9), 0.0);
}

TEST(VectorDiff, NanCountsAsDifferent) {
  const std::vector<float> a{1.0f, 2.0f};
  const std::vector<float> b{std::nanf(""), 2.0f};
  EXPECT_DOUBLE_EQ(VectorDiffFraction(a, b), 0.5);
  EXPECT_DOUBLE_EQ(VectorDiffFractionRel(a, b, 1e-6, 1e-6), 0.5);
}

TEST(VectorDiff, SizeMismatchThrows) {
  const std::vector<float> a{1.0f};
  const std::vector<float> b{1.0f, 2.0f};
  EXPECT_THROW(VectorDiffFraction(a, b), std::invalid_argument);
}

TEST(Nrmse, IdenticalIsZero) {
  const std::vector<float> a{0, 128, 255};
  EXPECT_DOUBLE_EQ(Nrmse(a, a), 0.0);
}

TEST(Nrmse, NormalizedByRange) {
  const std::vector<float> a{0.0f, 255.0f};
  const std::vector<float> b{25.5f, 255.0f};  // rmse = 25.5/sqrt(2)
  EXPECT_NEAR(Nrmse(a, b), 25.5 / std::sqrt(2.0) / 255.0, 1e-9);
}

TEST(Nrmse, NanSaturatesToOne) {
  const std::vector<float> a{0.0f, 255.0f};
  const std::vector<float> b{std::nanf(""), 255.0f};
  EXPECT_DOUBLE_EQ(Nrmse(a, b), 1.0);
}

TEST(NrmseRendered, ClampsWildValuesToGoldenRange) {
  const std::vector<float> golden{0.0f, 255.0f, 128.0f, 64.0f};
  // One pixel blown up to 1e38: rendered comparison caps its
  // deviation at the golden dynamic range.
  const std::vector<float> obs{0.0f, 255.0f, 1e38f, 64.0f};
  const double r = NrmseRendered(golden, obs);
  EXPECT_LE(r, 0.5);  // sqrt((255-128)^2/4)/255
  EXPECT_GT(r, 0.0);
  // Raw NRMSE would saturate/explode instead.
  EXPECT_GT(Nrmse(golden, obs), r);
}

TEST(NrmseRendered, NanRendersAsBlack) {
  const std::vector<float> golden{0.0f, 255.0f};
  const std::vector<float> obs{std::nanf(""), 255.0f};
  EXPECT_NEAR(NrmseRendered(golden, obs), 0.0, 1e-9);  // NaN -> lo == golden
}

TEST(NrmseRendered, IdenticalImagesZero) {
  const std::vector<float> a{1, 2, 3, 4};
  EXPECT_EQ(NrmseRendered(a, a), 0.0);
}

TEST(Misclassification, ArgmaxFlipsCounted) {
  // Two samples, three classes.
  const std::vector<float> golden{0.1f, 0.9f, 0.0f, 0.8f, 0.1f, 0.1f};
  std::vector<float> obs = golden;
  EXPECT_DOUBLE_EQ(MisclassificationRate(golden, obs, 3), 0.0);
  obs[0] = 2.0f;  // sample 0 now classifies as class 0
  EXPECT_DOUBLE_EQ(MisclassificationRate(golden, obs, 3), 0.5);
}

TEST(Misclassification, ScoreShiftWithoutFlipIsNotMisclassification) {
  const std::vector<float> golden{0.1f, 0.9f};
  const std::vector<float> obs{0.2f, 0.95f};
  EXPECT_DOUBLE_EQ(MisclassificationRate(golden, obs, 2), 0.0);
}

TEST(Misclassification, BadLayoutThrows) {
  const std::vector<float> a{1, 2, 3};
  EXPECT_THROW(MisclassificationRate(a, a, 2), std::invalid_argument);
  EXPECT_THROW(MisclassificationRate(a, a, 0), std::invalid_argument);
}

TEST(AsFloats, ReinterpretsBytes) {
  const float v = 1.5f;
  std::vector<std::uint8_t> bytes(4);
  std::memcpy(bytes.data(), &v, 4);
  const auto floats = AsFloats(bytes);
  ASSERT_EQ(floats.size(), 1u);
  EXPECT_FLOAT_EQ(floats[0], 1.5f);
  std::vector<std::uint8_t> bad(3);
  EXPECT_THROW(AsFloats(bad), std::invalid_argument);
}

}  // namespace
}  // namespace dcrm::metrics
