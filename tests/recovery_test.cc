#include <gtest/gtest.h>

#include "apps/driver.h"
#include "apps/registry.h"
#include "core/recovery.h"
#include "fault/campaign.h"

namespace dcrm::fault {
namespace {

class BicgRecovery : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
    profile_ = std::make_unique<apps::ProfileResult>(
        apps::ProfileApp(*app_, sim::GpuConfig{}));
  }
  Addr RBase() const {
    const auto& sp = profile_->dev->space();
    return sp.Object(*sp.FindByName("r")).base;
  }
  // The seed suite's canonical fault: flips a high mantissa bit of
  // r[0], kSdc unprotected and kDetected under plain detect-only.
  static mem::StuckAtFault FaultAt(Addr a) {
    return {.byte_addr = a, .bit = 6, .stuck_value = true};
  }
  std::unique_ptr<apps::App> app_;
  std::unique_ptr<apps::ProfileResult> profile_;
};

TEST_F(BicgRecovery, ArbitrationRecoversPrimaryFault) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  c.EnableRecovery({.enabled = true});
  EXPECT_EQ(c.RunOnce({FaultAt(RBase() + 3)}), Outcome::kRecovered);
  const auto& s = c.recovery()->stats();
  EXPECT_GE(s.arbitrations, 1u);
  EXPECT_EQ(s.retries, 0u);  // Tier 0 settled it in place
}

TEST_F(BicgRecovery, ArbitrationRepairsFaultyReplica) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  c.EnableRecovery({.enabled = true});
  const auto* range = c.plan().Lookup(RBase());
  ASSERT_NE(range, nullptr);
  const Outcome o =
      c.RunOnce({FaultAt(range->ReplicaAddr(0, RBase() + 3))});
  EXPECT_EQ(o, Outcome::kRecovered);
  EXPECT_GE(c.recovery()->stats().arbitrations, 1u);
  EXPECT_EQ(c.recovery()->stats().retries, 0u);
}

TEST_F(BicgRecovery, RetirementAndRetryRecoverDetection) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  core::RecoveryConfig rc;
  rc.enabled = true;
  rc.arbitrate = false;  // force the Tier-1 path
  c.EnableRecovery(rc);
  EXPECT_EQ(c.RunOnce({FaultAt(RBase() + 3)}), Outcome::kRecovered);
  const auto& s = c.recovery()->stats();
  EXPECT_EQ(s.retries, 1u);
  EXPECT_GE(s.retired_blocks, 1u);
  EXPECT_EQ(s.backoff_units, 1u);  // 2^0 for the first attempt
  EXPECT_GE(c.recovery()->spare_blocks_used(), 1u);
}

TEST_F(BicgRecovery, ExhaustedBudgetSurfacesDetected) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  core::RecoveryConfig rc;
  rc.enabled = true;
  rc.arbitrate = false;
  rc.retire = false;  // nothing changes between attempts: always fails
  rc.max_retries = 2;
  c.EnableRecovery(rc);
  EXPECT_EQ(c.RunOnce({FaultAt(RBase() + 3)}), Outcome::kDetected);
  const auto& s = c.recovery()->stats();
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.backoff_units, 3u);  // 2^0 + 2^1
  EXPECT_EQ(s.exhausted_runs, 1u);
}

TEST_F(BicgRecovery, ZeroRetryBudgetKeepsPaperBehaviour) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  core::RecoveryConfig rc;
  rc.enabled = true;
  rc.arbitrate = false;
  rc.scrub = false;
  rc.retire = false;
  rc.max_retries = 0;
  c.EnableRecovery(rc);
  EXPECT_EQ(c.RunOnce({FaultAt(RBase() + 3)}), Outcome::kDetected);
  EXPECT_EQ(c.recovery()->stats().retries, 0u);
}

TEST_F(BicgRecovery, RepeatOffenderEscalatesToVote) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  core::RecoveryConfig rc;
  rc.enabled = true;
  rc.arbitrate = false;
  rc.retire = false;
  rc.max_retries = 1;
  rc.escalate_threshold = 2;
  c.EnableRecovery(rc);
  const auto f = FaultAt(RBase() + 3);
  // Trial 1 exhausts its budget and records two offense events against
  // r. RunOnce itself must not escalate — that is campaign-lifetime
  // state, owned by the ledger and applied only at explicit epoch
  // boundaries — so an identical trial 2 still detects. Once the
  // engine merges the events and applies the ledger, r is escalated to
  // a majority vote, which corrects the fault without re-execution.
  EXPECT_EQ(c.RunOnce({f}), Outcome::kDetected);
  EXPECT_EQ(c.recovery()->trial_offenses().size(), 2u);
  c.ledger().Merge(c.recovery()->trial_offenses());
  EXPECT_EQ(c.RunOnce({f}), Outcome::kDetected);
  EXPECT_EQ(c.recovery()->stats().escalations, 0u);
  EXPECT_EQ(c.ApplyEscalations(), 1u);
  EXPECT_EQ(c.RunOnce({f}), Outcome::kRecovered);
  EXPECT_GE(c.recovery()->stats().escalations, 1u);
}

TEST_F(BicgRecovery, TrialOffensesResetPerTrialAndLeaveLedgerAlone) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  core::RecoveryConfig rc;
  rc.enabled = true;
  rc.arbitrate = false;
  rc.retire = false;
  rc.max_retries = 0;
  c.EnableRecovery(rc);
  EXPECT_EQ(c.RunOnce({FaultAt(RBase() + 3)}), Outcome::kDetected);
  EXPECT_FALSE(c.recovery()->trial_offenses().empty());
  // Per-trial state: a clean trial starts from zero offense events.
  EXPECT_EQ(c.RunOnce({}), Outcome::kMasked);
  EXPECT_TRUE(c.recovery()->trial_offenses().empty());
  // Campaign-lifetime state: RunOnce never wrote to the ledger.
  EXPECT_TRUE(c.ledger().counts().empty());
}

TEST_F(BicgRecovery, CleanRunStaysMaskedWithRecoveryEnabled) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  c.EnableRecovery({.enabled = true});
  EXPECT_EQ(c.RunOnce({}), Outcome::kMasked);
  EXPECT_EQ(c.recovery()->stats().retries, 0u);
  EXPECT_EQ(c.recovery()->stats().arbitrations, 0u);
}

TEST_F(BicgRecovery, CampaignConvertsDetectionsToRecoveries) {
  CampaignConfig cfg;
  cfg.target = Target::kHotBlocks;
  cfg.faulty_blocks = 1;
  cfg.bits_per_block = 4;
  cfg.runs = 40;
  cfg.seed = 5;

  FaultCampaign off(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  const auto base = off.Run(cfg);
  ASSERT_GT(base.detected, 0u);

  cfg.recovery.enabled = true;
  cfg.recovery.max_retries = 2;
  FaultCampaign on(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  const auto rec = on.Run(cfg);

  EXPECT_EQ(rec.runs, base.runs);
  EXPECT_LE(rec.sdc, base.sdc);  // recovery must not create new SDCs
  EXPECT_LT(rec.detected, base.detected);
  // Strict majority of the former detections convert to kRecovered.
  EXPECT_GT(rec.recovered, base.detected / 2);
  EXPECT_GT(rec.recovery.scrubs + rec.recovery.arbitrations +
                rec.recovery.retries,
            0u);
}

TEST_F(BicgRecovery, CampaignCountsIncludeRecovered) {
  CampaignConfig cfg;
  cfg.target = Target::kHotBlocks;
  cfg.faulty_blocks = 1;
  cfg.bits_per_block = 4;
  cfg.runs = 20;
  cfg.seed = 11;
  cfg.recovery.enabled = true;
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  const auto counts = c.Run(cfg);
  EXPECT_EQ(counts.masked + counts.sdc + counts.detected + counts.due +
                counts.crash + counts.recovered,
            counts.runs);
}

TEST(ChargeRecoveryTest, CostArithmetic) {
  sim::GpuConfig cfg;
  core::RecoveryStats s;
  s.scrubs = 3;
  s.retired_blocks = 2;
  s.retries = 1;
  s.backoff_units = 5;
  const auto c = core::ChargeRecovery(s, 10, 1000, cfg);
  const double dram =
      static_cast<double>(cfg.t_rcd + cfg.t_cl + cfg.burst_cycles);
  EXPECT_DOUBLE_EQ(c.scrub_cycles, 3 * 2.0 * dram);
  EXPECT_DOUBLE_EQ(c.retire_cycles, 2 * (2.0 * dram + cfg.t_rp));
  EXPECT_DOUBLE_EQ(c.reexec_cycles, 1000.0);
  EXPECT_DOUBLE_EQ(c.backoff_cycles, 5.0 * cfg.recovery_backoff_cycles);
  EXPECT_DOUBLE_EQ(c.total_cycles, c.scrub_cycles + c.retire_cycles +
                                       c.reexec_cycles + c.backoff_cycles);
  EXPECT_DOUBLE_EQ(c.per_run_overhead, c.total_cycles / 10000.0);
}

TEST(ChargeRecoveryTest, ZeroRunsYieldZeroOverhead) {
  const auto c = core::ChargeRecovery({}, 0, 0, sim::GpuConfig{});
  EXPECT_DOUBLE_EQ(c.total_cycles, 0.0);
  EXPECT_DOUBLE_EQ(c.per_run_overhead, 0.0);
}

}  // namespace
}  // namespace dcrm::fault
