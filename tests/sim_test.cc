#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/dram.h"
#include "sim/gpu.h"
#include "sim/interconnect.h"
#include "sim/tag_array.h"

namespace dcrm::sim {
namespace {

trace::KernelTrace MakeTrace(
    std::uint32_t ctas, std::uint32_t warps_per_cta,
    const std::function<std::vector<trace::WarpMemInst>(WarpId)>& gen) {
  trace::KernelTrace kt;
  kt.cfg.grid = {ctas, 1, 1};
  kt.cfg.block = {warps_per_cta * kWarpSize, 1, 1};
  for (std::uint32_t c = 0; c < ctas; ++c) {
    for (std::uint32_t w = 0; w < warps_per_cta; ++w) {
      trace::WarpTrace wt;
      wt.warp = c * warps_per_cta + w;
      wt.cta = c;
      wt.insts = gen(wt.warp);
      kt.warps.push_back(std::move(wt));
    }
  }
  return kt;
}

trace::WarpMemInst Load(Pc pc, std::vector<Addr> blocks) {
  return {pc, AccessType::kLoad, 32, std::move(blocks)};
}
trace::WarpMemInst Store(Pc pc, std::vector<Addr> blocks) {
  return {pc, AccessType::kStore, 32, std::move(blocks)};
}

TEST(TagArray, HitAfterFill) {
  TagArray t(4, 2);
  EXPECT_FALSE(t.Access(0));
  EXPECT_TRUE(t.Access(0));
}

TEST(TagArray, LruEviction) {
  TagArray t(1, 2);  // one set, two ways
  t.Access(0 * kBlockSize);
  t.Access(1 * kBlockSize);
  t.Access(0 * kBlockSize);          // refresh 0
  t.Access(2 * kBlockSize);          // evicts 1
  EXPECT_TRUE(t.Contains(0));
  EXPECT_FALSE(t.Contains(1 * kBlockSize));
  EXPECT_TRUE(t.Contains(2 * kBlockSize));
}

TEST(TagArray, SetsIsolate) {
  TagArray t(2, 1);
  t.Access(0);               // set 0
  t.Access(1 * kBlockSize);  // set 1
  EXPECT_TRUE(t.Contains(0));
  EXPECT_TRUE(t.Contains(1 * kBlockSize));
}

TEST(TagArray, NoAllocateProbe) {
  TagArray t(4, 2);
  EXPECT_FALSE(t.Access(0, /*allocate=*/false));
  EXPECT_FALSE(t.Contains(0));
  t.Fill(0);
  EXPECT_TRUE(t.Access(0, /*allocate=*/false));
}

TEST(TagArray, InvalidConfigThrows) {
  EXPECT_THROW(TagArray(0, 1), std::invalid_argument);
  EXPECT_THROW(TagArray(3, 1), std::invalid_argument);  // not a power of two
}

TEST(Dram, RowHitFasterThanConflict) {
  GpuConfig cfg;
  AddrMap map{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()};
  DramChannel ch(cfg, map);
  GpuStats stats;
  std::vector<MemRequest> done;

  // Two requests to the same row: the second is a row hit.
  ch.Push({1, 0, false, 0}, 0);
  std::uint64_t t = 0;
  while (done.empty()) ch.Tick(t++, done, stats);
  const std::uint64_t first = t;
  done.clear();
  ch.Push({2, 0, false, 0}, t);
  while (done.empty()) ch.Tick(t++, done, stats);
  const std::uint64_t second_latency = t - first;
  EXPECT_LT(second_latency, first);  // row hit is faster than cold row
  EXPECT_EQ(stats.dram_row_hits, 1u);
  EXPECT_EQ(stats.dram_reads, 2u);
}

TEST(Dram, FrfcfsPrefersRowHit) {
  GpuConfig cfg;
  AddrMap map{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()};
  DramChannel ch(cfg, map);
  GpuStats stats;
  std::vector<MemRequest> done;
  // Open row 0 of bank 0.
  ch.Push({1, 0, false, 0}, 0);
  std::uint64_t t = 0;
  while (done.empty()) ch.Tick(t++, done, stats);
  done.clear();
  // Queue: first an older request to a *different* row of bank 0, then
  // a younger row hit. FR-FCFS should service the row hit first.
  const Addr other_row =
      static_cast<Addr>(cfg.BlocksPerRow()) * cfg.dram_banks *
      cfg.num_partitions * kBlockSize;
  ch.Push({2, other_row, false, 0}, t);
  ch.Push({3, 0, false, 0}, t);
  while (done.empty()) ch.Tick(t++, done, stats);
  EXPECT_EQ(done[0].id, 3u);
}

TEST(Interconnect, RequestLatency) {
  GpuConfig cfg;
  Interconnect icnt(cfg);
  icnt.PushRequest({1, 0, false, 0}, /*now=*/10, /*partition=*/0);
  EXPECT_FALSE(icnt.PopRequestFor(0, 10).has_value());
  EXPECT_FALSE(icnt.PopRequestFor(0, 10 + cfg.icnt_latency - 1).has_value());
  auto r = icnt.PopRequestFor(0, 10 + cfg.icnt_latency);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->id, 1u);
  EXPECT_TRUE(icnt.Idle());
}

TEST(Interconnect, ResponsePortSerializes) {
  GpuConfig cfg;
  Interconnect icnt(cfg);
  // Two 128B responses from the same partition to SM 0: the second is
  // delayed by the port occupancy (128/32 = 4 cycles).
  icnt.PushResponse({1, 0, false, 0}, 0, 0);
  icnt.PushResponse({2, 128, false, 0}, 0, 0);
  const std::uint64_t occ = kBlockSize / cfg.icnt_resp_bytes_per_cycle;
  const std::uint64_t first_ready = occ + cfg.icnt_latency;
  EXPECT_FALSE(icnt.PopResponseFor(0, first_ready - 1).has_value());
  ASSERT_TRUE(icnt.PopResponseFor(0, first_ready).has_value());
  EXPECT_FALSE(icnt.PopResponseFor(0, first_ready).has_value());
  ASSERT_TRUE(icnt.PopResponseFor(0, first_ready + occ).has_value());
}

TEST(Gpu, EmptyTraceCompletes) {
  GpuConfig cfg;
  Gpu gpu(cfg, ProtectionPlan{});
  auto kt = MakeTrace(2, 2, [](WarpId) {
    return std::vector<trace::WarpMemInst>{};
  });
  const auto stats = gpu.Run({kt});
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_EQ(stats.mem_insts, 0u);
}

TEST(Gpu, SingleLoadGoesThroughHierarchy) {
  GpuConfig cfg;
  Gpu gpu(cfg, ProtectionPlan{});
  auto kt = MakeTrace(1, 1, [](WarpId) {
    return std::vector<trace::WarpMemInst>{Load(1, {0})};
  });
  const auto stats = gpu.Run({kt});
  EXPECT_EQ(stats.mem_insts, 1u);
  EXPECT_EQ(stats.l1_misses, 1u);
  EXPECT_EQ(stats.l2_misses, 1u);
  EXPECT_EQ(stats.dram_reads, 1u);
  // One cold miss must cost at least icnt + L2 + DRAM + return.
  EXPECT_GT(stats.cycles, 2u * cfg.icnt_latency);
}

TEST(Gpu, RepeatedLoadHitsInL1) {
  GpuConfig cfg;
  Gpu gpu(cfg, ProtectionPlan{});
  auto kt = MakeTrace(1, 1, [](WarpId) {
    std::vector<trace::WarpMemInst> v;
    for (int i = 0; i < 10; ++i) v.push_back(Load(1, {0}));
    return v;
  });
  const auto stats = gpu.Run({kt});
  EXPECT_EQ(stats.l1_misses, 1u);
  // The MLP window lets the second load issue while the first is
  // outstanding: it merges into the MSHR (pending hit); the other
  // eight hit in the filled line.
  EXPECT_EQ(stats.l1_pending_hits, 1u);
  EXPECT_EQ(stats.l1_hits, 8u);
  EXPECT_EQ(stats.dram_reads, 1u);
}

TEST(Gpu, StoresAreWriteThrough) {
  GpuConfig cfg;
  Gpu gpu(cfg, ProtectionPlan{});
  auto kt = MakeTrace(1, 1, [](WarpId) {
    return std::vector<trace::WarpMemInst>{Store(1, {0}), Store(2, {0})};
  });
  const auto stats = gpu.Run({kt});
  EXPECT_EQ(stats.dram_writes, 2u);  // no write-allocate in L2 either
  EXPECT_EQ(stats.l1_misses, 0u);    // stores don't count as load misses
}

TEST(Gpu, LatencyToleranceOverlapsWarps) {
  // 16 warps each loading a distinct cold block: with latency
  // tolerance total time must be far below 16x the single-warp time.
  GpuConfig cfg;
  auto one = MakeTrace(1, 1, [](WarpId w) {
    return std::vector<trace::WarpMemInst>{
        Load(1, {static_cast<Addr>(w) * 64 * kBlockSize})};
  });
  Gpu g1(cfg, ProtectionPlan{});
  const auto s1 = g1.Run({one});

  auto many = MakeTrace(1, 16, [](WarpId w) {
    return std::vector<trace::WarpMemInst>{
        Load(1, {static_cast<Addr>(w) * 64 * kBlockSize})};
  });
  Gpu g16(cfg, ProtectionPlan{});
  const auto s16 = g16.Run({many});
  EXPECT_LT(s16.cycles, s1.cycles * 4);
}

TEST(Gpu, DetectionDuplicatesMissesOnly) {
  GpuConfig cfg;
  ProtectionPlan plan;
  plan.scheme = Scheme::kDetectOnly;
  ProtectedRange range;
  range.base = 0;
  range.size = 4 * kBlockSize;
  range.replica_base[0] = 1000 * kBlockSize;
  plan.ranges.push_back(range);

  auto kt = MakeTrace(1, 1, [](WarpId) {
    std::vector<trace::WarpMemInst> v;
    v.push_back(Load(1, {0}));  // protected miss -> +1 replica txn
    v.push_back(Load(1, {0}));  // protected hit  -> no extra txn
    v.push_back(Load(2, {10 * kBlockSize}));  // unprotected miss
    return v;
  });
  Gpu gpu(cfg, plan);
  const auto stats = gpu.Run({kt});
  EXPECT_EQ(stats.replica_transactions, 1u);
  EXPECT_EQ(stats.l1_misses, 2u);
  EXPECT_EQ(stats.L1MissedAccesses(), 3u);
  EXPECT_EQ(stats.comparisons, 1u);
}

TEST(Gpu, CorrectionTriplicatesAndStalls) {
  GpuConfig cfg;
  ProtectionPlan detect;
  detect.scheme = Scheme::kDetectOnly;
  ProtectionPlan correct;
  correct.scheme = Scheme::kDetectCorrect;
  ProtectedRange range;
  range.base = 0;
  range.size = 64 * kBlockSize;
  range.replica_base[0] = 1000 * kBlockSize;
  range.replica_base[1] = 2000 * kBlockSize;
  detect.ranges.push_back(range);
  correct.ranges.push_back(range);

  auto gen = [](WarpId w) {
    std::vector<trace::WarpMemInst> v;
    for (int i = 0; i < 8; ++i) {
      v.push_back(
          Load(1, {static_cast<Addr>((w * 8 + i) % 64) * kBlockSize}));
    }
    return v;
  };
  auto kt = MakeTrace(2, 4, gen);

  Gpu gd(cfg, detect);
  const auto sd = gd.Run({kt});
  Gpu gc(cfg, correct);
  const auto sc = gc.Run({kt});
  EXPECT_EQ(sc.replica_transactions, 2 * sd.replica_transactions);
  // Waiting for all three copies can't be faster than lazy detection.
  EXPECT_GE(sc.cycles, sd.cycles);
}

TEST(Gpu, PlanCapacityValidated) {
  GpuConfig cfg;
  ProtectionPlan plan;
  plan.scheme = Scheme::kDetectCorrect;
  for (int i = 0; i < 17; ++i) {  // > 16 objects for two replicas
    ProtectedRange r;
    r.base = static_cast<Addr>(i) * 10 * kBlockSize;
    r.size = kBlockSize;
    plan.ranges.push_back(r);
  }
  EXPECT_THROW(Gpu(cfg, plan), std::invalid_argument);
}

}  // namespace
}  // namespace dcrm::sim
