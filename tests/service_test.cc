// Reliability-service tests (DESIGN.md §14).
//
// The property under test everywhere: a served response is
// bit-identical to the standalone `dcrm` command — whether it came off
// a cold execution, the content-addressed cache, or a coalesced
// campaign batch. The server tests drive a real Unix-domain socket
// with concurrent clients; the SIGTERM test drains a real `dcrm serve`
// subprocess (DCRM_BIN).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/driver.h"
#include "apps/registry.h"
#include "common/file_util.h"
#include "common/socket.h"
#include "common/subprocess.h"
#include "fault/parallel_campaign.h"
#include "fault/shard_coordinator.h"
#include "fault/shard_io.h"
#include "service/artifact_cache.h"
#include "service/client.h"
#include "service/handlers.h"
#include "service/proto.h"
#include "service/server.h"
#include "trace/trace_io.h"

namespace {

using namespace dcrm;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "dcrm_service_" + name;
  EnsureDir(dir);
  return dir;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

fault::ShardCampaignSpec BaseSpec(unsigned runs, std::uint64_t seed = 1) {
  fault::ShardCampaignSpec spec;
  spec.app = "P-ATAX";
  spec.scale = apps::AppScale::kTiny;
  spec.scheme = sim::Scheme::kDetectOnly;
  spec.runs = runs;
  spec.seed = seed;
  return spec;
}

service::RequestSpec CampaignReq(unsigned runs, std::uint64_t seed = 1) {
  service::RequestSpec req;
  req.type = service::RequestType::kCampaign;
  req.campaign = BaseSpec(runs, seed);
  return req;
}

struct Standalone {
  fault::CampaignCounts counts;
  std::string csv;
};

// Ground truth: the same campaign through the plain in-process engine,
// exactly as `dcrm campaign --csv` runs it.
Standalone RunStandalone(const fault::ShardCampaignSpec& spec) {
  auto app = apps::MakeApp(spec.app, spec.scale);
  const auto profile = apps::ProfileApp(*app, spec.gpu);
  unsigned cover = spec.cover.value_or(
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  if (spec.scheme == sim::Scheme::kNone) cover = 0;
  fault::CampaignSpec cs;
  cs.make_app = [&spec] { return apps::MakeApp(spec.app, spec.scale); };
  cs.profile = &profile;
  cs.scheme = spec.scheme;
  cs.cover_objects = cover;
  cs.object_names = spec.objects;
  cs.allow_unsound = spec.allow_unsound;
  fault::ParallelCampaign campaign(std::move(cs), 1);
  Standalone ref;
  ref.counts = campaign.Run(fault::MakeCampaignConfig(spec));
  std::ostringstream os;
  fault::WriteCountsCsv(ref.counts, campaign.ledger(), os);
  ref.csv = os.str();
  return ref;
}

// ---------------------------------------------------------------------------
// Checksum-tail probe (the LoadTrace fast path)

TEST(ServiceTraceProbeTest, ProbeMatchesSavedArtifact) {
  const std::string dir = TestDir("probe");
  auto app = apps::MakeApp("P-ATAX", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  ASSERT_NE(profile.trace_store, nullptr);

  const std::string bytes = trace::SaveTraceToString(*profile.trace_store);
  const auto mem = trace::ProbeTraceTailBytes(bytes);
  EXPECT_EQ(mem.version, 1u);

  const std::string path = dir + "/atax.trace";
  trace::SaveTraceFile(*profile.trace_store, path);
  const auto file = trace::ProbeTraceTail(path);
  EXPECT_EQ(file.version, mem.version);
  EXPECT_EQ(file.checksum, mem.checksum);

  // The probe is an identity read, not a validation pass: a payload
  // flip leaves the probe unchanged while the full load still rejects.
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x40;
  EXPECT_EQ(trace::ProbeTraceTailBytes(corrupt).checksum, mem.checksum);
  EXPECT_THROW(trace::LoadTraceFromString(corrupt), std::runtime_error);
}

TEST(ServiceTraceProbeTest, ProbeRejectsBadEnvelopes) {
  const std::string dir = TestDir("probe_bad");
  EXPECT_THROW(trace::ProbeTraceTailBytes("short"), std::runtime_error);
  EXPECT_THROW(trace::ProbeTraceTailBytes(std::string(64, 'x')),
               std::runtime_error);
  EXPECT_THROW(trace::ProbeTraceTail(dir + "/missing.trace"),
               std::runtime_error);
  const std::string path = dir + "/trunc.trace";
  std::ofstream(path) << "dcrmtrc\n";  // magic only, no version/tail
  EXPECT_THROW(trace::ProbeTraceTail(path), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Prefix engine (the batching primitive)

TEST(ServicePrefixTest, PrefixesMatchStandaloneRuns) {
  const std::vector<unsigned> ends = {16, 32, 48};
  fault::ShardCampaignSpec spec = BaseSpec(48);
  auto app = apps::MakeApp(spec.app, spec.scale);
  const auto profile = apps::ProfileApp(*app, spec.gpu);
  fault::CampaignSpec cs;
  cs.make_app = [&spec] { return apps::MakeApp(spec.app, spec.scale); };
  cs.profile = &profile;
  cs.scheme = spec.scheme;
  cs.cover_objects =
      static_cast<unsigned>(profile.hot.hot_objects.size());
  fault::ParallelCampaign campaign(std::move(cs), 1);
  const auto prefixes = campaign.RunPrefixes(
      fault::MakeCampaignConfig(spec), ends, fault::EngineOptions{});
  ASSERT_EQ(prefixes.size(), ends.size());

  for (std::size_t i = 0; i < ends.size(); ++i) {
    const Standalone ref = RunStandalone(BaseSpec(ends[i]));
    EXPECT_EQ(prefixes[i].end, ends[i]);
    EXPECT_EQ(prefixes[i].counts, ref.counts) << "prefix " << ends[i];
    std::ostringstream os;
    fault::WriteCountsCsv(prefixes[i].counts, prefixes[i].ledger, os);
    EXPECT_EQ(os.str(), ref.csv) << "prefix " << ends[i];
  }
}

TEST(ServicePrefixTest, ValidatesBoundaries) {
  fault::ShardCampaignSpec spec = BaseSpec(32);
  auto app = apps::MakeApp(spec.app, spec.scale);
  const auto profile = apps::ProfileApp(*app, spec.gpu);
  auto make = [&] {
    fault::CampaignSpec cs;
    cs.make_app = [&spec] { return apps::MakeApp(spec.app, spec.scale); };
    cs.profile = &profile;
    cs.scheme = spec.scheme;
    cs.cover_objects =
        static_cast<unsigned>(profile.hot.hot_objects.size());
    return cs;
  };
  const fault::CampaignConfig cfg = fault::MakeCampaignConfig(spec);
  const fault::EngineOptions eo;
  {
    fault::ParallelCampaign c(make(), 1);
    EXPECT_THROW(c.RunPrefixes(cfg, std::vector<unsigned>{}, eo),
                 std::invalid_argument);
    EXPECT_THROW(c.RunPrefixes(cfg, std::vector<unsigned>{16, 16}, eo),
                 std::invalid_argument);
    EXPECT_THROW(c.RunPrefixes(cfg, std::vector<unsigned>{0, 16}, eo),
                 std::invalid_argument);
    EXPECT_THROW(c.RunPrefixes(cfg, std::vector<unsigned>{16, 64}, eo),
                 std::invalid_argument);
  }
  // Coupled Tier-2: interior boundaries must sit on escalation epochs.
  spec.recovery_retries = 1;
  spec.escalation_epoch = 8;
  const fault::CampaignConfig coupled = fault::MakeCampaignConfig(spec);
  {
    fault::ParallelCampaign c(make(), 1);
    EXPECT_THROW(c.RunPrefixes(coupled, std::vector<unsigned>{12, 32}, eo),
                 std::invalid_argument);
  }
  {
    fault::ParallelCampaign c(make(), 1);
    const auto ok = c.RunPrefixes(coupled, std::vector<unsigned>{16, 32}, eo);
    ASSERT_EQ(ok.size(), 2u);
    EXPECT_EQ(ok[1].counts.runs, 32u);
  }
}

// ---------------------------------------------------------------------------
// Artifact cache

TEST(ServiceCacheTest, LruEvictionUnderByteBudget) {
  service::ArtifactCache cache(100);
  auto val = [](int n) { return std::make_shared<const int>(n); };
  cache.Put<int>("a", val(1), 40);
  cache.Put<int>("b", val(2), 40);
  ASSERT_NE(cache.Get<int>("a"), nullptr);  // a is now most-recent
  cache.Put<int>("c", val(3), 40);          // 120 bytes: evicts b (LRU)
  EXPECT_EQ(cache.Get<int>("b"), nullptr);
  ASSERT_NE(cache.Get<int>("a"), nullptr);
  ASSERT_NE(cache.Get<int>("c"), nullptr);

  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 80u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.hits, 3u);   // a, a, c
  EXPECT_EQ(s.misses, 1u); // the evicted b
}

TEST(ServiceCacheTest, OversizeEntryAdmittedAloneAndTypeChecked) {
  service::ArtifactCache cache(50);
  auto big = std::make_shared<const std::string>("big");
  cache.Put<std::string>("big", big, 500);  // larger than whole budget
  EXPECT_NE(cache.Get<std::string>("big"), nullptr);
  // Wrong type under the same key is a miss, not a crash.
  EXPECT_EQ(cache.Get<int>("big"), nullptr);
  // The next insert pushes the oversize entry out.
  cache.Put<int>("small", std::make_shared<const int>(7), 10);
  EXPECT_EQ(cache.Get<std::string>("big"), nullptr);
  EXPECT_NE(cache.Get<int>("small"), nullptr);
  EXPECT_EQ(cache.stats().bytes, 10u);
}

TEST(ServiceCacheTest, RefreshReplacesInPlace) {
  service::ArtifactCache cache(100);
  cache.Put<int>("k", std::make_shared<const int>(1), 30);
  cache.Put<int>("k", std::make_shared<const int>(2), 60);
  const auto got = cache.Get<int>("k");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 2);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes, 60u);
}

// ---------------------------------------------------------------------------
// Execution context: identity, caching, batching

TEST(ServiceExecTest, CampaignMatchesStandaloneAndRepeatsHitCache) {
  service::ExecContext ctx(service::ExecOptions{});
  const service::RequestSpec req = CampaignReq(40);
  const Standalone ref = RunStandalone(req.campaign);

  EXPECT_FALSE(ctx.TryCached(req).has_value());
  const service::ServedResult cold = ctx.Execute(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cached);
  EXPECT_EQ(cold.csv, ref.csv);
  EXPECT_NE(cold.text.find("SDC"), std::string::npos);

  const auto warm = ctx.TryCached(req);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->cached);
  EXPECT_EQ(warm->csv, ref.csv);
  EXPECT_EQ(warm->text, cold.text);
}

TEST(ServiceExecTest, AnalysisTypesAreDeterministicAcrossContexts) {
  for (const service::RequestType type :
       {service::RequestType::kAnalyze, service::RequestType::kAvf,
        service::RequestType::kTiming, service::RequestType::kProfile}) {
    service::RequestSpec req = CampaignReq(8);
    req.type = type;
    req.campaign.app = "P-BICG";
    service::ExecContext a(service::ExecOptions{});
    service::ExecContext b(service::ExecOptions{});
    const service::ServedResult ra = a.Execute(req);
    const service::ServedResult rb = b.Execute(req);
    ASSERT_TRUE(ra.ok) << ra.error;
    EXPECT_EQ(ra.text, rb.text) << service::RequestTypeName(type);
    EXPECT_EQ(ra.csv, rb.csv) << service::RequestTypeName(type);
    EXPECT_EQ(ra.exit_code, rb.exit_code);
    // And the repeat within one context is a pure cache hit.
    const auto warm = a.TryCached(req);
    ASSERT_TRUE(warm.has_value()) << service::RequestTypeName(type);
    EXPECT_EQ(warm->text, ra.text);
  }
}

TEST(ServiceExecTest, BatchSplitsBitIdentically) {
  service::ExecContext ctx(service::ExecOptions{});
  const std::vector<service::RequestSpec> reqs = {
      CampaignReq(16), CampaignReq(32), CampaignReq(32)};
  const auto out = ctx.ExecuteCampaignBatch(reqs);
  ASSERT_EQ(out.size(), 3u);
  const Standalone ref16 = RunStandalone(BaseSpec(16));
  const Standalone ref32 = RunStandalone(BaseSpec(32));
  ASSERT_TRUE(out[0].ok) << out[0].error;
  EXPECT_EQ(out[0].csv, ref16.csv);
  EXPECT_EQ(out[1].csv, ref32.csv);
  EXPECT_EQ(out[2].csv, ref32.csv);
  for (const auto& r : out) EXPECT_TRUE(r.batched);

  const auto stats = ctx.batch_stats();
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.grouped_requests, 3u);
  // One merged 32-trial run served 16+32+32 requested trials.
  EXPECT_EQ(stats.trials_saved, 16u + 32u + 32u - 32u);
}

TEST(ServiceExecTest, BatchKeyGroupsOnlyCompatibleCampaigns) {
  service::ExecContext ctx(service::ExecOptions{});
  const std::uint64_t k16 = ctx.BatchKey(CampaignReq(16));
  const std::uint64_t k32 = ctx.BatchKey(CampaignReq(32));
  ASSERT_NE(k16, 0u);
  EXPECT_EQ(k16, k32);  // runs is zeroed out of the key

  EXPECT_NE(ctx.BatchKey(CampaignReq(16, /*seed=*/2)), k16);

  service::RequestSpec is = CampaignReq(16);
  is.importance_sampling = true;
  EXPECT_NE(ctx.BatchKey(is), k16);

  // Coupled Tier-2 campaigns are never batchable: prefix splitting
  // would need epoch-aligned boundaries the scheduler cannot promise.
  service::RequestSpec coupled = CampaignReq(16);
  coupled.campaign.recovery_retries = 1;
  EXPECT_EQ(ctx.BatchKey(coupled), 0u);

  service::RequestSpec analyze = CampaignReq(16);
  analyze.type = service::RequestType::kAnalyze;
  EXPECT_EQ(ctx.BatchKey(analyze), 0u);
}

TEST(ServiceExecTest, TinyBudgetEvictsButStaysCorrect) {
  service::ExecOptions opts;
  opts.cache_bytes = 1024;  // far below one profile artifact
  service::ExecContext ctx(opts);
  const service::RequestSpec req = CampaignReq(16);
  const Standalone ref = RunStandalone(req.campaign);

  const service::ServedResult first = ctx.Execute(req);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.csv, ref.csv);
  // Everything large was evicted again; a repeat recomputes, but the
  // answer is unchanged.
  const service::ServedResult again = ctx.Execute(req);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.csv, ref.csv);
  EXPECT_GT(ctx.cache().stats().evictions, 0u);
}

TEST(ServiceExecTest, TraceRequestsMeetSelfProfiledContentAddress) {
  const std::string dir = TestDir("trace_req");
  auto app = apps::MakeApp("P-ATAX", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  const std::string path = dir + "/atax.trace";
  trace::SaveTraceFile(*profile.trace_store, path);

  service::ExecContext ctx(service::ExecOptions{});
  // Cold self-profiled campaign publishes its result under the
  // content-true fingerprint (the serialized store's checksum)...
  const service::ServedResult self = ctx.Execute(CampaignReq(24));
  ASSERT_TRUE(self.ok) << self.error;
  // ...so a trace-backed request for the same campaign — whose cache
  // key probes the artifact's stored tail checksum — is already a hit.
  service::RequestSpec via_trace = CampaignReq(24);
  via_trace.trace_path = path;
  const auto hit = ctx.TryCached(via_trace);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->cached);
  EXPECT_EQ(hit->csv, self.csv);
}

TEST(ServiceExecTest, FailuresMapToCliExitCodes) {
  service::ExecContext ctx(service::ExecOptions{});
  service::RequestSpec req = CampaignReq(8);
  req.campaign.app = "no-such-app";
  const service::ServedResult r = ctx.Execute(req);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.error.find("error:"), std::string::npos);

  service::RequestSpec bad_trace = CampaignReq(8);
  bad_trace.trace_path = TestDir("no_trace") + "/missing.trace";
  EXPECT_EQ(ctx.BatchKey(bad_trace), 0u);  // unprobeable → unbatchable
  EXPECT_FALSE(ctx.TryCached(bad_trace).has_value());
  const service::ServedResult rt = ctx.Execute(bad_trace);
  EXPECT_FALSE(rt.ok);
  EXPECT_EQ(rt.exit_code, 1);
}

// ---------------------------------------------------------------------------
// Server: concurrent clients, protocol robustness, drain

TEST(ServiceServerTest, ConcurrentClientsGetBitIdenticalResults) {
  const std::string dir = TestDir("server");
  service::ServerOptions so;
  so.socket_path = dir + "/d.sock";
  service::Server server(std::move(so));
  server.Start();

  const Standalone ref = RunStandalone(BaseSpec(24));
  constexpr int kClients = 4;
  std::vector<service::Response> got(kClients);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        auto client = service::Client::Connect(server.socket_path());
        got[i] = client.Call(CampaignReq(24));
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& resp : got) {
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.exit_code, 0);
    EXPECT_EQ(resp.csv, ref.csv);
  }

  // Introspection: the stats request reports a live cache.
  auto client = service::Client::Connect(server.socket_path());
  service::RequestSpec stats;
  stats.type = service::RequestType::kStats;
  const service::Response s = client.Call(stats);
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_NE(s.extra.find("\"cache_entries\""), std::string::npos);
  EXPECT_NE(s.text.find("cache:"), std::string::npos);

  // Graceful shutdown by request: answered, then drained.
  service::RequestSpec down;
  down.type = service::RequestType::kShutdown;
  const service::Response d = client.Call(down);
  ASSERT_TRUE(d.ok) << d.error;
  server.Join();
  EXPECT_FALSE(FileExists(server.socket_path()));
}

TEST(ServiceServerTest, MalformedRequestsAreRejectedNotFatal) {
  const std::string dir = TestDir("server_bad");
  service::ServerOptions so;
  so.socket_path = dir + "/d.sock";
  service::Server server(std::move(so));
  server.Start();

  net::UnixSocket conn = net::ConnectUnix(server.socket_path());
  // Not JSON at all.
  net::WriteFrame(conn.fd(), "this is not json");
  auto frame = net::ReadFrame(conn.fd(), service::kMaxResponseBytes);
  ASSERT_TRUE(frame.has_value());
  service::Response resp = service::DecodeResponse(*frame);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("malformed"), std::string::npos);

  // Unknown key: strict decode, same connection stays usable.
  net::WriteFrame(conn.fd(), R"({"type":"stats","bogus":1})");
  frame = net::ReadFrame(conn.fd(), service::kMaxResponseBytes);
  ASSERT_TRUE(frame.has_value());
  resp = service::DecodeResponse(*frame);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("unknown request key"), std::string::npos);

  net::WriteFrame(conn.fd(), R"({"type":"stats"})");
  frame = net::ReadFrame(conn.fd(), service::kMaxResponseBytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(service::DecodeResponse(*frame).ok);

  // An oversized frame is answered, then the connection is dropped —
  // the unconsumed payload makes the stream unrecoverable.
  const std::string huge(service::kMaxRequestBytes + 1, 'x');
  net::WriteFrame(conn.fd(), huge);
  frame = net::ReadFrame(conn.fd(), service::kMaxResponseBytes);
  ASSERT_TRUE(frame.has_value());
  resp = service::DecodeResponse(*frame);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("cap"), std::string::npos);
  EXPECT_FALSE(net::ReadFrame(conn.fd(), service::kMaxResponseBytes)
                   .has_value());  // server closed

  // The daemon survived all of it.
  auto client = service::Client::Connect(server.socket_path());
  service::RequestSpec stats;
  stats.type = service::RequestType::kStats;
  EXPECT_TRUE(client.Call(stats).ok);
  server.RequestStop();
  server.Join();
}

TEST(ServiceServerTest, DrainAnswersInFlightRequests) {
  const std::string dir = TestDir("server_drain");
  service::ServerOptions so;
  so.socket_path = dir + "/d.sock";
  service::Server server(std::move(so));
  server.Start();

  service::Response resp;
  std::thread client_thread([&] {
    auto client = service::Client::Connect(server.socket_path());
    resp = client.Call(CampaignReq(32));
  });
  // Let the request reach the scheduler, then start the drain while it
  // is (most likely) still executing.
  SleepMs(50);
  server.RequestStop();
  server.Join();
  client_thread.join();

  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.csv, RunStandalone(BaseSpec(32)).csv);
  EXPECT_FALSE(FileExists(server.socket_path()));
}

TEST(ServiceServerTest, SigtermDrainsServeSubprocess) {
  const std::string dir = TestDir("sigterm");
  const std::string sock = dir + "/d.sock";
  Subprocess daemon = Subprocess::Spawn(
      {DCRM_BIN, "serve", "--socket=" + sock}, dir + "/serve.out",
      dir + "/serve.err");

  // Wait for the daemon to bind.
  bool up = false;
  for (int i = 0; i < 100 && !up; ++i) {
    try {
      auto client = service::Client::Connect(sock);
      service::RequestSpec stats;
      stats.type = service::RequestType::kStats;
      up = client.Call(stats).ok;
    } catch (const net::SocketError&) {
      SleepMs(100);
    }
  }
  ASSERT_TRUE(up) << "daemon never came up";

  auto client = service::Client::Connect(sock);
  const service::Response resp = client.Call(CampaignReq(16));
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.csv, RunStandalone(BaseSpec(16)).csv);

  daemon.Kill(SIGTERM);
  const ExitStatus status = daemon.Wait();
  EXPECT_TRUE(status.ok()) << status.Describe();
  EXPECT_FALSE(FileExists(sock));
}

// ---------------------------------------------------------------------------
// Protocol round trip

TEST(ServiceProtoTest, RequestRoundTripsThroughWire) {
  service::RequestSpec req = CampaignReq(1000, 0xdeadbeefcafef00dULL);
  req.campaign.cover = 2;
  req.campaign.objects = {"A", "x"};
  req.campaign.recovery_retries = 3;
  req.campaign.escalation_epoch = 16;
  req.importance_sampling = true;
  req.engine = sim::SimEngine::kEventDriven;
  req.trace_path = "/tmp/t.trace";

  const service::RequestSpec back =
      service::DecodeRequest(service::EncodeRequest(req));
  EXPECT_EQ(back.type, req.type);
  EXPECT_EQ(back.campaign.app, req.campaign.app);
  EXPECT_EQ(back.campaign.runs, req.campaign.runs);
  EXPECT_EQ(back.campaign.seed, req.campaign.seed);  // u64 bit pattern
  EXPECT_EQ(back.campaign.cover, req.campaign.cover);
  EXPECT_EQ(back.campaign.objects, req.campaign.objects);
  EXPECT_EQ(back.campaign.recovery_retries, req.campaign.recovery_retries);
  EXPECT_EQ(back.campaign.escalation_epoch, req.campaign.escalation_epoch);
  EXPECT_EQ(back.importance_sampling, req.importance_sampling);
  EXPECT_EQ(back.engine, req.engine);
  EXPECT_EQ(back.trace_path, req.trace_path);
}

TEST(ServiceProtoTest, DecoderRejectsHostileInput) {
  EXPECT_THROW(service::DecodeRequest("[]"), service::ProtoError);
  EXPECT_THROW(service::DecodeRequest("{}"), service::ProtoError);
  EXPECT_THROW(service::DecodeRequest(R"({"type":"frobnicate"})"),
               service::ProtoError);
  EXPECT_THROW(service::DecodeRequest(R"({"type":"campaign"})"),
               service::ProtoError);  // missing app
  EXPECT_THROW(
      service::DecodeRequest(
          R"({"type":"campaign","app":"P-ATAX","runs":999999999999})"),
      service::ProtoError);
  EXPECT_THROW(
      service::DecodeRequest(R"({"type":"campaign","app":"P-ATAX","runs":0})"),
      service::ProtoError);
}

}  // namespace
