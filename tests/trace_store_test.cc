// TraceStore tests: builder equivalence against the legacy AoS traces
// on all ten applications, cursor iteration order, FindWarp semantics,
// cached totals, binary serialization round trips, malformed-file
// rejection, and the columnar footprint win.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "apps/app.h"
#include "apps/registry.h"
#include "common/file_util.h"
#include "exec/launcher.h"
#include "trace/trace_builder.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"

namespace dcrm {
namespace {

// The legacy collection loop ProfileApp used before the store existed:
// one TraceBuilder per kernel over a fresh functional execution.
std::vector<trace::KernelTrace> CollectLegacy(apps::App& app) {
  mem::DeviceMemory dev;
  app.Setup(dev);
  exec::DirectDataPlane plane(dev);
  std::vector<trace::KernelTrace> out;
  for (auto& k : app.Kernels()) {
    trace::TraceBuilder builder;
    exec::LaunchKernel(k.cfg, plane, &builder, k.body);
    out.push_back(builder.Build(k.cfg));
    out.back().name = k.name;
  }
  return out;
}

// Field-by-field equality of a store against the legacy traces it was
// built from — the walk mirrors how every consumer iterates.
void ExpectEquivalent(const trace::TraceStore& store,
                      const std::vector<trace::KernelTrace>& legacy,
                      const std::string& context) {
  ASSERT_EQ(store.NumKernels(), legacy.size()) << context;
  for (std::uint32_t k = 0; k < store.NumKernels(); ++k) {
    const trace::KernelView kv = store.Kernel(k);
    const trace::KernelTrace& kt = legacy[k];
    EXPECT_EQ(kv.name(), kt.name) << context;
    EXPECT_EQ(kv.cfg().grid, kt.cfg.grid) << context;
    EXPECT_EQ(kv.cfg().block, kt.cfg.block) << context;
    EXPECT_EQ(kv.TotalMemInsts(), kt.TotalMemInsts()) << context;
    EXPECT_EQ(kv.TotalTransactions(), kt.TotalTransactions()) << context;
    EXPECT_EQ(kv.TotalStoreTransactions(), kt.TotalStoreTransactions())
        << context;
    ASSERT_EQ(kv.NumWarps(), kt.warps.size()) << context;
    for (std::uint32_t w = 0; w < kv.NumWarps(); ++w) {
      const trace::WarpSlice ws = kv.Warp(w);
      const trace::WarpTrace& wt = kt.warps[w];
      EXPECT_EQ(ws.warp(), wt.warp) << context;
      EXPECT_EQ(ws.cta(), wt.cta) << context;
      ASSERT_EQ(ws.NumInsts(), wt.insts.size()) << context;
      for (std::uint32_t i = 0; i < ws.NumInsts(); ++i) {
        const trace::InstView iv = ws.Inst(i);
        const trace::WarpMemInst& inst = wt.insts[i];
        EXPECT_EQ(iv.pc, inst.pc) << context;
        EXPECT_EQ(iv.type, inst.type) << context;
        EXPECT_EQ(iv.active_lanes, inst.active_lanes) << context;
        ASSERT_EQ(iv.blocks.size(), inst.blocks.size()) << context;
        for (std::size_t b = 0; b < iv.blocks.size(); ++b) {
          EXPECT_EQ(iv.blocks[b], inst.blocks[b]) << context;
        }
      }
    }
  }
}

trace::WarpTrace MakeWarp(WarpId warp, std::uint32_t cta,
                          std::initializer_list<trace::WarpMemInst> insts) {
  trace::WarpTrace wt;
  wt.warp = warp;
  wt.cta = cta;
  wt.insts = insts;
  return wt;
}

TEST(TraceStoreBuild, EquivalentToLegacyOnAllApps) {
  for (const auto& name : apps::AllAppNames()) {
    auto app = apps::MakeApp(name, apps::AppScale::kTiny);
    const auto legacy = CollectLegacy(*app);
    const auto store = trace::BuildStore(legacy);
    ExpectEquivalent(*store, legacy, name);

    // Whole-store totals match the summed legacy totals.
    std::uint64_t insts = 0, txns = 0, stores = 0;
    for (const auto& kt : legacy) {
      insts += kt.TotalMemInsts();
      txns += kt.TotalTransactions();
      stores += kt.TotalStoreTransactions();
    }
    EXPECT_EQ(store->TotalMemInsts(), insts) << name;
    EXPECT_EQ(store->TotalTransactions(), txns) << name;
    EXPECT_EQ(store->TotalStoreTransactions(), stores) << name;

    // ToKernelTraces is the exact inverse of BuildStore.
    const auto round = trace::ToKernelTraces(*store);
    ExpectEquivalent(*trace::BuildStore(round), legacy, name + " (inverse)");
  }
}

TEST(TraceStoreCursor, IterationPreservesRecordedOrder) {
  trace::KernelTrace k1;
  k1.name = "first";
  k1.warps.push_back(MakeWarp(0, 0, {{1, AccessType::kLoad, 32, {0, 128}},
                                     {2, AccessType::kStore, 16, {256}}}));
  k1.warps.push_back(MakeWarp(3, 1, {{4, AccessType::kLoad, 32, {384}}}));
  trace::KernelTrace k2;
  k2.name = "second";
  k2.warps.push_back(MakeWarp(7, 2, {{9, AccessType::kLoad, 8, {512, 640}}}));
  const auto store = trace::BuildStore({k1, k2});

  ASSERT_EQ(store->NumKernels(), 2u);
  EXPECT_EQ(store->NumWarps(), 3u);
  EXPECT_EQ(store->NumInsts(), 4u);
  EXPECT_EQ(store->NumBlockAddrs(), 6u);

  std::vector<Addr> walked;
  std::vector<Pc> pcs;
  for (std::uint32_t k = 0; k < store->NumKernels(); ++k) {
    const trace::KernelView kv = store->Kernel(k);
    for (std::uint32_t w = 0; w < kv.NumWarps(); ++w) {
      const trace::WarpSlice ws = kv.Warp(w);
      for (std::uint32_t i = 0; i < ws.NumInsts(); ++i) {
        const trace::InstView iv = ws.Inst(i);
        pcs.push_back(iv.pc);
        walked.insert(walked.end(), iv.blocks.begin(), iv.blocks.end());
      }
    }
  }
  EXPECT_EQ(pcs, (std::vector<Pc>{1, 2, 4, 9}));
  EXPECT_EQ(walked, (std::vector<Addr>{0, 128, 256, 384, 512, 640}));

  EXPECT_EQ(store->Kernel(0).name(), "first");
  EXPECT_EQ(store->Kernel(1).name(), "second");
  EXPECT_EQ(store->Kernel(0).TotalStoreTransactions(), 1u);
  EXPECT_EQ(store->Kernel(1).TotalStoreTransactions(), 0u);
}

TEST(TraceStoreCursor, FindWarpSortedAndUnsorted) {
  // Sorted warp ids (the builder's invariant): binary-search path.
  trace::KernelTrace sorted;
  sorted.warps.push_back(MakeWarp(2, 0, {{1, AccessType::kLoad, 32, {0}}}));
  sorted.warps.push_back(MakeWarp(5, 1, {{2, AccessType::kLoad, 32, {128}}}));
  sorted.warps.push_back(MakeWarp(9, 2, {{3, AccessType::kLoad, 32, {256}}}));
  // Unsorted ids (hand-built): linear fallback.
  trace::KernelTrace unsorted;
  unsorted.warps.push_back(MakeWarp(8, 0, {{4, AccessType::kLoad, 32, {0}}}));
  unsorted.warps.push_back(MakeWarp(1, 1, {{5, AccessType::kLoad, 32, {128}}}));
  const auto store = trace::BuildStore({sorted, unsorted});

  const trace::KernelView kv0 = store->Kernel(0);
  EXPECT_EQ(kv0.FindWarp(5).Inst(0).pc, 2u);
  EXPECT_EQ(kv0.FindWarp(9).cta(), 2u);
  EXPECT_TRUE(kv0.FindWarp(3).Empty());   // absent id
  EXPECT_TRUE(kv0.FindWarp(100).Empty());

  const trace::KernelView kv1 = store->Kernel(1);
  EXPECT_EQ(kv1.FindWarp(1).Inst(0).pc, 5u);
  EXPECT_EQ(kv1.FindWarp(8).Inst(0).pc, 4u);
  EXPECT_TRUE(kv1.FindWarp(2).Empty());

  // A default WarpSlice is an empty warp — the replay's placeholder.
  const trace::WarpSlice empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.NumInsts(), 0u);
}

TEST(TraceStoreIo, RoundTripIsIdentical) {
  auto app = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
  const auto store = trace::BuildStore(CollectLegacy(*app));

  const std::string bytes = trace::SaveTraceToString(*store);
  const auto loaded = trace::LoadTraceFromString(bytes);
  EXPECT_TRUE(*loaded == *store);

  // Stream variants agree with the string variants.
  std::ostringstream os;
  trace::SaveTrace(*store, os);
  EXPECT_EQ(os.str(), bytes);
  std::istringstream is(os.str());
  EXPECT_TRUE(*trace::LoadTrace(is) == *store);

  // The varint-delta encoding beats both raw columns and the legacy
  // AoS form on disk.
  EXPECT_LT(bytes.size(), store->FootprintBytes());
}

TEST(TraceStoreIo, EmptyAndHandBuiltStoresRoundTrip) {
  const auto empty = trace::BuildStore(std::vector<trace::KernelTrace>{});
  EXPECT_TRUE(*trace::LoadTraceFromString(trace::SaveTraceToString(*empty)) ==
              *empty);

  // Unaligned hand-built addresses survive losslessly (the format
  // encodes raw address deltas, not block indices).
  trace::KernelTrace kt;
  kt.name = "odd";
  kt.warps.push_back(MakeWarp(0, 0, {{1, AccessType::kStore, 7, {3, 1}}}));
  const auto store = trace::BuildStore({kt});
  EXPECT_TRUE(*trace::LoadTraceFromString(trace::SaveTraceToString(*store)) ==
              *store);
}

TEST(TraceStoreIo, RejectsMalformedFiles) {
  auto app = apps::MakeApp("P-MVT", apps::AppScale::kTiny);
  const auto store = trace::BuildStore(CollectLegacy(*app));
  const std::string good = trace::SaveTraceToString(*store);

  // Bad magic.
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(trace::LoadTraceFromString(bad_magic), std::runtime_error);

  // Unknown version.
  std::string bad_version = good;
  bad_version[8] = 99;
  EXPECT_THROW(trace::LoadTraceFromString(bad_version), std::runtime_error);

  // Truncation at every interesting boundary.
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{4}, std::size_t{12}, good.size() / 2,
        good.size() - 1}) {
    EXPECT_THROW(trace::LoadTraceFromString(good.substr(0, n)),
                 std::runtime_error)
        << "truncated to " << n << " bytes";
  }

  // A flipped payload byte fails the checksum.
  std::string corrupt = good;
  corrupt[good.size() / 2] ^= 0x40;
  EXPECT_THROW(trace::LoadTraceFromString(corrupt), std::runtime_error);

  // Trailing garbage after the checksum.
  EXPECT_THROW(trace::LoadTraceFromString(good + "x"), std::runtime_error);
}

// Regression for the crash-tolerance contract: a trace file cut short
// at ANY point — here every 1KiB boundary, the granularity a torn
// write or partial copy actually produces — must be rejected whole,
// never partially loaded. (Historically only a handful of hand-picked
// prefixes were checked.)
TEST(TraceStoreIo, RejectsTruncationAtEveryKibibyteBoundary) {
  auto app = apps::MakeApp("P-MVT", apps::AppScale::kTiny);
  const auto store = trace::BuildStore(CollectLegacy(*app));
  const std::string good = trace::SaveTraceToString(*store);
  ASSERT_GT(good.size(), 4096u)
      << "trace too small to exercise multiple 1KiB cuts";
  for (std::size_t n = 0; n < good.size(); n += 1024) {
    EXPECT_THROW(trace::LoadTraceFromString(good.substr(0, n)),
                 std::runtime_error)
        << "truncated to " << n << " of " << good.size() << " bytes";
  }
  // And the last byte, the checksum's final line of defence.
  EXPECT_THROW(trace::LoadTraceFromString(good.substr(0, good.size() - 1)),
               std::runtime_error);
}

// SaveTraceFile publishes atomically (temp + rename): the round trip
// is exact, no temp sibling survives, and a file that *was* torn on
// disk is rejected by the loader.
TEST(TraceStoreIo, FileSaveIsAtomicAndTornFilesAreRejected) {
  auto app = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
  const auto store = trace::BuildStore(CollectLegacy(*app));
  const std::string dir = ::testing::TempDir() + "dcrm_trace_atomic";
  EnsureDir(dir);
  const std::string path = dir + "/trace.bin";

  trace::SaveTraceFile(*store, path);
  EXPECT_TRUE(*trace::LoadTraceFile(path) == *store);
  for (const std::string& name : ListDir(dir)) {
    EXPECT_EQ(name.find(".tmp."), std::string::npos)
        << "orphaned temp file: " << name;
  }

  const std::string good = ReadFileToString(path);
  WriteFileAtomic(path, good.substr(0, good.size() / 2));
  EXPECT_THROW(trace::LoadTraceFile(path), std::runtime_error);

  // Overwriting heals it — rename replaces the torn file in one step.
  trace::SaveTraceFile(*store, path);
  EXPECT_TRUE(*trace::LoadTraceFile(path) == *store);
}

TEST(TraceStoreFootprint, ColumnarHalvesTheLegacyBytes) {
  // Streaming apps coalesce nearly every load into one transaction, so
  // the legacy 40-byte WarpMemInst + heap vector per instruction is
  // dominated by overhead the columns do not pay.
  auto app = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
  const auto legacy = CollectLegacy(*app);
  const auto store = trace::BuildStore(legacy);
  const std::uint64_t aos = trace::LegacyFootprintBytes(legacy);
  EXPECT_GE(aos, 2 * store->FootprintBytes())
      << "AoS " << aos << "B vs columnar " << store->FootprintBytes() << "B";
}

TEST(TraceStoreValidation, FromColumnsRejectsRaggedColumns) {
  trace::KernelTrace kt;
  kt.warps.push_back(MakeWarp(0, 0, {{1, AccessType::kLoad, 32, {0}}}));
  const auto store = trace::BuildStore({kt});

  // Prefix array not ending at the pool size.
  auto cols = store->columns();
  cols.inst_block_begin.back() += 1;
  EXPECT_THROW(trace::TraceStore::FromColumns(cols), std::invalid_argument);

  // Kernel warp ranges must tile the warp columns.
  cols = store->columns();
  cols.kernels[0].warp_end = 0;
  EXPECT_THROW(trace::TraceStore::FromColumns(cols), std::invalid_argument);

  // Mismatched per-inst column lengths.
  cols = store->columns();
  cols.inst_lanes.push_back(1);
  EXPECT_THROW(trace::TraceStore::FromColumns(cols), std::invalid_argument);
}

}  // namespace
}  // namespace dcrm
