// Golden-result regression suite. Each test mirrors one headline bench
// (Fig. 9 reliability, the detect-to-recover extension, the Section
// V-C trade-off summary) at a reduced trial count and pins the exact
// campaign counters. The engine is deterministic — counts are a pure
// function of (config, seed), independent of worker count — so any
// drift here means an intentional engine change. When that happens,
// re-run this binary, copy the actual values from the failure output
// into the constants below, and regenerate the results_*.txt files in
// the same commit (see README "Golden results").
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/driver.h"
#include "apps/registry.h"
#include "core/recovery.h"
#include "fault/parallel_campaign.h"

namespace dcrm::fault {
namespace {

// Bench defaults, reduced: benches run 60-80 trials at kSmall; golden
// tests run 40 at kTiny so the whole suite stays well inside the 60 s
// campaign-label timeout.
constexpr std::uint64_t kSeed = 2026;
constexpr unsigned kRuns = 40;

// One profiled app, wrapped so a ParallelCampaign spec can point at it.
struct Bench {
  explicit Bench(const std::string& name)
      : name(name),
        app(apps::MakeApp(name, apps::AppScale::kTiny)),
        profile(apps::ProfileApp(*app, sim::GpuConfig{})) {}

  unsigned HotCover() const {
    return static_cast<unsigned>(profile.hot.hot_objects.size());
  }
  unsigned FullCover() const {
    return static_cast<unsigned>(profile.hot.coverage_order.size());
  }

  CampaignCounts Run(sim::Scheme scheme, unsigned cover,
                     const CampaignConfig& cc) const {
    CampaignSpec spec;
    spec.make_app = [n = name] { return apps::MakeApp(n, apps::AppScale::kTiny); };
    spec.profile = &profile;
    spec.scheme = scheme;
    spec.cover_objects = cover;
    // jobs=2 so the golden numbers are produced by the parallel path;
    // determinism makes this equal to jobs=1.
    ParallelCampaign campaign(std::move(spec), 2);
    return campaign.Run(cc);
  }

  std::string name;
  std::unique_ptr<apps::App> app;
  apps::ProfileResult profile;
};

CampaignConfig Fig9Config(unsigned blocks, unsigned bits) {
  CampaignConfig cc;
  cc.target = Target::kMissWeighted;
  cc.faulty_blocks = blocks;
  cc.bits_per_block = bits;
  cc.runs = kRuns;
  cc.seed = kSeed + blocks * 1000 + bits;  // bench_fig9 seed formula
  return cc;
}

// --- Fig. 9: SDC vs protected objects, miss-weighted injection. ---

TEST(GoldenResults, Fig9BaselinePBicg) {
  Bench b("P-BICG");
  const auto counts = b.Run(sim::Scheme::kNone, 0, Fig9Config(1, 2));
  EXPECT_EQ(counts.runs, kRuns);
  EXPECT_EQ(counts.sdc, 3u);
  EXPECT_EQ(counts.detected, 0u);
  EXPECT_EQ(counts.crash, 0u);
  EXPECT_EQ(counts.masked, 37u);
}

TEST(GoldenResults, Fig9HotDetectCorrectPBicg) {
  Bench b("P-BICG");
  const auto counts =
      b.Run(sim::Scheme::kDetectCorrect, b.HotCover(), Fig9Config(1, 2));
  EXPECT_EQ(counts.sdc, 0u);
  EXPECT_EQ(counts.corrections, 288u);
  EXPECT_EQ(counts.masked, 40u);
}

TEST(GoldenResults, Fig9MultiBlockSobel) {
  Bench b("A-Sobel");
  const auto base = b.Run(sim::Scheme::kNone, 0, Fig9Config(5, 4));
  const auto prot =
      b.Run(sim::Scheme::kDetectCorrect, b.HotCover(), Fig9Config(5, 4));
  EXPECT_EQ(base.sdc, 15u);
  EXPECT_EQ(base.masked, 22u);
  EXPECT_EQ(prot.sdc, 0u);
  EXPECT_EQ(prot.corrections, 180224u);
}

// --- Extension: detect-to-recover pipeline at retry budget 2. ---

TEST(GoldenResults, RecoveryPipelinePBicg) {
  Bench b("P-BICG");
  CampaignConfig cc;
  cc.target = Target::kMissWeighted;
  cc.faulty_blocks = 1;
  cc.bits_per_block = 4;
  cc.runs = kRuns;
  cc.seed = kSeed;
  cc.recovery.enabled = true;
  cc.recovery.max_retries = 2;
  const auto counts = b.Run(sim::Scheme::kDetectOnly, b.FullCover(), cc);
  EXPECT_EQ(counts.sdc, 0u);
  EXPECT_EQ(counts.detected, 0u);
  EXPECT_EQ(counts.recovered, 39u);
  EXPECT_EQ(counts.masked, 1u);
  EXPECT_EQ(counts.recovery.arbitrations, 16u);
  EXPECT_EQ(counts.recovery.scrubs, 39u);
  EXPECT_EQ(counts.recovery.retired_blocks, 39u);
  EXPECT_EQ(counts.recovery.retries, 0u);
  EXPECT_EQ(counts.recovery.escalations, 1u);
}

// Budget=off must be the paper's detect-and-die: same faults, zero
// recoveries, detections strictly >= the recovered case's detections.
TEST(GoldenResults, RecoveryBudgetOffPBicg) {
  Bench b("P-BICG");
  CampaignConfig cc;
  cc.target = Target::kMissWeighted;
  cc.faulty_blocks = 1;
  cc.bits_per_block = 4;
  cc.runs = kRuns;
  cc.seed = kSeed;
  const auto counts = b.Run(sim::Scheme::kDetectOnly, b.FullCover(), cc);
  EXPECT_EQ(counts.recovered, 0u);
  EXPECT_EQ(counts.detected, 39u);
  EXPECT_EQ(counts.masked, 1u);
}

// --- Section V-C trade-off: SDC drop from protecting hot objects. ---

TEST(GoldenResults, TradeoffSdcDropGesummv) {
  Bench b("P-GESUMMV");
  CampaignConfig cc;
  cc.target = Target::kMissWeighted;
  cc.faulty_blocks = 5;
  cc.bits_per_block = 4;
  cc.runs = kRuns;
  cc.seed = kSeed;
  const auto base = b.Run(sim::Scheme::kNone, 0, cc);
  const auto prot = b.Run(sim::Scheme::kDetectCorrect, b.HotCover(), cc);
  EXPECT_EQ(base.sdc, 19u);
  EXPECT_EQ(prot.sdc, 16u);
  // Direction of the headline claim: hot-object protection lowers SDC
  // (at kTiny the GESUMMV hot set is small, so the drop is modest).
  EXPECT_LT(prot.sdc, base.sdc);
}

// Exact fault-free replay cycle counts, every registry app at kTiny
// under the default GpuConfig. Pinning the raw cycle totals (not just
// campaign outcomes) means any timing-model change — including an
// engine that is "almost" cycle-identical — trips this immediately.
// Both engines must reproduce these numbers bit for bit; the suite
// runs under the default (event-driven) engine.
TEST(GoldenResults, ReplayCycleCountsPerApp) {
  struct Pin {
    const char* app;
    std::uint64_t cycles;
  };
  const Pin pins[] = {
      {"C-NN", 38176},          {"P-BICG", 22306},
      {"P-GESUMMV", 65863},     {"P-MVT", 22234},
      {"A-Laplacian", 1292},    {"A-Meanfilter", 957},
      {"A-Sobel", 1464},        {"A-SRAD", 1592},
      {"P-ATAX", 21917},        {"C-ConvRows", 1258},
      {"C-Histogram", 15953},   {"C-BlackScholes", 738},
      {"P-GRAMSCHM", 289130},   {"L-Transformer", 15524},
      {"L-MLP2", 7238},
  };
  ASSERT_EQ(std::size(pins), apps::AllAppNames().size());
  for (const Pin& p : pins) {
    Bench b(p.app);
    EXPECT_EQ(b.profile.timing_baseline.cycles, p.cycles) << p.app;
  }
}

// Every golden campaign's outcomes must partition the trial count —
// guards against a merge path dropping or double-counting a trial.
TEST(GoldenResults, OutcomesPartitionRuns) {
  Bench b("P-BICG");
  const auto counts = b.Run(sim::Scheme::kNone, 0, Fig9Config(1, 2));
  EXPECT_EQ(counts.sdc + counts.detected + counts.due + counts.crash +
                counts.masked + counts.recovered,
            counts.runs);
}

}  // namespace
}  // namespace dcrm::fault
