#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "mem/secded.h"

namespace dcrm::mem {
namespace {

TEST(Secded, CleanWordDecodesOk) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t d = rng.Next64();
    const EccWord w = Secded72::Encode(d);
    const auto r = Secded72::Decode(w);
    EXPECT_EQ(r.status, EccStatus::kOk);
    EXPECT_EQ(r.data, d);
  }
}

TEST(Secded, EverySingleDataBitErrorCorrected) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t d = rng.Next64();
    const EccWord clean = Secded72::Encode(d);
    for (unsigned bit = 0; bit < 64; ++bit) {
      EccWord w = clean;
      w.data = FlipBit(w.data, bit);
      const auto r = Secded72::Decode(w);
      EXPECT_EQ(r.status, EccStatus::kCorrectedSingle);
      EXPECT_EQ(r.data, d) << "bit " << bit;
    }
  }
}

TEST(Secded, SingleCheckBitErrorCorrected) {
  const std::uint64_t d = 0x123456789ABCDEF0ULL;
  const EccWord clean = Secded72::Encode(d);
  for (unsigned bit = 0; bit < 8; ++bit) {
    EccWord w = clean;
    w.check = static_cast<std::uint8_t>(FlipBit(w.check, bit));
    const auto r = Secded72::Decode(w);
    EXPECT_EQ(r.status, EccStatus::kCorrectedSingle);
    EXPECT_EQ(r.data, d);
  }
}

TEST(Secded, EveryDoubleDataBitErrorDetected) {
  Rng rng(3);
  const std::uint64_t d = rng.Next64();
  const EccWord clean = Secded72::Encode(d);
  for (unsigned b1 = 0; b1 < 64; ++b1) {
    for (unsigned b2 = b1 + 1; b2 < 64; ++b2) {
      EccWord w = clean;
      w.data = FlipBit(FlipBit(w.data, b1), b2);
      const auto r = Secded72::Decode(w);
      EXPECT_TRUE(r.status == EccStatus::kDetectedDouble ||
                  r.status == EccStatus::kDetectedInvalid)
          << b1 << "," << b2;
    }
  }
}

TEST(Secded, TripleErrorsUsuallyMiscorrect) {
  // The defining weakness the paper targets: 3-bit faults fool SECDED
  // into a "successful" correction of the wrong bit, producing silent
  // corruption.
  Rng rng(4);
  int miscorrected = 0;
  int detected = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t d = rng.Next64();
    EccWord w = Secded72::Encode(d);
    unsigned bits[3];
    bits[0] = static_cast<unsigned>(rng.Below(64));
    do {
      bits[1] = static_cast<unsigned>(rng.Below(64));
    } while (bits[1] == bits[0]);
    do {
      bits[2] = static_cast<unsigned>(rng.Below(64));
    } while (bits[2] == bits[0] || bits[2] == bits[1]);
    for (unsigned b : bits) w.data = FlipBit(w.data, b);
    const auto r = Secded72::Decode(w);
    if (r.status == EccStatus::kCorrectedSingle && r.data != d) {
      ++miscorrected;
    } else if (r.status == EccStatus::kDetectedInvalid) {
      ++detected;
    }
    // A triple error must never decode clean to the original: that
    // would require distance >= 6.
    EXPECT_FALSE(r.status == EccStatus::kOk && r.data == d);
  }
  EXPECT_GT(miscorrected, trials / 2);  // miscorrection dominates
  EXPECT_GT(detected, 0);               // invalid syndromes occur too
}

TEST(Secded, QuadErrorsDetectedOrEscape) {
  Rng rng(5);
  int detected = 0;
  int escaped = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t d = rng.Next64();
    EccWord w = Secded72::Encode(d);
    unsigned chosen[4];
    int n = 0;
    while (n < 4) {
      const auto b = static_cast<unsigned>(rng.Below(64));
      bool dup = false;
      for (int k = 0; k < n; ++k) dup = dup || chosen[k] == b;
      if (!dup) chosen[n++] = b;
    }
    for (unsigned b : chosen) w.data = FlipBit(w.data, b);
    const auto r = Secded72::Decode(w);
    if (r.status == EccStatus::kDetectedDouble ||
        r.status == EccStatus::kDetectedInvalid) {
      ++detected;
    }
    if (r.status == EccStatus::kOk) {
      ++escaped;
      EXPECT_NE(r.data, d);  // an escape is silent corruption
    }
  }
  EXPECT_GT(detected, trials * 8 / 10);
}

TEST(Secded, DataBitPositionsSkipPowersOfTwo) {
  for (unsigned i = 0; i < 64; ++i) {
    const unsigned p = Secded72::DataBitPosition(i);
    EXPECT_GE(p, 3u);
    EXPECT_LE(p, 71u);
    EXPECT_NE(p & (p - 1), 0u) << "power-of-two position carries a check bit";
  }
}

}  // namespace
}  // namespace dcrm::mem
