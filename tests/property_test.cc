// Property-based tests: invariants checked over randomized inputs and
// parameterized sweeps (TEST_P), per the framework's reliability
// claims rather than fixed examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "core/protection.h"
#include "core/replication.h"
#include "mem/device_memory.h"
#include "mem/secded.h"
#include "sim/tag_array.h"
#include "trace/trace.h"

namespace dcrm {
namespace {

// ---------------------------------------------------------------- //
// SECDED: parameterized over the number of raw bit errors.

class SecdedErrorSweep : public ::testing::TestWithParam<unsigned> {};

INSTANTIATE_TEST_SUITE_P(BitCounts, SecdedErrorSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST_P(SecdedErrorSweep, GuaranteesHoldForRandomWords) {
  const unsigned k = GetParam();
  Rng rng(1000 + k);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t d = rng.Next64();
    mem::EccWord w = mem::Secded72::Encode(d);
    std::vector<unsigned> bits;
    while (bits.size() < k) {
      const auto b = static_cast<unsigned>(rng.Below(64));
      if (std::find(bits.begin(), bits.end(), b) == bits.end()) {
        bits.push_back(b);
      }
    }
    for (unsigned b : bits) w.data = FlipBit(w.data, b);
    const auto r = mem::Secded72::Decode(w);
    if (k == 1) {
      // Guaranteed correction.
      ASSERT_EQ(r.status, mem::EccStatus::kCorrectedSingle);
      ASSERT_EQ(r.data, d);
    } else if (k == 2) {
      // Guaranteed detection, never a silent pass.
      ASSERT_TRUE(r.status == mem::EccStatus::kDetectedDouble ||
                  r.status == mem::EccStatus::kDetectedInvalid);
    } else {
      // >= 3 errors: the code gives no guarantee, but it must never
      // return the original data while claiming kOk (distance 4).
      if (r.status == mem::EccStatus::kOk) {
        ASSERT_NE(r.data, d);
      }
      if (r.status == mem::EccStatus::kCorrectedSingle && k == 3) {
        // An odd error count can only land back on the original by
        // flipping >= distance bits; with 3 errors + 1 "correction"
        // that is impossible.
        ASSERT_NE(r.data, d);
      }
    }
  }
}

// ---------------------------------------------------------------- //
// Fault model: permanence and idempotence.

TEST(FaultProperty, ApplicationIsIdempotent) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    mem::FaultMap fm;
    const unsigned n = 1 + static_cast<unsigned>(rng.Below(6));
    for (unsigned i = 0; i < n; ++i) {
      fm.Add({.byte_addr = rng.Below(64),
              .bit = static_cast<std::uint8_t>(rng.Below(8)),
              .stuck_value = rng.Bernoulli(0.5)});
    }
    std::uint8_t buf[64];
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.Below(256));
    std::uint8_t once[64];
    std::memcpy(once, buf, 64);
    fm.Apply(0, once, 64);
    std::uint8_t twice[64];
    std::memcpy(twice, once, 64);
    fm.Apply(0, twice, 64);
    ASSERT_EQ(std::memcmp(once, twice, 64), 0);
  }
}

TEST(FaultProperty, LastFaultWinsPerBit) {
  mem::FaultMap fm;
  fm.Add({.byte_addr = 0, .bit = 3, .stuck_value = true});
  fm.Add({.byte_addr = 0, .bit = 3, .stuck_value = false});
  EXPECT_EQ(fm.ApplyByte(0, 0xFF), 0xF7);  // stuck-at-0 wins (re-added)
}

TEST(FaultProperty, WordFaultsCoverRequestedBitCountExactly) {
  Rng rng(88);
  for (unsigned bits = 1; bits <= 8; ++bits) {
    const auto fs = mem::MakeWordFaults(1024, bits, rng);
    ASSERT_EQ(fs.size(), bits);
  }
}

// ---------------------------------------------------------------- //
// Majority vote: any fault pattern confined to one copy is corrected.

class VoteProperty : public ::testing::TestWithParam<unsigned> {};
INSTANTIATE_TEST_SUITE_P(FaultyCopy, VoteProperty,
                         ::testing::Values(0u, 1u, 2u));

TEST_P(VoteProperty, SingleFaultyCopyAlwaysOutvoted) {
  const unsigned faulty_copy = GetParam();
  Rng rng(99 + faulty_copy);
  for (int trial = 0; trial < 60; ++trial) {
    mem::DeviceMemory dev;
    const auto id = dev.space().Allocate("w", 256, true);
    for (Addr a = 0; a < 256; a += 8) {
      dev.Write<std::uint64_t>(a, rng.Next64());
    }
    const auto infos =
        core::ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 2);
    auto plan = core::MakeProtectionPlan(dev.space(), infos,
                                         sim::Scheme::kDetectCorrect);
    // Arbitrary multi-bit faults, all within the chosen copy.
    const Addr base = faulty_copy == 0 ? dev.space().Object(id).base
                                       : infos[0].replica_base[faulty_copy - 1];
    const unsigned nfaults = 1 + static_cast<unsigned>(rng.Below(8));
    for (unsigned i = 0; i < nfaults; ++i) {
      dev.faults().Add({.byte_addr = base + rng.Below(256),
                        .bit = static_cast<std::uint8_t>(rng.Below(8)),
                        .stuck_value = rng.Bernoulli(0.5)});
    }
    core::ProtectedDataPlane plane(dev, plan);
    for (Addr off = 0; off < 256; off += 8) {
      std::uint64_t v = 0;
      plane.Load(1, dev.space().Object(id).base + off, &v, 8);
      ASSERT_EQ(v, dev.ReadGoldenTyped<std::uint64_t>(
                       dev.space().Object(id).base + off));
    }
  }
}

TEST(VoteProperty, DetectionCatchesAnyPrimaryReplicaDivergence) {
  Rng rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    mem::DeviceMemory dev;
    const auto id = dev.space().Allocate("w", 128, true);
    for (Addr a = 0; a < 128; a += 8) {
      dev.Write<std::uint64_t>(a, rng.Next64());
    }
    const auto infos =
        core::ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 1);
    auto plan = core::MakeProtectionPlan(dev.space(), infos,
                                         sim::Scheme::kDetectOnly);
    const bool fault_primary = rng.Bernoulli(0.5);
    const Addr base =
        fault_primary ? dev.space().Object(id).base : infos[0].replica_base[0];
    const Addr victim = base + rng.Below(128);
    // Ensure the stuck value actually differs from the stored bit.
    const std::uint8_t stored = dev.ReadGoldenTyped<std::uint8_t>(victim);
    const auto bit = static_cast<std::uint8_t>(rng.Below(8));
    dev.faults().Add(
        {.byte_addr = victim, .bit = bit, .stuck_value = !((stored >> bit) & 1)});
    core::ProtectedDataPlane plane(dev, plan);
    bool detected = false;
    try {
      for (Addr off = 0; off < 128; off += 8) {
        std::uint64_t v;
        plane.Load(1, dev.space().Object(id).base + off, &v, 8);
      }
    } catch (const core::DetectionTerminated&) {
      detected = true;
    }
    ASSERT_TRUE(detected);
  }
}

// ---------------------------------------------------------------- //
// Coalescer invariants over random lane address patterns.

TEST(CoalescerProperty, InvariantsOverRandomPatterns) {
  Rng rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<exec::AccessRecord> step;
    const unsigned lanes = 1 + static_cast<unsigned>(rng.Below(32));
    for (unsigned l = 0; l < lanes; ++l) {
      step.push_back({static_cast<Pc>(1 + rng.Below(2)),
                      rng.Below(1 << 20) * 4, 4, AccessType::kLoad});
    }
    const auto insts = trace::CoalesceStep(step);
    unsigned total_lanes = 0;
    std::size_t total_blocks = 0;
    for (const auto& m : insts) {
      total_lanes += m.active_lanes;
      total_blocks += m.blocks.size();
      ASSERT_LE(m.blocks.size(), m.active_lanes);
      for (Addr b : m.blocks) ASSERT_EQ(b % kBlockSize, 0u);
      // No duplicate transactions within an instruction.
      auto sorted = m.blocks;
      std::sort(sorted.begin(), sorted.end());
      ASSERT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                sorted.end());
    }
    ASSERT_EQ(total_lanes, lanes);
    // Every record's block appears in some instruction with its pc.
    for (const auto& rec : step) {
      const bool found = std::any_of(
          insts.begin(), insts.end(), [&](const trace::WarpMemInst& m) {
            return m.pc == rec.pc &&
                   std::find(m.blocks.begin(), m.blocks.end(),
                             BlockBase(rec.addr)) != m.blocks.end();
          });
      ASSERT_TRUE(found);
    }
  }
}

// ---------------------------------------------------------------- //
// Tag array: a working set within capacity never misses after warmup.

class TagArraySweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

INSTANTIATE_TEST_SUITE_P(
    Geometries, TagArraySweep,
    ::testing::Values(std::make_pair(32u, 4u), std::make_pair(128u, 16u),
                      std::make_pair(1u, 8u), std::make_pair(64u, 1u)));

TEST_P(TagArraySweep, ResidentWorkingSetAlwaysHits) {
  const auto [sets, ways] = GetParam();
  sim::TagArray tags(sets, ways);
  const unsigned capacity = sets * ways;
  std::vector<Addr> ws;
  // Sequential blocks spread evenly over the sets.
  for (unsigned i = 0; i < capacity; ++i) {
    ws.push_back(static_cast<Addr>(i) * kBlockSize);
  }
  for (Addr b : ws) tags.Access(b);  // warmup
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tags.Access(ws[rng.Below(ws.size())]));
  }
}

TEST(TagArrayProperty, OverCapacitySetAlwaysEvicts) {
  sim::TagArray tags(1, 4);
  for (int round = 0; round < 5; ++round) {
    for (Addr b = 0; b < 5; ++b) {
      // 5 blocks through a 4-way set in LRU order: every access misses.
      ASSERT_FALSE(tags.Access(b * kBlockSize)) << round << "," << b;
    }
  }
}

}  // namespace
}  // namespace dcrm
