#include <gtest/gtest.h>

#include "exec/data_plane.h"
#include "exec/launcher.h"
#include "trace/trace.h"
#include "trace/trace_builder.h"

namespace dcrm::trace {
namespace {

exec::AccessRecord Ld(Pc pc, Addr addr) {
  return {pc, addr, 4, AccessType::kLoad};
}

TEST(Coalescer, BroadcastBecomesOneTransaction) {
  std::vector<exec::AccessRecord> step;
  for (int lane = 0; lane < 32; ++lane) step.push_back(Ld(1, 512));
  const auto insts = CoalesceStep(step);
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0].blocks.size(), 1u);
  EXPECT_EQ(insts[0].blocks[0], 512u);
  EXPECT_EQ(insts[0].active_lanes, 32u);
}

TEST(Coalescer, ConsecutiveFloatsCoalesceToOneBlock) {
  std::vector<exec::AccessRecord> step;
  for (int lane = 0; lane < 32; ++lane) {
    step.push_back(Ld(1, 1024 + lane * 4));  // 32 floats == one 128B block
  }
  const auto insts = CoalesceStep(step);
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0].blocks.size(), 1u);
}

TEST(Coalescer, StridedAccessFansOut) {
  std::vector<exec::AccessRecord> step;
  for (int lane = 0; lane < 32; ++lane) {
    step.push_back(Ld(1, static_cast<Addr>(lane) * 1024));  // stride 1KB
  }
  const auto insts = CoalesceStep(step);
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0].blocks.size(), 32u);
}

TEST(Coalescer, MisalignedSpanNeedsTwoBlocks) {
  std::vector<exec::AccessRecord> step;
  for (int lane = 0; lane < 32; ++lane) {
    step.push_back(Ld(1, 64 + lane * 4));  // straddles blocks 0 and 1
  }
  const auto insts = CoalesceStep(step);
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0].blocks.size(), 2u);
}

TEST(Coalescer, DifferentPcsSplitInstructions) {
  std::vector<exec::AccessRecord> step;
  step.push_back(Ld(1, 0));
  step.push_back(Ld(2, 128));
  const auto insts = CoalesceStep(step);
  EXPECT_EQ(insts.size(), 2u);
}

TEST(Coalescer, LoadAndStoreSplit) {
  std::vector<exec::AccessRecord> step;
  step.push_back({1, 0, 4, AccessType::kLoad});
  step.push_back({1, 0, 4, AccessType::kStore});
  const auto insts = CoalesceStep(step);
  EXPECT_EQ(insts.size(), 2u);
}

TEST(TraceBuilder, BuildsWarpLockstepTrace) {
  mem::DeviceMemory dev;
  dev.space().Allocate("a", 64 * 1024, true);
  exec::DirectDataPlane plane(dev);
  TraceBuilder builder;
  exec::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {64, 1, 1};
  exec::LaunchKernel(cfg, plane, &builder, [&](exec::ThreadCtx& ctx) {
    const std::uint32_t tid =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    // Two lockstep loads: a broadcast and a coalesced row.
    (void)ctx.Ld<float>(1, 0);
    (void)ctx.Ld<float>(2, 4096 + tid * 4);
  });
  const KernelTrace kt = builder.Build(cfg);
  ASSERT_EQ(kt.warps.size(), 2u);
  EXPECT_EQ(kt.warps[0].warp, 0u);
  EXPECT_EQ(kt.warps[1].warp, 1u);
  ASSERT_EQ(kt.warps[0].insts.size(), 2u);
  EXPECT_EQ(kt.warps[0].insts[0].pc, 1u);
  EXPECT_EQ(kt.warps[0].insts[0].blocks.size(), 1u);   // broadcast
  EXPECT_EQ(kt.warps[0].insts[1].blocks.size(), 1u);   // coalesced
  EXPECT_EQ(kt.warps[1].insts[1].blocks[0], 4096u + 128);
  EXPECT_EQ(kt.TotalMemInsts(), 4u);
  EXPECT_EQ(kt.TotalTransactions(), 4u);
}

TEST(TraceBuilder, DivergentThreadsProduceSeparateInsts) {
  mem::DeviceMemory dev;
  dev.space().Allocate("a", 4096, true);
  exec::DirectDataPlane plane(dev);
  TraceBuilder builder;
  exec::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {32, 1, 1};
  exec::LaunchKernel(cfg, plane, &builder, [&](exec::ThreadCtx& ctx) {
    // Half the warp takes a different path (different pc at ordinal 0).
    if (ctx.threadIdx().x < 16) {
      (void)ctx.Ld<float>(1, 0);
    } else {
      (void)ctx.Ld<float>(2, 2048);
    }
  });
  const KernelTrace kt = builder.Build(cfg);
  ASSERT_EQ(kt.warps.size(), 1u);
  EXPECT_EQ(kt.warps[0].insts.size(), 2u);
  EXPECT_EQ(kt.warps[0].insts[0].active_lanes, 16u);
}

TEST(TraceBuilder, InactiveThreadsEmitNothing) {
  mem::DeviceMemory dev;
  dev.space().Allocate("a", 4096, true);
  exec::DirectDataPlane plane(dev);
  TraceBuilder builder;
  exec::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {64, 1, 1};
  exec::LaunchKernel(cfg, plane, &builder, [&](exec::ThreadCtx& ctx) {
    const std::uint32_t tid = ctx.threadIdx().x;
    if (tid >= 32) return;  // boundary guard: warp 1 idle
    (void)ctx.Ld<float>(1, tid * 4);
  });
  const KernelTrace kt = builder.Build(cfg);
  ASSERT_EQ(kt.warps.size(), 1u);  // idle warp absent from the trace
  EXPECT_EQ(kt.warps[0].warp, 0u);
}

}  // namespace
}  // namespace dcrm::trace
