#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace dcrm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Rng rng(19);
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Stats, MeanAndVariance) {
  const std::array<double, 4> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(Variance(xs), 5.0 / 3.0, 1e-12);
}

TEST(Stats, ZQuantileMatchesKnownValues) {
  EXPECT_NEAR(ZQuantile(0.95), 1.95996, 1e-4);
  EXPECT_NEAR(ZQuantile(0.99), 2.57583, 1e-4);
  EXPECT_NEAR(ZQuantile(0.90), 1.64485, 1e-4);
}

TEST(Stats, RunsForMarginMatchesPaperPractice) {
  // The paper's cited statistical model: 95% confidence, +/-3% needs
  // about a thousand runs.
  const std::size_t n = RunsForMargin(0.03, 0.95);
  EXPECT_GE(n, 1000u);
  EXPECT_LE(n, 1100u);
}

TEST(Stats, BinomialCiShrinksWithRuns) {
  const auto small = BinomialCi(50, 100);
  const auto large = BinomialCi(500, 1000);
  EXPECT_NEAR(small.p, 0.5, 1e-12);
  EXPECT_GT(small.margin, large.margin);
  EXPECT_GE(small.lo, 0.0);
  EXPECT_LE(small.hi, 1.0);
}

TEST(Stats, BinomialCiZeroTrials) {
  const auto ci = BinomialCi(0, 0);
  EXPECT_EQ(ci.p, 0.0);
  EXPECT_EQ(ci.margin, 0.0);
}

TEST(Bitops, SetClearFlipTest) {
  std::uint64_t v = 0;
  v = SetBit(v, 5);
  EXPECT_TRUE(TestBit(v, 5));
  v = FlipBit(v, 5);
  EXPECT_FALSE(TestBit(v, 5));
  v = SetBit(v, 63);
  EXPECT_TRUE(TestBit(v, 63));
  v = ClearBit(v, 63);
  EXPECT_EQ(v, 0u);
}

TEST(Bitops, Parity) {
  EXPECT_EQ(Parity(0), 0u);
  EXPECT_EQ(Parity(1), 1u);
  EXPECT_EQ(Parity(0b1011), 1u);
  EXPECT_EQ(Parity(0b1111), 0u);
}

TEST(Types, BlockArithmetic) {
  EXPECT_EQ(BlockOf(0), 0u);
  EXPECT_EQ(BlockOf(127), 0u);
  EXPECT_EQ(BlockOf(128), 1u);
  EXPECT_EQ(BlockBase(200), 128u);
  EXPECT_EQ(Dim3({2, 3, 4}).Count(), 24u);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  TextTable t({"app", "value"});
  t.NewRow().Add("P-BICG").Add(1.25, 2);
  t.NewRow().Add("C-NN").Add(std::uint64_t{42});
  const std::string s = t.Render();
  EXPECT_NE(s.find("P-BICG"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  const std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("app,value"), std::string::npos);
  EXPECT_NE(csv.find("C-NN,42"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(Table, FormatNumTrimsZeros) {
  EXPECT_EQ(FormatNum(1.5, 3), "1.5");
  EXPECT_EQ(FormatNum(2.0, 3), "2");
  EXPECT_EQ(FormatNum(0.125, 3), "0.125");
}

}  // namespace
}  // namespace dcrm
