// Tests for the extended fault footprints and the online hot detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/online_detector.h"
#include "fault/fault_shapes.h"

namespace dcrm {
namespace {

TEST(ColumnFaults, OneBitPerWordSamePositionAndPolarity) {
  Rng rng(1);
  const auto faults = fault::MakeColumnFaults(256, 256 + 128, rng);
  EXPECT_EQ(faults.size(), 32u);  // every word of the block
  std::set<Addr> words;
  const auto bit0 = faults[0].bit;
  const auto off0 = faults[0].byte_addr % 4;
  for (const auto& f : faults) {
    EXPECT_EQ(f.bit, bit0);
    EXPECT_EQ(f.byte_addr % 4, off0);
    EXPECT_EQ(f.stuck_value, faults[0].stuck_value);
    EXPECT_TRUE(words.insert(f.byte_addr & ~Addr{3}).second);
  }
}

TEST(ColumnFaults, RespectsPartialRange) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto faults = fault::MakeColumnFaults(0, 36, rng);  // 9 words
    EXPECT_LE(faults.size(), 9u);
    EXPECT_GE(faults.size(), 8u);  // last word partial; bit may fall out
    for (const auto& f : faults) EXPECT_LT(f.byte_addr, 36u);
  }
}

TEST(DramRowFaults, CoversAllRowBlocksOnOneChannel) {
  sim::AddrMap map{6, 16, 16};
  const Addr limit = 1 << 24;  // 16MB space
  const auto blocks = fault::BlocksInSameDramRow(0, map, limit);
  ASSERT_EQ(blocks.size(), 16u);  // blocks_per_row
  for (std::uint64_t b : blocks) {
    EXPECT_EQ(map.Channel(b * kBlockSize), 0u);
    EXPECT_EQ(map.Bank(b * kBlockSize), 0u);
    EXPECT_EQ(map.Row(b * kBlockSize), 0u);
  }
  // Includes the seed block.
  EXPECT_NE(std::find(blocks.begin(), blocks.end(), 0u), blocks.end());
}

TEST(DramRowFaults, ClampsToAddressSpace) {
  sim::AddrMap map{6, 16, 16};
  const Addr limit = 100 * kBlockSize;
  const auto blocks = fault::BlocksInSameDramRow(0, map, limit);
  for (std::uint64_t b : blocks) EXPECT_LT(b * kBlockSize, limit);
  EXPECT_FALSE(blocks.empty());
}

TEST(DramRowFaults, FaultsShareColumnAcrossBlocks) {
  sim::AddrMap map{6, 16, 16};
  Rng rng(3);
  const auto faults = fault::MakeDramRowFaults(0, map, 1 << 24, rng);
  ASSERT_FALSE(faults.empty());
  for (const auto& f : faults) {
    EXPECT_EQ(f.bit, faults[0].bit);
    EXPECT_EQ(f.stuck_value, faults[0].stuck_value);
  }
  // 16 blocks x 32 words each.
  EXPECT_EQ(faults.size(), 16u * 32);
}

TEST(OnlineDetector, FindsDominantBlocks) {
  core::OnlineHotDetector det(8);
  Rng rng(4);
  // Two hot blocks interleaved with a cold stream of 1000 blocks.
  for (int round = 0; round < 2000; ++round) {
    det.Observe(1);
    det.Observe(2);
    det.Observe(100 + rng.Below(1000));
  }
  const auto hot = det.HotBlocks(8.0);
  EXPECT_NE(std::find(hot.begin(), hot.end(), 1u), hot.end());
  EXPECT_NE(std::find(hot.begin(), hot.end(), 2u), hot.end());
  EXPECT_LE(hot.size(), 4u);  // the cold stream stays out
}

TEST(OnlineDetector, UniformStreamReportsNothingHot) {
  core::OnlineHotDetector det(16);
  for (int round = 0; round < 100; ++round) {
    for (std::uint64_t b = 0; b < 64; ++b) det.Observe(b);
  }
  EXPECT_TRUE(det.HotBlocks(8.0).empty());
}

TEST(OnlineDetector, CountsAreUpperBounds) {
  core::OnlineHotDetector det(4);
  for (int i = 0; i < 100; ++i) det.Observe(7);
  for (std::uint64_t b = 0; b < 50; ++b) det.Observe(b);
  const auto top = det.Top();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].block, 7u);
  EXPECT_GE(top[0].count, 100u);  // never undercounts a resident block
  EXPECT_EQ(det.observed(), 150u);
}

TEST(OnlineDetector, ZeroCapacityThrows) {
  EXPECT_THROW(core::OnlineHotDetector(0), std::invalid_argument);
}

}  // namespace
}  // namespace dcrm
