#include <gtest/gtest.h>

#include "sim/config_io.h"

namespace dcrm::sim {
namespace {

TEST(ConfigIo, ParsesKeysOnTopOfBase) {
  const auto cfg = ParseGpuConfigString(
      "# comment\n"
      "num_sms = 30\n"
      "l1_size_bytes=32768   # inline comment\n"
      "sched_policy = lrr\n");
  EXPECT_EQ(cfg.num_sms, 30u);
  EXPECT_EQ(cfg.l1_size_bytes, 32768u);
  EXPECT_EQ(cfg.sched_policy, SchedPolicy::kLrr);
  // Unspecified keys keep defaults.
  EXPECT_EQ(cfg.num_partitions, GpuConfig{}.num_partitions);
}

TEST(ConfigIo, UnknownKeyNamesTheLine) {
  try {
    ParseGpuConfigString("num_sms = 15\nbogus_key = 3\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus_key"), std::string::npos);
  }
}

TEST(ConfigIo, MalformedValueThrows) {
  EXPECT_THROW(ParseGpuConfigString("num_sms = fifteen\n"),
               std::runtime_error);
  EXPECT_THROW(ParseGpuConfigString("num_sms = 15x\n"), std::runtime_error);
  EXPECT_THROW(ParseGpuConfigString("sched_policy = banana\n"),
               std::runtime_error);
  EXPECT_THROW(ParseGpuConfigString("just a line\n"), std::runtime_error);
}

TEST(ConfigIo, DumpRoundTrips) {
  GpuConfig cfg;
  cfg.num_sms = 80;
  cfg.sched_policy = SchedPolicy::kLrr;
  cfg.l2_size_bytes = 512 * 1024;
  cfg.collect_block_misses = true;
  const auto loaded = ParseGpuConfigString(DumpGpuConfig(cfg));
  EXPECT_EQ(loaded.num_sms, 80u);
  EXPECT_EQ(loaded.sched_policy, SchedPolicy::kLrr);
  EXPECT_EQ(loaded.l2_size_bytes, 512u * 1024);
  EXPECT_TRUE(loaded.collect_block_misses);
  EXPECT_EQ(loaded.t_cl, cfg.t_cl);
}

TEST(ConfigIo, EmptyInputYieldsBase) {
  GpuConfig base;
  base.num_sms = 99;
  const auto cfg = ParseGpuConfigString("", base);
  EXPECT_EQ(cfg.num_sms, 99u);
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(LoadGpuConfigFile("/no/such/file.cfg"), std::runtime_error);
}

}  // namespace
}  // namespace dcrm::sim
