// Static trace analyzer tests: certification of the paper's protected
// apps, read-only violations on GRAMSCHM/writable plans, synthetic
// inter-warp races, replica-aliasing and capacity lints, and the
// campaign-launch gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/analysis.h"
#include "apps/driver.h"
#include "apps/registry.h"
#include "core/replication.h"
#include "fault/campaign.h"

namespace dcrm {
namespace {

using analysis::Check;
using analysis::Finding;
using analysis::Severity;

std::uint64_t CountFindings(const std::vector<Finding>& fs, Check c,
                            Severity s) {
  std::uint64_t n = 0;
  for (const auto& f : fs) {
    if (f.check == c && f.severity == s) ++n;
  }
  return n;
}

std::uint64_t CountFindings(const analysis::Report& r, Check c, Severity s) {
  return CountFindings(r.findings, c, s);
}

// Hand-built warp trace: one warp-level instruction touching `block`.
trace::WarpTrace MakeWarp(WarpId warp, Pc pc, AccessType type, Addr block) {
  trace::WarpTrace wt;
  wt.warp = warp;
  wt.insts.push_back({pc, type, kWarpSize, {BlockBase(block)}});
  return wt;
}

// ---------------------------------------------------------------------
// Real applications: the eight protected apps certify clean; the hot
// classifier's read-only claims agree with the analyzer on all ten.

TEST(AnalyzeApps, EightProtectedAppsCertifyCleanAndTenAgreeWithHot) {
  for (const auto& name : apps::AllAppNames()) {
    auto app = apps::MakeApp(name, apps::AppScale::kTiny);
    const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});

    // Cross-check on all ten apps (including the two counterexamples):
    // every coverage-order object the classifier claims read-only must
    // be store-free in the traces.
    const auto claims = analysis::CrossCheckHotClaims(
        *profile.trace_store, profile.dev->space(), profile.hot);
    EXPECT_TRUE(claims.empty())
        << name << ": " << claims.size() << " hot-claim finding(s), first: "
        << (claims.empty() ? "" : claims.front().detail);

    // The paper's eight protected apps certify clean under the default
    // hot cover with duplication.
    const bool protected_app =
        std::find(apps::PaperAppNames().begin(), apps::PaperAppNames().end(),
                  name) != apps::PaperAppNames().end();
    if (!protected_app) continue;
    const auto setup = apps::MakeProtectionSetup(
        *app, profile, sim::Scheme::kDetectOnly,
        static_cast<unsigned>(profile.hot.hot_objects.size()));
    analysis::AnalyzerInput in;
    in.traces = profile.trace_store.get();
    in.space = &setup.dev->space();
    in.plan = &setup.plan;
    const auto report = analysis::Analyze(in);
    EXPECT_TRUE(report.Clean())
        << name << " failed certification; first finding: "
        << (report.findings.empty() ? "" : report.findings.front().detail);
    EXPECT_EQ(report.ExitCode(), analysis::kExitClean) << name;
  }
}

TEST(AnalyzeApps, GramschmidtWritablePlanIsReadOnlyViolation) {
  // P-GRAMSCHM has no read-only inputs: any cover must go through the
  // writable-protection extension, and read-only certification must
  // reject it — the paper's counterexample, caught statically.
  auto app = apps::MakeApp("P-GRAMSCHM", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  const std::vector<std::string> cover{"A", "Q", "R"};
  const auto setup = apps::MakeProtectionSetupForObjects(
      *app, profile, sim::Scheme::kDetectCorrect, cover);
  ASSERT_TRUE(setup.plan.propagate_stores);
  analysis::AnalyzerInput in;
  in.traces = profile.trace_store.get();
  in.space = &setup.dev->space();
  in.plan = &setup.plan;
  const auto report = analysis::Analyze(in);
  EXPECT_EQ(CountFindings(report, Check::kReadOnly, Severity::kViolation),
            3u);
  EXPECT_EQ(report.ExitCode(), analysis::kExitViolations);
}

TEST(AnalyzeApps, WritableCoverWithoutPropagationViolates) {
  // The same writable cover with propagation off is the unsound
  // configuration lazy compare cannot survive.
  auto app = apps::MakeApp("P-ATAX", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  mem::DeviceMemory dev;
  app->Setup(dev);
  const auto tmp = dev.space().FindByName("tmp");
  ASSERT_TRUE(tmp.has_value());
  const std::vector<mem::ObjectId> ids{*tmp};
  const auto replicas = core::ReplicateObjects(
      dev, ids, 1, core::ReplicaPlacement::kDefault, 6,
      /*allow_writable=*/true);
  const auto plan = core::MakeProtectionPlan(
      dev.space(), replicas, sim::Scheme::kDetectOnly,
      /*lazy_compare=*/true, /*propagate_stores=*/false);
  const auto findings =
      analysis::CertifyReadOnly(*profile.trace_store, dev.space(), plan);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kViolation);
  EXPECT_EQ(findings[0].subject, "tmp");
  EXPECT_NE(findings[0].detail.find("desynchronize"), std::string::npos);
}

// ---------------------------------------------------------------------
// Synthetic traces: inter-warp race detection semantics.

TEST(AnalyzeRaces, DeliberateInterWarpRaceIsFlagged) {
  mem::DeviceMemory dev;
  dev.space().Allocate("shared", 4 * kBlockSize, false);
  trace::KernelTrace kt;
  kt.name = "racy_kernel";
  kt.warps.push_back(MakeWarp(0, 1, AccessType::kStore, 0));
  kt.warps.push_back(MakeWarp(1, 2, AccessType::kLoad, 0));
  const std::vector<trace::KernelTrace> traces{kt};
  const sim::ProtectionPlan none;
  const auto findings =
      analysis::CheckInterWarpRaces(*trace::BuildStore(traces), dev.space(),
                                    none);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, Check::kInterWarpRace);
  EXPECT_EQ(findings[0].severity, Severity::kInfo);  // unprotected data
  EXPECT_EQ(findings[0].subject, "shared");
  EXPECT_EQ(findings[0].count, 1u);
  EXPECT_NE(findings[0].detail.find("racy_kernel"), std::string::npos);
}

TEST(AnalyzeRaces, RaceOnProtectedBlockIsViolation) {
  mem::DeviceMemory dev;
  dev.space().Allocate("shared", kBlockSize, false);
  const Addr replica = dev.space().AllocateRaw(kBlockSize);
  sim::ProtectionPlan plan;
  plan.scheme = sim::Scheme::kDetectOnly;
  plan.ranges.push_back({0, kBlockSize, {replica, 0}, 0});
  trace::KernelTrace kt;
  kt.warps.push_back(MakeWarp(0, 1, AccessType::kStore, 0));
  kt.warps.push_back(MakeWarp(1, 2, AccessType::kLoad, 0));
  const std::vector<trace::KernelTrace> traces{kt};
  const auto findings =
      analysis::CheckInterWarpRaces(*trace::BuildStore(traces), dev.space(),
                                    plan);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kViolation);
  // The store-propagation extension downgrades it to a warning.
  plan.propagate_stores = true;
  const auto mitigated =
      analysis::CheckInterWarpRaces(*trace::BuildStore(traces), dev.space(),
                                    plan);
  ASSERT_EQ(mitigated.size(), 1u);
  EXPECT_EQ(mitigated[0].severity, Severity::kWarning);
}

TEST(AnalyzeRaces, SameWarpAndCrossKernelSharingAreNotRaces) {
  mem::DeviceMemory dev;
  dev.space().Allocate("a", 4 * kBlockSize, false);
  const sim::ProtectionPlan none;
  // Same warp writes then reads its own block: program order holds.
  trace::KernelTrace same;
  same.warps.push_back(MakeWarp(0, 1, AccessType::kStore, 0));
  same.warps[0].insts.push_back({2, AccessType::kLoad, kWarpSize, {0}});
  EXPECT_TRUE(analysis::CheckInterWarpRaces(*trace::BuildStore({same}),
                                            dev.space(), none)
                  .empty());
  // Writer and reader separated by a kernel boundary: ordered.
  trace::KernelTrace k1;
  k1.warps.push_back(MakeWarp(0, 1, AccessType::kStore, 0));
  trace::KernelTrace k2;
  k2.warps.push_back(MakeWarp(1, 2, AccessType::kLoad, 0));
  EXPECT_TRUE(analysis::CheckInterWarpRaces(*trace::BuildStore({k1, k2}),
                                            dev.space(), none)
                  .empty());
  // Two warps reading the same block: sharing, not a race.
  trace::KernelTrace rr;
  rr.warps.push_back(MakeWarp(0, 1, AccessType::kLoad, 0));
  rr.warps.push_back(MakeWarp(1, 1, AccessType::kLoad, 0));
  EXPECT_TRUE(analysis::CheckInterWarpRaces(*trace::BuildStore({rr}),
                                            dev.space(), none)
                  .empty());
}

TEST(AnalyzeRaces, WriteWriteSharingAcrossWarpsIsFlagged) {
  mem::DeviceMemory dev;
  dev.space().Allocate("out", kBlockSize, false);
  trace::KernelTrace kt;
  kt.warps.push_back(MakeWarp(0, 1, AccessType::kStore, 0));
  kt.warps.push_back(MakeWarp(3, 1, AccessType::kStore, 0));
  const sim::ProtectionPlan none;
  const auto findings =
      analysis::CheckInterWarpRaces(*trace::BuildStore({kt}), dev.space(),
                                    none);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].count, 1u);
}

// ---------------------------------------------------------------------
// Replica layout and capacity lints (hand-built plans).

TEST(AnalyzeLayout, ReplicaAliasingLiveObjectViolates) {
  mem::DeviceMemory dev;
  dev.space().Allocate("a", 2 * kBlockSize, true);
  dev.space().Allocate("b", 2 * kBlockSize, true);
  sim::ProtectionPlan plan;
  plan.scheme = sim::Scheme::kDetectOnly;
  // Replica of 'a' deliberately placed on top of 'b'.
  plan.ranges.push_back({0, 2 * kBlockSize, {2 * kBlockSize, 0}, 0});
  const auto findings =
      analysis::CheckReplicaLayout(dev.space(), plan, std::nullopt);
  ASSERT_EQ(CountFindings(findings, Check::kReplicaLayout,
                          Severity::kViolation),
            1u);
  EXPECT_NE(findings[0].detail.find("'b'"), std::string::npos);
}

TEST(AnalyzeLayout, ReplicaAliasingSelfOrSiblingViolates) {
  mem::DeviceMemory dev;
  dev.space().Allocate("a", 2 * kBlockSize, true);
  const Addr spare_base = dev.space().AllocateRaw(4 * kBlockSize);
  sim::ProtectionPlan plan;
  plan.scheme = sim::Scheme::kDetectCorrect;
  // Both replicas at the same address: one fault hits both copies and
  // the majority vote degenerates.
  plan.ranges.push_back(
      {0, 2 * kBlockSize, {spare_base + 100 * kBlockSize,
                           spare_base + 100 * kBlockSize}, 0});
  const auto findings =
      analysis::CheckReplicaLayout(dev.space(), plan, std::nullopt);
  EXPECT_GE(CountFindings(findings, Check::kReplicaLayout,
                          Severity::kViolation),
            1u);
}

TEST(AnalyzeLayout, ReplicaAliasingSparePoolViolates) {
  mem::DeviceMemory dev;
  dev.space().Allocate("a", kBlockSize, true);
  const Addr replica = dev.space().AllocateRaw(kBlockSize);
  sim::ProtectionPlan plan;
  plan.scheme = sim::Scheme::kDetectOnly;
  plan.ranges.push_back({0, kBlockSize, {replica, 0}, 0});
  // Clean without a spare region...
  EXPECT_TRUE(analysis::CheckReplicaLayout(dev.space(), plan, std::nullopt)
                  .empty());
  // ...but a violation when the retirement spare pool covers it.
  const analysis::SpareRegion spare{replica, 32 * kBlockSize};
  const auto findings =
      analysis::CheckReplicaLayout(dev.space(), plan, spare);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kViolation);
  EXPECT_NE(findings[0].detail.find("spare"), std::string::npos);
}

TEST(AnalyzeLayout, ReplicaOutsideStoreAndOverlappingPrimariesViolate) {
  mem::DeviceMemory dev;
  dev.space().Allocate("a", 2 * kBlockSize, true);
  sim::ProtectionPlan plan;
  plan.scheme = sim::Scheme::kDetectOnly;
  plan.ranges.push_back(
      {0, 2 * kBlockSize, {dev.space().StoreSize() + kBlockSize, 0}, 0});
  plan.ranges.push_back(
      {kBlockSize, kBlockSize, {dev.space().StoreSize() + kBlockSize, 0},
       0});
  const auto findings =
      analysis::CheckReplicaLayout(dev.space(), plan, std::nullopt);
  EXPECT_GE(CountFindings(findings, Check::kReplicaLayout,
                          Severity::kViolation),
            2u);  // overlapping primaries + out-of-store replicas
}

TEST(AnalyzeCapacity, TableOverflowsAreFlagged) {
  mem::DeviceMemory dev;
  sim::GpuConfig cfg;
  sim::ProtectionPlan plan;
  plan.scheme = sim::Scheme::kDetectOnly;
  // 33 one-replica ranges need 33 start addresses > 32-entry table.
  for (unsigned i = 0; i < 33; ++i) {
    std::string name = "o";
    name += std::to_string(i);
    const auto id = dev.space().Allocate(name, kBlockSize, true);
    const auto& obj = dev.space().Object(id);
    const Addr rep = dev.space().AllocateRaw(kBlockSize);
    plan.ranges.push_back({obj.base, obj.size_bytes, {rep, 0}, 0});
  }
  const auto no_traces = trace::BuildStore(std::vector<trace::KernelTrace>{});
  auto findings =
      analysis::LintCapacity(*no_traces, dev.space(), plan, cfg);
  EXPECT_EQ(CountFindings(findings, Check::kCapacity, Severity::kViolation),
            1u);
  // PC-table overflow: 33 tracked load sites > 32 entries.
  plan.ranges.resize(16);
  for (Pc pc = 0; pc < 33; ++pc) plan.pcs.insert(pc);
  findings = analysis::LintCapacity(*no_traces, dev.space(), plan, cfg);
  EXPECT_EQ(CountFindings(findings, Check::kCapacity, Severity::kViolation),
            1u);
}

TEST(AnalyzeCapacity, PoorCoalescingIsInformational) {
  mem::DeviceMemory dev;
  dev.space().Allocate("hot", 32 * kBlockSize, true);
  const Addr replica = dev.space().AllocateRaw(32 * kBlockSize);
  sim::ProtectionPlan plan;
  plan.scheme = sim::Scheme::kDetectOnly;
  plan.ranges.push_back({0, 32 * kBlockSize, {replica, 0}, 0});
  plan.pcs.insert(1);
  // One warp load fanning out to 32 distinct blocks: fully uncoalesced.
  trace::KernelTrace kt;
  trace::WarpTrace wt;
  wt.warp = 0;
  trace::WarpMemInst inst{1, AccessType::kLoad, kWarpSize, {}};
  for (unsigned b = 0; b < 32; ++b) inst.blocks.push_back(b * kBlockSize);
  wt.insts.push_back(inst);
  kt.warps.push_back(wt);
  const auto findings = analysis::LintCapacity(
      *trace::BuildStore({kt}), dev.space(), plan, sim::GpuConfig{});
  ASSERT_EQ(CountFindings(findings, Check::kCoalescing, Severity::kInfo),
            1u);
  EXPECT_EQ(findings.back().count, 32u);
}

// ---------------------------------------------------------------------
// Report plumbing.

TEST(AnalyzeReport, ExitCodesAndWriters) {
  analysis::Report report;
  EXPECT_EQ(report.ExitCode(), analysis::kExitClean);
  report.findings.push_back(
      {Check::kCoalescing, Severity::kInfo, "x", 0, 1, "diag"});
  EXPECT_EQ(report.ExitCode(), analysis::kExitClean);
  EXPECT_TRUE(report.Clean());
  report.findings.push_back(
      {Check::kCapacity, Severity::kWarning, "y", 0, 1, "warn"});
  EXPECT_EQ(report.ExitCode(), analysis::kExitWarnings);
  report.findings.push_back({Check::kReadOnly, Severity::kViolation, "z",
                             0x80, 2, "bad, \"quoted\""});
  EXPECT_EQ(report.ExitCode(), analysis::kExitViolations);
  EXPECT_EQ(report.Worst(), Severity::kViolation);

  std::ostringstream text;
  analysis::WriteText(report, text);
  EXPECT_NE(text.str().find("1 violation(s)"), std::string::npos);
  EXPECT_NE(text.str().find("read-only"), std::string::npos);

  std::ostringstream csv;
  analysis::WriteCsv(report, csv);
  EXPECT_NE(csv.str().find("check,severity,subject,addr,count,detail"),
            std::string::npos);
  EXPECT_NE(csv.str().find("\"bad, \"\"quoted\"\"\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Campaign-launch gate.

// An application that lies about mutability: 'in' is allocated
// read-only (so the hot classifier lists it as coverable) but the
// kernel stores to it — the silent misconfiguration the gate exists
// to catch.
class LyingApp final : public apps::App {
 public:
  std::string Name() const override { return "lying"; }
  void Setup(mem::DeviceMemory& dev) override {
    in_ = exec::ArrayRef<float>(
        dev.space().Object(dev.space().Allocate("in", kN * 4, true)).base);
    out_ = exec::ArrayRef<float>(
        dev.space().Object(dev.space().Allocate("out", kN * 4, false))
            .base);
    for (std::uint64_t i = 0; i < kN; ++i) {
      dev.Write<float>(in_.AddrOf(i), static_cast<float>(i));
    }
  }
  std::vector<apps::KernelLaunch> Kernels() override {
    exec::LaunchConfig cfg;
    cfg.grid = {2, 1, 1};
    cfg.block = {64, 1, 1};
    auto in = in_;
    auto out = out_;
    // Kernel 1 stores to the "read-only" input; kernel 2 then loads it,
    // which is where lazy compare would hit the stale replica.
    return {{"lying_update", cfg,
             [in](exec::ThreadCtx& ctx) {
               const std::uint64_t i =
                   ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
               if (i >= kN) return;
               in.St(ctx, 2, i, in.Ld(ctx, 1, i) + 1.0f);
             }},
            {"lying_consume", cfg, [in, out](exec::ThreadCtx& ctx) {
               const std::uint64_t i =
                   ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
               if (i >= kN) return;
               out.St(ctx, 4, i, in.Ld(ctx, 3, i) * 2.0f);
             }}};
  }
  std::vector<std::string> OutputObjects() const override { return {"out"}; }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override {
    double err = 0;
    for (std::size_t i = 0; i < golden.size(); ++i) {
      err = std::max(err, std::abs(static_cast<double>(golden[i]) -
                                   observed[i]));
    }
    return err;
  }
  double SdcThreshold() const override { return 1e-6; }
  std::string MetricName() const override { return "max-abs-diff"; }

 private:
  static constexpr std::uint64_t kN = 128;
  exec::ArrayRef<float> in_;
  exec::ArrayRef<float> out_;
};

TEST(CampaignGate, RefusesUnsoundPlanUnlessAllowed) {
  LyingApp app;
  const auto profile = apps::ProfileApp(app, sim::GpuConfig{});
  // The classifier believes the allocation flag...
  ASSERT_EQ(profile.hot.coverage_order.size(), 1u);
  EXPECT_EQ(profile.hot.coverage_order[0].name, "in");
  // ...the analyzer's cross-check does not.
  const auto claims = analysis::CrossCheckHotClaims(
      *profile.trace_store, profile.dev->space(), profile.hot);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].check, Check::kHotClaim);
  EXPECT_EQ(claims[0].severity, Severity::kViolation);

  // Covering the lying object must refuse the launch...
  try {
    fault::FaultCampaign campaign(app, profile, sim::Scheme::kDetectOnly, 1);
    FAIL() << "gate did not fire";
  } catch (const analysis::UnsoundPlanError& e) {
    EXPECT_NE(std::string(e.what()).find("allow_unsound"),
              std::string::npos);
    EXPECT_GE(e.report().Count(Severity::kViolation), 1u);
  }

  // ...unless explicitly overridden.
  fault::FaultCampaign forced(app, profile, sim::Scheme::kDetectOnly, 1,
                              mem::EccMode::kNone,
                              core::ReplicaPlacement::kDefault,
                              /*allow_unsound=*/true);
  EXPECT_EQ(forced.RunOnce({}), fault::Outcome::kDetected)
      << "an unsound lazy-compare plan misfires even fault-free — the "
         "exact failure the gate prevents";
}

TEST(CampaignGate, WritableExtensionPassesViaPropagation) {
  // The store-propagating writable path must still launch: its
  // read-only violations are soundly mitigated, so the gate downgrades
  // rather than refuses.
  auto app = apps::MakeApp("P-GRAMSCHM", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  const std::vector<std::string> cover{"A", "Q", "R"};
  fault::FaultCampaign campaign(*app, profile, sim::Scheme::kDetectCorrect,
                                cover);
  EXPECT_EQ(campaign.RunOnce({}), fault::Outcome::kMasked);
}

TEST(CampaignGate, CleanPaperPlanLaunches) {
  auto app = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  fault::FaultCampaign campaign(
      *app, profile, sim::Scheme::kDetectOnly,
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  EXPECT_EQ(campaign.RunOnce({}), fault::Outcome::kMasked);
}

}  // namespace
}  // namespace dcrm
