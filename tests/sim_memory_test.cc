// Detailed tests for the memory-side timing components: address
// mapping, DRAM bank behaviour, partition MSHR merging, and the
// interconnect's routing.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/gpu.h"

namespace dcrm::sim {
namespace {

TEST(AddrMap, BlockInterleavingAcrossChannels) {
  AddrMap map{6, 16, 16};
  for (std::uint64_t b = 0; b < 24; ++b) {
    EXPECT_EQ(map.Channel(b * kBlockSize), b % 6);
  }
}

TEST(AddrMap, BankAndRowProgression) {
  AddrMap map{6, 16, 16};
  // Consecutive blocks within one channel walk the banks.
  const Addr stride = 6 * kBlockSize;  // next block on channel 0
  EXPECT_EQ(map.Bank(0), 0u);
  EXPECT_EQ(map.Bank(stride), 1u);
  EXPECT_EQ(map.Bank(15 * stride), 15u);
  EXPECT_EQ(map.Bank(16 * stride), 0u);  // wraps
  // Rows advance every banks*blocks_per_row channel-blocks.
  EXPECT_EQ(map.Row(0), 0u);
  EXPECT_EQ(map.Row(16 * 16 * stride), 1u);
}

TEST(Dram, DifferentBanksOverlap) {
  GpuConfig cfg;
  AddrMap map{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()};
  GpuStats stats;

  // Serial: two conflicting requests to the same bank, different rows.
  const Addr same_bank_other_row = static_cast<Addr>(cfg.BlocksPerRow()) *
                                   cfg.dram_banks * cfg.num_partitions *
                                   kBlockSize;
  DramChannel serial(cfg, map);
  serial.Push({1, 0, false, 0}, 0);
  serial.Push({2, same_bank_other_row, false, 0}, 0);
  std::vector<MemRequest> done;
  std::uint64_t t_serial = 0;
  while (done.size() < 2) serial.Tick(t_serial++, done, stats);

  // Parallel: two requests to different banks.
  DramChannel parallel(cfg, map);
  parallel.Push({3, 0, false, 0}, 0);
  parallel.Push({4, static_cast<Addr>(cfg.num_partitions) * kBlockSize,
                 false, 0},
                0);
  done.clear();
  std::uint64_t t_par = 0;
  while (done.size() < 2) parallel.Tick(t_par++, done, stats);

  EXPECT_LT(t_par, t_serial);
}

TEST(Dram, QueueCapacityRespected) {
  GpuConfig cfg;
  cfg.dram_queue = 4;
  AddrMap map{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()};
  DramChannel ch(cfg, map);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ch.CanAccept());
    ch.Push({i, i * kBlockSize, false, 0}, 0);
  }
  EXPECT_FALSE(ch.CanAccept());
  GpuStats stats;
  std::vector<MemRequest> done;
  std::uint64_t t = 0;
  while (done.empty()) ch.Tick(t++, done, stats);
  EXPECT_TRUE(ch.CanAccept());
}

TEST(Dram, WritesCompleteWithoutResponses) {
  GpuConfig cfg;
  AddrMap map{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()};
  DramChannel ch(cfg, map);
  GpuStats stats;
  ch.Push({1, 0, true, 0}, 0);
  std::vector<MemRequest> done;
  std::uint64_t t = 0;
  while (done.empty()) ch.Tick(t++, done, stats);
  EXPECT_TRUE(done[0].is_write);
  EXPECT_EQ(stats.dram_writes, 1u);
  EXPECT_EQ(stats.dram_reads, 0u);
}

TEST(Icnt, RoutesResponsesToTheRightSm) {
  GpuConfig cfg;
  Interconnect icnt(cfg);
  icnt.PushResponse({1, 0, false, false, /*sm=*/3}, 0, 0);
  icnt.PushResponse({2, 0, false, false, /*sm=*/7}, 0, 1);
  const std::uint64_t late = 10000;
  EXPECT_FALSE(icnt.PopResponseFor(0, late).has_value());
  auto r3 = icnt.PopResponseFor(3, late);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->id, 1u);
  auto r7 = icnt.PopResponseFor(7, late);
  ASSERT_TRUE(r7.has_value());
  EXPECT_EQ(r7->id, 2u);
}

TEST(Icnt, PartitionsAreIndependentRequestPipes) {
  GpuConfig cfg;
  Interconnect icnt(cfg);
  icnt.PushRequest({1, 0, false, false, 0}, 0, /*partition=*/2);
  EXPECT_FALSE(icnt.PopRequestFor(0, 10000).has_value());
  EXPECT_TRUE(icnt.PopRequestFor(2, 10000).has_value());
}

// Partition-level MSHR merging: two SMs missing the same block cost
// one DRAM read but two responses.
TEST(Partition, MergesCrossSmMisses) {
  GpuConfig cfg;
  AddrMap map{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()};
  MemPartition part(cfg, map, /*id=*/0);
  Interconnect icnt(cfg);
  GpuStats stats;
  icnt.PushRequest({1, 0, false, false, /*sm=*/0}, 0, 0);
  icnt.PushRequest({2, 0, false, false, /*sm=*/1}, 0, 0);
  std::uint64_t t = 0;
  int got0 = 0;
  int got1 = 0;
  while ((got0 == 0 || got1 == 0) && t < 100000) {
    part.Tick(t, icnt, stats);
    if (icnt.PopResponseFor(0, t)) ++got0;
    if (icnt.PopResponseFor(1, t)) ++got1;
    ++t;
  }
  EXPECT_EQ(got0, 1);
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(stats.dram_reads, 1u);  // merged
  EXPECT_EQ(stats.l2_misses, 2u);
}

TEST(Partition, SecondReadHitsL2AfterFill) {
  GpuConfig cfg;
  AddrMap map{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()};
  MemPartition part(cfg, map, 0);
  Interconnect icnt(cfg);
  GpuStats stats;
  icnt.PushRequest({1, 0, false, false, 0}, 0, 0);
  std::uint64_t t = 0;
  while (!icnt.PopResponseFor(0, t) && t < 100000) part.Tick(t++, icnt, stats);
  icnt.PushRequest({2, 0, false, false, 0}, t, 0);
  while (!icnt.PopResponseFor(0, t) && t < 200000) part.Tick(t++, icnt, stats);
  EXPECT_EQ(stats.l2_hits, 1u);
  EXPECT_EQ(stats.dram_reads, 1u);
}

TEST(Partition, WriteMissForwardsToDramWithoutAllocation) {
  GpuConfig cfg;
  AddrMap map{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()};
  MemPartition part(cfg, map, 0);
  Interconnect icnt(cfg);
  GpuStats stats;
  icnt.PushRequest({1, 0, true, false, 0}, 0, 0);
  for (std::uint64_t t = 0; t < 5000; ++t) part.Tick(t, icnt, stats);
  EXPECT_EQ(stats.dram_writes, 1u);
  // A subsequent read must still miss (no write-allocate).
  icnt.PushRequest({2, 0, false, false, 0}, 5000, 0);
  std::uint64_t t = 5000;
  while (!icnt.PopResponseFor(0, t) && t < 100000) part.Tick(t++, icnt, stats);
  EXPECT_EQ(stats.l2_hits, 0u);
}

}  // namespace
}  // namespace dcrm::sim
