// Cross-cutting conservation invariants of the timing simulator,
// checked over every application at tiny scale and over the three
// protection configurations.
#include <gtest/gtest.h>

#include "apps/driver.h"
#include "apps/registry.h"

namespace dcrm {
namespace {

struct Case {
  std::string app;
  sim::Scheme scheme;
  unsigned cover;
};

class StatsInvariants : public ::testing::TestWithParam<Case> {};

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  for (const auto& name : apps::AllAppNames()) {
    cases.push_back({name, sim::Scheme::kNone, 0});
  }
  // Protection variants for a representative subset.
  for (const char* name : {"P-BICG", "A-Laplacian", "C-NN"}) {
    cases.push_back({name, sim::Scheme::kDetectOnly, 1});
    cases.push_back({name, sim::Scheme::kDetectCorrect, 1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllApps, StatsInvariants,
                         ::testing::ValuesIn(MakeCases()),
                         [](const auto& info) {
                           std::string n = info.param.app + "_" +
                                           sim::SchemeName(info.param.scheme);
                           for (auto& c : n) {
                             if (c == '-' || c == '+' || c == ' ') c = '_';
                           }
                           return n;
                         });

TEST_P(StatsInvariants, ConservationLawsHold) {
  const auto& param = GetParam();
  auto app = apps::MakeApp(param.app, apps::AppScale::kTiny);
  const sim::GpuConfig cfg;
  const auto profile = apps::ProfileApp(*app, cfg);
  const auto setup = apps::MakeProtectionSetup(*app, profile, param.scheme,
                                               param.cover);
  const auto s = apps::RunTiming(*app, profile, cfg, setup.plan);

  // Every load access is a hit, a pending hit, or a miss.
  EXPECT_EQ(s.l1_accesses, s.l1_hits + s.l1_pending_hits + s.l1_misses);
  // L2 sees exactly the L1 misses + replica traffic + store
  // transactions (write-through forwards every store). Store
  // transactions are the primary transactions that were not loads.
  const std::uint64_t store_txns = s.transactions - s.l1_accesses;
  EXPECT_EQ(s.l2_accesses,
            s.l1_misses + s.replica_transactions + store_txns);
  EXPECT_EQ(s.l2_accesses, s.l2_hits + s.l2_misses);
  // DRAM reads cannot exceed L2 read misses.
  EXPECT_LE(s.dram_reads, s.l2_misses);
  // All issued transactions were eventually consumed as L1 accesses
  // or stores.
  EXPECT_GT(s.transactions, 0u);
  EXPECT_GT(s.cycles, 0u);
  // Replica traffic only exists under protection.
  if (param.scheme == sim::Scheme::kNone) {
    EXPECT_EQ(s.replica_transactions, 0u);
    EXPECT_EQ(s.comparisons, 0u);
  } else {
    EXPECT_GT(s.replica_transactions, 0u);
    if (param.scheme == sim::Scheme::kDetectOnly) {
      EXPECT_EQ(s.comparisons, s.replica_transactions);
    } else {
      EXPECT_EQ(s.comparisons, 0u);  // correction blocks instead
    }
  }
  // The Fig. 8 block-miss profile was collected during profiling and
  // sums to the run's miss count.
  std::uint64_t profile_misses = 0;
  for (const auto& [b, n] : profile.timing_baseline.block_misses) {
    profile_misses += n;
  }
  EXPECT_EQ(profile_misses, profile.timing_baseline.l1_misses);
}

}  // namespace
}  // namespace dcrm
