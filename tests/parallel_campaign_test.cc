// Determinism properties of the parallel campaign engine: same seed at
// any worker count yields bit-identical merged counts, recovery-tier
// stats and repeat-offender ledgers; different seeds differ; merged
// counters are independent of trial execution order. Plus unit tests
// for the deterministic thread pool the engine fans out on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "apps/driver.h"
#include "apps/registry.h"
#include "common/thread_pool.h"
#include "fault/parallel_campaign.h"

namespace dcrm::fault {
namespace {

class ParallelCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
    profile_ = std::make_unique<apps::ProfileResult>(
        apps::ProfileApp(*app_, sim::GpuConfig{}));
  }

  CampaignSpec Spec(sim::Scheme scheme, unsigned cover) const {
    CampaignSpec spec;
    spec.make_app = [] {
      return apps::MakeApp("P-BICG", apps::AppScale::kTiny);
    };
    spec.profile = profile_.get();
    spec.scheme = scheme;
    spec.cover_objects = cover;
    return spec;
  }

  static CampaignConfig RecoveryConfig() {
    CampaignConfig cc;
    cc.target = Target::kHotBlocks;
    cc.faulty_blocks = 1;
    cc.bits_per_block = 4;
    cc.runs = 40;
    cc.seed = 5;
    cc.recovery.enabled = true;
    cc.recovery.max_retries = 2;
    cc.recovery.escalate_threshold = 2;
    cc.escalation_epoch = 8;
    return cc;
  }

  std::unique_ptr<apps::App> app_;
  std::unique_ptr<apps::ProfileResult> profile_;
};

TEST_F(ParallelCampaignTest, SameSeedIdenticalAtAnyWorkerCount) {
  const CampaignConfig cc = RecoveryConfig();
  ParallelCampaign reference(Spec(sim::Scheme::kDetectOnly, 2), 1);
  const CampaignCounts expect = reference.Run(cc);
  // The campaign does real recovery work, so the equality below is not
  // vacuous.
  ASSERT_GT(expect.recovered + expect.detected, 0u);
  ASSERT_FALSE(reference.ledger().counts().empty());

  for (const unsigned jobs : {2u, 7u, 16u}) {
    ParallelCampaign c(Spec(sim::Scheme::kDetectOnly, 2), jobs);
    const CampaignCounts counts = c.Run(cc);
    EXPECT_EQ(counts, expect) << "jobs=" << jobs;
    // Repeat-offender sets merge identically too.
    EXPECT_EQ(c.ledger(), reference.ledger()) << "jobs=" << jobs;
  }
}

TEST_F(ParallelCampaignTest, RepeatedRunsAccumulateLedgerIdentically) {
  // Run twice on the same campaign: the ledger persists across Run
  // calls (the repeat-offender memory), and a 4-worker campaign walks
  // through exactly the same two-epoch evolution as the serial one.
  const CampaignConfig cc = RecoveryConfig();
  ParallelCampaign serial(Spec(sim::Scheme::kDetectOnly, 2), 1);
  ParallelCampaign wide(Spec(sim::Scheme::kDetectOnly, 2), 4);
  const auto s1 = serial.Run(cc);
  const auto w1 = wide.Run(cc);
  EXPECT_EQ(s1, w1);
  const auto s2 = serial.Run(cc);
  const auto w2 = wide.Run(cc);
  EXPECT_EQ(s2, w2);
  EXPECT_EQ(serial.ledger(), wide.ledger());
}

TEST_F(ParallelCampaignTest, DifferentSeedsDiffer) {
  CampaignConfig cc;
  cc.target = Target::kMissWeighted;
  cc.faulty_blocks = 1;
  cc.bits_per_block = 4;
  cc.runs = 40;
  ParallelCampaign c(Spec(sim::Scheme::kNone, 0), 2);
  cc.seed = 1;
  const auto a = c.Run(cc);
  cc.seed = 2;
  const auto b = c.Run(cc);
  EXPECT_NE(a, b);
}

TEST_F(ParallelCampaignTest, MergedCountersAreTrialOrderIndependent) {
  // Without escalation there is no cross-trial coupling at all: running
  // the trials one by one in a scrambled order and merging must equal
  // the engine's forward pass bit-for-bit.
  CampaignConfig cc;
  cc.target = Target::kMissWeighted;
  cc.faulty_blocks = 2;
  cc.bits_per_block = 2;
  cc.runs = 30;
  cc.seed = 77;

  FaultCampaign forward(*app_, *profile_, sim::Scheme::kDetectCorrect, 2);
  const CampaignCounts expect = forward.Run(cc);

  std::vector<unsigned> order(cc.runs);
  std::iota(order.begin(), order.end(), 0u);
  Rng shuffle_rng(123);
  std::shuffle(order.begin(), order.end(), shuffle_rng);

  FaultCampaign scrambled(*app_, *profile_, sim::Scheme::kDetectCorrect, 2);
  CampaignCounts merged;
  for (const unsigned t : order) {
    MergeTrialResult(merged, scrambled.RunTrial(cc, t));
  }
  EXPECT_EQ(merged, expect);
}

TEST_F(ParallelCampaignTest, MoreWorkersThanTrials) {
  CampaignConfig cc;
  cc.target = Target::kMissWeighted;
  cc.runs = 3;
  cc.seed = 9;
  ParallelCampaign narrow(Spec(sim::Scheme::kNone, 0), 1);
  ParallelCampaign wide(Spec(sim::Scheme::kNone, 0), 16);
  EXPECT_EQ(wide.Run(cc), narrow.Run(cc));
}

TEST_F(ParallelCampaignTest, SerialRunIsTheSameEngine) {
  // FaultCampaign::Run is a jobs=1 call into RunCampaignTrials; a
  // directly-driven engine call must agree with it exactly.
  const CampaignConfig cc = RecoveryConfig();
  FaultCampaign direct(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  const auto via_run = direct.Run(cc);

  FaultCampaign worker(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  core::EscalationLedger ledger;
  FaultCampaign* w = &worker;
  const auto via_engine = RunCampaignTrials({&w, 1}, ledger, nullptr, cc);
  EXPECT_EQ(via_engine, via_run);
  EXPECT_EQ(ledger, direct.ledger());
}

TEST(TrialSeedTest, StreamsAreDistinctAndSeedSensitive) {
  // Adjacent trials and adjacent campaign seeds must land far apart.
  EXPECT_NE(TrialSeed(1, 0), TrialSeed(1, 1));
  EXPECT_NE(TrialSeed(1, 0), TrialSeed(2, 0));
  EXPECT_NE(TrialSeed(1, 1), TrialSeed(2, 0));
  std::vector<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 16; ++s) {
    for (std::uint64_t t = 0; t < 64; ++t) seen.push_back(TrialSeed(s, t));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(ThreadPoolTest, DispatchRunsEveryLaneExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.Dispatch(4, [&](unsigned lane) { ++hits[lane]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWavesAndPartialLanes) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  for (int wave = 0; wave < 50; ++wave) {
    pool.Dispatch(3, [&](unsigned) { ++total; });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAfterBarrier) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.Dispatch(4,
                    [&](unsigned lane) {
                      ++ran;
                      if (lane == 2) throw std::runtime_error("lane 2");
                    }),
      std::runtime_error);
  // The barrier still waited for every lane.
  EXPECT_EQ(ran.load(), 4);
  // And the pool remains usable.
  pool.Dispatch(2, [&](unsigned) { ++ran; });
  EXPECT_EQ(ran.load(), 6);
}

}  // namespace
}  // namespace dcrm::fault
