#include <gtest/gtest.h>

#include <cmath>

#include "apps/bicg.h"
#include "apps/driver.h"
#include "apps/registry.h"
#include "exec/launcher.h"

namespace dcrm::apps {
namespace {

sim::GpuConfig Cfg() { return sim::GpuConfig{}; }

TEST(Bicg, MatchesCpuReference) {
  BicgApp app(48, 40);
  mem::DeviceMemory dev;
  app.Setup(dev);
  exec::DirectDataPlane plane(dev);
  RunKernels(app, plane, nullptr);

  // CPU reference from the same (golden) inputs.
  const auto& sp = dev.space();
  const auto a = sp.Object(*sp.FindByName("A"));
  const auto r = sp.Object(*sp.FindByName("r"));
  const auto p = sp.Object(*sp.FindByName("p"));
  const auto s = sp.Object(*sp.FindByName("s"));
  const auto q = sp.Object(*sp.FindByName("q"));
  auto ldf = [&](Addr base, std::uint64_t i) {
    return dev.ReadGoldenTyped<float>(base + i * 4);
  };
  for (std::uint32_t j = 0; j < 40; ++j) {
    float acc = 0;
    for (std::uint32_t i = 0; i < 48; ++i) {
      acc += ldf(a.base, std::uint64_t{i} * 40 + j) * ldf(r.base, i);
    }
    EXPECT_FLOAT_EQ(ldf(s.base, j), acc) << "s[" << j << "]";
  }
  for (std::uint32_t i = 0; i < 48; ++i) {
    float acc = 0;
    for (std::uint32_t j = 0; j < 40; ++j) {
      acc += ldf(a.base, std::uint64_t{i} * 40 + j) * ldf(p.base, j);
    }
    EXPECT_FLOAT_EQ(ldf(q.base, i), acc) << "q[" << i << "]";
  }
}

TEST(Registry, AllAppsConstructAndRun) {
  for (const auto& name : AllAppNames()) {
    auto app = MakeApp(name, AppScale::kTiny);
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(app->Name(), name);
    mem::DeviceMemory dev;
    app->Setup(dev);
    exec::DirectDataPlane plane(dev);
    EXPECT_NO_THROW(RunKernels(*app, plane, nullptr)) << name;
    const auto out = ReadOutputs(*app, dev);
    EXPECT_FALSE(out.empty()) << name;
    // Fault-free output must self-compare clean.
    EXPECT_EQ(app->OutputError(out, out), 0.0) << name;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(MakeApp("no-such-app", AppScale::kTiny), std::invalid_argument);
}

TEST(Registry, DeterministicAcrossInstances) {
  auto a1 = MakeApp("P-GESUMMV", AppScale::kTiny);
  auto a2 = MakeApp("P-GESUMMV", AppScale::kTiny);
  mem::DeviceMemory d1, d2;
  a1->Setup(d1);
  a2->Setup(d2);
  exec::DirectDataPlane p1(d1), p2(d2);
  RunKernels(*a1, p1, nullptr);
  RunKernels(*a2, p2, nullptr);
  EXPECT_EQ(ReadOutputs(*a1, d1), ReadOutputs(*a2, d2));
}

struct HotCase {
  const char* app;
  std::vector<std::string> expected_hot;
};

class HotClassificationTest : public ::testing::TestWithParam<HotCase> {};

// The paper's Table III bold sets (per the source-code analysis in
// Section IV-A): these must fall out of our profiler + classifier.
INSTANTIATE_TEST_SUITE_P(
    TableIII, HotClassificationTest,
    ::testing::Values(
        HotCase{"P-BICG", {"p", "r"}},
        HotCase{"P-GESUMMV", {"x"}},
        HotCase{"P-MVT", {"y1", "y2"}},
        HotCase{"A-Laplacian", {"Filter", "Filter_Width", "Filter_Height"}},
        HotCase{"A-Meanfilter", {"Filter_Width", "Filter_Height"}},
        HotCase{"A-Sobel", {"Filter", "Filter_Width", "Filter_Height"}},
        HotCase{"A-SRAD", {"i_N", "i_S", "i_E", "i_W"}},
        HotCase{"P-ATAX", {"x"}},
        HotCase{"C-ConvRows", {"Kernel"}}),
    [](const auto& info) {
      std::string n = info.param.app;
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(HotClassificationTest, HotSetMatchesPaper) {
  const auto& param = GetParam();
  auto app = MakeApp(param.app, AppScale::kTiny);
  const auto profile = ProfileApp(*app, Cfg());
  EXPECT_TRUE(profile.hot.has_hot_pattern) << param.app;
  std::vector<std::string> hot_names;
  for (const auto& op : profile.hot.hot_objects) hot_names.push_back(op.name);
  std::sort(hot_names.begin(), hot_names.end());
  auto expected = param.expected_hot;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(hot_names, expected) << param.app;
  // Hot footprint is small, as in Table III.
  EXPECT_LT(profile.hot.hot_footprint, 0.25) << param.app;
}

TEST(HotClassification, NnHotSetIsConvWeights) {
  auto app = MakeApp("C-NN", AppScale::kTiny);
  const auto profile = ProfileApp(*app, Cfg());
  EXPECT_TRUE(profile.hot.has_hot_pattern);
  ASSERT_GE(profile.hot.hot_objects.size(), 2u);
  EXPECT_EQ(profile.hot.hot_objects[0].name, "Layer1_Weights");
  EXPECT_EQ(profile.hot.hot_objects[1].name, "Layer2_Weights");
  // Images must never classify as hot.
  for (const auto& op : profile.hot.hot_objects) {
    EXPECT_NE(op.name, "Images");
  }
}

TEST(HotClassification, CounterexamplesHaveNoHotPattern) {
  for (const char* name : {"C-BlackScholes", "P-GRAMSCHM"}) {
    auto app = MakeApp(name, AppScale::kTiny);
    const auto profile = ProfileApp(*app, Cfg());
    EXPECT_FALSE(profile.hot.has_hot_pattern) << name;
    EXPECT_TRUE(profile.hot.hot_objects.empty()) << name;
  }
}

TEST(HotClassification, HistogramIsHotButUncoverable) {
  // C-Histogram's partial histograms dominate the access profile
  // (knee pattern) but are read-write: the paper's read-only schemes
  // have nothing to protect — the gap the writable extension fills.
  auto app = MakeApp("C-Histogram", AppScale::kTiny);
  const auto profile = ProfileApp(*app, Cfg());
  EXPECT_TRUE(profile.hot.has_hot_pattern);
  EXPECT_TRUE(profile.hot.hot_objects.empty());
}

TEST(Profile, BicgCoverageOrderMatchesTableIII) {
  auto app = MakeApp("P-BICG", AppScale::kTiny);
  const auto profile = ProfileApp(*app, Cfg());
  ASSERT_EQ(profile.hot.coverage_order.size(), 3u);
  // p, r, A per Table III (p/r may tie; A strictly last).
  EXPECT_EQ(profile.hot.coverage_order[2].name, "A");
}

TEST(Profile, TracesCoverAllKernels) {
  auto app = MakeApp("P-MVT", AppScale::kTiny);
  const auto profile = ProfileApp(*app, Cfg());
  ASSERT_NE(profile.trace_store, nullptr);
  EXPECT_EQ(profile.trace_store->NumKernels(), 2u);  // two kernels
  for (std::uint32_t k = 0; k < profile.trace_store->NumKernels(); ++k) {
    EXPECT_GT(profile.trace_store->Kernel(k).TotalMemInsts(), 0u);
  }
}

TEST(Profile, GoldenOutputsRecorded) {
  auto app = MakeApp("A-Sobel", AppScale::kTiny);
  const auto profile = ProfileApp(*app, Cfg());
  EXPECT_EQ(profile.golden.size(), 64u * 64);
}

}  // namespace
}  // namespace dcrm::apps
