// Differential cycle-identity harness for the two replay engines.
//
// The event-driven engine (GpuConfig::engine = kEventDriven) must be
// bit-identical to the cycle-stepped reference in final cycle counts,
// every aggregate statistic, every per-SM / per-partition breakdown,
// and the recovery-cost charges derived from them. GpuStats::sim_ticks
// (engine rounds) is the only field allowed to differ — it is what the
// event engine exists to shrink.
//
// The EventQueue itself enforces the two queue invariants by throwing:
// no wakeup may be scheduled in the past (Update) and an idle-skip may
// never overshoot the earliest pending wakeup (AdvanceTo). Every
// event-engine replay in this file therefore doubles as an invariant
// check — a violation aborts the test with std::logic_error.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/driver.h"
#include "apps/registry.h"
#include "core/recovery.h"
#include "sim/event_queue.h"
#include "sim/gpu.h"

namespace dcrm {
namespace {

// ---------------------------------------------------------------- queue

TEST(EventQueue, OrderingAndTieBreak) {
  sim::EventQueue q(4, 10);
  q.Update(2, 30);
  q.Update(0, 20);
  q.Update(1, 20);  // ties with id 0: lower id wins
  q.Update(3, 15);
  EXPECT_EQ(q.MinTime(), 15u);
  EXPECT_EQ(q.MinId(), 3u);
  q.AdvanceTo(15);
  q.Update(3, sim::kNeverCycle);  // park
  EXPECT_EQ(q.MinTime(), 20u);
  EXPECT_EQ(q.MinId(), 0u);
  q.AdvanceTo(20);
  q.Update(0, 40);
  EXPECT_EQ(q.MinId(), 1u);
  EXPECT_EQ(q.TimeOf(0), 40u);
  EXPECT_EQ(q.TimeOf(3), sim::kNeverCycle);
}

TEST(EventQueue, AllParkedReportsNever) {
  sim::EventQueue q(3, 0);
  EXPECT_EQ(q.MinTime(), sim::kNeverCycle);
  q.Update(1, 5);
  q.AdvanceTo(5);
  q.Update(1, sim::kNeverCycle);
  EXPECT_EQ(q.MinTime(), sim::kNeverCycle);
}

TEST(EventQueue, UpdateInPastThrows) {
  sim::EventQueue q(2, 0);
  q.Update(0, 10);
  q.AdvanceTo(10);
  EXPECT_THROW(q.Update(1, 9), std::logic_error);
  q.Update(1, 10);  // == now is fine (forced due this round)
  EXPECT_EQ(q.TimeOf(1), 10u);
}

TEST(EventQueue, AdvanceInvariantsThrow) {
  sim::EventQueue q(2, 0);
  q.Update(0, 10);
  q.Update(1, 25);
  EXPECT_THROW(q.AdvanceTo(11), std::logic_error);  // overshoots id 0
  q.AdvanceTo(10);
  EXPECT_THROW(q.AdvanceTo(9), std::logic_error);  // backwards
  EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, ZeroComponentsThrows) {
  EXPECT_THROW(sim::EventQueue(0), std::invalid_argument);
}

// --------------------------------------------------- identity helpers

void ExpectStatsEqual(const sim::GpuStats& a, const sim::GpuStats& b,
                      const std::string& what) {
#define DCRM_EQ_FIELD(f) EXPECT_EQ(a.f, b.f) << what << ": field " #f
  DCRM_EQ_FIELD(cycles);
  DCRM_EQ_FIELD(warp_insts_issued);
  DCRM_EQ_FIELD(mem_insts);
  DCRM_EQ_FIELD(transactions);
  DCRM_EQ_FIELD(replica_transactions);
  DCRM_EQ_FIELD(l1_accesses);
  DCRM_EQ_FIELD(l1_hits);
  DCRM_EQ_FIELD(l1_pending_hits);
  DCRM_EQ_FIELD(l1_misses);
  DCRM_EQ_FIELD(l2_accesses);
  DCRM_EQ_FIELD(l2_hits);
  DCRM_EQ_FIELD(l2_misses);
  DCRM_EQ_FIELD(replica_l2_hits);
  DCRM_EQ_FIELD(replica_l2_misses);
  DCRM_EQ_FIELD(dram_reads);
  DCRM_EQ_FIELD(dram_writes);
  DCRM_EQ_FIELD(dram_row_hits);
  DCRM_EQ_FIELD(mshr_stalls);
  DCRM_EQ_FIELD(compare_queue_stalls);
  DCRM_EQ_FIELD(comparisons);
#undef DCRM_EQ_FIELD
  EXPECT_EQ(a.block_misses, b.block_misses) << what << ": block_misses";
}

void ExpectDetailEqual(const apps::TimingDetail& cyc,
                       const apps::TimingDetail& evt,
                       const std::string& what) {
  ExpectStatsEqual(cyc.total, evt.total, what + " total");
  ASSERT_EQ(cyc.per_sm.size(), evt.per_sm.size());
  ASSERT_EQ(cyc.per_partition.size(), evt.per_partition.size());
  for (std::size_t s = 0; s < cyc.per_sm.size(); ++s) {
    ExpectStatsEqual(cyc.per_sm[s], evt.per_sm[s],
                     what + " sm" + std::to_string(s));
  }
  for (std::size_t p = 0; p < cyc.per_partition.size(); ++p) {
    ExpectStatsEqual(cyc.per_partition[p], evt.per_partition[p],
                     what + " part" + std::to_string(p));
  }
}

sim::GpuConfig WithEngine(sim::GpuConfig cfg, sim::SimEngine e) {
  cfg.engine = e;
  return cfg;
}

// ------------------------------------------------- golden-app matrix

// Every app in the registry, fault-free replay: total, per-SM and
// per-partition stats must match bit for bit, and the event engine
// must get there in fewer rounds overall.
TEST(EngineIdentity, AllGoldenAppsFaultFree) {
  std::uint64_t cycle_rounds = 0;
  std::uint64_t event_rounds = 0;
  for (const std::string& name : apps::AllAppNames()) {
    SCOPED_TRACE(name);
    auto app = apps::MakeApp(name, apps::AppScale::kTiny);
    const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
    const auto cyc = apps::RunTimingDetailed(
        *app, profile, WithEngine({}, sim::SimEngine::kCycleStepped), {});
    const auto evt = apps::RunTimingDetailed(
        *app, profile, WithEngine({}, sim::SimEngine::kEventDriven), {});
    ExpectDetailEqual(cyc, evt, name);
    // The reference executes one round per cycle; the event engine may
    // never need more rounds than cycles.
    EXPECT_EQ(cyc.total.sim_ticks, cyc.total.cycles) << name;
    EXPECT_LE(evt.total.sim_ticks, cyc.total.sim_ticks) << name;
    cycle_rounds += cyc.total.sim_ticks;
    event_rounds += evt.total.sim_ticks;
  }
  // Idle-skipping must actually skip something across the suite.
  EXPECT_LT(event_rounds, cycle_rounds);
}

// Paper-scale geometry (V100-class: 80 SMs, 32 memory partitions) —
// the regime where idle-component skipping matters most, and where
// the dense-round bulk re-key path in the engine is exercised hardest.
TEST(EngineIdentity, PaperScaleGeometry) {
  sim::GpuConfig base;
  base.num_sms = 80;
  base.num_partitions = 32;
  for (const std::string& name : {std::string("P-BICG"),
                                  std::string("A-Sobel")}) {
    SCOPED_TRACE(name);
    auto app = apps::MakeApp(name, apps::AppScale::kTiny);
    const auto profile = apps::ProfileApp(*app, base);
    const auto cyc = apps::RunTimingDetailed(
        *app, profile, WithEngine(base, sim::SimEngine::kCycleStepped), {});
    const auto evt = apps::RunTimingDetailed(
        *app, profile, WithEngine(base, sim::SimEngine::kEventDriven), {});
    ExpectDetailEqual(cyc, evt, name);
    EXPECT_LE(evt.total.sim_ticks, cyc.total.sim_ticks) << name;
  }
}

// Replication schemes exercise the comparator pipeline, replica
// transactions, and the compare-queue stall path.
TEST(EngineIdentity, ReplicationSchemeMatrix) {
  for (const std::string& name : {std::string("P-BICG"),
                                  std::string("A-Sobel")}) {
    auto app = apps::MakeApp(name, apps::AppScale::kTiny);
    const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
    struct Case {
      sim::Scheme scheme;
      bool lazy;
      const char* tag;
    };
    const Case cases[] = {
        {sim::Scheme::kDetectOnly, true, "detect-lazy"},
        {sim::Scheme::kDetectOnly, false, "detect-eager"},
        {sim::Scheme::kDetectCorrect, true, "correct"},
    };
    for (const Case& c : cases) {
      SCOPED_TRACE(name + "/" + c.tag);
      const auto setup = apps::MakeProtectionSetup(*app, profile, c.scheme,
                                                  /*cover_objects=*/2,
                                                  c.lazy);
      const auto cyc = apps::RunTimingDetailed(
          *app, profile, WithEngine({}, sim::SimEngine::kCycleStepped),
          setup.plan);
      const auto evt = apps::RunTimingDetailed(
          *app, profile, WithEngine({}, sim::SimEngine::kEventDriven),
          setup.plan);
      ExpectDetailEqual(cyc, evt, name + "/" + c.tag);
      EXPECT_GT(cyc.total.replica_transactions, 0u);
      // The lazy comparator path is the only one that books comparisons
      // (eager/vote blocks on the copies instead).
      if (c.scheme == sim::Scheme::kDetectOnly && c.lazy) {
        EXPECT_GT(cyc.total.comparisons, 0u);
      }
    }
  }
}

// Read-write cover turns on store propagation (replica write traffic).
TEST(EngineIdentity, WritableStorePropagation) {
  auto app = apps::MakeApp("P-MVT", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  const std::vector<std::string> cover{"y1", "y2", "x1", "x2"};
  const auto setup = apps::MakeProtectionSetupForObjects(
      *app, profile, sim::Scheme::kDetectCorrect, cover);
  ASSERT_TRUE(setup.plan.propagate_stores);
  const auto cyc = apps::RunTimingDetailed(
      *app, profile, WithEngine({}, sim::SimEngine::kCycleStepped),
      setup.plan);
  const auto evt = apps::RunTimingDetailed(
      *app, profile, WithEngine({}, sim::SimEngine::kEventDriven),
      setup.plan);
  ExpectDetailEqual(cyc, evt, "P-MVT rw");
  EXPECT_GT(cyc.total.replica_transactions, 0u);
}

// The Fig. 8 per-block miss profile must be map-identical too.
TEST(EngineIdentity, BlockMissProfile) {
  auto app = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  sim::GpuConfig cfg;
  cfg.collect_block_misses = true;
  const auto cyc = apps::RunTimingDetailed(
      *app, profile, WithEngine(cfg, sim::SimEngine::kCycleStepped), {});
  const auto evt = apps::RunTimingDetailed(
      *app, profile, WithEngine(cfg, sim::SimEngine::kEventDriven), {});
  ExpectDetailEqual(cyc, evt, "P-BICG misses");
  EXPECT_FALSE(evt.total.block_misses.empty());
}

// Recovery-cost charges are a pure function of run cycles; identical
// cycle counts must produce identical charges.
TEST(EngineIdentity, ChargeRecoveryMatches) {
  auto app = apps::MakeApp("A-SRAD", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  const auto cyc = apps::RunTiming(
      *app, profile, WithEngine({}, sim::SimEngine::kCycleStepped), {});
  const auto evt = apps::RunTiming(
      *app, profile, WithEngine({}, sim::SimEngine::kEventDriven), {});
  ASSERT_EQ(cyc.cycles, evt.cycles);
  core::RecoveryStats rs;
  rs.scrubs = 7;
  rs.scrub_sticks = 5;
  rs.arbitrations = 2;
  rs.retired_blocks = 2;
  rs.retries = 3;
  rs.backoff_units = 7;
  rs.escalations = 1;
  const sim::GpuConfig cfg;
  const auto a = core::ChargeRecovery(rs, /*runs=*/40, cyc.cycles, cfg);
  const auto b = core::ChargeRecovery(rs, /*runs=*/40, evt.cycles, cfg);
  EXPECT_EQ(a.scrub_cycles, b.scrub_cycles);
  EXPECT_EQ(a.retire_cycles, b.retire_cycles);
  EXPECT_EQ(a.reexec_cycles, b.reexec_cycles);
  EXPECT_EQ(a.backoff_cycles, b.backoff_cycles);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.per_run_overhead, b.per_run_overhead);
}

// A kernel with zero CTAs still burns exactly one dispatch cycle in
// the reference loop; the event engine replicates it.
TEST(EngineIdentity, EmptyKernel) {
  trace::KernelTrace kt;
  kt.cfg.grid = {0, 1, 1};
  kt.cfg.block = {kWarpSize, 1, 1};
  const std::vector<trace::KernelTrace> kernels{kt};
  sim::Gpu cyc(WithEngine({}, sim::SimEngine::kCycleStepped), {});
  sim::Gpu evt(WithEngine({}, sim::SimEngine::kEventDriven), {});
  const auto a = cyc.Run(kernels);
  const auto b = evt.Run(kernels);
  EXPECT_EQ(a.cycles, 1u);
  EXPECT_EQ(b.cycles, 1u);
  EXPECT_EQ(b.sim_ticks, 1u);
}

// ------------------------------------------------ randomized property

// Hand-built random traces through randomly perturbed GPU geometries.
// Each case replays the same trace through both engines and demands
// bit-identical totals and per-component breakdowns. The EventQueue's
// throwing invariants ride along on every event-engine replay.
TEST(EngineIdentity, RandomizedTraceProperty) {
  std::mt19937_64 rng(2026);
  auto pick = [&rng](std::uint32_t lo, std::uint32_t hi) {
    return std::uniform_int_distribution<std::uint32_t>(lo, hi)(rng);
  };
  constexpr int kCases = 100;
  for (int n = 0; n < kCases; ++n) {
    SCOPED_TRACE("case " + std::to_string(n));
    sim::GpuConfig cfg;
    cfg.num_sms = pick(1, 6);
    cfg.num_partitions = 1u << pick(0, 2);
    cfg.dram_banks = 1u << pick(2, 4);
    cfg.max_ctas_per_sm = pick(1, 4);
    cfg.issue_width = pick(1, 2);
    cfg.max_warp_mlp = pick(1, 4);
    cfg.alu_cycles_per_mem = pick(0, 12);
    cfg.ldst_throughput = pick(1, 2);
    cfg.l1_ways = 1u << pick(0, 2);
    cfg.l1_size_bytes = kBlockSize * cfg.l1_ways * (1u << pick(2, 6));
    cfg.l1_latency = pick(1, 40);
    cfg.l1_mshrs = pick(1, 16);
    cfg.icnt_latency = pick(1, 48);
    cfg.icnt_resp_bytes_per_cycle = 1u << pick(4, 7);
    cfg.l2_ways = 1u << pick(1, 4);
    cfg.l2_size_bytes = kBlockSize * cfg.l2_ways * (1u << pick(4, 7));
    cfg.l2_latency = pick(1, 40);
    cfg.l2_mshrs = pick(1, 32);
    cfg.l2_input_queue = pick(1, 16);
    cfg.t_rcd = pick(4, 20);
    cfg.t_rp = pick(4, 20);
    cfg.t_cl = pick(4, 20);
    cfg.burst_cycles = pick(2, 8);
    cfg.row_bytes = 1024u << pick(0, 1);
    cfg.dram_queue = pick(2, 32);
    cfg.collect_block_misses = (n % 4 == 0);

    // One warps-per-CTA for the whole case so every kernel fits the
    // SM occupancy limits (otherwise dispatch deadlocks — faithfully,
    // in both engines, but at max_cycles expense).
    const std::uint32_t wpc = pick(1, 4);
    cfg.max_warps_per_sm = wpc * pick(1, 4);
    const std::uint32_t kernels_n = pick(1, 2);
    std::vector<trace::KernelTrace> kernels;
    for (std::uint32_t k = 0; k < kernels_n; ++k) {
      const std::uint32_t ctas = pick(1, 6);
      trace::KernelTrace kt;
      kt.cfg.grid = {ctas, 1, 1};
      kt.cfg.block = {wpc * kWarpSize, 1, 1};
      for (std::uint32_t c = 0; c < ctas; ++c) {
        for (std::uint32_t w = 0; w < wpc; ++w) {
          trace::WarpTrace wt;
          wt.warp = c * wpc + w;
          wt.cta = c;
          const std::uint32_t insts = pick(0, 8);
          for (std::uint32_t i = 0; i < insts; ++i) {
            trace::WarpMemInst inst;
            inst.pc = 0x100 + 8 * pick(0, 5);
            inst.type = pick(0, 9) < 8 ? AccessType::kLoad
                                       : AccessType::kStore;
            inst.active_lanes = 32;
            const std::uint32_t nblk = pick(1, 4);
            for (std::uint32_t b = 0; b < nblk; ++b) {
              inst.blocks.push_back(
                  static_cast<Addr>(pick(0, 255)) * kBlockSize);
            }
            wt.insts.push_back(std::move(inst));
          }
          kt.warps.push_back(std::move(wt));
        }
      }
      kernels.push_back(std::move(kt));
    }

    sim::Gpu cyc(WithEngine(cfg, sim::SimEngine::kCycleStepped), {});
    sim::Gpu evt(WithEngine(cfg, sim::SimEngine::kEventDriven), {});
    const auto a = cyc.Run(kernels, /*max_cycles=*/1'000'000);
    const auto b = evt.Run(kernels, /*max_cycles=*/1'000'000);
    ExpectStatsEqual(a, b, "totals");
    EXPECT_LE(b.sim_ticks, a.sim_ticks);
    const auto& asm_ = cyc.PerSmStats();
    const auto& bsm = evt.PerSmStats();
    ASSERT_EQ(asm_.size(), bsm.size());
    for (std::size_t s = 0; s < asm_.size(); ++s) {
      ExpectStatsEqual(asm_[s], bsm[s], "sm" + std::to_string(s));
    }
    const auto& ap = cyc.PerPartitionStats();
    const auto& bp = evt.PerPartitionStats();
    ASSERT_EQ(ap.size(), bp.size());
    for (std::size_t p = 0; p < ap.size(); ++p) {
      ExpectStatsEqual(ap[p], bp[p], "part" + std::to_string(p));
    }
    if (HasFailure()) break;  // first divergent case is enough
  }
}

}  // namespace
}  // namespace dcrm
