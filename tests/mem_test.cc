#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "mem/device_memory.h"
#include "mem/fault_model.h"

namespace dcrm::mem {
namespace {

TEST(AddressSpace, AllocatesBlockAligned) {
  AddressSpace sp;
  const ObjectId a = sp.Allocate("a", 100, true);
  const ObjectId b = sp.Allocate("b", 1, false);
  EXPECT_EQ(sp.Object(a).base % kBlockSize, 0u);
  EXPECT_EQ(sp.Object(b).base % kBlockSize, 0u);
  EXPECT_EQ(sp.Object(b).base, 128u);  // padded past a's block
}

TEST(AddressSpace, ObjectsNeverShareABlock) {
  AddressSpace sp;
  sp.Allocate("a", 130, true);
  sp.Allocate("b", 130, true);
  const auto& oa = sp.Object(0);
  const auto& ob = sp.Object(1);
  EXPECT_LT(BlockOf(oa.end() - 1), BlockOf(ob.base));
}

TEST(AddressSpace, FindAndOwner) {
  AddressSpace sp;
  sp.Allocate("weights", 256, true);
  sp.Allocate("images", 512, false);
  EXPECT_TRUE(sp.FindByName("weights").has_value());
  EXPECT_FALSE(sp.FindByName("nope").has_value());
  EXPECT_EQ(*sp.OwnerOf(0), 0u);
  EXPECT_EQ(*sp.OwnerOf(300), 1u);
  EXPECT_FALSE(sp.OwnerOf(100000).has_value());
}

TEST(AddressSpace, DuplicateNameThrows) {
  AddressSpace sp;
  sp.Allocate("x", 4, true);
  EXPECT_THROW(sp.Allocate("x", 4, true), std::invalid_argument);
}

TEST(AddressSpace, ZeroSizeThrows) {
  AddressSpace sp;
  EXPECT_THROW(sp.Allocate("x", 0, true), std::invalid_argument);
}

TEST(AddressSpace, RawAllocationsNotListed) {
  AddressSpace sp;
  sp.Allocate("x", 4, true);
  const Addr raw = sp.AllocateRaw(256);
  EXPECT_FALSE(sp.OwnerOf(raw).has_value());
  EXPECT_EQ(sp.Objects().size(), 1u);
  EXPECT_EQ(sp.TotalObjectBytes(), 4u);
}

TEST(BlockRemapTable, TranslatePreservesOffsets) {
  BlockRemapTable t;
  EXPECT_TRUE(t.Empty());
  t.Map(2, 7);
  EXPECT_TRUE(t.Contains(2));
  EXPECT_EQ(t.Translate(2 * kBlockSize + 5), 7 * kBlockSize + 5);
  EXPECT_EQ(t.Translate(3 * kBlockSize + 5), 3 * kBlockSize + 5);
  t.Clear();
  EXPECT_TRUE(t.Empty());
  EXPECT_EQ(t.Translate(2 * kBlockSize), 2 * kBlockSize);
}

TEST(BlockRemapTable, RejectsSelfAndDuplicateMapping) {
  BlockRemapTable t;
  EXPECT_THROW(t.Map(1, 1), std::invalid_argument);
  t.Map(1, 2);
  EXPECT_THROW(t.Map(1, 3), std::invalid_argument);
}

TEST(DeviceMemory, RetiredBlockEscapesStuckFault) {
  DeviceMemory dev;
  dev.space().Allocate("x", 64, false);
  dev.Write<float>(0, 1.0f);
  // Stuck bit inside 1.0f's exponent byte: reads come back corrupted.
  dev.faults().Add({.byte_addr = 2, .bit = 5, .stuck_value = true});
  EXPECT_NE(dev.Read<float>(0), 1.0f);
  // Retire block 0 to a spare: the fault map is keyed by physical
  // address, so remapped accesses land on healthy cells.
  const Addr spare = dev.space().AllocateRaw(kBlockSize);
  dev.retired().Map(0, spare / kBlockSize);
  dev.Write<float>(0, 1.0f);
  EXPECT_EQ(dev.Read<float>(0), 1.0f);
  EXPECT_EQ(dev.Translate(2), spare + 2);
}

TEST(DeviceMemory, SecdedProbeRanksFaultSeverity) {
  DeviceMemory dev;  // EccMode::kNone — the probe is out-of-band
  dev.space().Allocate("x", 64, false);
  dev.Write<std::uint64_t>(0, 0);
  EXPECT_EQ(dev.SecdedProbe(0, 8), EccStatus::kOk);
  dev.faults().Add({.byte_addr = 0, .bit = 0, .stuck_value = true});
  EXPECT_EQ(dev.SecdedProbe(0, 8), EccStatus::kCorrectedSingle);
  dev.faults().Add({.byte_addr = 1, .bit = 1, .stuck_value = true});
  EXPECT_EQ(dev.SecdedProbe(0, 8), EccStatus::kDetectedDouble);
  // The probe never throws and never touches the ECC counters.
  EXPECT_EQ(dev.ecc_counters().detected_due, 0u);
}

TEST(FaultModel, StuckAtOneAsserts) {
  FaultMap fm;
  fm.Add({.byte_addr = 10, .bit = 3, .stuck_value = true});
  EXPECT_EQ(fm.ApplyByte(10, 0x00), 0x08);
  EXPECT_EQ(fm.ApplyByte(10, 0xFF), 0xFF);
  EXPECT_EQ(fm.ApplyByte(11, 0x00), 0x00);  // other bytes untouched
}

TEST(FaultModel, StuckAtZeroClears) {
  FaultMap fm;
  fm.Add({.byte_addr = 10, .bit = 3, .stuck_value = false});
  EXPECT_EQ(fm.ApplyByte(10, 0xFF), 0xF7);
  EXPECT_EQ(fm.ApplyByte(10, 0x00), 0x00);
}

TEST(FaultModel, ApplySpansBytes) {
  FaultMap fm;
  fm.Add({.byte_addr = 2, .bit = 0, .stuck_value = true});
  fm.Add({.byte_addr = 5, .bit = 7, .stuck_value = false});
  std::uint8_t buf[8] = {0, 0, 0, 0, 0xFF, 0xFF, 0, 0};
  fm.Apply(0, buf, 8);
  EXPECT_EQ(buf[2], 0x01);
  EXPECT_EQ(buf[5], 0x7F);
  EXPECT_EQ(buf[4], 0xFF);
}

TEST(FaultModel, TracksFaultyBlocks) {
  FaultMap fm;
  fm.Add({.byte_addr = 300, .bit = 1, .stuck_value = true});
  EXPECT_TRUE(fm.BlockHasFaults(2));
  EXPECT_FALSE(fm.BlockHasFaults(0));
  fm.Clear();
  EXPECT_TRUE(fm.Empty());
}

TEST(FaultModel, MakeWordFaultsRespectsRecipe) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const auto faults = MakeWordFaults(/*block_base=*/256, 3, rng);
    ASSERT_EQ(faults.size(), 3u);
    // All faults within one aligned 4-byte word of the block.
    const Addr word_base = faults[0].byte_addr & ~Addr{3};
    EXPECT_GE(word_base, 256u);
    EXPECT_LT(word_base, 256u + kBlockSize);
    for (const auto& f : faults) {
      EXPECT_GE(f.byte_addr, word_base);
      EXPECT_LT(f.byte_addr, word_base + 4);
      EXPECT_LE(f.bit, 7);
    }
    // Distinct bit positions within the word.
    for (std::size_t i = 0; i < faults.size(); ++i) {
      for (std::size_t j = i + 1; j < faults.size(); ++j) {
        const bool same = faults[i].byte_addr == faults[j].byte_addr &&
                          faults[i].bit == faults[j].bit;
        EXPECT_FALSE(same);
      }
    }
  }
}

TEST(FaultModel, RangeRestrictedFaultsStayInObjectBytes) {
  Rng rng(31);
  // A 36-byte object at the head of its block: faults must target
  // words 0..8 only, never the padding.
  for (int trial = 0; trial < 200; ++trial) {
    const auto faults = MakeWordFaultsInRange(256, 256 + 36, 3, rng);
    for (const auto& f : faults) {
      EXPECT_GE(f.byte_addr, 256u);
      EXPECT_LT(f.byte_addr, 256u + 36u);
    }
  }
}

TEST(FaultModel, RangeCoveringPartialLastWord) {
  Rng rng(32);
  // A 4-byte object: the only valid word is word 0.
  for (int trial = 0; trial < 50; ++trial) {
    const auto faults = MakeWordFaultsInRange(512, 516, 2, rng);
    for (const auto& f : faults) {
      EXPECT_GE(f.byte_addr, 512u);
      EXPECT_LT(f.byte_addr, 516u);
    }
  }
}

TEST(FaultModel, EmptyRangeThrows) {
  Rng rng(33);
  EXPECT_THROW(MakeWordFaultsInRange(100, 100, 2, rng),
               std::invalid_argument);
}

TEST(FaultModel, MakeWordFaultsBadBitCountThrows) {
  Rng rng(1);
  EXPECT_THROW(MakeWordFaults(0, 0, rng), std::invalid_argument);
  EXPECT_THROW(MakeWordFaults(0, 33, rng), std::invalid_argument);
}

TEST(DeviceMemory, ReadWriteRoundTrip) {
  DeviceMemory dev;
  dev.space().Allocate("x", 64, false);
  dev.Write<float>(0, 3.5f);
  EXPECT_FLOAT_EQ(dev.Read<float>(0), 3.5f);
  dev.Write<std::int32_t>(8, -17);
  EXPECT_EQ(dev.Read<std::int32_t>(8), -17);
}

TEST(DeviceMemory, FaultsVisibleOnReadButNotHealedByWrite) {
  DeviceMemory dev;
  dev.space().Allocate("x", 64, false);
  dev.Write<std::uint32_t>(0, 0);
  dev.faults().Add({.byte_addr = 0, .bit = 0, .stuck_value = true});
  EXPECT_EQ(dev.Read<std::uint32_t>(0), 1u);
  dev.Write<std::uint32_t>(0, 0);  // write does not heal a stuck cell
  EXPECT_EQ(dev.Read<std::uint32_t>(0), 1u);
  EXPECT_EQ(dev.ReadGoldenTyped<std::uint32_t>(0), 0u);
}

TEST(DeviceMemory, OutOfRangeThrows) {
  DeviceMemory dev;
  dev.space().Allocate("x", 16, false);
  EXPECT_THROW(dev.Read<float>(1 << 20), std::out_of_range);
  EXPECT_THROW(dev.Write<float>(1 << 20, 1.0f), std::out_of_range);
}

TEST(DeviceMemory, SecdedCorrectsSingleBit) {
  DeviceMemory dev;
  dev.space().Allocate("x", 64, false);
  dev.set_ecc_mode(EccMode::kSecded);
  dev.Write<std::uint64_t>(0, 0xDEADBEEFCAFEF00DULL);
  dev.faults().Add({.byte_addr = 3, .bit = 2, .stuck_value = true});
  // A single stuck bit is corrected transparently.
  EXPECT_EQ(dev.Read<std::uint64_t>(0), 0xDEADBEEFCAFEF00DULL);
  EXPECT_GE(dev.ecc_counters().corrected, 1u);
}

TEST(DeviceMemory, SecdedDetectsDoubleBit) {
  DeviceMemory dev;
  dev.space().Allocate("x", 64, false);
  dev.set_ecc_mode(EccMode::kSecded);
  dev.Write<std::uint64_t>(0, 0);
  dev.faults().Add({.byte_addr = 0, .bit = 0, .stuck_value = true});
  dev.faults().Add({.byte_addr = 1, .bit = 1, .stuck_value = true});
  EXPECT_THROW(dev.Read<std::uint64_t>(0), DueError);
  EXPECT_GE(dev.ecc_counters().detected_due, 1u);
}

TEST(DeviceMemory, NoEccPassesMultiBitSilently) {
  DeviceMemory dev;
  dev.space().Allocate("x", 64, false);
  dev.Write<std::uint64_t>(0, 0);
  dev.faults().Add({.byte_addr = 0, .bit = 0, .stuck_value = true});
  dev.faults().Add({.byte_addr = 1, .bit = 1, .stuck_value = true});
  EXPECT_EQ(dev.Read<std::uint64_t>(0), 0x0201u);
}

}  // namespace
}  // namespace dcrm::mem
