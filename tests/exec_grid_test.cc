// Additional execution-model tests: 3D grids, CTA linearization,
// warp formation over 2D blocks, and data-plane interactions.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/protection.h"
#include "core/replication.h"
#include "exec/data_plane.h"
#include "exec/launcher.h"

namespace dcrm::exec {
namespace {

TEST(Launcher, ThreeDimensionalGrid) {
  mem::DeviceMemory dev;
  dev.space().Allocate("buf", 1024, false);
  DirectDataPlane plane(dev);
  LaunchConfig cfg;
  cfg.grid = {2, 3, 2};
  cfg.block = {4, 2, 2};
  std::set<std::uint32_t> cta_ids;
  std::uint64_t threads = 0;
  LaunchKernel(cfg, plane, nullptr, [&](ThreadCtx& ctx) {
    cta_ids.insert(ctx.coord().cta_linear);
    ++threads;
    EXPECT_LT(ctx.blockIdx().x, 2u);
    EXPECT_LT(ctx.blockIdx().y, 3u);
    EXPECT_LT(ctx.blockIdx().z, 2u);
  });
  EXPECT_EQ(cta_ids.size(), 12u);
  EXPECT_EQ(threads, 12u * 16);
}

TEST(Launcher, TwoDimensionalBlockLinearizesRowMajor) {
  mem::DeviceMemory dev;
  dev.space().Allocate("buf", 1024, false);
  DirectDataPlane plane(dev);
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {16, 4, 1};  // 64 threads = 2 warps
  std::map<std::pair<unsigned, unsigned>, WarpId> warp_of;
  LaunchKernel(cfg, plane, nullptr, [&](ThreadCtx& ctx) {
    warp_of[{ctx.threadIdx().x, ctx.threadIdx().y}] =
        ctx.coord().warp_global;
  });
  // Rows 0-1 form warp 0, rows 2-3 warp 1 (x fastest).
  EXPECT_EQ((warp_of[{0, 0}]), 0u);
  EXPECT_EQ((warp_of[{15, 1}]), 0u);
  EXPECT_EQ((warp_of[{0, 2}]), 1u);
  EXPECT_EQ((warp_of[{15, 3}]), 1u);
}

TEST(Launcher, CtaLinearizationOrder) {
  mem::DeviceMemory dev;
  dev.space().Allocate("buf", 1024, false);
  DirectDataPlane plane(dev);
  LaunchConfig cfg;
  cfg.grid = {3, 2, 1};
  cfg.block = {1, 1, 1};
  std::vector<std::pair<unsigned, unsigned>> order;
  LaunchKernel(cfg, plane, nullptr, [&](ThreadCtx& ctx) {
    order.emplace_back(ctx.blockIdx().x, ctx.blockIdx().y);
  });
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], (std::pair<unsigned, unsigned>{0, 0}));
  EXPECT_EQ(order[1], (std::pair<unsigned, unsigned>{1, 0}));
  EXPECT_EQ(order[3], (std::pair<unsigned, unsigned>{0, 1}));
}

TEST(Launcher, ExceptionAbortsRemainingThreads) {
  mem::DeviceMemory dev;
  dev.space().Allocate("buf", 1024, false);
  DirectDataPlane plane(dev);
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {64, 1, 1};
  int executed = 0;
  EXPECT_THROW(
      LaunchKernel(cfg, plane, nullptr,
                   [&](ThreadCtx& ctx) {
                     ++executed;
                     if (ctx.coord().thread_linear == 10) {
                       throw std::runtime_error("boom");
                     }
                   }),
      std::runtime_error);
  EXPECT_EQ(executed, 11);  // threads after the throwing one never ran
}

TEST(ProtectedPlane, TerminationPropagatesThroughLauncher) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("w", 64, true);
  dev.Write<float>(0, 1.0f);
  const auto infos =
      core::ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 1);
  auto plan =
      core::MakeProtectionPlan(dev.space(), infos, sim::Scheme::kDetectOnly);
  dev.faults().Add({.byte_addr = 1, .bit = 4, .stuck_value = true});
  core::ProtectedDataPlane plane(dev, plan);
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {32, 1, 1};
  EXPECT_THROW(LaunchKernel(cfg, plane, nullptr,
                            [&](ThreadCtx& ctx) {
                              (void)ctx.Ld<float>(1, 0);
                            }),
               core::DetectionTerminated);
}

TEST(ProtectedPlane, StoreToProtectedRangeStillWrites) {
  // The schemes only cover read-only objects, but the plane's store
  // path must stay a plain write (used by unprotected objects).
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("w", 64, true);
  dev.space().Allocate("out", 64, false);
  const auto infos =
      core::ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 1);
  auto plan =
      core::MakeProtectionPlan(dev.space(), infos, sim::Scheme::kDetectOnly);
  core::ProtectedDataPlane plane(dev, plan);
  const float v = 9.0f;
  plane.Store(5, 128, &v, 4);
  EXPECT_FLOAT_EQ(dev.ReadGoldenTyped<float>(128), 9.0f);
}

TEST(DirectPlane, OutOfRangeStoreThrows) {
  mem::DeviceMemory dev;
  dev.space().Allocate("buf", 64, false);
  DirectDataPlane plane(dev);
  float v = 1.0f;
  EXPECT_THROW(plane.Store(1, 1 << 20, &v, 4), std::out_of_range);
}

}  // namespace
}  // namespace dcrm::exec
