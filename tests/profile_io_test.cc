// Round-trip tests for profile persistence.
#include <gtest/gtest.h>

#include "apps/driver.h"
#include "apps/registry.h"
#include "core/profile_io.h"

namespace dcrm::core {
namespace {

TEST(ProfileIo, RoundTripPreservesEverything) {
  auto app = apps::MakeApp("P-GESUMMV", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  const std::string text = SaveProfileToString(profile.profiler);
  const AccessProfiler loaded = LoadProfileFromString(text);

  EXPECT_EQ(loaded.TotalReads(), profile.profiler.TotalReads());
  EXPECT_EQ(loaded.TotalAccesses(), profile.profiler.TotalAccesses());
  ASSERT_EQ(loaded.blocks().size(), profile.profiler.blocks().size());
  for (const auto& [block, bp] : profile.profiler.blocks()) {
    const auto it = loaded.blocks().find(block);
    ASSERT_NE(it, loaded.blocks().end()) << block;
    EXPECT_EQ(it->second.reads, bp.reads);
    EXPECT_EQ(it->second.writes, bp.writes);
    EXPECT_EQ(it->second.l1_misses, bp.l1_misses);
    EXPECT_DOUBLE_EQ(it->second.warp_share, bp.warp_share);
  }
  EXPECT_EQ(loaded.pc_stats().size(), profile.profiler.pc_stats().size());
}

TEST(ProfileIo, RoundTripIsByteStable) {
  auto app = apps::MakeApp("A-Meanfilter", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  const std::string once = SaveProfileToString(profile.profiler);
  const std::string twice =
      SaveProfileToString(LoadProfileFromString(once));
  EXPECT_EQ(once, twice);
}

TEST(ProfileIo, ClassificationSurvivesReload) {
  auto app = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  const AccessProfiler loaded =
      LoadProfileFromString(SaveProfileToString(profile.profiler));
  const auto cls = ClassifyHot(loaded, profile.dev->space());
  ASSERT_EQ(cls.hot_objects.size(), profile.hot.hot_objects.size());
  for (std::size_t i = 0; i < cls.hot_objects.size(); ++i) {
    EXPECT_EQ(cls.hot_objects[i].name, profile.hot.hot_objects[i].name);
  }
}

TEST(ProfileIo, RejectsGarbage) {
  EXPECT_THROW(LoadProfileFromString("not a profile"), std::runtime_error);
  EXPECT_THROW(LoadProfileFromString("dcrm-profile v1\nbogus 1 2\n"),
               std::runtime_error);
  EXPECT_THROW(LoadProfileFromString("dcrm-profile v1\nblock xyz\n"),
               std::runtime_error);
}

TEST(ProfileIo, EmptyProfileRoundTrips) {
  AccessProfiler empty;
  const auto loaded =
      LoadProfileFromString(SaveProfileToString(empty));
  EXPECT_TRUE(loaded.blocks().empty());
  EXPECT_EQ(loaded.TotalAccesses(), 0u);
}

}  // namespace
}  // namespace dcrm::core
