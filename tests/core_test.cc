#include <gtest/gtest.h>

#include "apps/driver.h"
#include "apps/registry.h"
#include "core/access_profile.h"
#include "core/hot_classifier.h"
#include "core/protection.h"
#include "core/replication.h"
#include "exec/launcher.h"

namespace dcrm::core {
namespace {

exec::ThreadCoord Coord(WarpId warp, std::uint8_t lane) {
  exec::ThreadCoord c;
  c.warp_global = warp;
  c.lane = lane;
  return c;
}

TEST(AccessProfiler, CountsReadsWritesPerBlock) {
  AccessProfiler prof;
  exec::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {64, 1, 1};
  prof.BeginKernel(cfg);
  prof.OnAccess(Coord(0, 0), {1, 0, 4, AccessType::kLoad});
  prof.OnAccess(Coord(0, 1), {1, 4, 4, AccessType::kLoad});
  prof.OnAccess(Coord(1, 0), {2, 130, 4, AccessType::kStore});
  prof.EndKernel();
  EXPECT_EQ(prof.blocks().at(0).reads, 2u);
  EXPECT_EQ(prof.blocks().at(1).writes, 1u);
  EXPECT_EQ(prof.TotalReads(), 2u);
  EXPECT_EQ(prof.TotalAccesses(), 3u);
}

TEST(AccessProfiler, WarpShareIsPerKernelMax) {
  AccessProfiler prof;
  exec::LaunchConfig k1;
  k1.grid = {1, 1, 1};
  k1.block = {4 * kWarpSize, 1, 1};  // 4 warps
  prof.BeginKernel(k1);
  prof.OnAccess(Coord(0, 0), {1, 0, 4, AccessType::kLoad});
  prof.OnAccess(Coord(1, 0), {1, 0, 4, AccessType::kLoad});
  prof.EndKernel();  // block 0 shared by 2/4 warps
  EXPECT_DOUBLE_EQ(prof.blocks().at(0).warp_share, 0.5);

  exec::LaunchConfig k2 = k1;
  prof.BeginKernel(k2);
  prof.OnAccess(Coord(0, 0), {1, 0, 4, AccessType::kLoad});
  prof.EndKernel();  // 1/4 in kernel 2; max stays 0.5
  EXPECT_DOUBLE_EQ(prof.blocks().at(0).warp_share, 0.5);
}

TEST(AccessProfiler, SortedByReadsAscending) {
  AccessProfiler prof;
  exec::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {32, 1, 1};
  prof.BeginKernel(cfg);
  for (int i = 0; i < 5; ++i) {
    prof.OnAccess(Coord(0, 0), {1, 256, 4, AccessType::kLoad});
  }
  prof.OnAccess(Coord(0, 0), {1, 0, 4, AccessType::kLoad});
  prof.EndKernel();
  const auto sorted = prof.SortedByReads();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_LE(sorted[0].second.reads, sorted[1].second.reads);
  EXPECT_EQ(sorted[1].first, 2u);  // block index 2 is hottest
}

TEST(AccessProfiler, MismatchedBeginEndThrows) {
  AccessProfiler prof;
  EXPECT_THROW(prof.EndKernel(), std::logic_error);
  exec::LaunchConfig cfg;
  prof.BeginKernel(cfg);
  EXPECT_THROW(prof.BeginKernel(cfg), std::logic_error);
}

TEST(CountLoadTransactions, CountsPerBlockLoadsOnly) {
  trace::KernelTrace kt;
  kt.cfg.grid = {1, 1, 1};
  kt.cfg.block = {32, 1, 1};
  trace::WarpTrace wt;
  wt.warp = 0;
  wt.cta = 0;
  wt.insts.push_back({1, AccessType::kLoad, 32, {0, kBlockSize}});
  wt.insts.push_back({2, AccessType::kLoad, 32, {0}});
  wt.insts.push_back({3, AccessType::kStore, 32, {0}});  // not counted
  kt.warps.push_back(wt);
  const auto txns = CountLoadTransactions(*trace::BuildStore({kt}));
  EXPECT_EQ(txns.at(0), 2u);
  EXPECT_EQ(txns.at(1), 1u);
  EXPECT_EQ(txns.size(), 2u);
}

TEST(PcAttribution, MapsLoadSitesToObjects) {
  mem::DeviceMemory dev;
  const auto a = dev.space().Allocate("a", 256, true);
  const auto b = dev.space().Allocate("b", 256, true);
  AccessProfiler prof;
  prof.AttachSpace(&dev.space());
  exec::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {32, 1, 1};
  prof.BeginKernel(cfg);
  const Addr b_base = dev.space().Object(b).base;
  for (int i = 0; i < 10; ++i) {
    prof.OnAccess(Coord(0, 0), {/*pc=*/1, 0, 4, AccessType::kLoad});
    prof.OnAccess(Coord(0, 0), {/*pc=*/2, b_base, 4, AccessType::kLoad});
  }
  // PC 3 touches both objects (rare but possible).
  prof.OnAccess(Coord(0, 0), {3, 0, 4, AccessType::kLoad});
  prof.OnAccess(Coord(0, 0), {3, b_base, 4, AccessType::kLoad});
  prof.EndKernel();

  EXPECT_EQ(prof.pc_stats().at(1).accesses, 10u);
  EXPECT_EQ(prof.pc_stats().at(1).per_object.at(a), 10u);
  const auto pcs_a = prof.PcsTouching(std::vector<mem::ObjectId>{a});
  EXPECT_TRUE(pcs_a.contains(1));
  EXPECT_FALSE(pcs_a.contains(2));
  EXPECT_TRUE(pcs_a.contains(3));
  const auto pcs_b = prof.PcsTouching(std::vector<mem::ObjectId>{b});
  EXPECT_TRUE(pcs_b.contains(2));
  EXPECT_TRUE(pcs_b.contains(3));
}

TEST(ReplayL1Misses, ColdMissesThenHits) {
  trace::KernelTrace kt;
  kt.cfg.grid = {1, 1, 1};
  kt.cfg.block = {32, 1, 1};
  trace::WarpTrace wt;
  wt.warp = 0;
  wt.cta = 0;
  wt.insts.push_back({1, AccessType::kLoad, 32, {0}});
  wt.insts.push_back({1, AccessType::kLoad, 32, {0}});
  wt.insts.push_back({2, AccessType::kLoad, 32, {kBlockSize}});
  kt.warps.push_back(wt);
  const auto misses = ReplayL1Misses(*trace::BuildStore({kt}), 15, 32, 4);
  EXPECT_EQ(misses.at(0), 1u);
  EXPECT_EQ(misses.at(1), 1u);
}

TEST(Replication, CopiesBytesToDistinctAddresses) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("w", 300, true);
  for (Addr a = 0; a < 300; a += 4) {
    dev.Write<std::uint32_t>(a, static_cast<std::uint32_t>(a));
  }
  const auto infos =
      ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 2);
  ASSERT_EQ(infos.size(), 1u);
  const auto& obj = dev.space().Object(id);
  for (unsigned c = 0; c < 2; ++c) {
    const Addr base = infos[0].replica_base[c];
    EXPECT_NE(base, obj.base);
    EXPECT_EQ(base % kBlockSize, 0u);
    for (Addr a = 0; a < 300; a += 4) {
      EXPECT_EQ(dev.Read<std::uint32_t>(base + a),
                static_cast<std::uint32_t>(a));
    }
  }
  EXPECT_NE(infos[0].replica_base[0], infos[0].replica_base[1]);
}

TEST(Replication, WritableObjectRejected) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("out", 64, false);
  EXPECT_THROW(
      ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 1),
      std::invalid_argument);
}

TEST(Replication, SameChannelPlacement) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("w", 64, true);
  dev.space().AllocateRaw(kBlockSize);  // perturb alignment
  const auto infos = ReplicateObjects(
      dev, std::vector<mem::ObjectId>{id}, 1,
      ReplicaPlacement::kSameChannel, /*num_channels=*/6);
  const auto& obj = dev.space().Object(id);
  EXPECT_EQ((infos[0].replica_base[0] / kBlockSize) % 6,
            (obj.base / kBlockSize) % 6);
}

TEST(Replication, SameChannelPlacementMultiBlockObject) {
  // Regression: the channel-padding path must allocate the *full*
  // replica after padding (an early version pointed the replica at a
  // single padding block and memcpy'd past it).
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("w", 10 * kBlockSize, true);
  for (Addr a = 0; a < 10 * kBlockSize; a += 4) {
    dev.Write<std::uint32_t>(a, static_cast<std::uint32_t>(a ^ 0x5a5a));
  }
  dev.space().AllocateRaw(kBlockSize);  // misalign the break
  const auto infos = ReplicateObjects(
      dev, std::vector<mem::ObjectId>{id}, 2,
      ReplicaPlacement::kSameChannel, /*num_channels=*/6);
  const auto& obj = dev.space().Object(id);
  for (unsigned c = 0; c < 2; ++c) {
    const Addr base = infos[0].replica_base[c];
    EXPECT_EQ((base / kBlockSize) % 6, (obj.base / kBlockSize) % 6);
    ASSERT_TRUE(dev.space().ValidRange(base, 10 * kBlockSize));
    for (Addr a = 0; a < 10 * kBlockSize; a += 512) {
      EXPECT_EQ(dev.ReadGoldenTyped<std::uint32_t>(base + a),
                static_cast<std::uint32_t>(a ^ 0x5a5a));
    }
  }
}

TEST(ProtectedPlane, DetectsMismatchAndTerminates) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("w", 64, true);
  dev.Write<float>(0, 1.0f);
  const auto infos =
      ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 1);
  auto plan = MakeProtectionPlan(dev.space(), infos, sim::Scheme::kDetectOnly);
  // Fault the primary copy only (bit 6 of byte 3 = float bit 30).
  dev.faults().Add({.byte_addr = 3, .bit = 6, .stuck_value = true});
  ProtectedDataPlane plane(dev, plan);
  float out = 0;
  EXPECT_THROW(plane.Load(1, 0, &out, 4), DetectionTerminated);
  EXPECT_EQ(plane.detections(), 1u);
}

TEST(ProtectedPlane, CleanLoadPassesThrough) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("w", 64, true);
  dev.Write<float>(0, 2.5f);
  const auto infos =
      ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 1);
  auto plan = MakeProtectionPlan(dev.space(), infos, sim::Scheme::kDetectOnly);
  ProtectedDataPlane plane(dev, plan);
  float out = 0;
  plane.Load(1, 0, &out, 4);
  EXPECT_FLOAT_EQ(out, 2.5f);
  EXPECT_EQ(plane.detections(), 0u);
}

TEST(ProtectedPlane, MajorityVoteCorrectsPrimaryFault) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("w", 64, true);
  dev.Write<float>(0, 3.25f);
  const auto infos =
      ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 2);
  auto plan =
      MakeProtectionPlan(dev.space(), infos, sim::Scheme::kDetectCorrect);
  dev.faults().Add({.byte_addr = 1, .bit = 5, .stuck_value = true});
  dev.faults().Add({.byte_addr = 2, .bit = 6, .stuck_value = false});
  ProtectedDataPlane plane(dev, plan);
  float out = 0;
  plane.Load(1, 0, &out, 4);
  EXPECT_FLOAT_EQ(out, 3.25f);
  EXPECT_EQ(plane.corrections(), 1u);
}

TEST(ProtectedPlane, MajorityVoteCorrectsReplicaFault) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("w", 64, true);
  dev.Write<float>(0, -1.5f);
  const auto infos =
      ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 2);
  auto plan =
      MakeProtectionPlan(dev.space(), infos, sim::Scheme::kDetectCorrect);
  // Fault one replica; primary and other replica out-vote it.
  dev.faults().Add(
      {.byte_addr = infos[0].replica_base[0], .bit = 0, .stuck_value = true});
  ProtectedDataPlane plane(dev, plan);
  float out = 0;
  plane.Load(1, 0, &out, 4);
  EXPECT_FLOAT_EQ(out, -1.5f);
}

TEST(ProtectedPlane, UnprotectedAddressNotChecked) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("w", 64, true);
  dev.space().Allocate("other", 64, true);
  dev.Write<float>(128, 7.0f);
  const auto infos =
      ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 1);
  auto plan = MakeProtectionPlan(dev.space(), infos, sim::Scheme::kDetectOnly);
  dev.faults().Add({.byte_addr = 131, .bit = 7, .stuck_value = true});
  ProtectedDataPlane plane(dev, plan);
  float out = 0;
  plane.Load(1, 128, &out, 4);  // faulty but unprotected: silent
  EXPECT_NE(out, 7.0f);
}

}  // namespace
}  // namespace dcrm::core
