// Tests for the related-work baseline models (RMT trace transform and
// recovery-time formulas).
#include <gtest/gtest.h>

#include "core/baselines.h"

namespace dcrm::core {
namespace {

trace::KernelTrace SmallTrace() {
  trace::KernelTrace kt;
  kt.cfg.grid = {2, 1, 1};
  kt.cfg.block = {64, 1, 1};  // 2 warps per CTA
  for (std::uint32_t c = 0; c < 2; ++c) {
    for (std::uint32_t w = 0; w < 2; ++w) {
      trace::WarpTrace wt;
      wt.cta = c;
      wt.warp = c * 2 + w;
      wt.insts.push_back({1, AccessType::kLoad, 32, {0}});
      wt.insts.push_back({2, AccessType::kStore, 32, {kBlockSize}});
      kt.warps.push_back(wt);
    }
  }
  return kt;
}

TEST(RmtTrace, DoublesWarpsAndDropsShadowStores) {
  const auto in = SmallTrace();
  const auto out = MakeRmtTrace(in);
  EXPECT_EQ(out.warps.size(), in.warps.size() * 2);
  EXPECT_EQ(out.cfg.block.x, in.cfg.block.x * 2);
  // Loads double; stores stay (shadow copies only verify).
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  for (const auto& w : out.warps) {
    for (const auto& i : w.insts) {
      (i.type == AccessType::kLoad ? loads : stores) += 1;
    }
  }
  EXPECT_EQ(loads, 8u);
  EXPECT_EQ(stores, 4u);
}

TEST(RmtTrace, WarpIdsStayUniqueAndCtaLocal) {
  const auto out = MakeRmtTrace(SmallTrace());
  std::set<WarpId> ids;
  const std::uint32_t wpc = out.cfg.WarpsPerCta();
  for (const auto& w : out.warps) {
    EXPECT_TRUE(ids.insert(w.warp).second) << "duplicate warp id";
    EXPECT_EQ(w.warp / wpc, w.cta);
  }
}

TEST(RecoveryModel, DetectRerunGeometricRetry) {
  EXPECT_DOUBLE_EQ(RecoveryModel::DetectRerun(0.0, 0.012), 1.012);
  EXPECT_NEAR(RecoveryModel::DetectRerun(0.5, 0.0), 2.0, 1e-12);
  EXPECT_GT(RecoveryModel::DetectRerun(0.1, 0.012),
            RecoveryModel::DetectRerun(0.0, 0.012));
  EXPECT_THROW(RecoveryModel::DetectRerun(1.0, 0.0), std::invalid_argument);
}

TEST(RecoveryModel, CorrectIsFlatInFaultRate) {
  EXPECT_DOUBLE_EQ(RecoveryModel::Correct(0.034), 1.034);
}

TEST(RecoveryModel, CheckpointPaysEvenWithoutFaults) {
  const double t = RecoveryModel::CheckpointRestart(0.0, 0.25, 0.05, 0.05);
  EXPECT_NEAR(t, 1.2, 1e-12);  // 4 checkpoints of 5% each
  EXPECT_THROW(RecoveryModel::CheckpointRestart(0.1, 0.0, 0.05, 0.05),
               std::invalid_argument);
}

TEST(RecoveryModel, CheckpointCostScalesWithFootprint) {
  const double small = RecoveryModel::CheckpointCost(1 << 20, 16.0, 1000000);
  const double large = RecoveryModel::CheckpointCost(1 << 24, 16.0, 1000000);
  EXPECT_NEAR(large / small, 16.0, 1e-9);
  EXPECT_THROW(RecoveryModel::CheckpointCost(1, 0.0, 1),
               std::invalid_argument);
}

TEST(RecoveryModel, CorrectionDominatesAtSmallOverheads) {
  // The paper's headline comparison with realistic numbers: 3.4%
  // correction beats both rerun-on-detect at high fault rates and
  // checkpointing with a 10% footprint tax.
  const double corr = RecoveryModel::Correct(0.034);
  EXPECT_LT(corr, RecoveryModel::DetectRerun(0.1, 0.012));
  EXPECT_LT(corr, RecoveryModel::CheckpointRestart(0.1, 0.25, 0.1, 0.1));
}

}  // namespace
}  // namespace dcrm::core
