#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "exec/data_plane.h"
#include "exec/kernel.h"
#include "exec/launcher.h"

namespace dcrm::exec {
namespace {

class RecordingSink final : public AccessSink {
 public:
  struct Entry {
    ThreadCoord who;
    AccessRecord what;
  };
  std::vector<Entry> entries;
  void OnAccess(const ThreadCoord& who, const AccessRecord& what) override {
    entries.push_back({who, what});
  }
};

TEST(Launcher, VisitsEveryThreadOnce) {
  mem::DeviceMemory dev;
  dev.space().Allocate("buf", 4096, false);
  DirectDataPlane plane(dev);
  LaunchConfig cfg;
  cfg.grid = {2, 2, 1};
  cfg.block = {8, 4, 1};
  std::set<std::tuple<unsigned, unsigned, unsigned, unsigned>> seen;
  const auto stats = LaunchKernel(cfg, plane, nullptr, [&](ThreadCtx& ctx) {
    seen.insert({ctx.blockIdx().x, ctx.blockIdx().y, ctx.threadIdx().x,
                 ctx.threadIdx().y});
  });
  EXPECT_EQ(stats.threads, 2u * 2 * 8 * 4);
  EXPECT_EQ(stats.ctas, 4u);
  EXPECT_EQ(seen.size(), stats.threads);
}

TEST(Launcher, WarpAndLaneAssignment) {
  mem::DeviceMemory dev;
  dev.space().Allocate("buf", 4096, false);
  DirectDataPlane plane(dev);
  LaunchConfig cfg;
  cfg.grid = {2, 1, 1};
  cfg.block = {64, 1, 1};  // 2 warps per CTA
  EXPECT_EQ(cfg.WarpsPerCta(), 2u);
  EXPECT_EQ(cfg.TotalWarps(), 4u);
  std::vector<WarpId> warp_of_thread;
  std::vector<std::uint8_t> lane_of_thread;
  LaunchKernel(cfg, plane, nullptr, [&](ThreadCtx& ctx) {
    warp_of_thread.push_back(ctx.coord().warp_global);
    lane_of_thread.push_back(ctx.coord().lane);
  });
  ASSERT_EQ(warp_of_thread.size(), 128u);
  EXPECT_EQ(warp_of_thread[0], 0u);
  EXPECT_EQ(warp_of_thread[31], 0u);
  EXPECT_EQ(warp_of_thread[32], 1u);
  EXPECT_EQ(warp_of_thread[64], 2u);   // second CTA starts at warp 2
  EXPECT_EQ(warp_of_thread[127], 3u);
  EXPECT_EQ(lane_of_thread[33], 1u);
}

TEST(Launcher, PartialWarpForOddBlockSize) {
  mem::DeviceMemory dev;
  dev.space().Allocate("buf", 4096, false);
  DirectDataPlane plane(dev);
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {40, 1, 1};  // 1 full + 1 partial warp
  EXPECT_EQ(cfg.WarpsPerCta(), 2u);
  int in_warp1 = 0;
  LaunchKernel(cfg, plane, nullptr, [&](ThreadCtx& ctx) {
    if (ctx.coord().warp_global == 1) ++in_warp1;
  });
  EXPECT_EQ(in_warp1, 8);
}

TEST(ThreadCtx, LdStGoThroughPlaneAndSink) {
  mem::DeviceMemory dev;
  dev.space().Allocate("buf", 4096, false);
  dev.Write<float>(16, 2.5f);
  DirectDataPlane plane(dev);
  RecordingSink sink;
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {1, 1, 1};
  LaunchKernel(cfg, plane, &sink, [&](ThreadCtx& ctx) {
    const float v = ctx.Ld<float>(/*pc=*/7, 16);
    ctx.St<float>(/*pc=*/8, 20, v * 2);
  });
  EXPECT_FLOAT_EQ(dev.Read<float>(20), 5.0f);
  ASSERT_EQ(sink.entries.size(), 2u);
  EXPECT_EQ(sink.entries[0].what.pc, 7u);
  EXPECT_EQ(sink.entries[0].what.type, AccessType::kLoad);
  EXPECT_EQ(sink.entries[1].what.pc, 8u);
  EXPECT_EQ(sink.entries[1].what.type, AccessType::kStore);
  EXPECT_EQ(sink.entries[1].what.addr, 20u);
}

TEST(ThreadCtx, FaultyLoadSeesStuckBits) {
  mem::DeviceMemory dev;
  dev.space().Allocate("buf", 128, false);
  dev.Write<std::uint32_t>(0, 0);
  dev.faults().Add({.byte_addr = 0, .bit = 4, .stuck_value = true});
  DirectDataPlane plane(dev);
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {1, 1, 1};
  std::uint32_t loaded = 0;
  LaunchKernel(cfg, plane, nullptr, [&](ThreadCtx& ctx) {
    loaded = ctx.Ld<std::uint32_t>(1, 0);
  });
  EXPECT_EQ(loaded, 16u);
}

TEST(ArrayRef, IndexArithmetic) {
  ArrayRef<float> arr(256);
  EXPECT_EQ(arr.AddrOf(0), 256u);
  EXPECT_EQ(arr.AddrOf(10), 256u + 40);
}

}  // namespace
}  // namespace dcrm::exec
