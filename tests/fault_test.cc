#include <gtest/gtest.h>

#include "apps/driver.h"
#include "apps/registry.h"
#include "fault/campaign.h"

namespace dcrm::fault {
namespace {

sim::GpuConfig Cfg() { return sim::GpuConfig{}; }

class BicgCampaign : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
    profile_ = std::make_unique<apps::ProfileResult>(
        apps::ProfileApp(*app_, Cfg()));
  }
  std::unique_ptr<apps::App> app_;
  std::unique_ptr<apps::ProfileResult> profile_;
};

TEST_F(BicgCampaign, NoFaultsIsMasked) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kNone, 0);
  EXPECT_EQ(c.RunOnce({}), Outcome::kMasked);
}

TEST_F(BicgCampaign, HotFaultCausesSdcWithoutProtection) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kNone, 0);
  // Flip a high mantissa/exponent bit in r[0] (hot object).
  const auto& sp = profile_->dev->space();
  const Addr r_base = sp.Object(*sp.FindByName("r")).base;
  const Outcome o = c.RunOnce(
      {{.byte_addr = r_base + 3, .bit = 6, .stuck_value = true}});
  EXPECT_EQ(o, Outcome::kSdc);
}

TEST_F(BicgCampaign, DetectionTerminatesInsteadOfSdc) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectOnly, 2);
  const auto& sp = profile_->dev->space();
  const Addr r_base = sp.Object(*sp.FindByName("r")).base;
  const Outcome o = c.RunOnce(
      {{.byte_addr = r_base + 3, .bit = 6, .stuck_value = true}});
  EXPECT_EQ(o, Outcome::kDetected);
}

TEST_F(BicgCampaign, CorrectionMasksTheFault) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectCorrect, 2);
  const auto& sp = profile_->dev->space();
  const Addr r_base = sp.Object(*sp.FindByName("r")).base;
  const Outcome o = c.RunOnce(
      {{.byte_addr = r_base + 3, .bit = 6, .stuck_value = true}});
  EXPECT_EQ(o, Outcome::kMasked);
}

TEST_F(BicgCampaign, UnprotectedObjectFaultsEscapePartialCover) {
  // Cover only the two hot objects (p, r); fault many blocks of A.
  // The scheme must neither detect nor correct them; with enough
  // corrupted elements (each faulty A element poisons one s and one q
  // entry) the output crosses the SDC threshold.
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectCorrect, 2);
  const auto& sp = profile_->dev->space();
  const auto& a = sp.Object(*sp.FindByName("A"));
  std::vector<mem::StuckAtFault> faults;
  // Setting float bit 30 always corrupts values with |v| < 2.
  for (unsigned b = 0; b < 8; ++b) {
    faults.push_back({.byte_addr = a.base + b * 16 * kBlockSize + 3,
                      .bit = 6,
                      .stuck_value = true});
  }
  const Outcome o = c.RunOnce(faults);
  EXPECT_EQ(o, Outcome::kSdc);
}

TEST_F(BicgCampaign, SingleStreamedElementFaultStaysBelowThreshold) {
  // One corrupted A element touches only ~2 of the output elements —
  // below the 5% SDC threshold, mirroring the paper's quality gating.
  FaultCampaign c(*app_, *profile_, sim::Scheme::kNone, 0);
  const auto& sp = profile_->dev->space();
  const Addr a_base = sp.Object(*sp.FindByName("A")).base;
  const Outcome o = c.RunOnce(
      {{.byte_addr = a_base + 3, .bit = 6, .stuck_value = true}});
  EXPECT_EQ(o, Outcome::kMasked);
}

TEST_F(BicgCampaign, CampaignCountsAreConsistent) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kNone, 0);
  CampaignConfig cfg;
  cfg.target = Target::kHotBlocks;
  cfg.faulty_blocks = 1;
  cfg.bits_per_block = 2;
  cfg.runs = 30;
  cfg.seed = 99;
  const auto counts = c.Run(cfg);
  EXPECT_EQ(counts.runs, 30u);
  EXPECT_EQ(counts.masked + counts.sdc + counts.detected + counts.due +
                counts.crash + counts.recovered,
            30u);
}

TEST_F(BicgCampaign, ZeroRunsYieldEmptyCounts) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kNone, 0);
  CampaignConfig cfg;
  cfg.runs = 0;
  const auto counts = c.Run(cfg);
  EXPECT_EQ(counts.runs, 0u);
  EXPECT_EQ(counts.masked + counts.sdc + counts.detected + counts.due +
                counts.crash + counts.recovered,
            0u);
  EXPECT_EQ(counts.corrections, 0u);
}

TEST_F(BicgCampaign, FaultyBlocksClampedToPopulation) {
  // Requesting more faulty blocks than the target set holds injects
  // into all of it instead of throwing or spinning.
  FaultCampaign c(*app_, *profile_, sim::Scheme::kNone, 0);
  CampaignConfig cfg;
  cfg.target = Target::kHotBlocks;
  cfg.faulty_blocks = 1000000;
  cfg.bits_per_block = 1;
  cfg.runs = 2;
  cfg.seed = 3;
  const auto counts = c.Run(cfg);
  EXPECT_EQ(counts.runs, 2u);
}

TEST_F(BicgCampaign, DeterministicAcrossCampaignInstances) {
  // Two independently constructed campaigns with the same seed must
  // produce identical classifications, not merely the same instance
  // re-run (fresh Rng, fresh device, fresh snapshot).
  CampaignConfig cfg;
  cfg.target = Target::kMissWeighted;
  cfg.runs = 15;
  cfg.seed = 42;
  FaultCampaign a(*app_, *profile_, sim::Scheme::kNone, 0);
  FaultCampaign b(*app_, *profile_, sim::Scheme::kNone, 0);
  const auto ca = a.Run(cfg);
  const auto cb = b.Run(cfg);
  EXPECT_EQ(ca.masked, cb.masked);
  EXPECT_EQ(ca.sdc, cb.sdc);
  EXPECT_EQ(ca.detected, cb.detected);
  EXPECT_EQ(ca.due, cb.due);
  EXPECT_EQ(ca.crash, cb.crash);
  EXPECT_EQ(ca.corrections, cb.corrections);
}

TEST_F(BicgCampaign, HotTargetProducesMoreSdcThanRest) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kNone, 0);
  CampaignConfig cfg;
  cfg.faulty_blocks = 1;
  cfg.bits_per_block = 4;
  cfg.runs = 60;
  cfg.seed = 7;
  cfg.target = Target::kHotBlocks;
  const auto hot = c.Run(cfg);
  cfg.target = Target::kRestBlocks;
  const auto rest = c.Run(cfg);
  EXPECT_GT(hot.sdc, rest.sdc);
}

TEST_F(BicgCampaign, ProtectionEliminatesSdcForHotFaults) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kDetectCorrect, 2);
  CampaignConfig cfg;
  cfg.target = Target::kHotBlocks;
  cfg.faulty_blocks = 1;
  cfg.bits_per_block = 4;
  cfg.runs = 40;
  cfg.seed = 5;
  const auto counts = c.Run(cfg);
  EXPECT_EQ(counts.sdc, 0u);
  EXPECT_GT(counts.corrections, 0u);
}

TEST_F(BicgCampaign, DeterministicForSameSeed) {
  FaultCampaign c(*app_, *profile_, sim::Scheme::kNone, 0);
  CampaignConfig cfg;
  cfg.target = Target::kMissWeighted;
  cfg.runs = 20;
  cfg.seed = 123;
  const auto a = c.Run(cfg);
  const auto b = c.Run(cfg);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.masked, b.masked);
}

TEST_F(BicgCampaign, SdcCiIsComputed) {
  CampaignCounts counts;
  counts.runs = 1000;
  counts.sdc = 200;
  const auto ci = counts.SdcCi();
  EXPECT_NEAR(ci.p, 0.2, 1e-12);
  EXPECT_LT(ci.margin, 0.03);
}

TEST(FaultCampaignErrors, HotTargetWithoutHotBlocksThrows) {
  auto app = apps::MakeApp("C-BlackScholes", apps::AppScale::kTiny);
  auto profile = apps::ProfileApp(*app, Cfg());
  FaultCampaign c(*app, profile, sim::Scheme::kNone, 0);
  CampaignConfig cfg;
  cfg.target = Target::kHotBlocks;
  cfg.runs = 1;
  EXPECT_THROW(c.Run(cfg), std::invalid_argument);
}

TEST(FaultCampaignErrors, CoverBeyondOrderThrows) {
  auto app = apps::MakeApp("P-GESUMMV", apps::AppScale::kTiny);
  auto profile = apps::ProfileApp(*app, Cfg());
  EXPECT_THROW(FaultCampaign(*app, profile, sim::Scheme::kDetectOnly, 99),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcrm::fault
