// Kernel-graph runtime tests: structural validation (cycles, missing
// producers, dangling consumers), deterministic topological order, the
// single-chain compatibility shim's bit-identity for every legacy app,
// version-2 trace serialization with graph metadata, node-keyed kernel
// stats, cross-kernel ACE liveness over data edges, and the
// cross-kernel hotness view of the DAG workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/vulnerability.h"
#include "apps/app.h"
#include "apps/registry.h"
#include "core/access_profile.h"
#include "exec/kernel_graph.h"
#include "exec/launcher.h"
#include "mem/device_memory.h"
#include "trace/graph_stats.h"
#include "trace/trace_builder.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"

namespace dcrm {
namespace {

exec::GraphNode Node(std::string name, std::vector<std::string> reads = {},
                     std::vector<std::string> writes = {}) {
  exec::GraphNode n;
  n.name = std::move(name);
  n.cfg.grid = {1, 1, 1};
  n.cfg.block = {1, 1, 1};
  n.body = [](exec::ThreadCtx&) {};
  n.reads = std::move(reads);
  n.writes = std::move(writes);
  return n;
}

// ---------------------------------------------------------------------
// Structural validation.

TEST(KernelGraph, SelfEdgeThrowsImmediately) {
  exec::KernelGraph g;
  g.AddNode(Node("a"));
  EXPECT_THROW(g.AddEdge(0, 0), std::invalid_argument);
}

TEST(KernelGraph, OutOfRangeEdgeThrowsImmediately) {
  exec::KernelGraph g;
  g.AddNode(Node("a"));
  EXPECT_THROW(g.AddEdge(0, 5), std::invalid_argument);
  EXPECT_THROW(g.AddEdge(5, 0), std::invalid_argument);
}

TEST(KernelGraph, CycleThrows) {
  exec::KernelGraph g;
  g.AddNode(Node("a"));
  g.AddNode(Node("b"));
  g.AddNode(Node("c"));
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  EXPECT_THROW(g.Validate(), std::invalid_argument);
  EXPECT_THROW(g.TopoOrder(), std::invalid_argument);
}

TEST(KernelGraph, MissingProducerThrows) {
  exec::KernelGraph g;
  g.AddNode(Node("w", {}, {"x"}));
  g.AddNode(Node("r", {"x", "y"}, {}));
  // Data edge claims object "y" flows from a node that never writes it.
  g.AddEdge(0, 1, "y");
  EXPECT_THROW(g.Validate(), std::invalid_argument);
}

TEST(KernelGraph, DanglingConsumerThrows) {
  exec::KernelGraph g;
  g.AddNode(Node("w", {}, {"x"}));
  g.AddNode(Node("r", {}, {}));
  // Data edge claims "x" flows into a node that never reads it.
  g.AddEdge(0, 1, "x");
  EXPECT_THROW(g.Validate(), std::invalid_argument);
}

TEST(KernelGraph, ValidDataEdgePasses) {
  exec::KernelGraph g;
  g.AddNode(Node("w", {}, {"x"}));
  g.AddNode(Node("r", {"x"}, {}));
  g.AddEdge(0, 1, "x");
  EXPECT_NO_THROW(g.Validate());
}

// ---------------------------------------------------------------------
// Deterministic topological order.

TEST(KernelGraph, DiamondTopoOrderIsMinNodeId) {
  exec::KernelGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode(Node("n"));
  // Insert edges out of order; the schedule must not depend on it.
  g.AddEdge(2, 3);
  g.AddEdge(1, 3);
  g.AddEdge(0, 2);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.TopoOrder(), (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(KernelGraph, ReadyTieBreakPicksSmallestId) {
  exec::KernelGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode(Node("n"));
  g.AddEdge(0, 2);
  // After node 0, both 1 and 2 are ready; 1 wins by id.
  EXPECT_EQ(g.TopoOrder(), (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(KernelGraph, ConnectByObjectsLinksEveryPriorWriter) {
  exec::KernelGraph g;
  g.AddNode(Node("w1", {}, {"o"}));
  g.AddNode(Node("w2", {}, {"o"}));
  g.AddNode(Node("r", {"o"}, {}));
  g.ConnectByObjects();
  EXPECT_NO_THROW(g.Validate());
  const auto data = g.DataEdges();
  // Both partial writers feed the reader; the writer-writer hazard is
  // an ordering edge, not a data edge.
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0], (exec::GraphEdge{0, 2, "o"}));
  EXPECT_EQ(data[1], (exec::GraphEdge{1, 2, "o"}));
  EXPECT_TRUE(std::any_of(
      g.Edges().begin(), g.Edges().end(),
      [](const exec::GraphEdge& e) {
        return e.producer == 0 && e.consumer == 1 && e.object.empty();
      }));
  EXPECT_EQ(g.TopoOrder(), (std::vector<std::uint32_t>{0, 1, 2}));
}

// ---------------------------------------------------------------------
// Compatibility shim: every legacy app's graph is a chain that runs in
// list order and serializes to byte-identical version-1 artifacts.

std::vector<trace::KernelTrace> RunLegacyList(apps::App& app,
                                              mem::DeviceMemory& dev) {
  exec::DirectDataPlane plane(dev);
  std::vector<trace::KernelTrace> traces;
  for (auto& k : app.Kernels()) {
    trace::TraceBuilder builder;
    exec::LaunchKernel(k.cfg, plane, &builder, k.body);
    traces.push_back(builder.Build(k.cfg));
    traces.back().name = k.name;
  }
  return traces;
}

// The driver's graph walk, minus the profiler: topological order,
// node-id-stamped traces, data edges mapped to kernel indices.
std::shared_ptr<const trace::TraceStore> RunGraphWalk(
    apps::App& app, mem::DeviceMemory& dev) {
  exec::DirectDataPlane plane(dev);
  exec::KernelGraph graph = app.Graph();
  const auto order = graph.TopoOrder();
  std::vector<std::uint32_t> kernel_of(graph.NumNodes(), 0);
  std::vector<trace::KernelTrace> traces;
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const std::uint32_t id = order[idx];
    exec::GraphNode& node = graph.Node(id);
    kernel_of[id] = static_cast<std::uint32_t>(idx);
    trace::TraceBuilder builder;
    exec::LaunchKernel(node.cfg, plane, &builder, node.body);
    traces.push_back(builder.Build(node.cfg));
    traces.back().name = node.name;
    traces.back().node = id;
  }
  std::vector<trace::TraceStore::TraceEdge> edges;
  for (const exec::GraphEdge& e : graph.DataEdges()) {
    edges.push_back(trace::TraceStore::TraceEdge{
        kernel_of[e.producer], kernel_of[e.consumer], e.object});
  }
  return trace::BuildStore(traces, std::move(edges));
}

std::vector<std::string> LegacyAppNames() {
  std::vector<std::string> names = apps::AllAppNames();
  for (const std::string& g : apps::GraphAppNames()) {
    names.erase(std::remove(names.begin(), names.end(), g), names.end());
  }
  return names;
}

TEST(GraphShim, LegacyAppsSerializeBitIdenticallyToVersion1) {
  for (const std::string& name : LegacyAppNames()) {
    auto app1 = apps::MakeApp(name, apps::AppScale::kTiny);
    mem::DeviceMemory dev1;
    app1->Setup(dev1);
    const auto legacy = trace::BuildStore(RunLegacyList(*app1, dev1));

    auto app2 = apps::MakeApp(name, apps::AppScale::kTiny);
    mem::DeviceMemory dev2;
    app2->Setup(dev2);
    const auto graph = RunGraphWalk(*app2, dev2);

    const std::string legacy_bytes = trace::SaveTraceToString(*legacy);
    const std::string graph_bytes = trace::SaveTraceToString(*graph);
    EXPECT_EQ(legacy_bytes, graph_bytes) << name;
    EXPECT_EQ(trace::ProbeTraceTailBytes(graph_bytes).version, 1u) << name;
  }
}

TEST(GraphShim, ShimGraphIsChainOfOrderingEdges) {
  for (const std::string& name : LegacyAppNames()) {
    auto app = apps::MakeApp(name, apps::AppScale::kTiny);
    mem::DeviceMemory dev;
    app->Setup(dev);
    exec::KernelGraph g = app->Graph();
    EXPECT_TRUE(g.DataEdges().empty()) << name;
    ASSERT_GE(g.NumNodes(), 1u) << name;
    EXPECT_EQ(g.Edges().size(), g.NumNodes() - 1u) << name;
    const auto order = g.TopoOrder();
    for (std::uint32_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], i) << name;
    }
  }
}

// ---------------------------------------------------------------------
// Version-2 serialization: graph metadata round-trips, legacy loaders
// of both versions agree through ProbeTraceTail.

TEST(GraphTraceIo, GraphStoreRoundTripsAsVersion2) {
  auto app = apps::MakeApp("L-Transformer", apps::AppScale::kTiny);
  mem::DeviceMemory dev;
  app->Setup(dev);
  const auto store = RunGraphWalk(*app, dev);
  ASSERT_FALSE(store->columns().edges.empty());

  const std::string bytes = trace::SaveTraceToString(*store);
  EXPECT_EQ(trace::ProbeTraceTailBytes(bytes).version, 2u);
  const auto loaded = trace::LoadTraceFromString(bytes);
  // Full columnar equality: node ids and the edge table included.
  EXPECT_TRUE(*loaded == *store);
  // And the reload serializes to the same bytes.
  EXPECT_EQ(trace::SaveTraceToString(*loaded), bytes);
}

TEST(GraphTraceIo, EdgeValidationRejectsMalformedColumns) {
  auto app = apps::MakeApp("L-MLP2", apps::AppScale::kTiny);
  mem::DeviceMemory dev;
  app->Setup(dev);
  const auto store = RunGraphWalk(*app, dev);
  trace::TraceStore::Columns cols = store->columns();
  cols.edges.push_back({99, 0, "X"});
  EXPECT_THROW(trace::TraceStore::FromColumns(std::move(cols)),
               std::invalid_argument);
  trace::TraceStore::Columns cols2 = store->columns();
  cols2.edges.push_back({0, 0, "X"});
  EXPECT_THROW(trace::TraceStore::FromColumns(std::move(cols2)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Node-keyed per-kernel stats: repeated launch names stay distinct.

TEST(GraphStats, RepeatedKernelNamesAreKeyedByNode) {
  auto app = apps::MakeApp("L-Transformer", apps::AppScale::kTiny);
  mem::DeviceMemory dev;
  app->Setup(dev);
  const auto store = RunGraphWalk(*app, dev);
  const auto stats = trace::PerKernelStats(*store);
  ASSERT_EQ(stats.size(), 11u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(stats[i].label, "qkv_gemm@" + std::to_string(i));
    EXPECT_EQ(stats[i].node, i);
  }
  EXPECT_EQ(stats[6].label, "attn_score");  // unique names stay bare
  std::ostringstream os;
  trace::WriteKernelStatsCsv(*store, os);
  EXPECT_EQ(os.str().substr(0, os.str().find('\n')),
            "kernel,node,warps,mem_insts,transactions,store_transactions");
}

TEST(GraphStats, EdgeReuseMeasuresProducerConsumerIntersection) {
  auto app = apps::MakeApp("L-MLP2", apps::AppScale::kTiny);
  mem::DeviceMemory dev;
  app->Setup(dev);
  const auto store = RunGraphWalk(*app, dev);
  const auto reuse = trace::ComputeEdgeReuse(*store);
  ASSERT_EQ(reuse.size(), 2u);  // h0 and h1 chains
  for (const auto& r : reuse) {
    EXPECT_GT(r.reused_blocks, 0u);
    EXPECT_EQ(r.reused_bytes, r.reused_blocks * kBlockSize);
    EXPECT_TRUE(r.object == "h0" || r.object == "h1");
  }
}

// ---------------------------------------------------------------------
// Cross-kernel ACE liveness: a value written by one kernel and read by
// the next is live across the kernel boundary, and the edge rollup
// reports exactly the crossing blocks.

trace::KernelTrace OneInstKernel(const char* name, std::uint32_t node,
                                 Pc pc, AccessType type,
                                 std::uint64_t block) {
  trace::KernelTrace kt;
  kt.name = name;
  kt.node = node;
  trace::WarpTrace wt;
  wt.warp = 0;
  wt.insts.push_back({pc, type, kWarpSize, {block * kBlockSize}});
  kt.warps.push_back(std::move(wt));
  return kt;
}

TEST(GraphVulnerability, LiveIntervalSpansConsumerEdge) {
  mem::DeviceMemory dev;
  dev.space().Allocate("t", kBlockSize, false);
  const auto store = trace::BuildStore(
      std::vector<trace::KernelTrace>{
          OneInstKernel("producer", 0, 1, AccessType::kStore, 0),
          OneInstKernel("consumer", 1, 2, AccessType::kLoad, 0)},
      {{0, 1, "t"}});
  const auto map =
      analysis::AnalyzeVulnerability(*store, dev.space(), {});
  ASSERT_EQ(map.total_transactions, 2u);
  const analysis::BlockLiveness* b = map.Find(0);
  ASSERT_NE(b, nullptr);
  // Store in kernel 0 at slot 0, load in kernel 1 at slot 1: the value
  // is ACE across the whole inter-kernel interval.
  EXPECT_EQ(b->live_spans, 1u);
  EXPECT_EQ(b->ace_transactions, 2u);
  EXPECT_DOUBLE_EQ(b->avf, 1.0);

  ASSERT_EQ(map.kernels.size(), 2u);
  EXPECT_EQ(map.kernels[0].label, "producer");
  EXPECT_EQ(map.kernels[0].node, 0u);
  EXPECT_EQ(map.kernels[1].node, 1u);

  ASSERT_EQ(map.edges.size(), 1u);
  EXPECT_EQ(map.edges[0].producer_label, "producer");
  EXPECT_EQ(map.edges[0].consumer_label, "consumer");
  EXPECT_EQ(map.edges[0].object, "t");
  EXPECT_EQ(map.edges[0].reused_blocks, 1u);
  EXPECT_DOUBLE_EQ(map.edges[0].mean_avf, 1.0);
}

TEST(GraphVulnerability, UnreusedEdgeReportsZeroCrossingBlocks) {
  mem::DeviceMemory dev;
  dev.space().Allocate("t", 2 * kBlockSize, false);
  // Producer writes block 0; consumer reads block 1 — the edge exists
  // structurally but no written value crosses it.
  const auto store = trace::BuildStore(
      std::vector<trace::KernelTrace>{
          OneInstKernel("producer", 0, 1, AccessType::kStore, 0),
          OneInstKernel("consumer", 1, 2, AccessType::kLoad, 1)},
      {{0, 1, "t"}});
  const auto map =
      analysis::AnalyzeVulnerability(*store, dev.space(), {});
  ASSERT_EQ(map.edges.size(), 1u);
  EXPECT_EQ(map.edges[0].reused_blocks, 0u);
  EXPECT_DOUBLE_EQ(map.edges[0].mean_avf, 0.0);
}

// ---------------------------------------------------------------------
// The DAG workloads: structure, and the cross-kernel hotness claim —
// shared weight tensors accumulate reads across launches that no
// single-kernel view would credit them with.

TEST(GraphApps, TransformerGraphValidatesAndChunksShareWeights) {
  auto app = apps::MakeApp("L-Transformer", apps::AppScale::kTiny);
  mem::DeviceMemory dev;
  app->Setup(dev);
  exec::KernelGraph g = app->Graph();
  EXPECT_NO_THROW(g.Validate());
  EXPECT_EQ(g.NumNodes(), 11u);
  const auto data = g.DataEdges();
  // Both Q-half producers feed attn_score, both V-halves feed
  // attn_ctx: the every-prior-writer semantics on chunked GEMMs.
  const auto count_obj = [&](const char* obj) {
    return std::count_if(data.begin(), data.end(),
                         [&](const exec::GraphEdge& e) {
                           return e.object == obj;
                         });
  };
  EXPECT_EQ(count_obj("Q"), 2);
  EXPECT_EQ(count_obj("K"), 2);
  EXPECT_EQ(count_obj("V"), 2);
  EXPECT_EQ(count_obj("scores"), 1);
  EXPECT_EQ(count_obj("attn_out"), 1);
}

TEST(GraphApps, CrossKernelHotnessRanksSharedWeightsAboveSingleKernel) {
  for (const std::string& name : apps::GraphAppNames()) {
    auto app = apps::MakeApp(name, apps::AppScale::kTiny);
    mem::DeviceMemory dev;
    app->Setup(dev);
    core::AccessProfiler prof;
    prof.AttachSpace(&dev.space());
    exec::DirectDataPlane plane(dev);
    exec::KernelGraph graph = app->Graph();
    for (const std::uint32_t id : graph.TopoOrder()) {
      exec::GraphNode& node = graph.Node(id);
      prof.BeginKernel(node.cfg);
      exec::LaunchKernel(node.cfg, plane, &prof, node.body);
      prof.EndKernel();
    }
    const auto objs = core::AggregateByObject(prof, dev.space());
    const auto find = [&](const char* n) {
      const auto it = std::find_if(
          objs.begin(), objs.end(),
          [&](const core::ObjectProfile& o) { return o.name == n; });
      EXPECT_NE(it, objs.end()) << name << "/" << n;
      return *it;
    };
    if (name == "L-Transformer") {
      // X feeds all six projection chunks and the layernorm residual.
      EXPECT_EQ(find("X").kernels_reading, 7u);
      for (const char* w : {"Wq", "Wk", "Wv"}) {
        const auto op = find(w);
        EXPECT_EQ(op.kernels_reading, 2u) << w;
        // The cross-kernel total strictly exceeds what any one launch
        // sees — the single-kernel view under-ranks the shared tensor.
        EXPECT_GT(op.reads, op.max_kernel_reads) << w;
        EXPECT_EQ(op.reads, 2 * op.max_kernel_reads) << w;
      }
    } else {
      for (const char* w : {"W1", "W2"}) {
        const auto op = find(w);
        EXPECT_EQ(op.kernels_reading, 2u) << w;
        EXPECT_GT(op.reads, op.max_kernel_reads) << w;
      }
    }
  }
}

TEST(GraphApps, Mlp2GraphHasTwoIndependentChains) {
  auto app = apps::MakeApp("L-MLP2", apps::AppScale::kTiny);
  mem::DeviceMemory dev;
  app->Setup(dev);
  exec::KernelGraph g = app->Graph();
  EXPECT_NO_THROW(g.Validate());
  EXPECT_EQ(g.NumNodes(), 4u);
  const auto data = g.DataEdges();
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0], (exec::GraphEdge{0, 2, "h0"}));
  EXPECT_EQ(data[1], (exec::GraphEdge{1, 3, "h1"}));
  // The two fc2 launches both write Y: sequential consistency demands
  // an ordering edge between the partial writers.
  EXPECT_TRUE(std::any_of(
      g.Edges().begin(), g.Edges().end(),
      [](const exec::GraphEdge& e) {
        return e.producer == 2 && e.consumer == 3 && e.object.empty();
      }));
}

}  // namespace
}  // namespace dcrm
