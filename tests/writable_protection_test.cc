// Tests for the writable-object protection extension (store
// propagation): the paper's schemes cover read-only inputs only; this
// extension mirrors stores into the replicas and reads protected
// outputs through the voting plane.
#include <gtest/gtest.h>

#include "apps/driver.h"
#include "apps/registry.h"
#include "core/protection.h"
#include "core/replication.h"
#include "fault/campaign.h"

namespace dcrm {
namespace {

TEST(WritableProtection, StorePropagationKeepsCopiesCoherent) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("rw", 256, false);
  dev.Write<float>(0, 1.0f);
  const auto infos = core::ReplicateObjects(
      dev, std::vector<mem::ObjectId>{id}, 2,
      core::ReplicaPlacement::kDefault, 6, /*allow_writable=*/true);
  auto plan = core::MakeProtectionPlan(dev.space(), infos,
                                       sim::Scheme::kDetectCorrect,
                                       /*lazy_compare=*/true,
                                       /*propagate_stores=*/true);
  core::ProtectedDataPlane plane(dev, plan);
  const float updated = 42.0f;
  plane.Store(1, 0, &updated, 4);
  // All three copies hold the new value.
  EXPECT_FLOAT_EQ(dev.ReadGoldenTyped<float>(0), 42.0f);
  for (unsigned c = 0; c < 2; ++c) {
    EXPECT_FLOAT_EQ(
        dev.ReadGoldenTyped<float>(infos[0].replica_base[c]), 42.0f);
  }
  // And the next protected load does not spuriously "correct".
  float v = 0;
  plane.Load(1, 0, &v, 4);
  EXPECT_FLOAT_EQ(v, 42.0f);
  EXPECT_EQ(plane.corrections(), 0u);
}

TEST(WritableProtection, WithoutPropagationStoreDesynchronizesCopies) {
  // Guard rail: replicating a writable object *without* store
  // propagation must make detection fire on the stale replica — the
  // precise reason the paper restricts itself to read-only objects.
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("rw", 64, false);
  dev.Write<float>(0, 1.0f);
  const auto infos = core::ReplicateObjects(
      dev, std::vector<mem::ObjectId>{id}, 1,
      core::ReplicaPlacement::kDefault, 6, /*allow_writable=*/true);
  auto plan = core::MakeProtectionPlan(dev.space(), infos,
                                       sim::Scheme::kDetectOnly);
  core::ProtectedDataPlane plane(dev, plan);
  const float updated = 2.0f;
  plane.Store(1, 0, &updated, 4);  // no propagation configured
  float v = 0;
  EXPECT_THROW(plane.Load(1, 0, &v, 4), core::DetectionTerminated);
}

TEST(WritableProtection, VoteRepairsFaultInWrittenData) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("rw", 64, false);
  dev.Write<float>(0, 1.0f);
  const auto infos = core::ReplicateObjects(
      dev, std::vector<mem::ObjectId>{id}, 2,
      core::ReplicaPlacement::kDefault, 6, /*allow_writable=*/true);
  auto plan = core::MakeProtectionPlan(dev.space(), infos,
                                       sim::Scheme::kDetectCorrect, true,
                                       /*propagate_stores=*/true);
  // Permanent fault in the primary cell: every write lands on a stuck
  // cell, every voted read recovers the written value.
  dev.faults().Add({.byte_addr = 2, .bit = 5, .stuck_value = true});
  core::ProtectedDataPlane plane(dev, plan);
  for (float x : {3.0f, -7.5f, 0.25f}) {
    plane.Store(1, 0, &x, 4);
    float v = 0;
    plane.Load(1, 0, &v, 4);
    EXPECT_FLOAT_EQ(v, x);
  }
  EXPECT_GT(plane.corrections(), 0u);
}

TEST(WritableProtection, GramschmidtProtectedEndToEnd) {
  // P-GRAMSCHM has *no* read-only inputs: the paper's schemes can
  // cover nothing, and a permanent fault in the in-place matrix A
  // propagates through the orthogonalization into every later column
  // (an SDC). With writable protection of A/Q/R (store propagation +
  // voted reads), the same fault is corrected at every read.
  auto app = apps::MakeApp("P-GRAMSCHM", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  EXPECT_TRUE(profile.hot.coverage_order.empty());  // nothing paper-coverable
  const auto& sp = profile.dev->space();
  const Addr a_base = sp.Object(*sp.FindByName("A")).base;
  const std::vector<mem::StuckAtFault> fault{
      {.byte_addr = a_base + 3, .bit = 6, .stuck_value = true}};

  fault::FaultCampaign bare(*app, profile, sim::Scheme::kNone, 0);
  EXPECT_EQ(bare.RunOnce(fault), fault::Outcome::kSdc);

  const std::vector<std::string> cover{"A", "Q", "R"};
  fault::FaultCampaign protectd(*app, profile, sim::Scheme::kDetectCorrect,
                                cover);
  EXPECT_EQ(protectd.RunOnce(fault), fault::Outcome::kMasked);
}

TEST(WritableProtection, AtaxTmpVectorCoveredByExtension) {
  // P-ATAX's tmp is broadcast-read by every kernel-2 thread (as hot
  // as x) but written by kernel 1 — uncoverable by the paper's
  // read-only schemes. A fault there corrupts every output element.
  auto app = apps::MakeApp("P-ATAX", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  const auto& sp = profile.dev->space();
  const Addr tmp_base = sp.Object(*sp.FindByName("tmp")).base;
  const std::vector<mem::StuckAtFault> fault{
      {.byte_addr = tmp_base + 3, .bit = 6, .stuck_value = true}};

  // Paper's best effort (hot cover = {x}) cannot help.
  fault::FaultCampaign paper(*app, profile, sim::Scheme::kDetectCorrect, 1);
  EXPECT_EQ(paper.RunOnce(fault), fault::Outcome::kSdc);

  // Store-propagating cover of {x, tmp} masks it.
  const std::vector<std::string> cover{"x", "tmp"};
  fault::FaultCampaign extended(*app, profile, sim::Scheme::kDetectCorrect,
                                cover);
  EXPECT_EQ(extended.RunOnce(fault), fault::Outcome::kMasked);
}

TEST(WritableProtection, TimingChargesReplicaStores) {
  auto app = apps::MakeApp("P-MVT", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  const std::vector<std::string> ro_cover{"y1", "y2"};
  const std::vector<std::string> rw_cover{"y1", "y2", "x1", "x2"};
  const auto ro = apps::MakeProtectionSetupForObjects(
      *app, profile, sim::Scheme::kDetectCorrect, ro_cover);
  const auto rw = apps::MakeProtectionSetupForObjects(
      *app, profile, sim::Scheme::kDetectCorrect, rw_cover);
  EXPECT_FALSE(ro.plan.propagate_stores);
  EXPECT_TRUE(rw.plan.propagate_stores);
  const auto ro_stats = apps::RunTiming(*app, profile, sim::GpuConfig{},
                                        ro.plan);
  const auto rw_stats = apps::RunTiming(*app, profile, sim::GpuConfig{},
                                        rw.plan);
  // Covering the accumulators adds replica write traffic on top of the
  // read replication (the extra writes may be absorbed by L2, so count
  // L2 accesses, not DRAM writes).
  EXPECT_GT(rw_stats.replica_transactions, ro_stats.replica_transactions);
  EXPECT_GT(rw_stats.l2_accesses, ro_stats.l2_accesses);
}

TEST(WritableProtection, ReadOnlyGuardStillThrowsByDefault) {
  mem::DeviceMemory dev;
  const auto id = dev.space().Allocate("rw", 64, false);
  EXPECT_THROW(
      core::ReplicateObjects(dev, std::vector<mem::ObjectId>{id}, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace dcrm
