// Golden-reference and mathematical-property tests for the
// applications: each kernel is checked against an independent CPU
// implementation or an algebraic identity of its output.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/blackscholes.h"
#include "apps/gesummv.h"
#include "apps/gramschmidt.h"
#include "apps/image_filters.h"
#include "apps/mvt.h"
#include "apps/nn.h"
#include "apps/srad.h"
#include "exec/launcher.h"

namespace dcrm::apps {
namespace {

std::vector<float> ReadArray(const mem::DeviceMemory& dev,
                             const std::string& name) {
  const auto& obj = dev.space().Object(*dev.space().FindByName(name));
  std::vector<float> out(obj.size_bytes / 4);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = dev.ReadGoldenTyped<float>(obj.base + i * 4);
  }
  return out;
}

template <typename AppT>
mem::DeviceMemory RunApp(AppT& app) {
  mem::DeviceMemory dev;
  app.Setup(dev);
  exec::DirectDataPlane plane(dev);
  RunKernels(app, plane, nullptr);
  return dev;
}

TEST(GesummvReference, MatchesCpu) {
  GesummvApp app(40);
  auto dev = RunApp(app);
  const auto a = ReadArray(dev, "A");
  const auto b = ReadArray(dev, "B");
  const auto x = ReadArray(dev, "x");
  const auto y = ReadArray(dev, "y");
  for (std::size_t i = 0; i < 40; ++i) {
    float tmp = 0, acc = 0;
    for (std::size_t j = 0; j < 40; ++j) {
      tmp += a[i * 40 + j] * x[j];
      acc += b[i * 40 + j] * x[j];
    }
    EXPECT_FLOAT_EQ(y[i], 0.75f * tmp + 0.25f * acc) << i;
  }
}

TEST(MvtReference, MatchesCpu) {
  MvtApp app(36);
  mem::DeviceMemory dev;
  app.Setup(dev);
  // Capture the inputs *before* the kernels update x1/x2 in place.
  const auto a = ReadArray(dev, "a");
  const auto y1 = ReadArray(dev, "y1");
  const auto y2 = ReadArray(dev, "y2");
  const auto x1_in = ReadArray(dev, "x1");
  const auto x2_in = ReadArray(dev, "x2");
  exec::DirectDataPlane plane(dev);
  RunKernels(app, plane, nullptr);
  const auto x1 = ReadArray(dev, "x1");
  const auto x2 = ReadArray(dev, "x2");
  for (std::size_t i = 0; i < 36; ++i) {
    float acc1 = x1_in[i];
    float acc2 = x2_in[i];
    for (std::size_t j = 0; j < 36; ++j) {
      acc1 += a[i * 36 + j] * y1[j];
      acc2 += a[j * 36 + i] * y2[j];
    }
    EXPECT_FLOAT_EQ(x1[i], acc1) << i;
    EXPECT_FLOAT_EQ(x2[i], acc2) << i;
  }
}

TEST(MeanfilterReference, InteriorPixelIsNeighborhoodMean) {
  MeanfilterApp app(32, 32);
  auto dev = RunApp(app);
  const auto img = ReadArray(dev, "Image");
  const auto out = ReadArray(dev, "OutImage");
  for (int y = 1; y < 31; y += 7) {
    for (int x = 1; x < 31; x += 5) {
      float acc = 0;
      for (int ky = -1; ky <= 1; ++ky) {
        for (int kx = -1; kx <= 1; ++kx) {
          acc += img[(y + ky) * 32 + (x + kx)];
        }
      }
      EXPECT_NEAR(out[y * 32 + x], acc / 9.0f, 1e-4) << x << "," << y;
    }
  }
}

TEST(LaplacianReference, FlatRegionGivesZero) {
  // A Laplacian over a constant image is exactly zero (the kernel
  // sums to 0) — border clamping included.
  LaplacianApp app(16, 16);
  mem::DeviceMemory dev;
  app.Setup(dev);
  const auto& img = dev.space().Object(*dev.space().FindByName("Image"));
  for (std::size_t i = 0; i < 256; ++i) {
    dev.Write<float>(img.base + i * 4, 100.0f);
  }
  exec::DirectDataPlane plane(dev);
  RunKernels(app, plane, nullptr);
  for (const float v : ReadArray(dev, "OutImage")) {
    EXPECT_NEAR(v, 0.0f, 1e-3);
  }
}

TEST(SobelReference, VerticalEdgeDetected) {
  SobelApp app(16, 16);
  mem::DeviceMemory dev;
  app.Setup(dev);
  const auto& img = dev.space().Object(*dev.space().FindByName("Image"));
  // Left half dark, right half bright.
  for (std::uint32_t y = 0; y < 16; ++y) {
    for (std::uint32_t x = 0; x < 16; ++x) {
      dev.Write<float>(img.base + (y * 16 + x) * 4, x < 8 ? 0.0f : 200.0f);
    }
  }
  exec::DirectDataPlane plane(dev);
  RunKernels(app, plane, nullptr);
  const auto out = ReadArray(dev, "OutImage");
  // Strong response along the edge columns, none in flat regions.
  EXPECT_GT(out[5 * 16 + 7], 100.0f);
  EXPECT_GT(out[5 * 16 + 8], 100.0f);
  EXPECT_NEAR(out[5 * 16 + 2], 0.0f, 1e-3);
  EXPECT_NEAR(out[5 * 16 + 13], 0.0f, 1e-3);
}

TEST(BlackScholesReference, PutCallParity) {
  // C - P = S - X * exp(-rT) must hold for every option.
  BlackScholesApp app(512);
  auto dev = RunApp(app);
  const auto s = ReadArray(dev, "StockPrice");
  const auto x = ReadArray(dev, "OptionStrike");
  const auto t = ReadArray(dev, "OptionYears");
  const auto call = ReadArray(dev, "CallResult");
  const auto put = ReadArray(dev, "PutResult");
  for (std::size_t i = 0; i < 512; ++i) {
    const float parity = s[i] - x[i] * std::exp(-0.02f * t[i]);
    EXPECT_NEAR(call[i] - put[i], parity, 1e-2) << i;
  }
}

TEST(BlackScholesReference, PricesWithinNoArbitrageBounds) {
  BlackScholesApp app(512);
  auto dev = RunApp(app);
  const auto s = ReadArray(dev, "StockPrice");
  const auto call = ReadArray(dev, "CallResult");
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_GE(call[i], -1e-4);
    EXPECT_LE(call[i], s[i] + 1e-4);  // a call never exceeds the stock
  }
}

TEST(GramSchmidtReference, ColumnsOrthonormal) {
  GramSchmidtApp app(64, 12);
  auto dev = RunApp(app);
  const auto q = ReadArray(dev, "Q");
  for (std::uint32_t c1 = 0; c1 < 12; ++c1) {
    for (std::uint32_t c2 = c1; c2 < 12; ++c2) {
      double dot = 0;
      for (std::uint32_t r = 0; r < 64; ++r) {
        dot += static_cast<double>(q[c1 * 64 + r]) * q[c2 * 64 + r];
      }
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-3) << c1 << "," << c2;
    }
  }
}

TEST(GramSchmidtReference, QrReconstructsA) {
  GramSchmidtApp app(48, 8);
  mem::DeviceMemory dev;
  app.Setup(dev);
  const auto a_in = ReadArray(dev, "A");
  exec::DirectDataPlane plane(dev);
  RunKernels(app, plane, nullptr);
  const auto q = ReadArray(dev, "Q");
  const auto r = ReadArray(dev, "R");
  // A = Q * R (column-major columns; R upper triangular).
  for (std::uint32_t col = 0; col < 8; ++col) {
    for (std::uint32_t row = 0; row < 48; ++row) {
      double acc = 0;
      for (std::uint32_t k = 0; k <= col; ++k) {
        acc += static_cast<double>(q[k * 48 + row]) * r[k * 8 + col];
      }
      EXPECT_NEAR(acc, a_in[col * 48 + row], 1e-3) << col << "," << row;
    }
  }
}

TEST(SradReference, UniformImageIsFixedPoint) {
  // On a constant image all derivatives vanish, so one SRAD iteration
  // must return the image unchanged.
  SradApp app(24, 24);
  mem::DeviceMemory dev;
  app.Setup(dev);
  const auto& img = dev.space().Object(*dev.space().FindByName("Image"));
  for (std::size_t i = 0; i < 24 * 24; ++i) {
    dev.Write<float>(img.base + i * 4, 0.5f);
  }
  exec::DirectDataPlane plane(dev);
  RunKernels(app, plane, nullptr);
  for (const float v : ReadArray(dev, "J_out")) {
    EXPECT_NEAR(v, 0.5f, 1e-4);
  }
}

TEST(SradReference, SmoothsSpeckleNoise) {
  // Total variation of the output must not exceed the input's: SRAD
  // is a diffusion step.
  SradApp app(32, 32);
  mem::DeviceMemory dev;
  app.Setup(dev);
  const auto before = ReadArray(dev, "Image");
  exec::DirectDataPlane plane(dev);
  RunKernels(app, plane, nullptr);
  const auto after = ReadArray(dev, "J_out");
  auto variation = [](const std::vector<float>& v) {
    double tv = 0;
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      tv += std::fabs(static_cast<double>(v[i + 1]) - v[i]);
    }
    return tv;
  };
  EXPECT_LT(variation(after), variation(before));
}

TEST(NnReference, ScoresAreFiniteAndImageDependent) {
  NnApp app(4, 6, 16, 10);
  auto dev = RunApp(app);
  const auto scores = ReadArray(dev, "Out_Scores");
  ASSERT_EQ(scores.size(), 40u);
  bool any_diff = false;
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(std::isfinite(scores[i]));
    any_diff = any_diff || scores[i] != scores[10 + i];
  }
  EXPECT_TRUE(any_diff) << "different images must score differently";
}

TEST(NnReference, SquashKeepsNeuronsBounded) {
  NnApp app(2, 6, 16, 10);
  auto dev = RunApp(app);
  for (const char* layer : {"Layer2_Neurons", "Layer3_Neurons",
                            "Layer4_Neurons"}) {
    for (const float v : ReadArray(dev, layer)) {
      EXPECT_LE(std::fabs(v), 1.7159f + 1e-4) << layer;
    }
  }
}

}  // namespace
}  // namespace dcrm::apps
