// End-to-end checks of the paper's main claims on a scaled-down
// configuration: profiling -> hot identification -> protection ->
// (a) SDCs collapse, (b) timing overhead of hot-only protection is
// small while full protection is expensive.
#include <gtest/gtest.h>

#include "apps/driver.h"
#include "apps/registry.h"
#include "fault/campaign.h"

namespace dcrm {
namespace {

sim::GpuConfig Cfg() { return sim::GpuConfig{}; }

TEST(EndToEnd, ReliabilityPipelineOnGesummv) {
  auto app = apps::MakeApp("P-GESUMMV", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, Cfg());
  ASSERT_TRUE(profile.hot.has_hot_pattern);
  ASSERT_FALSE(profile.hot.hot_objects.empty());

  fault::CampaignConfig cc;
  cc.target = fault::Target::kHotBlocks;
  cc.faulty_blocks = 1;
  cc.bits_per_block = 3;
  cc.runs = 50;
  cc.seed = 17;

  fault::FaultCampaign baseline(*app, profile, sim::Scheme::kNone, 0);
  const auto base = baseline.Run(cc);

  const auto hot_count =
      static_cast<unsigned>(profile.hot.hot_objects.size());
  fault::FaultCampaign corrected(*app, profile, sim::Scheme::kDetectCorrect,
                                 hot_count);
  const auto corr = corrected.Run(cc);

  EXPECT_GT(base.sdc, 0u);
  EXPECT_EQ(corr.sdc, 0u);  // the paper's headline claim
}

TEST(EndToEnd, TimingOverheadOrdering) {
  auto app = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
  const auto profile = apps::ProfileApp(*app, Cfg());
  const auto cover_all =
      static_cast<unsigned>(profile.hot.coverage_order.size());
  const auto cover_hot =
      static_cast<unsigned>(profile.hot.hot_objects.size());

  const auto base =
      apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
  const auto base_stats = apps::RunTiming(*app, profile, Cfg(), base.plan);

  const auto hot_det = apps::MakeProtectionSetup(
      *app, profile, sim::Scheme::kDetectOnly, cover_hot);
  const auto hot_det_stats =
      apps::RunTiming(*app, profile, Cfg(), hot_det.plan);

  const auto all_det = apps::MakeProtectionSetup(
      *app, profile, sim::Scheme::kDetectOnly, cover_all);
  const auto all_det_stats =
      apps::RunTiming(*app, profile, Cfg(), all_det.plan);

  const auto all_corr = apps::MakeProtectionSetup(
      *app, profile, sim::Scheme::kDetectCorrect, cover_all);
  const auto all_corr_stats =
      apps::RunTiming(*app, profile, Cfg(), all_corr.plan);

  const double hot_det_over =
      static_cast<double>(hot_det_stats.cycles) / base_stats.cycles;
  const double all_det_over =
      static_cast<double>(all_det_stats.cycles) / base_stats.cycles;
  const double all_corr_over =
      static_cast<double>(all_corr_stats.cycles) / base_stats.cycles;

  // Hot-only protection is nearly free. Execution-time orderings get a
  // small tolerance: at tiny scale the timing model has a few percent
  // of phase noise (see DESIGN.md), while the traffic metrics below
  // are deterministic and strictly ordered.
  EXPECT_LT(hot_det_over, 1.15);
  EXPECT_GT(all_det_over, hot_det_over - 0.05);
  EXPECT_GE(all_corr_over, all_det_over * 0.95);

  // Extra L1-missed accesses track the replication degree.
  EXPECT_GT(all_det_stats.L1MissedAccesses(),
            base_stats.L1MissedAccesses());
  EXPECT_GT(all_det_stats.L1MissedAccesses(),
            hot_det_stats.L1MissedAccesses());
  EXPECT_GT(all_corr_stats.replica_transactions,
            all_det_stats.replica_transactions);
}

TEST(EndToEnd, DetectionOnlyTerminatesAcrossApps) {
  for (const char* name : {"A-Laplacian", "P-MVT"}) {
    auto app = apps::MakeApp(name, apps::AppScale::kTiny);
    const auto profile = apps::ProfileApp(*app, Cfg());
    const auto hot_count =
        static_cast<unsigned>(profile.hot.hot_objects.size());
    ASSERT_GT(hot_count, 0u) << name;
    fault::FaultCampaign detect(*app, profile, sim::Scheme::kDetectOnly,
                                hot_count);
    fault::CampaignConfig cc;
    cc.target = fault::Target::kHotBlocks;
    cc.faulty_blocks = 1;
    cc.bits_per_block = 4;
    cc.runs = 25;
    cc.seed = 3;
    const auto counts = detect.Run(cc);
    EXPECT_EQ(counts.sdc, 0u) << name;
    EXPECT_GT(counts.detected, 0u) << name;
  }
}

}  // namespace
}  // namespace dcrm
