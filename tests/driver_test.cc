// Tests for the profiling driver and protection-setup plumbing that
// the benches and campaigns build on.
#include <gtest/gtest.h>

#include "apps/driver.h"
#include "apps/registry.h"

namespace dcrm::apps {
namespace {

sim::GpuConfig Cfg() { return sim::GpuConfig{}; }

TEST(Driver, ProfileIsDeterministic) {
  auto a1 = MakeApp("P-BICG", AppScale::kTiny);
  auto a2 = MakeApp("P-BICG", AppScale::kTiny);
  const auto p1 = ProfileApp(*a1, Cfg());
  const auto p2 = ProfileApp(*a2, Cfg());
  EXPECT_EQ(p1.profiler.TotalReads(), p2.profiler.TotalReads());
  EXPECT_EQ(p1.golden, p2.golden);
  ASSERT_EQ(p1.hot.hot_objects.size(), p2.hot.hot_objects.size());
  for (std::size_t i = 0; i < p1.hot.hot_objects.size(); ++i) {
    EXPECT_EQ(p1.hot.hot_objects[i].name, p2.hot.hot_objects[i].name);
  }
}

TEST(Driver, MissProfileAttachedToBlocks) {
  auto app = MakeApp("P-GESUMMV", AppScale::kTiny);
  const auto profile = ProfileApp(*app, Cfg());
  std::uint64_t total_misses = 0;
  for (const auto& [block, bp] : profile.profiler.blocks()) {
    total_misses += bp.l1_misses;
  }
  EXPECT_GT(total_misses, 0u);
  // Misses can't exceed thread-level reads+writes... they can't even
  // exceed the coalesced transaction count; bound loosely by accesses.
  EXPECT_LT(total_misses, profile.profiler.TotalAccesses());
}

TEST(Driver, ProtectionSetupBuildsRangesForCoveredObjects) {
  auto app = MakeApp("P-BICG", AppScale::kTiny);
  const auto profile = ProfileApp(*app, Cfg());
  const auto setup = MakeProtectionSetup(*app, profile,
                                         sim::Scheme::kDetectOnly, 2);
  ASSERT_EQ(setup.plan.ranges.size(), 2u);
  EXPECT_EQ(setup.plan.scheme, sim::Scheme::kDetectOnly);
  // Ranges must be the first two coverage-order objects, with replicas
  // outside the primary range.
  for (unsigned i = 0; i < 2; ++i) {
    const auto& op = profile.hot.coverage_order[i];
    const auto& obj = setup.dev->space().Object(op.id);
    const auto& range = setup.plan.ranges[i];
    EXPECT_EQ(range.base, obj.base);
    EXPECT_EQ(range.size, obj.size_bytes);
    EXPECT_FALSE(range.Contains(range.replica_base[0]));
  }
}

TEST(Driver, ZeroCoverMeansNoPlan) {
  auto app = MakeApp("P-MVT", AppScale::kTiny);
  const auto profile = ProfileApp(*app, Cfg());
  const auto setup = MakeProtectionSetup(*app, profile,
                                         sim::Scheme::kDetectCorrect, 0);
  EXPECT_EQ(setup.plan.scheme, sim::Scheme::kNone);
  EXPECT_TRUE(setup.plan.ranges.empty());
}

TEST(Driver, TimingUsesAppArithmeticIntensity) {
  // Same traces, different modeled ALU intensity -> different cycles.
  auto app = MakeApp("A-Meanfilter", AppScale::kTiny);
  const auto profile = ProfileApp(*app, Cfg());
  sim::GpuConfig lo = Cfg();
  sim::Gpu gpu_lo(lo, {});
  const auto cyc_lo = gpu_lo.Run(*profile.trace_store).cycles;
  sim::GpuConfig hi = Cfg();
  hi.alu_cycles_per_mem = 400;
  sim::Gpu gpu_hi(hi, {});
  const auto cyc_hi = gpu_hi.Run(*profile.trace_store).cycles;
  EXPECT_GT(cyc_hi, cyc_lo);
}

TEST(Driver, TimingScalesWithTraceSize) {
  auto small_app = MakeApp("A-Sobel", AppScale::kTiny);
  const auto sp = ProfileApp(*small_app, Cfg());
  auto big_app = MakeApp("A-Sobel", AppScale::kSmall);
  const auto bp = ProfileApp(*big_app, Cfg());
  const auto ss = RunTiming(*small_app, sp, Cfg(), {});
  const auto bs = RunTiming(*big_app, bp, Cfg(), {});
  EXPECT_GT(bs.cycles, ss.cycles);
  EXPECT_GT(bs.mem_insts, ss.mem_insts);
}

TEST(Driver, CoverageOrderIntensityIsMonotone) {
  for (const auto& name : AllAppNames()) {
    auto app = MakeApp(name, AppScale::kTiny);
    const auto profile = ProfileApp(*app, Cfg());
    const auto& order = profile.hot.coverage_order;
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_GE(order[i - 1].reads_per_block, order[i].reads_per_block)
          << name << " index " << i;
    }
  }
}

TEST(Driver, HotObjectsAreReadOnlyAndSmall) {
  for (const auto& name : HotPatternAppNames()) {
    auto app = MakeApp(name, AppScale::kTiny);
    const auto profile = ProfileApp(*app, Cfg());
    for (const auto& op : profile.hot.hot_objects) {
      EXPECT_TRUE(op.read_only) << name << "/" << op.name;
    }
    EXPECT_LE(profile.hot.hot_footprint, 0.25) << name;
  }
}

}  // namespace
}  // namespace dcrm::apps
