// Hot-classifier behaviour on synthetic access profiles, independent
// of the real applications.
#include <gtest/gtest.h>

#include "core/hot_classifier.h"
#include "mem/device_memory.h"

namespace dcrm::core {
namespace {

// Builds a profiler holding a synthetic profile: `hot_reads` per block
// for the object named "hot", `cold_reads` for "cold", with the given
// warp shares.
struct Synth {
  mem::DeviceMemory dev;
  AccessProfiler prof;

  Synth(std::uint64_t hot_blocks, std::uint64_t hot_reads_per_block,
        double hot_share, std::uint64_t cold_blocks,
        std::uint64_t cold_reads_per_block, double cold_share) {
    const auto hot_id =
        dev.space().Allocate("hot", hot_blocks * kBlockSize, true);
    const auto cold_id =
        dev.space().Allocate("cold", cold_blocks * kBlockSize, true);
    exec::LaunchConfig cfg;
    cfg.grid = {1, 1, 1};
    cfg.block = {100 * kWarpSize, 1, 1};  // 100 warps
    prof.BeginKernel(cfg);
    auto emit = [&](mem::ObjectId id, std::uint64_t blocks,
                    std::uint64_t reads, double share) {
      const Addr base = dev.space().Object(id).base;
      const auto warps = static_cast<WarpId>(share * 100);
      for (std::uint64_t b = 0; b < blocks; ++b) {
        for (std::uint64_t r = 0; r < reads; ++r) {
          exec::ThreadCoord who;
          who.warp_global = static_cast<WarpId>(r % std::max<WarpId>(1, warps));
          prof.OnAccess(who, {1, base + b * kBlockSize, 4,
                              AccessType::kLoad});
        }
      }
    };
    emit(hot_id, hot_blocks, hot_reads_per_block, hot_share);
    emit(cold_id, cold_blocks, cold_reads_per_block, cold_share);
    prof.EndKernel();
  }
};

TEST(HotClassifier, KneeProfileClassifiesHotObject) {
  Synth s(/*hot*/ 2, 10000, 0.8, /*cold*/ 100, 40, 0.02);
  const auto cls = ClassifyHot(s.prof, s.dev.space());
  EXPECT_TRUE(cls.has_hot_pattern);
  ASSERT_EQ(cls.hot_objects.size(), 1u);
  EXPECT_EQ(cls.hot_objects[0].name, "hot");
  EXPECT_LT(cls.hot_footprint, 0.05);
  EXPECT_GT(cls.hot_access_share, 0.5);
}

TEST(HotClassifier, FlatProfileHasNoHotPattern) {
  Synth s(2, 50, 0.8, 100, 50, 0.02);
  const auto cls = ClassifyHot(s.prof, s.dev.space());
  EXPECT_FALSE(cls.has_hot_pattern);
  EXPECT_TRUE(cls.hot_objects.empty());
  // Coverage order still lists the read-only inputs.
  EXPECT_EQ(cls.coverage_order.size(), 2u);
}

TEST(HotClassifier, LowSharingFailsTheWarpGate) {
  // Intense but private blocks (one warp each) are not "hot" in the
  // paper's sense: an error there cannot spread across warps.
  Synth s(2, 10000, 0.01, 100, 40, 0.02);
  const auto cls = ClassifyHot(s.prof, s.dev.space());
  EXPECT_TRUE(cls.has_hot_pattern);  // the knee exists...
  EXPECT_TRUE(cls.hot_objects.empty());  // ...but nothing qualifies
}

TEST(HotClassifier, FootprintCapExcludesLargeObjects) {
  HotConfig cfg;
  cfg.max_footprint = 0.01;  // hot set must stay under 1% of memory
  Synth s(50, 10000, 0.8, 100, 40, 0.02);  // "hot" is 1/3 of memory
  const auto cls = ClassifyHot(s.prof, s.dev.space(), cfg);
  EXPECT_TRUE(cls.hot_objects.empty());
}

TEST(HotClassifier, ThresholdIsConfigurable) {
  Synth s(2, 400, 0.8, 100, 40, 0.02);  // 10x knee
  HotConfig strict;
  strict.min_max_median_ratio = 50.0;
  EXPECT_FALSE(ClassifyHot(s.prof, s.dev.space(), strict).has_hot_pattern);
  HotConfig loose;
  loose.min_max_median_ratio = 5.0;
  EXPECT_TRUE(ClassifyHot(s.prof, s.dev.space(), loose).has_hot_pattern);
}

TEST(HotClassifier, WritableObjectsNeverInCoverage) {
  mem::DeviceMemory dev;
  dev.space().Allocate("ro", kBlockSize, true);
  dev.space().Allocate("rw", kBlockSize, false);
  AccessProfiler prof;
  exec::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {kWarpSize, 1, 1};
  prof.BeginKernel(cfg);
  exec::ThreadCoord who;
  for (int i = 0; i < 100; ++i) {
    prof.OnAccess(who, {1, 0, 4, AccessType::kLoad});
    prof.OnAccess(who, {2, kBlockSize, 4, AccessType::kLoad});
  }
  prof.EndKernel();
  const auto cls = ClassifyHot(prof, dev.space());
  for (const auto& op : cls.coverage_order) {
    EXPECT_NE(op.name, "rw");
  }
}

TEST(HotClassifier, SplitBlocksPartitionsTouchedBlocks) {
  Synth s(2, 10000, 0.8, 100, 40, 0.02);
  const auto cls = ClassifyHot(s.prof, s.dev.space());
  const auto split = SplitBlocks(cls, s.prof, s.dev.space());
  EXPECT_EQ(split.hot.size(), 2u);
  EXPECT_EQ(split.rest.size(), 100u);
  for (std::uint64_t b : split.hot) {
    for (std::uint64_t r : split.rest) EXPECT_NE(b, r);
  }
}

TEST(HotClassifier, EmptyProfile) {
  mem::DeviceMemory dev;
  dev.space().Allocate("x", kBlockSize, true);
  AccessProfiler prof;
  const auto cls = ClassifyHot(prof, dev.space());
  EXPECT_FALSE(cls.has_hot_pattern);
  EXPECT_TRUE(cls.coverage_order.empty());
}

}  // namespace
}  // namespace dcrm::core
