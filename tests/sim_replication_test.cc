// Deeper timing-model tests for the LD/ST replication hardware and
// the scheduler/MLP machinery added for fidelity.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/gpu.h"

namespace dcrm::sim {
namespace {

trace::KernelTrace MakeTrace(
    std::uint32_t ctas, std::uint32_t warps_per_cta,
    const std::function<std::vector<trace::WarpMemInst>(WarpId)>& gen) {
  trace::KernelTrace kt;
  kt.cfg.grid = {ctas, 1, 1};
  kt.cfg.block = {warps_per_cta * kWarpSize, 1, 1};
  for (std::uint32_t c = 0; c < ctas; ++c) {
    for (std::uint32_t w = 0; w < warps_per_cta; ++w) {
      trace::WarpTrace wt;
      wt.warp = c * warps_per_cta + w;
      wt.cta = c;
      wt.insts = gen(wt.warp);
      kt.warps.push_back(std::move(wt));
    }
  }
  return kt;
}

trace::WarpMemInst Load(Pc pc, std::vector<Addr> blocks) {
  return {pc, AccessType::kLoad, 32, std::move(blocks)};
}

ProtectionPlan OneRangePlan(Scheme scheme, Addr base, std::uint64_t size,
                            bool lazy = true) {
  ProtectionPlan plan;
  plan.scheme = scheme;
  plan.lazy_compare = lazy;
  ProtectedRange r;
  r.base = base;
  r.size = size;
  r.replica_base[0] = 100000 * kBlockSize;
  r.replica_base[1] = 200000 * kBlockSize;
  plan.ranges.push_back(r);
  return plan;
}

TEST(Replication, ReplicaResponsesDoNotFillL1) {
  // One protected load, then a later *primary* load to the replica's
  // address: if the replica response had filled L1 it would hit.
  GpuConfig cfg;
  auto plan = OneRangePlan(Scheme::kDetectOnly, 0, kBlockSize);
  const Addr replica_block = plan.ranges[0].replica_base[0];
  auto kt = MakeTrace(1, 1, [&](WarpId) {
    return std::vector<trace::WarpMemInst>{Load(1, {0}),
                                           Load(2, {replica_block})};
  });
  Gpu gpu(cfg, plan);
  const auto stats = gpu.Run({kt});
  EXPECT_EQ(stats.l1_misses, 2u);  // the replica block missed again
  EXPECT_EQ(stats.l1_hits, 0u);
}

TEST(Replication, PcFilterSuppressesUntrackedLoads) {
  GpuConfig cfg;
  auto plan = OneRangePlan(Scheme::kDetectOnly, 0, kBlockSize);
  plan.pcs = {7};  // only PC 7 is in the LD/ST tracking table
  auto kt = MakeTrace(1, 1, [](WarpId) {
    return std::vector<trace::WarpMemInst>{Load(7, {0}), Load(9, {0})};
  });
  Gpu gpu(cfg, plan);
  const auto stats = gpu.Run({kt});
  EXPECT_EQ(stats.replica_transactions, 1u);  // PC 9 not replicated
}

TEST(Replication, MergedMissesReplicateOnce) {
  // Many warps missing the same protected block at once merge into one
  // MSHR and generate exactly one replica access (one L1 miss -> one
  // duplication, as in the paper).
  GpuConfig cfg;
  auto plan = OneRangePlan(Scheme::kDetectOnly, 0, kBlockSize);
  auto kt = MakeTrace(1, 8, [](WarpId) {
    return std::vector<trace::WarpMemInst>{Load(1, {0})};
  });
  Gpu gpu(cfg, plan);
  const auto stats = gpu.Run({kt});
  EXPECT_EQ(stats.l1_misses, 1u);
  EXPECT_EQ(stats.l1_pending_hits + stats.l1_hits, 7u);
  EXPECT_EQ(stats.replica_transactions, 1u);
}

TEST(Replication, EagerDetectionSlowerThanLazy) {
  GpuConfig cfg;
  const std::uint64_t span = 512;
  auto gen = [&](WarpId w) {
    std::vector<trace::WarpMemInst> v;
    for (int i = 0; i < 16; ++i) {
      v.push_back(Load(1, {((w * 16 + i) % span) * kBlockSize}));
    }
    return v;
  };
  auto kt = MakeTrace(4, 4, gen);
  Gpu lazy(cfg, OneRangePlan(Scheme::kDetectOnly, 0, span * kBlockSize, true));
  Gpu eager(cfg,
            OneRangePlan(Scheme::kDetectOnly, 0, span * kBlockSize, false));
  const auto ls = lazy.Run({kt});
  const auto es = eager.Run({kt});
  EXPECT_GE(es.cycles, ls.cycles);
  EXPECT_EQ(es.replica_transactions, ls.replica_transactions);
  EXPECT_EQ(es.comparisons, 0u);  // eager copies block the warp instead
  EXPECT_GT(ls.comparisons, 0u);
}

TEST(Replication, CompareQueueBoundsOutstandingLazyEntries) {
  // More simultaneous protected misses than compare-queue entries:
  // the run must still complete and record stalls.
  GpuConfig cfg;
  cfg.compare_queue_entries = 2;
  auto plan = OneRangePlan(Scheme::kDetectOnly, 0, 4096 * kBlockSize);
  auto kt = MakeTrace(1, 8, [](WarpId w) {
    std::vector<trace::WarpMemInst> v;
    for (int i = 0; i < 8; ++i) {
      v.push_back(Load(1, {static_cast<Addr>(w * 512 + i * 64) * kBlockSize}));
    }
    return v;
  });
  Gpu gpu(cfg, plan);
  const auto stats = gpu.Run({kt});
  EXPECT_GT(stats.compare_queue_stalls, 0u);
  EXPECT_EQ(stats.comparisons, stats.replica_transactions);
}

TEST(Scheduler, GtoAndLrrBothComplete) {
  auto gen = [](WarpId w) {
    std::vector<trace::WarpMemInst> v;
    for (int i = 0; i < 32; ++i) {
      v.push_back(Load(1, {static_cast<Addr>(w % 4) * 32 * kBlockSize +
                           static_cast<Addr>(i % 32) * kBlockSize}));
    }
    return v;
  };
  auto kt = MakeTrace(2, 8, gen);
  GpuConfig gto_cfg;
  gto_cfg.sched_policy = SchedPolicy::kGto;
  GpuConfig lrr_cfg;
  lrr_cfg.sched_policy = SchedPolicy::kLrr;
  const auto gto = Gpu(gto_cfg, {}).Run({kt});
  const auto lrr = Gpu(lrr_cfg, {}).Run({kt});
  EXPECT_EQ(gto.mem_insts, lrr.mem_insts);
  EXPECT_GT(gto.cycles, 0u);
  EXPECT_GT(lrr.cycles, 0u);
}

TEST(Scheduler, PoliciesConserveWork) {
  // Scheduling policy must never change *what* is executed, only when:
  // instruction and access totals are identical across policies.
  auto gen = [](WarpId w) {
    std::vector<trace::WarpMemInst> v;
    for (int rep = 0; rep < 8; ++rep) {
      for (int b = 0; b < 32; ++b) {
        v.push_back(Load(1, {(static_cast<Addr>(w) * 32 + b) * kBlockSize}));
      }
    }
    return v;
  };
  auto kt = MakeTrace(1, 16, gen);
  GpuConfig gto_cfg;
  gto_cfg.sched_policy = SchedPolicy::kGto;
  GpuConfig lrr_cfg;
  lrr_cfg.sched_policy = SchedPolicy::kLrr;
  const auto gto = Gpu(gto_cfg, {}).Run({kt});
  const auto lrr = Gpu(lrr_cfg, {}).Run({kt});
  EXPECT_EQ(gto.mem_insts, lrr.mem_insts);
  EXPECT_EQ(gto.transactions, lrr.transactions);
  EXPECT_EQ(gto.l1_accesses, lrr.l1_accesses);
  EXPECT_EQ(gto.l1_hits + gto.l1_pending_hits + gto.l1_misses,
            lrr.l1_hits + lrr.l1_pending_hits + lrr.l1_misses);
}

TEST(Scheduler, SimulationIsDeterministic) {
  auto gen = [](WarpId w) {
    std::vector<trace::WarpMemInst> v;
    for (int i = 0; i < 20; ++i) {
      v.push_back(Load(1, {(static_cast<Addr>(w * 7 + i * 3) % 256) *
                           kBlockSize}));
    }
    return v;
  };
  auto kt = MakeTrace(3, 4, gen);
  GpuConfig cfg;
  const auto a = Gpu(cfg, {}).Run({kt});
  const auto b = Gpu(cfg, {}).Run({kt});
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.l1_misses, b.l1_misses);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
}

TEST(Mlp, WindowOverlapsIndependentLoads) {
  // Two independent cold loads per "iteration": with an MLP window of
  // 2 they overlap; with 1 they serialize. Time must improve.
  auto gen = [](WarpId) {
    std::vector<trace::WarpMemInst> v;
    for (int i = 0; i < 16; ++i) {
      v.push_back(Load(1, {static_cast<Addr>(2 * i) * 97 * kBlockSize}));
      v.push_back(Load(2, {static_cast<Addr>(2 * i + 1) * 97 * kBlockSize}));
    }
    return v;
  };
  auto kt = MakeTrace(1, 1, gen);
  GpuConfig mlp1;
  mlp1.max_warp_mlp = 1;
  GpuConfig mlp2;
  mlp2.max_warp_mlp = 2;
  const auto s1 = Gpu(mlp1, {}).Run({kt});
  const auto s2 = Gpu(mlp2, {}).Run({kt});
  EXPECT_LT(s2.cycles, s1.cycles * 3 / 4);
}

TEST(Gpu, CtaThrottlingRespectsWarpSlots) {
  // 64-warp CTAs exceed the 48-warp SM limit at 2 CTAs: each SM holds
  // one CTA at a time, so the run completes without oversubscription.
  GpuConfig cfg;
  cfg.num_sms = 1;
  auto kt = MakeTrace(3, 24, [](WarpId w) {
    return std::vector<trace::WarpMemInst>{
        Load(1, {static_cast<Addr>(w) * kBlockSize})};
  });
  Gpu gpu(cfg, {});
  const auto stats = gpu.Run({kt});
  EXPECT_EQ(stats.mem_insts, 3u * 24);
}

TEST(Gpu, MultiKernelRunsAccumulate) {
  GpuConfig cfg;
  auto kt = MakeTrace(1, 1, [](WarpId) {
    return std::vector<trace::WarpMemInst>{Load(1, {0})};
  });
  Gpu gpu(cfg, {});
  const auto stats = gpu.Run({kt, kt, kt});
  EXPECT_EQ(stats.mem_insts, 3u);
  // Kernel 2 and 3 hit in the warm L1 (caches persist across kernels).
  EXPECT_EQ(stats.l1_misses, 1u);
}

TEST(Gpu, DeadlockGuardFires) {
  GpuConfig cfg;
  auto kt = MakeTrace(1, 1, [](WarpId) {
    std::vector<trace::WarpMemInst> v;
    for (int i = 0; i < 100; ++i) {
      v.push_back(Load(1, {static_cast<Addr>(i) * kBlockSize}));
    }
    return v;
  });
  Gpu gpu(cfg, {});
  EXPECT_THROW(gpu.Run({kt}, /*max_cycles=*/10), std::runtime_error);
}

}  // namespace
}  // namespace dcrm::sim
