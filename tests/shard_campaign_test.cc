// Crash-tolerant sharded campaign tests (DESIGN.md §11).
//
// The property under test everywhere: CampaignCounts and the
// escalation ledger are a pure function of (campaign spec, seed) —
// bit-identical whether the campaign runs in one process with
// --jobs=N, split across M worker processes, or killed partway and
// resumed. The coordinator tests spawn real `dcrm shard-worker`
// subprocesses (DCRM_BIN) and inject real failures: SIGKILL
// mid-shard, a wedged worker that must be timed out, an exhausted
// retry budget, a preempted coordinator that resumes.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/driver.h"
#include "apps/registry.h"
#include "common/file_util.h"
#include "common/subprocess.h"
#include "fault/parallel_campaign.h"
#include "fault/shard_coordinator.h"
#include "fault/shard_io.h"
#include "trace/trace_io.h"

namespace {

using namespace dcrm;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "dcrm_shard_" + name;
  EnsureDir(dir);
  return dir;
}

fault::ShardCampaignSpec BaseSpec(unsigned runs, unsigned recovery_retries,
                                  std::uint64_t seed = 1) {
  fault::ShardCampaignSpec spec;
  spec.app = "P-ATAX";
  spec.scale = apps::AppScale::kTiny;
  spec.scheme = sim::Scheme::kDetectOnly;
  spec.runs = runs;
  spec.seed = seed;
  spec.recovery_retries = recovery_retries;
  spec.escalation_epoch = 8;
  spec.jobs = 1;
  return spec;
}

fault::CoordinatorOptions BaseOpts(const std::string& workdir) {
  fault::CoordinatorOptions opts;
  opts.dcrm_binary = DCRM_BIN;
  opts.workdir = workdir;
  opts.shards = 2;
  opts.workers = 2;
  opts.backoff_ms = 10;  // keep retry tests fast
  return opts;
}

struct Reference {
  fault::CampaignCounts counts;
  core::EscalationLedger ledger;
};

// The single-process ground truth: the same campaign through the
// in-process parallel engine.
Reference InProcess(const fault::ShardCampaignSpec& spec, unsigned jobs) {
  auto app = apps::MakeApp(spec.app, spec.scale);
  const auto profile = apps::ProfileApp(*app, spec.gpu);
  unsigned cover = spec.cover.value_or(
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  if (spec.scheme == sim::Scheme::kNone) cover = 0;
  fault::CampaignSpec cs;
  cs.make_app = [&spec] { return apps::MakeApp(spec.app, spec.scale); };
  cs.profile = &profile;
  cs.scheme = spec.scheme;
  cs.cover_objects = cover;
  cs.object_names = spec.objects;
  cs.allow_unsound = spec.allow_unsound;
  fault::ParallelCampaign campaign(std::move(cs), jobs);
  Reference ref;
  ref.counts = campaign.Run(fault::MakeCampaignConfig(spec));
  ref.ledger = campaign.ledger();
  return ref;
}

void ExpectMatches(const fault::ShardCampaignOutcome& outcome,
                   const Reference& ref) {
  EXPECT_EQ(outcome.counts, ref.counts);
  EXPECT_EQ(outcome.ledger, ref.ledger);
}

fault::ShardResult SampleResult() {
  fault::ShardResult r;
  r.fingerprint = 0x1234abcd5678ef90ULL;
  r.shard_index = 3;
  r.trial_begin = 48;
  r.trial_end = 64;
  r.first_epoch = 6;
  r.counts.runs = 16;
  r.counts.sdc = 5;
  r.counts.masked = 9;
  r.counts.recovered = 2;
  r.counts.corrections = 7;
  r.counts.recovery.retries = 3;
  r.counts.recovery.escalations = 1;
  core::EscalationLedger d0;
  d0.Record(2, 1);
  d0.Record(5, 3);
  core::EscalationLedger d1;
  d1.Record(2, 2);
  r.offense_deltas = {d0, d1};
  return r;
}

// ---------------------------------------------------------------------------
// Wire formats.

TEST(ShardIo, ResultRoundTrips) {
  const fault::ShardResult r = SampleResult();
  EXPECT_EQ(fault::DecodeShardResult(fault::EncodeShardResult(r)), r);
}

TEST(ShardIo, ManifestRoundTrips) {
  fault::ShardManifest m;
  m.fingerprint = 99;
  m.total_runs = 1000;
  m.shard_size = 128;
  m.num_shards = 8;
  m.done = {0, 2, 3, 7};
  EXPECT_EQ(fault::DecodeShardManifest(fault::EncodeShardManifest(m)), m);
}

TEST(ShardIo, HandoffRoundTrips) {
  fault::LedgerHandoff h;
  h.fingerprint = 7;
  core::EscalationLedger d;
  d.Record(1, 4);
  h.epoch_deltas = {core::EscalationLedger{}, d};
  EXPECT_EQ(fault::DecodeLedgerHandoff(fault::EncodeLedgerHandoff(h)), h);
}

// Crash tolerance at the byte level: any prefix and any single-byte
// corruption of an artifact is rejected whole — a half-written file
// can never smuggle bad data into the merge.
TEST(ShardIo, RejectsEveryTruncationAndByteFlip) {
  const std::string good = fault::EncodeShardResult(SampleResult());
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_THROW(fault::DecodeShardResult(good.substr(0, n)),
                 std::runtime_error)
        << "truncated to " << n << " of " << good.size() << " bytes";
  }
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    EXPECT_THROW(fault::DecodeShardResult(bad), std::runtime_error)
        << "flipped byte " << i;
  }
  EXPECT_THROW(fault::DecodeShardResult(good + "x"), std::runtime_error);
  const std::string manifest =
      fault::EncodeShardManifest(fault::ShardManifest{1, 10, 5, 2, {0}});
  EXPECT_THROW(fault::DecodeShardResult(manifest), std::runtime_error)
      << "wrong artifact type must be rejected by magic";
}

TEST(ShardIo, CountsCsvIsCanonical) {
  fault::CampaignCounts c;
  c.runs = 10;
  c.sdc = 2;
  core::EscalationLedger ledger;
  ledger.Record(5, 1);
  ledger.Record(2, 3);
  std::ostringstream a;
  fault::WriteCountsCsv(c, ledger, a);
  // Ledger rows come out in object-id order regardless of insertion
  // order (hash-map iteration must never leak into artifacts).
  core::EscalationLedger reordered;
  reordered.Record(2, 3);
  reordered.Record(5, 1);
  std::ostringstream b;
  fault::WriteCountsCsv(c, reordered, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("offense,2,3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine range calls (the worker's building block, in-process).

TEST(ShardEngine, RangeSplitsMergeToWholeRun) {
  const auto spec = BaseSpec(32, /*recovery_retries=*/1);
  const Reference whole = InProcess(spec, 1);

  // Same campaign as four range calls on one instance: counts sum and
  // the ledger evolves identically.
  auto app = apps::MakeApp(spec.app, spec.scale);
  const auto profile = apps::ProfileApp(*app, spec.gpu);
  fault::CampaignSpec cs;
  cs.make_app = [&spec] { return apps::MakeApp(spec.app, spec.scale); };
  cs.profile = &profile;
  cs.scheme = spec.scheme;
  cs.cover_objects =
      static_cast<unsigned>(profile.hot.hot_objects.size());
  fault::ParallelCampaign split(std::move(cs), 1);
  const fault::CampaignConfig cc = fault::MakeCampaignConfig(spec);
  fault::CampaignCounts sum;
  for (unsigned lo = 0; lo < spec.runs; lo += 8) {
    fault::EngineOptions eo;
    eo.begin = lo;
    eo.end = lo + 8;
    sum += split.Run(cc, eo);
  }
  EXPECT_EQ(sum, whole.counts);
  EXPECT_EQ(split.ledger(), whole.ledger);
}

// The full cross-process hand-off protocol, in-process: a fresh
// campaign instance that replays the first half's per-epoch offense
// deltas must continue bit-identically — including escalation replica
// allocation order, the subtle part.
TEST(ShardEngine, ReplayedHandoffContinuesBitIdentically) {
  const auto spec = BaseSpec(48, /*recovery_retries=*/2);
  const fault::CampaignConfig cc = fault::MakeCampaignConfig(spec);
  const Reference whole = InProcess(spec, 1);

  auto app = apps::MakeApp(spec.app, spec.scale);
  const auto profile = apps::ProfileApp(*app, spec.gpu);
  const auto make_campaign = [&] {
    fault::CampaignSpec cs;
    cs.make_app = [&spec] { return apps::MakeApp(spec.app, spec.scale); };
    cs.profile = &profile;
    cs.scheme = spec.scheme;
    cs.cover_objects =
        static_cast<unsigned>(profile.hot.hot_objects.size());
    return fault::ParallelCampaign(std::move(cs), 1);
  };

  // "Shard 0": epochs 0..2, one engine call per epoch, snapshotting
  // per-epoch offense deltas exactly as RunShardWorker does.
  auto first = make_campaign();
  fault::CampaignCounts counts;
  std::vector<core::EscalationLedger> deltas;
  for (unsigned lo = 0; lo < 24; lo += 8) {
    fault::EngineOptions eo;
    eo.begin = lo;
    eo.end = lo + 8;
    const core::EscalationLedger before = first.ledger();
    counts += first.Run(cc, eo);
    deltas.push_back(core::LedgerDelta(first.ledger(), before));
  }

  // "Shard 1": a brand-new process-equivalent instance catches up by
  // replaying the deltas, then runs trials 24..48.
  auto second = make_campaign();
  second.ReplayEscalations(deltas, cc.recovery);
  fault::EngineOptions eo;
  eo.begin = 24;
  eo.end = 48;
  for (unsigned lo = 24; lo < 48; lo += 8) {
    fault::EngineOptions step;
    step.begin = lo;
    step.end = lo + 8;
    counts += second.Run(cc, step);
  }
  EXPECT_EQ(counts, whole.counts);

  core::EscalationLedger merged = first.ledger();
  merged.Merge(core::LedgerDelta(second.ledger(), [&] {
    core::EscalationLedger handed;
    for (const auto& d : deltas) handed.Merge(d);
    return handed;
  }()));
  EXPECT_EQ(merged, whole.ledger);
}

TEST(ShardEngine, StopFlagDrainsAtWaveBoundary) {
  const auto spec = BaseSpec(32, 0);
  auto app = apps::MakeApp(spec.app, spec.scale);
  const auto profile = apps::ProfileApp(*app, spec.gpu);
  fault::CampaignSpec cs;
  cs.make_app = [&spec] { return apps::MakeApp(spec.app, spec.scale); };
  cs.profile = &profile;
  cs.scheme = spec.scheme;
  cs.cover_objects =
      static_cast<unsigned>(profile.hot.hot_objects.size());
  fault::ParallelCampaign campaign(std::move(cs), 1);
  fault::CampaignConfig cc = fault::MakeCampaignConfig(spec);

  std::atomic<bool> stop{false};
  std::atomic<unsigned> done{0};
  const std::function<void(unsigned)> hook = [&](unsigned) {
    if (++done == 4) stop.store(true);
  };
  fault::EngineOptions eo;
  eo.stop = &stop;
  eo.max_wave = 8;
  eo.after_trial = &hook;
  const auto counts = campaign.Run(cc, eo);
  // The stop landed mid-wave 0; the engine finishes that whole wave
  // and stops at the boundary: a whole number of waves, short of the
  // full campaign.
  EXPECT_EQ(counts.runs % 8, 0u);
  EXPECT_LT(counts.runs, spec.runs);
  EXPECT_GE(counts.runs, 8u);
}

// ---------------------------------------------------------------------------
// Coordinator + real worker processes.

TEST(ShardCoordinator, MatchesInProcessWithoutRecovery) {
  const auto spec = BaseSpec(30, 0);
  auto opts = BaseOpts(TestDir("plain"));
  opts.shards = 3;
  const auto outcome = fault::RunShardCoordinator(spec, opts);
  EXPECT_EQ(outcome.exit_code, fault::kExitOk);
  EXPECT_EQ(outcome.shards_done, 3u);
  EXPECT_EQ(outcome.redispatches, 0u);
  ExpectMatches(outcome, InProcess(spec, 2));
}

TEST(ShardCoordinator, MatchesInProcessWithEscalationChain) {
  // Coupled mode: recovery with Tier-2 escalation forces sequential
  // dispatch with per-epoch ledger hand-off between shards. 64 trials
  // at seed 1 are known to cross the escalation threshold, so the
  // hand-off is genuinely exercised.
  const auto spec = BaseSpec(64, 2);
  auto opts = BaseOpts(TestDir("coupled"));
  opts.shards = 4;
  const auto outcome = fault::RunShardCoordinator(spec, opts);
  EXPECT_EQ(outcome.exit_code, fault::kExitOk);
  const Reference ref = InProcess(spec, 2);
  ExpectMatches(outcome, ref);
  // The scenario must actually exercise escalation or it proves
  // nothing about the hand-off.
  EXPECT_GT(ref.counts.recovery.escalations, 0u);
}

TEST(ShardCoordinator, KilledWorkerAndResumeStayBitIdentical) {
  // The acceptance matrix: seeds x shard counts, each cell SIGKILLs a
  // worker mid-shard, preempts the coordinator after one merge, then
  // resumes — and must still match the uninterrupted in-process run.
  const std::string trace_dir = TestDir("matrix_trace");
  const std::string trace_path = trace_dir + "/trace.bin";
  {
    auto app = apps::MakeApp("P-ATAX", apps::AppScale::kTiny);
    const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
    trace::SaveTraceFile(*profile.trace_store, trace_path);
  }
  for (const std::uint64_t seed : {1ULL, 7ULL}) {
    for (const unsigned shards : {2u, 4u}) {
      const auto spec = BaseSpec(32, 1, seed);
      const std::string dir = TestDir(
          "matrix_" + std::to_string(seed) + "_" + std::to_string(shards));
      auto opts = BaseOpts(dir);
      opts.trace_path = trace_path;
      opts.shards = shards;
      opts.kill_shard = 1;
      opts.kill_after = 3;
      opts.stop_after_shards = 1;
      const auto first = fault::RunShardCoordinator(spec, opts);
      EXPECT_EQ(first.exit_code, fault::kExitInterrupted)
          << "seed " << seed << " shards " << shards;

      auto resume = BaseOpts(dir);
      resume.trace_path = trace_path;
      resume.shards = shards;
      resume.resume = true;
      const auto outcome = fault::RunShardCoordinator(spec, resume);
      EXPECT_EQ(outcome.exit_code, fault::kExitOk)
          << "seed " << seed << " shards " << shards;
      ExpectMatches(outcome, InProcess(spec, 2));
    }
  }
}

TEST(ShardCoordinator, HungWorkerIsTimedOutAndRedispatched) {
  const auto spec = BaseSpec(16, 1);
  auto opts = BaseOpts(TestDir("hung"));
  opts.shards = 2;
  opts.hang_shard = 0;
  opts.hang_after = 2;
  opts.shard_timeout_ms = 3000;
  opts.max_retries = 2;
  const auto outcome = fault::RunShardCoordinator(spec, opts);
  EXPECT_EQ(outcome.exit_code, fault::kExitOk);
  EXPECT_GE(outcome.redispatches, 1u);
  ExpectMatches(outcome, InProcess(spec, 1));
}

TEST(ShardCoordinator, RetryBudgetExhaustionIsResumable) {
  const auto spec = BaseSpec(16, 0);
  const std::string dir = TestDir("budget");
  auto opts = BaseOpts(dir);
  opts.shards = 2;
  opts.kill_shard = 0;
  opts.kill_after = 1;
  opts.max_retries = 0;  // first failure exhausts the budget
  const auto first = fault::RunShardCoordinator(spec, opts);
  EXPECT_EQ(first.exit_code, fault::kExitRetriesExhausted);
  EXPECT_LT(first.shards_done, 2u);

  auto resume = BaseOpts(dir);
  resume.shards = 2;
  resume.resume = true;
  const auto outcome = fault::RunShardCoordinator(spec, resume);
  EXPECT_EQ(outcome.exit_code, fault::kExitOk);
  ExpectMatches(outcome, InProcess(spec, 2));
}

TEST(ShardCoordinator, ResumeRefusesMismatchedManifest) {
  const auto spec = BaseSpec(16, 0);
  const std::string dir = TestDir("mismatch");
  auto opts = BaseOpts(dir);
  ASSERT_EQ(fault::RunShardCoordinator(spec, opts).exit_code,
            fault::kExitOk);

  // Different seed -> different fingerprint: merging old results into
  // the new campaign would be silent corruption, so it must throw.
  auto other = BaseSpec(16, 0, /*seed=*/99);
  auto resume = BaseOpts(dir);
  resume.resume = true;
  EXPECT_THROW(fault::RunShardCoordinator(other, resume),
               std::runtime_error);

  // Same campaign, different shard geometry: also refused.
  auto regeo = BaseOpts(dir);
  regeo.resume = true;
  regeo.shards = 4;
  EXPECT_THROW(fault::RunShardCoordinator(spec, regeo),
               std::runtime_error);
}

TEST(ShardCoordinator, CorruptResultFileIsReRunOnResume) {
  const auto spec = BaseSpec(16, 0);
  const std::string dir = TestDir("corrupt_result");
  auto opts = BaseOpts(dir);
  ASSERT_EQ(fault::RunShardCoordinator(spec, opts).exit_code,
            fault::kExitOk);

  // Truncate shard 1's result behind the manifest's back (a torn disk,
  // a partial copy). Resume must detect it, demote the shard to
  // pending, re-run it, and still converge to the same totals.
  const std::string victim = dir + "/result-1.bin";
  const std::string bytes = ReadFileToString(victim);
  WriteFileAtomic(victim, bytes.substr(0, bytes.size() / 2));

  auto resume = BaseOpts(dir);
  resume.resume = true;
  const auto outcome = fault::RunShardCoordinator(spec, resume);
  EXPECT_EQ(outcome.exit_code, fault::kExitOk);
  ExpectMatches(outcome, InProcess(spec, 2));
}

TEST(ShardCoordinator, LeavesNoTempFilesBehind) {
  const auto spec = BaseSpec(16, 1);
  const std::string dir = TestDir("no_temps");
  auto opts = BaseOpts(dir);
  opts.kill_shard = 0;
  opts.kill_after = 1;  // a SIGKILLed writer may orphan a temp file
  const auto outcome = fault::RunShardCoordinator(spec, opts);
  EXPECT_EQ(outcome.exit_code, fault::kExitOk);
  for (const std::string& name : ListDir(dir)) {
    EXPECT_EQ(name.find(".tmp."), std::string::npos)
        << "orphaned temp file: " << name;
  }
}

// ---------------------------------------------------------------------------
// CLI surface.

TEST(ShardCli, SigintDrainsCampaignWithExitCode7) {
  const std::string dir = TestDir("sigint");
  auto proc = Subprocess::Spawn(
      {DCRM_BIN, "campaign", "P-ATAX", "--scale=tiny", "--runs=200000",
       "--scheme=detect"},
      dir + "/out.log", dir + "/err.log");
  // Let it get past flag parsing and profiling into the trial loop,
  // then interrupt. The handler drains at the next wave boundary and
  // reports partial counts with the resumable exit code.
  SleepMs(1500);
  proc.Kill(SIGINT);
  const ExitStatus status = proc.Wait();
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, fault::kExitInterrupted);
  const std::string err = ReadFileToString(dir + "/err.log");
  EXPECT_NE(err.find("interrupted"), std::string::npos);
}

TEST(ShardCli, WorkerRefusesFingerprintMismatch) {
  const std::string dir = TestDir("cli_fp");
  {
    auto app = apps::MakeApp("P-ATAX", apps::AppScale::kTiny);
    const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
    trace::SaveTraceFile(*profile.trace_store, dir + "/trace.bin");
  }
  auto proc = Subprocess::Spawn(
      {DCRM_BIN, "shard-worker", "P-ATAX", "--scale=tiny", "--runs=16",
       "--scheme=detect", "--load-trace=" + dir + "/trace.bin",
       "--trial-begin=0", "--trial-end=8", "--shard-index=0",
       "--fingerprint=12345", "--out=" + dir + "/result-0.bin"},
      dir + "/out.log", dir + "/err.log");
  const ExitStatus status = proc.Wait();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(FileExists(dir + "/result-0.bin"));
  const std::string err = ReadFileToString(dir + "/err.log");
  EXPECT_NE(err.find("fingerprint"), std::string::npos);
}

}  // namespace
