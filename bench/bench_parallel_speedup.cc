// Parallel-campaign throughput: wall-clock for a Fig. 9-style
// miss-weighted campaign at increasing worker counts, verifying at
// every point that the merged counts are bit-identical to jobs=1.
// This is the bench behind the engine's headline claim: campaign
// throughput scales with cores while the statistics stay exactly
// reproducible from the seed.
#include <chrono>
#include <iostream>
#include <optional>
#include <thread>

#include "apps/driver.h"
#include "bench_util.h"
#include "fault/parallel_campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned runs = args.runs ? args.runs : 1000;
  const unsigned max_jobs =
      args.jobs > 1 ? args.jobs
                    : std::max(1u, std::thread::hardware_concurrency());
  bench::PrintHeader(
      "Parallel campaign speedup",
      "One Fig. 9-style campaign (miss-weighted, 1 block x 2 bits, full "
      "hot cover, detect+correct) fanned across increasing worker "
      "counts. 'identical' checks the merged counts against jobs=1 "
      "bit-for-bit. Set --jobs to cap the sweep (default: hardware "
      "threads).",
      args, runs, scale);
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << "\n\n";

  TextTable t({"app", "jobs", "runs", "SDC", "detected", "masked",
               "wall ms", "speedup", "identical"});
  std::vector<bench::JsonMetric> metrics;
  for (const auto& name : bench::SelectApps(args, {std::string("P-BICG")})) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, bench::MakeGpuConfig(args));
    const auto hot = static_cast<unsigned>(profile.hot.hot_objects.size());

    fault::CampaignConfig cc;
    cc.target = fault::Target::kMissWeighted;
    cc.faulty_blocks = 1;
    cc.bits_per_block = 2;
    cc.runs = runs;
    cc.seed = args.seed;

    std::optional<fault::CampaignCounts> reference;
    double serial_ms = 0;
    for (unsigned jobs = 1; jobs <= max_jobs; jobs *= 2) {
      auto campaign = bench::MakeCampaign(
          name, scale, profile, sim::Scheme::kDetectCorrect, hot, jobs);
      const auto t0 = std::chrono::steady_clock::now();
      const auto counts = campaign.Run(cc);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (!reference) {
        reference = counts;
        serial_ms = ms;
      }
      t.NewRow()
          .Add(name)
          .Add(jobs)
          .Add(counts.runs)
          .Add(counts.sdc)
          .Add(counts.detected)
          .Add(counts.masked)
          .Add(ms, 1)
          .Add(serial_ms / ms, 2)
          .Add(counts == *reference ? "yes" : "NO");
      if (!(counts == *reference)) {
        std::cerr << "determinism violation at jobs=" << jobs << "\n";
        return 1;
      }
      metrics.push_back({"parallel_speedup/" + name,
                         "wall_ms@jobs=" + std::to_string(jobs), ms, "ms"});
      metrics.push_back({"parallel_speedup/" + name,
                         "speedup@jobs=" + std::to_string(jobs),
                         serial_ms / ms, "x"});
    }
  }
  bench::Emit(t, args);
  bench::EmitJson(args, metrics);
  std::cout
      << "expectation: near-linear speedup up to the physical core count "
         "(trials are independent kernel executions; the only barriers "
         "are escalation epochs, absent here), with 'identical'=yes "
         "everywhere — the merged counts are a pure function of the "
         "seed, not of the worker count.\n";
  return 0;
}
