// Importance-sampled fault-injection trials: restrict block selection
// to the statically SDC-reachable set from the vulnerability analyzer
// (analysis::SdcPossible), run far fewer trials, and rescale by the
// reachable weight share. The bench compares the rescaled estimate and
// its confidence interval against a plain uniform campaign on the same
// plan and demands (a) the estimates agree within their combined
// margins and (b) the importance-sampled margin is no wider than the
// uniform one at >=5x fewer trials — "matched confidence".
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/vulnerability.h"
#include "apps/driver.h"
#include "bench_util.h"
#include "fault/campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned base_runs = args.runs ? args.runs : 600;
  bench::PrintHeader(
      "Importance-sampled campaign trials",
      "Uniform miss-weighted campaign at N trials vs. importance "
      "sampling over the statically SDC-reachable set at N/reduction "
      "trials, rescaled by the reachable weight share. PASS means the "
      "estimates overlap and the rescaled margin is no wider.",
      args, base_runs, scale);

  TextTable t({"app", "share", "uni runs", "uni SDC%", "uni +/-", "IS runs",
               "reduction", "IS SDC%", "IS +/-", "verdict"});
  std::vector<bench::JsonMetric> metrics;
  bool all_pass = true;

  const std::vector<std::string> defaults{"P-ATAX", "P-BICG", "P-MVT",
                                          "P-GESUMMV"};
  for (const auto& name : bench::SelectApps(args, defaults)) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, bench::MakeGpuConfig(args));
    // Full detect cover: most weighted traffic lands on checked blocks,
    // which is exactly when restricting trials to the reachable
    // remainder pays off.
    const auto cover =
        static_cast<unsigned>(profile.hot.coverage_order.size());
    auto campaign = bench::MakeCampaign(name, scale, profile,
                                        sim::Scheme::kDetectOnly, cover,
                                        args.jobs);
    const double share =
        campaign.front().SamplingShare(fault::Target::kMissWeighted);

    fault::CampaignConfig uni;
    uni.target = fault::Target::kMissWeighted;
    uni.faulty_blocks = 1;
    uni.bits_per_block = 2;
    uni.runs = base_runs;
    uni.seed = args.seed;
    const auto ucounts = campaign.Run(uni);
    const auto uci = ucounts.SdcCi();

    if (share == 0.0) {
      // Statically proven zero: nothing to sample. The uniform
      // campaign must agree exactly.
      const bool pass = ucounts.sdc == 0;
      all_pass = all_pass && pass;
      t.NewRow()
          .Add(name)
          .Add("0")
          .Add(ucounts.runs)
          .Add(100.0 * uci.p)
          .Add(100.0 * uci.margin)
          .Add(0)
          .Add("-")
          .Add("0 (static)")
          .Add("0")
          .Add(pass ? "PASS" : "FAIL");
      continue;
    }

    // Trial reduction: ~1/share would keep the expected SDC-event
    // count equal; clamp to [5, 20] so every row demonstrates at least
    // the 5x reduction while keeping a usable trial count.
    const auto reduction = std::clamp<unsigned>(
        static_cast<unsigned>(1.0 / share), 5, 20);
    fault::CampaignConfig is = uni;
    is.importance_sampling = true;
    is.runs = std::max(30u, base_runs / reduction);
    is.seed = args.seed + 1;
    const auto icounts = campaign.Run(is);
    const auto ici = icounts.SdcCi();
    // Unbiased unconditional estimate: conditional rate over the
    // reachable set times the reachable weight share.
    const double is_p = share * ici.p;
    const double is_margin = share * ici.margin;
    const double achieved =
        static_cast<double>(ucounts.runs) / icounts.runs;

    const bool overlap = std::abs(uci.p - is_p) <= uci.margin + is_margin;
    const bool matched = is_margin <= uci.margin;
    const bool reduced = achieved >= 5.0;
    const bool pass = overlap && matched && reduced;
    all_pass = all_pass && pass;

    t.NewRow()
        .Add(name)
        .Add(share, 4)
        .Add(ucounts.runs)
        .Add(100.0 * uci.p)
        .Add(100.0 * uci.margin)
        .Add(icounts.runs)
        .Add(achieved)
        .Add(100.0 * is_p)
        .Add(100.0 * is_margin)
        .Add(pass ? "PASS"
                  : (!overlap   ? "FAIL(est)"
                     : !matched ? "FAIL(margin)"
                                : "FAIL(reduction)"));

    metrics.push_back({"importance_sampling/" + name, "trial_reduction",
                       achieved, "x"});
    metrics.push_back({"importance_sampling/" + name, "uniform_sdc_margin",
                       100.0 * uci.margin, "percent"});
    metrics.push_back({"importance_sampling/" + name, "is_sdc_margin",
                       100.0 * is_margin, "percent"});
    metrics.push_back({"importance_sampling/" + name, "reachable_share",
                       share, "fraction"});
  }

  bench::Emit(t, args);
  bench::EmitJson(args, metrics);
  std::cout << (all_pass
                    ? "matched-confidence check: every app reached >=5x "
                      "fewer trials with no wider SDC interval.\n"
                    : "matched-confidence check FAILED for at least one "
                      "app (see verdict column).\n");
  return all_pass ? 0 : 1;
}
