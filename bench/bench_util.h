// Shared command-line handling and reporting for the figure/table
// reproduction benches. Every bench prints its parameters (seed, run
// counts, scale) so results are reproducible, and accepts:
//   --runs=N          fault-injection runs per configuration
//   --seed=N          RNG seed
//   --scale=tiny|small|medium   workload scale
//   --apps=A,B,C      restrict to a subset of applications
//   --config=FILE     hardware config file (see sim/config_io.h)
//   --csv             emit CSV instead of aligned tables
//   --jobs=N          parallel campaign workers (campaign benches;
//                     0 = all hardware threads). Campaign results are
//                     bit-identical at any N.
//   --json=FILE       also write headline metrics as a JSON array of
//                     {name, metric, value, units} records
#pragma once

#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "common/table.h"
#include "fault/parallel_campaign.h"
#include "sim/config.h"

namespace dcrm::bench {

struct BenchArgs {
  unsigned runs = 0;  // 0 = bench-specific default
  std::uint64_t seed = 2026;
  std::optional<apps::AppScale> scale;
  std::vector<std::string> apps;
  std::optional<std::string> config_path;  // --config=FILE (config_io)
  bool csv = false;
  unsigned jobs = 1;                      // campaign fan-out workers
  std::optional<std::string> json_path;   // --json=FILE metric dump
};

BenchArgs ParseArgs(int argc, char** argv);

// Table I defaults, overlaid with --config=FILE if given.
sim::GpuConfig MakeGpuConfig(const BenchArgs& args);

// Applications to use: --apps subset if given, else `defaults`.
std::vector<std::string> SelectApps(const BenchArgs& args,
                                    const std::vector<std::string>& defaults);

void PrintHeader(const std::string& title, const std::string& what,
                 const BenchArgs& args, unsigned effective_runs,
                 apps::AppScale effective_scale);

void Emit(const TextTable& table, const BenchArgs& args);

// One headline number a downstream tool can track across runs. The
// sweep script collects these into committed-format BENCH_*.json files
// via --json=FILE.
struct JsonMetric {
  std::string name;    // series, e.g. "importance_sampling/P-ATAX"
  std::string metric;  // what is measured, e.g. "trial_reduction"
  double value = 0.0;
  std::string units;   // "x", "percent", "trials", ...
};

// Writes `metrics` to `path` as a JSON array of records; no-op when
// args.json_path is unset in the EmitJson overload.
void WriteBenchJson(const std::string& path,
                    const std::vector<JsonMetric>& metrics);
void EmitJson(const BenchArgs& args, const std::vector<JsonMetric>& metrics);

const char* ScaleName(apps::AppScale s);

// A coverage-order campaign fanned across args.jobs workers. One call
// site per bench table cell keeps the campaign benches on the shared
// deterministic engine instead of hand-rolled serial loops.
fault::ParallelCampaign MakeCampaign(const std::string& app_name,
                                     apps::AppScale scale,
                                     const apps::ProfileResult& profile,
                                     sim::Scheme scheme, unsigned cover,
                                     unsigned jobs);

}  // namespace dcrm::bench
