// Extension: online hot-block detection. The paper identifies hot
// data offline (source analysis / profiling). A small Space-Saving
// counter table can do it at runtime; this bench measures, per app,
// how well the online top-K blocks agree with the offline hot set.
#include <algorithm>
#include <iostream>
#include <unordered_set>

#include "apps/driver.h"
#include "bench_util.h"
#include "core/online_detector.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  bench::PrintHeader(
      "Extension: online hot-block detection (Space-Saving table)",
      "Recall = fraction of offline hot blocks present in the online "
      "table's hot set; precision = fraction of the online hot set "
      "that is offline-hot. Table capacity 64 entries.",
      args, 0, scale);

  TextTable t({"app", "offline hot blocks", "online hot blocks", "recall %",
               "precision %", "objects identified"});
  for (const auto& name :
       bench::SelectApps(args, apps::HotPatternAppNames())) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, bench::MakeGpuConfig(args));
    const auto split = core::SplitBlocks(profile.hot, profile.profiler,
                                         profile.dev->space());
    const std::unordered_set<std::uint64_t> offline(split.hot.begin(),
                                                    split.hot.end());
    if (offline.empty()) continue;

    // Feed the detector the same access stream the profiler saw, at
    // block granularity weighted by thread-level reads (the order is
    // immaterial for frequency estimation; interleave by round-robin
    // over blocks to avoid bursts favoring any block).
    core::OnlineHotDetector detector(64);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> blocks(
        profile.profiler.blocks().size());
    std::size_t i = 0;
    for (const auto& [block, bp] : profile.profiler.blocks()) {
      blocks[i++] = {block, bp.reads};
    }
    std::sort(blocks.begin(), blocks.end());
    bool any = true;
    std::uint64_t round = 0;
    // Round-robin: each pass feeds one observation per block with
    // remaining weight, approximating an interleaved access stream.
    // Cap the per-block weight contribution per round to keep this
    // O(total/step).
    const std::uint64_t step = std::max<std::uint64_t>(
        1, profile.profiler.TotalReads() / 200000);
    while (any) {
      any = false;
      for (auto& [block, remaining] : blocks) {
        if (remaining == 0) continue;
        const std::uint64_t take = std::min(remaining, step);
        for (std::uint64_t k = 0; k < std::min<std::uint64_t>(take, 4); ++k) {
          detector.Observe(block);
        }
        remaining -= take;
        any = true;
      }
      ++round;
    }

    const auto online = detector.HotBlocks(8.0);
    std::size_t hit = 0;
    for (std::uint64_t b : online) hit += offline.contains(b) ? 1 : 0;
    std::size_t covered = 0;
    for (std::uint64_t b : offline) {
      covered += std::find(online.begin(), online.end(), b) != online.end()
                     ? 1
                     : 0;
    }
    // Object-level view: which hot *objects* does the online table
    // point at? (A partial block set still identifies the object.)
    std::unordered_set<std::string> online_objs;
    for (std::uint64_t b : online) {
      if (const auto owner = profile.dev->space().OwnerOf(b * kBlockSize)) {
        online_objs.insert(profile.dev->space().Object(*owner).name);
      }
    }
    std::size_t obj_hits = 0;
    for (const auto& op : profile.hot.hot_objects) {
      obj_hits += online_objs.contains(op.name) ? 1 : 0;
    }
    t.NewRow()
        .Add(name)
        .Add(offline.size())
        .Add(online.size())
        .Add(offline.empty() ? 0.0
                             : 100.0 * static_cast<double>(covered) /
                                   static_cast<double>(offline.size()),
             1)
        .Add(online.empty() ? 0.0
                            : 100.0 * static_cast<double>(hit) /
                                  static_cast<double>(online.size()),
             1)
        .Add(std::to_string(obj_hits) + "/" +
             std::to_string(profile.hot.hot_objects.size()));
  }
  bench::Emit(t, args);
  std::cout << "expectation: high recall with a 64-entry table — the hot "
               "sets are small and extremely frequent, exactly the regime "
               "Space-Saving guarantees.\n";
  return 0;
}
