// Ablation A: the paper's lazy bit comparison (proceed on first copy,
// compare when the second arrives) vs. an eager variant that stalls
// the warp for both copies. Quantifies how much of detection-only's
// low overhead comes from laziness.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kMedium);
  bench::PrintHeader(
      "Ablation A: lazy vs eager comparison (detection-only)",
      "Normalized execution time at the paper's operating point (hot "
      "cover) and at full coverage.",
      args, 0, scale);

  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);
  TextTable t({"app", "cover", "lazy time", "eager time", "eager/lazy",
               "lazy cmp stalls"});
  for (const auto& name :
       bench::SelectApps(args, apps::PaperAppNames())) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const auto hot =
        static_cast<unsigned>(profile.hot.hot_objects.size());
    const auto all =
        static_cast<unsigned>(profile.hot.coverage_order.size());
    const auto base =
        apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
    const double base_cycles = static_cast<double>(
        apps::RunTiming(*app, profile, cfg, base.plan).cycles);

    for (const unsigned cover : {hot, all}) {
      const auto lazy = apps::MakeProtectionSetup(
          *app, profile, sim::Scheme::kDetectOnly, cover,
          /*lazy_compare=*/true);
      const auto lazy_stats = apps::RunTiming(*app, profile, cfg, lazy.plan);
      const auto eager = apps::MakeProtectionSetup(
          *app, profile, sim::Scheme::kDetectOnly, cover,
          /*lazy_compare=*/false);
      const auto eager_stats =
          apps::RunTiming(*app, profile, cfg, eager.plan);

      const double lt = static_cast<double>(lazy_stats.cycles) / base_cycles;
      const double et =
          static_cast<double>(eager_stats.cycles) / base_cycles;
      std::string label = std::to_string(cover);
      if (cover == hot) label += " (H)";
      t.NewRow()
          .Add(name)
          .Add(label)
          .Add(lt, 4)
          .Add(et, 4)
          .Add(et / lt, 4)
          .Add(lazy_stats.compare_queue_stalls);
      if (hot == all) break;
    }
  }
  bench::Emit(t, args);
  std::cout
      << "expectation: at the hot cover (the paper's design point) lazy "
         "<= eager — laziness preserves the latency tolerance. At full "
         "coverage the 32-entry compare queue saturates (see the stall "
         "column) and laziness loses its edge: an ablation argument for "
         "why the paper pairs the lazy scheme with *selective* "
         "replication rather than blanket duplication.\n";
  return 0;
}
