// Ablation B: the paper assumes multi-bit faults reach the
// application (its emulation model). This bench runs the same fault
// campaigns against a real SECDED(72,64) word code and breaks down
// what the code actually does with 2/3/4-bit faults in a word:
// 2-bit -> detected (DUE); 3-bit -> mostly miscorrected (silent!);
// 4-bit -> mostly detected, occasionally escaping. The paper's threat
// model corresponds to the silent residue.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"
#include "fault/campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned runs = args.runs ? args.runs : 100;
  bench::PrintHeader(
      "Ablation B: paper's escape model vs real SECDED(72,64)",
      "Hot-block faults, 1 faulty block, unprotected app. 'no-ecc' is "
      "the paper's emulation; 'secded' decodes every 64-bit word.",
      args, runs, scale);

  TextTable t({"app", "ecc", "bits", "runs", "SDC", "DUE", "crash",
               "masked"});
  const auto names =
      bench::SelectApps(args, {std::string("P-BICG"), "P-GESUMMV", "A-Sobel"});
  for (const auto& name : names) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, bench::MakeGpuConfig(args));
    for (const mem::EccMode ecc : {mem::EccMode::kNone, mem::EccMode::kSecded}) {
      fault::FaultCampaign campaign(*app, profile, sim::Scheme::kNone, 0,
                                    ecc);
      for (unsigned bits : {1u, 2u, 3u, 4u}) {
        fault::CampaignConfig cc;
        cc.target = fault::Target::kHotBlocks;
        cc.faulty_blocks = 1;
        cc.bits_per_block = bits;
        cc.runs = runs;
        cc.seed = args.seed + bits;
        const auto counts = campaign.Run(cc);
        t.NewRow()
            .Add(name)
            .Add(ecc == mem::EccMode::kNone ? "no-ecc" : "secded")
            .Add(bits)
            .Add(counts.runs)
            .Add(counts.sdc)
            .Add(counts.due)
            .Add(counts.crash)
            .Add(counts.masked);
      }
    }
  }
  bench::Emit(t, args);
  std::cout
      << "expectation: secded masks 1-bit entirely and converts 2-bit "
         "SDCs into DUEs, but 3-bit faults miscorrect into SDCs and some "
         "4-bit faults escape — the multi-bit gap the paper targets.\n";
  return 0;
}
