// Fig. 3: normalized number of RD accesses to data memory blocks,
// sorted low to high, for all ten applications. (a)-(f)-style apps
// show a sharp knee (few blocks with disproportionally many reads);
// C-BlackScholes is flat; P-GRAMSCHM climbs in small steps.
//
// The paper plots full curves; we print a fixed set of quantile points
// of each app's sorted curve plus the max/median knee ratio.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  bench::PrintHeader(
      "Figure 3",
      "Per-block RD access counts, normalized to each app's maximum, at "
      "sorted-position quantiles (0% = least-read block).",
      args, 0, scale);

  const auto names = bench::SelectApps(args, apps::AllAppNames());
  static constexpr double kQuantiles[] = {0.0, 0.25, 0.5,  0.75, 0.9,
                                          0.99, 0.999, 1.0};

  TextTable t({"app", "q0", "q25", "q50", "q75", "q90", "q99", "q99.9",
               "q100", "max/median", "pattern"});
  for (const auto& name : names) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, bench::MakeGpuConfig(args));
    const auto sorted = profile.profiler.SortedByReads();
    if (sorted.empty()) continue;
    const double mx = static_cast<double>(sorted.back().second.reads);
    t.NewRow().Add(name);
    for (double q : kQuantiles) {
      const std::size_t idx = std::min(
          sorted.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
      t.Add(static_cast<double>(sorted[idx].second.reads) / mx, 4);
    }
    t.Add(profile.hot.max_median_ratio, 1);
    t.Add(profile.hot.has_hot_pattern ? "knee (hot)" : "flat/steps");
  }
  bench::Emit(t, args);
  std::cout
      << "shape check vs paper: the eight Table II apps report a knee "
         "(q99.9 << q100, large max/median); C-BlackScholes ~1; "
         "P-GRAMSCHM a small-step staircase below the knee threshold.\n";
  return 0;
}
