// Fig. 6: effect of faults in hot memory blocks vs. the rest of the
// memory blocks on application output. For each app: {1,5} faulty
// blocks x {2,3,4} stuck-at bits per block, N runs each, faults drawn
// uniformly from the hot set or from the rest.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"
#include "fault/campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned base_runs = args.runs ? args.runs : 100;
  bench::PrintHeader(
      "Figure 6",
      "SDC (and crash) outcomes for faults in hot vs. rest blocks. "
      "Counts are per N runs; C-NN uses N/3 runs (heaviest app).",
      args, base_runs, scale);

  TextTable t({"app", "target", "blocks", "bits", "runs", "SDC", "crash",
               "masked", "SDC %", "95% CI +/-"});
  for (const auto& name :
       bench::SelectApps(args, apps::PaperAppNames())) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, bench::MakeGpuConfig(args));
    if (!profile.hot.has_hot_pattern) {
      std::cout << name << ": no hot pattern, skipped\n";
      continue;
    }
    fault::FaultCampaign campaign(*app, profile, sim::Scheme::kNone, 0);
    const unsigned runs = name == "C-NN" ? std::max(20u, base_runs / 3)
                                         : base_runs;
    for (const fault::Target target :
         {fault::Target::kHotBlocks, fault::Target::kRestBlocks}) {
      for (unsigned blocks : {1u, 5u}) {
        for (unsigned bits : {2u, 3u, 4u}) {
          fault::CampaignConfig cc;
          cc.target = target;
          cc.faulty_blocks = blocks;
          cc.bits_per_block = bits;
          cc.runs = runs;
          cc.seed = args.seed + blocks * 1000 + bits;
          const auto counts = campaign.Run(cc);
          const auto ci = counts.SdcCi();
          t.NewRow()
              .Add(name)
              .Add(target == fault::Target::kHotBlocks ? "hot" : "rest")
              .Add(blocks)
              .Add(bits)
              .Add(counts.runs)
              .Add(counts.sdc)
              .Add(counts.crash)
              .Add(counts.masked)
              .Add(100.0 * ci.p, 1)
              .Add(100.0 * ci.margin, 1);
        }
      }
    }
  }
  bench::Emit(t, args);
  std::cout
      << "shape check vs paper (Fig. 6): SDC(hot) >> SDC(rest); SDC grows "
         "with #bits and with 5 blocks vs 1. (For A-SRAD some hot-block "
         "faults surface as crashes: faulted neighbor indices leave the "
         "address space — also output-destroying, but not silent.)\n";
  return 0;
}
