#include "bench_util.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "sim/config_io.h"

namespace dcrm::bench {
namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, sep)) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--runs=")) {
      args.runs = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("--seed=")) {
      args.seed = std::stoull(*v);
    } else if (auto v = value("--scale=")) {
      if (*v == "tiny") {
        args.scale = apps::AppScale::kTiny;
      } else if (*v == "small") {
        args.scale = apps::AppScale::kSmall;
      } else if (*v == "medium") {
        args.scale = apps::AppScale::kMedium;
      } else {
        throw std::invalid_argument("bad --scale value: " + *v);
      }
    } else if (auto v = value("--apps=")) {
      args.apps = Split(*v, ',');
    } else if (auto v = value("--config=")) {
      args.config_path = *v;
    } else if (a == "--csv") {
      args.csv = true;
    } else if (auto v = value("--jobs=")) {
      args.jobs = static_cast<unsigned>(std::stoul(*v));
      if (args.jobs == 0) args.jobs = std::thread::hardware_concurrency();
      if (args.jobs == 0) args.jobs = 1;
    } else if (auto v = value("--json=")) {
      args.json_path = *v;
    } else if (a == "--help" || a == "-h") {
      std::cout << "flags: --runs=N --seed=N --scale=tiny|small|medium "
                   "--apps=A,B --config=FILE --csv --jobs=N --json=FILE\n";
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown flag: " + a);
    }
  }
  return args;
}

sim::GpuConfig MakeGpuConfig(const BenchArgs& args) {
  sim::GpuConfig cfg;
  if (args.config_path) {
    cfg = sim::LoadGpuConfigFile(*args.config_path, cfg);
  }
  return cfg;
}

std::vector<std::string> SelectApps(const BenchArgs& args,
                                    const std::vector<std::string>& defaults) {
  return args.apps.empty() ? defaults : args.apps;
}

const char* ScaleName(apps::AppScale s) {
  switch (s) {
    case apps::AppScale::kTiny:
      return "tiny";
    case apps::AppScale::kSmall:
      return "small";
    case apps::AppScale::kMedium:
      return "medium";
  }
  return "?";
}

void PrintHeader(const std::string& title, const std::string& what,
                 const BenchArgs& args, unsigned effective_runs,
                 apps::AppScale effective_scale) {
  std::cout << "=== " << title << " ===\n"
            << what << "\n"
            << "params: scale=" << ScaleName(effective_scale)
            << " seed=" << args.seed;
  if (effective_runs > 0) std::cout << " runs/config=" << effective_runs;
  if (args.jobs > 1) std::cout << " jobs=" << args.jobs;
  std::cout << "\n\n";
}

void Emit(const TextTable& table, const BenchArgs& args) {
  std::cout << (args.csv ? table.RenderCsv() : table.Render()) << "\n";
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void WriteBenchJson(const std::string& path,
                    const std::vector<JsonMetric>& metrics) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write bench json: " + path);
  os.precision(12);
  os << "[\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const auto& m = metrics[i];
    os << "  {\"name\": \"" << JsonEscape(m.name) << "\", \"metric\": \""
       << JsonEscape(m.metric) << "\", \"value\": " << m.value
       << ", \"units\": \"" << JsonEscape(m.units) << "\"}"
       << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

void EmitJson(const BenchArgs& args, const std::vector<JsonMetric>& metrics) {
  if (!args.json_path) return;
  WriteBenchJson(*args.json_path, metrics);
  std::cout << "json metrics -> " << *args.json_path << "\n";
}

fault::ParallelCampaign MakeCampaign(const std::string& app_name,
                                     apps::AppScale scale,
                                     const apps::ProfileResult& profile,
                                     sim::Scheme scheme, unsigned cover,
                                     unsigned jobs) {
  fault::CampaignSpec spec;
  spec.make_app = [app_name, scale] {
    return apps::MakeApp(app_name, scale);
  };
  spec.profile = &profile;
  spec.scheme = scheme;
  spec.cover_objects = cover;
  return {std::move(spec), jobs};
}

}  // namespace dcrm::bench
