// Fig. 7: performance overhead of the detection-only and
// detection-and-correction schemes as the number of protected data
// objects grows (coverage order = Table III). Two series per app:
// execution time and L1-missed accesses (both normalized to the
// unprotected baseline).
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kMedium);
  bench::PrintHeader(
      "Figure 7",
      "Normalized execution time and L1-missed accesses vs. number of "
      "protected data objects (cumulative, Table III order; 'H' marks "
      "the hot-only cover).",
      args, 0, scale);

  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);
  TextTable t({"app", "scheme", "#objects", "norm exec time",
               "norm L1-missed accesses", "replica txns", "cmp-queue stalls"});
  double hot_det_sum = 0, hot_corr_sum = 0, all_det_sum = 0, all_corr_sum = 0;
  unsigned napps = 0;

  for (const auto& name :
       bench::SelectApps(args, apps::PaperAppNames())) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const auto max_cover =
        static_cast<unsigned>(profile.hot.coverage_order.size());
    const auto hot_cover =
        static_cast<unsigned>(profile.hot.hot_objects.size());

    const auto base =
        apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
    const auto base_stats = apps::RunTiming(*app, profile, cfg, base.plan);
    const double base_cycles = static_cast<double>(base_stats.cycles);
    const double base_missed =
        static_cast<double>(base_stats.L1MissedAccesses());
    t.NewRow().Add(name).Add("baseline").Add(0).Add(1.0, 4).Add(1.0, 4)
        .Add(std::uint64_t{0}).Add(std::uint64_t{0});

    for (const sim::Scheme scheme :
         {sim::Scheme::kDetectOnly, sim::Scheme::kDetectCorrect}) {
      for (unsigned cover = 1; cover <= max_cover; ++cover) {
        const auto setup =
            apps::MakeProtectionSetup(*app, profile, scheme, cover);
        const auto stats = apps::RunTiming(*app, profile, cfg, setup.plan);
        const double norm_time = static_cast<double>(stats.cycles) / base_cycles;
        const double norm_missed =
            static_cast<double>(stats.L1MissedAccesses()) / base_missed;
        std::string label = std::to_string(cover);
        if (cover == hot_cover) label += " (H)";
        t.NewRow()
            .Add(name)
            .Add(sim::SchemeName(scheme))
            .Add(label)
            .Add(norm_time, 4)
            .Add(norm_missed, 4)
            .Add(stats.replica_transactions)
            .Add(stats.compare_queue_stalls);
        if (cover == hot_cover) {
          (scheme == sim::Scheme::kDetectOnly ? hot_det_sum : hot_corr_sum) +=
              norm_time;
        }
        if (cover == max_cover) {
          (scheme == sim::Scheme::kDetectOnly ? all_det_sum : all_corr_sum) +=
              norm_time;
        }
      }
    }
    ++napps;
  }
  bench::Emit(t, args);
  if (napps > 0) {
    std::cout << "averages across " << napps << " apps:\n"
              << "  hot-only detection overhead:   "
              << FormatNum(100.0 * (hot_det_sum / napps - 1.0), 2)
              << "%  (paper: 1.2%)\n"
              << "  hot-only correction overhead:  "
              << FormatNum(100.0 * (hot_corr_sum / napps - 1.0), 2)
              << "%  (paper: 3.4%)\n"
              << "  all-objects detection:         "
              << FormatNum(100.0 * (all_det_sum / napps - 1.0), 2)
              << "%  (paper: 40.65%)\n"
              << "  all-objects correction:        "
              << FormatNum(100.0 * (all_corr_sum / napps - 1.0), 2)
              << "%  (paper: 74.24%)\n";
  }
  return 0;
}
