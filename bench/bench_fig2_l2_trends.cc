// Fig. 2: L2 cache size trends for NVIDIA and AMD GPUs — the paper's
// motivation that on-chip cache capacity (and with it the multi-bit
// fault surface) keeps growing. Published product specifications.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 2",
                     "L2 cache size across GPU generations (published specs; "
                     "static data, no simulation).",
                     args, 0, apps::AppScale::kSmall);

  struct Row {
    const char* vendor;
    const char* gpu;
    int year;
    double l2_mb;
  };
  static constexpr Row rows[] = {
      {"NVIDIA", "Fermi GTX 480", 2010, 0.75},
      {"NVIDIA", "Kepler GTX 780", 2013, 1.5},
      {"NVIDIA", "Maxwell GTX 980", 2014, 2.0},
      {"NVIDIA", "Pascal P100", 2016, 4.0},
      {"NVIDIA", "Volta V100", 2017, 6.0},
      {"NVIDIA", "Turing RTX 2080 Ti", 2018, 5.5},
      {"NVIDIA", "Ampere A100", 2020, 40.0},
      {"AMD", "Tahiti HD 7970", 2012, 0.768},
      {"AMD", "Hawaii R9 290X", 2013, 1.0},
      {"AMD", "Fiji Fury X", 2015, 2.0},
      {"AMD", "Vega 64", 2017, 4.0},
      {"AMD", "MI100", 2020, 8.0},
  };

  TextTable t({"vendor", "gpu", "year", "L2 (MB)"});
  for (const auto& r : rows) {
    t.NewRow().Add(r.vendor).Add(r.gpu).Add(r.year).Add(r.l2_mb, 3);
  }
  bench::Emit(t, args);
  std::cout << "shape check: Ampere A100 L2 is ~10x the previous NVIDIA "
               "generation, as the paper's introduction cites.\n";
  return 0;
}
