// Fig. 4: percentage of active warps accessing each data memory block,
// with blocks sorted by total RD accesses. The paper's observation II:
// the most-read blocks are also shared by (almost) all active warps.
//
// We print the mean warp share of the top-K most-read blocks versus
// the rest, plus quantiles of the share curve.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  bench::PrintHeader(
      "Figure 4",
      "Warp sharing (percent of a kernel's active warps touching a block) "
      "for the most-read blocks vs. the rest.",
      args, 0, scale);

  const auto names = bench::SelectApps(args, apps::HotPatternAppNames());

  TextTable t({"app", "top1% share%", "top10% share%", "rest share%",
               "hottest block share%"});
  for (const auto& name : names) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, bench::MakeGpuConfig(args));
    auto sorted = profile.profiler.SortedByReads();  // ascending
    if (sorted.empty()) continue;
    const std::size_t n = sorted.size();
    auto mean_share = [&](std::size_t lo, std::size_t hi) {
      if (lo >= hi) return 0.0;
      double s = 0;
      for (std::size_t i = lo; i < hi; ++i) s += sorted[i].second.warp_share;
      return 100.0 * s / static_cast<double>(hi - lo);
    };
    const std::size_t top1 = std::max<std::size_t>(1, n / 100);
    const std::size_t top10 = std::max<std::size_t>(1, n / 10);
    t.NewRow()
        .Add(name)
        .Add(mean_share(n - top1, n), 1)
        .Add(mean_share(n - top10, n), 1)
        .Add(mean_share(0, n - top10), 1)
        .Add(100.0 * sorted.back().second.warp_share, 1);
  }
  bench::Emit(t, args);
  std::cout
      << "shape check vs paper: top blocks are shared by a much larger "
         "fraction of warps than the rest; for C-NN and A-SRAD the top "
         "share is high but below 100% (Fig. 4(c)-(d)).\n";
  return 0;
}
