// Section V-C: the reliability/performance trade-off headline.
// Measures, per app and averaged: performance overhead at hot-only and
// full coverage (both schemes) and the SDC reduction from protecting
// the hot objects under miss-weighted injection.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"
#include "fault/campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned base_runs = args.runs ? args.runs : 80;
  bench::PrintHeader(
      "Section V-C trade-off summary",
      "Overhead (timing sim) and SDC reduction (fault campaigns, "
      "miss-weighted, 4-bit faults in 5 blocks) when protecting the hot "
      "objects only vs. all read-only inputs.",
      args, base_runs, scale);

  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);
  TextTable t({"app", "det hot ovh%", "corr hot ovh%", "det all ovh%",
               "corr all ovh%", "baseline SDC", "protected SDC",
               "SDC drop %"});
  double sum_det_hot = 0, sum_corr_hot = 0, sum_det_all = 0, sum_corr_all = 0;
  std::uint64_t total_base_sdc = 0, total_prot_sdc = 0;
  unsigned napps = 0;

  for (const auto& name :
       bench::SelectApps(args, apps::PaperAppNames())) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const auto hot =
        static_cast<unsigned>(profile.hot.hot_objects.size());
    const auto all =
        static_cast<unsigned>(profile.hot.coverage_order.size());
    if (hot == 0) continue;

    auto overhead = [&](sim::Scheme s, unsigned cover) {
      const auto setup = apps::MakeProtectionSetup(*app, profile, s, cover);
      const auto st = apps::RunTiming(*app, profile, cfg, setup.plan);
      return static_cast<double>(st.cycles);
    };
    const double base_cycles = overhead(sim::Scheme::kNone, 0);
    const double det_hot =
        100.0 * (overhead(sim::Scheme::kDetectOnly, hot) / base_cycles - 1.0);
    const double corr_hot =
        100.0 *
        (overhead(sim::Scheme::kDetectCorrect, hot) / base_cycles - 1.0);
    const double det_all =
        100.0 * (overhead(sim::Scheme::kDetectOnly, all) / base_cycles - 1.0);
    const double corr_all =
        100.0 *
        (overhead(sim::Scheme::kDetectCorrect, all) / base_cycles - 1.0);

    fault::CampaignConfig cc;
    cc.target = fault::Target::kMissWeighted;
    cc.faulty_blocks = 5;
    cc.bits_per_block = 4;
    cc.runs = name == "C-NN" ? std::max(20u, base_runs / 2) : base_runs;
    cc.seed = args.seed;
    fault::FaultCampaign baseline(*app, profile, sim::Scheme::kNone, 0);
    const auto base_counts = baseline.Run(cc);
    fault::FaultCampaign prot(*app, profile, sim::Scheme::kDetectCorrect,
                              hot);
    const auto prot_counts = prot.Run(cc);

    const double drop =
        base_counts.sdc == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(prot_counts.sdc) /
                                 static_cast<double>(base_counts.sdc));
    t.NewRow()
        .Add(name)
        .Add(det_hot, 2)
        .Add(corr_hot, 2)
        .Add(det_all, 2)
        .Add(corr_all, 2)
        .Add(base_counts.sdc)
        .Add(prot_counts.sdc)
        .Add(drop, 1);
    sum_det_hot += det_hot;
    sum_corr_hot += corr_hot;
    sum_det_all += det_all;
    sum_corr_all += corr_all;
    total_base_sdc += base_counts.sdc;
    total_prot_sdc += prot_counts.sdc;
    ++napps;
  }
  bench::Emit(t, args);
  if (napps > 0 && total_base_sdc > 0) {
    std::cout << "averages: det hot " << FormatNum(sum_det_hot / napps, 2)
              << "% (paper 1.2%) | corr hot "
              << FormatNum(sum_corr_hot / napps, 2)
              << "% (paper 3.4%) | det all "
              << FormatNum(sum_det_all / napps, 2)
              << "% (paper 40.65%) | corr all "
              << FormatNum(sum_corr_all / napps, 2)
              << "% (paper 74.24%) | aggregate SDC drop "
              << FormatNum(100.0 * (1.0 - static_cast<double>(total_prot_sdc) /
                                              total_base_sdc),
                           2)
              << "% (paper 98.97%)\n";
  }
  return 0;
}
