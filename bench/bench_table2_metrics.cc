// Table II: output formats and error metrics for the studied
// applications, as implemented by each App's metric.
#include <iostream>

#include "apps/registry.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Table II", "Output error metrics for the applications.",
                     args, 0, apps::AppScale::kSmall);

  TextTable t({"application", "output objects", "error metric",
               "SDC threshold"});
  for (const auto& name : apps::AllAppNames()) {
    auto app = apps::MakeApp(name, apps::AppScale::kTiny);
    std::string outs;
    for (const auto& o : app->OutputObjects()) {
      if (!outs.empty()) outs += ", ";
      outs += o;
    }
    t.NewRow().Add(name).Add(outs).Add(app->MetricName()).Add(
        "> " + FormatNum(app->SdcThreshold(), 4));
  }
  bench::Emit(t, args);
  return 0;
}
