// TraceStore engineering bench: what the columnar refactor buys, and
// what the event-driven engine buys on top of it.
//
// Four measurements:
//   1. trace memory footprint (paper apps) — the legacy nested-AoS
//      KernelTrace representation (reconstructed via ToKernelTraces
//      and measured with LegacyFootprintBytes) vs the columnar
//      TraceStore, plus the serialized --save-trace size for
//      reference. Acceptance bar: >= 2x reduction in-memory.
//   2. replay throughput (hot-pattern apps) — transactions/second
//      through the timing model under the cycle-stepped reference
//      engine vs the event-driven engine, at the seed geometry and at
//      a paper-scale V100-class geometry (80 SMs / 32 partitions),
//      with the stats checked bit-identical per app at both.
//      Acceptance bar: identical everywhere, and the event engine is
//      >= 3x faster at paper scale on the sparse (campaign-shaped)
//      replays — at least 4 of the 10 apps. Saturated replays are
//      pinned near 1x by bit-identity: every SM is busy every cycle,
//      so there are no idle ticks to skip.
//   3. campaign wall-clock at --jobs=1 vs hardware threads, with the
//      merged counts checked bit-identical — the immutable shared
//      store plus shared CampaignTables is what makes the fan-out
//      cheap, and determinism must survive it.
#include <chrono>
#include <iostream>
#include <thread>

#include "apps/driver.h"
#include "bench_util.h"
#include "fault/parallel_campaign.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Everything but sim_ticks (engine rounds — the one field the event
// engine is supposed to change).
bool StatsIdentical(const dcrm::sim::GpuStats& a,
                    const dcrm::sim::GpuStats& b) {
  return a.cycles == b.cycles &&
         a.warp_insts_issued == b.warp_insts_issued &&
         a.mem_insts == b.mem_insts && a.transactions == b.transactions &&
         a.replica_transactions == b.replica_transactions &&
         a.l1_accesses == b.l1_accesses && a.l1_hits == b.l1_hits &&
         a.l1_pending_hits == b.l1_pending_hits &&
         a.l1_misses == b.l1_misses && a.l2_accesses == b.l2_accesses &&
         a.l2_hits == b.l2_hits && a.l2_misses == b.l2_misses &&
         a.replica_l2_hits == b.replica_l2_hits &&
         a.replica_l2_misses == b.replica_l2_misses &&
         a.dram_reads == b.dram_reads && a.dram_writes == b.dram_writes &&
         a.dram_row_hits == b.dram_row_hits &&
         a.mshr_stalls == b.mshr_stalls &&
         a.compare_queue_stalls == b.compare_queue_stalls &&
         a.comparisons == b.comparisons &&
         a.block_misses == b.block_misses;
}

struct ReplaySample {
  double cycle_mtxns = 0;
  double event_mtxns = 0;
  double speedup = 0;
  bool identical = false;
};

// Replays `store` under both engines on `cfg`, repeating until each
// engine's sample is long enough to time on a shared box.
ReplaySample MeasureReplay(dcrm::sim::GpuConfig cfg,
                           const dcrm::apps::App& app,
                           const dcrm::trace::TraceStore& store) {
  using dcrm::sim::SimEngine;
  cfg.alu_cycles_per_mem = app.AluCyclesPerMem();
  double mtxns[2] = {0, 0};
  dcrm::sim::GpuStats stats[2];
  for (const auto engine :
       {SimEngine::kCycleStepped, SimEngine::kEventDriven}) {
    cfg.engine = engine;
    const int slot = engine == SimEngine::kCycleStepped ? 0 : 1;
    unsigned reps = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double ms = 0;
    do {
      dcrm::sim::Gpu gpu(cfg, {});
      stats[slot] = gpu.Run(store);
      ++reps;
      ms = MillisSince(t0);
    } while (ms < 50.0);
    const double txns = static_cast<double>(store.TotalTransactions()) * reps;
    mtxns[slot] = txns / (ms * 1e3);
  }
  return {mtxns[0], mtxns[1], mtxns[1] / mtxns[0],
          StatsIdentical(stats[0], stats[1])};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned runs = args.runs ? args.runs : 200;
  bench::PrintHeader(
      "TraceStore footprint and replay throughput",
      "Columnar trace artifact vs the legacy nested-AoS traces "
      "(in-memory bytes and the --save-trace file size), timing-replay "
      "throughput under the cycle-stepped reference engine vs the "
      "event-driven engine at the seed geometry and at a paper-scale "
      "V100-class geometry (80 SMs / 32 partitions; 'identical' = "
      "every stat but sim_ticks is bit-equal at both), and campaign "
      "wall-clock at jobs=1 vs hardware threads ('identical' = merged "
      "counts are bit-identical).",
      args, runs, scale);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "hardware threads: " << hw << "\n\n";

  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);

  // Replay throughput is measured at two machine geometries: the seed
  // config (15 SMs / 6 partitions) and a paper-scale V100-class GPU
  // (80 SMs / 32 partitions). The event engine's win is idle ticks
  // skipped, so it grows with the number of components a workload
  // leaves idle; a saturated replay (every SM busy every cycle) has
  // nothing to skip and is pinned near 1x by the bit-identity
  // requirement.
  sim::GpuConfig paper_cfg = cfg;
  paper_cfg.num_sms = 80;
  paper_cfg.num_partitions = 32;

  TextTable foot({"app", "AoS bytes", "store bytes", "ratio", "file bytes"});
  TextTable replay({"app", "txns", "cycle Mtxn/s", "event Mtxn/s", "speedup",
                    "paper cycle", "paper event", "paper speedup",
                    "identical"});
  TextTable camp({"app", "jobs", "runs", "wall ms", "speedup", "identical"});
  std::vector<bench::JsonMetric> metrics;
  double worst_ratio = 0;
  bool identical = true;
  bool engines_identical = true;
  unsigned engine_apps = 0;
  unsigned engine_3x = 0;

  const auto& paper = apps::PaperAppNames();
  for (const auto& name :
       bench::SelectApps(args, apps::HotPatternAppNames())) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const trace::TraceStore& store = *profile.trace_store;

    // 1. Footprint (paper-app subset). The AoS form is the round-trip
    // reconstruction of the very same trace, so the comparison is
    // content-identical.
    if (std::find(paper.begin(), paper.end(), name) != paper.end()) {
      const auto legacy = trace::ToKernelTraces(store);
      const double aos =
          static_cast<double>(trace::LegacyFootprintBytes(legacy));
      const double col = static_cast<double>(store.FootprintBytes());
      const double ratio = aos / col;
      if (worst_ratio == 0 || ratio < worst_ratio) worst_ratio = ratio;
      foot.NewRow()
          .Add(name)
          .Add(static_cast<std::uint64_t>(aos))
          .Add(static_cast<std::uint64_t>(col))
          .Add(ratio, 2)
          .Add(static_cast<std::uint64_t>(
              trace::SaveTraceToString(store).size()));
    }

    // 2. Replay throughput at both geometries. The same trace store
    // replays under every (engine, geometry) pair; identity must hold
    // at each geometry independently.
    const ReplaySample seed = MeasureReplay(cfg, *app, store);
    const ReplaySample paper = MeasureReplay(paper_cfg, *app, store);
    engines_identical = engines_identical && seed.identical &&
                        paper.identical;
    ++engine_apps;
    if (paper.identical && paper.speedup >= 3.0) ++engine_3x;
    replay.NewRow()
        .Add(name)
        .Add(store.TotalTransactions())
        .Add(seed.cycle_mtxns, 2)
        .Add(seed.event_mtxns, 2)
        .Add(seed.speedup, 2)
        .Add(paper.cycle_mtxns, 2)
        .Add(paper.event_mtxns, 2)
        .Add(paper.speedup, 2)
        .Add(seed.identical && paper.identical ? "yes" : "NO");
    metrics.push_back(
        {"sim_throughput/" + name, "cycle_mtxns", seed.cycle_mtxns, "Mtxn/s"});
    metrics.push_back(
        {"sim_throughput/" + name, "event_mtxns", seed.event_mtxns, "Mtxn/s"});
    metrics.push_back(
        {"sim_throughput/" + name, "engine_speedup", seed.speedup, "x"});
    metrics.push_back({"sim_throughput/" + name, "paper_cycle_mtxns",
                       paper.cycle_mtxns, "Mtxn/s"});
    metrics.push_back({"sim_throughput/" + name, "paper_event_mtxns",
                       paper.event_mtxns, "Mtxn/s"});
    metrics.push_back({"sim_throughput/" + name, "paper_engine_speedup",
                       paper.speedup, "x"});
  }
  metrics.push_back({"sim_throughput/summary", "apps_at_3x_paper_scale",
                     static_cast<double>(engine_3x), "apps"});
  metrics.push_back({"sim_throughput/summary", "engines_identical",
                     engines_identical ? 1.0 : 0.0, "bool"});

  // 3. Campaign fan-out on one representative app: the workers share
  // the one immutable store and the worker-0 CampaignTables.
  for (const auto& name : bench::SelectApps(args, {std::string("P-BICG")})) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const auto hot = static_cast<unsigned>(profile.hot.hot_objects.size());
    fault::CampaignConfig cc;
    cc.target = fault::Target::kMissWeighted;
    cc.faulty_blocks = 1;
    cc.bits_per_block = 2;
    cc.runs = runs;
    cc.seed = args.seed;

    fault::CampaignCounts reference{};
    double serial_ms = 0;
    for (const unsigned jobs : {1u, hw}) {
      auto campaign = bench::MakeCampaign(
          name, scale, profile, sim::Scheme::kDetectCorrect, hot, jobs);
      const auto t0 = std::chrono::steady_clock::now();
      const auto counts = campaign.Run(cc);
      const double ms = MillisSince(t0);
      if (jobs == 1) {
        reference = counts;
        serial_ms = ms;
      }
      identical = identical && counts == reference;
      camp.NewRow()
          .Add(name)
          .Add(jobs)
          .Add(counts.runs)
          .Add(ms, 1)
          .Add(serial_ms / ms, 2)
          .Add(counts == reference ? "yes" : "NO");
      if (jobs == hw) break;  // hw may be 1; don't run jobs=1 twice
    }
  }

  bench::Emit(foot, args);
  std::cout << '\n';
  bench::Emit(replay, args);
  std::cout << '\n';
  bench::Emit(camp, args);
  bench::EmitJson(args, metrics);
  std::cout << "\nworst footprint ratio: " << worst_ratio
            << "x (acceptance bar: >= 2x)\n"
            << "event engine >= 3x at paper-scale geometry on " << engine_3x
            << "/" << engine_apps
            << " apps (acceptance bar: >= 4, identical on all)\n";
  std::cout << "expectation: every app's columnar trace is at least "
               "half the AoS bytes (the block pool packs to 32-bit "
               "block indices), the event-driven engine replays the "
               "same traces bit-identically at both geometries, and "
               "the fan-out stays bit-identical. The event engine's "
               "win is idle ticks skipped, so the campaign-shaped "
               "sparse replays (the polybench apps, <1 active SM per "
               "cycle on average) clear 3x with a wide margin at "
               "paper scale, while saturated stencil replays (every "
               "SM busy every cycle) have nothing to skip and sit "
               "near 1x — that ceiling is forced by bit-identity, "
               "not engine overhead.\n";
  const bool engine_pass =
      engines_identical && (engine_apps < 10 || engine_3x >= 4);
  if (worst_ratio < 2.0 || !identical || !engine_pass) {
    std::cerr << "ACCEPTANCE FAILURE: ratio " << worst_ratio
              << " identical=" << (identical ? "yes" : "no")
              << " engines_identical=" << (engines_identical ? "yes" : "no")
              << " apps_at_3x_paper_scale=" << engine_3x << "/" << engine_apps
              << "\n";
    return 1;
  }
  return 0;
}
