// TraceStore engineering bench: what the columnar refactor buys.
//
// Three measurements per app:
//   1. trace memory footprint — the legacy nested-AoS KernelTrace
//      representation (reconstructed via ToKernelTraces and measured
//      with LegacyFootprintBytes) vs the columnar TraceStore, plus the
//      serialized --save-trace size for reference. The acceptance bar
//      is a >= 2x reduction in-memory.
//   2. replay throughput — transactions/second through the timing
//      model when the simulator walks the store's cursor API. The
//      refactor must not slow the replay hot path.
//   3. campaign wall-clock at --jobs=1 vs hardware threads, with the
//      merged counts checked bit-identical — the immutable shared
//      store plus shared CampaignTables is what makes the fan-out
//      cheap, and determinism must survive it.
#include <chrono>
#include <iostream>
#include <thread>

#include "apps/driver.h"
#include "bench_util.h"
#include "fault/parallel_campaign.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned runs = args.runs ? args.runs : 200;
  bench::PrintHeader(
      "TraceStore footprint and replay throughput",
      "Columnar trace artifact vs the legacy nested-AoS traces: "
      "in-memory bytes (and the --save-trace file size), timing-replay "
      "throughput over the cursor API, and campaign wall-clock at "
      "jobs=1 vs hardware threads ('identical' = merged counts are "
      "bit-identical).",
      args, runs, scale);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "hardware threads: " << hw << "\n\n";

  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);

  TextTable foot({"app", "AoS bytes", "store bytes", "ratio", "file bytes"});
  TextTable replay({"app", "txns", "replays", "wall ms", "Mtxn/s"});
  TextTable camp({"app", "jobs", "runs", "wall ms", "speedup", "identical"});
  double worst_ratio = 0;
  bool identical = true;

  for (const auto& name :
       bench::SelectApps(args, apps::PaperAppNames())) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const trace::TraceStore& store = *profile.trace_store;

    // 1. Footprint. The AoS form is the round-trip reconstruction of
    // the very same trace, so the comparison is content-identical.
    const auto legacy = trace::ToKernelTraces(store);
    const double aos =
        static_cast<double>(trace::LegacyFootprintBytes(legacy));
    const double col = static_cast<double>(store.FootprintBytes());
    const double ratio = aos / col;
    if (worst_ratio == 0 || ratio < worst_ratio) worst_ratio = ratio;
    foot.NewRow()
        .Add(name)
        .Add(static_cast<std::uint64_t>(aos))
        .Add(static_cast<std::uint64_t>(col))
        .Add(ratio, 2)
        .Add(static_cast<std::uint64_t>(
            trace::SaveTraceToString(store).size()));

    // 2. Replay throughput over the cursor API. Repeat until the
    // sample is long enough to time on a shared box.
    sim::GpuConfig replay_cfg = cfg;
    replay_cfg.alu_cycles_per_mem = app->AluCyclesPerMem();
    unsigned reps = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double ms = 0;
    do {
      sim::Gpu gpu(replay_cfg, {});
      (void)gpu.Run(store);
      ++reps;
      ms = MillisSince(t0);
    } while (ms < 50.0);
    const double txns =
        static_cast<double>(store.TotalTransactions()) * reps;
    replay.NewRow()
        .Add(name)
        .Add(store.TotalTransactions())
        .Add(reps)
        .Add(ms, 1)
        .Add(txns / (ms * 1e3), 2);
  }

  // 3. Campaign fan-out on one representative app: the workers share
  // the one immutable store and the worker-0 CampaignTables.
  for (const auto& name : bench::SelectApps(args, {std::string("P-BICG")})) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const auto hot = static_cast<unsigned>(profile.hot.hot_objects.size());
    fault::CampaignConfig cc;
    cc.target = fault::Target::kMissWeighted;
    cc.faulty_blocks = 1;
    cc.bits_per_block = 2;
    cc.runs = runs;
    cc.seed = args.seed;

    fault::CampaignCounts reference{};
    double serial_ms = 0;
    for (const unsigned jobs : {1u, hw}) {
      auto campaign = bench::MakeCampaign(
          name, scale, profile, sim::Scheme::kDetectCorrect, hot, jobs);
      const auto t0 = std::chrono::steady_clock::now();
      const auto counts = campaign.Run(cc);
      const double ms = MillisSince(t0);
      if (jobs == 1) {
        reference = counts;
        serial_ms = ms;
      }
      identical = identical && counts == reference;
      camp.NewRow()
          .Add(name)
          .Add(jobs)
          .Add(counts.runs)
          .Add(ms, 1)
          .Add(serial_ms / ms, 2)
          .Add(counts == reference ? "yes" : "NO");
      if (jobs == hw) break;  // hw may be 1; don't run jobs=1 twice
    }
  }

  bench::Emit(foot, args);
  std::cout << '\n';
  bench::Emit(replay, args);
  std::cout << '\n';
  bench::Emit(camp, args);
  std::cout << "\nworst footprint ratio: " << worst_ratio
            << "x (acceptance bar: >= 2x)\n";
  std::cout << "expectation: every app's columnar trace is at least "
               "half the AoS bytes (the block pool packs to 32-bit "
               "block indices), replay throughput is unchanged vs the "
               "AoS walk, and the fan-out stays bit-identical.\n";
  if (worst_ratio < 2.0 || !identical) {
    std::cerr << "ACCEPTANCE FAILURE: ratio " << worst_ratio
              << " identical=" << (identical ? "yes" : "no") << "\n";
    return 1;
  }
  return 0;
}
