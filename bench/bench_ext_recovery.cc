// Extension: the detection-to-recovery pipeline (core/recovery.h).
// The paper stops at detection — a duplication mismatch terminates the
// run and re-execution is left to the user. This bench sweeps the
// bounded re-execution retry budget over all studied applications
// under full-cover duplication and measures (a) how many former
// detections convert into recovered runs, (b) which tier did the work
// (arbitration / scrub / retire / re-execute), and (c) what recovery
// costs in cycles relative to one protected execution.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"
#include "core/recovery.h"
#include "fault/campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned base_runs = args.runs ? args.runs : 40;
  bench::PrintHeader(
      "Extension: detect-to-recover pipeline (retry-budget sweep)",
      "Full-cover duplication, miss-weighted injection, 1 block x 4 "
      "bits. budget=off is the paper's detect-and-die; budget=k adds "
      "tiered recovery (arbitrate/scrub, retire + re-execute up to k "
      "times, escalate repeat offenders). Same seed per app, so rows "
      "see identical fault sequences. C-NN uses N/2 runs.",
      args, base_runs, scale);

  TextTable t({"app", "budget", "runs", "SDC", "detected", "recovered",
               "masked", "arb", "scrubs", "retired", "reexec", "escal",
               "scrub_cyc", "retire_cyc", "reexec_cyc", "backoff_cyc",
               "overhead%"});
  for (const auto& name :
       bench::SelectApps(args, apps::HotPatternAppNames())) {
    auto app = apps::MakeApp(name, scale);
    const sim::GpuConfig cfg = bench::MakeGpuConfig(args);
    const auto profile = apps::ProfileApp(*app, cfg);
    const unsigned cover =
        static_cast<unsigned>(profile.hot.coverage_order.size());
    const unsigned runs =
        name == "C-NN" ? std::max(20u, base_runs / 2) : base_runs;

    // Cycles of one protected execution, for ChargeRecovery's
    // re-execution and amortization terms.
    const auto setup = apps::MakeProtectionSetup(
        *app, profile, sim::Scheme::kDetectOnly, cover);
    const std::uint64_t run_cycles =
        apps::RunTiming(*app, profile, cfg, setup.plan).cycles;

    for (unsigned budget : {0u, 1u, 2u, 3u}) {
      // Fresh campaign per sweep point so the repeat-offender ledger
      // (Tier 2) starts cold each time.
      auto campaign = bench::MakeCampaign(
          name, scale, profile, sim::Scheme::kDetectOnly, cover, args.jobs);
      fault::CampaignConfig cc;
      cc.target = fault::Target::kMissWeighted;
      cc.faulty_blocks = 1;
      cc.bits_per_block = 4;
      cc.runs = runs;
      cc.seed = args.seed;
      cc.recovery.enabled = budget > 0;
      cc.recovery.max_retries = budget;
      const auto counts = campaign.Run(cc);
      const auto cost =
          core::ChargeRecovery(counts.recovery, counts.runs, run_cycles, cfg);
      t.NewRow()
          .Add(name)
          .Add(budget == 0 ? std::string("off") : std::to_string(budget))
          .Add(counts.runs)
          .Add(counts.sdc)
          .Add(counts.detected)
          .Add(counts.recovered)
          .Add(counts.masked)
          .Add(counts.recovery.arbitrations)
          .Add(counts.recovery.scrubs)
          .Add(counts.recovery.retired_blocks)
          .Add(counts.recovery.retries)
          .Add(counts.recovery.escalations)
          .Add(cost.scrub_cycles, 0)
          .Add(cost.retire_cycles, 0)
          .Add(cost.reexec_cycles, 0)
          .Add(cost.backoff_cycles, 0)
          .Add(100.0 * cost.per_run_overhead, 3);
    }
  }
  bench::Emit(t, args);
  std::cout
      << "expectation: at budget=off every covered fault is a terminal "
         "detection; already at budget=1 the strict majority convert to "
         "recovered runs and SDC never grows. Tier 0 arbitration ('arb') "
         "settles the first offenses in place, Tier 2 escalation takes "
         "over once an object re-offends ('escal' ranges correct by "
         "vote), and bounded re-execution ('reexec') is the backstop — "
         "rarely needed when arbitration can identify the bad copy. The "
         "per-run cycle overhead stays small because only faulty runs "
         "pay the recovery tax.\n";
  return 0;
}
