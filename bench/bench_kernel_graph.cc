// Kernel-graph workloads: cross-kernel hotness, inter-kernel data
// reuse, and the weight-tensor protection trade-off.
//
// The DAG apps (transformer block, two-layer MLP) read their weight
// tensors from several kernel launches — chunked GEMMs — so any
// per-launch profile splits a weight's access intensity across rows
// and under-ranks it. The graph runtime accumulates reads across the
// whole DAG: section 1 shows the cross-kernel totals against the best
// single-kernel view and FAILS THE SWEEP (exit 1) if a shared weight
// tensor's cross-kernel reads do not exceed every single-kernel view
// of it. Section 2 prices the data flowing along each graph edge.
// Section 3 runs the protection trade-off: protect exactly the shared
// weight set, measure SDC drop and timing overhead, and compare
// against warp-RMT and checkpoint-restart baselines.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "apps/driver.h"
#include "bench_util.h"
#include "core/baselines.h"
#include "fault/parallel_campaign.h"
#include "trace/graph_stats.h"

namespace {

using namespace dcrm;

// The shared weight tensors of the graph apps ("Wq", "W1", ...). The
// convention is part of the app contract: weights are the read-only
// 'W*' objects reused across launches.
bool IsWeight(const std::string& name) {
  return !name.empty() && name[0] == 'W';
}

// Rank = number of objects with a strictly larger key (ties share the
// better rank), so "ranks above" is insensitive to tie order.
std::size_t RankBy(const std::vector<core::ObjectProfile>& objs,
                   const core::ObjectProfile& target,
                   std::uint64_t (*key)(const core::ObjectProfile&)) {
  std::size_t rank = 0;
  for (const auto& o : objs) {
    if (key(o) > key(target)) ++rank;
  }
  return rank;
}

fault::CampaignCounts RunWeightCampaign(const std::string& name,
                                        apps::AppScale scale,
                                        const apps::ProfileResult& profile,
                                        sim::Scheme scheme,
                                        std::vector<std::string> objects,
                                        const bench::BenchArgs& args,
                                        unsigned runs) {
  fault::CampaignSpec spec;
  spec.make_app = [name, scale] { return apps::MakeApp(name, scale); };
  spec.profile = &profile;
  spec.scheme = scheme;
  spec.object_names = std::move(objects);
  fault::ParallelCampaign campaign(std::move(spec),
                                   args.jobs == 0 ? 1 : args.jobs);
  fault::CampaignConfig cc;
  cc.target = fault::Target::kMissWeighted;
  cc.faulty_blocks = 1;
  cc.bits_per_block = 2;
  cc.runs = runs;
  cc.seed = args.seed;
  return campaign.Run(cc);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned runs = args.runs != 0 ? args.runs : 40;
  bench::PrintHeader(
      "Kernel-graph workloads: cross-kernel hotness and weight protection",
      "Multi-kernel DAG apps whose weight tensors are re-read by "
      "several launches. Cross-kernel read totals vs the best "
      "single-kernel view, per-edge reused bytes, and the trade-off "
      "from protecting exactly the shared weight set vs RMT / "
      "checkpoint-restart baselines.",
      args, runs, scale);

  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);
  const auto names = bench::SelectApps(args, apps::GraphAppNames());
  std::vector<bench::JsonMetric> metrics;
  bool hotness_gate_ok = true;

  // --- Section 1: cross-kernel hotness vs the single-kernel view. ---
  TextTable hot({"app", "object", "reads (cross)", "kernels",
                 "max 1-kernel", "cross/single", "rank cross",
                 "rank single"});
  for (const auto& name : names) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const auto objs =
        core::AggregateByObject(profile.profiler, profile.dev->space());
    double worst_amp = 0.0;
    for (const auto& op : objs) {
      if (op.reads == 0) continue;
      const double amp = op.max_kernel_reads == 0
                             ? 1.0
                             : static_cast<double>(op.reads) /
                                   static_cast<double>(op.max_kernel_reads);
      const std::size_t rank_cross = RankBy(
          objs, op, [](const core::ObjectProfile& o) { return o.reads; });
      const std::size_t rank_single =
          RankBy(objs, op, [](const core::ObjectProfile& o) {
            return o.max_kernel_reads;
          });
      hot.NewRow()
          .Add(name)
          .Add(op.name)
          .Add(op.reads)
          .Add(op.kernels_reading)
          .Add(op.max_kernel_reads)
          .Add(amp, 2)
          .Add(static_cast<std::uint64_t>(rank_cross))
          .Add(static_cast<std::uint64_t>(rank_single));
      if (IsWeight(op.name) && op.kernels_reading >= 2) {
        // The acceptance gate: a shared weight's cross-kernel total
        // must beat any single launch's view of it, and its rank under
        // cross-kernel totals must be at least as good. (Weights read
        // by a single launch — Wo — have nothing to accumulate.)
        if (op.reads <= op.max_kernel_reads || rank_cross > rank_single) {
          hotness_gate_ok = false;
        }
        worst_amp = std::max(worst_amp, amp);
      }
    }
    // Every graph app must actually exercise the claim.
    if (worst_amp <= 1.0) hotness_gate_ok = false;
    metrics.push_back({"kernel_graph/" + name, "weight_read_amplification",
                       worst_amp, "x"});
  }
  bench::Emit(hot, args);
  std::cout << "shared weights accumulate reads across launches; a "
               "per-launch profile sees at most 1/kernels of it.\n\n";

  // --- Section 2: data crossing the graph's edges. ---
  TextTable reuse({"app", "producer", "consumer", "object",
                   "reused blocks", "reused KiB"});
  for (const auto& name : names) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    std::uint64_t total_bytes = 0;
    for (const auto& e : trace::ComputeEdgeReuse(*profile.trace_store)) {
      reuse.NewRow()
          .Add(name)
          .Add(e.producer_label)
          .Add(e.consumer_label)
          .Add(e.object)
          .Add(e.reused_blocks)
          .Add(static_cast<double>(e.reused_bytes) / 1024.0, 1);
      total_bytes += e.reused_bytes;
    }
    metrics.push_back({"kernel_graph/" + name, "edge_reused_bytes",
                       static_cast<double>(total_bytes), "bytes"});
  }
  bench::Emit(reuse, args);
  std::cout << "every producer->consumer value that survives a kernel "
               "boundary is exposure the single-kernel model never "
               "prices.\n\n";

  // --- Section 3: weight-set protection vs the baselines. ---
  constexpr double kPcieBytesPerCycle = 16.0;
  constexpr double kFaultProb = 0.01;
  TextTable trade({"app", "SDC base", "SDC W-prot", "W-prot overhead",
                   "hot overhead", "RMT time", "ckpt E[T] p=.01"});
  for (const auto& name : names) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const auto objs =
        core::AggregateByObject(profile.profiler, profile.dev->space());
    std::vector<std::string> weights;
    for (const auto& op : objs) {
      if (IsWeight(op.name)) weights.push_back(op.name);
    }
    const auto hot_cover =
        static_cast<unsigned>(profile.hot.hot_objects.size());

    const auto base =
        apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
    const auto base_stats = apps::RunTiming(*app, profile, cfg, base.plan);
    const double base_cycles = static_cast<double>(base_stats.cycles);

    const auto wprot = apps::MakeProtectionSetupForObjects(
        *app, profile, sim::Scheme::kDetectCorrect, weights);
    const double w_over =
        static_cast<double>(
            apps::RunTiming(*app, profile, cfg, wprot.plan).cycles) /
            base_cycles -
        1.0;
    const auto hotp = apps::MakeProtectionSetup(
        *app, profile, sim::Scheme::kDetectCorrect, hot_cover);
    const double hot_over =
        static_cast<double>(
            apps::RunTiming(*app, profile, cfg, hotp.plan).cycles) /
            base_cycles -
        1.0;

    const auto sdc_base = RunWeightCampaign(
        name, scale, profile, sim::Scheme::kNone, {}, args, runs);
    const auto sdc_wprot =
        RunWeightCampaign(name, scale, profile, sim::Scheme::kDetectCorrect,
                          weights, args, runs);

    // Warp-RMT: duplicate every warp and replay (cannot even observe
    // the memory faults studied here — both copies read the same
    // faulty DRAM).
    std::vector<trace::KernelTrace> rmt;
    const auto kernels = trace::ToKernelTraces(*profile.trace_store);
    rmt.reserve(kernels.size());
    for (const auto& k : kernels) {
      rmt.push_back(core::MakeRmtTrace(k));
    }
    sim::GpuConfig rmt_cfg = cfg;
    rmt_cfg.alu_cycles_per_mem = app->AluCyclesPerMem();
    sim::Gpu gpu(rmt_cfg, {});
    const double rmt_time =
        static_cast<double>(gpu.Run(rmt).cycles) / base_cycles;

    const double ckpt_cost = core::RecoveryModel::CheckpointCost(
        profile.dev->space().TotalObjectBytes(), kPcieBytesPerCycle,
        base_stats.cycles);
    const double ckpt = core::RecoveryModel::CheckpointRestart(
        kFaultProb, 0.25, ckpt_cost, ckpt_cost);

    trade.NewRow()
        .Add(name)
        .Add(static_cast<double>(sdc_base.sdc) / runs, 3)
        .Add(static_cast<double>(sdc_wprot.sdc) / runs, 3)
        .Add(w_over, 4)
        .Add(hot_over, 4)
        .Add(rmt_time, 3)
        .Add(ckpt, 3);
    metrics.push_back({"kernel_graph/" + name, "sdc_base_rate",
                       static_cast<double>(sdc_base.sdc) / runs, "fraction"});
    metrics.push_back({"kernel_graph/" + name, "sdc_weight_prot_rate",
                       static_cast<double>(sdc_wprot.sdc) / runs,
                       "fraction"});
    metrics.push_back(
        {"kernel_graph/" + name, "weight_prot_overhead", w_over, "fraction"});
    metrics.push_back({"kernel_graph/" + name, "rmt_time", rmt_time, "x"});
  }
  bench::Emit(trade, args);
  std::cout
      << "expectation: protecting the shared weight set removes the "
         "weight-borne SDC share at near-zero overhead (activation-"
         "borne SDCs remain); RMT pays duplicated execution without "
         "even observing memory faults; checkpointing pays its "
         "footprint tax even when nothing fails.\n";

  bench::EmitJson(args, metrics);

  if (!hotness_gate_ok) {
    std::cerr << "FAIL: a shared weight tensor did not rank above its "
                 "single-kernel view in the cross-kernel profile.\n";
    return 1;
  }
  return 0;
}
