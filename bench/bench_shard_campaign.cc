// Crash-tolerant sharded campaign demo (DESIGN.md §11): the
// multi-process coordinator run against real worker processes with
// real failures injected, checking at every step that the merged
// CampaignCounts and escalation ledger stay bit-identical to the
// in-process `--jobs=N` engine.
//
// Phase 1 (reduced trials): four failure scenarios — clean sharding, a
// SIGKILLed worker plus a hung worker that must be timed out, a
// preempted coordinator that resumes from its manifest, and a coupled
// Tier-2 escalation chain killed mid-shard and resumed — each compared
// bit-for-bit against the single-process reference.
//
// Phase 2 (default 10^6 trials): the headline run. The sharded
// campaign is interrupted halfway (checkpoint + exit 7), resumed to
// completion, and the merged counts are verified bit-identical to an
// uninterrupted in-process `--jobs=2` run of the same million trials.
//
// Exits nonzero on any identity violation, unexpected exit code, or
// orphaned `*.tmp.*` file left in a work directory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "apps/driver.h"
#include "bench_util.h"
#include "common/file_util.h"
#include "fault/parallel_campaign.h"
#include "fault/shard_coordinator.h"
#include "trace/trace_io.h"

namespace {

using namespace dcrm;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Reference {
  fault::CampaignCounts counts;
  core::EscalationLedger ledger;
};

// Single-process ground truth through the in-process parallel engine.
Reference InProcess(const fault::ShardCampaignSpec& spec,
                    const apps::ProfileResult& profile, unsigned jobs) {
  unsigned cover = spec.cover.value_or(
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  if (spec.scheme == sim::Scheme::kNone) cover = 0;
  fault::CampaignSpec cs;
  cs.make_app = [&spec] { return apps::MakeApp(spec.app, spec.scale); };
  cs.profile = &profile;
  cs.scheme = spec.scheme;
  cs.cover_objects = cover;
  cs.object_names = spec.objects;
  cs.allow_unsound = spec.allow_unsound;
  fault::ParallelCampaign campaign(std::move(cs), jobs);
  Reference ref;
  ref.counts = campaign.Run(fault::MakeCampaignConfig(spec));
  ref.ledger = campaign.ledger();
  return ref;
}

bool Identical(const fault::ShardCampaignOutcome& outcome,
               const Reference& ref) {
  return outcome.counts == ref.counts && outcome.ledger == ref.ledger;
}

// Orphaned-temp-file sweep: a clean shutdown (even an interrupted one)
// must leave no `<artifact>.tmp.<pid>` siblings behind.
unsigned CountOrphanedTemps(const std::vector<std::string>& dirs) {
  unsigned n = 0;
  for (const auto& dir : dirs) {
    for (const auto& name : ListDir(dir)) {
      if (name.find(".tmp.") != std::string::npos) {
        std::cerr << "orphaned temp file: " << dir << "/" << name << "\n";
        ++n;
      }
    }
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kTiny);
  const unsigned total_runs = args.runs ? args.runs : 1000000;
  const unsigned small_runs = std::min(2000u, total_runs);
  const auto app_name =
      bench::SelectApps(args, {std::string("P-ATAX")}).front();
  bench::PrintHeader(
      "Sharded campaign crash tolerance",
      "A multi-process sharded campaign (coordinator + dcrm shard-worker "
      "children sharing one trace artifact) under injected failures: "
      "SIGKILLed and hung workers, exhausted-and-resumed coordinators. "
      "'identical' compares the merged counts AND escalation ledger "
      "bit-for-bit against the in-process --jobs=2 engine. Phase 2 runs "
      "the full trial count sharded, interrupts it halfway (exit 7), "
      "resumes, and verifies the same identity.",
      args, total_runs, scale);

  const std::string workroot = "dcrm_shard_bench_work";
  EnsureDir(workroot);
  std::vector<std::string> workdirs;

  fault::ShardCampaignSpec base;
  base.app = app_name;
  base.scale = scale;
  base.scheme = sim::Scheme::kDetectOnly;
  base.runs = small_runs;
  base.seed = args.seed;
  base.jobs = 1;
  base.gpu = bench::MakeGpuConfig(args);

  // One shared trace artifact: every scenario (and every worker
  // process) replays exactly these recorded accesses.
  auto app = apps::MakeApp(base.app, base.scale);
  const auto profile = apps::ProfileApp(*app, base.gpu);
  const std::string trace_path = workroot + "/trace.bin";
  trace::SaveTraceFile(*profile.trace_store, trace_path);

  auto base_opts = [&](const std::string& name) {
    fault::CoordinatorOptions opts;
    opts.dcrm_binary = DCRM_BIN;
    opts.workdir = workroot + "/" + name;
    opts.trace_path = trace_path;
    opts.shards = 4;
    opts.workers = 2;
    opts.backoff_ms = 50;
    workdirs.push_back(opts.workdir);
    return opts;
  };

  std::cout << "--- phase 1: failure-scenario bit-identity ("
            << small_runs << " trials/scenario) ---\n";
  TextTable t1({"scenario", "runs", "SDC", "detected", "masked", "escal",
                "redisp", "exit", "identical"});
  bool ok = true;
  auto row = [&](const std::string& scenario,
                 const fault::ShardCampaignOutcome& o, const Reference& ref,
                 const std::string& exits) {
    const bool same = Identical(o, ref);
    ok = ok && same;
    t1.NewRow()
        .Add(scenario)
        .Add(o.counts.runs)
        .Add(o.counts.sdc)
        .Add(o.counts.detected)
        .Add(o.counts.masked)
        .Add(o.counts.recovery.escalations)
        .Add(o.redispatches)
        .Add(exits)
        .Add(same ? "yes" : "NO");
  };

  const Reference ref = InProcess(base, profile, 2);
  {
    auto opts = base_opts("clean");
    const auto o = fault::RunShardCoordinator(base, opts);
    row("clean 4 shards x 2 workers", o, ref, std::to_string(o.exit_code));
  }
  {
    auto opts = base_opts("killhang");
    opts.kill_shard = 1;
    opts.kill_after = 25;
    opts.hang_shard = 2;
    opts.hang_after = 10;
    opts.shard_timeout_ms = 5000;
    const auto o = fault::RunShardCoordinator(base, opts);
    row("SIGKILL w1 + hang w2 (retried)", o, ref,
        std::to_string(o.exit_code));
  }
  {
    auto opts = base_opts("preempt");
    opts.stop_after_shards = 2;
    const auto first = fault::RunShardCoordinator(base, opts);
    opts.stop_after_shards = -1;
    opts.resume = true;
    const auto o = fault::RunShardCoordinator(base, opts);
    row("preempt after 2 shards, resume", o, ref,
        std::to_string(first.exit_code) + "," + std::to_string(o.exit_code));
  }
  {
    // Coupled Tier-2 escalation: sequential shards with ledger
    // hand-off, killed mid-chain and resumed. Fixed (runs, seed) known
    // to escalate, so the cross-trial replay path is really exercised.
    fault::ShardCampaignSpec esc = base;
    esc.runs = 64;
    esc.seed = 1;
    esc.recovery_retries = 2;
    esc.escalation_epoch = 8;
    const Reference esc_ref = InProcess(esc, profile, 2);
    auto opts = base_opts("escalate");
    opts.kill_shard = 1;
    opts.kill_after = 3;
    opts.stop_after_shards = 1;
    const auto first = fault::RunShardCoordinator(esc, opts);
    opts.stop_after_shards = -1;
    opts.resume = true;
    const auto o = fault::RunShardCoordinator(esc, opts);
    if (o.counts.recovery.escalations == 0) {
      std::cerr << "escalation scenario did not escalate\n";
      ok = false;
    }
    row("escalation chain, kill+resume", o, esc_ref,
        std::to_string(first.exit_code) + "," + std::to_string(o.exit_code));
  }
  bench::Emit(t1, args);
  if (!ok) {
    std::cerr << "bit-identity violation in phase 1\n";
    return 1;
  }

  std::cout << "--- phase 2: " << total_runs
            << "-trial sharded campaign, interrupted + resumed ---\n";
  fault::ShardCampaignSpec big = base;
  big.runs = total_runs;
  TextTable t2({"stage", "trials done", "shards", "wall s", "trials/s",
                "redisp", "exit"});
  auto opts = base_opts("headline");
  opts.shards = 8;
  opts.workers = 2;
  opts.stop_after_shards = 4;
  auto t0 = std::chrono::steady_clock::now();
  const auto interrupted = fault::RunShardCoordinator(big, opts);
  const double int_ms = MsSince(t0);
  t2.NewRow()
      .Add("sharded, preempted at 4/8")
      .Add(interrupted.counts.runs)
      .Add(std::to_string(interrupted.shards_done) + "/" +
           std::to_string(interrupted.shards_total))
      .Add(int_ms / 1000.0, 1)
      .Add(interrupted.counts.runs / (int_ms / 1000.0), 0)
      .Add(interrupted.redispatches)
      .Add(interrupted.exit_code);
  if (interrupted.exit_code != fault::kExitInterrupted) {
    std::cerr << "expected exit 7 from the preempted run, got "
              << interrupted.exit_code << "\n";
    return 1;
  }
  opts.stop_after_shards = -1;
  opts.resume = true;
  t0 = std::chrono::steady_clock::now();
  const auto resumed = fault::RunShardCoordinator(big, opts);
  const double res_ms = MsSince(t0);
  const unsigned resumed_trials = resumed.counts.runs - interrupted.counts.runs;
  t2.NewRow()
      .Add("resumed (remaining shards only)")
      .Add(resumed.counts.runs)
      .Add(std::to_string(resumed.shards_done) + "/" +
           std::to_string(resumed.shards_total))
      .Add(res_ms / 1000.0, 1)
      .Add(resumed_trials / (res_ms / 1000.0), 0)
      .Add(resumed.redispatches)
      .Add(resumed.exit_code);
  if (resumed.exit_code != fault::kExitOk ||
      resumed.counts.runs != total_runs) {
    std::cerr << "resume did not complete the campaign\n";
    return 1;
  }
  t0 = std::chrono::steady_clock::now();
  const Reference big_ref = InProcess(big, profile, 2);
  const double ref_ms = MsSince(t0);
  t2.NewRow()
      .Add("in-process --jobs=2 reference")
      .Add(big_ref.counts.runs)
      .Add("-")
      .Add(ref_ms / 1000.0, 1)
      .Add(big_ref.counts.runs / (ref_ms / 1000.0), 0)
      .Add(0u)
      .Add(0);
  bench::Emit(t2, args);
  const bool big_same = Identical(resumed, big_ref);
  std::cout << "interrupted+resumed sharded counts vs in-process: "
            << (big_same ? "bit-identical" : "MISMATCH") << "\n";
  if (!big_same) return 1;

  const unsigned orphans = CountOrphanedTemps(workdirs);
  if (orphans != 0) {
    std::cerr << orphans << " orphaned temp file(s) left behind\n";
    return 1;
  }
  std::cout
      << "no orphaned *.tmp.* files in any work directory.\n"
         "expectation: every scenario 'identical'=yes — counts and "
         "escalation ledger are a pure function of (spec, seed, trace), "
         "not of process layout, worker crashes, or where the campaign "
         "was interrupted; the resumed run re-runs only the missing "
         "shards.\n";
  return 0;
}
