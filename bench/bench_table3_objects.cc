// Table III: input data objects per application sorted by access
// intensity (highest first), hot objects marked with '*', the hot
// footprint as a fraction of total application memory, and the share
// of accesses landing in hot blocks.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  bench::PrintHeader(
      "Table III",
      "Read-only input data objects ranked like the paper (hot first); "
      "'*' marks the classified hot set.",
      args, 0, scale);

  TextTable t({"app", "objects (ranked, * = hot)", "hot footprint %",
               "hot access share %"});
  for (const auto& name :
       bench::SelectApps(args, apps::HotPatternAppNames())) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, bench::MakeGpuConfig(args));
    std::string objs;
    for (const auto& op : profile.hot.coverage_order) {
      const bool hot =
          std::any_of(profile.hot.hot_objects.begin(),
                      profile.hot.hot_objects.end(),
                      [&](const auto& h) { return h.id == op.id; });
      if (!objs.empty()) objs += ", ";
      if (hot) objs += "*";
      objs += op.name;
    }
    t.NewRow()
        .Add(name)
        .Add(objs)
        .Add(100.0 * profile.hot.hot_footprint, 3)
        .Add(100.0 * profile.hot.hot_access_share, 2);
  }
  bench::Emit(t, args);
  std::cout
      << "shape check vs paper (Table III): hot sets match the paper's "
         "bold objects; footprints stay small (the paper's max is 2.15% "
         "at its input sizes; footprint percentages shift with scale).\n";
  return 0;
}
