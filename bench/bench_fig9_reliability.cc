// Fig. 9: SDC outcomes vs. number of protected data objects, faults
// injected across the whole application space weighted by per-block
// L1-missed accesses (L2/DRAM faults reach the app through misses).
// Both schemes; {1,5} faulty blocks x {2,4} bits by default.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"
#include "fault/campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned base_runs = args.runs ? args.runs : 60;
  bench::PrintHeader(
      "Figure 9",
      "SDC outcomes out of N runs vs. cumulative protected objects "
      "(miss-weighted injection). 'det'/'corr' columns show terminations "
      "and vote-corrections. C-NN uses N/2 runs.",
      args, base_runs, scale);

  TextTable t({"app", "scheme", "#objs", "blocks", "bits", "runs", "SDC",
               "detected", "corrections", "crash", "masked"});
  for (const auto& name :
       bench::SelectApps(args, apps::PaperAppNames())) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, bench::MakeGpuConfig(args));
    const auto max_cover =
        static_cast<unsigned>(profile.hot.coverage_order.size());
    const unsigned runs =
        name == "C-NN" ? std::max(20u, base_runs / 2) : base_runs;

    // Coverage points: baseline, then cumulative coverage for each
    // scheme — past the hot set, like the paper's Fig. 9 x-axis (for
    // C-NN the residual SDCs from faults in the FC weights only
    // disappear once those objects are covered too).
    struct Point {
      sim::Scheme scheme;
      unsigned cover;
    };
    std::vector<Point> points{{sim::Scheme::kNone, 0}};
    for (unsigned c = 1; c <= max_cover; ++c) {
      points.push_back({sim::Scheme::kDetectOnly, c});
      points.push_back({sim::Scheme::kDetectCorrect, c});
    }

    for (const auto& pt : points) {
      auto campaign = bench::MakeCampaign(name, scale, profile, pt.scheme,
                                          pt.cover, args.jobs);
      for (unsigned blocks : {1u, 5u}) {
        for (unsigned bits : {2u, 4u}) {
          fault::CampaignConfig cc;
          cc.target = fault::Target::kMissWeighted;
          cc.faulty_blocks = blocks;
          cc.bits_per_block = bits;
          cc.runs = runs;
          cc.seed = args.seed + blocks * 1000 + bits;  // same faults per point
          const auto counts = campaign.Run(cc);
          std::string cover_label = std::to_string(pt.cover);
          if (pt.cover == profile.hot.hot_objects.size() &&
              pt.scheme != sim::Scheme::kNone) {
            cover_label += " (H)";
          }
          t.NewRow()
              .Add(name)
              .Add(pt.scheme == sim::Scheme::kNone
                       ? "baseline"
                       : sim::SchemeName(pt.scheme))
              .Add(cover_label)
              .Add(blocks)
              .Add(bits)
              .Add(counts.runs)
              .Add(counts.sdc)
              .Add(counts.detected)
              .Add(counts.corrections)
              .Add(counts.crash)
              .Add(counts.masked);
        }
      }
    }
  }
  bench::Emit(t, args);
  std::cout
      << "shape check vs paper (Fig. 9): SDC falls as coverage grows and "
         "approaches zero at the full hot cover; detection converts "
         "would-be SDCs into terminations, correction into masked runs "
         "with non-zero vote corrections.\n";
  return 0;
}
