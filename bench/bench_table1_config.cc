// Table I: key configuration parameters of the simulated GPU.
#include <iostream>

#include "bench_util.h"
#include "sim/config.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);
  bench::PrintHeader("Table I", "Key configuration parameters of the simulated GPU.",
                     args, 0, apps::AppScale::kSmall);

  TextTable t({"parameter", "value"});
  t.NewRow().Add("SMs").Add(cfg.num_sms);
  t.NewRow().Add("SIMT width").Add(std::uint64_t{kWarpSize});
  t.NewRow().Add("max CTAs / SM").Add(cfg.max_ctas_per_sm);
  t.NewRow().Add("max warps / SM").Add(cfg.max_warps_per_sm);
  t.NewRow().Add("L1 data cache / SM").Add(
      std::to_string(cfg.l1_size_bytes / 1024) + "KB " +
      std::to_string(cfg.l1_ways) + "-way, 128B lines");
  t.NewRow().Add("L1 MSHRs").Add(cfg.l1_mshrs);
  t.NewRow().Add("L2 cache").Add(
      std::to_string(cfg.l2_size_bytes / 1024) + "KB/partition x " +
      std::to_string(cfg.num_partitions) + " = " +
      std::to_string(cfg.l2_size_bytes * cfg.num_partitions / 1024) +
      "KB total, " + std::to_string(cfg.l2_ways) + "-way");
  t.NewRow().Add("memory channels").Add(cfg.num_partitions);
  t.NewRow().Add("DRAM banks / channel").Add(cfg.dram_banks);
  t.NewRow().Add("DRAM scheduling").Add("FR-FCFS");
  t.NewRow().Add("DRAM tRCD/tRP/tCL (core cyc)").Add(
      std::to_string(cfg.t_rcd) + "/" + std::to_string(cfg.t_rp) + "/" +
      std::to_string(cfg.t_cl));
  t.NewRow().Add("interconnect latency (cyc)").Add(cfg.icnt_latency);
  t.NewRow().Add("replica addr table").Add(
      std::to_string(cfg.replica_addr_table_bytes) + "B (" +
      std::to_string(cfg.MaxProtectedObjects(false)) + " objs detect / " +
      std::to_string(cfg.MaxProtectedObjects(true)) + " objs correct)");
  t.NewRow().Add("PC table entries").Add(cfg.pc_table_entries);
  t.NewRow().Add("compare queue entries").Add(cfg.compare_queue_entries);
  t.NewRow().Add("comparator width").Add(
      std::to_string(cfg.comparator_bytes_per_cycle * 8) + " bits");
  bench::Emit(t, args);
  return 0;
}
