// Extension: DRAM failure-mode footprints. The paper injects k bits
// in one word per block; the field studies it cites ([63],[64]) report
// that many DRAM faults are column/row failures. This bench runs the
// paper's schemes against those larger footprints: per-block word
// faults, per-block column faults, and whole-DRAM-row faults.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"
#include "fault/campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned runs = args.runs ? args.runs : 80;
  bench::PrintHeader(
      "Extension: fault footprints (word bits vs column vs DRAM row)",
      "Exposure-weighted injection, 1 faulty block/row seed per run, "
      "baseline vs full hot cover with detect+correct.",
      args, runs, scale);

  TextTable t({"app", "shape", "scheme", "runs", "SDC", "detected",
               "crash", "masked"});
  const auto names = bench::SelectApps(
      args, {std::string("P-BICG"), "P-GESUMMV", "A-Sobel", "A-Laplacian"});
  for (const auto& name : names) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, bench::MakeGpuConfig(args));
    const auto hot =
        static_cast<unsigned>(profile.hot.hot_objects.size());
    for (const fault::FaultShape shape :
         {fault::FaultShape::kWordBits, fault::FaultShape::kColumn,
          fault::FaultShape::kDramRow}) {
      const char* shape_name =
          shape == fault::FaultShape::kWordBits ? "word-2bit"
          : shape == fault::FaultShape::kColumn ? "column"
                                                : "dram-row";
      for (const bool protect : {false, true}) {
        auto campaign = bench::MakeCampaign(
            name, scale, profile,
            protect ? sim::Scheme::kDetectCorrect : sim::Scheme::kNone,
            protect ? hot : 0, args.jobs);
        fault::CampaignConfig cc;
        cc.target = fault::Target::kMissWeighted;
        cc.shape = shape;
        cc.faulty_blocks = 1;
        cc.bits_per_block = 2;
        cc.runs = runs;
        cc.seed = args.seed;
        const auto counts = campaign.Run(cc);
        t.NewRow()
            .Add(name)
            .Add(shape_name)
            .Add(protect ? "hot det+corr" : "baseline")
            .Add(counts.runs)
            .Add(counts.sdc)
            .Add(counts.detected)
            .Add(counts.crash)
            .Add(counts.masked);
      }
    }
  }
  bench::Emit(t, args);
  std::cout
      << "expectation: larger footprints raise baseline SDCs (a row fault "
         "can straddle many objects); hot protection still removes the "
         "hot-data share of them, but row faults spanning unprotected "
         "objects leave a residue — quantifying how far the paper's "
         "word-level threat model carries.\n";
  return 0;
}
