// Reliability-service bench: what the content-addressed artifact
// cache and the batched request scheduler buy on a repeat-heavy
// request mix (DESIGN.md §14).
//
// Drives a real in-process `dcrm serve` daemon over its Unix-domain
// socket with concurrent clients, in two passes over the same mix of
// campaign / analyze / avf / timing / profile requests:
//   1. cold — every distinct request once; each one profiles, plans
//      and (for campaigns) runs trials from scratch.
//   2. repeat-heavy — several client threads re-issue the same mix
//      many times; everything should come off the cache fast path.
//
// Headline metrics (--json=FILE → BENCH_service.json):
//   service/hit_rate          cache hit rate across the repeat pass
//   service/repeat_p50_ms     repeat-pass median request latency
//   service/repeat_p99_ms     repeat-pass tail latency
//   service/cold_p50_ms       cold-pass median latency
//   service/speedup_p50       cold p50 / repeat p50
//   service/requests_per_sec  repeat-pass served throughput
//   service/batch_trials_saved  trials the scheduler's coalescing
//                               avoided across a burst of compatible
//                               campaign requests
//
// Acceptance bars (exit 1 when missed): hit rate >= 0.9 on the repeat
// pass, and repeat p50 at least 10x below cold p50.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "service/client.h"
#include "service/proto.h"
#include "service/server.h"

namespace {

using namespace dcrm;

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

service::RequestSpec MakeReq(service::RequestType type, const std::string& app,
                             unsigned runs, std::uint64_t seed) {
  service::RequestSpec req;
  req.type = type;
  req.campaign.app = app;
  req.campaign.scale = apps::AppScale::kTiny;
  req.campaign.scheme = sim::Scheme::kDetectOnly;
  req.campaign.runs = runs;
  req.campaign.seed = seed;
  return req;
}

// The distinct request vocabulary of the mix: a spread of campaigns
// (two of them batch-compatible: same campaign, different trial
// counts) plus one of every analysis type.
std::vector<service::RequestSpec> MakeMix(unsigned runs, std::uint64_t seed) {
  using service::RequestType;
  return {
      MakeReq(RequestType::kCampaign, "P-ATAX", runs, seed),
      MakeReq(RequestType::kCampaign, "P-ATAX", runs / 2, seed),
      MakeReq(RequestType::kCampaign, "P-BICG", runs, seed),
      MakeReq(RequestType::kCampaign, "P-MVT", runs, seed + 1),
      MakeReq(RequestType::kAnalyze, "P-ATAX", runs, seed),
      MakeReq(RequestType::kAvf, "P-BICG", runs, seed),
      MakeReq(RequestType::kTiming, "P-ATAX", runs, seed),
      MakeReq(RequestType::kProfile, "P-GESUMMV", runs, seed),
  };
}

struct PassResult {
  std::vector<double> latencies_ms;
  std::uint64_t served = 0;
  std::uint64_t cached = 0;
  double wall_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dcrm;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  const unsigned runs = args.runs == 0 ? 48 : args.runs;
  constexpr int kClients = 4;
  constexpr int kRepeatRounds = 8;

  bench::PrintHeader("service", "artifact cache + batched scheduler",
                     args, runs, apps::AppScale::kTiny);

  const std::string socket_path =
      "/tmp/dcrm_bench_service_" + std::to_string(::getpid()) + ".sock";
  service::ServerOptions so;
  so.socket_path = socket_path;
  so.exec.gpu = bench::MakeGpuConfig(args);
  service::Server server(std::move(so));
  server.Start();

  const std::vector<service::RequestSpec> mix = MakeMix(runs, args.seed);

  // Cold pass: one client, every distinct request once.
  PassResult cold;
  {
    const auto t0 = std::chrono::steady_clock::now();
    auto client = service::Client::Connect(socket_path);
    for (const auto& req : mix) {
      const auto r0 = std::chrono::steady_clock::now();
      const service::Response resp = client.Call(req);
      cold.latencies_ms.push_back(MillisSince(r0));
      if (!resp.ok) {
        std::cerr << "bench_service: cold request failed: " << resp.error
                  << "\n";
        return 1;
      }
      ++cold.served;
      if (resp.cached) ++cold.cached;
    }
    cold.wall_ms = MillisSince(t0);
  }

  // A burst of batch-compatible campaign requests (same campaign,
  // ascending trial counts, unseen seed) from concurrent clients: the
  // scheduler should coalesce them into one merged engine run.
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client = service::Client::Connect(socket_path);
        const auto req =
            MakeReq(service::RequestType::kCampaign, "P-ATAX",
                    runs + 8u * static_cast<unsigned>(c + 1), args.seed + 7);
        const service::Response resp = client.Call(req);
        if (!resp.ok) {
          std::cerr << "bench_service: burst request failed: " << resp.error
                    << "\n";
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  // Repeat-heavy pass: every client loops the whole mix.
  PassResult repeat;
  {
    std::vector<PassResult> per_client(kClients);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        PassResult& out = per_client[c];
        auto client = service::Client::Connect(socket_path);
        for (int round = 0; round < kRepeatRounds; ++round) {
          for (const auto& req : mix) {
            const auto r0 = std::chrono::steady_clock::now();
            const service::Response resp = client.Call(req);
            out.latencies_ms.push_back(MillisSince(r0));
            if (!resp.ok) {
              std::cerr << "bench_service: repeat request failed: "
                        << resp.error << "\n";
              continue;
            }
            ++out.served;
            if (resp.cached) ++out.cached;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    repeat.wall_ms = MillisSince(t0);
    for (const PassResult& pr : per_client) {
      repeat.served += pr.served;
      repeat.cached += pr.cached;
      repeat.latencies_ms.insert(repeat.latencies_ms.end(),
                                 pr.latencies_ms.begin(),
                                 pr.latencies_ms.end());
    }
  }

  const service::BatchStats batch = server.context().batch_stats();
  const service::CacheStats cache = server.context().cache().stats();
  server.RequestStop();
  server.Join();

  const double hit_rate =
      repeat.served == 0 ? 0.0
                         : static_cast<double>(repeat.cached) /
                               static_cast<double>(repeat.served);
  const double cold_p50 = Percentile(cold.latencies_ms, 0.5);
  const double repeat_p50 = Percentile(repeat.latencies_ms, 0.5);
  const double repeat_p99 = Percentile(repeat.latencies_ms, 0.99);
  const double speedup = repeat_p50 > 0 ? cold_p50 / repeat_p50 : 0.0;
  const double rps = repeat.wall_ms > 0
                         ? 1000.0 * static_cast<double>(repeat.served) /
                               repeat.wall_ms
                         : 0.0;

  TextTable table({"pass", "requests", "cached", "p50 ms", "p99 ms",
                   "wall ms"});
  table.NewRow()
      .Add("cold")
      .Add(cold.served)
      .Add(cold.cached)
      .Add(cold_p50)
      .Add(Percentile(cold.latencies_ms, 0.99))
      .Add(cold.wall_ms, 1);
  table.NewRow()
      .Add("repeat")
      .Add(repeat.served)
      .Add(repeat.cached)
      .Add(repeat_p50)
      .Add(repeat_p99)
      .Add(repeat.wall_ms, 1);
  bench::Emit(table, args);
  std::cout << "hit rate " << 100.0 * hit_rate << "% (" << repeat.cached
            << "/" << repeat.served << "), p50 speedup " << speedup
            << "x, throughput " << rps << " req/s\n"
            << "cache: " << cache.entries << " entries, " << cache.bytes
            << " bytes, " << cache.evictions << " evictions\n"
            << "batching: " << batch.groups << " merged groups, "
            << batch.grouped_requests << " requests, " << batch.trials_saved
            << " trials saved\n";

  std::vector<bench::JsonMetric> metrics = {
      {"service/hit_rate", "repeat-pass cache hit rate", hit_rate, "ratio"},
      {"service/repeat_p50_ms", "repeat-pass median latency", repeat_p50,
       "ms"},
      {"service/repeat_p99_ms", "repeat-pass p99 latency", repeat_p99, "ms"},
      {"service/cold_p50_ms", "cold-pass median latency", cold_p50, "ms"},
      {"service/speedup_p50", "cold p50 over repeat p50", speedup, "x"},
      {"service/requests_per_sec", "repeat-pass throughput", rps, "req/s"},
      {"service/batch_trials_saved", "trials saved by coalescing",
       static_cast<double>(batch.trials_saved), "trials"},
  };
  bench::EmitJson(args, metrics);

  bool ok = true;
  if (hit_rate < 0.9) {
    std::cerr << "FAIL: repeat-pass hit rate " << hit_rate << " < 0.9\n";
    ok = false;
  }
  if (speedup < 10.0) {
    std::cerr << "FAIL: repeat p50 only " << speedup
              << "x below cold p50 (need >= 10x)\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
