// Component microbenchmarks (google-benchmark): throughput of the
// simulator substrates that dominate experiment wall-clock — tag
// array lookups, SECDED encode/decode, the coalescer, the DRAM
// channel scheduler, and a full functional application run.
#include <benchmark/benchmark.h>

#include "apps/registry.h"
#include "common/rng.h"
#include "exec/data_plane.h"
#include "exec/launcher.h"
#include "mem/secded.h"
#include "sim/dram.h"
#include "sim/tag_array.h"
#include "trace/trace.h"

namespace dcrm {
namespace {

void BM_TagArrayAccess(benchmark::State& state) {
  sim::TagArray tags(32, 4);  // L1 geometry
  Rng rng(1);
  std::vector<Addr> addrs(1024);
  for (auto& a : addrs) a = rng.Below(1 << 20) * kBlockSize;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tags.Access(addrs[i++ & 1023]));
  }
}
BENCHMARK(BM_TagArrayAccess);

void BM_SecdedEncode(benchmark::State& state) {
  Rng rng(2);
  std::uint64_t d = rng.Next64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::Secded72::Encode(d));
    d += 0x9e3779b97f4a7c15ULL;
  }
}
BENCHMARK(BM_SecdedEncode);

void BM_SecdedDecodeCorrupted(benchmark::State& state) {
  Rng rng(3);
  auto w = mem::Secded72::Encode(rng.Next64());
  w.data ^= 0b101;  // 2-bit error
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::Secded72::Decode(w));
  }
}
BENCHMARK(BM_SecdedDecodeCorrupted);

void BM_CoalesceWarpStep(benchmark::State& state) {
  std::vector<exec::AccessRecord> step;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    step.push_back({1, static_cast<Addr>(lane) * 4 + 4096, 4,
                    AccessType::kLoad});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::CoalesceStep(step));
  }
}
BENCHMARK(BM_CoalesceWarpStep);

void BM_DramChannelRandomReads(benchmark::State& state) {
  sim::GpuConfig cfg;
  sim::AddrMap map{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()};
  sim::DramChannel ch(cfg, map);
  sim::GpuStats stats;
  Rng rng(4);
  std::vector<sim::MemRequest> done;
  std::uint64_t now = 0;
  std::uint64_t id = 0;
  for (auto _ : state) {
    if (ch.CanAccept()) {
      ch.Push({id++, rng.Below(1 << 18) * kBlockSize, false, 0}, now);
    }
    done.clear();
    ch.Tick(now++, done, stats);
    benchmark::DoNotOptimize(done.size());
  }
}
BENCHMARK(BM_DramChannelRandomReads);

void BM_FunctionalRunBicgTiny(benchmark::State& state) {
  auto app = apps::MakeApp("P-BICG", apps::AppScale::kTiny);
  mem::DeviceMemory dev;
  app->Setup(dev);
  exec::DirectDataPlane plane(dev);
  auto kernels = app->Kernels();
  for (auto _ : state) {
    for (auto& k : kernels) {
      exec::LaunchKernel(k.cfg, plane, nullptr, k.body);
    }
  }
}
BENCHMARK(BM_FunctionalRunBicgTiny)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dcrm

BENCHMARK_MAIN();
