// Extension: protecting writable data via store propagation. The
// paper's schemes cover read-only inputs only; faults in read-write
// data (accumulators, in-place buffers) stay exposed. Mirroring
// stores into the replicas lifts the restriction — this bench
// measures what that buys (SDCs from faults in writable objects) and
// what it costs (replicated write traffic).
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"
#include "fault/campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kSmall);
  const unsigned runs = args.runs ? args.runs : 80;
  bench::PrintHeader(
      "Extension: writable-object protection (store propagation)",
      "P-GRAMSCHM: the app has NO read-only inputs, so the paper's "
      "schemes can cover nothing — and faults in the in-place matrix "
      "A spread through the orthogonalization. The extension covers "
      "A/Q/R with store propagation and voted reads. Faults injected "
      "uniformly into A's blocks, 3 bits per word.",
      args, runs, scale);

  auto app = apps::MakeApp("P-GRAMSCHM", scale);
  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);
  const auto profile = apps::ProfileApp(*app, cfg);
  const auto& sp = profile.dev->space();

  // Uniform injection over A's blocks (data the paper's schemes
  // cannot cover).
  std::vector<std::uint64_t> rw_blocks;
  {
    const auto& obj = sp.Object(*sp.FindByName("A"));
    for (std::uint64_t b = obj.base / kBlockSize;
         b <= (obj.end() - 1) / kBlockSize; ++b) {
      rw_blocks.push_back(b);
    }
  }

  struct Config {
    const char* label;
    sim::Scheme scheme;
    std::vector<std::string> cover;
  };
  const std::vector<Config> configs{
      {"baseline (paper: nothing coverable)", sim::Scheme::kNone, {}},
      {"extended detect (A,Q,R)", sim::Scheme::kDetectOnly,
       {"A", "Q", "R"}},
      {"extended det+corr (A,Q,R)", sim::Scheme::kDetectCorrect,
       {"A", "Q", "R"}},
  };

  TextTable t({"config", "runs", "SDC", "detected", "masked",
               "norm exec time", "replica txns"});
  const auto base_setup = apps::MakeProtectionSetupForObjects(
      *app, profile, sim::Scheme::kNone, {});
  const double base_cycles = static_cast<double>(
      apps::RunTiming(*app, profile, cfg, base_setup.plan).cycles);

  for (const auto& config : configs) {
    fault::FaultCampaign campaign(*app, profile, config.scheme,
                                  config.cover);
    Rng rng(args.seed);
    fault::CampaignCounts counts;
    for (unsigned r = 0; r < runs; ++r) {
      const std::uint64_t block = rw_blocks[rng.Below(rw_blocks.size())];
      const auto faults =
          mem::MakeWordFaults(block * kBlockSize, 3, rng);
      const auto o = campaign.RunOnce(faults);
      ++counts.runs;
      if (o == fault::Outcome::kSdc) ++counts.sdc;
      if (o == fault::Outcome::kDetected) ++counts.detected;
      if (o == fault::Outcome::kMasked) ++counts.masked;
    }
    const auto setup = apps::MakeProtectionSetupForObjects(
        *app, profile, config.scheme, config.cover);
    const auto stats = apps::RunTiming(*app, profile, cfg, setup.plan);
    t.NewRow()
        .Add(config.label)
        .Add(counts.runs)
        .Add(counts.sdc)
        .Add(counts.detected)
        .Add(counts.masked)
        .Add(static_cast<double>(stats.cycles) / base_cycles, 4)
        .Add(stats.replica_transactions);
  }
  bench::Emit(t, args);
  std::cout
      << "finding: A faults are SDCs at baseline (nothing the paper's "
         "schemes could do) and become detections / vote-masked runs "
         "under the extension — and although nearly all of GRAMSCHM's "
         "traffic is to the covered objects, the measured overhead "
         "stays under 1%: the column-sequential kernels leave enough "
         "latency tolerance to hide even full triplication.\n";
  return 0;
}
