// Baseline comparison: warp-level redundant multithreading (RMT) vs
// the paper's partial data replication.
//
// RMT duplicates every warp (the trailing copy re-executes loads and
// verifies before stores commit). Two results reproduce the paper's
// related-work argument (Section VI): RMT's overhead dwarfs hot-data
// replication, and — decisively — RMT cannot detect the L2/DRAM
// faults studied here at all, because both redundant warps read the
// same faulty memory and agree on the corrupted values.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"
#include "core/baselines.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kMedium);
  bench::PrintHeader(
      "Baseline: warp-level RMT vs partial data replication",
      "Normalized execution time. 'detects mem faults' states whether "
      "the mechanism can observe a fault in L2/DRAM-resident data.",
      args, 0, scale);

  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);
  TextTable t({"app", "hot det+corr time", "RMT time",
               "RMT/replication", "RMT detects mem faults"});
  for (const auto& name :
       bench::SelectApps(args, apps::PaperAppNames())) {
    auto app = apps::MakeApp(name, cfg.num_sms ? scale : scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const auto hot =
        static_cast<unsigned>(profile.hot.hot_objects.size());

    const auto base =
        apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
    const double base_cycles = static_cast<double>(
        apps::RunTiming(*app, profile, cfg, base.plan).cycles);

    const auto prot = apps::MakeProtectionSetup(
        *app, profile, sim::Scheme::kDetectCorrect, hot);
    const double prot_time =
        static_cast<double>(
            apps::RunTiming(*app, profile, cfg, prot.plan).cycles) /
        base_cycles;

    // The RMT transform mutates warps, so round-trip the immutable
    // store back to the legacy AoS form, duplicate, and replay.
    std::vector<trace::KernelTrace> rmt;
    const auto kernels = trace::ToKernelTraces(*profile.trace_store);
    rmt.reserve(kernels.size());
    for (const auto& k : kernels) {
      rmt.push_back(core::MakeRmtTrace(k));
    }
    sim::GpuConfig rmt_cfg = cfg;
    rmt_cfg.alu_cycles_per_mem = app->AluCyclesPerMem();
    sim::Gpu gpu(rmt_cfg, {});
    const double rmt_time =
        static_cast<double>(gpu.Run(rmt).cycles) / base_cycles;

    t.NewRow()
        .Add(name)
        .Add(prot_time, 4)
        .Add(rmt_time, 4)
        .Add(rmt_time / prot_time, 3)
        .Add("no (both copies read the same faulty DRAM)");
  }
  bench::Emit(t, args);
  std::cout
      << "expectation: RMT costs ~2x while hot-data replication stays "
         "within a few percent — and only the latter addresses the "
         "paper's fault model at all.\n";
  return 0;
}
