// Ablation C: replica placement. The schemes store copies at distinct
// DRAM addresses; with block-interleaved channel mapping the natural
// placement spreads replica traffic across channels. This bench
// compares it against an adversarial same-channel placement that
// concentrates primary + replica traffic on one channel.
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kMedium);
  bench::PrintHeader(
      "Ablation C: replica placement (detect+correct, full coverage)",
      "Normalized execution time with replicas spread across channels "
      "(default) vs forced onto the primary's channel.",
      args, 0, scale);

  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);
  TextTable t({"app", "spread time", "same-channel time", "same/spread"});
  for (const auto& name :
       bench::SelectApps(args, {std::string("P-BICG"), "C-NN", "A-Laplacian",
                                "A-SRAD"})) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const auto all =
        static_cast<unsigned>(profile.hot.coverage_order.size());
    const auto base =
        apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
    const double base_cycles = static_cast<double>(
        apps::RunTiming(*app, profile, cfg, base.plan).cycles);

    const auto spread = apps::MakeProtectionSetup(
        *app, profile, sim::Scheme::kDetectCorrect, all, true,
        core::ReplicaPlacement::kDefault);
    const auto same = apps::MakeProtectionSetup(
        *app, profile, sim::Scheme::kDetectCorrect, all, true,
        core::ReplicaPlacement::kSameChannel);
    const double st = static_cast<double>(
                          apps::RunTiming(*app, profile, cfg, spread.plan)
                              .cycles) /
                      base_cycles;
    const double ct =
        static_cast<double>(
            apps::RunTiming(*app, profile, cfg, same.plan).cycles) /
        base_cycles;
    t.NewRow().Add(name).Add(st, 4).Add(ct, 4).Add(ct / st, 4);
  }
  bench::Emit(t, args);
  std::cout
      << "finding: with block-interleaved channel mapping the placement "
         "of a replica's *first* block barely matters — a multi-block "
         "object's traffic is spread across all channels either way "
         "(P-BICG's objects are channel-count multiples, so both plans "
         "coincide exactly). Placement only becomes a lever for "
         "single-block hot objects, where the effect stays within the "
         "simulator's noise. The paper's 'distinct addresses' "
         "requirement is about fault independence, not bandwidth.\n";
  return 0;
}
