// Baseline comparison: checkpoint-restart vs the paper's schemes,
// using measured overheads and footprints in the expected-completion
// -time model (core/baselines.h). Reproduces the paper's argument
// that check-pointing "comes with significant overhead costs due to
// the large amounts of data GPGPU applications typically process".
#include <iostream>

#include "apps/driver.h"
#include "bench_util.h"
#include "core/baselines.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const auto args = bench::ParseArgs(argc, argv);
  const auto scale = args.scale.value_or(apps::AppScale::kMedium);
  bench::PrintHeader(
      "Baseline: checkpoint-restart vs detect/correct",
      "Expected completion time (units of one fault-free run) vs "
      "per-run fault probability. Checkpoint cost = footprint / PCIe "
      "(16 B/cycle) over the measured run length; interval 25% of the "
      "run; restore = one checkpoint cost.",
      args, 0, scale);

  const sim::GpuConfig cfg = bench::MakeGpuConfig(args);
  constexpr double kPcieBytesPerCycle = 16.0;  // ~22GB/s at 1.4GHz

  TextTable t({"app", "p(fault)", "detect+rerun", "correct",
               "checkpoint-restart"});
  for (const auto& name :
       bench::SelectApps(args, {std::string("P-BICG"), "C-NN", "A-SRAD"})) {
    auto app = apps::MakeApp(name, scale);
    const auto profile = apps::ProfileApp(*app, cfg);
    const auto hot =
        static_cast<unsigned>(profile.hot.hot_objects.size());

    const auto base =
        apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
    const auto base_stats = apps::RunTiming(*app, profile, cfg, base.plan);
    auto over = [&](sim::Scheme s) {
      const auto setup = apps::MakeProtectionSetup(*app, profile, s, hot);
      return static_cast<double>(
                 apps::RunTiming(*app, profile, cfg, setup.plan).cycles) /
                 static_cast<double>(base_stats.cycles) -
             1.0;
    };
    const double o_det = over(sim::Scheme::kDetectOnly);
    const double o_corr = over(sim::Scheme::kDetectCorrect);
    const double ckpt_cost = core::RecoveryModel::CheckpointCost(
        profile.dev->space().TotalObjectBytes(), kPcieBytesPerCycle,
        base_stats.cycles);

    for (const double p : {0.001, 0.01, 0.1}) {
      t.NewRow()
          .Add(name)
          .Add(p, 3)
          .Add(core::RecoveryModel::DetectRerun(p, o_det), 4)
          .Add(core::RecoveryModel::Correct(o_corr), 4)
          .Add(core::RecoveryModel::CheckpointRestart(p, 0.25, ckpt_cost,
                                                      ckpt_cost),
               4);
    }
  }
  bench::Emit(t, args);
  std::cout
      << "expectation: correction dominates at every fault rate; "
         "checkpointing pays its footprint tax even when nothing "
         "fails, and the tax grows with the data size.\n";
  return 0;
}
