#!/bin/bash
# Runs every bench with wall-clock-friendly parameters (each bench
# prints the parameters it ran with). Drop the flags for paper-strength
# run counts and larger workloads.
# Fail fast: a bench that crashes or exits nonzero aborts the sweep
# instead of burying the failure in later output.
set -euo pipefail
B=build/bench
run() { echo "========== $*"; "$@"; echo; }
# Like run, but also snapshots the output into a committed results file.
run_tee() { out=$1; shift; echo "========== $* (-> $out)"; "$@" | tee "$out"; echo; }
run $B/bench_table1_config
run $B/bench_table2_metrics
run $B/bench_fig2_l2_trends
run $B/bench_fig3_access_pattern
run $B/bench_fig4_warp_spread
run $B/bench_table3_objects
run $B/bench_fig6_hot_vs_rest --runs=60
run $B/bench_fig7_performance --scale=small
run $B/bench_fig9_reliability --runs=40
run $B/bench_tradeoff_summary --runs=50
run $B/bench_ablation_lazy --scale=small
run $B/bench_ablation_secded --runs=60
run $B/bench_ablation_placement --scale=small
run $B/bench_baseline_rmt --scale=small
run $B/bench_baseline_checkpoint --scale=small
run $B/bench_ext_fault_shapes --runs=50
run $B/bench_ext_online_detection
run $B/bench_ext_writable --runs=50
run $B/bench_ext_recovery --runs=40
run $B/bench_parallel_speedup --runs=200 --json=BENCH_parallel_speedup.json
# Importance sampling must hit >=5x fewer trials at matched confidence
# (the bench exits nonzero otherwise, failing the sweep).
run_tee results_importance_sampling.txt $B/bench_importance_sampling \
  --runs=400 --jobs=4 --json=BENCH_importance_sampling.json
run_tee results_trace_replay.txt $B/bench_trace_replay --scale=small \
  --runs=200 --json=BENCH_sim_throughput.json
# Kernel-graph DAG workloads: exits nonzero if a shared weight tensor's
# cross-kernel read total fails to rank above its single-kernel view.
run_tee results_kernel_graph.txt $B/bench_kernel_graph --runs=40 \
  --json=BENCH_kernel_graph.json
# Committed results_shard_campaign.txt is this bench at its default
# 10^6 trials (`$B/bench_shard_campaign | tee results_shard_campaign.txt`,
# ~10 min); the sweep runs a wall-clock-friendly count.
run $B/bench_shard_campaign --runs=20000
# Service daemon: repeat-heavy mix over a live socket; exits nonzero
# below a 90% cache hit rate or a <10x repeat-p50 speedup.
run_tee results_service.txt $B/bench_service --json=BENCH_service.json
run $B/bench_micro_components --benchmark_min_time=0.1
# Crash-tolerance contract: the atomic writers (trace stores, shard
# results, manifests) must never leave `*.tmp.<pid>` siblings behind,
# even across the injected worker kills above. Fail the sweep if any
# bench orphaned one.
orphans=$(find . -name '*.tmp.*' -not -path './build/*' 2>/dev/null)
if [ -n "$orphans" ]; then
  echo "FAIL: orphaned temp files left by the sweep:" >&2
  echo "$orphans" >&2
  exit 1
fi
echo ALL_BENCH_SWEEP_DONE
