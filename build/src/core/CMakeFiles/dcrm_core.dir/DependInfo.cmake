
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_profile.cc" "src/core/CMakeFiles/dcrm_core.dir/access_profile.cc.o" "gcc" "src/core/CMakeFiles/dcrm_core.dir/access_profile.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/dcrm_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/dcrm_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/hot_classifier.cc" "src/core/CMakeFiles/dcrm_core.dir/hot_classifier.cc.o" "gcc" "src/core/CMakeFiles/dcrm_core.dir/hot_classifier.cc.o.d"
  "/root/repo/src/core/online_detector.cc" "src/core/CMakeFiles/dcrm_core.dir/online_detector.cc.o" "gcc" "src/core/CMakeFiles/dcrm_core.dir/online_detector.cc.o.d"
  "/root/repo/src/core/profile_io.cc" "src/core/CMakeFiles/dcrm_core.dir/profile_io.cc.o" "gcc" "src/core/CMakeFiles/dcrm_core.dir/profile_io.cc.o.d"
  "/root/repo/src/core/protection.cc" "src/core/CMakeFiles/dcrm_core.dir/protection.cc.o" "gcc" "src/core/CMakeFiles/dcrm_core.dir/protection.cc.o.d"
  "/root/repo/src/core/replication.cc" "src/core/CMakeFiles/dcrm_core.dir/replication.cc.o" "gcc" "src/core/CMakeFiles/dcrm_core.dir/replication.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dcrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dcrm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dcrm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcrm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcrm_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
