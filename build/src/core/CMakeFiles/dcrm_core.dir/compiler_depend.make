# Empty compiler generated dependencies file for dcrm_core.
# This may be replaced when dependencies are built.
