file(REMOVE_RECURSE
  "libdcrm_core.a"
)
