file(REMOVE_RECURSE
  "CMakeFiles/dcrm_core.dir/access_profile.cc.o"
  "CMakeFiles/dcrm_core.dir/access_profile.cc.o.d"
  "CMakeFiles/dcrm_core.dir/baselines.cc.o"
  "CMakeFiles/dcrm_core.dir/baselines.cc.o.d"
  "CMakeFiles/dcrm_core.dir/hot_classifier.cc.o"
  "CMakeFiles/dcrm_core.dir/hot_classifier.cc.o.d"
  "CMakeFiles/dcrm_core.dir/online_detector.cc.o"
  "CMakeFiles/dcrm_core.dir/online_detector.cc.o.d"
  "CMakeFiles/dcrm_core.dir/profile_io.cc.o"
  "CMakeFiles/dcrm_core.dir/profile_io.cc.o.d"
  "CMakeFiles/dcrm_core.dir/protection.cc.o"
  "CMakeFiles/dcrm_core.dir/protection.cc.o.d"
  "CMakeFiles/dcrm_core.dir/replication.cc.o"
  "CMakeFiles/dcrm_core.dir/replication.cc.o.d"
  "libdcrm_core.a"
  "libdcrm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
