file(REMOVE_RECURSE
  "CMakeFiles/dcrm_metrics.dir/error_metric.cc.o"
  "CMakeFiles/dcrm_metrics.dir/error_metric.cc.o.d"
  "libdcrm_metrics.a"
  "libdcrm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
