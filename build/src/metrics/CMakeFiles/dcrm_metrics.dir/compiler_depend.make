# Empty compiler generated dependencies file for dcrm_metrics.
# This may be replaced when dependencies are built.
