file(REMOVE_RECURSE
  "libdcrm_metrics.a"
)
