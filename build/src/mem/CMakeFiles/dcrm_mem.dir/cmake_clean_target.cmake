file(REMOVE_RECURSE
  "libdcrm_mem.a"
)
