
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cc" "src/mem/CMakeFiles/dcrm_mem.dir/address_space.cc.o" "gcc" "src/mem/CMakeFiles/dcrm_mem.dir/address_space.cc.o.d"
  "/root/repo/src/mem/device_memory.cc" "src/mem/CMakeFiles/dcrm_mem.dir/device_memory.cc.o" "gcc" "src/mem/CMakeFiles/dcrm_mem.dir/device_memory.cc.o.d"
  "/root/repo/src/mem/fault_model.cc" "src/mem/CMakeFiles/dcrm_mem.dir/fault_model.cc.o" "gcc" "src/mem/CMakeFiles/dcrm_mem.dir/fault_model.cc.o.d"
  "/root/repo/src/mem/secded.cc" "src/mem/CMakeFiles/dcrm_mem.dir/secded.cc.o" "gcc" "src/mem/CMakeFiles/dcrm_mem.dir/secded.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
