file(REMOVE_RECURSE
  "CMakeFiles/dcrm_mem.dir/address_space.cc.o"
  "CMakeFiles/dcrm_mem.dir/address_space.cc.o.d"
  "CMakeFiles/dcrm_mem.dir/device_memory.cc.o"
  "CMakeFiles/dcrm_mem.dir/device_memory.cc.o.d"
  "CMakeFiles/dcrm_mem.dir/fault_model.cc.o"
  "CMakeFiles/dcrm_mem.dir/fault_model.cc.o.d"
  "CMakeFiles/dcrm_mem.dir/secded.cc.o"
  "CMakeFiles/dcrm_mem.dir/secded.cc.o.d"
  "libdcrm_mem.a"
  "libdcrm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
