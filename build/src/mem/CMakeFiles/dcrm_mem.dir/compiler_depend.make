# Empty compiler generated dependencies file for dcrm_mem.
# This may be replaced when dependencies are built.
