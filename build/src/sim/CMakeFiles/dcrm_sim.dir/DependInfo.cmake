
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config_io.cc" "src/sim/CMakeFiles/dcrm_sim.dir/config_io.cc.o" "gcc" "src/sim/CMakeFiles/dcrm_sim.dir/config_io.cc.o.d"
  "/root/repo/src/sim/dram.cc" "src/sim/CMakeFiles/dcrm_sim.dir/dram.cc.o" "gcc" "src/sim/CMakeFiles/dcrm_sim.dir/dram.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/sim/CMakeFiles/dcrm_sim.dir/gpu.cc.o" "gcc" "src/sim/CMakeFiles/dcrm_sim.dir/gpu.cc.o.d"
  "/root/repo/src/sim/interconnect.cc" "src/sim/CMakeFiles/dcrm_sim.dir/interconnect.cc.o" "gcc" "src/sim/CMakeFiles/dcrm_sim.dir/interconnect.cc.o.d"
  "/root/repo/src/sim/partition.cc" "src/sim/CMakeFiles/dcrm_sim.dir/partition.cc.o" "gcc" "src/sim/CMakeFiles/dcrm_sim.dir/partition.cc.o.d"
  "/root/repo/src/sim/sm.cc" "src/sim/CMakeFiles/dcrm_sim.dir/sm.cc.o" "gcc" "src/sim/CMakeFiles/dcrm_sim.dir/sm.cc.o.d"
  "/root/repo/src/sim/tag_array.cc" "src/sim/CMakeFiles/dcrm_sim.dir/tag_array.cc.o" "gcc" "src/sim/CMakeFiles/dcrm_sim.dir/tag_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/dcrm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcrm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dcrm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dcrm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
