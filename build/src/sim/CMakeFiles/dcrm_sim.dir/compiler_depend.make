# Empty compiler generated dependencies file for dcrm_sim.
# This may be replaced when dependencies are built.
