file(REMOVE_RECURSE
  "libdcrm_sim.a"
)
