file(REMOVE_RECURSE
  "CMakeFiles/dcrm_sim.dir/config_io.cc.o"
  "CMakeFiles/dcrm_sim.dir/config_io.cc.o.d"
  "CMakeFiles/dcrm_sim.dir/dram.cc.o"
  "CMakeFiles/dcrm_sim.dir/dram.cc.o.d"
  "CMakeFiles/dcrm_sim.dir/gpu.cc.o"
  "CMakeFiles/dcrm_sim.dir/gpu.cc.o.d"
  "CMakeFiles/dcrm_sim.dir/interconnect.cc.o"
  "CMakeFiles/dcrm_sim.dir/interconnect.cc.o.d"
  "CMakeFiles/dcrm_sim.dir/partition.cc.o"
  "CMakeFiles/dcrm_sim.dir/partition.cc.o.d"
  "CMakeFiles/dcrm_sim.dir/sm.cc.o"
  "CMakeFiles/dcrm_sim.dir/sm.cc.o.d"
  "CMakeFiles/dcrm_sim.dir/tag_array.cc.o"
  "CMakeFiles/dcrm_sim.dir/tag_array.cc.o.d"
  "libdcrm_sim.a"
  "libdcrm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
