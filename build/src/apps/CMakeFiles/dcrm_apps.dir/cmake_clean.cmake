file(REMOVE_RECURSE
  "CMakeFiles/dcrm_apps.dir/app.cc.o"
  "CMakeFiles/dcrm_apps.dir/app.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/atax.cc.o"
  "CMakeFiles/dcrm_apps.dir/atax.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/bicg.cc.o"
  "CMakeFiles/dcrm_apps.dir/bicg.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/blackscholes.cc.o"
  "CMakeFiles/dcrm_apps.dir/blackscholes.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/convolution.cc.o"
  "CMakeFiles/dcrm_apps.dir/convolution.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/driver.cc.o"
  "CMakeFiles/dcrm_apps.dir/driver.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/gesummv.cc.o"
  "CMakeFiles/dcrm_apps.dir/gesummv.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/gramschmidt.cc.o"
  "CMakeFiles/dcrm_apps.dir/gramschmidt.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/histogram.cc.o"
  "CMakeFiles/dcrm_apps.dir/histogram.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/image_filters.cc.o"
  "CMakeFiles/dcrm_apps.dir/image_filters.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/mvt.cc.o"
  "CMakeFiles/dcrm_apps.dir/mvt.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/nn.cc.o"
  "CMakeFiles/dcrm_apps.dir/nn.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/registry.cc.o"
  "CMakeFiles/dcrm_apps.dir/registry.cc.o.d"
  "CMakeFiles/dcrm_apps.dir/srad.cc.o"
  "CMakeFiles/dcrm_apps.dir/srad.cc.o.d"
  "libdcrm_apps.a"
  "libdcrm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
