
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cc" "src/apps/CMakeFiles/dcrm_apps.dir/app.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/app.cc.o.d"
  "/root/repo/src/apps/atax.cc" "src/apps/CMakeFiles/dcrm_apps.dir/atax.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/atax.cc.o.d"
  "/root/repo/src/apps/bicg.cc" "src/apps/CMakeFiles/dcrm_apps.dir/bicg.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/bicg.cc.o.d"
  "/root/repo/src/apps/blackscholes.cc" "src/apps/CMakeFiles/dcrm_apps.dir/blackscholes.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/blackscholes.cc.o.d"
  "/root/repo/src/apps/convolution.cc" "src/apps/CMakeFiles/dcrm_apps.dir/convolution.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/convolution.cc.o.d"
  "/root/repo/src/apps/driver.cc" "src/apps/CMakeFiles/dcrm_apps.dir/driver.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/driver.cc.o.d"
  "/root/repo/src/apps/gesummv.cc" "src/apps/CMakeFiles/dcrm_apps.dir/gesummv.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/gesummv.cc.o.d"
  "/root/repo/src/apps/gramschmidt.cc" "src/apps/CMakeFiles/dcrm_apps.dir/gramschmidt.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/gramschmidt.cc.o.d"
  "/root/repo/src/apps/histogram.cc" "src/apps/CMakeFiles/dcrm_apps.dir/histogram.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/histogram.cc.o.d"
  "/root/repo/src/apps/image_filters.cc" "src/apps/CMakeFiles/dcrm_apps.dir/image_filters.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/image_filters.cc.o.d"
  "/root/repo/src/apps/mvt.cc" "src/apps/CMakeFiles/dcrm_apps.dir/mvt.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/mvt.cc.o.d"
  "/root/repo/src/apps/nn.cc" "src/apps/CMakeFiles/dcrm_apps.dir/nn.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/nn.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/dcrm_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/srad.cc" "src/apps/CMakeFiles/dcrm_apps.dir/srad.cc.o" "gcc" "src/apps/CMakeFiles/dcrm_apps.dir/srad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dcrm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dcrm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcrm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dcrm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
