file(REMOVE_RECURSE
  "libdcrm_apps.a"
)
