# Empty dependencies file for dcrm_apps.
# This may be replaced when dependencies are built.
