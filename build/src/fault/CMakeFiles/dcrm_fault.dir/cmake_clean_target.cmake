file(REMOVE_RECURSE
  "libdcrm_fault.a"
)
