file(REMOVE_RECURSE
  "CMakeFiles/dcrm_fault.dir/campaign.cc.o"
  "CMakeFiles/dcrm_fault.dir/campaign.cc.o.d"
  "CMakeFiles/dcrm_fault.dir/fault_shapes.cc.o"
  "CMakeFiles/dcrm_fault.dir/fault_shapes.cc.o.d"
  "libdcrm_fault.a"
  "libdcrm_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
