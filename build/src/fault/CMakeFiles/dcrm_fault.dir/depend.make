# Empty dependencies file for dcrm_fault.
# This may be replaced when dependencies are built.
