file(REMOVE_RECURSE
  "libdcrm_common.a"
)
