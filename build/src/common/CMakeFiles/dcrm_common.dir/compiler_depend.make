# Empty compiler generated dependencies file for dcrm_common.
# This may be replaced when dependencies are built.
