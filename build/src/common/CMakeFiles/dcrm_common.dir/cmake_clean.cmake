file(REMOVE_RECURSE
  "CMakeFiles/dcrm_common.dir/log.cc.o"
  "CMakeFiles/dcrm_common.dir/log.cc.o.d"
  "CMakeFiles/dcrm_common.dir/rng.cc.o"
  "CMakeFiles/dcrm_common.dir/rng.cc.o.d"
  "CMakeFiles/dcrm_common.dir/stats.cc.o"
  "CMakeFiles/dcrm_common.dir/stats.cc.o.d"
  "CMakeFiles/dcrm_common.dir/table.cc.o"
  "CMakeFiles/dcrm_common.dir/table.cc.o.d"
  "libdcrm_common.a"
  "libdcrm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
