# Empty compiler generated dependencies file for dcrm_trace.
# This may be replaced when dependencies are built.
