file(REMOVE_RECURSE
  "libdcrm_trace.a"
)
