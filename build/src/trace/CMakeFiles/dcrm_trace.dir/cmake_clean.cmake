file(REMOVE_RECURSE
  "CMakeFiles/dcrm_trace.dir/trace.cc.o"
  "CMakeFiles/dcrm_trace.dir/trace.cc.o.d"
  "CMakeFiles/dcrm_trace.dir/trace_builder.cc.o"
  "CMakeFiles/dcrm_trace.dir/trace_builder.cc.o.d"
  "libdcrm_trace.a"
  "libdcrm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
