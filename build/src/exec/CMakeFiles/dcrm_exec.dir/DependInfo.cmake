
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/data_plane.cc" "src/exec/CMakeFiles/dcrm_exec.dir/data_plane.cc.o" "gcc" "src/exec/CMakeFiles/dcrm_exec.dir/data_plane.cc.o.d"
  "/root/repo/src/exec/launcher.cc" "src/exec/CMakeFiles/dcrm_exec.dir/launcher.cc.o" "gcc" "src/exec/CMakeFiles/dcrm_exec.dir/launcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/dcrm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
