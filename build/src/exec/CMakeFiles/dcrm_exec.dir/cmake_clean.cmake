file(REMOVE_RECURSE
  "CMakeFiles/dcrm_exec.dir/data_plane.cc.o"
  "CMakeFiles/dcrm_exec.dir/data_plane.cc.o.d"
  "CMakeFiles/dcrm_exec.dir/launcher.cc.o"
  "CMakeFiles/dcrm_exec.dir/launcher.cc.o.d"
  "libdcrm_exec.a"
  "libdcrm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
