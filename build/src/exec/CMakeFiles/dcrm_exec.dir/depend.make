# Empty dependencies file for dcrm_exec.
# This may be replaced when dependencies are built.
