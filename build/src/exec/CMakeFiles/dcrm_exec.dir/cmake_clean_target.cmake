file(REMOVE_RECURSE
  "libdcrm_exec.a"
)
