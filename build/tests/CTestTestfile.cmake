# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/secded_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/apps_reference_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_replication_test[1]_include.cmake")
include("/root/repo/build/tests/hot_classifier_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/profile_io_test[1]_include.cmake")
include("/root/repo/build/tests/sim_memory_test[1]_include.cmake")
include("/root/repo/build/tests/exec_grid_test[1]_include.cmake")
include("/root/repo/build/tests/stats_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/fault_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/writable_protection_test[1]_include.cmake")
include("/root/repo/build/tests/config_io_test[1]_include.cmake")
