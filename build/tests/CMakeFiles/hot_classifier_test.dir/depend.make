# Empty dependencies file for hot_classifier_test.
# This may be replaced when dependencies are built.
