file(REMOVE_RECURSE
  "CMakeFiles/hot_classifier_test.dir/hot_classifier_test.cc.o"
  "CMakeFiles/hot_classifier_test.dir/hot_classifier_test.cc.o.d"
  "hot_classifier_test"
  "hot_classifier_test.pdb"
  "hot_classifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
