file(REMOVE_RECURSE
  "CMakeFiles/sim_memory_test.dir/sim_memory_test.cc.o"
  "CMakeFiles/sim_memory_test.dir/sim_memory_test.cc.o.d"
  "sim_memory_test"
  "sim_memory_test.pdb"
  "sim_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
