# Empty dependencies file for exec_grid_test.
# This may be replaced when dependencies are built.
