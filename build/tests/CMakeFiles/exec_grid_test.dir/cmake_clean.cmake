file(REMOVE_RECURSE
  "CMakeFiles/exec_grid_test.dir/exec_grid_test.cc.o"
  "CMakeFiles/exec_grid_test.dir/exec_grid_test.cc.o.d"
  "exec_grid_test"
  "exec_grid_test.pdb"
  "exec_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
