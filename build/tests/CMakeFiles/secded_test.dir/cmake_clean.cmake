file(REMOVE_RECURSE
  "CMakeFiles/secded_test.dir/secded_test.cc.o"
  "CMakeFiles/secded_test.dir/secded_test.cc.o.d"
  "secded_test"
  "secded_test.pdb"
  "secded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
