# Empty dependencies file for secded_test.
# This may be replaced when dependencies are built.
