# Empty compiler generated dependencies file for writable_protection_test.
# This may be replaced when dependencies are built.
