file(REMOVE_RECURSE
  "CMakeFiles/writable_protection_test.dir/writable_protection_test.cc.o"
  "CMakeFiles/writable_protection_test.dir/writable_protection_test.cc.o.d"
  "writable_protection_test"
  "writable_protection_test.pdb"
  "writable_protection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writable_protection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
