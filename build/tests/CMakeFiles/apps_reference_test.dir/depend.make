# Empty dependencies file for apps_reference_test.
# This may be replaced when dependencies are built.
