file(REMOVE_RECURSE
  "CMakeFiles/apps_reference_test.dir/apps_reference_test.cc.o"
  "CMakeFiles/apps_reference_test.dir/apps_reference_test.cc.o.d"
  "apps_reference_test"
  "apps_reference_test.pdb"
  "apps_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
