# Empty compiler generated dependencies file for sim_replication_test.
# This may be replaced when dependencies are built.
