file(REMOVE_RECURSE
  "CMakeFiles/sim_replication_test.dir/sim_replication_test.cc.o"
  "CMakeFiles/sim_replication_test.dir/sim_replication_test.cc.o.d"
  "sim_replication_test"
  "sim_replication_test.pdb"
  "sim_replication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
