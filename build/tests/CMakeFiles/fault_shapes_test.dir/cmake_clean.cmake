file(REMOVE_RECURSE
  "CMakeFiles/fault_shapes_test.dir/fault_shapes_test.cc.o"
  "CMakeFiles/fault_shapes_test.dir/fault_shapes_test.cc.o.d"
  "fault_shapes_test"
  "fault_shapes_test.pdb"
  "fault_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
