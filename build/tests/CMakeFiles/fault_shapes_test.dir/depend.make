# Empty dependencies file for fault_shapes_test.
# This may be replaced when dependencies are built.
