# Empty dependencies file for bench_fig6_hot_vs_rest.
# This may be replaced when dependencies are built.
