file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hot_vs_rest.dir/bench_fig6_hot_vs_rest.cc.o"
  "CMakeFiles/bench_fig6_hot_vs_rest.dir/bench_fig6_hot_vs_rest.cc.o.d"
  "bench_fig6_hot_vs_rest"
  "bench_fig6_hot_vs_rest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hot_vs_rest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
