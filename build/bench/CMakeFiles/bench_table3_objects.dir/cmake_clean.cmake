file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_objects.dir/bench_table3_objects.cc.o"
  "CMakeFiles/bench_table3_objects.dir/bench_table3_objects.cc.o.d"
  "bench_table3_objects"
  "bench_table3_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
