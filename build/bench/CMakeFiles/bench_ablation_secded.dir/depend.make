# Empty dependencies file for bench_ablation_secded.
# This may be replaced when dependencies are built.
