file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_secded.dir/bench_ablation_secded.cc.o"
  "CMakeFiles/bench_ablation_secded.dir/bench_ablation_secded.cc.o.d"
  "bench_ablation_secded"
  "bench_ablation_secded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_secded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
