# Empty dependencies file for bench_fig2_l2_trends.
# This may be replaced when dependencies are built.
