file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_warp_spread.dir/bench_fig4_warp_spread.cc.o"
  "CMakeFiles/bench_fig4_warp_spread.dir/bench_fig4_warp_spread.cc.o.d"
  "bench_fig4_warp_spread"
  "bench_fig4_warp_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_warp_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
