file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_checkpoint.dir/bench_baseline_checkpoint.cc.o"
  "CMakeFiles/bench_baseline_checkpoint.dir/bench_baseline_checkpoint.cc.o.d"
  "bench_baseline_checkpoint"
  "bench_baseline_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
