# Empty compiler generated dependencies file for bench_baseline_checkpoint.
# This may be replaced when dependencies are built.
