file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fault_shapes.dir/bench_ext_fault_shapes.cc.o"
  "CMakeFiles/bench_ext_fault_shapes.dir/bench_ext_fault_shapes.cc.o.d"
  "bench_ext_fault_shapes"
  "bench_ext_fault_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fault_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
