# Empty compiler generated dependencies file for bench_ext_fault_shapes.
# This may be replaced when dependencies are built.
