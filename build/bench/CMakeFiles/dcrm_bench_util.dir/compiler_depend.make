# Empty compiler generated dependencies file for dcrm_bench_util.
# This may be replaced when dependencies are built.
