file(REMOVE_RECURSE
  "libdcrm_bench_util.a"
)
