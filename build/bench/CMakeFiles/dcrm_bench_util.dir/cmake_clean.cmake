file(REMOVE_RECURSE
  "CMakeFiles/dcrm_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/dcrm_bench_util.dir/bench_util.cc.o.d"
  "libdcrm_bench_util.a"
  "libdcrm_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
