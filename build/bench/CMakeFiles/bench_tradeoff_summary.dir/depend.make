# Empty dependencies file for bench_tradeoff_summary.
# This may be replaced when dependencies are built.
