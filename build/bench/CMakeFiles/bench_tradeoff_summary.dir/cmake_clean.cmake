file(REMOVE_RECURSE
  "CMakeFiles/bench_tradeoff_summary.dir/bench_tradeoff_summary.cc.o"
  "CMakeFiles/bench_tradeoff_summary.dir/bench_tradeoff_summary.cc.o.d"
  "bench_tradeoff_summary"
  "bench_tradeoff_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tradeoff_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
