file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_writable.dir/bench_ext_writable.cc.o"
  "CMakeFiles/bench_ext_writable.dir/bench_ext_writable.cc.o.d"
  "bench_ext_writable"
  "bench_ext_writable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_writable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
