# Empty compiler generated dependencies file for bench_ext_writable.
# This may be replaced when dependencies are built.
