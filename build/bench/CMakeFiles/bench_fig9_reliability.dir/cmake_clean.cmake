file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_reliability.dir/bench_fig9_reliability.cc.o"
  "CMakeFiles/bench_fig9_reliability.dir/bench_fig9_reliability.cc.o.d"
  "bench_fig9_reliability"
  "bench_fig9_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
