
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_reliability.cc" "bench/CMakeFiles/bench_fig9_reliability.dir/bench_fig9_reliability.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_reliability.dir/bench_fig9_reliability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dcrm_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/dcrm_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dcrm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dcrm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcrm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dcrm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dcrm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
