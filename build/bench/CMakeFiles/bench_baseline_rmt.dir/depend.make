# Empty dependencies file for bench_baseline_rmt.
# This may be replaced when dependencies are built.
