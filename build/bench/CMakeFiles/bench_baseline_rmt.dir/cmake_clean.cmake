file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_rmt.dir/bench_baseline_rmt.cc.o"
  "CMakeFiles/bench_baseline_rmt.dir/bench_baseline_rmt.cc.o.d"
  "bench_baseline_rmt"
  "bench_baseline_rmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_rmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
