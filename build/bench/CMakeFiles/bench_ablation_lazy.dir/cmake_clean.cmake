file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lazy.dir/bench_ablation_lazy.cc.o"
  "CMakeFiles/bench_ablation_lazy.dir/bench_ablation_lazy.cc.o.d"
  "bench_ablation_lazy"
  "bench_ablation_lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
