# Empty compiler generated dependencies file for protect_custom_app.
# This may be replaced when dependencies are built.
