file(REMOVE_RECURSE
  "CMakeFiles/protect_custom_app.dir/protect_custom_app.cpp.o"
  "CMakeFiles/protect_custom_app.dir/protect_custom_app.cpp.o.d"
  "protect_custom_app"
  "protect_custom_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protect_custom_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
