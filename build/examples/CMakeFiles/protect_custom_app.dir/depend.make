# Empty dependencies file for protect_custom_app.
# This may be replaced when dependencies are built.
