file(REMOVE_RECURSE
  "CMakeFiles/dcrm.dir/dcrm_cli.cc.o"
  "CMakeFiles/dcrm.dir/dcrm_cli.cc.o.d"
  "dcrm"
  "dcrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
