# Empty compiler generated dependencies file for dcrm.
# This may be replaced when dependencies are built.
