// Command-line fault-injection campaign runner: a small operational
// tool over the library API. Prints one row per campaign with 95%
// confidence intervals.
//
// Usage:
//   campaign_tool <app> <target:hot|rest|miss> <blocks> <bits> <runs>
//                 [scheme:none|detect|correct] [cover]
// Example:
//   ./build/examples/campaign_tool P-GESUMMV hot 1 3 500 correct 1
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/driver.h"
#include "apps/registry.h"
#include "fault/campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: %s <app> <hot|rest|miss> <blocks> <bits> <runs> "
                 "[none|detect|correct] [cover]\n",
                 argv[0]);
    return 2;
  }
  const std::string app_name = argv[1];
  const std::string target_s = argv[2];
  fault::CampaignConfig cc;
  cc.target = target_s == "hot"    ? fault::Target::kHotBlocks
              : target_s == "rest" ? fault::Target::kRestBlocks
                                   : fault::Target::kMissWeighted;
  cc.faulty_blocks = static_cast<unsigned>(std::atoi(argv[3]));
  cc.bits_per_block = static_cast<unsigned>(std::atoi(argv[4]));
  cc.runs = static_cast<unsigned>(std::atoi(argv[5]));
  cc.seed = 1;

  sim::Scheme scheme = sim::Scheme::kNone;
  if (argc > 6) {
    if (std::strcmp(argv[6], "detect") == 0) scheme = sim::Scheme::kDetectOnly;
    if (std::strcmp(argv[6], "correct") == 0) {
      scheme = sim::Scheme::kDetectCorrect;
    }
  }

  auto app = apps::MakeApp(app_name, apps::AppScale::kSmall);
  const auto profile = apps::ProfileApp(*app, sim::GpuConfig{});
  unsigned cover = argc > 7
                       ? static_cast<unsigned>(std::atoi(argv[7]))
                       : static_cast<unsigned>(profile.hot.hot_objects.size());
  if (scheme == sim::Scheme::kNone) cover = 0;

  fault::FaultCampaign campaign(*app, profile, scheme, cover);
  const auto counts = campaign.Run(cc);
  const auto ci = counts.SdcCi();

  std::printf("app=%s target=%s blocks=%u bits=%u scheme=%s cover=%u\n",
              app_name.c_str(), target_s.c_str(), cc.faulty_blocks,
              cc.bits_per_block, sim::SchemeName(scheme), cover);
  std::printf("runs=%u  SDC=%u (%.1f%% +/- %.1f%%)  detected=%u  due=%u  "
              "crash=%u  masked=%u  corrections=%llu\n",
              counts.runs, counts.sdc, 100 * ci.p, 100 * ci.margin,
              counts.detected, counts.due, counts.crash, counts.masked,
              static_cast<unsigned long long>(counts.corrections));
  return 0;
}
