// Quickstart: the full data-centric reliability pipeline on one
// application, in ~60 lines of user code.
//
//   1. profile the app (access counts, warp sharing, L1-miss profile)
//   2. identify the hot data objects
//   3. protect them (triplication + majority vote)
//   4. inject a multi-bit fault into a hot block and watch the vote
//      correct it
//   5. compare the timing overhead against the unprotected baseline
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "apps/driver.h"
#include "apps/registry.h"
#include "fault/campaign.h"

int main() {
  using namespace dcrm;

  // 1. Pick an application and profile it once, fault-free.
  auto app = apps::MakeApp("P-BICG", apps::AppScale::kSmall);
  const sim::GpuConfig gpu_config;  // Table I defaults
  const auto profile = apps::ProfileApp(*app, gpu_config);

  std::printf("== %s ==\n", app->Name().c_str());
  std::printf("hot access pattern: %s (max/median block reads = %.0fx)\n",
              profile.hot.has_hot_pattern ? "yes" : "no",
              profile.hot.max_median_ratio);

  // 2. The classifier found the hot data objects (Table III's bold set).
  std::printf("hot data objects:");
  for (const auto& obj : profile.hot.hot_objects) {
    std::printf(" %s(%.2f%% of memory)", obj.name.c_str(),
                100.0 * static_cast<double>(obj.size_bytes) /
                    static_cast<double>(
                        profile.dev->space().TotalObjectBytes()));
  }
  std::printf("\n");

  // 3. Protect the hot objects with detection-and-correction
  //    (triplication + majority vote at the LD/ST unit).
  const auto hot_count =
      static_cast<unsigned>(profile.hot.hot_objects.size());
  fault::FaultCampaign protect(*app, profile, sim::Scheme::kDetectCorrect,
                               hot_count);

  // 4. Inject a 4-bit stuck-at fault into a hot memory block and run.
  Rng rng(7);
  const auto& sp = profile.dev->space();
  const Addr hot_base =
      sp.Object(profile.hot.hot_objects[0].id).base;
  const auto faults = mem::MakeWordFaults(hot_base, /*num_bits=*/4, rng);
  const fault::Outcome outcome = protect.RunOnce(faults);
  std::printf("4-bit fault in hot block '%s' under protection -> %s\n",
              profile.hot.hot_objects[0].name.c_str(),
              outcome == fault::Outcome::kMasked ? "masked (vote corrected)"
                                                 : "NOT masked?!");

  // ...and the same fault without protection:
  fault::FaultCampaign unprotected(*app, profile, sim::Scheme::kNone, 0);
  const fault::Outcome bare = unprotected.RunOnce(faults);
  std::printf("same fault without protection -> %s\n",
              bare == fault::Outcome::kSdc ? "silent data corruption"
                                           : "masked");

  // 5. What does the protection cost? Replay the traces through the
  //    cycle-level GPU model with and without the scheme.
  const auto base =
      apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
  const auto base_stats = apps::RunTiming(*app, profile, gpu_config, base.plan);
  const auto prot = apps::MakeProtectionSetup(
      *app, profile, sim::Scheme::kDetectCorrect, hot_count);
  const auto prot_stats = apps::RunTiming(*app, profile, gpu_config, prot.plan);
  std::printf("timing: baseline %llu cycles, protected %llu cycles "
              "(%.2f%% overhead, %llu replica transactions)\n",
              static_cast<unsigned long long>(base_stats.cycles),
              static_cast<unsigned long long>(prot_stats.cycles),
              100.0 * (static_cast<double>(prot_stats.cycles) /
                           static_cast<double>(base_stats.cycles) -
                       1.0),
              static_cast<unsigned long long>(
                  prot_stats.replica_transactions));
  return 0;
}
