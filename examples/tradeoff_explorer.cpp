// Reliability/performance trade-off explorer (Section V-C): for one
// application, sweep the number of protected objects and print, side
// by side, the timing overhead and the residual SDC rate — the curve
// a deployment engineer would use to pick an operating point.
//
// Usage: tradeoff_explorer [app-name] [runs]
//   e.g. ./build/examples/tradeoff_explorer P-MVT 200
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/driver.h"
#include "apps/registry.h"
#include "fault/campaign.h"

int main(int argc, char** argv) {
  using namespace dcrm;
  const std::string name = argc > 1 ? argv[1] : "P-BICG";
  const unsigned runs =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 100;

  auto app = apps::MakeApp(name, apps::AppScale::kSmall);
  const sim::GpuConfig cfg;
  const auto profile = apps::ProfileApp(*app, cfg);
  const auto max_cover =
      static_cast<unsigned>(profile.hot.coverage_order.size());
  const auto hot_cover =
      static_cast<unsigned>(profile.hot.hot_objects.size());

  std::printf("%s: %u read-only input objects, %u classified hot\n",
              name.c_str(), max_cover, hot_cover);
  std::printf("%-8s %-16s %-12s %-12s %-10s %-10s\n", "cover", "scheme",
              "exec time", "L2 traffic", "SDC", "detected");

  fault::CampaignConfig cc;
  cc.target = fault::Target::kMissWeighted;
  cc.faulty_blocks = 5;
  cc.bits_per_block = 3;
  cc.runs = runs;
  cc.seed = 42;

  const auto base =
      apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
  const auto base_stats = apps::RunTiming(*app, profile, cfg, base.plan);
  {
    fault::FaultCampaign campaign(*app, profile, sim::Scheme::kNone, 0);
    const auto counts = campaign.Run(cc);
    std::printf("%-8u %-16s %-12s %-12s %-10u %-10u\n", 0u, "baseline",
                "1.000", "1.000", counts.sdc, counts.detected);
  }
  for (const sim::Scheme scheme :
       {sim::Scheme::kDetectOnly, sim::Scheme::kDetectCorrect}) {
    for (unsigned cover = 1; cover <= max_cover; ++cover) {
      const auto setup =
          apps::MakeProtectionSetup(*app, profile, scheme, cover);
      const auto stats = apps::RunTiming(*app, profile, cfg, setup.plan);
      fault::FaultCampaign campaign(*app, profile, scheme, cover);
      const auto counts = campaign.Run(cc);
      std::printf("%-8u %-16s %-12.4f %-12.4f %-10u %-10u%s\n", cover,
                  sim::SchemeName(scheme),
                  static_cast<double>(stats.cycles) /
                      static_cast<double>(base_stats.cycles),
                  static_cast<double>(stats.L1MissedAccesses()) /
                      static_cast<double>(base_stats.L1MissedAccesses()),
                  counts.sdc, counts.detected,
                  cover == hot_cover ? "   <- hot cover" : "");
    }
  }
  std::printf("\npick the smallest cover whose SDC column is acceptable; "
              "the paper's answer is the hot cover.\n");
  return 0;
}
