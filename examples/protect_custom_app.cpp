// Protecting *your own* kernel: shows the full public API surface a
// downstream user touches — writing an App (a stencil smoother whose
// coefficient table is hot), profiling it, checking what the
// classifier finds, and running a small fault campaign on it.
//
// Build & run:  ./build/examples/protect_custom_app
#include <cstdio>

#include "apps/driver.h"
#include "apps/synth.h"
#include "fault/campaign.h"
#include "metrics/error_metric.h"

namespace {

using namespace dcrm;

// A 5-point weighted-stencil smoother: out[i,j] = sum_k w[k]*in[nbr_k].
// The 5-entry weight table is read by every thread -> hot; the grid is
// streamed -> cold.
class StencilApp final : public apps::App {
 public:
  explicit StencilApp(std::uint32_t n) : n_(n) {}

  std::string Name() const override { return "custom-stencil"; }

  void Setup(mem::DeviceMemory& dev) override {
    auto& sp = dev.space();
    const std::uint64_t cells = std::uint64_t{n_} * n_;
    grid_ = exec::ArrayRef<float>(
        sp.Object(sp.Allocate("grid", cells * 4, true)).base);
    weights_ = exec::ArrayRef<float>(
        sp.Object(sp.Allocate("weights", 5 * 4, true)).base);
    out_ = exec::ArrayRef<float>(
        sp.Object(sp.Allocate("out", cells * 4, false)).base);
    apps::FillUniform(dev, grid_.base(), cells, -1.0f, 1.0f, 7);
    static constexpr float w[5] = {0.5f, 0.125f, 0.125f, 0.125f, 0.125f};
    for (int i = 0; i < 5; ++i) {
      dev.Write<float>(weights_.AddrOf(i), w[i]);
    }
    apps::FillConst(dev, out_.base(), cells, 0.0f);
  }

  std::vector<apps::KernelLaunch> Kernels() override {
    const auto grid = grid_;
    const auto weights = weights_;
    const auto out = out_;
    const std::uint32_t n = n_;
    apps::KernelLaunch k;
    k.name = "stencil";
    k.cfg.grid = {(n + 15) / 16, (n + 15) / 16, 1};
    k.cfg.block = {16, 16, 1};
    k.body = [=](exec::ThreadCtx& ctx) {
      const std::uint32_t x =
          ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
      const std::uint32_t y =
          ctx.blockIdx().y * ctx.blockDim().y + ctx.threadIdx().y;
      if (x >= n || y >= n) return;
      auto at = [&](std::uint32_t yy, std::uint32_t xx) {
        return std::uint64_t{yy} * n + xx;
      };
      const std::uint32_t xm = x == 0 ? 0 : x - 1;
      const std::uint32_t xp = x + 1 >= n ? n - 1 : x + 1;
      const std::uint32_t ym = y == 0 ? 0 : y - 1;
      const std::uint32_t yp = y + 1 >= n ? n - 1 : y + 1;
      float acc = weights.Ld(ctx, 1, 0) * grid.Ld(ctx, 2, at(y, x));
      acc += weights.Ld(ctx, 1, 1) * grid.Ld(ctx, 2, at(y, xm));
      acc += weights.Ld(ctx, 1, 2) * grid.Ld(ctx, 2, at(y, xp));
      acc += weights.Ld(ctx, 1, 3) * grid.Ld(ctx, 2, at(ym, x));
      acc += weights.Ld(ctx, 1, 4) * grid.Ld(ctx, 2, at(yp, x));
      out.St(ctx, 3, at(y, x), acc);
    };
    return {std::move(k)};
  }

  std::vector<std::string> OutputObjects() const override { return {"out"}; }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override {
    return metrics::Nrmse(golden, observed);
  }
  double SdcThreshold() const override { return 0.01; }
  std::string MetricName() const override { return "NRMSE"; }

 private:
  std::uint32_t n_;
  exec::ArrayRef<float> grid_, weights_, out_;
};

}  // namespace

int main() {
  StencilApp app(192);
  const sim::GpuConfig cfg;
  const auto profile = apps::ProfileApp(app, cfg);

  std::printf("profiled %s: %llu blocks touched, knee ratio %.0fx\n",
              app.Name().c_str(),
              static_cast<unsigned long long>(profile.profiler.blocks().size()),
              profile.hot.max_median_ratio);
  for (const auto& obj : profile.hot.coverage_order) {
    const bool hot = std::any_of(
        profile.hot.hot_objects.begin(), profile.hot.hot_objects.end(),
        [&](const auto& h) { return h.id == obj.id; });
    std::printf("  %-8s %10.0f reads/block  warp-share %5.1f%%  %s\n",
                obj.name.c_str(), obj.reads_per_block,
                100 * obj.mean_warp_share, hot ? "<- HOT" : "");
  }

  // Campaign: 4-bit faults in hot blocks, with and without protection.
  fault::CampaignConfig cc;
  cc.target = fault::Target::kHotBlocks;
  cc.faulty_blocks = 1;
  cc.bits_per_block = 4;
  cc.runs = 100;
  cc.seed = 11;

  fault::FaultCampaign bare(app, profile, sim::Scheme::kNone, 0);
  const auto b = bare.Run(cc);
  const auto hot_n = static_cast<unsigned>(profile.hot.hot_objects.size());
  fault::FaultCampaign prot(app, profile, sim::Scheme::kDetectCorrect, hot_n);
  const auto p = prot.Run(cc);

  std::printf("hot-block faults, %u runs: unprotected SDC=%u, "
              "protected SDC=%u (corrections performed: %llu)\n",
              cc.runs, b.sdc, p.sdc,
              static_cast<unsigned long long>(p.corrections));
  return 0;
}
