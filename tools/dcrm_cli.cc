// dcrm — the command-line front end to the library.
//
//   dcrm apps                                  list applications
//   dcrm config                                print the default hardware
//                                              config file (edit & pass back
//                                              via --config=FILE)
//   dcrm profile <app> [--save=FILE] [--save-trace=FILE]
//                                              offline profiling run: hot
//                                              classification + Table III;
//                                              --save-trace records the
//                                              columnar trace store so later
//                                              commands replay it via
//                                              --load-trace without
//                                              re-collecting
//   dcrm timing <app> [--scheme=..] [--cover=N]   cycle-level run
//   dcrm campaign <app> [--target=hot|rest|miss] [--blocks=N] [--bits=N]
//                 [--runs=N] [--scheme=none|detect|correct] [--cover=N]
//                 [--jobs=N]   fan trials across N isolated workers
//                              (0 = all hardware threads); results are
//                              bit-identical at any N
//   dcrm recover [<app>] [--retries=N] [campaign flags]
//                 sweep re-execution retry budgets 0..N (0 = the paper's
//                 detect-and-die) over one app or, with no app, all ten
//   dcrm analyze <app> [--scheme=..] [--cover=N | --objects=a,b,c]
//                 [--csv=FILE]
//                 static certification of the protection plan against
//                 the recorded access streams (races, read-only proof,
//                 replica aliasing, LD/ST-table capacity) — no timing
//                 simulation, no fault injection
//   Common flags: --scale=tiny|small|medium  --config=FILE  --seed=N
//                 --load-trace=FILE (profile/timing/campaign/analyze: reuse
//                 a saved trace store instead of rebuilding traces)
//
// Exit codes: 0 success, 2 usage, 3 a run was terminated by the
// detection scheme, 4 a run hit a SECDED uncorrectable error, 5 the
// analyzer certified with warnings, 6 the analyzer found violations,
// 1 any other error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/analysis.h"
#include "apps/driver.h"
#include "apps/registry.h"
#include "core/profile_io.h"
#include "core/recovery.h"
#include "fault/campaign.h"
#include "fault/parallel_campaign.h"
#include "sim/config_io.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"

namespace {

using namespace dcrm;

struct CliArgs {
  std::string command;
  std::string app;
  apps::AppScale scale = apps::AppScale::kSmall;
  sim::GpuConfig cfg;
  std::uint64_t seed = 1;
  std::string save_path;
  std::string save_trace_path;  // profile: binary trace-store output
  std::string load_trace_path;  // reuse a saved trace store
  sim::Scheme scheme = sim::Scheme::kNone;
  std::optional<unsigned> cover;
  fault::Target target = fault::Target::kMissWeighted;
  unsigned blocks = 1;
  unsigned bits = 2;
  unsigned runs = 200;
  unsigned retries = 3;
  unsigned jobs = 1;  // campaign worker count (0 = hardware threads)
  std::vector<std::string> objects;  // explicit cover (analyze, campaign)
  std::string csv_path;              // analyze: machine-readable report
  bool allow_unsound = false;        // campaign: skip the launch gate
};

int Usage() {
  std::cerr
      << "usage: dcrm <apps|config|profile|timing|campaign|recover|analyze> "
         "[<app>] [flags]\n"
         "flags: --scale=tiny|small|medium --config=FILE --seed=N\n"
         "       --save=FILE --save-trace=FILE (profile)\n"
         "       --load-trace=FILE (profile, timing, campaign, analyze)\n"
         "       --scheme=none|detect|correct --cover=N (timing, campaign, "
         "analyze)\n"
         "       --target=hot|rest|miss --blocks=N --bits=N --runs=N "
         "(campaign, recover)\n"
         "       --jobs=N (campaign: parallel workers, 0 = hardware "
         "threads; bit-identical results at any N)\n"
         "       --retries=N (recover: sweep budgets 0..N)\n"
         "       --objects=a,b,c (analyze, campaign: explicit cover, may "
         "include writable objects)\n"
         "       --csv=FILE (analyze: machine-readable report)\n"
         "       --allow-unsound (campaign: run despite analyzer "
         "violations)\n";
  return 2;
}

bool ParseFlag(CliArgs& args, const std::string& a) {
  auto value = [&](const char* prefix) -> std::optional<std::string> {
    const std::size_t n = std::strlen(prefix);
    if (a.rfind(prefix, 0) == 0) return a.substr(n);
    return std::nullopt;
  };
  if (auto v = value("--scale=")) {
    if (*v == "tiny") args.scale = apps::AppScale::kTiny;
    else if (*v == "small") args.scale = apps::AppScale::kSmall;
    else if (*v == "medium") args.scale = apps::AppScale::kMedium;
    else return false;
    return true;
  }
  if (auto v = value("--config=")) {
    args.cfg = sim::LoadGpuConfigFile(*v, args.cfg);
    return true;
  }
  if (auto v = value("--seed=")) {
    args.seed = std::stoull(*v);
    return true;
  }
  if (auto v = value("--save-trace=")) {
    args.save_trace_path = *v;
    return true;
  }
  if (auto v = value("--load-trace=")) {
    args.load_trace_path = *v;
    return true;
  }
  if (auto v = value("--save=")) {
    args.save_path = *v;
    return true;
  }
  if (auto v = value("--scheme=")) {
    if (*v == "none") args.scheme = sim::Scheme::kNone;
    else if (*v == "detect") args.scheme = sim::Scheme::kDetectOnly;
    else if (*v == "correct") args.scheme = sim::Scheme::kDetectCorrect;
    else return false;
    return true;
  }
  if (auto v = value("--cover=")) {
    args.cover = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--target=")) {
    if (*v == "hot") args.target = fault::Target::kHotBlocks;
    else if (*v == "rest") args.target = fault::Target::kRestBlocks;
    else if (*v == "miss") args.target = fault::Target::kMissWeighted;
    else return false;
    return true;
  }
  if (auto v = value("--blocks=")) {
    args.blocks = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--bits=")) {
    args.bits = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--runs=")) {
    args.runs = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--retries=")) {
    args.retries = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--jobs=")) {
    args.jobs = static_cast<unsigned>(std::stoul(*v));
    if (args.jobs == 0) args.jobs = std::thread::hardware_concurrency();
    if (args.jobs == 0) args.jobs = 1;
    return true;
  }
  if (auto v = value("--objects=")) {
    std::stringstream ss(*v);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (!name.empty()) args.objects.push_back(name);
    }
    return !args.objects.empty();
  }
  if (auto v = value("--csv=")) {
    args.csv_path = *v;
    return true;
  }
  if (a == "--allow-unsound") {
    args.allow_unsound = true;
    return true;
  }
  return false;
}

int CmdApps() {
  for (const auto& name : apps::AllAppNames()) std::cout << name << '\n';
  return 0;
}

// Reads a saved trace store when --load-trace was given, else null
// (ProfileApp then collects traces itself).
std::shared_ptr<const trace::TraceStore> MaybeLoadTrace(const CliArgs& args) {
  if (args.load_trace_path.empty()) return nullptr;
  std::ifstream is(args.load_trace_path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("cannot read " + args.load_trace_path);
  }
  return trace::LoadTrace(is);
}

int CmdConfig(const CliArgs& args) {
  std::cout << sim::DumpGpuConfig(args.cfg);
  return 0;
}

int CmdProfile(CliArgs& args) {
  auto app = apps::MakeApp(args.app, args.scale);
  const auto profile =
      apps::ProfileApp(*app, args.cfg, {}, MaybeLoadTrace(args));
  std::cout << args.app << ": knee ratio "
            << profile.hot.max_median_ratio << "x, hot pattern "
            << (profile.hot.has_hot_pattern ? "yes" : "no") << "\n";
  for (const auto& op : profile.hot.coverage_order) {
    const bool hot = std::any_of(
        profile.hot.hot_objects.begin(), profile.hot.hot_objects.end(),
        [&](const auto& h) { return h.id == op.id; });
    std::cout << "  " << (hot ? "*" : " ") << op.name << "  reads/block "
              << static_cast<std::uint64_t>(op.reads_per_block)
              << "  warp-share "
              << static_cast<int>(100 * op.mean_warp_share) << "%\n";
  }
  std::cout << "hot footprint " << 100 * profile.hot.hot_footprint
            << "% of application memory, "
            << 100 * profile.hot.hot_access_share
            << "% of memory transactions\n";
  if (!args.save_path.empty()) {
    std::ofstream os(args.save_path);
    if (!os) {
      std::cerr << "cannot write " << args.save_path << '\n';
      return 1;
    }
    core::SaveProfile(profile.profiler, os);
    std::cout << "profile saved to " << args.save_path << '\n';
  }
  if (!args.save_trace_path.empty()) {
    std::ofstream os(args.save_trace_path, std::ios::binary);
    if (!os) {
      std::cerr << "cannot write " << args.save_trace_path << '\n';
      return 1;
    }
    trace::SaveTrace(*profile.trace_store, os);
    std::cout << "trace store saved to " << args.save_trace_path << " ("
              << profile.trace_store->FootprintBytes() << " bytes in memory, "
              << profile.trace_store->TotalTransactions()
              << " transactions)\n";
  }
  return 0;
}

int CmdTiming(CliArgs& args) {
  auto app = apps::MakeApp(args.app, args.scale);
  const auto profile =
      apps::ProfileApp(*app, args.cfg, {}, MaybeLoadTrace(args));
  const unsigned cover = args.cover.value_or(
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  const auto base =
      apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
  const auto base_stats = apps::RunTiming(*app, profile, args.cfg, base.plan);
  const auto setup =
      apps::MakeProtectionSetup(*app, profile, args.scheme, cover);
  const auto stats = apps::RunTiming(*app, profile, args.cfg, setup.plan);
  std::cout << args.app << " scheme=" << sim::SchemeName(args.scheme)
            << " cover=" << cover << "\n"
            << "cycles " << stats.cycles << " (baseline " << base_stats.cycles
            << ", overhead "
            << 100.0 * (static_cast<double>(stats.cycles) /
                            static_cast<double>(base_stats.cycles) -
                        1.0)
            << "%)\n"
            << "L1 " << stats.l1_hits << " hits / " << stats.l1_pending_hits
            << " pending / " << stats.l1_misses << " misses; replica txns "
            << stats.replica_transactions << "; L2 hits " << stats.l2_hits
            << "/" << stats.l2_accesses << "; DRAM reads "
            << stats.dram_reads << " (row hits " << stats.dram_row_hits
            << ")\n";
  return 0;
}

int CmdAnalyze(CliArgs& args) {
  auto app = apps::MakeApp(args.app, args.scale);
  const auto profile =
      apps::ProfileApp(*app, args.cfg, {}, MaybeLoadTrace(args));
  apps::ProtectionSetup setup;
  if (!args.objects.empty()) {
    setup = apps::MakeProtectionSetupForObjects(*app, profile, args.scheme,
                                                args.objects);
  } else {
    const unsigned cover = args.cover.value_or(
        static_cast<unsigned>(profile.hot.hot_objects.size()));
    setup = apps::MakeProtectionSetup(*app, profile, args.scheme, cover);
  }
  analysis::AnalyzerInput in;
  in.traces = profile.trace_store.get();
  in.space = &setup.dev->space();
  in.plan = &setup.plan;
  in.cfg = args.cfg;
  // The Tier-1 spare pool a default-configured RecoveryManager would
  // carve out next, so replica-vs-spare aliasing is checked for the
  // layout a recovering campaign will actually run with.
  const core::RecoveryConfig rc;
  in.spare = analysis::SpareRegion{
      setup.dev->space().Brk(),
      std::uint64_t{rc.spare_blocks} * kBlockSize};
  analysis::Report report = analysis::Analyze(in);
  report.Append(analysis::CrossCheckHotClaims(*profile.trace_store,
                                              setup.dev->space(),
                                              profile.hot));
  std::cout << args.app << " scheme=" << sim::SchemeName(args.scheme)
            << " ranges=" << setup.plan.ranges.size() << " pcs="
            << setup.plan.pcs.size() << "\n";
  trace::WriteKernelStatsText(*profile.trace_store, std::cout);
  analysis::WriteText(report, std::cout);
  if (!args.csv_path.empty()) {
    std::ofstream os(args.csv_path);
    if (!os) {
      std::cerr << "cannot write " << args.csv_path << '\n';
      return 1;
    }
    analysis::WriteCsv(report, os);
    trace::WriteKernelStatsCsv(*profile.trace_store, os);
    std::cout << "report saved to " << args.csv_path << '\n';
  }
  return report.ExitCode();
}

int CmdCampaign(CliArgs& args) {
  auto app = apps::MakeApp(args.app, args.scale);
  const auto profile =
      apps::ProfileApp(*app, args.cfg, {}, MaybeLoadTrace(args));
  unsigned cover = args.cover.value_or(
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  if (args.scheme == sim::Scheme::kNone) cover = 0;
  fault::CampaignSpec spec;
  spec.make_app = [&args] { return apps::MakeApp(args.app, args.scale); };
  spec.profile = &profile;
  spec.scheme = args.scheme;
  spec.cover_objects = cover;
  spec.object_names = args.objects;
  spec.allow_unsound = args.allow_unsound;
  fault::ParallelCampaign campaign(std::move(spec), args.jobs);
  fault::CampaignConfig cc;
  cc.target = args.target;
  cc.faulty_blocks = args.blocks;
  cc.bits_per_block = args.bits;
  cc.runs = args.runs;
  cc.seed = args.seed;
  const auto counts = campaign.Run(cc);
  const auto ci = counts.SdcCi();
  std::cout << args.app << " scheme=" << sim::SchemeName(args.scheme)
            << " cover=" << cover << " blocks=" << cc.faulty_blocks
            << " bits=" << cc.bits_per_block << " runs=" << counts.runs
            << " jobs=" << campaign.jobs() << "\nSDC " << counts.sdc << " ("
            << 100 * ci.p << "% +/- " << 100 * ci.margin << "%), detected "
            << counts.detected << ", due " << counts.due << ", crash "
            << counts.crash << ", masked " << counts.masked
            << ", corrections " << counts.corrections << "\n";
  trace::WriteKernelStatsText(*profile.trace_store, std::cout);
  return 0;
}

int CmdRecover(CliArgs& args) {
  // The sweep needs a detecting scheme; default to the paper's
  // duplication when none was requested.
  if (args.scheme == sim::Scheme::kNone) {
    args.scheme = sim::Scheme::kDetectOnly;
  }
  const std::vector<std::string> names =
      args.app.empty() ? apps::HotPatternAppNames()
                       : std::vector<std::string>{args.app};
  std::cout << "retry-budget sweep: scheme=" << sim::SchemeName(args.scheme)
            << " blocks=" << args.blocks << " bits=" << args.bits
            << " runs=" << args.runs << " seed=" << args.seed << "\n"
            << "budget 0 is the paper's detect-and-die pipeline; budget "
               "k adds tiered recovery with up to k re-executions.\n";
  for (const auto& name : names) {
    auto app = apps::MakeApp(name, args.scale);
    const auto profile = apps::ProfileApp(*app, args.cfg);
    const unsigned cover = args.cover.value_or(
        static_cast<unsigned>(profile.hot.coverage_order.size()));
    const auto setup =
        apps::MakeProtectionSetup(*app, profile, args.scheme, cover);
    const std::uint64_t run_cycles =
        apps::RunTiming(*app, profile, args.cfg, setup.plan).cycles;
    for (unsigned budget = 0; budget <= args.retries; ++budget) {
      // Fresh campaign per budget point: the repeat-offender memory
      // must not leak between sweep points.
      fault::FaultCampaign campaign(*app, profile, args.scheme, cover);
      fault::CampaignConfig cc;
      cc.target = args.target;
      cc.faulty_blocks = args.blocks;
      cc.bits_per_block = args.bits;
      cc.runs = args.runs;
      cc.seed = args.seed;
      cc.recovery.enabled = budget > 0;
      cc.recovery.max_retries = budget;
      const auto counts = campaign.Run(cc);
      const auto cost = core::ChargeRecovery(counts.recovery, counts.runs,
                                             run_cycles, args.cfg);
      std::cout << name << " budget=" << budget << " runs=" << counts.runs
                << ": sdc " << counts.sdc << ", detected " << counts.detected
                << ", recovered " << counts.recovered << ", masked "
                << counts.masked << ", due " << counts.due << ", crash "
                << counts.crash << " | arb " << counts.recovery.arbitrations
                << ", scrubs " << counts.recovery.scrubs << ", retired "
                << counts.recovery.retired_blocks << ", reexec "
                << counts.recovery.retries << ", escalations "
                << counts.recovery.escalations << ", overhead "
                << 100.0 * cost.per_run_overhead << "%\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  CliArgs args;
  args.command = argv[1];
  int i = 2;
  if (args.command == "profile" || args.command == "timing" ||
      args.command == "campaign" || args.command == "analyze") {
    if (argc < 3 || argv[2][0] == '-') return Usage();
    args.app = argv[2];
    i = 3;
  } else if (args.command == "recover") {
    if (argc >= 3 && argv[2][0] != '-') {
      args.app = argv[2];
      i = 3;
    }
  }
  try {
    for (; i < argc; ++i) {
      if (!ParseFlag(args, argv[i])) {
        std::cerr << "bad flag: " << argv[i] << '\n';
        return Usage();
      }
    }
    if (args.command == "apps") return CmdApps();
    if (args.command == "config") return CmdConfig(args);
    if (args.command == "profile") return CmdProfile(args);
    if (args.command == "timing") return CmdTiming(args);
    if (args.command == "campaign") return CmdCampaign(args);
    if (args.command == "recover") return CmdRecover(args);
    if (args.command == "analyze") return CmdAnalyze(args);
  } catch (const analysis::UnsoundPlanError& e) {
    // The campaign-launch gate refused an uncertifiable plan. Print
    // the full report so the misconfiguration is diagnosable, and exit
    // with the analyzer's violation code.
    std::cerr << "error: " << e.what() << '\n';
    analysis::WriteText(e.report(), std::cerr);
    return analysis::kExitViolations;
  } catch (const core::DetectionTerminated& e) {
    // A reliability outcome, not a tool failure: report what the
    // detection hardware saw and exit distinctly so scripts can tell
    // "the scheme fired" from "the tool broke".
    std::cerr << "reliability: detection terminated the run (scheme="
              << sim::SchemeName(args.scheme) << ", pc=" << e.pc()
              << ", addr=0x" << std::hex << e.addr() << std::dec << ")\n";
    return 3;
  } catch (const mem::DueError& e) {
    std::cerr << "reliability: SECDED uncorrectable error (addr=0x"
              << std::hex << e.addr() << std::dec << ")\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return Usage();
}
