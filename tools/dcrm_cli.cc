// dcrm — the command-line front end to the library.
//
//   dcrm apps                                  list applications
//   dcrm config                                print the default hardware
//                                              config file (edit & pass back
//                                              via --config=FILE)
//   dcrm profile <app> [--save=FILE] [--save-trace=FILE] [--graph]
//                                              offline profiling run: hot
//                                              classification + Table III;
//                                              --save-trace records the
//                                              columnar trace store so later
//                                              commands replay it via
//                                              --load-trace without
//                                              re-collecting
//   dcrm timing <app> [--scheme=..] [--cover=N]   cycle-level run
//   dcrm campaign <app> [--target=hot|rest|miss] [--blocks=N] [--bits=N]
//                 [--runs=N] [--scheme=none|detect|correct] [--cover=N]
//                 [--jobs=N]   fan trials across N isolated workers
//                              (0 = all hardware threads); results are
//                              bit-identical at any N
//   dcrm recover [<app>] [--retries=N] [campaign flags]
//                 sweep re-execution retry budgets 0..N (0 = the paper's
//                 detect-and-die) over one app or, with no app, all ten
//   dcrm analyze <app> [--scheme=..] [--cover=N | --objects=a,b,c]
//                 [--csv=FILE]
//                 static certification of the protection plan against
//                 the recorded access streams (races, read-only proof,
//                 replica aliasing, LD/ST-table capacity) — no timing
//                 simulation, no fault injection
//   dcrm avf <app> [--scheme=..] [--cover=N | --objects=a,b,c]
//                 [--blocks=N] [--bits=N] [--csv=FILE]
//                 static vulnerability analysis: ACE-style block
//                 liveness and per-object AVF over the recorded
//                 streams, plus the derived outcome bounds a campaign
//                 with these flags would be held to
//   dcrm shard <app> [campaign flags] [--shards=N] [--workers=M]
//                 [--workdir=DIR] [--resume] [--shard-timeout=SECONDS]
//                 [--max-retries=N] [--backoff-ms=N] [--csv=FILE]
//                 crash-tolerant multi-process campaign: epoch-aligned
//                 shards run in worker processes, results merge
//                 bit-identical to in-process --jobs=N, a checksummed
//                 manifest checkpoint makes --resume re-run only what
//                 is missing, dead/hung workers are re-dispatched with
//                 exponential backoff
//   dcrm shard-worker <app> ...   internal: runs one shard (spawned by
//                 dcrm shard; not for interactive use)
//   dcrm serve [--socket=PATH] [--cache-mb=N]
//                 reliability-as-a-service daemon: accepts profile /
//                 timing / analyze / avf / campaign requests from many
//                 concurrent clients over a Unix socket, with a
//                 content-addressed artifact cache and a scheduler
//                 that coalesces compatible campaign requests into one
//                 merged engine run (bit-identical results either way)
//   dcrm request <type> [<app>] [command flags] [--socket=PATH]
//                 one client request against a running daemon; <type>
//                 is profile|timing|analyze|avf|campaign|stats|
//                 shutdown, flags are the standalone command's flags
//   Common flags: --scale=tiny|small|medium  --config=FILE  --seed=N
//                 --load-trace=FILE (profile/timing/campaign/analyze/shard:
//                 reuse a saved trace store instead of rebuilding traces)
//                 --recovery=N --epoch=N (campaign, shard: tiered
//                 recovery with an N-retry budget / escalation epoch)
//
// Exit codes (the authoritative table lives in README.md): 0 success,
// 2 usage, 3 a run was terminated by the detection scheme, 4 a run hit
// a SECDED uncorrectable error, 5 the analyzer certified with
// warnings, 6 the analyzer found violations, 7 interrupted at a
// checkpointable boundary (resumable), 8 a shard's retry budget was
// exhausted (resumable), 9 campaign counts violated the static bounds
// (--cross-check), 10 the daemon could not bind its socket, 11 the
// client found nothing listening, 1 any other error.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/analysis.h"
#include "analysis/vulnerability.h"
#include "apps/driver.h"
#include "apps/registry.h"
#include "core/profile_io.h"
#include "core/recovery.h"
#include "fault/campaign.h"
#include "fault/cross_check.h"
#include "fault/parallel_campaign.h"
#include "fault/shard_coordinator.h"
#include "fault/shard_io.h"
#include "service/client.h"
#include "service/proto.h"
#include "service/render.h"
#include "service/server.h"
#include "sim/config_io.h"
#include "trace/graph_stats.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"

namespace {

using namespace dcrm;

// Set by SIGINT/SIGTERM; long-running commands poll it and drain at
// the next epoch/shard boundary instead of dying mid-trial.
std::atomic<bool> g_stop{false};

void OnStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

void InstallStopHandler() {
  struct sigaction sa = {};
  sa.sa_handler = OnStopSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

// The dcrm binary's own path, for the coordinator to spawn workers
// with: /proc/self/exe when available (robust against PATH and cwd
// changes), argv[0] otherwise.
std::string SelfExe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
  return argv0;
}

struct CliArgs {
  std::string command;
  std::string app;
  apps::AppScale scale = apps::AppScale::kSmall;
  sim::GpuConfig cfg;
  std::uint64_t seed = 1;
  std::string save_path;
  std::string save_trace_path;  // profile: binary trace-store output
  std::string load_trace_path;  // reuse a saved trace store
  sim::Scheme scheme = sim::Scheme::kNone;
  std::optional<unsigned> cover;
  fault::Target target = fault::Target::kMissWeighted;
  unsigned blocks = 1;
  unsigned bits = 2;
  unsigned runs = 200;
  unsigned retries = 3;
  unsigned jobs = 1;  // campaign worker count (0 = hardware threads)
  std::vector<std::string> objects;  // explicit cover (analyze, campaign)
  std::string csv_path;              // analyze/campaign/shard: CSV output
  bool graph = false;  // profile: dump kernel-graph topology + edge reuse
  bool allow_unsound = false;        // campaign: skip the launch gate
  // Campaign: restrict trials to statically SDC-reachable blocks
  // (unbiased via the stored weight share) / gate the finished counts
  // against the static outcome bounds.
  bool importance_sampling = false;
  bool cross_check = false;
  // Campaign/shard recovery pipeline: budget 0 = the paper's
  // detect-and-die, >0 enables tiered recovery (and with it Tier-2
  // escalation, the cross-trial coupling).
  unsigned recovery_retries = 0;
  unsigned epoch = 16;  // escalation epoch (trials)
  // Sharded campaign (dcrm shard).
  unsigned shards = 4;
  unsigned workers = 2;
  std::string workdir = "dcrm_shard_work";
  bool resume = false;
  std::uint64_t shard_timeout_ms = 0;
  unsigned max_retries = 3;
  std::uint64_t backoff_ms = 500;
  int kill_shard = -1;  // fault injection (tests, CI)
  unsigned kill_shard_after = 0;
  int hang_shard = -1;
  unsigned hang_shard_after = 0;
  int stop_after_shards = -1;
  // Shard worker (dcrm shard-worker, spawned by the coordinator).
  unsigned shard_index = 0;
  unsigned trial_begin = 0;
  unsigned trial_end = 0;
  std::uint64_t fingerprint = 0;
  std::string out_path;
  std::string ledger_in;
  unsigned kill_after = 0;
  unsigned hang_after = 0;
  // Service (dcrm serve / dcrm request).
  std::string socket_path = "dcrm.sock";
  std::uint64_t cache_mb = 256;
  std::string request_type;
  // Whether --engine was given explicitly: a request only overrides
  // the daemon's engine when the client asked for one.
  std::optional<sim::SimEngine> engine_override;
};

int Usage() {
  std::cerr
      << "usage: dcrm "
         "<apps|config|profile|timing|campaign|recover|analyze|avf|shard"
         "|serve|request> "
         "[<app>] [flags]\n"
         "flags: --scale=tiny|small|medium --config=FILE --seed=N\n"
         "       --engine=cycle|event (replay engine; bit-identical "
         "results, event skips idle cycles)\n"
         "       --save=FILE --save-trace=FILE (profile)\n"
         "       --graph (profile: dump kernel-graph topology + per-edge "
         "reused bytes; with --csv writes the edge table)\n"
         "       --load-trace=FILE (profile, timing, campaign, analyze)\n"
         "       --scheme=none|detect|correct --cover=N (timing, campaign, "
         "analyze)\n"
         "       --target=hot|rest|miss --blocks=N --bits=N --runs=N "
         "(campaign, recover)\n"
         "       --jobs=N (campaign: parallel workers, 0 = hardware "
         "threads; bit-identical results at any N)\n"
         "       --retries=N (recover: sweep budgets 0..N)\n"
         "       --objects=a,b,c (analyze, campaign: explicit cover, may "
         "include writable objects)\n"
         "       --csv=FILE (timing: per-component stats; analyze: "
         "report; campaign, shard: merged counts+ledger)\n"
         "       --allow-unsound (campaign: run despite analyzer "
         "violations)\n"
         "       --importance-sampling (campaign: draw trials from the "
         "statically SDC-reachable blocks only; unbiased)\n"
         "       --cross-check (campaign: gate finished counts against "
         "the static bounds, exit 9 on violation)\n"
         "       --recovery=N --epoch=N (campaign, shard: tiered recovery "
         "budget / escalation epoch)\n"
         "       --shards=N --workers=M --workdir=DIR --resume\n"
         "       --shard-timeout=SECONDS --max-retries=N --backoff-ms=N "
         "(shard)\n"
         "       --socket=PATH (serve, request: Unix socket path)\n"
         "       --cache-mb=N (serve: artifact-cache byte budget)\n"
         "       dcrm request <type> <app> [flags]: type is profile|"
         "timing|analyze|avf|campaign|stats|shutdown\n";
  return 2;
}

bool ParseFlag(CliArgs& args, const std::string& a) {
  auto value = [&](const char* prefix) -> std::optional<std::string> {
    const std::size_t n = std::strlen(prefix);
    if (a.rfind(prefix, 0) == 0) return a.substr(n);
    return std::nullopt;
  };
  if (auto v = value("--scale=")) {
    if (*v == "tiny") args.scale = apps::AppScale::kTiny;
    else if (*v == "small") args.scale = apps::AppScale::kSmall;
    else if (*v == "medium") args.scale = apps::AppScale::kMedium;
    else return false;
    return true;
  }
  if (auto v = value("--config=")) {
    args.cfg = sim::LoadGpuConfigFile(*v, args.cfg);
    return true;
  }
  if (auto v = value("--engine=")) {
    if (*v == "cycle") args.cfg.engine = sim::SimEngine::kCycleStepped;
    else if (*v == "event") args.cfg.engine = sim::SimEngine::kEventDriven;
    else return false;
    args.engine_override = args.cfg.engine;
    return true;
  }
  if (auto v = value("--seed=")) {
    args.seed = std::stoull(*v);
    return true;
  }
  if (auto v = value("--save-trace=")) {
    args.save_trace_path = *v;
    return true;
  }
  if (auto v = value("--load-trace=")) {
    args.load_trace_path = *v;
    return true;
  }
  if (auto v = value("--save=")) {
    args.save_path = *v;
    return true;
  }
  if (auto v = value("--scheme=")) {
    if (*v == "none") args.scheme = sim::Scheme::kNone;
    else if (*v == "detect") args.scheme = sim::Scheme::kDetectOnly;
    else if (*v == "correct") args.scheme = sim::Scheme::kDetectCorrect;
    else return false;
    return true;
  }
  if (auto v = value("--cover=")) {
    args.cover = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--target=")) {
    if (*v == "hot") args.target = fault::Target::kHotBlocks;
    else if (*v == "rest") args.target = fault::Target::kRestBlocks;
    else if (*v == "miss") args.target = fault::Target::kMissWeighted;
    else return false;
    return true;
  }
  if (auto v = value("--blocks=")) {
    args.blocks = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--bits=")) {
    args.bits = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--runs=")) {
    args.runs = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--retries=")) {
    args.retries = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--jobs=")) {
    args.jobs = static_cast<unsigned>(std::stoul(*v));
    if (args.jobs == 0) args.jobs = std::thread::hardware_concurrency();
    if (args.jobs == 0) args.jobs = 1;
    return true;
  }
  if (auto v = value("--objects=")) {
    std::stringstream ss(*v);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (!name.empty()) args.objects.push_back(name);
    }
    return !args.objects.empty();
  }
  if (auto v = value("--csv=")) {
    args.csv_path = *v;
    return true;
  }
  if (a == "--graph") {
    args.graph = true;
    return true;
  }
  if (a == "--allow-unsound") {
    args.allow_unsound = true;
    return true;
  }
  if (a == "--importance-sampling") {
    args.importance_sampling = true;
    return true;
  }
  if (a == "--cross-check") {
    args.cross_check = true;
    return true;
  }
  if (auto v = value("--recovery=")) {
    args.recovery_retries = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--epoch=")) {
    args.epoch = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--shards=")) {
    args.shards = static_cast<unsigned>(std::stoul(*v));
    return args.shards > 0;
  }
  if (auto v = value("--workers=")) {
    args.workers = static_cast<unsigned>(std::stoul(*v));
    return args.workers > 0;
  }
  if (auto v = value("--workdir=")) {
    args.workdir = *v;
    return !args.workdir.empty();
  }
  if (a == "--resume") {
    args.resume = true;
    return true;
  }
  if (auto v = value("--shard-timeout=")) {
    args.shard_timeout_ms = std::stoull(*v) * 1000;
    return true;
  }
  if (auto v = value("--max-retries=")) {
    args.max_retries = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--backoff-ms=")) {
    args.backoff_ms = std::stoull(*v);
    return true;
  }
  if (auto v = value("--kill-shard=")) {
    args.kill_shard = std::stoi(*v);
    return true;
  }
  if (auto v = value("--kill-shard-after=")) {
    args.kill_shard_after = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--hang-shard=")) {
    args.hang_shard = std::stoi(*v);
    return true;
  }
  if (auto v = value("--hang-shard-after=")) {
    args.hang_shard_after = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--stop-after-shards=")) {
    args.stop_after_shards = std::stoi(*v);
    return true;
  }
  if (auto v = value("--shard-index=")) {
    args.shard_index = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--trial-begin=")) {
    args.trial_begin = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--trial-end=")) {
    args.trial_end = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--fingerprint=")) {
    args.fingerprint = std::stoull(*v);
    return true;
  }
  if (auto v = value("--out=")) {
    args.out_path = *v;
    return !args.out_path.empty();
  }
  if (auto v = value("--ledger-in=")) {
    args.ledger_in = *v;
    return true;
  }
  if (auto v = value("--kill-after=")) {
    args.kill_after = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--hang-after=")) {
    args.hang_after = static_cast<unsigned>(std::stoul(*v));
    return true;
  }
  if (auto v = value("--socket=")) {
    args.socket_path = *v;
    return !args.socket_path.empty();
  }
  if (auto v = value("--cache-mb=")) {
    args.cache_mb = std::stoull(*v);
    return args.cache_mb > 0;
  }
  return false;
}

int CmdApps() {
  for (const auto& name : apps::AllAppNames()) std::cout << name << '\n';
  return 0;
}

// Reads a saved trace store when --load-trace was given, else null
// (ProfileApp then collects traces itself).
std::shared_ptr<const trace::TraceStore> MaybeLoadTrace(const CliArgs& args) {
  if (args.load_trace_path.empty()) return nullptr;
  std::ifstream is(args.load_trace_path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("cannot read " + args.load_trace_path);
  }
  return trace::LoadTrace(is);
}

int CmdConfig(const CliArgs& args) {
  std::cout << sim::DumpGpuConfig(args.cfg);
  return 0;
}

int CmdProfile(CliArgs& args) {
  auto app = apps::MakeApp(args.app, args.scale);
  const auto profile =
      apps::ProfileApp(*app, args.cfg, {}, MaybeLoadTrace(args));
  std::cout << args.app << ": knee ratio "
            << profile.hot.max_median_ratio << "x, hot pattern "
            << (profile.hot.has_hot_pattern ? "yes" : "no") << "\n";
  for (const auto& op : profile.hot.coverage_order) {
    const bool hot = std::any_of(
        profile.hot.hot_objects.begin(), profile.hot.hot_objects.end(),
        [&](const auto& h) { return h.id == op.id; });
    std::cout << "  " << (hot ? "*" : " ") << op.name << "  reads/block "
              << static_cast<std::uint64_t>(op.reads_per_block)
              << "  warp-share "
              << static_cast<int>(100 * op.mean_warp_share) << "%\n";
  }
  std::cout << "hot footprint " << 100 * profile.hot.hot_footprint
            << "% of application memory, "
            << 100 * profile.hot.hot_access_share
            << "% of memory transactions\n";
  if (args.graph) {
    trace::WriteGraphText(*profile.trace_store, std::cout);
    if (!args.csv_path.empty()) {
      std::ofstream os(args.csv_path);
      if (!os) {
        std::cerr << "cannot write " << args.csv_path << '\n';
        return 1;
      }
      trace::WriteGraphCsv(*profile.trace_store, os);
      std::cout << "graph table saved to " << args.csv_path << '\n';
    }
  }
  if (!args.save_path.empty()) {
    std::ofstream os(args.save_path);
    if (!os) {
      std::cerr << "cannot write " << args.save_path << '\n';
      return 1;
    }
    core::SaveProfile(profile.profiler, os);
    std::cout << "profile saved to " << args.save_path << '\n';
  }
  if (!args.save_trace_path.empty()) {
    std::ofstream os(args.save_trace_path, std::ios::binary);
    if (!os) {
      std::cerr << "cannot write " << args.save_trace_path << '\n';
      return 1;
    }
    trace::SaveTrace(*profile.trace_store, os);
    std::cout << "trace store saved to " << args.save_trace_path << " ("
              << profile.trace_store->FootprintBytes() << " bytes in memory, "
              << profile.trace_store->TotalTransactions()
              << " transactions)\n";
  }
  return 0;
}

// The CSV bytes come from the renderer the daemon also uses
// (service/render.h), so `dcrm timing --csv` and a served timing
// request are bit-identical by construction.
void WriteTimingCsv(const std::string& path, const apps::TimingDetail& d) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  os << service::RenderTimingCsv(d);
}

int CmdTiming(CliArgs& args) {
  auto app = apps::MakeApp(args.app, args.scale);
  const auto profile =
      apps::ProfileApp(*app, args.cfg, {}, MaybeLoadTrace(args));
  const unsigned cover = args.cover.value_or(
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  const auto base =
      apps::MakeProtectionSetup(*app, profile, sim::Scheme::kNone, 0);
  const auto base_stats = apps::RunTiming(*app, profile, args.cfg, base.plan);
  const auto setup =
      apps::MakeProtectionSetup(*app, profile, args.scheme, cover);
  const auto detail =
      apps::RunTimingDetailed(*app, profile, args.cfg, setup.plan);
  const auto& stats = detail.total;
  if (!args.csv_path.empty()) WriteTimingCsv(args.csv_path, detail);
  std::cout << args.app << " scheme=" << sim::SchemeName(args.scheme)
            << " cover=" << cover
            << " engine=" << sim::EngineName(args.cfg.engine) << "\n"
            << "cycles " << stats.cycles << " (baseline " << base_stats.cycles
            << ", overhead "
            << 100.0 * (static_cast<double>(stats.cycles) /
                            static_cast<double>(base_stats.cycles) -
                        1.0)
            << "%)\n"
            << "L1 " << stats.l1_hits << " hits / " << stats.l1_pending_hits
            << " pending / " << stats.l1_misses << " misses; replica txns "
            << stats.replica_transactions << "; L2 hits " << stats.l2_hits
            << "/" << stats.l2_accesses << "; DRAM reads "
            << stats.dram_reads << " (row hits " << stats.dram_row_hits
            << ")\n";
  return 0;
}

int CmdAnalyze(CliArgs& args) {
  auto app = apps::MakeApp(args.app, args.scale);
  const auto profile =
      apps::ProfileApp(*app, args.cfg, {}, MaybeLoadTrace(args));
  apps::ProtectionSetup setup;
  if (!args.objects.empty()) {
    setup = apps::MakeProtectionSetupForObjects(*app, profile, args.scheme,
                                                args.objects);
  } else {
    const unsigned cover = args.cover.value_or(
        static_cast<unsigned>(profile.hot.hot_objects.size()));
    setup = apps::MakeProtectionSetup(*app, profile, args.scheme, cover);
  }
  analysis::AnalyzerInput in;
  in.traces = profile.trace_store.get();
  in.space = &setup.dev->space();
  in.plan = &setup.plan;
  in.cfg = args.cfg;
  // The Tier-1 spare pool a default-configured RecoveryManager would
  // carve out next, so replica-vs-spare aliasing is checked for the
  // layout a recovering campaign will actually run with.
  const core::RecoveryConfig rc;
  in.spare = analysis::SpareRegion{
      setup.dev->space().Brk(),
      std::uint64_t{rc.spare_blocks} * kBlockSize};
  analysis::Report report = analysis::Analyze(in);
  report.Append(analysis::CrossCheckHotClaims(*profile.trace_store,
                                              setup.dev->space(),
                                              profile.hot));
  std::cout << args.app << " scheme=" << sim::SchemeName(args.scheme)
            << " ranges=" << setup.plan.ranges.size() << " pcs="
            << setup.plan.pcs.size() << "\n";
  trace::WriteKernelStatsText(*profile.trace_store, std::cout);
  analysis::WriteText(report, std::cout);
  if (!args.csv_path.empty()) {
    std::ofstream os(args.csv_path);
    if (!os) {
      std::cerr << "cannot write " << args.csv_path << '\n';
      return 1;
    }
    analysis::WriteCsv(report, os);
    trace::WriteKernelStatsCsv(*profile.trace_store, os);
    std::cout << "report saved to " << args.csv_path << '\n';
  }
  return report.ExitCode();
}

int CmdAvf(CliArgs& args) {
  auto app = apps::MakeApp(args.app, args.scale);
  const auto profile =
      apps::ProfileApp(*app, args.cfg, {}, MaybeLoadTrace(args));
  apps::ProtectionSetup setup;
  if (!args.objects.empty()) {
    setup = apps::MakeProtectionSetupForObjects(*app, profile, args.scheme,
                                                args.objects);
  } else {
    unsigned cover = args.cover.value_or(
        static_cast<unsigned>(profile.hot.hot_objects.size()));
    if (args.scheme == sim::Scheme::kNone) cover = 0;
    setup = apps::MakeProtectionSetup(*app, profile, args.scheme, cover);
  }
  const auto map = analysis::AnalyzeVulnerability(
      *profile.trace_store, setup.dev->space(), app->OutputObjects());
  std::cout << args.app << " scheme=" << sim::SchemeName(args.scheme)
            << " ranges=" << setup.plan.ranges.size()
            << " pcs=" << setup.plan.pcs.size() << "\n";
  analysis::WriteVulnerabilityText(map, setup.plan, std::cout);

  // Outcome bounds a campaign with these flags would be held to, over
  // the default exposure-weighted universe.
  const auto universe = analysis::BuildExposureUniverse(profile.profiler);
  analysis::BoundsSpec spec;
  spec.faulty_blocks = args.blocks;
  spec.multi_bit_words = args.bits >= 3;
  spec.due_capable_words = args.bits >= 2;
  const auto bounds = analysis::DeriveOutcomeBounds(
      map, setup.plan,
      analysis::TargetUniverse{universe.blocks, universe.weight_prefix},
      spec);
  std::cout << "campaign bounds (miss-weighted, blocks=" << args.blocks
            << " bits=" << args.bits << "): sdc<=" << bounds.sdc_max
            << " masked>=" << bounds.masked_min << " over "
            << bounds.universe_blocks << " blocks (" << bounds.sdc_blocks
            << " SDC-reachable, " << bounds.inert_blocks
            << " inert, reachable weight share "
            << bounds.sdc_weight_share << ")\n";

  analysis::Report report;
  report.Append(
      analysis::AuditVulnerability(map, setup.dev->space(), setup.plan));
  analysis::WriteText(report, std::cout);
  if (!args.csv_path.empty()) {
    std::ofstream os(args.csv_path);
    if (!os) {
      std::cerr << "cannot write " << args.csv_path << '\n';
      return 1;
    }
    analysis::WriteVulnerabilityCsv(map, setup.plan, os);
    std::cout << "report saved to " << args.csv_path << '\n';
  }
  return report.ExitCode();
}

int CmdCampaign(CliArgs& args) {
  auto app = apps::MakeApp(args.app, args.scale);
  const auto profile =
      apps::ProfileApp(*app, args.cfg, {}, MaybeLoadTrace(args));
  unsigned cover = args.cover.value_or(
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  if (args.scheme == sim::Scheme::kNone) cover = 0;
  fault::CampaignSpec spec;
  spec.make_app = [&args] { return apps::MakeApp(args.app, args.scale); };
  spec.profile = &profile;
  spec.scheme = args.scheme;
  spec.cover_objects = cover;
  spec.object_names = args.objects;
  spec.allow_unsound = args.allow_unsound;
  fault::ParallelCampaign campaign(std::move(spec), args.jobs);
  fault::CampaignConfig cc;
  cc.target = args.target;
  cc.faulty_blocks = args.blocks;
  cc.bits_per_block = args.bits;
  cc.runs = args.runs;
  cc.seed = args.seed;
  cc.recovery.enabled = args.recovery_retries > 0;
  cc.recovery.max_retries = args.recovery_retries;
  cc.escalation_epoch = args.epoch;
  cc.importance_sampling = args.importance_sampling;
  if (cc.importance_sampling &&
      campaign.front().SamplingShare(cc.target) == 0.0) {
    // The static analysis proves every selectable block is either
    // never consumed or fully checked: the SDC rate is exactly zero,
    // no trials required.
    std::cout << args.app << " scheme=" << sim::SchemeName(args.scheme)
              << " cover=" << cover
              << ": importance sampling found no SDC-reachable blocks "
                 "in the target set — SDC rate is statically 0, skipping "
              << cc.runs << " trials\n";
    return 0;
  }
  // SIGINT/SIGTERM drain at the next wave boundary: partial counts are
  // reported (whole epochs only) and the distinct exit code 7 tells
  // scripts the run is incomplete-but-clean, not broken.
  fault::EngineOptions eo;
  eo.stop = &g_stop;
  eo.max_wave = 512;
  const auto counts = campaign.Run(cc, eo);
  const bool interrupted = counts.runs < cc.runs;
  // The summary bytes come from the renderer the daemon also uses
  // (service/render.h), so `dcrm campaign` and a served campaign
  // request are bit-identical by construction.
  const double share = cc.importance_sampling
                           ? campaign.front().SamplingShare(cc.target)
                           : 0.0;
  std::cout << service::RenderCampaignSummary(args.app, args.scheme, cover,
                                              cc, counts, campaign.jobs(),
                                              share);
  if (!args.csv_path.empty()) {
    std::ofstream os(args.csv_path);
    if (!os) {
      std::cerr << "cannot write " << args.csv_path << '\n';
      return 1;
    }
    fault::WriteCountsCsv(counts, campaign.ledger(), os);
  }
  trace::WriteKernelStatsText(*profile.trace_store, std::cout);
  if (interrupted) {
    std::cerr << "interrupted: " << counts.runs << "/" << cc.runs
              << " trials completed (counts above are the partial "
                 "totals)\n";
    return fault::kExitInterrupted;
  }
  if (args.cross_check) {
    const auto check =
        fault::CrossCheckCounts(campaign.front(), cc, counts);
    fault::WriteCrossCheckText(check, std::cout);
    if (!check.Pass()) return fault::kExitBoundsViolated;
  }
  return 0;
}

// `dcrm shard` / `dcrm shard-worker` share one spec builder so the
// coordinator and its children parse flags into the identical campaign
// definition (the fingerprint double-checks that).
fault::ShardCampaignSpec MakeShardSpec(const CliArgs& args) {
  fault::ShardCampaignSpec spec;
  spec.app = args.app;
  spec.scale = args.scale;
  spec.scheme = args.scheme;
  spec.cover = args.cover;
  spec.objects = args.objects;
  spec.allow_unsound = args.allow_unsound;
  spec.target = args.target;
  spec.faulty_blocks = args.blocks;
  spec.bits_per_block = args.bits;
  spec.runs = args.runs;
  spec.seed = args.seed;
  spec.recovery_retries = args.recovery_retries;
  spec.escalation_epoch = args.epoch;
  spec.jobs = args.jobs;
  spec.gpu = args.cfg;
  return spec;
}

int CmdShard(const CliArgs& args, const char* argv0) {
  fault::CoordinatorOptions opts;
  opts.dcrm_binary = SelfExe(argv0);
  opts.workdir = args.workdir;
  opts.trace_path = args.load_trace_path;
  opts.shards = args.shards;
  opts.workers = args.workers;
  opts.shard_timeout_ms = args.shard_timeout_ms;
  opts.max_retries = args.max_retries;
  opts.backoff_ms = args.backoff_ms;
  opts.resume = args.resume;
  opts.kill_shard = args.kill_shard;
  opts.kill_after = args.kill_shard_after;
  opts.hang_shard = args.hang_shard;
  opts.hang_after = args.hang_shard_after;
  opts.stop_after_shards = args.stop_after_shards;
  opts.csv_path = args.csv_path;
  opts.stop = &g_stop;
  opts.log = &std::cerr;
  const auto outcome = fault::RunShardCoordinator(MakeShardSpec(args), opts);
  if (outcome.exit_code == fault::kExitOk) {
    const auto ci = outcome.counts.SdcCi();
    std::cout << args.app << " sharded campaign: runs="
              << outcome.counts.runs << " shards=" << outcome.shards_total
              << " redispatches=" << outcome.redispatches << "\nSDC "
              << outcome.counts.sdc << " (" << 100 * ci.p << "% +/- "
              << 100 * ci.margin << "%), detected " << outcome.counts.detected
              << ", due " << outcome.counts.due << ", crash "
              << outcome.counts.crash << ", masked " << outcome.counts.masked
              << ", recovered " << outcome.counts.recovered
              << ", corrections " << outcome.counts.corrections
              << ", escalations " << outcome.counts.recovery.escalations
              << "\n";
  } else {
    std::cerr << "sharded campaign "
              << (outcome.exit_code == fault::kExitInterrupted
                      ? "interrupted"
                      : "stopped: a shard exhausted its retry budget")
              << " at " << outcome.shards_done << "/" << outcome.shards_total
              << " shards; re-run with --resume to continue\n";
  }
  return outcome.exit_code;
}

int CmdShardWorker(const CliArgs& args) {
  fault::WorkerOptions opts;
  opts.shard_index = args.shard_index;
  opts.trial_begin = args.trial_begin;
  opts.trial_end = args.trial_end;
  opts.fingerprint = args.fingerprint;
  opts.trace_path = args.load_trace_path;
  opts.out_path = args.out_path;
  opts.ledger_in = args.ledger_in;
  opts.kill_after = args.kill_after;
  opts.hang_after = args.hang_after;
  opts.stop = &g_stop;
  if (opts.trace_path.empty() || opts.out_path.empty()) {
    std::cerr << "shard-worker needs --load-trace and --out\n";
    return 2;
  }
  return fault::RunShardWorker(MakeShardSpec(args), opts);
}

int CmdServe(const CliArgs& args) {
  service::ServerOptions opts;
  opts.socket_path = args.socket_path;
  opts.exec.cache_bytes = args.cache_mb * 1024 * 1024;
  opts.exec.gpu = args.cfg;
  service::Server server(opts);
  try {
    server.Start();
  } catch (const net::SocketError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return service::kExitBindFailed;
  }
  // Announce the socket (flushed): scripts wait for this line before
  // firing requests.
  std::cout << "dcrm serve: listening on " << server.socket_path()
            << std::endl;
  // Serve until SIGINT/SIGTERM or a `shutdown` request; either way the
  // drain answers everything already accepted.
  while (!g_stop.load(std::memory_order_relaxed) &&
         !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Join();
  std::cout << "dcrm serve: drained\n";
  return 0;
}

int CmdRequest(const CliArgs& args) {
  const std::optional<service::RequestType> type =
      service::RequestTypeFromName(args.request_type);
  if (!type.has_value()) return Usage();
  const bool needs_app = *type != service::RequestType::kStats &&
                         *type != service::RequestType::kShutdown;
  if (needs_app && args.app.empty()) return Usage();
  service::RequestSpec req;
  req.type = *type;
  req.campaign = MakeShardSpec(args);
  req.importance_sampling = args.importance_sampling;
  req.engine = args.engine_override;
  req.trace_path = args.load_trace_path;
  service::Response resp;
  try {
    service::Client client = service::Client::Connect(args.socket_path);
    resp = client.Call(req);
  } catch (const net::SocketError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return service::kExitConnectFailed;
  }
  if (!resp.error.empty()) std::cerr << resp.error << '\n';
  std::cout << resp.text;
  if (!resp.extra.empty()) std::cout << resp.extra << '\n';
  if (!args.csv_path.empty() && !resp.csv.empty()) {
    std::ofstream os(args.csv_path);
    if (!os) {
      std::cerr << "cannot write " << args.csv_path << '\n';
      return 1;
    }
    os << resp.csv;
  }
  // Machine-greppable service-path markers (CI asserts the second pass
  // of a repeated batch is all cache hits).
  std::cerr << "dcrm request: served cached=" << (resp.cached ? 1 : 0)
            << " batched=" << (resp.batched ? 1 : 0) << '\n';
  return resp.exit_code;
}

int CmdRecover(CliArgs& args) {
  // The sweep needs a detecting scheme; default to the paper's
  // duplication when none was requested.
  if (args.scheme == sim::Scheme::kNone) {
    args.scheme = sim::Scheme::kDetectOnly;
  }
  const std::vector<std::string> names =
      args.app.empty() ? apps::HotPatternAppNames()
                       : std::vector<std::string>{args.app};
  std::cout << "retry-budget sweep: scheme=" << sim::SchemeName(args.scheme)
            << " blocks=" << args.blocks << " bits=" << args.bits
            << " runs=" << args.runs << " seed=" << args.seed << "\n"
            << "budget 0 is the paper's detect-and-die pipeline; budget "
               "k adds tiered recovery with up to k re-executions.\n";
  for (const auto& name : names) {
    auto app = apps::MakeApp(name, args.scale);
    const auto profile = apps::ProfileApp(*app, args.cfg);
    const unsigned cover = args.cover.value_or(
        static_cast<unsigned>(profile.hot.coverage_order.size()));
    const auto setup =
        apps::MakeProtectionSetup(*app, profile, args.scheme, cover);
    const std::uint64_t run_cycles =
        apps::RunTiming(*app, profile, args.cfg, setup.plan).cycles;
    for (unsigned budget = 0; budget <= args.retries; ++budget) {
      // Fresh campaign per budget point: the repeat-offender memory
      // must not leak between sweep points.
      fault::FaultCampaign campaign(*app, profile, args.scheme, cover);
      fault::CampaignConfig cc;
      cc.target = args.target;
      cc.faulty_blocks = args.blocks;
      cc.bits_per_block = args.bits;
      cc.runs = args.runs;
      cc.seed = args.seed;
      cc.recovery.enabled = budget > 0;
      cc.recovery.max_retries = budget;
      const auto counts = campaign.Run(cc);
      const auto cost = core::ChargeRecovery(counts.recovery, counts.runs,
                                             run_cycles, args.cfg);
      std::cout << name << " budget=" << budget << " runs=" << counts.runs
                << ": sdc " << counts.sdc << ", detected " << counts.detected
                << ", recovered " << counts.recovered << ", masked "
                << counts.masked << ", due " << counts.due << ", crash "
                << counts.crash << " | arb " << counts.recovery.arbitrations
                << ", scrubs " << counts.recovery.scrubs << ", retired "
                << counts.recovery.retired_blocks << ", reexec "
                << counts.recovery.retries << ", escalations "
                << counts.recovery.escalations << ", overhead "
                << 100.0 * cost.per_run_overhead << "%\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  CliArgs args;
  args.command = argv[1];
  int i = 2;
  if (args.command == "profile" || args.command == "timing" ||
      args.command == "campaign" || args.command == "analyze" ||
      args.command == "avf" || args.command == "shard" ||
      args.command == "shard-worker") {
    if (argc < 3 || argv[2][0] == '-') return Usage();
    args.app = argv[2];
    i = 3;
  } else if (args.command == "recover") {
    if (argc >= 3 && argv[2][0] != '-') {
      args.app = argv[2];
      i = 3;
    }
  } else if (args.command == "request") {
    // dcrm request <type> [<app>] [flags]; stats/shutdown take no app.
    if (argc < 3 || argv[2][0] == '-') return Usage();
    args.request_type = argv[2];
    i = 3;
    if (argc >= 4 && argv[3][0] != '-') {
      args.app = argv[3];
      i = 4;
    }
  }
  try {
    for (; i < argc; ++i) {
      if (!ParseFlag(args, argv[i])) {
        std::cerr << "bad flag: " << argv[i] << '\n';
        return Usage();
      }
    }
    // Long-running commands drain at the next checkpointable boundary
    // on SIGINT/SIGTERM instead of dying mid-trial.
    if (args.command == "campaign" || args.command == "shard" ||
        args.command == "shard-worker" || args.command == "serve") {
      InstallStopHandler();
    }
    if (args.command == "apps") return CmdApps();
    if (args.command == "config") return CmdConfig(args);
    if (args.command == "profile") return CmdProfile(args);
    if (args.command == "timing") return CmdTiming(args);
    if (args.command == "campaign") return CmdCampaign(args);
    if (args.command == "recover") return CmdRecover(args);
    if (args.command == "analyze") return CmdAnalyze(args);
    if (args.command == "avf") return CmdAvf(args);
    if (args.command == "shard") return CmdShard(args, argv[0]);
    if (args.command == "shard-worker") return CmdShardWorker(args);
    if (args.command == "serve") return CmdServe(args);
    if (args.command == "request") return CmdRequest(args);
  } catch (const analysis::UnsoundPlanError& e) {
    // The campaign-launch gate refused an uncertifiable plan. Print
    // the full report so the misconfiguration is diagnosable, and exit
    // with the analyzer's violation code.
    std::cerr << "error: " << e.what() << '\n';
    analysis::WriteText(e.report(), std::cerr);
    return analysis::kExitViolations;
  } catch (const core::DetectionTerminated& e) {
    // A reliability outcome, not a tool failure: report what the
    // detection hardware saw and exit distinctly so scripts can tell
    // "the scheme fired" from "the tool broke".
    std::cerr << "reliability: detection terminated the run (scheme="
              << sim::SchemeName(args.scheme) << ", pc=" << e.pc()
              << ", addr=0x" << std::hex << e.addr() << std::dec << ")\n";
    return 3;
  } catch (const mem::DueError& e) {
    std::cerr << "reliability: SECDED uncorrectable error (addr=0x"
              << std::hex << e.addr() << std::dec << ")\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return Usage();
}
