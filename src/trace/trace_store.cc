#include "trace/trace_store.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dcrm::trace {

namespace {

[[noreturn]] void Malformed(const std::string& what) {
  throw std::invalid_argument("TraceStore: " + what);
}

// A prefix array must start at 0, end at the column it indexes, and
// never step backwards.
void CheckPrefix(const std::vector<std::uint32_t>& prefix,
                 std::size_t owners, std::size_t indexed,
                 const char* name) {
  if (prefix.size() != owners + 1) {
    Malformed(std::string(name) + " prefix size mismatch");
  }
  if (prefix.front() != 0 || prefix.back() != indexed) {
    Malformed(std::string(name) + " prefix does not span the column");
  }
  for (std::size_t i = 0; i + 1 < prefix.size(); ++i) {
    if (prefix[i] > prefix[i + 1]) {
      Malformed(std::string(name) + " prefix decreases");
    }
  }
}

}  // namespace

TraceStore::TraceStore(Columns cols) : cols_(std::move(cols)) {
  kernel_totals_.resize(cols_.kernels.size());
  for (std::size_t k = 0; k < cols_.kernels.size(); ++k) {
    const KernelMeta& m = cols_.kernels[k];
    KernelTotals& t = kernel_totals_[k];
    for (std::uint32_t w = m.warp_begin; w < m.warp_end; ++w) {
      if (w > m.warp_begin &&
          cols_.warp_id[w] <= cols_.warp_id[w - 1]) {
        t.warps_sorted = false;
      }
      const std::uint32_t i0 = cols_.warp_inst_begin[w];
      const std::uint32_t i1 = cols_.warp_inst_begin[w + 1];
      t.mem_insts += i1 - i0;
      for (std::uint32_t i = i0; i < i1; ++i) {
        const std::uint64_t txns =
            cols_.inst_block_begin[i + 1] - cols_.inst_block_begin[i];
        t.transactions += txns;
        if (cols_.inst_is_store[i] != 0) t.store_transactions += txns;
      }
    }
    total_insts_ += t.mem_insts;
    total_txns_ += t.transactions;
    total_store_txns_ += t.store_transactions;
  }
}

std::shared_ptr<const TraceStore> TraceStore::FromColumns(Columns cols) {
  const std::size_t warps = cols.warp_id.size();
  const std::size_t insts = cols.inst_pc.size();
  if (!cols.blocks_packed.empty() && !cols.blocks_wide.empty()) {
    Malformed("both packed and wide block pools are populated");
  }
  const std::size_t blocks = cols.NumBlocks();
  constexpr std::size_t kMax = std::numeric_limits<std::uint32_t>::max();
  if (warps >= kMax || insts >= kMax || blocks >= kMax) {
    Malformed("column exceeds 32-bit index range");
  }
  if (cols.warp_cta.size() != warps) Malformed("warp_cta size mismatch");
  if (cols.inst_is_store.size() != insts || cols.inst_lanes.size() != insts) {
    Malformed("instruction column size mismatch");
  }
  CheckPrefix(cols.warp_inst_begin, warps, insts, "warp_inst_begin");
  CheckPrefix(cols.inst_block_begin, insts, blocks, "inst_block_begin");
  // Kernel warp ranges must tile [0, warps) in order: consumers rely
  // on kernel k's warps being exactly its contiguous slice.
  std::uint32_t expect = 0;
  for (const KernelMeta& m : cols.kernels) {
    if (m.warp_begin != expect || m.warp_end < m.warp_begin) {
      Malformed("kernel warp ranges do not tile the warp column");
    }
    expect = m.warp_end;
  }
  if (expect != warps) {
    Malformed("kernel warp ranges do not cover the warp column");
  }
  for (const TraceEdge& e : cols.edges) {
    if (e.producer >= cols.kernels.size() ||
        e.consumer >= cols.kernels.size()) {
      Malformed("edge endpoint out of kernel range");
    }
    if (e.producer == e.consumer) Malformed("self-edge");
    if (e.object.empty()) Malformed("edge without an object");
  }
  return std::shared_ptr<const TraceStore>(new TraceStore(std::move(cols)));
}

std::uint64_t TraceStore::FootprintBytes() const {
  std::uint64_t bytes = 0;
  for (const KernelMeta& m : cols_.kernels) {
    bytes += sizeof(KernelMeta) + m.name.size();
  }
  bytes += cols_.warp_id.size() * sizeof(WarpId);
  bytes += cols_.warp_cta.size() * sizeof(std::uint32_t);
  bytes += cols_.warp_inst_begin.size() * sizeof(std::uint32_t);
  bytes += cols_.inst_pc.size() * sizeof(Pc);
  bytes += cols_.inst_is_store.size() * sizeof(std::uint8_t);
  bytes += cols_.inst_lanes.size() * sizeof(std::uint32_t);
  bytes += cols_.inst_block_begin.size() * sizeof(std::uint32_t);
  bytes += cols_.blocks_packed.size() * sizeof(std::uint32_t);
  bytes += cols_.blocks_wide.size() * sizeof(Addr);
  for (const TraceEdge& e : cols_.edges) {
    bytes += sizeof(TraceEdge) + e.object.size();
  }
  return bytes;
}

WarpSlice KernelView::FindWarp(WarpId id) const {
  const TraceStore::Columns& c = store_->cols_;
  const TraceStore::KernelMeta& m = c.kernels[index_];
  const auto begin = c.warp_id.begin() + m.warp_begin;
  const auto end = c.warp_id.begin() + m.warp_end;
  if (store_->kernel_totals_[index_].warps_sorted) {
    const auto it = std::lower_bound(begin, end, id);
    if (it != end && *it == id) {
      return WarpSlice(store_,
                       static_cast<std::uint32_t>(it - c.warp_id.begin()));
    }
  } else {
    const auto it = std::find(begin, end, id);
    if (it != end) {
      return WarpSlice(store_,
                       static_cast<std::uint32_t>(it - c.warp_id.begin()));
    }
  }
  return WarpSlice{};
}

void AssignBlockPool(TraceStore::Columns& cols, std::vector<Addr> addrs) {
  constexpr Addr kMaxIndex = std::numeric_limits<std::uint32_t>::max();
  const bool packable = std::all_of(
      addrs.begin(), addrs.end(), [](Addr a) {
        return a % kBlockSize == 0 && a / kBlockSize <= kMaxIndex;
      });
  cols.blocks_packed.clear();
  cols.blocks_wide.clear();
  if (packable) {
    cols.blocks_packed.reserve(addrs.size());
    for (const Addr a : addrs) {
      cols.blocks_packed.push_back(
          static_cast<std::uint32_t>(a / kBlockSize));
    }
  } else {
    cols.blocks_wide = std::move(addrs);
  }
}

std::shared_ptr<const TraceStore> BuildStore(
    std::span<const KernelTrace> kernels,
    std::vector<TraceStore::TraceEdge> edges) {
  TraceStore::Columns cols;
  cols.edges = std::move(edges);
  cols.kernels.reserve(kernels.size());
  std::size_t total_warps = 0;
  std::size_t total_insts = 0;
  std::size_t total_blocks = 0;
  for (const KernelTrace& kt : kernels) {
    total_warps += kt.warps.size();
    for (const WarpTrace& wt : kt.warps) {
      total_insts += wt.insts.size();
      for (const WarpMemInst& inst : wt.insts) {
        total_blocks += inst.blocks.size();
      }
    }
  }
  cols.warp_id.reserve(total_warps);
  cols.warp_cta.reserve(total_warps);
  cols.warp_inst_begin.reserve(total_warps + 1);
  cols.inst_pc.reserve(total_insts);
  cols.inst_is_store.reserve(total_insts);
  cols.inst_lanes.reserve(total_insts);
  cols.inst_block_begin.reserve(total_insts + 1);
  std::vector<Addr> pool;
  pool.reserve(total_blocks);

  cols.warp_inst_begin.push_back(0);
  cols.inst_block_begin.push_back(0);
  for (const KernelTrace& kt : kernels) {
    TraceStore::KernelMeta meta;
    meta.name = kt.name;
    meta.cfg = kt.cfg;
    meta.node_id = kt.node == kNoNode
                       ? static_cast<std::uint32_t>(cols.kernels.size())
                       : kt.node;
    meta.warp_begin = static_cast<std::uint32_t>(cols.warp_id.size());
    for (const WarpTrace& wt : kt.warps) {
      cols.warp_id.push_back(wt.warp);
      cols.warp_cta.push_back(wt.cta);
      for (const WarpMemInst& inst : wt.insts) {
        cols.inst_pc.push_back(inst.pc);
        cols.inst_is_store.push_back(
            inst.type == AccessType::kStore ? 1 : 0);
        cols.inst_lanes.push_back(inst.active_lanes);
        pool.insert(pool.end(), inst.blocks.begin(), inst.blocks.end());
        cols.inst_block_begin.push_back(
            static_cast<std::uint32_t>(pool.size()));
      }
      cols.warp_inst_begin.push_back(
          static_cast<std::uint32_t>(cols.inst_pc.size()));
    }
    meta.warp_end = static_cast<std::uint32_t>(cols.warp_id.size());
    cols.kernels.push_back(std::move(meta));
  }
  AssignBlockPool(cols, std::move(pool));
  return TraceStore::FromColumns(std::move(cols));
}

std::shared_ptr<const TraceStore> BuildStore(
    const std::vector<KernelTrace>& kernels,
    std::vector<TraceStore::TraceEdge> edges) {
  return BuildStore(std::span<const KernelTrace>(kernels),
                    std::move(edges));
}

std::vector<KernelTrace> ToKernelTraces(const TraceStore& store) {
  std::vector<KernelTrace> out;
  out.reserve(store.NumKernels());
  for (std::uint32_t k = 0; k < store.NumKernels(); ++k) {
    const KernelView kv = store.Kernel(k);
    KernelTrace kt;
    kt.name = kv.name();
    kt.node = store.columns().kernels[k].node_id;
    kt.cfg = kv.cfg();
    kt.warps.reserve(kv.NumWarps());
    for (std::uint32_t w = 0; w < kv.NumWarps(); ++w) {
      const WarpSlice ws = kv.Warp(w);
      WarpTrace wt;
      wt.warp = ws.warp();
      wt.cta = ws.cta();
      wt.insts.reserve(ws.NumInsts());
      for (std::uint32_t i = 0; i < ws.NumInsts(); ++i) {
        const InstView iv = ws.Inst(i);
        WarpMemInst inst;
        inst.pc = iv.pc;
        inst.type = iv.type;
        inst.active_lanes = iv.active_lanes;
        inst.blocks.assign(iv.blocks.begin(), iv.blocks.end());
        wt.insts.push_back(std::move(inst));
      }
      kt.warps.push_back(std::move(wt));
    }
    out.push_back(std::move(kt));
  }
  return out;
}

std::uint64_t LegacyFootprintBytes(std::span<const KernelTrace> kernels) {
  std::uint64_t bytes = 0;
  for (const KernelTrace& kt : kernels) {
    bytes += sizeof(KernelTrace) + kt.name.size();
    bytes += kt.warps.size() * sizeof(WarpTrace);
    for (const WarpTrace& wt : kt.warps) {
      bytes += wt.insts.size() * sizeof(WarpMemInst);
      for (const WarpMemInst& inst : wt.insts) {
        bytes += inst.blocks.size() * sizeof(Addr);
      }
    }
  }
  return bytes;
}

std::string KernelStatsLabel(const TraceStore& store, std::uint32_t kernel) {
  const KernelView kv = store.Kernel(kernel);
  if (kv.name().empty()) return "kernel#" + std::to_string(kernel);
  // A launch name reused by several nodes (chunked GEMMs of a graph
  // app) is keyed by its graph node id so the rows stay distinct;
  // unique names keep the bare label legacy consumers expect.
  std::uint32_t with_name = 0;
  for (std::uint32_t j = 0; j < store.NumKernels(); ++j) {
    if (store.Kernel(j).name() == kv.name()) ++with_name;
  }
  if (with_name <= 1) return kv.name();
  return kv.name() + "@" +
         std::to_string(store.columns().kernels[kernel].node_id);
}

std::vector<KernelStats> PerKernelStats(const TraceStore& store) {
  std::vector<KernelStats> out;
  out.reserve(store.NumKernels());
  for (std::uint32_t k = 0; k < store.NumKernels(); ++k) {
    const KernelView kv = store.Kernel(k);
    KernelStats s;
    s.label = KernelStatsLabel(store, k);
    s.node = store.columns().kernels[k].node_id;
    s.warps = kv.NumWarps();
    s.mem_insts = kv.TotalMemInsts();
    s.transactions = kv.TotalTransactions();
    s.store_transactions = kv.TotalStoreTransactions();
    out.push_back(std::move(s));
  }
  return out;
}

void WriteKernelStatsText(const TraceStore& store, std::ostream& os) {
  for (const KernelStats& s : PerKernelStats(store)) {
    os << "  kernel " << s.label << ": warps " << s.warps << ", mem insts "
       << s.mem_insts << ", txns " << s.transactions << " ("
       << s.store_transactions << " stores)\n";
  }
}

void WriteKernelStatsCsv(const TraceStore& store, std::ostream& os) {
  os << "kernel,node,warps,mem_insts,transactions,store_transactions\n";
  for (const KernelStats& s : PerKernelStats(store)) {
    os << s.label << ',' << s.node << ',' << s.warps << ',' << s.mem_insts
       << ',' << s.transactions << ',' << s.store_transactions << '\n';
  }
}

}  // namespace dcrm::trace
