#include "trace/trace.h"

#include <algorithm>

namespace dcrm::trace {

std::uint64_t KernelTrace::TotalMemInsts() const {
  std::uint64_t n = 0;
  for (const auto& w : warps) n += w.insts.size();
  return n;
}

std::uint64_t KernelTrace::TotalTransactions() const {
  std::uint64_t n = 0;
  for (const auto& w : warps) {
    for (const auto& i : w.insts) n += i.blocks.size();
  }
  return n;
}

std::uint64_t KernelTrace::TotalStoreTransactions() const {
  std::uint64_t n = 0;
  for (const auto& w : warps) {
    for (const auto& i : w.insts) {
      if (i.type == AccessType::kStore) n += i.blocks.size();
    }
  }
  return n;
}

std::vector<WarpMemInst> CoalesceStep(
    const std::vector<exec::AccessRecord>& lane_records) {
  std::vector<WarpMemInst> out;
  for (const auto& rec : lane_records) {
    // Find the instruction group for this record's (pc, type).
    auto it = std::find_if(out.begin(), out.end(), [&](const WarpMemInst& m) {
      return m.pc == rec.pc && m.type == rec.type;
    });
    if (it == out.end()) {
      out.push_back(WarpMemInst{rec.pc, rec.type, 0, {}});
      it = std::prev(out.end());
    }
    ++it->active_lanes;
    const Addr block = BlockBase(rec.addr);
    if (std::find(it->blocks.begin(), it->blocks.end(), block) ==
        it->blocks.end()) {
      it->blocks.push_back(block);
    }
  }
  return out;
}

}  // namespace dcrm::trace
