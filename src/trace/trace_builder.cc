#include "trace/trace_builder.h"

#include <algorithm>

namespace dcrm::trace {

void TraceBuilder::OnAccess(const exec::ThreadCoord& who,
                            const exec::AccessRecord& what) {
  auto& ws = lanes_[who.warp_global];
  ws.cta = who.cta_linear;
  ws.lane[who.lane].push_back(what);
}

KernelTrace TraceBuilder::Build(const exec::LaunchConfig& cfg) const {
  KernelTrace kt;
  kt.cfg = cfg;
  kt.warps.reserve(lanes_.size());
  for (const auto& [warp_id, ws] : lanes_) {
    WarpTrace wt;
    wt.warp = warp_id;
    wt.cta = ws.cta;
    std::size_t max_len = 0;
    for (const auto& lane : ws.lane) max_len = std::max(max_len, lane.size());
    std::vector<exec::AccessRecord> step;
    for (std::size_t k = 0; k < max_len; ++k) {
      step.clear();
      for (const auto& lane : ws.lane) {
        if (k < lane.size()) step.push_back(lane[k]);
      }
      auto insts = CoalesceStep(step);
      wt.insts.insert(wt.insts.end(), std::make_move_iterator(insts.begin()),
                      std::make_move_iterator(insts.end()));
    }
    kt.warps.push_back(std::move(wt));
  }
  std::sort(kt.warps.begin(), kt.warps.end(),
            [](const WarpTrace& a, const WarpTrace& b) {
              return a.warp < b.warp;
            });
  return kt;
}

}  // namespace dcrm::trace
