// Kernel-graph statistics over a trace store: per-edge data reuse.
//
// A store built from a DAG app carries producer → consumer data edges
// (TraceStore::Columns::edges). For each edge this module measures how
// many 128B transaction blocks the consumer actually re-reads of what
// the producer wrote — the inter-kernel working set that motivates
// cross-kernel (rather than per-launch) protection decisions.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace_store.h"

namespace dcrm::trace {

// One data edge with its measured reuse. `reused_blocks` is the size
// of the intersection between the producer's stored block set and the
// consumer's loaded block set; `reused_bytes` is that times the 128B
// block size. Labels follow KernelStatsLabel.
struct EdgeReuse {
  std::uint32_t producer = 0;
  std::uint32_t consumer = 0;
  std::string producer_label;
  std::string consumer_label;
  std::string object;
  std::uint64_t reused_blocks = 0;
  std::uint64_t reused_bytes = 0;
};

// Reuse for every edge in the store, in the columns' (producer,
// consumer, object) sort order. Empty for edge-free (legacy) stores.
std::vector<EdgeReuse> ComputeEdgeReuse(const TraceStore& store);

// Human-readable topology + reuse dump (`dcrm profile APP --graph`).
void WriteGraphText(const TraceStore& store, std::ostream& os);

// CSV header: producer,consumer,object,reused_blocks,reused_bytes
void WriteGraphCsv(const TraceStore& store, std::ostream& os);

}  // namespace dcrm::trace
