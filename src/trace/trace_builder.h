// AccessSink that records per-lane access streams during functional
// execution and coalesces them into a KernelTrace afterwards.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"

namespace dcrm::trace {

class TraceBuilder final : public exec::AccessSink {
 public:
  void OnAccess(const exec::ThreadCoord& who,
                const exec::AccessRecord& what) override;

  // Coalesces everything recorded so far into a trace for the given
  // launch configuration. Leaves the recorded streams intact.
  KernelTrace Build(const exec::LaunchConfig& cfg) const;

  void Clear() { lanes_.clear(); }

 private:
  struct WarpStreams {
    std::uint32_t cta = 0;
    std::array<std::vector<exec::AccessRecord>, kWarpSize> lane;
  };
  std::unordered_map<WarpId, WarpStreams> lanes_;
};

}  // namespace dcrm::trace
