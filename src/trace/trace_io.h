// Binary persistence for TraceStore (`dcrm profile --save-trace` /
// `--load-trace`): record the coalesced access streams once, then let
// campaigns, analyzers and benches reload them instead of re-profiling.
//
// Format (version 1, little-endian):
//   magic "dcrmtrc\n" (8 bytes), u32 version
//   varint: num_kernels, num_warps, num_insts, num_blocks
//   per kernel: varint name_len + bytes, 6 varints (grid/block dims),
//               varint warp count
//   per warp:   varint warp_id, cta, inst count
//   per inst:   varint pc, varint (active_lanes<<1 | is_store),
//               varint block count
//   block pool: zigzag varint delta vs. the previous block address —
//               warp access streams are local, so deltas are small
//               multiples of the 128B block size and encode in 1-2
//               bytes instead of 8
//   u64 FNV-1a checksum over everything above
//
// LoadTrace rejects bad magic, unknown versions, truncation and
// checksum mismatches with std::runtime_error; a loaded store is
// validated by TraceStore::FromColumns like any other.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "trace/trace_store.h"

namespace dcrm::trace {

void SaveTrace(const TraceStore& store, std::ostream& os);
std::string SaveTraceToString(const TraceStore& store);

// Atomic publication (temp file + rename, common/file_util.h): readers
// never observe a partially written trace. Throws std::runtime_error
// on I/O failure.
void SaveTraceFile(const TraceStore& store, const std::string& path);

// Throws std::runtime_error on malformed input.
std::shared_ptr<const TraceStore> LoadTrace(std::istream& is);
std::shared_ptr<const TraceStore> LoadTraceFromString(const std::string& data);
std::shared_ptr<const TraceStore> LoadTraceFile(const std::string& path);

// Checksum-tail fast path. A full LoadTrace costs two passes over the
// artifact (the FNV-1a validation pass, then the decode pass); callers
// that only need the artifact's *identity* — the service's
// content-addressed cache keys, or an "is this the store I already
// hold?" probe — read just the envelope: leading magic + version, and
// the stored trailing checksum. O(1) I/O regardless of trace size.
// The payload itself is NOT validated; a full load (or the envelope's
// checksum match against an already-validated copy) still guards every
// first decode.
struct TraceTailProbe {
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;  // the stored trailing FNV-1a
};

// Probe an in-memory artifact. Throws std::runtime_error on bad
// magic, unknown version, or truncation below the minimum envelope.
TraceTailProbe ProbeTraceTailBytes(std::string_view data);

// Probe a saved artifact reading only the first 12 and last 8 bytes.
// Throws std::runtime_error when unreadable or malformed.
TraceTailProbe ProbeTraceTail(const std::string& path);

}  // namespace dcrm::trace
