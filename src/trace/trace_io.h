// Binary persistence for TraceStore (`dcrm profile --save-trace` /
// `--load-trace`): record the coalesced access streams once, then let
// campaigns, analyzers and benches reload them instead of re-profiling.
//
// Format (version 1, little-endian):
//   magic "dcrmtrc\n" (8 bytes), u32 version
//   varint: num_kernels, num_warps, num_insts, num_blocks
//   per kernel: varint name_len + bytes, 6 varints (grid/block dims),
//               varint warp count
//   per warp:   varint warp_id, cta, inst count
//   per inst:   varint pc, varint (active_lanes<<1 | is_store),
//               varint block count
//   block pool: zigzag varint delta vs. the previous block address —
//               warp access streams are local, so deltas are small
//               multiples of the 128B block size and encode in 1-2
//               bytes instead of 8
//   u64 FNV-1a checksum over everything above
//
// LoadTrace rejects bad magic, unknown versions, truncation and
// checksum mismatches with std::runtime_error; a loaded store is
// validated by TraceStore::FromColumns like any other.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/trace_store.h"

namespace dcrm::trace {

void SaveTrace(const TraceStore& store, std::ostream& os);
std::string SaveTraceToString(const TraceStore& store);

// Atomic publication (temp file + rename, common/file_util.h): readers
// never observe a partially written trace. Throws std::runtime_error
// on I/O failure.
void SaveTraceFile(const TraceStore& store, const std::string& path);

// Throws std::runtime_error on malformed input.
std::shared_ptr<const TraceStore> LoadTrace(std::istream& is);
std::shared_ptr<const TraceStore> LoadTraceFromString(const std::string& data);
std::shared_ptr<const TraceStore> LoadTraceFile(const std::string& path);

}  // namespace dcrm::trace
