// Columnar, immutable trace artifact shared by every trace consumer.
//
// The nested-AoS trace::KernelTrace (vector of WarpTrace of WarpMemInst,
// each instruction owning its own heap vector of block addresses) is
// what the trace *builder* produces; it is a poor shape to hand around:
// every consumer — timing replay, static analyzer, access profiling,
// fault campaigns — re-walks it with three pointer indirections per
// instruction, and a parallel campaign's workers would each keep a full
// copy alive. TraceStore flattens the same information into
// structure-of-arrays columns:
//
//   kernels:  name, launch config, [warp_begin, warp_end) range
//   warps:    id, cta, inst_begin prefix array (size NumWarps()+1)
//   insts:    pc, type, active lanes, block_begin prefix array
//   blocks:   one contiguous pool of transaction addresses, stored as
//             32-bit block indices (address / 128) whenever every
//             address is 128B-aligned — the coalescer guarantees that,
//             so builder output always packs; BlockSpan decodes back
//             to Addr on the fly
//
// A store is built once (BuildStore / trace_io::LoadTrace), is
// immutable afterwards, and is passed around as
// std::shared_ptr<const TraceStore> — parallel campaign workers all
// read the same bytes, which is safe precisely because nothing can
// write them (the determinism contract of fault/parallel_campaign.h
// needs every worker to see identical traces; sharing one immutable
// object makes that true by construction instead of by copy).
//
// Iteration order is the legacy order exactly — kernels in launch
// order, warps in the builder's sorted-by-id order, instructions and
// blocks in recorded order — so replay schedules, analyzer findings
// and campaign statistics are bit-identical to the AoS representation.
//
// Consumers iterate through the zero-allocation cursor API
// (KernelView -> WarpSlice -> InstView); no per-step heap traffic, and
// an instruction's blocks come back as a span into the shared pool.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "exec/kernel.h"
#include "trace/trace.h"

namespace dcrm::trace {

class TraceStore;
class KernelView;

// Read-only view over one instruction's slice of the block pool.
// The pool stores 32-bit block indices (address / 128) whenever every
// address is 128B-aligned — the coalescer's invariant, so effectively
// always — halving the dominant column; unaligned hand-built traces
// fall back to raw 64-bit addresses. The view decodes on the fly, so
// consumers still iterate plain Addr values.
class BlockSpan {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Addr;
    using difference_type = std::ptrdiff_t;
    using pointer = const Addr*;
    using reference = Addr;

    iterator() = default;
    Addr operator*() const {
      return packed_ != nullptr
                 ? static_cast<Addr>(packed_[i_]) * kBlockSize
                 : wide_[i_];
    }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++i_;
      return t;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    friend class BlockSpan;
    iterator(const std::uint32_t* packed, const Addr* wide, std::size_t i)
        : packed_(packed), wide_(wide), i_(i) {}

    const std::uint32_t* packed_ = nullptr;
    const Addr* wide_ = nullptr;
    std::size_t i_ = 0;
  };

  BlockSpan() = default;

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  Addr operator[](std::size_t i) const {
    return packed_ != nullptr ? static_cast<Addr>(packed_[i]) * kBlockSize
                              : wide_[i];
  }
  Addr front() const { return (*this)[0]; }
  iterator begin() const { return iterator(packed_, wide_, 0); }
  iterator end() const { return iterator(packed_, wide_, n_); }

 private:
  friend class WarpSlice;
  BlockSpan(const std::uint32_t* packed, const Addr* wide, std::size_t n)
      : packed_(packed), wide_(wide), n_(n) {}

  const std::uint32_t* packed_ = nullptr;
  const Addr* wide_ = nullptr;
  std::size_t n_ = 0;
};

// One warp-level memory instruction, viewed in place.
struct InstView {
  Pc pc = 0;
  AccessType type = AccessType::kLoad;
  std::uint32_t active_lanes = 0;
  // Unique 128B-aligned transaction addresses, in recorded (first
  // touch) order — a window into the store's block pool.
  BlockSpan blocks;
};

// Cursor over one warp's instruction range. Default-constructed, it is
// a warp with no memory instructions — the timing simulator uses that
// for warp slots the trace never recorded (they occupy occupancy but
// issue nothing), replacing the old side-allocated empty WarpTraces.
class WarpSlice {
 public:
  WarpSlice() = default;

  WarpId warp() const { return warp_; }
  std::uint32_t cta() const { return cta_; }
  std::uint32_t NumInsts() const { return inst_end_ - inst_begin_; }
  bool Empty() const { return inst_begin_ == inst_end_; }
  InstView Inst(std::uint32_t i) const;  // i < NumInsts()

 private:
  friend class KernelView;

  WarpSlice(const TraceStore* store, std::uint32_t warp_index);

  const TraceStore* store_ = nullptr;
  std::uint32_t inst_begin_ = 0;
  std::uint32_t inst_end_ = 0;
  WarpId warp_ = 0;
  std::uint32_t cta_ = 0;
};

// Cursor over one kernel: its traced warps and build-time cached
// totals (the analyzer and the benches query totals repeatedly; a
// store never re-scans to answer them).
class KernelView {
 public:
  const std::string& name() const;
  const exec::LaunchConfig& cfg() const;
  std::uint32_t index() const { return index_; }

  std::uint32_t NumWarps() const;
  WarpSlice Warp(std::uint32_t i) const;  // i-th traced warp
  // Warp with the given grid-global id; empty slice if the warp never
  // touched memory. Binary search when the builder's sorted order
  // holds, linear otherwise (hand-built stores).
  WarpSlice FindWarp(WarpId id) const;

  std::uint64_t TotalMemInsts() const;
  std::uint64_t TotalTransactions() const;
  std::uint64_t TotalStoreTransactions() const;

 private:
  friend class TraceStore;

  KernelView(const TraceStore* store, std::uint32_t index)
      : store_(store), index_(index) {}

  const TraceStore* store_;
  std::uint32_t index_;
};

class TraceStore {
 public:
  struct KernelMeta {
    std::string name;
    exec::LaunchConfig cfg;
    // Range into the warp columns.
    std::uint32_t warp_begin = 0;
    std::uint32_t warp_end = 0;
    // Kernel-graph node id of this launch. Equal to the kernel's index
    // for chain-shimmed (legacy) apps and hand-built traces; may
    // differ when a DAG's topological order departs from node ids.
    std::uint32_t node_id = 0;

    friend bool operator==(const KernelMeta& a, const KernelMeta& b) {
      return a.name == b.name && a.cfg.grid == b.cfg.grid &&
             a.cfg.block == b.cfg.block && a.warp_begin == b.warp_begin &&
             a.warp_end == b.warp_end && a.node_id == b.node_id;
    }
  };

  // One producer → consumer data dependency between two store kernels
  // (indices into the kernels column), labeled with the object that
  // flows along it. Chain-shim ordering edges are NOT recorded — only
  // genuine data edges — so legacy stores carry none and their
  // serialized bytes (and campaign fingerprints) are unchanged.
  struct TraceEdge {
    std::uint32_t producer = 0;
    std::uint32_t consumer = 0;
    std::string object;

    friend bool operator==(const TraceEdge&, const TraceEdge&) = default;
  };

  // The raw columns. The only way to make a store is to hand a filled
  // Columns to FromColumns, which validates the cross-column indices
  // and computes the cached totals; there are no mutators afterwards.
  struct Columns {
    std::vector<KernelMeta> kernels;
    // Per-warp columns (size NumWarps(); inst_begin has one extra
    // sentinel entry so warp w's instructions are
    // [inst_begin[w], inst_begin[w+1])).
    std::vector<WarpId> warp_id;
    std::vector<std::uint32_t> warp_cta;
    std::vector<std::uint32_t> warp_inst_begin;
    // Per-instruction columns (block_begin carries the same sentinel).
    std::vector<Pc> inst_pc;
    std::vector<std::uint8_t> inst_is_store;
    std::vector<std::uint32_t> inst_lanes;
    std::vector<std::uint32_t> inst_block_begin;
    // One contiguous transaction-address pool. At most one of the two
    // vectors is non-empty: packed 32-bit block indices when every
    // address is 128B-aligned and its index fits 32 bits (true for all
    // builder output), raw 64-bit addresses otherwise. Fill through
    // AssignBlockPool; read through NumBlocks()/BlockAt().
    std::vector<std::uint32_t> blocks_packed;
    std::vector<Addr> blocks_wide;
    // Producer → consumer data edges, sorted (producer, consumer,
    // object). Empty for chain-shimmed apps and hand-built traces.
    std::vector<TraceEdge> edges;

    std::size_t NumBlocks() const {
      return blocks_packed.empty() ? blocks_wide.size()
                                   : blocks_packed.size();
    }
    Addr BlockAt(std::size_t i) const {
      return blocks_packed.empty()
                 ? blocks_wide[i]
                 : static_cast<Addr>(blocks_packed[i]) * kBlockSize;
    }

    friend bool operator==(const Columns&, const Columns&) = default;
  };

  // Validates and freezes the columns. Throws std::invalid_argument on
  // any cross-column inconsistency (ragged prefix arrays, kernel warp
  // ranges that do not tile the warp columns, counts past 2^32-1).
  static std::shared_ptr<const TraceStore> FromColumns(Columns cols);

  std::uint32_t NumKernels() const {
    return static_cast<std::uint32_t>(cols_.kernels.size());
  }
  KernelView Kernel(std::uint32_t k) const { return KernelView(this, k); }

  std::uint32_t NumWarps() const {
    return static_cast<std::uint32_t>(cols_.warp_id.size());
  }
  std::uint32_t NumInsts() const {
    return static_cast<std::uint32_t>(cols_.inst_pc.size());
  }
  std::uint32_t NumBlockAddrs() const {
    return static_cast<std::uint32_t>(cols_.NumBlocks());
  }

  // Whole-store totals, cached at build time.
  std::uint64_t TotalMemInsts() const { return total_insts_; }
  std::uint64_t TotalTransactions() const { return total_txns_; }
  std::uint64_t TotalStoreTransactions() const { return total_store_txns_; }

  // Bytes of the columnar payload (arrays + kernel metadata). The
  // apples-to-apples legacy number is LegacyFootprintBytes below.
  std::uint64_t FootprintBytes() const;

  const Columns& columns() const { return cols_; }

  friend bool operator==(const TraceStore& a, const TraceStore& b) {
    return a.cols_ == b.cols_;
  }

 private:
  friend class WarpSlice;
  friend class KernelView;

  struct KernelTotals {
    std::uint64_t mem_insts = 0;
    std::uint64_t transactions = 0;
    std::uint64_t store_transactions = 0;
    bool warps_sorted = true;  // enables binary-search FindWarp
  };

  explicit TraceStore(Columns cols);

  Columns cols_;
  std::vector<KernelTotals> kernel_totals_;
  std::uint64_t total_insts_ = 0;
  std::uint64_t total_txns_ = 0;
  std::uint64_t total_store_txns_ = 0;
};

// Installs `addrs` as the columns' block pool, packing into 32-bit
// block indices when every address is 128B-aligned and in 32-bit index
// range, and falling back to raw 64-bit storage otherwise.
void AssignBlockPool(TraceStore::Columns& cols, std::vector<Addr> addrs);

// Flattens builder/hand-built kernel traces into a store, preserving
// kernel, warp, instruction and block order exactly. A trace with
// node == kNoNode gets its kernel index as node_id. `edges` carries
// the graph's data edges (kernel indices), if any.
std::shared_ptr<const TraceStore> BuildStore(
    std::span<const KernelTrace> kernels,
    std::vector<TraceStore::TraceEdge> edges = {});
std::shared_ptr<const TraceStore> BuildStore(
    const std::vector<KernelTrace>& kernels,
    std::vector<TraceStore::TraceEdge> edges = {});

// Reconstructs the legacy AoS representation (round-trip inverse of
// BuildStore); used by the RMT baseline transform and equivalence
// tests.
std::vector<KernelTrace> ToKernelTraces(const TraceStore& store);

// In-memory bytes of the legacy AoS representation (struct sizes plus
// owned heap buffers, counted at size, not capacity — a conservative
// lower bound that ignores per-vector allocator overhead).
std::uint64_t LegacyFootprintBytes(std::span<const KernelTrace> kernels);

// Per-kernel statistics from the cached totals — the one shared helper
// behind `dcrm analyze` (text + CSV) and campaign result reporting.
// Rows are keyed on (graph node id, launch name): a name that appears
// on several launches (chunked GEMMs) is disambiguated as "name@node",
// so repeated kernels never collide into one indistinguishable row;
// unique names keep their bare label (legacy output unchanged).
struct KernelStats {
  std::string label;  // name, "name@node" when repeated, "kernel#N" unnamed
  std::uint32_t node = 0;  // graph node id
  std::uint32_t warps = 0;
  std::uint64_t mem_insts = 0;
  std::uint64_t transactions = 0;
  std::uint64_t store_transactions = 0;
};
std::vector<KernelStats> PerKernelStats(const TraceStore& store);
// Shared labeling rule (also used by the vulnerability per-kernel
// rollup): bare name when unique in the store, "name@node" when the
// name repeats, "kernel#index" when unnamed.
std::string KernelStatsLabel(const TraceStore& store, std::uint32_t kernel);
void WriteKernelStatsText(const TraceStore& store, std::ostream& os);
// CSV header: kernel,node,warps,mem_insts,transactions,store_transactions
void WriteKernelStatsCsv(const TraceStore& store, std::ostream& os);

// ---- inline cursor implementations (the replay hot path) ----

inline WarpSlice::WarpSlice(const TraceStore* store, std::uint32_t warp_index)
    : store_(store),
      inst_begin_(store->cols_.warp_inst_begin[warp_index]),
      inst_end_(store->cols_.warp_inst_begin[warp_index + 1]),
      warp_(store->cols_.warp_id[warp_index]),
      cta_(store->cols_.warp_cta[warp_index]) {}

inline InstView WarpSlice::Inst(std::uint32_t i) const {
  const TraceStore::Columns& c = store_->cols_;
  const std::uint32_t idx = inst_begin_ + i;
  InstView v;
  v.pc = c.inst_pc[idx];
  v.type = c.inst_is_store[idx] != 0 ? AccessType::kStore : AccessType::kLoad;
  v.active_lanes = c.inst_lanes[idx];
  const std::uint32_t b0 = c.inst_block_begin[idx];
  const std::uint32_t b1 = c.inst_block_begin[idx + 1];
  v.blocks = c.blocks_packed.empty()
                 ? BlockSpan(nullptr, c.blocks_wide.data() + b0, b1 - b0)
                 : BlockSpan(c.blocks_packed.data() + b0, nullptr, b1 - b0);
  return v;
}

inline const std::string& KernelView::name() const {
  return store_->cols_.kernels[index_].name;
}
inline const exec::LaunchConfig& KernelView::cfg() const {
  return store_->cols_.kernels[index_].cfg;
}
inline std::uint32_t KernelView::NumWarps() const {
  const auto& m = store_->cols_.kernels[index_];
  return m.warp_end - m.warp_begin;
}
inline WarpSlice KernelView::Warp(std::uint32_t i) const {
  return WarpSlice(store_, store_->cols_.kernels[index_].warp_begin + i);
}
inline std::uint64_t KernelView::TotalMemInsts() const {
  return store_->kernel_totals_[index_].mem_insts;
}
inline std::uint64_t KernelView::TotalTransactions() const {
  return store_->kernel_totals_[index_].transactions;
}
inline std::uint64_t KernelView::TotalStoreTransactions() const {
  return store_->kernel_totals_[index_].store_transactions;
}

}  // namespace dcrm::trace
