#include "trace/graph_stats.h"

#include <unordered_map>
#include <unordered_set>

#include "common/types.h"

namespace dcrm::trace {

namespace {

// Block sets of one kernel, split by access direction. Built lazily:
// only kernels that appear on an edge pay the walk.
struct KernelBlocks {
  std::unordered_set<Addr> stored;
  std::unordered_set<Addr> loaded;
};

KernelBlocks CollectBlocks(const TraceStore& store, std::uint32_t kernel) {
  KernelBlocks out;
  const KernelView kv = store.Kernel(kernel);
  for (std::uint32_t w = 0; w < kv.NumWarps(); ++w) {
    const WarpSlice ws = kv.Warp(w);
    for (std::uint32_t i = 0; i < ws.NumInsts(); ++i) {
      const InstView inst = ws.Inst(i);
      auto& set =
          inst.type == AccessType::kStore ? out.stored : out.loaded;
      for (const Addr a : inst.blocks) set.insert(a);
    }
  }
  return out;
}

}  // namespace

std::vector<EdgeReuse> ComputeEdgeReuse(const TraceStore& store) {
  std::vector<EdgeReuse> out;
  const auto& edges = store.columns().edges;
  if (edges.empty()) return out;
  out.reserve(edges.size());

  std::unordered_map<std::uint32_t, KernelBlocks> cache;
  const auto blocks_of = [&](std::uint32_t k) -> const KernelBlocks& {
    auto it = cache.find(k);
    if (it == cache.end()) {
      it = cache.emplace(k, CollectBlocks(store, k)).first;
    }
    return it->second;
  };

  for (const TraceStore::TraceEdge& e : edges) {
    EdgeReuse r;
    r.producer = e.producer;
    r.consumer = e.consumer;
    r.producer_label = KernelStatsLabel(store, e.producer);
    r.consumer_label = KernelStatsLabel(store, e.consumer);
    r.object = e.object;
    const KernelBlocks& prod = blocks_of(e.producer);
    const KernelBlocks& cons = blocks_of(e.consumer);
    // Iterate the smaller set against the larger.
    const auto& small =
        prod.stored.size() <= cons.loaded.size() ? prod.stored : cons.loaded;
    const auto& large =
        prod.stored.size() <= cons.loaded.size() ? cons.loaded : prod.stored;
    for (const Addr a : small) {
      if (large.contains(a)) ++r.reused_blocks;
    }
    r.reused_bytes = r.reused_blocks * kBlockSize;
    out.push_back(std::move(r));
  }
  return out;
}

void WriteGraphText(const TraceStore& store, std::ostream& os) {
  const auto reuse = ComputeEdgeReuse(store);
  os << "kernel graph: " << store.NumKernels() << " kernels, "
     << reuse.size() << " data edges\n";
  for (std::uint32_t k = 0; k < store.NumKernels(); ++k) {
    os << "  node " << store.columns().kernels[k].node_id << "  "
       << KernelStatsLabel(store, k) << "  warps="
       << store.Kernel(k).NumWarps() << "\n";
  }
  if (reuse.empty()) {
    os << "  (no data edges: single-kernel or chain-shimmed app)\n";
    return;
  }
  for (const EdgeReuse& r : reuse) {
    os << "  " << r.producer_label << " -> " << r.consumer_label << "  ["
       << r.object << "]  reused_blocks=" << r.reused_blocks
       << " reused_bytes=" << r.reused_bytes << "\n";
  }
}

void WriteGraphCsv(const TraceStore& store, std::ostream& os) {
  os << "producer,consumer,object,reused_blocks,reused_bytes\n";
  for (const EdgeReuse& r : ComputeEdgeReuse(store)) {
    os << r.producer_label << ',' << r.consumer_label << ',' << r.object
       << ',' << r.reused_blocks << ',' << r.reused_bytes << '\n';
  }
}

}  // namespace dcrm::trace
