#include "trace/trace_io.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>
#include <stdexcept>

#include "common/binio.h"
#include "common/file_util.h"

namespace dcrm::trace {

namespace {

constexpr char kMagic[8] = {'d', 'c', 'r', 'm', 't', 'r', 'c', '\n'};
constexpr std::uint32_t kVersion = 1;
// Version 2 adds graph metadata: a per-kernel node id and a trailing
// producer/consumer edge section. It is written only when the store
// actually carries nontrivial metadata, so every chain-shimmed legacy
// app keeps emitting byte-identical version-1 artifacts (and their
// campaign fingerprints hold).
constexpr std::uint32_t kVersionGraph = 2;
constexpr const char* kContext = "trace file";

bool HasGraphMeta(const TraceStore::Columns& c) {
  if (!c.edges.empty()) return true;
  for (std::size_t k = 0; k < c.kernels.size(); ++k) {
    if (c.kernels[k].node_id != k) return true;
  }
  return false;
}

[[noreturn]] void Corrupt(const std::string& what) {
  throw std::runtime_error(std::string(kContext) + ": " + what);
}

// Counts must agree with what their varints later imply, and feeding
// them to vector::reserve unchecked would let a short corrupt file
// demand gigabytes; cap against the payload size (every element costs
// at least one encoded byte).
std::size_t CheckedCount(std::uint64_t n, std::size_t payload,
                         const char* what) {
  if (n > payload) Corrupt(std::string("implausible ") + what + " count");
  return static_cast<std::size_t>(n);
}

}  // namespace

std::string SaveTraceToString(const TraceStore& store) {
  using bin::PutVarint;
  const TraceStore::Columns& c = store.columns();
  std::string out;
  out.reserve(64 + c.inst_pc.size() * 3 + c.NumBlocks() * 2);
  const bool graph_meta = HasGraphMeta(c);
  out.append(kMagic, sizeof(kMagic));
  bin::PutU32(out, graph_meta ? kVersionGraph : kVersion);
  PutVarint(out, c.kernels.size());
  PutVarint(out, c.warp_id.size());
  PutVarint(out, c.inst_pc.size());
  PutVarint(out, c.NumBlocks());
  for (const TraceStore::KernelMeta& m : c.kernels) {
    PutVarint(out, m.name.size());
    out.append(m.name);
    PutVarint(out, m.cfg.grid.x);
    PutVarint(out, m.cfg.grid.y);
    PutVarint(out, m.cfg.grid.z);
    PutVarint(out, m.cfg.block.x);
    PutVarint(out, m.cfg.block.y);
    PutVarint(out, m.cfg.block.z);
    PutVarint(out, m.warp_end - m.warp_begin);
    if (graph_meta) PutVarint(out, m.node_id);
  }
  for (std::size_t w = 0; w < c.warp_id.size(); ++w) {
    PutVarint(out, c.warp_id[w]);
    PutVarint(out, c.warp_cta[w]);
    PutVarint(out, c.warp_inst_begin[w + 1] - c.warp_inst_begin[w]);
  }
  for (std::size_t i = 0; i < c.inst_pc.size(); ++i) {
    PutVarint(out, c.inst_pc[i]);
    PutVarint(out, (static_cast<std::uint64_t>(c.inst_lanes[i]) << 1) |
                       (c.inst_is_store[i] != 0 ? 1 : 0));
    PutVarint(out, c.inst_block_begin[i + 1] - c.inst_block_begin[i]);
  }
  // The on-disk form carries raw addresses (decoded from the packed
  // pool if need be), so the format is independent of the in-memory
  // packing decision.
  Addr prev = 0;
  for (std::size_t b = 0; b < c.NumBlocks(); ++b) {
    const Addr addr = c.BlockAt(b);
    PutVarint(out, bin::ZigZag(static_cast<std::int64_t>(addr) -
                               static_cast<std::int64_t>(prev)));
    prev = addr;
  }
  if (graph_meta) {
    PutVarint(out, c.edges.size());
    for (const TraceStore::TraceEdge& e : c.edges) {
      PutVarint(out, e.producer);
      PutVarint(out, e.consumer);
      PutVarint(out, e.object.size());
      out.append(e.object);
    }
  }
  bin::AppendChecksum(out);
  return out;
}

void SaveTrace(const TraceStore& store, std::ostream& os) {
  const std::string data = SaveTraceToString(store);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
}

void SaveTraceFile(const TraceStore& store, const std::string& path) {
  WriteFileAtomic(path, SaveTraceToString(store));
}

std::shared_ptr<const TraceStore> LoadTraceFromString(
    const std::string& data) {
  const std::string_view body = bin::CheckedPayload(
      data, std::string_view(kMagic, sizeof(kMagic)), kContext);

  bin::Reader r(body, kContext);
  r.Skip(sizeof(kMagic));
  const std::uint32_t version = r.U32();
  if (version != kVersion && version != kVersionGraph) {
    Corrupt("unsupported version");
  }
  const bool graph_meta = version == kVersionGraph;

  const std::size_t payload = body.size();
  const std::size_t num_kernels =
      CheckedCount(r.Varint(), payload, "kernel");
  const std::size_t num_warps = CheckedCount(r.Varint(), payload, "warp");
  const std::size_t num_insts =
      CheckedCount(r.Varint(), payload, "instruction");
  const std::size_t num_blocks = CheckedCount(r.Varint(), payload, "block");

  TraceStore::Columns c;
  c.kernels.reserve(num_kernels);
  c.warp_id.reserve(num_warps);
  c.warp_cta.reserve(num_warps);
  c.warp_inst_begin.reserve(num_warps + 1);
  c.inst_pc.reserve(num_insts);
  c.inst_is_store.reserve(num_insts);
  c.inst_lanes.reserve(num_insts);
  c.inst_block_begin.reserve(num_insts + 1);
  std::vector<Addr> pool;
  pool.reserve(num_blocks);

  std::uint64_t warp_acc = 0;
  for (std::size_t k = 0; k < num_kernels; ++k) {
    TraceStore::KernelMeta m;
    const std::size_t name_len =
        CheckedCount(r.Varint(), payload, "kernel-name");
    m.name = r.Bytes(name_len);
    m.cfg.grid.x = static_cast<std::uint32_t>(r.Varint());
    m.cfg.grid.y = static_cast<std::uint32_t>(r.Varint());
    m.cfg.grid.z = static_cast<std::uint32_t>(r.Varint());
    m.cfg.block.x = static_cast<std::uint32_t>(r.Varint());
    m.cfg.block.y = static_cast<std::uint32_t>(r.Varint());
    m.cfg.block.z = static_cast<std::uint32_t>(r.Varint());
    m.warp_begin = static_cast<std::uint32_t>(warp_acc);
    warp_acc += r.Varint();
    if (warp_acc > num_warps) Corrupt("kernel warp count overruns total");
    m.warp_end = static_cast<std::uint32_t>(warp_acc);
    m.node_id = graph_meta ? static_cast<std::uint32_t>(r.Varint())
                           : static_cast<std::uint32_t>(k);
    c.kernels.push_back(std::move(m));
  }
  if (warp_acc != num_warps) Corrupt("kernel warp counts disagree");

  std::uint64_t inst_acc = 0;
  c.warp_inst_begin.push_back(0);
  for (std::size_t w = 0; w < num_warps; ++w) {
    c.warp_id.push_back(static_cast<WarpId>(r.Varint()));
    c.warp_cta.push_back(static_cast<std::uint32_t>(r.Varint()));
    inst_acc += r.Varint();
    if (inst_acc > num_insts) Corrupt("warp inst count overruns total");
    c.warp_inst_begin.push_back(static_cast<std::uint32_t>(inst_acc));
  }
  if (inst_acc != num_insts) Corrupt("warp inst counts disagree");

  std::uint64_t block_acc = 0;
  c.inst_block_begin.push_back(0);
  for (std::size_t i = 0; i < num_insts; ++i) {
    c.inst_pc.push_back(static_cast<Pc>(r.Varint()));
    const std::uint64_t packed = r.Varint();
    c.inst_is_store.push_back(static_cast<std::uint8_t>(packed & 1));
    c.inst_lanes.push_back(static_cast<std::uint32_t>(packed >> 1));
    block_acc += r.Varint();
    if (block_acc > num_blocks) Corrupt("inst block count overruns total");
    c.inst_block_begin.push_back(static_cast<std::uint32_t>(block_acc));
  }
  if (block_acc != num_blocks) Corrupt("inst block counts disagree");

  std::int64_t prev = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    prev += bin::UnZigZag(r.Varint());
    if (prev < 0) Corrupt("negative block address");
    pool.push_back(static_cast<Addr>(prev));
  }
  if (graph_meta) {
    const std::size_t num_edges = CheckedCount(r.Varint(), payload, "edge");
    c.edges.reserve(num_edges);
    for (std::size_t e = 0; e < num_edges; ++e) {
      TraceStore::TraceEdge edge;
      edge.producer = static_cast<std::uint32_t>(r.Varint());
      edge.consumer = static_cast<std::uint32_t>(r.Varint());
      const std::size_t obj_len =
          CheckedCount(r.Varint(), payload, "edge-object");
      edge.object = r.Bytes(obj_len);
      c.edges.push_back(std::move(edge));
    }
  }
  if (r.remaining() != 0) Corrupt("trailing bytes");
  AssignBlockPool(c, std::move(pool));

  try {
    return TraceStore::FromColumns(std::move(c));
  } catch (const std::invalid_argument& e) {
    Corrupt(e.what());
  }
}

std::shared_ptr<const TraceStore> LoadTrace(std::istream& is) {
  const std::string data((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  return LoadTraceFromString(data);
}

std::shared_ptr<const TraceStore> LoadTraceFile(const std::string& path) {
  return LoadTraceFromString(ReadFileToString(path));
}

namespace {

// Smallest well-formed artifact: magic + version + four count varints
// (at least one byte each) + trailing checksum.
constexpr std::size_t kMinArtifactBytes = sizeof(kMagic) + 4 + 4 + 8;

TraceTailProbe ProbeParts(std::string_view head, std::string_view tail,
                          std::uint64_t total_size) {
  if (total_size < kMinArtifactBytes) Corrupt("truncated");
  if (head.size() < sizeof(kMagic) + 4 || tail.size() != 8) {
    Corrupt("truncated");
  }
  if (head.substr(0, sizeof(kMagic)) !=
      std::string_view(kMagic, sizeof(kMagic))) {
    Corrupt("bad magic");
  }
  bin::Reader hr(head, kContext);
  hr.Skip(sizeof(kMagic));
  TraceTailProbe probe;
  probe.version = hr.U32();
  if (probe.version != kVersion && probe.version != kVersionGraph) {
    Corrupt("unsupported version");
  }
  bin::Reader tr(tail, kContext);
  probe.checksum = tr.U64();
  return probe;
}

}  // namespace

TraceTailProbe ProbeTraceTailBytes(std::string_view data) {
  if (data.size() < kMinArtifactBytes) Corrupt("truncated");
  return ProbeParts(data.substr(0, sizeof(kMagic) + 4),
                    data.substr(data.size() - 8), data.size());
}

TraceTailProbe ProbeTraceTail(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) Corrupt("cannot read " + path);
  is.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(is.tellg());
  if (size < kMinArtifactBytes) Corrupt("truncated");
  char head[sizeof(kMagic) + 4];
  char tail[8];
  is.seekg(0, std::ios::beg);
  is.read(head, sizeof(head));
  is.seekg(static_cast<std::streamoff>(size - 8), std::ios::beg);
  is.read(tail, sizeof(tail));
  if (!is) Corrupt("cannot read " + path);
  return ProbeParts(std::string_view(head, sizeof(head)),
                    std::string_view(tail, sizeof(tail)), size);
}

}  // namespace dcrm::trace
