#include "trace/trace_io.h"

#include <cstdint>
#include <istream>
#include <iterator>
#include <ostream>
#include <stdexcept>

namespace dcrm::trace {

namespace {

constexpr char kMagic[8] = {'d', 'c', 'r', 'm', 't', 'r', 'c', '\n'};
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void Corrupt(const std::string& what) {
  throw std::runtime_error("trace file: " + what);
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

std::uint64_t Fnv1a(const std::string& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Bounds-checked reader over the loaded payload; every read past the
// end is a corruption, not undefined behaviour.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  std::uint32_t U32() {
    Need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(Byte()) << (8 * i);
    }
    return v;
  }

  std::uint64_t U64() {
    Need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(Byte()) << (8 * i);
    }
    return v;
  }

  std::uint64_t Varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      Need(1);
      const std::uint8_t b = Byte();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    Corrupt("varint overruns 64 bits");
  }

  std::string Bytes(std::size_t n) {
    Need(n);
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  void Skip(std::size_t n) {
    Need(n);
    pos_ += n;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void Need(std::size_t n) {
    if (data_.size() - pos_ < n) Corrupt("truncated");
  }
  std::uint8_t Byte() {
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  const std::string& data_;
  std::size_t pos_ = 0;
};

// Counts must agree with what their varints later imply, and feeding
// them to vector::reserve unchecked would let a short corrupt file
// demand gigabytes; cap against the payload size (every element costs
// at least one encoded byte).
std::size_t CheckedCount(std::uint64_t n, std::size_t payload,
                         const char* what) {
  if (n > payload) Corrupt(std::string("implausible ") + what + " count");
  return static_cast<std::size_t>(n);
}

}  // namespace

std::string SaveTraceToString(const TraceStore& store) {
  const TraceStore::Columns& c = store.columns();
  std::string out;
  out.reserve(64 + c.inst_pc.size() * 3 + c.NumBlocks() * 2);
  out.append(kMagic, sizeof(kMagic));
  PutU32(out, kVersion);
  PutVarint(out, c.kernels.size());
  PutVarint(out, c.warp_id.size());
  PutVarint(out, c.inst_pc.size());
  PutVarint(out, c.NumBlocks());
  for (const TraceStore::KernelMeta& m : c.kernels) {
    PutVarint(out, m.name.size());
    out.append(m.name);
    PutVarint(out, m.cfg.grid.x);
    PutVarint(out, m.cfg.grid.y);
    PutVarint(out, m.cfg.grid.z);
    PutVarint(out, m.cfg.block.x);
    PutVarint(out, m.cfg.block.y);
    PutVarint(out, m.cfg.block.z);
    PutVarint(out, m.warp_end - m.warp_begin);
  }
  for (std::size_t w = 0; w < c.warp_id.size(); ++w) {
    PutVarint(out, c.warp_id[w]);
    PutVarint(out, c.warp_cta[w]);
    PutVarint(out, c.warp_inst_begin[w + 1] - c.warp_inst_begin[w]);
  }
  for (std::size_t i = 0; i < c.inst_pc.size(); ++i) {
    PutVarint(out, c.inst_pc[i]);
    PutVarint(out, (static_cast<std::uint64_t>(c.inst_lanes[i]) << 1) |
                       (c.inst_is_store[i] != 0 ? 1 : 0));
    PutVarint(out, c.inst_block_begin[i + 1] - c.inst_block_begin[i]);
  }
  // The on-disk form carries raw addresses (decoded from the packed
  // pool if need be), so the format is independent of the in-memory
  // packing decision.
  Addr prev = 0;
  for (std::size_t b = 0; b < c.NumBlocks(); ++b) {
    const Addr addr = c.BlockAt(b);
    PutVarint(out, ZigZag(static_cast<std::int64_t>(addr) -
                          static_cast<std::int64_t>(prev)));
    prev = addr;
  }
  PutU64(out, Fnv1a(out));
  return out;
}

void SaveTrace(const TraceStore& store, std::ostream& os) {
  const std::string data = SaveTraceToString(store);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::shared_ptr<const TraceStore> LoadTraceFromString(
    const std::string& data) {
  if (data.size() < sizeof(kMagic) + 4 + 8) Corrupt("truncated");
  if (data.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    Corrupt("bad magic");
  }
  const std::string body = data.substr(0, data.size() - 8);
  Reader tail(data);
  tail.Skip(data.size() - 8);
  if (tail.U64() != Fnv1a(body)) Corrupt("checksum mismatch");

  Reader r(body);
  r.Skip(sizeof(kMagic));
  const std::uint32_t version = r.U32();
  if (version != kVersion) Corrupt("unsupported version");

  const std::size_t payload = body.size();
  const std::size_t num_kernels =
      CheckedCount(r.Varint(), payload, "kernel");
  const std::size_t num_warps = CheckedCount(r.Varint(), payload, "warp");
  const std::size_t num_insts =
      CheckedCount(r.Varint(), payload, "instruction");
  const std::size_t num_blocks = CheckedCount(r.Varint(), payload, "block");

  TraceStore::Columns c;
  c.kernels.reserve(num_kernels);
  c.warp_id.reserve(num_warps);
  c.warp_cta.reserve(num_warps);
  c.warp_inst_begin.reserve(num_warps + 1);
  c.inst_pc.reserve(num_insts);
  c.inst_is_store.reserve(num_insts);
  c.inst_lanes.reserve(num_insts);
  c.inst_block_begin.reserve(num_insts + 1);
  std::vector<Addr> pool;
  pool.reserve(num_blocks);

  std::uint64_t warp_acc = 0;
  for (std::size_t k = 0; k < num_kernels; ++k) {
    TraceStore::KernelMeta m;
    const std::size_t name_len =
        CheckedCount(r.Varint(), payload, "kernel-name");
    m.name = r.Bytes(name_len);
    m.cfg.grid.x = static_cast<std::uint32_t>(r.Varint());
    m.cfg.grid.y = static_cast<std::uint32_t>(r.Varint());
    m.cfg.grid.z = static_cast<std::uint32_t>(r.Varint());
    m.cfg.block.x = static_cast<std::uint32_t>(r.Varint());
    m.cfg.block.y = static_cast<std::uint32_t>(r.Varint());
    m.cfg.block.z = static_cast<std::uint32_t>(r.Varint());
    m.warp_begin = static_cast<std::uint32_t>(warp_acc);
    warp_acc += r.Varint();
    if (warp_acc > num_warps) Corrupt("kernel warp count overruns total");
    m.warp_end = static_cast<std::uint32_t>(warp_acc);
    c.kernels.push_back(std::move(m));
  }
  if (warp_acc != num_warps) Corrupt("kernel warp counts disagree");

  std::uint64_t inst_acc = 0;
  c.warp_inst_begin.push_back(0);
  for (std::size_t w = 0; w < num_warps; ++w) {
    c.warp_id.push_back(static_cast<WarpId>(r.Varint()));
    c.warp_cta.push_back(static_cast<std::uint32_t>(r.Varint()));
    inst_acc += r.Varint();
    if (inst_acc > num_insts) Corrupt("warp inst count overruns total");
    c.warp_inst_begin.push_back(static_cast<std::uint32_t>(inst_acc));
  }
  if (inst_acc != num_insts) Corrupt("warp inst counts disagree");

  std::uint64_t block_acc = 0;
  c.inst_block_begin.push_back(0);
  for (std::size_t i = 0; i < num_insts; ++i) {
    c.inst_pc.push_back(static_cast<Pc>(r.Varint()));
    const std::uint64_t packed = r.Varint();
    c.inst_is_store.push_back(static_cast<std::uint8_t>(packed & 1));
    c.inst_lanes.push_back(static_cast<std::uint32_t>(packed >> 1));
    block_acc += r.Varint();
    if (block_acc > num_blocks) Corrupt("inst block count overruns total");
    c.inst_block_begin.push_back(static_cast<std::uint32_t>(block_acc));
  }
  if (block_acc != num_blocks) Corrupt("inst block counts disagree");

  std::int64_t prev = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    prev += UnZigZag(r.Varint());
    if (prev < 0) Corrupt("negative block address");
    pool.push_back(static_cast<Addr>(prev));
  }
  if (r.remaining() != 0) Corrupt("trailing bytes");
  AssignBlockPool(c, std::move(pool));

  try {
    return TraceStore::FromColumns(std::move(c));
  } catch (const std::invalid_argument& e) {
    Corrupt(e.what());
  }
}

std::shared_ptr<const TraceStore> LoadTrace(std::istream& is) {
  const std::string data((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  return LoadTraceFromString(data);
}

}  // namespace dcrm::trace
