// Warp-level memory traces: the interface between the functional
// execution layer and the cycle-level timing simulator.
//
// Threads of a warp execute in lockstep, so the i-th global-memory
// access of each lane belongs to the same warp-level memory
// instruction. The coalescer merges the 32 lane addresses of one
// instruction into unique 128B-block transactions, exactly the unit
// the L1 sees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "exec/kernel.h"

namespace dcrm::trace {

// One warp-level memory instruction after coalescing.
struct WarpMemInst {
  Pc pc = 0;
  AccessType type = AccessType::kLoad;
  std::uint32_t active_lanes = 0;
  // Unique 128B-aligned transaction addresses (1..32 entries).
  std::vector<Addr> blocks;
};

struct WarpTrace {
  WarpId warp = 0;
  std::uint32_t cta = 0;
  std::vector<WarpMemInst> insts;
};

// Sentinel for KernelTrace::node: "no graph node assigned"; BuildStore
// substitutes the kernel's index, which is what every chain-shimmed
// launch list gets.
inline constexpr std::uint32_t kNoNode = 0xffffffffu;

struct KernelTrace {
  // Launch name (e.g. "bicg_kernel1"), carried so downstream consumers
  // — the static analyzer in particular — can attribute findings to a
  // kernel. Empty for hand-built traces.
  std::string name;
  // Kernel-graph node id of the launch (repeated launch names stay
  // distinguishable by it). kNoNode for hand-built or legacy traces.
  std::uint32_t node = kNoNode;
  exec::LaunchConfig cfg;
  std::vector<WarpTrace> warps;  // sorted by warp id

  std::uint64_t TotalMemInsts() const;
  std::uint64_t TotalTransactions() const;
  std::uint64_t TotalStoreTransactions() const;
};

// Coalesces one ordinal's worth of lane records (same warp, same
// lockstep step) into warp-level instructions. Lane records with
// different PCs at the same ordinal (divergence) produce separate
// instructions. Exposed for unit testing.
std::vector<WarpMemInst> CoalesceStep(
    const std::vector<exec::AccessRecord>& lane_records);

}  // namespace dcrm::trace
