// Grid launcher: iterates CTAs / warps / threads in a deterministic
// order and runs the kernel body per thread.
#pragma once

#include <cstdint>

#include "exec/kernel.h"

namespace dcrm::exec {

struct LaunchStats {
  std::uint64_t threads = 0;
  std::uint64_t warps = 0;
  std::uint64_t ctas = 0;
};

// Runs `body` for every thread of the launch. Threads execute
// sequentially (functional model); warp structure is captured in each
// thread's ThreadCoord so sinks can rebuild lockstep warp behaviour.
//
// Exceptions thrown by the body (DueError, DetectionTerminated)
// propagate out, aborting the rest of the launch — the functional
// analogue of the paper's terminate signal.
LaunchStats LaunchKernel(const LaunchConfig& cfg, DataPlane& plane,
                         AccessSink* sink, const KernelFn& body);

}  // namespace dcrm::exec
