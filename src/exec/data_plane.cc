#include "exec/data_plane.h"

#include <cstring>

namespace dcrm::exec {

void DirectDataPlane::Store(Pc, Addr addr, const void* in,
                            std::uint32_t size) {
  if (!dev_->space().ValidRange(addr, size)) {
    throw std::out_of_range("store out of range");
  }
  // Through WriteBytes so stores to retired blocks land in the spare.
  dev_->WriteBytes(addr, in, size);
}

}  // namespace dcrm::exec
