#include "exec/kernel_graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <string>

namespace dcrm::exec {

namespace {

[[noreturn]] void Bad(const std::string& what) {
  throw std::invalid_argument("KernelGraph: " + what);
}

bool Declares(const std::vector<std::string>& set, const std::string& name) {
  return std::find(set.begin(), set.end(), name) != set.end();
}

std::string NodeLabel(const KernelGraph& g, std::uint32_t id) {
  return "node " + std::to_string(id) + " (" + g.Node(id).name + ")";
}

}  // namespace

std::uint32_t KernelGraph::AddNode(GraphNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void KernelGraph::AddEdge(std::uint32_t producer, std::uint32_t consumer,
                          std::string object) {
  if (producer >= nodes_.size() || consumer >= nodes_.size()) {
    Bad("edge endpoint out of range");
  }
  if (producer == consumer) Bad("self-edge on " + NodeLabel(*this, producer));
  const GraphEdge edge{producer, consumer, std::move(object)};
  if (std::find(edges_.begin(), edges_.end(), edge) != edges_.end()) return;
  edges_.push_back(edge);
}

void KernelGraph::ConnectByObjects() {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    for (const std::string& obj : nodes_[i].reads) {
      for (std::uint32_t j = 0; j < i; ++j) {
        if (Declares(nodes_[j].writes, obj)) AddEdge(j, i, obj);
      }
    }
    // Hazard edges keep non-SSA graphs sequentially consistent with
    // insertion order: a later writer of an object runs after every
    // earlier writer (WAW) and every earlier reader (WAR) of it.
    for (const std::string& obj : nodes_[i].writes) {
      for (std::uint32_t j = 0; j < i; ++j) {
        if (Declares(nodes_[j].writes, obj) ||
            Declares(nodes_[j].reads, obj)) {
          AddEdge(j, i);
        }
      }
    }
  }
}

void KernelGraph::Validate() const {
  const std::uint32_t n = NumNodes();
  std::vector<std::uint32_t> indegree(n, 0);
  for (const GraphEdge& e : edges_) {
    if (e.producer >= n || e.consumer >= n) Bad("edge endpoint out of range");
    if (e.producer == e.consumer) {
      Bad("self-edge on " + NodeLabel(*this, e.producer));
    }
    if (!e.object.empty()) {
      if (!Declares(nodes_[e.producer].writes, e.object)) {
        Bad("missing producer: edge object '" + e.object +
            "' is not written by " + NodeLabel(*this, e.producer));
      }
      if (!Declares(nodes_[e.consumer].reads, e.object)) {
        Bad("dangling consumer: edge object '" + e.object +
            "' is not read by " + NodeLabel(*this, e.consumer));
      }
    }
    ++indegree[e.consumer];
  }
  // Kahn reachability: if some node never becomes ready, the leftover
  // subgraph contains a cycle.
  std::queue<std::uint32_t> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::uint32_t done = 0;
  while (!ready.empty()) {
    const std::uint32_t id = ready.front();
    ready.pop();
    ++done;
    for (const GraphEdge& e : edges_) {
      if (e.producer == id && --indegree[e.consumer] == 0) {
        ready.push(e.consumer);
      }
    }
  }
  if (done != n) Bad("dependency cycle");
}

std::vector<std::uint32_t> KernelGraph::TopoOrder() const {
  Validate();
  const std::uint32_t n = NumNodes();
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::vector<std::uint32_t>> succ(n);
  for (const GraphEdge& e : edges_) {
    succ[e.producer].push_back(e.consumer);
    ++indegree[e.consumer];
  }
  // Smallest-ready-id tie-break makes the schedule a pure function of
  // the graph; a program-order chain comes out in insertion order.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<std::uint32_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::uint32_t id = ready.top();
    ready.pop();
    order.push_back(id);
    for (const std::uint32_t next : succ[id]) {
      if (--indegree[next] == 0) ready.push(next);
    }
  }
  return order;
}

std::vector<GraphEdge> KernelGraph::DataEdges() const {
  std::vector<GraphEdge> out;
  for (const GraphEdge& e : edges_) {
    if (!e.object.empty()) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const GraphEdge& a, const GraphEdge& b) {
              if (a.producer != b.producer) return a.producer < b.producer;
              if (a.consumer != b.consumer) return a.consumer < b.consumer;
              return a.object < b.object;
            });
  return out;
}

std::vector<std::uint32_t> RunGraph(KernelGraph& graph, DataPlane& plane,
                                    AccessSink* sink) {
  const std::vector<std::uint32_t> order = graph.TopoOrder();
  for (const std::uint32_t id : order) {
    GraphNode& node = graph.Node(id);
    LaunchKernel(node.cfg, plane, sink, node.body);
  }
  return order;
}

}  // namespace dcrm::exec
