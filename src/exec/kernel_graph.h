// Kernel-graph runtime: applications declare their kernel launches as
// a DAG over named data objects instead of a flat ordered list. Nodes
// are kernel launches annotated with the objects they read and write;
// edges are dependencies — either *data* edges carrying the object
// name that flows producer → consumer, or plain *ordering* edges
// (empty object name) used by the single-chain compatibility shim that
// migrates list-style apps unchanged.
//
// Execution is deterministic by construction: TopoOrder() runs Kahn's
// algorithm with a smallest-ready-node-id tie-break, so the schedule
// is a pure function of the graph (no hash-order or pointer-order
// dependence), and a chain inserted in program order executes in
// exactly that order — which is what keeps the legacy apps' traces,
// goldens and campaign fingerprints bit-identical after the refactor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/kernel.h"
#include "exec/launcher.h"

namespace dcrm::exec {

// One kernel launch plus its declared object footprint. The read/write
// sets name data objects (mem::AddressSpace names); they drive
// ConnectByObjects() and are checked by Validate() for data edges.
struct GraphNode {
  std::string name;  // launch name; repeated names are fine (chunked GEMMs)
  LaunchConfig cfg;
  KernelFn body;
  std::vector<std::string> reads;
  std::vector<std::string> writes;
};

struct GraphEdge {
  std::uint32_t producer = 0;
  std::uint32_t consumer = 0;
  // Data object flowing along the edge; empty for a pure ordering edge
  // (the chain shim's kernel#i -> kernel#i+1 links).
  std::string object;

  friend bool operator==(const GraphEdge&, const GraphEdge&) = default;
};

class KernelGraph {
 public:
  // Returns the new node's id (dense, in insertion order).
  std::uint32_t AddNode(GraphNode node);

  // Adds a dependency edge. Throws std::invalid_argument immediately
  // on out-of-range ids or a self-edge; object membership in the
  // producer's write set / consumer's read set is checked by
  // Validate(). Duplicate edges are dropped.
  void AddEdge(std::uint32_t producer, std::uint32_t consumer,
               std::string object = {});

  // Derives the data edges from the declared read/write sets: a node
  // depends on *every* earlier (insertion-order) writer of each object
  // it reads — partial writers of one tensor (e.g. per-chunk GEMM
  // launches) all feed the consumer. Write-after-write and
  // write-after-read hazards on the same object become ordering edges,
  // so non-SSA graphs stay sequentially consistent with their
  // insertion order.
  void ConnectByObjects();

  // Structural validation. Throws std::invalid_argument on:
  //   * an edge endpoint out of range or a self-edge,
  //   * a data edge whose object the producer does not write
  //     ("missing producer"),
  //   * a data edge whose object the consumer does not read
  //     ("dangling consumer"),
  //   * a dependency cycle.
  void Validate() const;

  // Deterministic topological order: Kahn's algorithm, always taking
  // the smallest ready node id. Calls Validate() first. For a chain
  // inserted in program order this is exactly the insertion order.
  std::vector<std::uint32_t> TopoOrder() const;

  std::uint32_t NumNodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  const GraphNode& Node(std::uint32_t id) const { return nodes_[id]; }
  GraphNode& Node(std::uint32_t id) { return nodes_[id]; }
  const std::vector<GraphNode>& Nodes() const { return nodes_; }
  const std::vector<GraphEdge>& Edges() const { return edges_; }

  // The data edges only (non-empty object), in deterministic
  // (producer, consumer, object) order — what the trace layer persists.
  std::vector<GraphEdge> DataEdges() const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
};

// Executes every node in TopoOrder() through LaunchKernel and returns
// the order used. Exceptions from kernel bodies (DueError,
// DetectionTerminated) propagate, aborting the remaining nodes — same
// contract as the old flat-list loop.
std::vector<std::uint32_t> RunGraph(KernelGraph& graph, DataPlane& plane,
                                    AccessSink* sink);

}  // namespace dcrm::exec
