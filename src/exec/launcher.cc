#include "exec/launcher.h"

namespace dcrm::exec {

LaunchStats LaunchKernel(const LaunchConfig& cfg, DataPlane& plane,
                         AccessSink* sink, const KernelFn& body) {
  LaunchStats stats;
  const std::uint32_t warps_per_cta = cfg.WarpsPerCta();
  std::uint32_t cta_linear = 0;
  for (std::uint32_t bz = 0; bz < cfg.grid.z; ++bz) {
    for (std::uint32_t by = 0; by < cfg.grid.y; ++by) {
      for (std::uint32_t bx = 0; bx < cfg.grid.x; ++bx, ++cta_linear) {
        ++stats.ctas;
        std::uint32_t thread_linear = 0;
        for (std::uint32_t tz = 0; tz < cfg.block.z; ++tz) {
          for (std::uint32_t ty = 0; ty < cfg.block.y; ++ty) {
            for (std::uint32_t tx = 0; tx < cfg.block.x;
                 ++tx, ++thread_linear) {
              ThreadCoord coord;
              coord.block_idx = {bx, by, bz};
              coord.thread_idx = {tx, ty, tz};
              coord.cta_linear = cta_linear;
              coord.thread_linear = thread_linear;
              coord.warp_global = static_cast<WarpId>(
                  cta_linear * warps_per_cta + thread_linear / kWarpSize);
              coord.lane = static_cast<std::uint8_t>(thread_linear % kWarpSize);
              ThreadCtx ctx(coord, cfg, plane, sink);
              body(ctx);
              ++stats.threads;
            }
          }
        }
      }
    }
  }
  stats.warps = cfg.TotalWarps();
  return stats;
}

}  // namespace dcrm::exec
