// CUDA-like kernel execution model: grids of CTAs, CTAs of threads,
// threads grouped into warps of 32. Kernel bodies are plain C++
// callables taking a ThreadCtx; every global-memory access goes
// through the ctx so it can be routed to the data plane, recorded for
// trace generation, and intercepted by the protection runtime.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "exec/data_plane.h"

namespace dcrm::exec {

// Identifies one thread within a launch.
struct ThreadCoord {
  Dim3 block_idx;
  Dim3 thread_idx;
  std::uint32_t cta_linear = 0;     // linearized CTA index in the grid
  std::uint32_t thread_linear = 0;  // linearized thread index in the CTA
  WarpId warp_global = 0;           // warp id unique across the grid
  std::uint8_t lane = 0;            // 0..31
};

struct AccessRecord {
  Pc pc = 0;
  Addr addr = 0;
  std::uint8_t size = 4;
  AccessType type = AccessType::kLoad;
};

// Receives every global-memory access of every thread, in thread
// execution order. Implemented by the profiler and the trace builder.
class AccessSink {
 public:
  virtual ~AccessSink() = default;
  virtual void OnAccess(const ThreadCoord& who, const AccessRecord& what) = 0;
};

struct LaunchConfig {
  Dim3 grid;
  Dim3 block;

  std::uint32_t ThreadsPerCta() const {
    return static_cast<std::uint32_t>(block.Count());
  }
  std::uint32_t WarpsPerCta() const {
    return (ThreadsPerCta() + kWarpSize - 1) / kWarpSize;
  }
  std::uint64_t NumCtas() const { return grid.Count(); }
  std::uint64_t TotalWarps() const { return NumCtas() * WarpsPerCta(); }
};

// Per-thread view handed to the kernel body. Typed ld/st helpers tag
// each access with a static instruction id (Pc) so the framework can
// attribute accesses to load sites, as the paper's PTX analysis does.
class ThreadCtx {
 public:
  ThreadCtx(const ThreadCoord& coord, const LaunchConfig& cfg,
            DataPlane& plane, AccessSink* sink)
      : coord_(coord), cfg_(cfg), plane_(&plane), sink_(sink) {}

  const Dim3& blockIdx() const { return coord_.block_idx; }
  const Dim3& threadIdx() const { return coord_.thread_idx; }
  const Dim3& blockDim() const { return cfg_.block; }
  const Dim3& gridDim() const { return cfg_.grid; }
  const ThreadCoord& coord() const { return coord_; }

  template <typename T>
  T Ld(Pc pc, Addr addr) {
    T v;
    plane_->Load(pc, addr, &v, sizeof(T));
    Record(pc, addr, sizeof(T), AccessType::kLoad);
    return v;
  }

  template <typename T>
  void St(Pc pc, Addr addr, const T& v) {
    plane_->Store(pc, addr, &v, sizeof(T));
    Record(pc, addr, sizeof(T), AccessType::kStore);
  }

 private:
  void Record(Pc pc, Addr addr, std::uint8_t size, AccessType type) {
    if (sink_ != nullptr) sink_->OnAccess(coord_, {pc, addr, size, type});
  }

  ThreadCoord coord_;
  const LaunchConfig& cfg_;
  DataPlane* plane_;
  AccessSink* sink_;
};

using KernelFn = std::function<void(ThreadCtx&)>;

// Typed view of a device array: address arithmetic helper so kernels
// read like their CUDA sources.
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;
  explicit ArrayRef(Addr base) : base_(base) {}

  Addr base() const { return base_; }
  Addr AddrOf(std::uint64_t index) const { return base_ + index * sizeof(T); }

  T Ld(ThreadCtx& ctx, Pc pc, std::uint64_t index) const {
    return ctx.Ld<T>(pc, AddrOf(index));
  }
  void St(ThreadCtx& ctx, Pc pc, std::uint64_t index, const T& v) const {
    ctx.St<T>(pc, AddrOf(index), v);
  }

 private:
  Addr base_ = 0;
};

}  // namespace dcrm::exec
