// The data plane a simulated kernel thread talks to. The plain
// implementation forwards to DeviceMemory; the protection runtime
// (src/core) wraps it to add replica reads, comparison, and majority
// voting for protected objects.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "mem/device_memory.h"

namespace dcrm::exec {

class DataPlane {
 public:
  virtual ~DataPlane() = default;

  virtual void Load(Pc pc, Addr addr, void* out, std::uint32_t size) = 0;
  virtual void Store(Pc pc, Addr addr, const void* in, std::uint32_t size) = 0;
};

// Unprotected pass-through: loads see injected faults (and ECC if the
// device enables it); stores go straight to the backing store.
class DirectDataPlane final : public DataPlane {
 public:
  explicit DirectDataPlane(mem::DeviceMemory& dev) : dev_(&dev) {}

  void Load(Pc, Addr addr, void* out, std::uint32_t size) override {
    dev_->ReadBytes(addr, static_cast<std::uint8_t*>(out), size);
  }
  void Store(Pc, Addr addr, const void* in, std::uint32_t size) override;

 private:
  mem::DeviceMemory* dev_;
};

}  // namespace dcrm::exec
