// Wire formats of the crash-tolerant sharded campaign (see DESIGN.md
// §11): the three checksummed artifacts the coordinator and its worker
// processes exchange through the filesystem, plus the CSV surface the
// CI golden-diff compares.
//
//  * ShardResult   — one worker's completed trial range: its partial
//    CampaignCounts and one offense-event ledger delta per escalation
//    epoch it ran. Per-epoch deltas (not one merged ledger) are what
//    make resumed and re-sharded runs bit-identical: escalation
//    replica addresses depend on *which epoch* each escalation first
//    applied, so a catching-up worker must replay the prologue history
//    epoch by epoch, not just the final offense totals.
//  * ShardManifest — the coordinator's checkpoint: campaign
//    fingerprint, shard geometry and the set of shards whose results
//    have been validated and merged. Written atomically after every
//    merge; --resume trusts it to re-run only what is missing.
//  * LedgerHandoff — the escalation history a coupled-mode shard needs
//    before its first trial: every earlier epoch's offense delta, in
//    epoch order.
//
// All three share the repo's artifact envelope (common/binio.h): magic,
// u32 version, payload, trailing FNV-1a checksum — a file loads whole
// or is rejected whole, so a crash mid-write can never smuggle half a
// result into the merge.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/recovery.h"
#include "fault/campaign.h"

namespace dcrm::fault {

// One worker process's completed shard.
struct ShardResult {
  std::uint64_t fingerprint = 0;  // must match the coordinator's plan
  std::uint32_t shard_index = 0;
  std::uint32_t trial_begin = 0;
  std::uint32_t trial_end = 0;
  // Global index of the first escalation epoch this shard ran; the
  // offense deltas cover epochs [first_epoch, first_epoch + size()).
  // Zero (with empty deltas) when the campaign has no cross-trial
  // coupling.
  std::uint32_t first_epoch = 0;
  CampaignCounts counts;
  std::vector<core::EscalationLedger> offense_deltas;

  bool operator==(const ShardResult&) const = default;
};

// The coordinator's crash-recovery checkpoint.
struct ShardManifest {
  std::uint64_t fingerprint = 0;
  std::uint32_t total_runs = 0;
  std::uint32_t shard_size = 0;  // trials per shard (last may be short)
  std::uint32_t num_shards = 0;
  std::vector<std::uint32_t> done;  // merged shard indices, ascending

  bool operator==(const ShardManifest&) const = default;
};

// Escalation history handed to a coupled-mode shard before dispatch:
// epoch_deltas[e] is global epoch e's offense events, for every epoch
// before the shard's first trial.
struct LedgerHandoff {
  std::uint64_t fingerprint = 0;
  std::vector<core::EscalationLedger> epoch_deltas;

  bool operator==(const LedgerHandoff&) const = default;
};

std::string EncodeShardResult(const ShardResult& r);
std::string EncodeShardManifest(const ShardManifest& m);
std::string EncodeLedgerHandoff(const LedgerHandoff& h);

// Decoders throw std::runtime_error on bad magic, unknown version,
// truncation, checksum mismatch or malformed payload.
ShardResult DecodeShardResult(const std::string& data);
ShardManifest DecodeShardManifest(const std::string& data);
LedgerHandoff DecodeLedgerHandoff(const std::string& h);

// The campaign-result CSV shared by `dcrm campaign --csv`, `dcrm shard
// --csv` and the CI golden diff: one `counts` row with every outcome
// and recovery counter, then one `offense` row per ledger entry in
// object-id order. Byte-identical counts+ledger produce byte-identical
// CSV, so `diff` is the bit-identity check.
void WriteCountsCsv(const CampaignCounts& counts,
                    const core::EscalationLedger& ledger, std::ostream& os);

}  // namespace dcrm::fault
