// Crash-tolerant multi-process campaign sharding (DESIGN.md §11).
//
// The coordinator splits a campaign's trial range into epoch-aligned
// shards, dispatches each to a `dcrm shard-worker` child process fed
// the campaign plan plus a shared trace artifact, and merges the
// validated per-shard results — CampaignCounts and offense-event
// ledger epochs — deterministically, bit-identical to the in-process
// `--jobs=N` engine. Crash tolerance is checkpoint/resume at shard
// granularity:
//
//  * after every merge the coordinator atomically rewrites a
//    checksummed manifest naming the shards already merged, so a
//    killed coordinator resumes by re-running only what is missing;
//  * a dead worker (nonzero exit, signal), a hung worker (timeout →
//    SIGKILL) or a truncated/corrupt result file is re-dispatched with
//    exponential backoff up to a retry budget;
//  * SIGINT/SIGTERM (or a preemption injection) drains the fleet and
//    flushes a final checkpoint, exiting with the resumable code 7.
//
// Determinism across process boundaries: every worker re-derives the
// identical campaign from (spec, trace artifact) — verified by a
// fingerprint over both — and trials draw from counter-based per-trial
// RNG streams, so a trial's result does not depend on which process
// runs it or after how many crashes. Cross-trial Tier-2 escalation is
// handled by dispatching coupled campaigns sequentially and handing
// each shard the per-epoch offense history of its predecessors to
// replay (fault/parallel_campaign.h: ReplayEscalations).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "core/recovery.h"
#include "fault/campaign.h"
#include "sim/config.h"

namespace dcrm::fault {

// The full campaign definition both sides of the process boundary
// share. Everything that influences a trial's result is in here (or in
// the trace artifact); the fingerprint covers both.
struct ShardCampaignSpec {
  std::string app;
  apps::AppScale scale = apps::AppScale::kSmall;
  sim::Scheme scheme = sim::Scheme::kNone;
  std::optional<unsigned> cover;     // nullopt = all hot objects
  std::vector<std::string> objects;  // explicit cover, may be writable
  bool allow_unsound = false;
  Target target = Target::kMissWeighted;
  unsigned faulty_blocks = 1;
  unsigned bits_per_block = 2;
  unsigned runs = 1000;
  std::uint64_t seed = 1;
  // 0 = no recovery (the paper's detect-and-die); >0 enables the
  // tiered pipeline with this re-execution budget, which also turns on
  // Tier-2 escalation — the cross-trial coupling that forces
  // sequential shard dispatch.
  unsigned recovery_retries = 0;
  unsigned escalation_epoch = 16;
  unsigned jobs = 1;  // in-process lanes per worker
  sim::GpuConfig gpu;
};

const char* ScaleFlagName(apps::AppScale s);
const char* SchemeFlagName(sim::Scheme s);
const char* TargetFlagName(Target t);

// True when Tier-2 escalation couples trials across shards, forcing
// sequential dispatch with ledger hand-off.
bool CoupledAcrossTrials(const ShardCampaignSpec& spec);

CampaignConfig MakeCampaignConfig(const ShardCampaignSpec& spec);

// FNV-1a over the canonical parameter string plus the trace artifact's
// own trailing checksum: two processes agree on the fingerprint iff
// they will run the same campaign on the same recorded traces.
// Deliberately excludes jobs/shards/workers — scheduling must not
// change results, so it must not change identity either.
std::uint64_t CampaignFingerprint(const ShardCampaignSpec& spec,
                                  std::uint64_t trace_checksum);

// The trailing 8-byte FNV-1a checksum of a saved trace artifact.
// Throws std::runtime_error when the file is unreadable or too short.
std::uint64_t TraceTailChecksum(const std::string& trace_bytes);

struct CoordinatorOptions {
  std::string dcrm_binary;  // path to the dcrm executable to spawn
  std::string workdir = "dcrm_shard_work";
  // Existing trace artifact to share with workers; empty = profile the
  // app once and save <workdir>/trace.bin.
  std::string trace_path;
  unsigned shards = 4;
  unsigned workers = 2;  // concurrent worker processes (coupled: 1)
  // 0 = no timeout. A worker exceeding it is SIGKILLed and
  // re-dispatched (the hung-worker path).
  std::uint64_t shard_timeout_ms = 0;
  unsigned max_retries = 3;   // re-dispatch budget per shard
  std::uint64_t backoff_ms = 500;  // doubled per consecutive failure
  bool resume = false;
  // Deterministic self-fault-injection, applied to a shard's first
  // dispatch only (retries run clean — the recovery path under test):
  // kill_shard's worker SIGKILLs itself after kill_after trials;
  // hang_shard's worker sleeps forever after hang_after trials.
  int kill_shard = -1;
  unsigned kill_after = 0;
  int hang_shard = -1;
  unsigned hang_after = 0;
  // Preemption injection: drain + checkpoint + exit 7 after this many
  // shards have merged (-1 = never). Exercises the resume path without
  // real signals.
  int stop_after_shards = -1;
  std::string csv_path;  // merged counts+ledger CSV on success
  const std::atomic<bool>* stop = nullptr;  // SIGINT/SIGTERM flag
  std::ostream* log = nullptr;  // progress log (null = silent)
};

// Exit codes shared by the coordinator, the CLI and the campaign
// engine's interrupt path (the authoritative table lives in
// README.md).
inline constexpr int kExitOk = 0;
inline constexpr int kExitInterrupted = 7;      // resumable: drained
inline constexpr int kExitRetriesExhausted = 8; // resumable: gave up

struct ShardCampaignOutcome {
  int exit_code = kExitOk;
  // Merged totals over the shards done so far (all shards when
  // exit_code == 0).
  CampaignCounts counts;
  core::EscalationLedger ledger;
  unsigned shards_done = 0;
  unsigned shards_total = 0;
  unsigned redispatches = 0;  // worker failures that were retried
};

// Runs the whole sharded campaign (or resumes one). Throws
// std::runtime_error on unrecoverable setup errors — unreadable or
// corrupt trace artifact, a resume manifest whose fingerprint or shard
// geometry does not match this invocation.
ShardCampaignOutcome RunShardCoordinator(const ShardCampaignSpec& spec,
                                         const CoordinatorOptions& opts);

struct WorkerOptions {
  unsigned shard_index = 0;
  unsigned trial_begin = 0;
  unsigned trial_end = 0;
  // Expected campaign fingerprint (0 = skip the check); the worker
  // refuses to run a plan that does not match the coordinator's.
  std::uint64_t fingerprint = 0;
  std::string trace_path;
  std::string out_path;
  std::string ledger_in;  // escalation history to replay (coupled)
  // Self-fault injection (see CoordinatorOptions).
  unsigned kill_after = 0;
  unsigned hang_after = 0;
  const std::atomic<bool>* stop = nullptr;
};

// Runs one shard in this process and atomically publishes its result
// file. Returns kExitOk, or kExitInterrupted when stopped before the
// shard completed (no result is written — shard results are
// all-or-nothing). Throws std::runtime_error on setup/validation
// failure.
int RunShardWorker(const ShardCampaignSpec& spec, const WorkerOptions& opts);

}  // namespace dcrm::fault
