#include "fault/campaign.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "analysis/analysis.h"
#include "analysis/vulnerability.h"
#include "exec/launcher.h"
#include "fault/fault_shapes.h"
#include "fault/parallel_campaign.h"

namespace dcrm::fault {

std::uint64_t TrialSeed(std::uint64_t campaign_seed, std::uint64_t trial) {
  // splitmix64 finalizer over the (seed, counter) pair. Rng::Seed runs
  // its own splitmix rounds on top, so adjacent trials get
  // uncorrelated xoshiro streams.
  std::uint64_t z = campaign_seed + 0x9e3779b97f4a7c15ULL * (trial + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

FaultCampaign::FaultCampaign(apps::App& app,
                             const apps::ProfileResult& profile,
                             sim::Scheme scheme, unsigned cover_objects,
                             mem::EccMode ecc,
                             core::ReplicaPlacement placement,
                             bool allow_unsound,
                             std::shared_ptr<const CampaignTables> shared_tables)
    : app_(&app), profile_(&profile) {
  app_->Setup(dev_);
  dev_.set_ecc_mode(ecc);

  if (scheme != sim::Scheme::kNone && cover_objects > 0) {
    const auto& order = profile.hot.coverage_order;
    if (cover_objects > order.size()) {
      throw std::invalid_argument("cover_objects exceeds coverage order size");
    }
    std::vector<mem::ObjectId> ids;
    ids.reserve(cover_objects);
    for (unsigned i = 0; i < cover_objects; ++i) ids.push_back(order[i].id);
    const unsigned copies = scheme == sim::Scheme::kDetectCorrect ? 2u : 1u;
    const auto replicas =
        core::ReplicateObjects(dev_, ids, copies, placement);
    plan_ = core::MakeProtectionPlan(dev_.space(), replicas, scheme);
    plan_.pcs = profile.profiler.PcsTouching(ids);
    protected_plane_ =
        std::make_unique<core::ProtectedDataPlane>(dev_, plan_);
  }

  FinishInit(allow_unsound, std::move(shared_tables));
}

FaultCampaign::FaultCampaign(apps::App& app,
                             const apps::ProfileResult& profile,
                             sim::Scheme scheme,
                             const std::vector<std::string>& object_names,
                             mem::EccMode ecc, bool allow_unsound,
                             std::shared_ptr<const CampaignTables> shared_tables)
    : app_(&app), profile_(&profile) {
  app_->Setup(dev_);
  dev_.set_ecc_mode(ecc);

  if (scheme != sim::Scheme::kNone && !object_names.empty()) {
    std::vector<mem::ObjectId> ids;
    bool any_writable = false;
    for (const auto& name : object_names) {
      const auto id = dev_.space().FindByName(name);
      if (!id) throw std::invalid_argument("unknown object: " + name);
      ids.push_back(*id);
      any_writable = any_writable || !dev_.space().Object(*id).read_only;
    }
    const unsigned copies = scheme == sim::Scheme::kDetectCorrect ? 2u : 1u;
    const auto replicas = core::ReplicateObjects(
        dev_, ids, copies, core::ReplicaPlacement::kDefault, 6,
        /*allow_writable=*/true);
    plan_ = core::MakeProtectionPlan(dev_.space(), replicas, scheme,
                                     /*lazy_compare=*/true,
                                     /*propagate_stores=*/any_writable);
    protected_plane_ =
        std::make_unique<core::ProtectedDataPlane>(dev_, plan_);
  }
  FinishInit(allow_unsound, std::move(shared_tables));
}

void FaultCampaign::FinishInit(
    bool allow_unsound, std::shared_ptr<const CampaignTables> shared_tables) {
  const apps::ProfileResult& profile = *profile_;

  // Campaign-launch gate: certify the plan against the recorded access
  // streams before a single fault is injected. A campaign over an
  // unsound configuration does not fail loudly on its own — it just
  // reports garbage outcome statistics — so blocking violations refuse
  // the launch unless the caller explicitly opted out.
  if (!allow_unsound && plan_.scheme != sim::Scheme::kNone) {
    analysis::AnalyzerInput in;
    in.traces = profile.trace_store.get();
    in.space = &dev_.space();
    in.plan = &plan_;
    const analysis::Report report = analysis::Analyze(in);
    const auto blocking = analysis::BlockingFindings(report, plan_);
    if (!blocking.empty()) {
      std::ostringstream os;
      os << "campaign refused: protection plan is unsound ("
         << blocking.size() << " blocking violation(s); pass "
         << "allow_unsound / --allow-unsound to override). First: "
         << analysis::CheckName(blocking.front()->check) << " on "
         << blocking.front()->subject << ": " << blocking.front()->detail;
      throw analysis::UnsoundPlanError(os.str(), report);
    }
  }
  if (shared_tables != nullptr) {
    // Fan-out replica of an identically-configured campaign: reuse its
    // immutable tables. Apps initialize deterministically, so the only
    // thing worth validating is that the store layouts agree.
    if (shared_tables->snapshot.size() != dev_.space().StoreSize()) {
      throw std::invalid_argument(
          "shared campaign tables disagree with this device's store size");
    }
    tables_ = std::move(shared_tables);
    return;
  }

  auto tables = std::make_shared<CampaignTables>();
  tables->snapshot.assign(dev_.space().Data(),
                          dev_.space().Data() + dev_.space().StoreSize());

  tables->split = core::SplitBlocks(profile.hot, profile.profiler,
                                    dev_.space());

  // Exposure-weighted sampling tables (the Fig. 8 selection step).
  // The weight of a block is its count of L2/DRAM-visible load
  // transactions — the accesses a fault in L2/DRAM can corrupt. See
  // BuildExposureUniverse for why transaction counting is the primary
  // weight and the L1-miss profile only a fallback.
  {
    auto universe = analysis::BuildExposureUniverse(profile.profiler);
    tables->weighted_blocks = std::move(universe.blocks);
    tables->weight_prefix = std::move(universe.weight_prefix);
  }

  // Static liveness map + the SDC-reachable restriction of each target
  // (what --importance-sampling draws from). The restriction is purely
  // plan-based (analysis::SdcPossible) — a superset of the truly
  // SDC-reachable set under any ECC mode or recovery tier — so the
  // reweighted estimator stays unbiased no matter how the trial ends.
  if (profile.trace_store != nullptr) {
    auto vuln = std::make_shared<analysis::VulnerabilityMap>(
        analysis::AnalyzeVulnerability(*profile.trace_store, dev_.space(),
                                       app_->OutputObjects()));
    const auto reachable = [&](std::uint64_t block) {
      const analysis::BlockLiveness* b = vuln->Find(block);
      // Blocks outside the map (no named owner and never traced) are
      // treated as reachable: the analysis proves nothing about them.
      return b == nullptr || analysis::SdcPossible(*b, plan_);
    };
    for (std::uint64_t b : tables->split.hot) {
      if (reachable(b)) tables->reachable_hot.push_back(b);
    }
    for (std::uint64_t b : tables->split.rest) {
      if (reachable(b)) tables->reachable_rest.push_back(b);
    }
    std::uint64_t racc = 0;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < tables->weighted_blocks.size(); ++i) {
      const std::uint64_t w = tables->weight_prefix[i] - prev;
      prev = tables->weight_prefix[i];
      if (!reachable(tables->weighted_blocks[i])) continue;
      tables->reachable_weighted.push_back(tables->weighted_blocks[i]);
      racc += w;
      tables->reachable_weight_prefix.push_back(racc);
    }
    const auto share = [](std::uint64_t num, std::uint64_t den) {
      return den == 0 ? 0.0
                      : static_cast<double>(num) / static_cast<double>(den);
    };
    tables->reachable_share = {
        share(tables->reachable_hot.size(), tables->split.hot.size()),
        share(tables->reachable_rest.size(), tables->split.rest.size()),
        share(tables->reachable_weight_prefix.empty()
                  ? 0
                  : tables->reachable_weight_prefix.back(),
              tables->weight_prefix.empty() ? 0
                                            : tables->weight_prefix.back())};
    tables->vulnerability = std::move(vuln);
  }
  tables_ = std::move(tables);
}

std::vector<float> FaultCampaign::ReadObservedOutputs() const {
  // With the writable-object extension the runtime copies results back
  // through the reliability layer: protected output reads are voted /
  // compared instead of trusting a possibly-faulty primary cell.
  if (protected_plane_ == nullptr || !plan_.propagate_stores) {
    return apps::ReadOutputs(*app_, dev_);
  }
  std::vector<float> out;
  auto& plane = *protected_plane_;
  for (const std::string& name : app_->OutputObjects()) {
    const auto id = dev_.space().FindByName(name);
    if (!id) throw std::logic_error("unknown output object: " + name);
    const auto& obj = dev_.space().Object(*id);
    const std::size_t n = obj.size_bytes / sizeof(float);
    for (std::size_t i = 0; i < n; ++i) {
      float v = 0;
      // const_cast: Load mutates only the plane's counters.
      const_cast<core::ProtectedDataPlane&>(plane).Load(
          /*pc=*/0, obj.base + i * sizeof(float), &v, sizeof(float));
      out.push_back(v);
    }
  }
  return out;
}

std::vector<std::uint64_t> FaultCampaign::SelectBlocks(
    const CampaignConfig& cfg, Rng& rng) const {
  // An app's hot set can be smaller than the requested block count
  // (A-Laplacian's hot objects span 3 blocks); inject into all of it.
  // Under importance sampling, selection draws from the SDC-reachable
  // restriction of the same distribution; everything else — the RNG,
  // the rejection loop, the within-list weights — is untouched, so the
  // flag off reproduces the historical streams bit for bit.
  const Target target = cfg.target;
  unsigned count = cfg.faulty_blocks;
  const CampaignTables& t = *tables_;
  const bool is = cfg.importance_sampling;
  const auto& hot = is ? t.reachable_hot : t.split.hot;
  const auto& rest = is ? t.reachable_rest : t.split.rest;
  const auto& weighted = is ? t.reachable_weighted : t.weighted_blocks;
  const auto& prefix = is ? t.reachable_weight_prefix : t.weight_prefix;
  const std::size_t available = target == Target::kHotBlocks
                                    ? hot.size()
                                    : target == Target::kRestBlocks
                                          ? rest.size()
                                          : weighted.size();
  if (available == 0) {
    throw std::invalid_argument(
        is ? "importance sampling: no SDC-reachable blocks in the target "
             "set (the static analysis proves the SDC rate is zero)"
           : "no blocks in the requested target set");
  }
  count = static_cast<unsigned>(
      std::min<std::size_t>(count, available));

  std::vector<std::uint64_t> chosen;
  chosen.reserve(count);
  unsigned guard = 0;
  while (chosen.size() < count) {
    if (++guard > 100000) {
      throw std::runtime_error("cannot select enough distinct blocks");
    }
    std::uint64_t block = 0;
    switch (target) {
      case Target::kHotBlocks:
      case Target::kRestBlocks: {
        const auto& list = target == Target::kHotBlocks ? hot : rest;
        block = list[rng.Below(list.size())];
        break;
      }
      case Target::kMissWeighted: {
        if (weighted.empty()) {
          throw std::invalid_argument("no L1-miss profile available");
        }
        const std::uint64_t r = rng.Below(prefix.back());
        const auto it = std::upper_bound(prefix.begin(), prefix.end(), r);
        block = weighted[static_cast<std::size_t>(it - prefix.begin())];
        break;
      }
    }
    if (std::find(chosen.begin(), chosen.end(), block) == chosen.end()) {
      chosen.push_back(block);
    }
  }
  return chosen;
}

void FaultCampaign::EnableRecovery(const core::RecoveryConfig& cfg) {
  recovery_ = std::make_unique<core::RecoveryManager>(dev_, cfg);
  recovery_->SetSnapshot(tables_->snapshot);
  if (protected_plane_) {
    recovery_->AttachPlane(protected_plane_.get());
    protected_plane_->AttachRecovery(recovery_.get());
  }
}

Outcome FaultCampaign::RunOnce(const std::vector<mem::StuckAtFault>& faults) {
  dev_.faults().Clear();
  for (const auto& f : faults) dev_.faults().Add(f);
  if (recovery_) recovery_->BeginRun();

  exec::DirectDataPlane direct(dev_);
  exec::DataPlane& plane =
      protected_plane_ ? static_cast<exec::DataPlane&>(*protected_plane_)
                       : direct;
  const std::uint64_t corrections_before =
      protected_plane_ ? protected_plane_->corrections() : 0;
  // With recovery enabled, each iteration is one bounded re-execution
  // attempt from the pristine snapshot; without it, the loop runs once
  // and reproduces the paper's detect-and-die behaviour.
  for (;;) {
    // Restore the pristine store (inputs, zeroed outputs, replicas).
    const std::vector<std::byte>& snapshot = tables_->snapshot;
    std::memcpy(dev_.space().Data(), snapshot.data(), snapshot.size());
    if (recovery_) recovery_->RefreshRetiredFromSnapshot();
    dev_.ResetEccCounters();
    try {
      apps::RunKernels(*app_, plane, nullptr);
      const std::vector<float> observed = ReadObservedOutputs();
      last_corrections_ =
          (protected_plane_ ? protected_plane_->corrections() : 0) -
          corrections_before;
      const double err = app_->OutputError(profile_->golden, observed);
      if (err > app_->SdcThreshold()) return Outcome::kSdc;
      return recovery_ && recovery_->RunUsedRecovery() ? Outcome::kRecovered
                                                       : Outcome::kMasked;
    } catch (const core::DetectionTerminated& e) {
      if (recovery_ && recovery_->OnRunFailure(e.addr())) continue;
      return Outcome::kDetected;
    } catch (const mem::DueError& e) {
      if (recovery_ && recovery_->OnRunFailure(e.addr())) continue;
      return Outcome::kDue;
    } catch (const std::out_of_range&) {
      // No fault address to retire: a corrupted index escaped the
      // address space. Terminal even with recovery enabled.
      return Outcome::kCrash;
    }
  }
}

TrialResult FaultCampaign::RunTrial(const CampaignConfig& cfg,
                                    std::uint64_t trial) {
  // The trial's own counter-based stream: its faults depend only on
  // (cfg.seed, trial), never on which trials ran before it.
  Rng rng(TrialSeed(cfg.seed, trial));
  const auto blocks = SelectBlocks(cfg, rng);
  std::vector<mem::StuckAtFault> faults;
  for (std::uint64_t block : blocks) {
    // Restrict the target word to the owning object's bytes within
    // the block: the allocator's tail padding is not application
    // address space (matters for sub-block objects like a 36B
    // filter or a 4B width scalar).
    const Addr base = block * kBlockSize;
    Addr hi = base + kBlockSize;
    if (const auto owner = dev_.space().OwnerOf(base)) {
      hi = std::min<Addr>(hi, dev_.space().Object(*owner).end());
    }
    std::vector<mem::StuckAtFault> fs;
    switch (cfg.shape) {
      case FaultShape::kWordBits:
        fs = mem::MakeWordFaultsInRange(base, hi, cfg.bits_per_block, rng);
        break;
      case FaultShape::kColumn:
        fs = MakeColumnFaults(base, hi, rng);
        break;
      case FaultShape::kDramRow: {
        const sim::GpuConfig gc;
        const sim::AddrMap map{gc.num_partitions, gc.dram_banks,
                               gc.BlocksPerRow()};
        fs = MakeDramRowFaults(block, map, dev_.space().StoreSize(), rng);
        break;
      }
    }
    faults.insert(faults.end(), fs.begin(), fs.end());
  }

  TrialResult result;
  const core::RecoveryStats before =
      recovery_ ? recovery_->stats() : core::RecoveryStats{};
  last_corrections_ = 0;
  result.outcome = RunOnce(faults);
  result.corrections = last_corrections_;
  if (recovery_) {
    result.recovery = core::StatsDelta(recovery_->stats(), before);
    result.offenses = recovery_->trial_offenses();
  }
  return result;
}

unsigned FaultCampaign::ApplyEscalations(
    const core::EscalationLedger& ledger) {
  return recovery_ ? recovery_->ApplyEscalations(ledger) : 0;
}

void MergeTrialResult(CampaignCounts& counts, const TrialResult& r) {
  ++counts.runs;
  counts.corrections += r.corrections;
  counts.recovery += r.recovery;
  switch (r.outcome) {
    case Outcome::kMasked:
      ++counts.masked;
      break;
    case Outcome::kSdc:
      ++counts.sdc;
      break;
    case Outcome::kDetected:
      ++counts.detected;
      break;
    case Outcome::kDue:
      ++counts.due;
      break;
    case Outcome::kCrash:
      ++counts.crash;
      break;
    case Outcome::kRecovered:
      ++counts.recovered;
      break;
  }
}

CampaignCounts FaultCampaign::Run(const CampaignConfig& cfg) {
  FaultCampaign* self = this;
  return RunCampaignTrials({&self, 1}, ledger_, nullptr, cfg);
}

}  // namespace dcrm::fault
