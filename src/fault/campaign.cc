#include "fault/campaign.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "analysis/analysis.h"
#include "exec/launcher.h"
#include "fault/fault_shapes.h"
#include "fault/parallel_campaign.h"

namespace dcrm::fault {

std::uint64_t TrialSeed(std::uint64_t campaign_seed, std::uint64_t trial) {
  // splitmix64 finalizer over the (seed, counter) pair. Rng::Seed runs
  // its own splitmix rounds on top, so adjacent trials get
  // uncorrelated xoshiro streams.
  std::uint64_t z = campaign_seed + 0x9e3779b97f4a7c15ULL * (trial + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

FaultCampaign::FaultCampaign(apps::App& app,
                             const apps::ProfileResult& profile,
                             sim::Scheme scheme, unsigned cover_objects,
                             mem::EccMode ecc,
                             core::ReplicaPlacement placement,
                             bool allow_unsound,
                             std::shared_ptr<const CampaignTables> shared_tables)
    : app_(&app), profile_(&profile) {
  app_->Setup(dev_);
  dev_.set_ecc_mode(ecc);

  if (scheme != sim::Scheme::kNone && cover_objects > 0) {
    const auto& order = profile.hot.coverage_order;
    if (cover_objects > order.size()) {
      throw std::invalid_argument("cover_objects exceeds coverage order size");
    }
    std::vector<mem::ObjectId> ids;
    ids.reserve(cover_objects);
    for (unsigned i = 0; i < cover_objects; ++i) ids.push_back(order[i].id);
    const unsigned copies = scheme == sim::Scheme::kDetectCorrect ? 2u : 1u;
    const auto replicas =
        core::ReplicateObjects(dev_, ids, copies, placement);
    plan_ = core::MakeProtectionPlan(dev_.space(), replicas, scheme);
    plan_.pcs = profile.profiler.PcsTouching(ids);
    protected_plane_ =
        std::make_unique<core::ProtectedDataPlane>(dev_, plan_);
  }

  FinishInit(allow_unsound, std::move(shared_tables));
}

FaultCampaign::FaultCampaign(apps::App& app,
                             const apps::ProfileResult& profile,
                             sim::Scheme scheme,
                             const std::vector<std::string>& object_names,
                             mem::EccMode ecc, bool allow_unsound,
                             std::shared_ptr<const CampaignTables> shared_tables)
    : app_(&app), profile_(&profile) {
  app_->Setup(dev_);
  dev_.set_ecc_mode(ecc);

  if (scheme != sim::Scheme::kNone && !object_names.empty()) {
    std::vector<mem::ObjectId> ids;
    bool any_writable = false;
    for (const auto& name : object_names) {
      const auto id = dev_.space().FindByName(name);
      if (!id) throw std::invalid_argument("unknown object: " + name);
      ids.push_back(*id);
      any_writable = any_writable || !dev_.space().Object(*id).read_only;
    }
    const unsigned copies = scheme == sim::Scheme::kDetectCorrect ? 2u : 1u;
    const auto replicas = core::ReplicateObjects(
        dev_, ids, copies, core::ReplicaPlacement::kDefault, 6,
        /*allow_writable=*/true);
    plan_ = core::MakeProtectionPlan(dev_.space(), replicas, scheme,
                                     /*lazy_compare=*/true,
                                     /*propagate_stores=*/any_writable);
    protected_plane_ =
        std::make_unique<core::ProtectedDataPlane>(dev_, plan_);
  }
  FinishInit(allow_unsound, std::move(shared_tables));
}

void FaultCampaign::FinishInit(
    bool allow_unsound, std::shared_ptr<const CampaignTables> shared_tables) {
  const apps::ProfileResult& profile = *profile_;

  // Campaign-launch gate: certify the plan against the recorded access
  // streams before a single fault is injected. A campaign over an
  // unsound configuration does not fail loudly on its own — it just
  // reports garbage outcome statistics — so blocking violations refuse
  // the launch unless the caller explicitly opted out.
  if (!allow_unsound && plan_.scheme != sim::Scheme::kNone) {
    analysis::AnalyzerInput in;
    in.traces = profile.trace_store.get();
    in.space = &dev_.space();
    in.plan = &plan_;
    const analysis::Report report = analysis::Analyze(in);
    const auto blocking = analysis::BlockingFindings(report, plan_);
    if (!blocking.empty()) {
      std::ostringstream os;
      os << "campaign refused: protection plan is unsound ("
         << blocking.size() << " blocking violation(s); pass "
         << "allow_unsound / --allow-unsound to override). First: "
         << analysis::CheckName(blocking.front()->check) << " on "
         << blocking.front()->subject << ": " << blocking.front()->detail;
      throw analysis::UnsoundPlanError(os.str(), report);
    }
  }
  if (shared_tables != nullptr) {
    // Fan-out replica of an identically-configured campaign: reuse its
    // immutable tables. Apps initialize deterministically, so the only
    // thing worth validating is that the store layouts agree.
    if (shared_tables->snapshot.size() != dev_.space().StoreSize()) {
      throw std::invalid_argument(
          "shared campaign tables disagree with this device's store size");
    }
    tables_ = std::move(shared_tables);
    return;
  }

  auto tables = std::make_shared<CampaignTables>();
  tables->snapshot.assign(dev_.space().Data(),
                          dev_.space().Data() + dev_.space().StoreSize());

  tables->split = core::SplitBlocks(profile.hot, profile.profiler,
                                    dev_.space());

  // Exposure-weighted sampling tables (the Fig. 8 selection step).
  // The weight of a block is its count of L2/DRAM-visible load
  // transactions — the accesses a fault in L2/DRAM can corrupt. The
  // paper's configs effectively bypass L1 for global loads (its
  // Table III access shares only reproduce under transaction
  // counting), so "L1-missed accesses" equals this. Falls back to the
  // timing-simulated L1 miss profile if no transaction profile was
  // attached.
  std::uint64_t acc = 0;
  bool have_txns = false;
  for (const auto& [block, bp] : profile.profiler.blocks()) {
    have_txns = have_txns || bp.txns > 0;
  }
  for (const auto& [block, bp] : profile.profiler.blocks()) {
    const std::uint64_t w = have_txns ? bp.txns : bp.l1_misses;
    if (w == 0) continue;
    tables->weighted_blocks.push_back(block);
    acc += w;
    tables->weight_prefix.push_back(acc);
  }
  tables_ = std::move(tables);
}

std::vector<float> FaultCampaign::ReadObservedOutputs() const {
  // With the writable-object extension the runtime copies results back
  // through the reliability layer: protected output reads are voted /
  // compared instead of trusting a possibly-faulty primary cell.
  if (protected_plane_ == nullptr || !plan_.propagate_stores) {
    return apps::ReadOutputs(*app_, dev_);
  }
  std::vector<float> out;
  auto& plane = *protected_plane_;
  for (const std::string& name : app_->OutputObjects()) {
    const auto id = dev_.space().FindByName(name);
    if (!id) throw std::logic_error("unknown output object: " + name);
    const auto& obj = dev_.space().Object(*id);
    const std::size_t n = obj.size_bytes / sizeof(float);
    for (std::size_t i = 0; i < n; ++i) {
      float v = 0;
      // const_cast: Load mutates only the plane's counters.
      const_cast<core::ProtectedDataPlane&>(plane).Load(
          /*pc=*/0, obj.base + i * sizeof(float), &v, sizeof(float));
      out.push_back(v);
    }
  }
  return out;
}

std::vector<std::uint64_t> FaultCampaign::SelectBlocks(Target target,
                                                       unsigned count,
                                                       Rng& rng) const {
  // An app's hot set can be smaller than the requested block count
  // (A-Laplacian's hot objects span 3 blocks); inject into all of it.
  const CampaignTables& t = *tables_;
  const std::size_t available = target == Target::kHotBlocks
                                    ? t.split.hot.size()
                                    : target == Target::kRestBlocks
                                          ? t.split.rest.size()
                                          : t.weighted_blocks.size();
  if (available == 0) {
    throw std::invalid_argument("no blocks in the requested target set");
  }
  count = static_cast<unsigned>(
      std::min<std::size_t>(count, available));

  std::vector<std::uint64_t> chosen;
  chosen.reserve(count);
  unsigned guard = 0;
  while (chosen.size() < count) {
    if (++guard > 100000) {
      throw std::runtime_error("cannot select enough distinct blocks");
    }
    std::uint64_t block = 0;
    switch (target) {
      case Target::kHotBlocks:
      case Target::kRestBlocks: {
        const auto& list =
            target == Target::kHotBlocks ? t.split.hot : t.split.rest;
        if (list.empty()) {
          throw std::invalid_argument("no blocks in the requested target set");
        }
        block = list[rng.Below(list.size())];
        break;
      }
      case Target::kMissWeighted: {
        if (t.weighted_blocks.empty()) {
          throw std::invalid_argument("no L1-miss profile available");
        }
        const std::uint64_t r = rng.Below(t.weight_prefix.back());
        const auto it = std::upper_bound(t.weight_prefix.begin(),
                                         t.weight_prefix.end(), r);
        block = t.weighted_blocks[static_cast<std::size_t>(
            it - t.weight_prefix.begin())];
        break;
      }
    }
    if (std::find(chosen.begin(), chosen.end(), block) == chosen.end()) {
      chosen.push_back(block);
    }
  }
  return chosen;
}

void FaultCampaign::EnableRecovery(const core::RecoveryConfig& cfg) {
  recovery_ = std::make_unique<core::RecoveryManager>(dev_, cfg);
  recovery_->SetSnapshot(tables_->snapshot);
  if (protected_plane_) {
    recovery_->AttachPlane(protected_plane_.get());
    protected_plane_->AttachRecovery(recovery_.get());
  }
}

Outcome FaultCampaign::RunOnce(const std::vector<mem::StuckAtFault>& faults) {
  dev_.faults().Clear();
  for (const auto& f : faults) dev_.faults().Add(f);
  if (recovery_) recovery_->BeginRun();

  exec::DirectDataPlane direct(dev_);
  exec::DataPlane& plane =
      protected_plane_ ? static_cast<exec::DataPlane&>(*protected_plane_)
                       : direct;
  const std::uint64_t corrections_before =
      protected_plane_ ? protected_plane_->corrections() : 0;
  // With recovery enabled, each iteration is one bounded re-execution
  // attempt from the pristine snapshot; without it, the loop runs once
  // and reproduces the paper's detect-and-die behaviour.
  for (;;) {
    // Restore the pristine store (inputs, zeroed outputs, replicas).
    const std::vector<std::byte>& snapshot = tables_->snapshot;
    std::memcpy(dev_.space().Data(), snapshot.data(), snapshot.size());
    if (recovery_) recovery_->RefreshRetiredFromSnapshot();
    dev_.ResetEccCounters();
    try {
      apps::RunKernels(*app_, plane, nullptr);
      const std::vector<float> observed = ReadObservedOutputs();
      last_corrections_ =
          (protected_plane_ ? protected_plane_->corrections() : 0) -
          corrections_before;
      const double err = app_->OutputError(profile_->golden, observed);
      if (err > app_->SdcThreshold()) return Outcome::kSdc;
      return recovery_ && recovery_->RunUsedRecovery() ? Outcome::kRecovered
                                                       : Outcome::kMasked;
    } catch (const core::DetectionTerminated& e) {
      if (recovery_ && recovery_->OnRunFailure(e.addr())) continue;
      return Outcome::kDetected;
    } catch (const mem::DueError& e) {
      if (recovery_ && recovery_->OnRunFailure(e.addr())) continue;
      return Outcome::kDue;
    } catch (const std::out_of_range&) {
      // No fault address to retire: a corrupted index escaped the
      // address space. Terminal even with recovery enabled.
      return Outcome::kCrash;
    }
  }
}

TrialResult FaultCampaign::RunTrial(const CampaignConfig& cfg,
                                    std::uint64_t trial) {
  // The trial's own counter-based stream: its faults depend only on
  // (cfg.seed, trial), never on which trials ran before it.
  Rng rng(TrialSeed(cfg.seed, trial));
  const auto blocks = SelectBlocks(cfg.target, cfg.faulty_blocks, rng);
  std::vector<mem::StuckAtFault> faults;
  for (std::uint64_t block : blocks) {
    // Restrict the target word to the owning object's bytes within
    // the block: the allocator's tail padding is not application
    // address space (matters for sub-block objects like a 36B
    // filter or a 4B width scalar).
    const Addr base = block * kBlockSize;
    Addr hi = base + kBlockSize;
    if (const auto owner = dev_.space().OwnerOf(base)) {
      hi = std::min<Addr>(hi, dev_.space().Object(*owner).end());
    }
    std::vector<mem::StuckAtFault> fs;
    switch (cfg.shape) {
      case FaultShape::kWordBits:
        fs = mem::MakeWordFaultsInRange(base, hi, cfg.bits_per_block, rng);
        break;
      case FaultShape::kColumn:
        fs = MakeColumnFaults(base, hi, rng);
        break;
      case FaultShape::kDramRow: {
        const sim::GpuConfig gc;
        const sim::AddrMap map{gc.num_partitions, gc.dram_banks,
                               gc.BlocksPerRow()};
        fs = MakeDramRowFaults(block, map, dev_.space().StoreSize(), rng);
        break;
      }
    }
    faults.insert(faults.end(), fs.begin(), fs.end());
  }

  TrialResult result;
  const core::RecoveryStats before =
      recovery_ ? recovery_->stats() : core::RecoveryStats{};
  last_corrections_ = 0;
  result.outcome = RunOnce(faults);
  result.corrections = last_corrections_;
  if (recovery_) {
    result.recovery = core::StatsDelta(recovery_->stats(), before);
    result.offenses = recovery_->trial_offenses();
  }
  return result;
}

unsigned FaultCampaign::ApplyEscalations(
    const core::EscalationLedger& ledger) {
  return recovery_ ? recovery_->ApplyEscalations(ledger) : 0;
}

void MergeTrialResult(CampaignCounts& counts, const TrialResult& r) {
  ++counts.runs;
  counts.corrections += r.corrections;
  counts.recovery += r.recovery;
  switch (r.outcome) {
    case Outcome::kMasked:
      ++counts.masked;
      break;
    case Outcome::kSdc:
      ++counts.sdc;
      break;
    case Outcome::kDetected:
      ++counts.detected;
      break;
    case Outcome::kDue:
      ++counts.due;
      break;
    case Outcome::kCrash:
      ++counts.crash;
      break;
    case Outcome::kRecovered:
      ++counts.recovered;
      break;
  }
}

CampaignCounts FaultCampaign::Run(const CampaignConfig& cfg) {
  FaultCampaign* self = this;
  return RunCampaignTrials({&self, 1}, ledger_, nullptr, cfg);
}

}  // namespace dcrm::fault
