#include "fault/fault_shapes.h"

#include <stdexcept>

namespace dcrm::fault {

std::vector<mem::StuckAtFault> MakeColumnFaults(Addr lo, Addr hi, Rng& rng) {
  if (hi <= lo) throw std::invalid_argument("empty column-fault range");
  const auto column = static_cast<unsigned>(rng.Below(32));  // bit in word
  const bool stuck = rng.Bernoulli(0.5);
  std::vector<mem::StuckAtFault> out;
  for (Addr word = lo & ~Addr{3}; word < hi; word += 4) {
    mem::StuckAtFault f;
    f.byte_addr = word + column / 8;
    if (f.byte_addr >= hi) continue;  // partial last word
    f.bit = static_cast<std::uint8_t>(column % 8);
    f.stuck_value = stuck;
    out.push_back(f);
  }
  if (out.empty()) throw std::logic_error("column fault produced no bits");
  return out;
}

std::vector<std::uint64_t> BlocksInSameDramRow(std::uint64_t block,
                                               const sim::AddrMap& map,
                                               Addr limit) {
  const Addr addr = block * kBlockSize;
  const std::uint32_t channel = map.Channel(addr);
  const std::uint32_t bank = map.Bank(addr);
  const std::uint64_t row = map.Row(addr);
  // Reconstruct the row's row-local block indices: within-bank block
  // index wb = row*blocks_per_row + i; global block =
  // (wb * banks + bank) * channels + channel.
  std::vector<std::uint64_t> out;
  for (std::uint32_t i = 0; i < map.blocks_per_row; ++i) {
    const std::uint64_t wb =
        row * map.blocks_per_row + i;
    const std::uint64_t global =
        (wb * map.num_banks + bank) * map.num_channels + channel;
    if (global * kBlockSize >= limit) continue;
    out.push_back(global);
  }
  return out;
}

std::vector<mem::StuckAtFault> MakeDramRowFaults(std::uint64_t block,
                                                 const sim::AddrMap& map,
                                                 Addr limit, Rng& rng) {
  const auto blocks = BlocksInSameDramRow(block, map, limit);
  if (blocks.empty()) throw std::invalid_argument("row outside address space");
  // One failed column across the whole row: same bit position and
  // polarity in every block.
  const auto column = static_cast<unsigned>(rng.Below(32));
  const bool stuck = rng.Bernoulli(0.5);
  std::vector<mem::StuckAtFault> out;
  for (std::uint64_t b : blocks) {
    const Addr base = b * kBlockSize;
    const Addr hi = std::min<Addr>(base + kBlockSize, limit);
    for (Addr word = base; word < hi; word += 4) {
      mem::StuckAtFault f;
      f.byte_addr = word + column / 8;
      if (f.byte_addr >= hi) continue;
      f.bit = static_cast<std::uint8_t>(column % 8);
      f.stuck_value = stuck;
      out.push_back(f);
    }
  }
  return out;
}

}  // namespace dcrm::fault
