#include "fault/shard_coordinator.h"

#include <csignal>
#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "apps/driver.h"
#include "common/binio.h"
#include "common/file_util.h"
#include "common/subprocess.h"
#include "fault/parallel_campaign.h"
#include "fault/shard_io.h"
#include "sim/config_io.h"
#include "trace/trace_io.h"

namespace dcrm::fault {

namespace {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

std::string ResultPath(const std::string& dir, unsigned s) {
  return JoinPath(dir, "result-" + std::to_string(s) + ".bin");
}
std::string HandoffPath(const std::string& dir, unsigned s) {
  return JoinPath(dir, "ledger-" + std::to_string(s) + ".bin");
}
std::string LogPath(const std::string& dir, unsigned s) {
  return JoinPath(dir, "shard-" + std::to_string(s) + ".log");
}

void Log(const CoordinatorOptions& opts, const std::string& msg) {
  if (opts.log != nullptr) *opts.log << "[shard] " << msg << std::endl;
}

// Shards are whole escalation epochs when trials are coupled, so a
// shard boundary is always a legal checkpoint/hand-off point.
unsigned PlanShardSize(const ShardCampaignSpec& spec, unsigned shards) {
  shards = std::max(shards, 1u);
  unsigned size = (spec.runs + shards - 1) / shards;
  if (CoupledAcrossTrials(spec) && spec.escalation_epoch > 0) {
    const unsigned e = spec.escalation_epoch;
    size = (size + e - 1) / e * e;
  }
  return std::max(size, 1u);
}

struct ShardPlan {
  unsigned shard_size = 0;
  unsigned num_shards = 0;
  unsigned Begin(unsigned s) const { return s * shard_size; }
  unsigned End(unsigned s, unsigned runs) const {
    return std::min(runs, (s + 1) * shard_size);
  }
};

ShardPlan MakePlan(const ShardCampaignSpec& spec, unsigned shards) {
  ShardPlan p;
  p.shard_size = PlanShardSize(spec, shards);
  p.num_shards = (spec.runs + p.shard_size - 1) / p.shard_size;
  p.num_shards = std::max(p.num_shards, 1u);
  return p;
}

// Validates a result file against the plan; a std::nullopt means the
// artifact is missing/corrupt/mismatched and the shard must re-run.
std::optional<ShardResult> TryLoadResult(const std::string& path,
                                         std::uint64_t fingerprint,
                                         unsigned shard, unsigned begin,
                                         unsigned end, std::string* why) {
  try {
    ShardResult r = DecodeShardResult(ReadFileToString(path));
    if (r.fingerprint != fingerprint) throw std::runtime_error(
        "fingerprint mismatch");
    if (r.shard_index != shard || r.trial_begin != begin ||
        r.trial_end != end) {
      throw std::runtime_error("trial range mismatch");
    }
    if (r.counts.runs != end - begin) {
      throw std::runtime_error("incomplete trial count");
    }
    return r;
  } catch (const std::exception& e) {
    if (why != nullptr) *why = e.what();
    return std::nullopt;
  }
}

void SweepTempFiles(const std::string& dir) {
  for (const std::string& name : ListDir(dir)) {
    if (name.find(".tmp.") != std::string::npos) {
      RemoveFileIfExists(JoinPath(dir, name));
    }
  }
}

}  // namespace

const char* ScaleFlagName(apps::AppScale s) {
  switch (s) {
    case apps::AppScale::kTiny:
      return "tiny";
    case apps::AppScale::kSmall:
      return "small";
    case apps::AppScale::kMedium:
      return "medium";
  }
  return "?";
}

const char* SchemeFlagName(sim::Scheme s) {
  switch (s) {
    case sim::Scheme::kNone:
      return "none";
    case sim::Scheme::kDetectOnly:
      return "detect";
    case sim::Scheme::kDetectCorrect:
      return "correct";
  }
  return "?";
}

const char* TargetFlagName(Target t) {
  switch (t) {
    case Target::kHotBlocks:
      return "hot";
    case Target::kRestBlocks:
      return "rest";
    case Target::kMissWeighted:
      return "miss";
  }
  return "?";
}

bool CoupledAcrossTrials(const ShardCampaignSpec& spec) {
  const CampaignConfig cc = MakeCampaignConfig(spec);
  return cc.recovery.enabled && cc.recovery.escalate;
}

CampaignConfig MakeCampaignConfig(const ShardCampaignSpec& spec) {
  CampaignConfig cc;
  cc.target = spec.target;
  cc.faulty_blocks = spec.faulty_blocks;
  cc.bits_per_block = spec.bits_per_block;
  cc.runs = spec.runs;
  cc.seed = spec.seed;
  cc.recovery.enabled = spec.recovery_retries > 0;
  cc.recovery.max_retries = spec.recovery_retries;
  cc.escalation_epoch = spec.escalation_epoch;
  return cc;
}

std::uint64_t CampaignFingerprint(const ShardCampaignSpec& spec,
                                  std::uint64_t trace_checksum) {
  std::ostringstream os;
  os << "app=" << spec.app << "|scale=" << ScaleFlagName(spec.scale)
     << "|scheme=" << SchemeFlagName(spec.scheme) << "|cover=";
  if (spec.cover.has_value()) {
    os << *spec.cover;
  } else {
    os << "auto";
  }
  os << "|objects=";
  for (const std::string& o : spec.objects) os << o << ',';
  os << "|unsound=" << (spec.allow_unsound ? 1 : 0)
     << "|target=" << TargetFlagName(spec.target)
     << "|blocks=" << spec.faulty_blocks << "|bits=" << spec.bits_per_block
     << "|runs=" << spec.runs << "|seed=" << spec.seed
     << "|retries=" << spec.recovery_retries
     << "|epoch=" << spec.escalation_epoch << "|trace=" << trace_checksum
     << "|gpu=" << sim::DumpGpuConfig(spec.gpu);
  return bin::Fnv1a(os.str());
}

std::uint64_t TraceTailChecksum(const std::string& trace_bytes) {
  if (trace_bytes.size() < 8) {
    throw std::runtime_error("trace artifact too short for a checksum");
  }
  bin::Reader r(trace_bytes, "trace artifact");
  r.Skip(trace_bytes.size() - 8);
  return r.U64();
}

namespace {

// One worker process in flight.
struct Inflight {
  unsigned shard = 0;
  Subprocess proc;
  std::uint64_t started_ms = 0;
};

struct ShardState {
  unsigned attempts = 0;          // dispatches so far
  std::uint64_t eligible_ms = 0;  // backoff gate for the next dispatch
};

class Coordinator {
 public:
  Coordinator(const ShardCampaignSpec& spec, const CoordinatorOptions& opts)
      : spec_(spec), opts_(opts), plan_(MakePlan(spec, opts.shards)) {}

  ShardCampaignOutcome Run();

 private:
  bool Done(unsigned s) const { return results_.count(s) != 0; }
  unsigned NumDone() const {
    return static_cast<unsigned>(results_.size());
  }
  bool StopRequested() const {
    return opts_.stop != nullptr &&
           opts_.stop->load(std::memory_order_relaxed);
  }

  void PrepareTrace();
  void LoadOrInitManifest();
  void CheckpointManifest();
  void WriteHandoff(unsigned s);
  void Dispatch(unsigned s);
  // Returns false when the shard's retry budget is exhausted.
  bool RecordFailure(unsigned s, const std::string& why);
  void ReapAndTimeout();
  void DrainFleet();
  ShardCampaignOutcome Finish(int exit_code);

  const ShardCampaignSpec& spec_;
  const CoordinatorOptions& opts_;
  ShardPlan plan_;
  std::string trace_path_;
  std::string gpu_conf_path_;
  std::uint64_t fingerprint_ = 0;
  std::map<unsigned, ShardResult> results_;  // merged shards, by index
  std::vector<ShardState> state_;
  std::vector<Inflight> fleet_;
  unsigned redispatches_ = 0;
  bool budget_exhausted_ = false;
};

void Coordinator::PrepareTrace() {
  trace_path_ = opts_.trace_path.empty() ? JoinPath(opts_.workdir, "trace.bin")
                                         : opts_.trace_path;
  if (!FileExists(trace_path_)) {
    if (!opts_.trace_path.empty()) {
      throw std::runtime_error("trace artifact not found: " + trace_path_);
    }
    if (opts_.resume) {
      throw std::runtime_error(
          "cannot resume: trace artifact missing from " + opts_.workdir);
    }
    Log(opts_, "profiling " + spec_.app + " to record the trace artifact");
    auto app = apps::MakeApp(spec_.app, spec_.scale);
    const auto profile = apps::ProfileApp(*app, spec_.gpu);
    trace::SaveTraceFile(*profile.trace_store, trace_path_);
  }
  const std::string bytes = ReadFileToString(trace_path_);
  // Reject a corrupt artifact up front, before fanning it out to every
  // worker.
  trace::LoadTraceFromString(bytes);
  fingerprint_ = CampaignFingerprint(spec_, TraceTailChecksum(bytes));
}

void Coordinator::LoadOrInitManifest() {
  const std::string manifest_path = JoinPath(opts_.workdir, "manifest.bin");
  state_.assign(plan_.num_shards, ShardState{});
  if (opts_.resume && FileExists(manifest_path)) {
    const ShardManifest m =
        DecodeShardManifest(ReadFileToString(manifest_path));
    if (m.fingerprint != fingerprint_) {
      throw std::runtime_error(
          "cannot resume: manifest fingerprint does not match this "
          "campaign (different app, flags, config or trace)");
    }
    if (m.total_runs != spec_.runs || m.shard_size != plan_.shard_size ||
        m.num_shards != plan_.num_shards) {
      throw std::runtime_error(
          "cannot resume: manifest shard geometry does not match "
          "(--runs/--shards changed)");
    }
    for (const std::uint32_t s : m.done) {
      std::string why;
      auto r = TryLoadResult(ResultPath(opts_.workdir, s), fingerprint_, s,
                             plan_.Begin(s), plan_.End(s, spec_.runs), &why);
      if (r.has_value()) {
        results_.emplace(s, std::move(*r));
      } else {
        // The manifest says merged but the artifact is gone or bad —
        // demote to pending rather than trusting a half-truth.
        Log(opts_, "shard " + std::to_string(s) +
                       " result invalid on resume (" + why + "); re-running");
      }
    }
    Log(opts_, "resuming: " + std::to_string(NumDone()) + "/" +
                   std::to_string(plan_.num_shards) + " shards already done");
  } else if (opts_.resume) {
    Log(opts_, "resume requested but no manifest found; starting fresh");
  } else {
    // Fresh start: stale artifacts from an earlier campaign in the
    // same workdir must not be mistaken for this one's.
    RemoveFileIfExists(manifest_path);
    for (unsigned s = 0; s < plan_.num_shards; ++s) {
      RemoveFileIfExists(ResultPath(opts_.workdir, s));
      RemoveFileIfExists(HandoffPath(opts_.workdir, s));
      RemoveFileIfExists(LogPath(opts_.workdir, s));
    }
  }
  SweepTempFiles(opts_.workdir);
}

void Coordinator::CheckpointManifest() {
  ShardManifest m;
  m.fingerprint = fingerprint_;
  m.total_runs = spec_.runs;
  m.shard_size = plan_.shard_size;
  m.num_shards = plan_.num_shards;
  for (const auto& [s, r] : results_) m.done.push_back(s);
  WriteFileAtomic(JoinPath(opts_.workdir, "manifest.bin"),
                  EncodeShardManifest(m));
}

void Coordinator::WriteHandoff(unsigned s) {
  LedgerHandoff h;
  h.fingerprint = fingerprint_;
  for (unsigned p = 0; p < s; ++p) {
    const ShardResult& r = results_.at(p);
    h.epoch_deltas.insert(h.epoch_deltas.end(), r.offense_deltas.begin(),
                          r.offense_deltas.end());
  }
  WriteFileAtomic(HandoffPath(opts_.workdir, s), EncodeLedgerHandoff(h));
}

void Coordinator::Dispatch(unsigned s) {
  const bool coupled = CoupledAcrossTrials(spec_);
  if (coupled && s > 0) WriteHandoff(s);
  const bool first_attempt = state_[s].attempts == 0;
  std::vector<std::string> argv = {
      opts_.dcrm_binary,
      "shard-worker",
      spec_.app,
      "--scale=" + std::string(ScaleFlagName(spec_.scale)),
      "--scheme=" + std::string(SchemeFlagName(spec_.scheme)),
      "--target=" + std::string(TargetFlagName(spec_.target)),
      "--blocks=" + std::to_string(spec_.faulty_blocks),
      "--bits=" + std::to_string(spec_.bits_per_block),
      "--runs=" + std::to_string(spec_.runs),
      "--seed=" + std::to_string(spec_.seed),
      "--recovery=" + std::to_string(spec_.recovery_retries),
      "--epoch=" + std::to_string(spec_.escalation_epoch),
      "--jobs=" + std::to_string(spec_.jobs),
      "--config=" + gpu_conf_path_,
      "--load-trace=" + trace_path_,
      "--shard-index=" + std::to_string(s),
      "--trial-begin=" + std::to_string(plan_.Begin(s)),
      "--trial-end=" + std::to_string(plan_.End(s, spec_.runs)),
      "--fingerprint=" + std::to_string(fingerprint_),
      "--out=" + ResultPath(opts_.workdir, s),
  };
  if (spec_.cover.has_value()) {
    argv.push_back("--cover=" + std::to_string(*spec_.cover));
  }
  if (!spec_.objects.empty()) {
    std::string joined;
    for (const std::string& o : spec_.objects) {
      if (!joined.empty()) joined += ',';
      joined += o;
    }
    argv.push_back("--objects=" + joined);
  }
  if (spec_.allow_unsound) argv.push_back("--allow-unsound");
  if (coupled && s > 0) {
    argv.push_back("--ledger-in=" + HandoffPath(opts_.workdir, s));
  }
  if (first_attempt && opts_.kill_shard >= 0 &&
      static_cast<unsigned>(opts_.kill_shard) == s) {
    argv.push_back("--kill-after=" + std::to_string(opts_.kill_after));
  }
  if (first_attempt && opts_.hang_shard >= 0 &&
      static_cast<unsigned>(opts_.hang_shard) == s) {
    argv.push_back("--hang-after=" + std::to_string(opts_.hang_after));
  }
  Inflight f;
  f.shard = s;
  const std::string log = LogPath(opts_.workdir, s);
  f.proc = Subprocess::Spawn(argv, log, log);
  f.started_ms = MonotonicMs();
  ++state_[s].attempts;
  Log(opts_, "dispatched shard " + std::to_string(s) + " [" +
                 std::to_string(plan_.Begin(s)) + "," +
                 std::to_string(plan_.End(s, spec_.runs)) + ") attempt " +
                 std::to_string(state_[s].attempts) + " pid " +
                 std::to_string(f.proc.pid()));
  fleet_.push_back(std::move(f));
}

bool Coordinator::RecordFailure(unsigned s, const std::string& why) {
  RemoveFileIfExists(ResultPath(opts_.workdir, s));
  if (state_[s].attempts > opts_.max_retries) {
    Log(opts_, "shard " + std::to_string(s) + " failed (" + why +
                   "); retry budget exhausted after " +
                   std::to_string(state_[s].attempts) + " attempts");
    return false;
  }
  // Exponential backoff: 1x, 2x, 4x ... of backoff_ms per consecutive
  // failure of this shard.
  const std::uint64_t delay = opts_.backoff_ms
                              << std::min(state_[s].attempts - 1, 20u);
  state_[s].eligible_ms = MonotonicMs() + delay;
  ++redispatches_;
  Log(opts_, "shard " + std::to_string(s) + " failed (" + why +
                 "); re-dispatching in " + std::to_string(delay) + "ms");
  return true;
}

void Coordinator::ReapAndTimeout() {
  const std::uint64_t now = MonotonicMs();
  for (std::size_t i = 0; i < fleet_.size();) {
    Inflight& f = fleet_[i];
    std::optional<ExitStatus> status = f.proc.Poll();
    if (!status.has_value() && opts_.shard_timeout_ms > 0 &&
        now - f.started_ms > opts_.shard_timeout_ms) {
      // Hung worker: SIGKILL is the only signal a wedged process is
      // guaranteed to honour.
      f.proc.Kill(SIGKILL);
      status = f.proc.Wait();
      status->signaled = true;
      status->code = SIGKILL;
      Log(opts_, "shard " + std::to_string(f.shard) + " timed out after " +
                     std::to_string(opts_.shard_timeout_ms) + "ms");
    }
    if (!status.has_value()) {
      ++i;
      continue;
    }
    const unsigned s = f.shard;
    fleet_.erase(fleet_.begin() + static_cast<std::ptrdiff_t>(i));
    std::string why;
    if (status->ok()) {
      auto r = TryLoadResult(ResultPath(opts_.workdir, s), fingerprint_, s,
                             plan_.Begin(s), plan_.End(s, spec_.runs), &why);
      if (r.has_value()) {
        results_.emplace(s, std::move(*r));
        CheckpointManifest();
        Log(opts_, "shard " + std::to_string(s) + " merged (" +
                       std::to_string(NumDone()) + "/" +
                       std::to_string(plan_.num_shards) + ")");
        continue;
      }
      why = "result " + why;
    } else {
      why = status->Describe();
    }
    if (!RecordFailure(s, why)) budget_exhausted_ = true;
  }
}

void Coordinator::DrainFleet() {
  if (fleet_.empty()) return;
  for (Inflight& f : fleet_) f.proc.Kill(SIGTERM);
  const std::uint64_t deadline = MonotonicMs() + 2000;
  for (Inflight& f : fleet_) {
    while (f.proc.running() && MonotonicMs() < deadline) SleepMs(20);
    if (f.proc.running()) f.proc.Kill(SIGKILL);
    f.proc.Wait();
  }
  fleet_.clear();
}

ShardCampaignOutcome Coordinator::Finish(int exit_code) {
  DrainFleet();
  CheckpointManifest();
  SweepTempFiles(opts_.workdir);
  ShardCampaignOutcome out;
  out.exit_code = exit_code;
  out.shards_done = NumDone();
  out.shards_total = plan_.num_shards;
  out.redispatches = redispatches_;
  // Deterministic merge: ascending shard order, counts by element-wise
  // sum, the ledger by replaying every epoch delta — the same additions
  // the in-process engine performed, in the same order.
  for (const auto& [s, r] : results_) {
    out.counts += r.counts;
    for (const core::EscalationLedger& d : r.offense_deltas) {
      out.ledger.Merge(d);
    }
  }
  if (exit_code == kExitOk && !opts_.csv_path.empty()) {
    std::ofstream os(opts_.csv_path);
    if (!os) throw std::runtime_error("cannot write " + opts_.csv_path);
    WriteCountsCsv(out.counts, out.ledger, os);
  }
  return out;
}

ShardCampaignOutcome Coordinator::Run() {
  EnsureDir(opts_.workdir);
  // Workers must simulate the exact hardware config the fingerprint
  // was computed over, so the coordinator publishes it as an artifact
  // instead of trusting the user's --config to reach every child.
  gpu_conf_path_ = JoinPath(opts_.workdir, "gpu.conf");
  WriteFileAtomic(gpu_conf_path_, sim::DumpGpuConfig(spec_.gpu));
  PrepareTrace();
  LoadOrInitManifest();
  const bool coupled = CoupledAcrossTrials(spec_);
  // Tier-2 escalation makes shard N's plan depend on the offense
  // history of shards 0..N-1, so coupled campaigns dispatch strictly
  // in order, one at a time (parallelism comes from --jobs inside the
  // worker). Independent campaigns fan out across the fleet.
  const unsigned fleet_cap = coupled ? 1 : std::max(opts_.workers, 1u);
  Log(opts_, "campaign " + spec_.app + ": " + std::to_string(spec_.runs) +
                 " trials, " + std::to_string(plan_.num_shards) +
                 " shards of " + std::to_string(plan_.shard_size) +
                 (coupled ? " (coupled: sequential dispatch)" : "") +
                 ", fingerprint " + std::to_string(fingerprint_));

  while (NumDone() < plan_.num_shards) {
    if (StopRequested()) {
      Log(opts_, "stop requested; draining fleet and checkpointing");
      return Finish(kExitInterrupted);
    }
    if (opts_.stop_after_shards >= 0 &&
        NumDone() >= static_cast<unsigned>(opts_.stop_after_shards)) {
      Log(opts_, "injected preemption after " + std::to_string(NumDone()) +
                     " shards; checkpointing");
      return Finish(kExitInterrupted);
    }
    ReapAndTimeout();
    if (budget_exhausted_) return Finish(kExitRetriesExhausted);
    const std::uint64_t now = MonotonicMs();
    for (unsigned s = 0; s < plan_.num_shards && fleet_.size() < fleet_cap;
         ++s) {
      if (Done(s)) continue;
      const bool running = std::any_of(
          fleet_.begin(), fleet_.end(),
          [&](const Inflight& f) { return f.shard == s; });
      if (running) continue;
      // A coupled shard may not start before every predecessor merged.
      if (coupled && (s > 0 && !Done(s - 1))) break;
      if (now < state_[s].eligible_ms) continue;
      Dispatch(s);
    }
    if (NumDone() < plan_.num_shards) SleepMs(20);
  }
  return Finish(kExitOk);
}

}  // namespace

ShardCampaignOutcome RunShardCoordinator(const ShardCampaignSpec& spec,
                                         const CoordinatorOptions& opts) {
  if (opts.dcrm_binary.empty()) {
    throw std::runtime_error("shard coordinator needs the dcrm binary path");
  }
  Coordinator c(spec, opts);
  return c.Run();
}

int RunShardWorker(const ShardCampaignSpec& spec, const WorkerOptions& opts) {
  if (opts.trial_begin > opts.trial_end || opts.trial_end > spec.runs) {
    throw std::runtime_error("shard worker: trial range out of bounds");
  }
  const std::string trace_bytes = ReadFileToString(opts.trace_path);
  const std::uint64_t fp =
      CampaignFingerprint(spec, TraceTailChecksum(trace_bytes));
  if (opts.fingerprint != 0 && fp != opts.fingerprint) {
    throw std::runtime_error(
        "shard worker: campaign fingerprint mismatch — worker flags or "
        "trace artifact differ from the coordinator's");
  }
  const auto trace = trace::LoadTraceFromString(trace_bytes);
  auto app = apps::MakeApp(spec.app, spec.scale);
  const auto profile = apps::ProfileApp(*app, spec.gpu, {}, trace);
  // Cover resolution mirrors `dcrm campaign` exactly; it is
  // deterministic because every worker derives it from the same trace
  // artifact.
  unsigned cover = spec.cover.value_or(
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  if (spec.scheme == sim::Scheme::kNone) cover = 0;

  CampaignSpec cs;
  cs.make_app = [&spec] { return apps::MakeApp(spec.app, spec.scale); };
  cs.profile = &profile;
  cs.scheme = spec.scheme;
  cs.cover_objects = cover;
  cs.object_names = spec.objects;
  cs.allow_unsound = spec.allow_unsound;
  ParallelCampaign campaign(std::move(cs), std::max(spec.jobs, 1u));

  const CampaignConfig cc = MakeCampaignConfig(spec);
  const bool coupled = cc.recovery.enabled && cc.recovery.escalate;
  const unsigned epoch =
      coupled && cc.escalation_epoch > 0 ? cc.escalation_epoch : 0;
  std::uint32_t first_epoch = 0;
  if (coupled && epoch > 0) {
    if (opts.trial_begin % epoch != 0) {
      throw std::runtime_error(
          "shard worker: coupled shard must start on an escalation-epoch "
          "boundary");
    }
    first_epoch = opts.trial_begin / epoch;
  }

  // Catch-up: replay the escalation history of the epochs earlier
  // shards ran, so this process's plan (and replica allocation order)
  // is exactly what the in-process engine would have at trial_begin.
  if (!opts.ledger_in.empty()) {
    const LedgerHandoff h =
        DecodeLedgerHandoff(ReadFileToString(opts.ledger_in));
    if (h.fingerprint != fp) {
      throw std::runtime_error("shard worker: ledger handoff fingerprint "
                               "mismatch");
    }
    if (coupled && h.epoch_deltas.size() != first_epoch) {
      throw std::runtime_error(
          "shard worker: ledger handoff covers " +
          std::to_string(h.epoch_deltas.size()) + " epochs, expected " +
          std::to_string(first_epoch));
    }
    campaign.ReplayEscalations(h.epoch_deltas, cc.recovery);
  } else if (coupled && first_epoch != 0) {
    throw std::runtime_error(
        "shard worker: coupled shard needs an escalation-ledger handoff");
  }

  // Deterministic self-fault injection: the Kth completed trial in
  // this process pulls the trigger. SIGKILL is unmaskable — the test
  // double for a machine losing a worker mid-shard; the hang models a
  // wedged process and exercises the coordinator's timeout path.
  std::atomic<unsigned> completed{0};
  const std::function<void(unsigned)> after_trial = [&](unsigned) {
    const unsigned n = ++completed;
    if (opts.kill_after > 0 && n == opts.kill_after) raise(SIGKILL);
    if (opts.hang_after > 0 && n == opts.hang_after) {
      for (;;) SleepMs(1000);
    }
  };
  const bool inject = opts.kill_after > 0 || opts.hang_after > 0;

  CampaignCounts counts;
  std::vector<core::EscalationLedger> deltas;
  if (coupled && epoch > 0) {
    // One engine call per escalation epoch, snapshotting the ledger
    // around each so the result carries per-epoch offense deltas — the
    // granularity successor shards must replay at.
    for (unsigned lo = opts.trial_begin; lo < opts.trial_end;) {
      if (opts.stop != nullptr &&
          opts.stop->load(std::memory_order_relaxed)) {
        break;
      }
      const unsigned hi = std::min(opts.trial_end, lo + epoch);
      EngineOptions eo;
      eo.begin = lo;
      eo.end = hi;
      eo.stop = opts.stop;
      if (inject) eo.after_trial = &after_trial;
      const core::EscalationLedger before = campaign.ledger();
      const CampaignCounts c = campaign.Run(cc, eo);
      counts += c;
      if (c.runs < hi - lo) break;  // interrupted mid-epoch
      deltas.push_back(core::LedgerDelta(campaign.ledger(), before));
      lo = hi;
    }
  } else {
    EngineOptions eo;
    eo.begin = opts.trial_begin;
    eo.end = opts.trial_end;
    eo.stop = opts.stop;
    eo.max_wave = 512;  // stop-flag latency; never changes results
    if (inject) eo.after_trial = &after_trial;
    counts = campaign.Run(cc, eo);
    const core::EscalationLedger& after = campaign.ledger();
    if (!after.counts().empty()) deltas.push_back(after);
  }

  if (counts.runs < opts.trial_end - opts.trial_begin) {
    // Interrupted: shard results are all-or-nothing, so publish
    // nothing and exit resumable — the coordinator (or a resume) will
    // re-run the whole shard.
    return kExitInterrupted;
  }

  ShardResult result;
  result.fingerprint = fp;
  result.shard_index = opts.shard_index;
  result.trial_begin = opts.trial_begin;
  result.trial_end = opts.trial_end;
  result.first_epoch = first_epoch;
  result.counts = counts;
  result.offense_deltas = std::move(deltas);
  WriteFileAtomic(opts.out_path, EncodeShardResult(result));
  return kExitOk;
}

}  // namespace dcrm::fault
