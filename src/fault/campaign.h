// Fault-injection campaigns (Sections II-C, III-C and V-B):
// repeatedly run an application with permanent stuck-at multi-bit
// faults injected into selected 128B data memory blocks and classify
// each run's outcome.
//
// Block selection targets:
//  - kHotBlocks / kRestBlocks: uniform over the hot / non-hot touched
//    blocks (the Fig. 5 -> Fig. 6 experiment);
//  - kMissWeighted: over the whole application space with probability
//    proportional to each block's L1-missed accesses (the Fig. 8 ->
//    Fig. 9 experiment — misses are what L2/DRAM faults can reach).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "apps/driver.h"
#include "common/stats.h"
#include "core/protection.h"
#include "core/recovery.h"
#include "core/replication.h"
#include "sim/replication.h"

namespace dcrm::analysis {
class VulnerabilityMap;
}  // namespace dcrm::analysis

namespace dcrm::fault {

enum class Outcome : std::uint8_t {
  kMasked,     // output identical (within the app's metric threshold)
  kSdc,        // silent data corruption: output differs, nothing noticed
  kDetected,   // detection raised terminate and recovery was off/exhausted
  kDue,        // SECDED DUE and recovery was off/exhausted
  kCrash,      // faulted index arithmetic left the address space
  kRecovered,  // completed correctly only through recovery actions
               // (arbitration, escalated vote, or re-execution)
};

inline const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kMasked:
      return "masked";
    case Outcome::kSdc:
      return "sdc";
    case Outcome::kDetected:
      return "detected";
    case Outcome::kDue:
      return "due";
    case Outcome::kCrash:
      return "crash";
    case Outcome::kRecovered:
      return "recovered";
  }
  return "?";
}

enum class Target : std::uint8_t { kHotBlocks, kRestBlocks, kMissWeighted };

// Spatial fault footprint (see fault/fault_shapes.h). kWordBits is the
// paper's recipe; kColumn and kDramRow model the column/row failure
// modes of the DRAM field studies the paper cites.
enum class FaultShape : std::uint8_t { kWordBits, kColumn, kDramRow };

struct CampaignConfig {
  Target target = Target::kMissWeighted;
  FaultShape shape = FaultShape::kWordBits;
  unsigned faulty_blocks = 1;   // 1 or 5 in the paper
  unsigned bits_per_block = 2;  // 2, 3 or 4 in the paper (kWordBits)
  unsigned runs = 1000;
  std::uint64_t seed = 1;
  // Detect-to-recover pipeline (core/recovery.h). Disabled by default:
  // the paper's detect-and-die behaviour.
  core::RecoveryConfig recovery;
  // Trials per escalation epoch. Tier-2 repeat-offender escalation is
  // the only cross-trial coupling in a campaign; applying it after
  // every trial would serialize the engine. Instead, offense events
  // are merged into the campaign ledger and escalations applied at
  // fixed trial-index boundaries (every `escalation_epoch` trials), so
  // the schedule is a pure function of the config — identical at any
  // worker count. Ignored unless recovery escalation is active.
  unsigned escalation_epoch = 16;
  // Importance sampling: restrict block selection to the statically
  // SDC-reachable blocks (consumed and not fully checked by the plan —
  // analysis::SdcPossible). The SDC estimate stays unbiased by scaling
  // the conditional rate with the reachable weight share
  // (FaultCampaign::SamplingShare); trials stop being wasted on blocks
  // the static analysis proves harmless. Requires faulty_blocks == 1
  // and an in-block fault shape. Off by default — and when off, block
  // selection is bit-identical to campaigns that predate the flag.
  bool importance_sampling = false;
};

// Counter-based per-trial RNG stream seed: a splitmix64-style mix of
// (campaign_seed, trial_index). Every trial draws from its own stream,
// so trial T's faults do not depend on how many trials ran before it
// or on which worker runs it — the property the parallel engine's
// bit-for-bit determinism rests on.
std::uint64_t TrialSeed(std::uint64_t campaign_seed, std::uint64_t trial);

struct CampaignCounts {
  unsigned runs = 0;
  unsigned masked = 0;
  unsigned sdc = 0;
  unsigned detected = 0;
  unsigned due = 0;
  unsigned crash = 0;
  unsigned recovered = 0;
  std::uint64_t corrections = 0;  // majority-vote fixes performed
  // Per-tier recovery work done during this Run call (all zero when
  // recovery is disabled).
  core::RecoveryStats recovery;

  ProportionCi SdcCi(double confidence = 0.95) const {
    return BinomialCi(sdc, runs, confidence);
  }

  // Element-wise sum: trial merging is pure addition, so a campaign's
  // totals are the sum of any disjoint partition of its trials — the
  // property shard merging rests on.
  CampaignCounts& operator+=(const CampaignCounts& o) {
    runs += o.runs;
    masked += o.masked;
    sdc += o.sdc;
    detected += o.detected;
    due += o.due;
    crash += o.crash;
    recovered += o.recovered;
    corrections += o.corrections;
    recovery += o.recovery;
    return *this;
  }

  bool operator==(const CampaignCounts&) const = default;
};

// Everything one trial produces, self-contained so trials can run on
// any worker and merge in trial-index order: the outcome, this trial's
// vote-correction and recovery-stat deltas, and the offense events to
// feed the campaign's EscalationLedger.
struct TrialResult {
  Outcome outcome = Outcome::kMasked;
  std::uint64_t corrections = 0;
  core::RecoveryStats recovery;
  std::vector<mem::ObjectId> offenses;
};

// Merges one trial into the campaign totals. Pure addition, so the
// merged counts are independent of trial execution order.
void MergeTrialResult(CampaignCounts& counts, const TrialResult& r);

// Campaign-lifetime immutable tables, derived once from (profile,
// device layout) and shared read-only by every worker of a parallel
// campaign: the pristine store image trials restore from, the
// hot/rest block split, and the exposure-weighted sampling tables.
// Per-worker mutable state shrinks to the device, the data plane and
// the RecoveryManager.
struct CampaignTables {
  std::vector<std::byte> snapshot;  // pristine store image
  core::BlockSplit split;           // hot / rest block lists
  std::vector<std::uint64_t> weighted_blocks;
  std::vector<std::uint64_t> weight_prefix;  // cumulative txn weights

  // Static block-liveness map over the same traces (built once per
  // campaign, shared with the workers like everything else here) and
  // the SDC-reachable restriction of each sampling target that
  // importance sampling draws from. share[t] is the reachable fraction
  // of target t's selection probability mass — the unbiasing constant.
  std::shared_ptr<const analysis::VulnerabilityMap> vulnerability;
  std::vector<std::uint64_t> reachable_hot;
  std::vector<std::uint64_t> reachable_rest;
  std::vector<std::uint64_t> reachable_weighted;
  std::vector<std::uint64_t> reachable_weight_prefix;
  std::array<double, 3> reachable_share = {1.0, 1.0, 1.0};
};

// One campaign instance: the application with a fixed protection
// configuration. Reuses a single device via store snapshot/restore so
// a 1000-run campaign costs 1000 kernel executions, not 1000 setups.
class FaultCampaign {
 public:
  // `cover_objects` protects the first N objects of the Table III
  // coverage order with `scheme`; 0 or Scheme::kNone leaves the app
  // unprotected. `profile` must come from ProfileApp on this same app
  // (same scale).
  //
  // Launch gate: before any run, the static analyzer (src/analysis)
  // certifies the plan against the recorded access streams. Blocking
  // violations — a covered object the traces store to, replica
  // aliasing, LD/ST-table overflow — throw analysis::UnsoundPlanError
  // unless `allow_unsound` is set, so an unsound campaign cannot
  // silently produce garbage statistics.
  // `shared_tables` (optional) reuses another identically-configured
  // campaign's immutable tables instead of rebuilding them — the
  // parallel engine passes worker 0's tables to workers 1..N-1.
  FaultCampaign(apps::App& app, const apps::ProfileResult& profile,
                sim::Scheme scheme, unsigned cover_objects,
                mem::EccMode ecc = mem::EccMode::kNone,
                core::ReplicaPlacement placement =
                    core::ReplicaPlacement::kDefault,
                bool allow_unsound = false,
                std::shared_ptr<const CampaignTables> shared_tables = nullptr);

  // Extension: protect an explicit set of objects by name, including
  // writable ones (store propagation keeps the copies coherent, and
  // the host reads protected outputs through the voting plane). The
  // launch gate downgrades read-only/race violations that store
  // propagation soundly mitigates, so naming writable objects — the
  // explicit opt-in to the extension — passes; other violations still
  // refuse the launch unless `allow_unsound` is set.
  FaultCampaign(apps::App& app, const apps::ProfileResult& profile,
                sim::Scheme scheme,
                const std::vector<std::string>& object_names,
                mem::EccMode ecc = mem::EccMode::kNone,
                bool allow_unsound = false,
                std::shared_ptr<const CampaignTables> shared_tables = nullptr);

  // Runs the whole campaign serially: a thin jobs=1 call into the same
  // trial/merge engine the parallel campaign uses (see
  // fault/parallel_campaign.h), so serial and parallel results are
  // bit-identical by construction.
  CampaignCounts Run(const CampaignConfig& cfg);

  // Runs exactly one trial: builds that trial's faults from its own
  // counter-based RNG stream (TrialSeed(cfg.seed, trial)) and executes
  // it against this campaign's device. Touches per-trial state only —
  // the campaign-lifetime ledger is updated by the engine, never here.
  TrialResult RunTrial(const CampaignConfig& cfg, std::uint64_t trial);

  // Runs once with the given pre-selected faults (exposed for tests).
  // With recovery enabled this is the full tiered pipeline: scrub /
  // arbitrate in place, retire + re-execute up to the retry budget.
  // Tier-2 escalation is *not* applied here: merge the trial's offense
  // events into ledger() and call ApplyEscalations().
  Outcome RunOnce(const std::vector<mem::StuckAtFault>& faults);

  // Campaign-lifetime repeat-offender memory for serial Run() calls.
  // (A ParallelCampaign owns one shared ledger for all its workers.)
  core::EscalationLedger& ledger() { return ledger_; }
  const core::EscalationLedger& ledger() const { return ledger_; }

  // Applies Tier-2 escalations pending in `ledger` (default: this
  // campaign's own ledger) to this campaign's plan. Returns the number
  // of ranges newly escalated. No-op until recovery is enabled.
  unsigned ApplyEscalations() { return ApplyEscalations(ledger_); }
  unsigned ApplyEscalations(const core::EscalationLedger& ledger);

  // Turns on the detect-to-recover pipeline for subsequent runs.
  // Offense counts and escalations persist across runs of this
  // campaign (the repeat-offender memory). Run() calls this
  // automatically when cfg.recovery.enabled is set.
  void EnableRecovery(const core::RecoveryConfig& cfg);

  const core::RecoveryManager* recovery() const { return recovery_.get(); }

  const sim::ProtectionPlan& plan() const { return plan_; }

  // The campaign's immutable tables, shareable with fan-out replicas.
  std::shared_ptr<const CampaignTables> tables() const { return tables_; }

  // The static liveness map behind the tables (null only for profiles
  // without a trace store) and this device's ECC mode — what the
  // cross-check gate needs to re-derive the campaign's outcome bounds.
  const analysis::VulnerabilityMap* vulnerability() const {
    return tables_->vulnerability.get();
  }
  mem::EccMode ecc_mode() const { return dev_.ecc_mode(); }

  // Importance-sampling share for a target: the fraction of the
  // target's selection probability mass on SDC-reachable blocks. The
  // unbiased SDC estimate from an importance-sampled campaign is
  // share * (sdc / runs); 0 means SDC is statically impossible.
  double SamplingShare(Target target) const {
    return tables_->reachable_share[static_cast<std::size_t>(target)];
  }

 private:
  void FinishInit(bool allow_unsound,
                  std::shared_ptr<const CampaignTables> shared_tables);
  std::vector<float> ReadObservedOutputs() const;
  std::vector<std::uint64_t> SelectBlocks(const CampaignConfig& cfg,
                                          Rng& rng) const;

  apps::App* app_;
  const apps::ProfileResult* profile_;
  mem::DeviceMemory dev_;
  sim::ProtectionPlan plan_;
  std::unique_ptr<core::ProtectedDataPlane> protected_plane_;
  std::unique_ptr<core::RecoveryManager> recovery_;
  // Immutable after FinishInit; shared across parallel workers.
  std::shared_ptr<const CampaignTables> tables_;
  std::uint64_t last_corrections_ = 0;
  core::EscalationLedger ledger_;
};

}  // namespace dcrm::fault
