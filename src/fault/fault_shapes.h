// Extended fault shapes beyond the paper's k-bits-in-a-word recipe,
// modeled on the DRAM failure modes of the field studies the paper
// cites (Sridharan & Liberty [64], Sridharan et al. [63]): a large
// fraction of DRAM faults are not isolated word upsets but
// single-column, single-row or single-bank failures that corrupt a
// repeating bit position across a region.
#pragma once

#include <vector>

#include "common/rng.h"
#include "mem/fault_model.h"
#include "sim/request.h"

namespace dcrm::fault {

// Column failure within one 128B block: one bit position (0..31 of
// every aligned 32-bit word) stuck at the same value across the whole
// block — the footprint of a failed DRAM column intersected with one
// block. Bits within [lo, hi) only (application bytes).
std::vector<mem::StuckAtFault> MakeColumnFaults(Addr lo, Addr hi, Rng& rng);

// Row failure: the DRAM row containing `block` fails; every 128B
// block of that row (same channel, same bank, blocks_per_row
// consecutive row-local blocks) receives the same stuck column.
// Returns faults for all affected blocks, clamped to `limit` (the
// application address-space size).
std::vector<mem::StuckAtFault> MakeDramRowFaults(std::uint64_t block,
                                                 const sim::AddrMap& map,
                                                 Addr limit, Rng& rng);

// Blocks sharing the DRAM row of `block` (including itself), clamped
// to the address-space limit. Exposed for tests.
std::vector<std::uint64_t> BlocksInSameDramRow(std::uint64_t block,
                                               const sim::AddrMap& map,
                                               Addr limit);

}  // namespace dcrm::fault
