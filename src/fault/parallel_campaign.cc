#include "fault/parallel_campaign.h"

#include <algorithm>
#include <stdexcept>

namespace dcrm::fault {

CampaignCounts RunCampaignTrials(std::span<FaultCampaign* const> workers,
                                 core::EscalationLedger& ledger,
                                 ThreadPool* pool,
                                 const CampaignConfig& cfg) {
  if (workers.empty()) {
    throw std::invalid_argument("campaign engine needs at least one worker");
  }
  // Enable recovery on every worker up front (not lazily inside a
  // trial): all workers must allocate their spare pools at the same
  // point in their address-space lifetime so their layouts stay
  // identical, wave after wave.
  if (cfg.recovery.enabled) {
    for (FaultCampaign* w : workers) {
      if (w->recovery() == nullptr) w->EnableRecovery(cfg.recovery);
    }
  }

  // Tier-2 escalation is the only cross-trial coupling; without it the
  // whole campaign is one epoch.
  const bool cross_trial = cfg.recovery.enabled && cfg.recovery.escalate;
  const unsigned epoch = cross_trial && cfg.escalation_epoch > 0
                             ? cfg.escalation_epoch
                             : std::max(cfg.runs, 1u);

  CampaignCounts counts;
  std::vector<TrialResult> results(cfg.runs);
  for (unsigned begin = 0; begin < cfg.runs; begin += epoch) {
    const unsigned end = std::min(cfg.runs, begin + epoch);
    // Epoch prologue: bring every worker's plan up to date with the
    // ledger — escalations earned in earlier epochs (or earlier Run
    // calls) apply here, identically on each worker, in plan order.
    // Escalation work is campaign-level, so it is counted once (every
    // worker necessarily applies the same set), not summed over
    // workers.
    if (cross_trial) {
      unsigned applied_first = 0;
      for (std::size_t w = 0; w < workers.size(); ++w) {
        const unsigned applied = workers[w]->ApplyEscalations(ledger);
        if (w == 0) applied_first = applied;
      }
      counts.recovery.escalations += applied_first;
    }

    // Chunked fan-out: worker w owns the contiguous trial range
    // [begin + w*chunk, begin + (w+1)*chunk) — a pure function of the
    // config, never of scheduling.
    const unsigned span_n = end - begin;
    const unsigned lanes =
        std::min<unsigned>(static_cast<unsigned>(workers.size()), span_n);
    const unsigned chunk = (span_n + lanes - 1) / lanes;
    const auto run_lane = [&](unsigned w) {
      const unsigned lo = begin + w * chunk;
      const unsigned hi = std::min(end, lo + chunk);
      for (unsigned t = lo; t < hi; ++t) {
        results[t] = workers[w]->RunTrial(cfg, t);
      }
    };
    if (pool != nullptr && lanes > 1) {
      pool->Dispatch(lanes, run_lane);
    } else {
      for (unsigned w = 0; w < lanes; ++w) run_lane(w);
    }

    // Epoch epilogue: merge in trial-index order. The sums are
    // order-independent, but merging in index order keeps the ledger's
    // evolution identical to the serial engine's by inspection.
    for (unsigned t = begin; t < end; ++t) {
      MergeTrialResult(counts, results[t]);
      ledger.Merge(results[t].offenses);
    }
  }
  return counts;
}

ParallelCampaign::ParallelCampaign(CampaignSpec spec, unsigned jobs) {
  if (!spec.make_app || spec.profile == nullptr) {
    throw std::invalid_argument(
        "ParallelCampaign needs an app factory and a profile");
  }
  jobs = std::max(jobs, 1u);
  instances_.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) {
    Worker inst;
    inst.app = spec.make_app();
    if (inst.app == nullptr) {
      throw std::invalid_argument("CampaignSpec::make_app returned null");
    }
    // The analyzer launch gate certifies the plan once, on the first
    // worker; the remaining workers are byte-identical replicas of a
    // plan already proven sound, so re-analyzing per worker (let alone
    // per trial) would only burn setup time. The replicas likewise
    // reuse worker 0's immutable tables (snapshot, block split,
    // sampling weights) instead of rebuilding them N times.
    const bool allow_unsound = w == 0 ? spec.allow_unsound : true;
    const std::shared_ptr<const CampaignTables> shared =
        w == 0 ? nullptr : instances_.front().campaign->tables();
    if (!spec.object_names.empty()) {
      inst.campaign = std::make_unique<FaultCampaign>(
          *inst.app, *spec.profile, spec.scheme, spec.object_names, spec.ecc,
          allow_unsound, shared);
    } else {
      inst.campaign = std::make_unique<FaultCampaign>(
          *inst.app, *spec.profile, spec.scheme, spec.cover_objects, spec.ecc,
          spec.placement, allow_unsound, shared);
    }
    instances_.push_back(std::move(inst));
  }
  workers_.reserve(instances_.size());
  for (auto& inst : instances_) workers_.push_back(inst.campaign.get());
  if (jobs > 1) pool_ = std::make_unique<ThreadPool>(jobs);
}

ParallelCampaign::~ParallelCampaign() = default;

CampaignCounts ParallelCampaign::Run(const CampaignConfig& cfg) {
  return RunCampaignTrials(workers_, ledger_, pool_.get(), cfg);
}

}  // namespace dcrm::fault
