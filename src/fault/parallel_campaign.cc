#include "fault/parallel_campaign.h"

#include <algorithm>
#include <stdexcept>

namespace dcrm::fault {

CampaignCounts RunCampaignTrials(std::span<FaultCampaign* const> workers,
                                 core::EscalationLedger& ledger,
                                 ThreadPool* pool,
                                 const CampaignConfig& cfg) {
  return RunCampaignTrials(workers, ledger, pool, cfg, EngineOptions{});
}

CampaignCounts RunCampaignTrials(std::span<FaultCampaign* const> workers,
                                 core::EscalationLedger& ledger,
                                 ThreadPool* pool, const CampaignConfig& cfg,
                                 const EngineOptions& opts) {
  if (workers.empty()) {
    throw std::invalid_argument("campaign engine needs at least one worker");
  }
  if (cfg.importance_sampling) {
    // The reweighting math (SamplingShare) assumes the trial's outcome
    // is attributable to the one selected block, and that faults stay
    // inside it: multi-block trials and the row shape (which spreads
    // across unselected blocks) would bias the scaled estimate.
    if (cfg.faulty_blocks != 1) {
      throw std::invalid_argument(
          "importance sampling requires faulty_blocks == 1");
    }
    if (cfg.shape == FaultShape::kDramRow) {
      throw std::invalid_argument(
          "importance sampling requires an in-block fault shape");
    }
    for (FaultCampaign* w : workers) {
      if (w->vulnerability() == nullptr) {
        throw std::invalid_argument(
            "importance sampling needs a trace-backed profile "
            "(no vulnerability map available)");
      }
    }
  }
  const unsigned range_begin = std::min(opts.begin, cfg.runs);
  const unsigned range_end = std::min(opts.end, cfg.runs);
  if (range_begin > range_end) {
    throw std::invalid_argument("campaign engine trial range is inverted");
  }
  // Enable recovery on every worker up front (not lazily inside a
  // trial): all workers must allocate their spare pools at the same
  // point in their address-space lifetime so their layouts stay
  // identical, wave after wave.
  if (cfg.recovery.enabled) {
    for (FaultCampaign* w : workers) {
      if (w->recovery() == nullptr) w->EnableRecovery(cfg.recovery);
    }
  }

  // Tier-2 escalation is the only cross-trial coupling; without it the
  // whole campaign is one epoch. Coupled campaigns must pin the wave
  // to the escalation epoch (the prologue runs at wave boundaries);
  // uncoupled ones may shorten it for stop-flag latency — a pure
  // scheduling split that cannot change any per-trial result.
  const bool cross_trial = cfg.recovery.enabled && cfg.recovery.escalate;
  unsigned wave = cross_trial && cfg.escalation_epoch > 0
                      ? cfg.escalation_epoch
                      : std::max(cfg.runs, 1u);
  if (!cross_trial && opts.max_wave > 0) wave = std::min(wave, opts.max_wave);

  CampaignCounts counts;
  std::vector<TrialResult> results(range_end - range_begin);
  unsigned begin = range_begin;
  while (begin < range_end) {
    // Graceful stop: finish only whole waves, so a drained run is
    // resumable at the next globally-aligned boundary.
    if (opts.stop != nullptr &&
        opts.stop->load(std::memory_order_relaxed)) {
      break;
    }
    // Wave boundaries are GLOBAL multiples of `wave` counted from
    // trial 0, not from range_begin — so a range call entered
    // mid-campaign sees exactly the epoch grid the whole-campaign run
    // would.
    const unsigned end = static_cast<unsigned>(std::min<std::uint64_t>(
        range_end,
        (static_cast<std::uint64_t>(begin) / wave + 1) * wave));
    // Epoch prologue: bring every worker's plan up to date with the
    // ledger — escalations earned in earlier epochs (or earlier Run
    // calls) apply here, identically on each worker, in plan order.
    // Escalation work is campaign-level, so it is counted once (every
    // worker necessarily applies the same set), not summed over
    // workers.
    if (cross_trial) {
      unsigned applied_first = 0;
      for (std::size_t w = 0; w < workers.size(); ++w) {
        const unsigned applied = workers[w]->ApplyEscalations(ledger);
        if (w == 0) applied_first = applied;
      }
      counts.recovery.escalations += applied_first;
    }

    // Chunked fan-out: worker w owns the contiguous trial range
    // [begin + w*chunk, begin + (w+1)*chunk) — a pure function of the
    // config, never of scheduling.
    const unsigned span_n = end - begin;
    const unsigned lanes =
        std::min<unsigned>(static_cast<unsigned>(workers.size()), span_n);
    const unsigned chunk = (span_n + lanes - 1) / lanes;
    const auto run_lane = [&](unsigned w) {
      const unsigned lo = begin + w * chunk;
      const unsigned hi = std::min(end, lo + chunk);
      for (unsigned t = lo; t < hi; ++t) {
        results[t - range_begin] = workers[w]->RunTrial(cfg, t);
        if (opts.after_trial != nullptr) (*opts.after_trial)(t);
      }
    };
    if (pool != nullptr && lanes > 1) {
      pool->Dispatch(lanes, run_lane);
    } else {
      for (unsigned w = 0; w < lanes; ++w) run_lane(w);
    }

    // Epoch epilogue: merge in trial-index order. The sums are
    // order-independent, but merging in index order keeps the ledger's
    // evolution identical to the serial engine's by inspection.
    for (unsigned t = begin; t < end; ++t) {
      MergeTrialResult(counts, results[t - range_begin]);
      ledger.Merge(results[t - range_begin].offenses);
    }
    begin = end;
  }
  return counts;
}

std::vector<PrefixCounts> RunCampaignPrefixes(
    std::span<FaultCampaign* const> workers, core::EscalationLedger& ledger,
    ThreadPool* pool, const CampaignConfig& cfg,
    std::span<const unsigned> ends, const EngineOptions& opts) {
  if (ends.empty()) {
    throw std::invalid_argument("campaign prefixes need at least one end");
  }
  unsigned prev = 0;
  for (const unsigned e : ends) {
    if (e <= prev) {
      throw std::invalid_argument(
          "campaign prefix ends must be strictly ascending and nonzero");
    }
    prev = e;
  }
  if (ends.back() > cfg.runs) {
    throw std::invalid_argument("campaign prefix end exceeds cfg.runs");
  }
  const bool cross_trial = cfg.recovery.enabled && cfg.recovery.escalate;
  if (cross_trial) {
    const unsigned epoch = cfg.escalation_epoch;
    for (std::size_t i = 0; i + 1 < ends.size(); ++i) {
      if (epoch == 0 || ends[i] % epoch != 0) {
        throw std::invalid_argument(
            "coupled campaign prefix boundaries must be "
            "escalation-epoch-aligned");
      }
    }
  }

  std::vector<PrefixCounts> out;
  out.reserve(ends.size());
  CampaignCounts acc;
  unsigned begin = 0;
  for (const unsigned end : ends) {
    EngineOptions seg = opts;
    seg.begin = begin;
    seg.end = end;
    acc += RunCampaignTrials(workers, ledger, pool, cfg, seg);
    PrefixCounts p;
    p.end = end;
    p.counts = acc;
    p.ledger = ledger;  // snapshot: the state a cfg.runs==end run ends with
    out.push_back(std::move(p));
    begin = end;
    // A stop request drains the current segment at a wave boundary;
    // later prefixes would start mid-range relative to what actually
    // ran, so repeat the partial totals instead of fabricating them.
    if (opts.stop != nullptr && opts.stop->load(std::memory_order_relaxed) &&
        acc.runs < end) {
      while (out.size() < ends.size()) {
        PrefixCounts tail = out.back();
        tail.end = ends[out.size()];
        out.push_back(std::move(tail));
      }
      break;
    }
  }
  return out;
}

ParallelCampaign::ParallelCampaign(CampaignSpec spec, unsigned jobs) {
  if (!spec.make_app || spec.profile == nullptr) {
    throw std::invalid_argument(
        "ParallelCampaign needs an app factory and a profile");
  }
  jobs = std::max(jobs, 1u);
  instances_.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) {
    Worker inst;
    inst.app = spec.make_app();
    if (inst.app == nullptr) {
      throw std::invalid_argument("CampaignSpec::make_app returned null");
    }
    // The analyzer launch gate certifies the plan once, on the first
    // worker; the remaining workers are byte-identical replicas of a
    // plan already proven sound, so re-analyzing per worker (let alone
    // per trial) would only burn setup time. The replicas likewise
    // reuse worker 0's immutable tables (snapshot, block split,
    // sampling weights) instead of rebuilding them N times.
    const bool allow_unsound = w == 0 ? spec.allow_unsound : true;
    const std::shared_ptr<const CampaignTables> shared =
        w == 0 ? spec.shared_tables : instances_.front().campaign->tables();
    if (!spec.object_names.empty()) {
      inst.campaign = std::make_unique<FaultCampaign>(
          *inst.app, *spec.profile, spec.scheme, spec.object_names, spec.ecc,
          allow_unsound, shared);
    } else {
      inst.campaign = std::make_unique<FaultCampaign>(
          *inst.app, *spec.profile, spec.scheme, spec.cover_objects, spec.ecc,
          spec.placement, allow_unsound, shared);
    }
    instances_.push_back(std::move(inst));
  }
  workers_.reserve(instances_.size());
  for (auto& inst : instances_) workers_.push_back(inst.campaign.get());
  if (jobs > 1) pool_ = std::make_unique<ThreadPool>(jobs);
}

ParallelCampaign::~ParallelCampaign() = default;

CampaignCounts ParallelCampaign::Run(const CampaignConfig& cfg) {
  return RunCampaignTrials(workers_, ledger_, pool_.get(), cfg);
}

CampaignCounts ParallelCampaign::Run(const CampaignConfig& cfg,
                                     const EngineOptions& opts) {
  return RunCampaignTrials(workers_, ledger_, pool_.get(), cfg, opts);
}

std::vector<PrefixCounts> ParallelCampaign::RunPrefixes(
    const CampaignConfig& cfg, std::span<const unsigned> ends,
    const EngineOptions& opts) {
  return RunCampaignPrefixes(workers_, ledger_, pool_.get(), cfg, ends, opts);
}

void ParallelCampaign::ReplayEscalations(
    std::span<const core::EscalationLedger> deltas,
    const core::RecoveryConfig& rc) {
  if (rc.enabled) {
    for (FaultCampaign* w : workers_) {
      if (w->recovery() == nullptr) w->EnableRecovery(rc);
    }
  }
  const bool cross_trial = rc.enabled && rc.escalate;
  for (const core::EscalationLedger& delta : deltas) {
    // Mirror one in-process epoch boundary: the prologue applies
    // escalations earned *before* this epoch, then the epoch's offense
    // events merge in. Replayed applications are deliberately not
    // counted — the shards that originally earned them already did.
    if (cross_trial) {
      for (FaultCampaign* w : workers_) w->ApplyEscalations(ledger_);
    }
    ledger_.Merge(delta);
  }
}

}  // namespace dcrm::fault
