// Deterministic parallel fault-campaign engine.
//
// A fault campaign is embarrassingly parallel — trials are independent
// kernel executions — except for two things the serial engine used to
// hide: (a) every trial drew from one shared RNG, so trial T's faults
// depended on all earlier trials, and (b) Tier-2 repeat-offender
// escalation mutates the protection plan between trials. The engine
// here removes both couplings without changing what a campaign means:
//
//  * every trial seeds its own counter-based RNG stream from
//    TrialSeed(campaign_seed, trial_index);
//  * trials are chunked by trial index across `jobs` workers, each a
//    fully isolated campaign instance (own App, own DeviceMemory and
//    snapshot, own ProtectedDataPlane, own RecoveryManager);
//  * offense events merge into one EscalationLedger in trial-index
//    order at fixed epoch boundaries (CampaignConfig::escalation_epoch),
//    where every worker applies the same escalations in plan order.
//
// Consequence: CampaignCounts, per-tier recovery stats and the
// repeat-offender ledger are a pure function of (config, seed) —
// bit-identical at any worker count or scheduling, and
// FaultCampaign::Run is literally this engine at jobs=1.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "fault/campaign.h"

namespace dcrm::fault {

// Shared trial/merge engine. Runs cfg.runs trials chunked across
// `workers` (all constructed identically), merging results in
// trial-index order into the returned counts and offense events into
// `ledger`. With a null `pool` or a single worker the loop runs inline
// on the calling thread — the serial path.
CampaignCounts RunCampaignTrials(std::span<FaultCampaign* const> workers,
                                 core::EscalationLedger& ledger,
                                 ThreadPool* pool, const CampaignConfig& cfg);

// Everything one worker needs to build its private campaign instance.
// `make_app` must return a fresh App each call (apps deterministically
// initialize their objects, so every worker sees an identical address
//-space layout).
struct CampaignSpec {
  std::function<std::unique_ptr<apps::App>()> make_app;
  const apps::ProfileResult* profile = nullptr;
  sim::Scheme scheme = sim::Scheme::kNone;
  unsigned cover_objects = 0;
  // Non-empty selects the explicit-objects constructor (the writable
  // extension) and ignores cover_objects.
  std::vector<std::string> object_names;
  mem::EccMode ecc = mem::EccMode::kNone;
  core::ReplicaPlacement placement = core::ReplicaPlacement::kDefault;
  bool allow_unsound = false;
};

// N-worker front end over RunCampaignTrials. Construction builds the
// workers (the analyzer launch gate runs exactly once, on the first
// worker — fan-out replicas skip it) and the thread pool; Run fans the
// campaign out and merges. The ledger persists across Run calls, like
// the serial campaign's repeat-offender memory.
class ParallelCampaign {
 public:
  ParallelCampaign(CampaignSpec spec, unsigned jobs);
  ~ParallelCampaign();

  // Movable (worker pointers target heap-owned campaigns, so they
  // survive the move); not copyable.
  ParallelCampaign(ParallelCampaign&&) = default;
  ParallelCampaign& operator=(ParallelCampaign&&) = default;

  CampaignCounts Run(const CampaignConfig& cfg);

  unsigned jobs() const { return static_cast<unsigned>(workers_.size()); }
  const core::EscalationLedger& ledger() const { return ledger_; }
  // The first worker (the one the launch gate certified).
  const FaultCampaign& front() const { return *workers_.front(); }

 private:
  struct Worker {
    std::unique_ptr<apps::App> app;
    std::unique_ptr<FaultCampaign> campaign;
  };

  std::vector<Worker> instances_;
  std::vector<FaultCampaign*> workers_;
  core::EscalationLedger ledger_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dcrm::fault
