// Deterministic parallel fault-campaign engine.
//
// A fault campaign is embarrassingly parallel — trials are independent
// kernel executions — except for two things the serial engine used to
// hide: (a) every trial drew from one shared RNG, so trial T's faults
// depended on all earlier trials, and (b) Tier-2 repeat-offender
// escalation mutates the protection plan between trials. The engine
// here removes both couplings without changing what a campaign means:
//
//  * every trial seeds its own counter-based RNG stream from
//    TrialSeed(campaign_seed, trial_index);
//  * trials are chunked by trial index across `jobs` workers, each a
//    fully isolated campaign instance (own App, own DeviceMemory and
//    snapshot, own ProtectedDataPlane, own RecoveryManager);
//  * offense events merge into one EscalationLedger in trial-index
//    order at fixed epoch boundaries (CampaignConfig::escalation_epoch),
//    where every worker applies the same escalations in plan order.
//
// Consequence: CampaignCounts, per-tier recovery stats and the
// repeat-offender ledger are a pure function of (config, seed) —
// bit-identical at any worker count or scheduling, and
// FaultCampaign::Run is literally this engine at jobs=1.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "fault/campaign.h"

namespace dcrm::fault {

// Optional controls over one engine call. Defaults reproduce the
// classic whole-campaign run.
struct EngineOptions {
  // Global trial range [begin, end) to execute; kToEnd clamps to
  // cfg.runs. Trial indices, RNG streams and escalation-epoch
  // boundaries stay GLOBAL (multiples of cfg.escalation_epoch from
  // trial 0), so running a campaign as several range calls — on one
  // process or many — merges bit-identically to one whole-range call.
  static constexpr unsigned kToEnd = ~0u;
  unsigned begin = 0;
  unsigned end = kToEnd;

  // Checked at every wave boundary: when set, the engine stops
  // dispatching further trials and returns the counts merged so far
  // (always a whole number of waves — resumable at the next epoch
  // boundary). This is how SIGINT/SIGTERM drain without losing work.
  const std::atomic<bool>* stop = nullptr;

  // Caps the fan-out wave size when the campaign has no cross-trial
  // escalation coupling (otherwise the wave is pinned to the
  // escalation epoch). Purely a latency knob for the stop flag — wave
  // splits never change results. 0 = unbounded.
  unsigned max_wave = 0;

  // Invoked after every completed trial, possibly concurrently from
  // pool threads (the worker self-fault-injection hook).
  const std::function<void(unsigned trial)>* after_trial = nullptr;
};

// Shared trial/merge engine. Runs cfg.runs trials chunked across
// `workers` (all constructed identically), merging results in
// trial-index order into the returned counts and offense events into
// `ledger`. With a null `pool` or a single worker the loop runs inline
// on the calling thread — the serial path.
CampaignCounts RunCampaignTrials(std::span<FaultCampaign* const> workers,
                                 core::EscalationLedger& ledger,
                                 ThreadPool* pool, const CampaignConfig& cfg);
CampaignCounts RunCampaignTrials(std::span<FaultCampaign* const> workers,
                                 core::EscalationLedger& ledger,
                                 ThreadPool* pool, const CampaignConfig& cfg,
                                 const EngineOptions& opts);

// One prefix of a batched campaign: the totals and the ledger state
// after trials [0, end) — exactly what a standalone run with
// cfg.runs = end would have produced.
struct PrefixCounts {
  unsigned end = 0;  // the prefix boundary this snapshot belongs to
  CampaignCounts counts;
  core::EscalationLedger ledger;
};

// Batched-request execution (the service's coalescing primitive): runs
// trials [0, ends.back()) ONCE as successive range calls and snapshots
// the accumulated counts + ledger at every boundary in `ends`. Because
// trial results are a pure function of (config, seed, trial index) and
// range calls merge bit-identically to one whole-range call (the
// EngineOptions contract above), prefix i is bit-identical to a
// standalone run with cfg.runs = ends[i] — so N coalesced requests
// cost ends.back() trials instead of sum(ends).
//
// `ends` must be strictly ascending, nonzero, with ends.back() <=
// cfg.runs. Campaigns with cross-trial Tier-2 coupling additionally
// require every non-final boundary to be escalation-epoch-aligned: a
// mid-epoch range start applies pending escalations early, diverging
// from the single-run schedule (the scheduler never batches coupled
// campaigns, but the engine enforces it regardless). opts.begin/end
// are overridden per segment. If opts.stop drains a segment early,
// the remaining prefixes repeat the partial totals (counts.runs <
// end marks them incomplete).
std::vector<PrefixCounts> RunCampaignPrefixes(
    std::span<FaultCampaign* const> workers, core::EscalationLedger& ledger,
    ThreadPool* pool, const CampaignConfig& cfg,
    std::span<const unsigned> ends, const EngineOptions& opts);

// Everything one worker needs to build its private campaign instance.
// `make_app` must return a fresh App each call (apps deterministically
// initialize their objects, so every worker sees an identical address
//-space layout).
struct CampaignSpec {
  std::function<std::unique_ptr<apps::App>()> make_app;
  const apps::ProfileResult* profile = nullptr;
  sim::Scheme scheme = sim::Scheme::kNone;
  unsigned cover_objects = 0;
  // Non-empty selects the explicit-objects constructor (the writable
  // extension) and ignores cover_objects.
  std::vector<std::string> object_names;
  mem::EccMode ecc = mem::EccMode::kNone;
  core::ReplicaPlacement placement = core::ReplicaPlacement::kDefault;
  bool allow_unsound = false;
  // When set, worker 0 adopts these immutable tables instead of
  // rebuilding them (the service's content-addressed table cache).
  // The analyzer launch gate still runs on worker 0 regardless — table
  // reuse is a pure construction-cost optimization, never a soundness
  // shortcut.
  std::shared_ptr<const CampaignTables> shared_tables;
};

// N-worker front end over RunCampaignTrials. Construction builds the
// workers (the analyzer launch gate runs exactly once, on the first
// worker — fan-out replicas skip it) and the thread pool; Run fans the
// campaign out and merges. The ledger persists across Run calls, like
// the serial campaign's repeat-offender memory.
class ParallelCampaign {
 public:
  ParallelCampaign(CampaignSpec spec, unsigned jobs);
  ~ParallelCampaign();

  // Movable (worker pointers target heap-owned campaigns, so they
  // survive the move); not copyable.
  ParallelCampaign(ParallelCampaign&&) = default;
  ParallelCampaign& operator=(ParallelCampaign&&) = default;

  CampaignCounts Run(const CampaignConfig& cfg);
  CampaignCounts Run(const CampaignConfig& cfg, const EngineOptions& opts);

  // See RunCampaignPrefixes. The persistent ledger makes this suitable
  // only for a fresh instance (the service constructs one per batch).
  std::vector<PrefixCounts> RunPrefixes(const CampaignConfig& cfg,
                                        std::span<const unsigned> ends,
                                        const EngineOptions& opts);

  // Shard-worker catch-up: re-applies the escalation history of epochs
  // this process never ran. Each delta is one earlier epoch's offense
  // events (in epoch order); for each, every worker's plan applies the
  // pending escalations *before* the delta merges — exactly the
  // prologue/epilogue sequence the in-process engine performed — so
  // replica allocation order, and hence all downstream trial results,
  // are bit-identical to a single-process run. Replayed escalations
  // are not counted (the shards that earned them already counted them).
  void ReplayEscalations(std::span<const core::EscalationLedger> deltas,
                         const core::RecoveryConfig& rc);

  unsigned jobs() const { return static_cast<unsigned>(workers_.size()); }
  const core::EscalationLedger& ledger() const { return ledger_; }
  core::EscalationLedger& mutable_ledger() { return ledger_; }
  // The first worker (the one the launch gate certified).
  const FaultCampaign& front() const { return *workers_.front(); }

 private:
  struct Worker {
    std::unique_ptr<apps::App> app;
    std::unique_ptr<FaultCampaign> campaign;
  };

  std::vector<Worker> instances_;
  std::vector<FaultCampaign*> workers_;
  core::EscalationLedger ledger_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dcrm::fault
