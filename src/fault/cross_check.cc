#include "fault/cross_check.h"

#include <cmath>
#include <sstream>

#include "core/recovery.h"

namespace dcrm::fault {
namespace {

std::string Rate(unsigned num, unsigned den) {
  std::ostringstream os;
  os << num << "/" << den;
  return os.str();
}

}  // namespace

CrossCheckResult CrossCheckCounts(const FaultCampaign& campaign,
                                  const CampaignConfig& cfg,
                                  const CampaignCounts& counts,
                                  const CrossCheckOptions& opts) {
  const analysis::VulnerabilityMap* vuln = campaign.vulnerability();
  if (vuln == nullptr) {
    throw std::invalid_argument(
        "cross-check needs a trace-backed profile "
        "(no vulnerability map available)");
  }

  analysis::BoundsSpec spec;
  spec.faulty_blocks = cfg.faulty_blocks;
  spec.secded = campaign.ecc_mode() == mem::EccMode::kSecded;
  spec.recovery = cfg.recovery.enabled;
  spec.escalation = cfg.recovery.enabled && cfg.recovery.escalate;
  spec.in_block_shape = cfg.shape != FaultShape::kDramRow;
  spec.multi_bit_words =
      cfg.shape == FaultShape::kWordBits && cfg.bits_per_block >= 3;
  spec.due_capable_words =
      !(cfg.shape == FaultShape::kWordBits && cfg.bits_per_block <= 1);

  // The universe the trials actually drew from. Under importance
  // sampling that is the SDC-reachable restriction, so the observed
  // conditional rates compare against its bounds directly — no share
  // scaling inside the gate.
  const CampaignTables& t = *campaign.tables();
  const bool is = cfg.importance_sampling;
  analysis::TargetUniverse universe;
  switch (cfg.target) {
    case Target::kHotBlocks:
      universe.blocks = is ? t.reachable_hot : t.split.hot;
      break;
    case Target::kRestBlocks:
      universe.blocks = is ? t.reachable_rest : t.split.rest;
      break;
    case Target::kMissWeighted:
      universe.blocks = is ? t.reachable_weighted : t.weighted_blocks;
      universe.weight_prefix =
          is ? t.reachable_weight_prefix : t.weight_prefix;
      break;
  }

  CrossCheckResult r;
  r.runs = counts.runs;
  r.bounds = analysis::DeriveOutcomeBounds(*vuln, campaign.plan(), universe,
                                           spec);
  const analysis::OutcomeBounds& b = r.bounds;
  auto fail = [&r](const std::string& msg) { r.failures.push_back(msg); };

  // Structural facts first — exact, no statistical slack. Any hit here
  // means the engine (or the config it claims to have run) is broken,
  // regardless of trial count.
  if (counts.detected > 0 && !b.detected_possible) {
    fail("counted " + std::to_string(counts.detected) +
         " detection outcome(s) with no protection scheme active");
  }
  if (counts.due > 0 && !b.due_possible) {
    fail("counted " + std::to_string(counts.due) +
         " DUE outcome(s) the device cannot raise (no SECDED, or the "
         "fault shape never leaves 2 flips in one ECC word)");
  }
  if (counts.recovered > 0 && !b.recovered_possible) {
    fail("counted " + std::to_string(counts.recovered) +
         " recovered outcome(s) with no recoverable trigger "
         "(recovery disabled, or neither detection nor DUE possible)");
  }
  if (counts.corrections > 0 && !b.corrections_possible) {
    fail("counted " + std::to_string(counts.corrections) +
         " vote correction(s) under a plan that cannot vote "
         "(detect-only without escalation, or no scheme)");
  }
  if (!cfg.recovery.enabled && counts.recovery != core::RecoveryStats{}) {
    fail("recovery work counters are non-zero with recovery disabled");
  }
  if (b.sdc_max == 0.0 && counts.sdc + counts.crash > 0) {
    fail("counted " + std::to_string(counts.sdc + counts.crash) +
         " SDC/crash outcome(s) where silent corruption is statically "
         "impossible");
  }

  // Statistical checks: observed rates vs. selection-probability
  // bounds, with a Hoeffding slack for the Monte-Carlo noise.
  if (b.bounded && counts.runs > 0) {
    const double n = static_cast<double>(counts.runs);
    r.epsilon = std::sqrt(std::log(1.0 / opts.alpha) / (2.0 * n));
    const double sdc_rate =
        static_cast<double>(counts.sdc + counts.crash) / n;
    if (sdc_rate > b.sdc_max + r.epsilon) {
      std::ostringstream os;
      os << "SDC+crash rate " << Rate(counts.sdc + counts.crash, counts.runs)
         << " = " << sdc_rate << " exceeds the static bound " << b.sdc_max
         << " (+" << r.epsilon << " slack)";
      fail(os.str());
    }
    const double masked_rate = static_cast<double>(counts.masked) / n;
    if (masked_rate < b.masked_min - r.epsilon) {
      std::ostringstream os;
      os << "masked rate " << Rate(counts.masked, counts.runs) << " = "
         << masked_rate << " falls below the static floor " << b.masked_min
         << " (-" << r.epsilon << " slack)";
      fail(os.str());
    }
    // Detections require hitting a consumed protected block. Recovered
    // outcomes start from a detection too — unless SECDED is on, in
    // which case a DUE on any consumed block can open recovery.
    const unsigned detected_like =
        counts.detected + (spec.secded ? 0 : counts.recovered);
    const double detected_rate = static_cast<double>(detected_like) / n;
    if (detected_rate > b.detected_max + r.epsilon) {
      std::ostringstream os;
      os << "detection rate " << Rate(detected_like, counts.runs) << " = "
         << detected_rate << " exceeds the static bound " << b.detected_max
         << " (+" << r.epsilon << " slack)";
      fail(os.str());
    }
  }
  return r;
}

void WriteCrossCheckText(const CrossCheckResult& r, std::ostream& os) {
  const analysis::OutcomeBounds& b = r.bounds;
  os << "cross-check: " << r.runs << " trials vs static bounds over "
     << b.universe_blocks << " blocks (" << b.sdc_blocks
     << " SDC-reachable, " << b.inert_blocks << " inert)\n";
  if (b.bounded) {
    os << "  bounds: sdc<=" << b.sdc_max << " masked>=" << b.masked_min
       << " detected<=" << b.detected_max << " (slack " << r.epsilon
       << ")\n";
  } else {
    os << "  bounds: structural facts only (fault shape spreads across "
          "blocks)\n";
  }
  os << "  possible: detected=" << (b.detected_possible ? "yes" : "no")
     << " due=" << (b.due_possible ? "yes" : "no")
     << " recovered=" << (b.recovered_possible ? "yes" : "no")
     << " corrections=" << (b.corrections_possible ? "yes" : "no") << "\n";
  if (r.Pass()) {
    os << "  PASS: observed counts are consistent with the static "
          "analysis\n";
  } else {
    os << "  FAIL: " << r.failures.size() << " violation(s)\n";
    for (const std::string& f : r.failures) os << "    - " << f << "\n";
  }
}

}  // namespace dcrm::fault
