// Campaign cross-check gate: holds finished Monte-Carlo counts against
// the static outcome bounds of analysis/vulnerability.h — a statistical
// lint over the fault-injection engine itself.
//
// The static pass knows, from the traces and the plan alone, facts the
// campaign must obey: a scheme-less campaign cannot terminate a run
// with a detection, a SECDED-less device cannot raise a DUE, a
// detect-only plan without escalation cannot perform vote corrections
// (the PR 3 escalation-state bug class), and the SDC/masked rates must
// fall inside selection-probability bounds. A finished campaign whose
// counts violate any of these is not unlucky — it is broken (or its
// configuration is not the one it claims), and `dcrm campaign
// --cross-check` fails with its own exit code so CI can gate on it.
//
// Statistical checks use a Hoeffding slack: for n trials and a
// per-check false-positive budget alpha, an observed rate may exceed
// its bound by at most sqrt(ln(1/alpha) / 2n) before the gate fires.
// Bounds that are exactly 0 (or 1) are structural facts and are
// checked exactly, with no slack.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "analysis/vulnerability.h"
#include "fault/campaign.h"

namespace dcrm::fault {

// `dcrm campaign --cross-check` exit code when the observed counts
// fall outside the static bounds (README.md exit-code table).
inline constexpr int kExitBoundsViolated = 9;

struct CrossCheckOptions {
  // Per-check false-positive probability for the statistical checks.
  // The default keeps a CI that runs thousands of gated campaigns
  // effectively free of spurious failures.
  double alpha = 1e-9;
};

struct CrossCheckResult {
  analysis::OutcomeBounds bounds;
  double epsilon = 0.0;  // Hoeffding slack at the observed trial count
  unsigned runs = 0;
  std::vector<std::string> failures;  // empty => counts are in bounds

  bool Pass() const { return failures.empty(); }
};

// Derives the bounds for this campaign's configuration (plan, ECC
// mode, fault shape, sampling universe — the importance-sampling
// restriction included) and compares `counts` against them.
CrossCheckResult CrossCheckCounts(const FaultCampaign& campaign,
                                  const CampaignConfig& cfg,
                                  const CampaignCounts& counts,
                                  const CrossCheckOptions& opts = {});

void WriteCrossCheckText(const CrossCheckResult& r, std::ostream& os);

}  // namespace dcrm::fault
