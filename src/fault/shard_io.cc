#include "fault/shard_io.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/binio.h"

namespace dcrm::fault {

namespace {

constexpr char kResultMagic[8] = {'d', 'c', 'r', 'm', 's', 'h', 'r', '\n'};
constexpr char kManifestMagic[8] = {'d', 'c', 'r', 'm', 'm', 'f', 't', '\n'};
constexpr char kHandoffMagic[8] = {'d', 'c', 'r', 'm', 'l', 'd', 'g', '\n'};
constexpr std::uint32_t kVersion = 1;

// A ledger is a hash map; the wire form sorts entries by object id so
// encoding is canonical — equal ledgers encode to equal bytes, which
// the checksums and the CI `diff` both rely on.
std::vector<std::pair<mem::ObjectId, unsigned>> SortedEntries(
    const core::EscalationLedger& ledger) {
  std::vector<std::pair<mem::ObjectId, unsigned>> entries(
      ledger.counts().begin(), ledger.counts().end());
  std::sort(entries.begin(), entries.end());
  return entries;
}

void PutLedger(std::string& out, const core::EscalationLedger& ledger) {
  const auto entries = SortedEntries(ledger);
  bin::PutVarint(out, entries.size());
  for (const auto& [id, n] : entries) {
    bin::PutVarint(out, id);
    bin::PutVarint(out, n);
  }
}

core::EscalationLedger GetLedger(bin::Reader& r) {
  core::EscalationLedger ledger;
  const std::uint64_t n = r.Varint();
  if (n > r.remaining()) r.Corrupt("implausible ledger entry count");
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto id = static_cast<mem::ObjectId>(r.Varint());
    const auto count = static_cast<unsigned>(r.Varint());
    if (count == 0) r.Corrupt("zero-count ledger entry");
    ledger.Record(id, count);
  }
  return ledger;
}

// Counts serialize as a fixed field sequence; adding a field is a
// version bump, never a silent reinterpretation.
void PutCounts(std::string& out, const CampaignCounts& c) {
  bin::PutVarint(out, c.runs);
  bin::PutVarint(out, c.masked);
  bin::PutVarint(out, c.sdc);
  bin::PutVarint(out, c.detected);
  bin::PutVarint(out, c.due);
  bin::PutVarint(out, c.crash);
  bin::PutVarint(out, c.recovered);
  bin::PutVarint(out, c.corrections);
  bin::PutVarint(out, c.recovery.scrubs);
  bin::PutVarint(out, c.recovery.scrub_sticks);
  bin::PutVarint(out, c.recovery.arbitrations);
  bin::PutVarint(out, c.recovery.retired_blocks);
  bin::PutVarint(out, c.recovery.retries);
  bin::PutVarint(out, c.recovery.backoff_units);
  bin::PutVarint(out, c.recovery.escalations);
  bin::PutVarint(out, c.recovery.exhausted_runs);
}

CampaignCounts GetCounts(bin::Reader& r) {
  CampaignCounts c;
  c.runs = static_cast<unsigned>(r.Varint());
  c.masked = static_cast<unsigned>(r.Varint());
  c.sdc = static_cast<unsigned>(r.Varint());
  c.detected = static_cast<unsigned>(r.Varint());
  c.due = static_cast<unsigned>(r.Varint());
  c.crash = static_cast<unsigned>(r.Varint());
  c.recovered = static_cast<unsigned>(r.Varint());
  c.corrections = r.Varint();
  c.recovery.scrubs = r.Varint();
  c.recovery.scrub_sticks = r.Varint();
  c.recovery.arbitrations = r.Varint();
  c.recovery.retired_blocks = r.Varint();
  c.recovery.retries = r.Varint();
  c.recovery.backoff_units = r.Varint();
  c.recovery.escalations = r.Varint();
  c.recovery.exhausted_runs = r.Varint();
  return c;
}

std::string_view Open(const std::string& data, const char (&magic)[8],
                      const char* context, bin::Reader& r) {
  const std::string_view body = bin::CheckedPayload(
      data, std::string_view(magic, sizeof(magic)), context);
  r = bin::Reader(body, context);
  r.Skip(sizeof(magic));
  if (r.U32() != kVersion) r.Corrupt("unsupported version");
  return body;
}

void Finish(const bin::Reader& r) {
  if (r.remaining() != 0) r.Corrupt("trailing bytes");
}

}  // namespace

std::string EncodeShardResult(const ShardResult& r) {
  std::string out;
  out.append(kResultMagic, sizeof(kResultMagic));
  bin::PutU32(out, kVersion);
  bin::PutU64(out, r.fingerprint);
  bin::PutVarint(out, r.shard_index);
  bin::PutVarint(out, r.trial_begin);
  bin::PutVarint(out, r.trial_end);
  bin::PutVarint(out, r.first_epoch);
  PutCounts(out, r.counts);
  bin::PutVarint(out, r.offense_deltas.size());
  for (const core::EscalationLedger& d : r.offense_deltas) PutLedger(out, d);
  bin::AppendChecksum(out);
  return out;
}

ShardResult DecodeShardResult(const std::string& data) {
  bin::Reader r(std::string_view(), "shard result");
  Open(data, kResultMagic, "shard result", r);
  ShardResult out;
  out.fingerprint = r.U64();
  out.shard_index = static_cast<std::uint32_t>(r.Varint());
  out.trial_begin = static_cast<std::uint32_t>(r.Varint());
  out.trial_end = static_cast<std::uint32_t>(r.Varint());
  out.first_epoch = static_cast<std::uint32_t>(r.Varint());
  out.counts = GetCounts(r);
  const std::uint64_t n = r.Varint();
  if (n > r.remaining()) r.Corrupt("implausible delta count");
  out.offense_deltas.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    out.offense_deltas.push_back(GetLedger(r));
  }
  Finish(r);
  if (out.trial_begin > out.trial_end) r.Corrupt("inverted trial range");
  return out;
}

std::string EncodeShardManifest(const ShardManifest& m) {
  std::string out;
  out.append(kManifestMagic, sizeof(kManifestMagic));
  bin::PutU32(out, kVersion);
  bin::PutU64(out, m.fingerprint);
  bin::PutVarint(out, m.total_runs);
  bin::PutVarint(out, m.shard_size);
  bin::PutVarint(out, m.num_shards);
  bin::PutVarint(out, m.done.size());
  for (const std::uint32_t s : m.done) bin::PutVarint(out, s);
  bin::AppendChecksum(out);
  return out;
}

ShardManifest DecodeShardManifest(const std::string& data) {
  bin::Reader r(std::string_view(), "shard manifest");
  Open(data, kManifestMagic, "shard manifest", r);
  ShardManifest out;
  out.fingerprint = r.U64();
  out.total_runs = static_cast<std::uint32_t>(r.Varint());
  out.shard_size = static_cast<std::uint32_t>(r.Varint());
  out.num_shards = static_cast<std::uint32_t>(r.Varint());
  const std::uint64_t n = r.Varint();
  if (n > r.remaining()) r.Corrupt("implausible done count");
  out.done.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    out.done.push_back(static_cast<std::uint32_t>(r.Varint()));
  }
  Finish(r);
  for (const std::uint32_t s : out.done) {
    if (s >= out.num_shards) r.Corrupt("done shard out of range");
  }
  if (!std::is_sorted(out.done.begin(), out.done.end()) ||
      std::adjacent_find(out.done.begin(), out.done.end()) !=
          out.done.end()) {
    r.Corrupt("done shards not strictly ascending");
  }
  return out;
}

std::string EncodeLedgerHandoff(const LedgerHandoff& h) {
  std::string out;
  out.append(kHandoffMagic, sizeof(kHandoffMagic));
  bin::PutU32(out, kVersion);
  bin::PutU64(out, h.fingerprint);
  bin::PutVarint(out, h.epoch_deltas.size());
  for (const core::EscalationLedger& d : h.epoch_deltas) PutLedger(out, d);
  bin::AppendChecksum(out);
  return out;
}

LedgerHandoff DecodeLedgerHandoff(const std::string& data) {
  bin::Reader r(std::string_view(), "ledger handoff");
  Open(data, kHandoffMagic, "ledger handoff", r);
  LedgerHandoff out;
  out.fingerprint = r.U64();
  const std::uint64_t n = r.Varint();
  if (n > r.remaining()) r.Corrupt("implausible delta count");
  out.epoch_deltas.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    out.epoch_deltas.push_back(GetLedger(r));
  }
  Finish(r);
  return out;
}

void WriteCountsCsv(const CampaignCounts& c,
                    const core::EscalationLedger& ledger, std::ostream& os) {
  os << "row,runs,masked,sdc,detected,due,crash,recovered,corrections,"
        "scrubs,scrub_sticks,arbitrations,retired_blocks,retries,"
        "backoff_units,escalations,exhausted_runs\n";
  os << "counts," << c.runs << ',' << c.masked << ',' << c.sdc << ','
     << c.detected << ',' << c.due << ',' << c.crash << ',' << c.recovered
     << ',' << c.corrections << ',' << c.recovery.scrubs << ','
     << c.recovery.scrub_sticks << ',' << c.recovery.arbitrations << ','
     << c.recovery.retired_blocks << ',' << c.recovery.retries << ','
     << c.recovery.backoff_units << ',' << c.recovery.escalations << ','
     << c.recovery.exhausted_runs << '\n';
  for (const auto& [id, n] : SortedEntries(ledger)) {
    os << "offense," << id << ',' << n << '\n';
  }
}

}  // namespace dcrm::fault
