// Memory request flowing between SMs, the interconnect, L2 partitions
// and DRAM channels. Granularity is one 128B block transaction.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace dcrm::sim {

struct MemRequest {
  std::uint64_t id = 0;     // unique per simulation, for debugging
  Addr block = 0;           // 128B-aligned address
  bool is_write = false;
  bool is_replica = false;  // compare/vote traffic (diagnostics)
  std::uint32_t sm = 0;     // originating SM
};

// Static address mapping helpers (block-interleaved across channels,
// then across banks, then rows).
struct AddrMap {
  std::uint32_t num_channels;
  std::uint32_t num_banks;
  std::uint32_t blocks_per_row;

  std::uint32_t Channel(Addr block) const {
    return static_cast<std::uint32_t>((block / kBlockSize) % num_channels);
  }
  std::uint32_t Bank(Addr block) const {
    return static_cast<std::uint32_t>((block / kBlockSize / num_channels) %
                                      num_banks);
  }
  std::uint64_t Row(Addr block) const {
    return block / kBlockSize / num_channels / num_banks / blocks_per_row;
  }
};

}  // namespace dcrm::sim
