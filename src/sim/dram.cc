#include "sim/dram.h"

#include <algorithm>

namespace dcrm::sim {

DramChannel::DramChannel(const GpuConfig& cfg, const AddrMap& map)
    : cfg_(cfg), map_(map), banks_(cfg.dram_banks) {}

void DramChannel::Push(const MemRequest& req, std::uint64_t now) {
  queue_.push_back({req, now, false, 0});
}

void DramChannel::Tick(std::uint64_t now, std::vector<MemRequest>& done,
                       GpuStats& stats) {
  // Retire completed transfers.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->issued && it->done_at <= now) {
      done.push_back(it->req);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }

  // FR-FCFS: prefer the oldest request hitting an open row in a ready
  // bank; otherwise the oldest request whose bank is ready.
  Entry* pick = nullptr;
  bool pick_is_row_hit = false;
  for (auto& e : queue_) {
    if (e.issued) continue;
    const std::uint32_t b = map_.Bank(e.req.block);
    const Bank& bank = banks_[b];
    if (bank.ready_at > now) continue;
    const bool row_hit =
        bank.open_row >= 0 &&
        bank.open_row == static_cast<std::int64_t>(map_.Row(e.req.block));
    if (row_hit) {
      pick = &e;
      pick_is_row_hit = true;
      break;  // oldest row hit wins
    }
    if (pick == nullptr) pick = &e;  // remember oldest ready as fallback
  }
  if (pick == nullptr) return;

  const std::uint32_t b = map_.Bank(pick->req.block);
  Bank& bank = banks_[b];
  const auto row = static_cast<std::int64_t>(map_.Row(pick->req.block));

  std::uint64_t access_latency = cfg_.t_cl;
  if (!pick_is_row_hit) {
    if (bank.open_row >= 0) access_latency += cfg_.t_rp;  // precharge
    access_latency += cfg_.t_rcd;                          // activate
  }
  // Small deterministic per-request jitter (0..3 cycles, hashed from
  // the request id) standing in for refresh/arbitration noise. Without
  // it the perfectly symmetric workloads phase-lock: all SMs' warps
  // stream in lockstep and the L2 hit pattern becomes chaotically
  // sensitive to any perturbation (e.g. enabling replication), which
  // real arbitration noise decorrelates.
  std::uint64_t h = pick->req.id * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 33;
  access_latency += h & 3;
  const std::uint64_t data_start =
      std::max(now + access_latency, bus_free_);
  pick->done_at = data_start + cfg_.burst_cycles;
  pick->issued = true;
  bus_free_ = pick->done_at;
  bank.open_row = row;
  bank.ready_at = pick->done_at;

  if (pick->req.is_write) {
    ++stats.dram_writes;
  } else {
    ++stats.dram_reads;
  }
  if (pick_is_row_hit) ++stats.dram_row_hits;
}

std::uint64_t DramChannel::NextWakeup(std::uint64_t now) const {
  std::uint64_t t = kNeverCycle;
  for (const auto& e : queue_) {
    // Issued entries fire at their transfer completion; unissued ones
    // become schedulable once their bank is ready.
    const std::uint64_t when =
        e.issued ? std::max(e.done_at, now + 1)
                 : std::max(banks_[map_.Bank(e.req.block)].ready_at, now + 1);
    if (when < t) t = when;
    if (t == now + 1) break;  // nothing can be due sooner
  }
  return t;
}

}  // namespace dcrm::sim
