// Top-level timing simulator: SMs + interconnect + memory partitions,
// replaying kernel traces to completion. Kernels run back-to-back
// (caches stay warm across kernels of one application, as on hardware).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.h"
#include "sim/interconnect.h"
#include "sim/partition.h"
#include "sim/replication.h"
#include "sim/sm.h"
#include "sim/stats.h"
#include "trace/trace_store.h"

namespace dcrm::sim {

class Gpu {
 public:
  Gpu(const GpuConfig& cfg, ProtectionPlan plan);

  // Simulates the store's kernels in order; returns accumulated
  // statistics. Throws std::runtime_error if the simulation exceeds
  // `max_cycles` (deadlock guard).
  GpuStats Run(const trace::TraceStore& store,
               std::uint64_t max_cycles = 2'000'000'000ULL);

  // Convenience for hand-built traces (tests): flattens into a store
  // first. Replay order is identical either way.
  GpuStats Run(const std::vector<trace::KernelTrace>& kernels,
               std::uint64_t max_cycles = 2'000'000'000ULL);

  const ProtectionPlan& plan() const { return plan_; }

 private:
  void RunKernel(const trace::KernelView& kernel, GpuStats& stats,
                 std::uint64_t max_cycles);

  GpuConfig cfg_;
  ProtectionPlan plan_;
  AddrMap map_;
  Interconnect icnt_;
  std::vector<std::unique_ptr<SmCore>> sms_;
  std::vector<std::unique_ptr<MemPartition>> partitions_;
  std::uint64_t cycle_ = 0;
};

}  // namespace dcrm::sim
