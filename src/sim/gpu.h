// Top-level timing simulator: SMs + interconnect + memory partitions,
// replaying kernel traces to completion. Kernels run back-to-back
// (caches stay warm across kernels of one application, as on hardware).
//
// Two interchangeable replay engines (GpuConfig::engine):
//   - cycle-stepped (reference): dispatch + tick every component every
//     cycle, the original loop.
//   - event-driven: each component reports a conservative next-wakeup
//     cycle into an EventQueue and only ticks when due; idle spans are
//     skipped in one O(log n) queue advance. Because a component whose
//     wakeup has not arrived would tick as a pure no-op (no state or
//     stat change), the two engines are bit-identical in cycle counts
//     and all statistics except GpuStats::sim_ticks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.h"
#include "sim/interconnect.h"
#include "sim/partition.h"
#include "sim/replication.h"
#include "sim/sm.h"
#include "sim/stats.h"
#include "trace/trace_store.h"

namespace dcrm::sim {

class Gpu {
 public:
  Gpu(const GpuConfig& cfg, ProtectionPlan plan);

  // Simulates the store's kernels in order; returns accumulated
  // statistics. Throws std::runtime_error if the simulation exceeds
  // `max_cycles` (deadlock guard).
  GpuStats Run(const trace::TraceStore& store,
               std::uint64_t max_cycles = 2'000'000'000ULL);

  // Convenience for hand-built traces (tests): flattens into a store
  // first. Replay order is identical either way.
  GpuStats Run(const std::vector<trace::KernelTrace>& kernels,
               std::uint64_t max_cycles = 2'000'000'000ULL);

  const ProtectionPlan& plan() const { return plan_; }

  // Per-component statistics from the last Run (index = SM id /
  // partition id; cycles stays zero on the per-component records).
  // Both engines fill these identically except sim_ticks, which counts
  // how often the engine ticked that component — every cycle for the
  // cycle-stepped engine, only due cycles for the event engine.
  const std::vector<GpuStats>& PerSmStats() const { return sm_stats_; }
  const std::vector<GpuStats>& PerPartitionStats() const {
    return part_stats_;
  }

 private:
  using CtaList = std::vector<std::vector<trace::WarpSlice>>;

  void RunKernel(const trace::KernelView& kernel, std::uint64_t max_cycles);
  void RunKernelCycleStepped(const CtaList& ctas,
                             std::uint32_t warps_per_cta,
                             std::uint64_t max_cycles);
  void RunKernelEventDriven(const CtaList& ctas,
                            std::uint32_t warps_per_cta,
                            std::uint64_t max_cycles);
  bool AnyBusy() const;

  GpuConfig cfg_;
  ProtectionPlan plan_;
  AddrMap map_;
  Interconnect icnt_;
  std::vector<std::unique_ptr<SmCore>> sms_;
  std::vector<std::unique_ptr<MemPartition>> partitions_;
  std::vector<GpuStats> sm_stats_;
  std::vector<GpuStats> part_stats_;
  std::uint64_t cycle_ = 0;
  std::uint64_t ticks_ = 0;  // engine rounds (GpuStats::sim_ticks)
};

}  // namespace dcrm::sim
