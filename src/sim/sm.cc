#include "sim/sm.h"

#include <algorithm>
#include <stdexcept>

namespace dcrm::sim {

SmCore::SmCore(const GpuConfig& cfg, std::uint32_t id, const AddrMap& map,
               const ProtectionPlan& plan)
    : cfg_(cfg),
      id_(id),
      map_(map),
      plan_(&plan),
      l1_(cfg.L1Sets(), cfg.l1_ways),
      cta_slots_(cfg.max_ctas_per_sm, -1) {}

bool SmCore::CanAcceptCta(std::uint32_t warps_in_cta) const {
  if (resident_warps_ + warps_in_cta > cfg_.max_warps_per_sm) return false;
  return std::any_of(cta_slots_.begin(), cta_slots_.end(),
                     [](std::int32_t s) { return s < 0; });
}

void SmCore::AddCta(const std::vector<trace::WarpSlice>& warps) {
  const auto slot_it =
      std::find_if(cta_slots_.begin(), cta_slots_.end(),
                   [](std::int32_t s) { return s < 0; });
  if (slot_it == cta_slots_.end()) {
    throw std::logic_error("AddCta called with no free CTA slot");
  }
  const auto slot = static_cast<std::uint32_t>(slot_it - cta_slots_.begin());
  *slot_it = static_cast<std::int32_t>(warps.size());
  for (const trace::WarpSlice& wt : warps) {
    WarpCtx ctx;
    ctx.tr = wt;
    ctx.age = next_age_++;
    ctx.cta_slot = slot;
    // Reuse a retired warp context if available to bound the vector.
    auto dead = std::find_if(warps_.begin(), warps_.end(),
                             [](const WarpCtx& w) { return w.done; });
    if (dead != warps_.end()) {
      *dead = ctx;
    } else {
      warps_.push_back(ctx);
    }
  }
  resident_warps_ += static_cast<std::uint32_t>(warps.size());
}

void SmCore::Tick(std::uint64_t now, Interconnect& icnt, GpuStats& stats) {
  // Free lazy-compare entries whose comparator pass finished.
  while (!compare_done_.empty() && compare_done_.top() <= now) {
    compare_done_.pop();
    --compare_in_use_;
  }
  ProcessCompletions(now);
  ProcessResponses(now, icnt, stats);
  ProcessLdst(now, icnt, stats);
  IssueWarps(now, stats);
}

void SmCore::ProcessCompletions(std::uint64_t now) {
  while (!hit_completions_.empty() && hit_completions_.top().first <= now) {
    const std::uint32_t slot = hit_completions_.top().second;
    hit_completions_.pop();
    CompleteBlocking(slot, now);
  }
}

void SmCore::CompleteBlocking(std::uint32_t warp_slot, std::uint64_t now) {
  WarpCtx& w = warps_[warp_slot];
  if (w.pending == 0) {
    throw std::logic_error("transaction completion with no pending count");
  }
  --w.pending;
  if (w.pending == 0 && w.queued_txns == 0) {
    // Dependent arithmetic consumes the loaded values before the next
    // memory instruction can issue.
    w.inflight = 0;
    w.ready_at = now + cfg_.alu_cycles_per_mem;
    RetireWarpIfDone(warp_slot);
  }
}

void SmCore::RetireWarpIfDone(std::uint32_t warp_slot) {
  WarpCtx& w = warps_[warp_slot];
  if (w.done || !w.Finished()) return;
  w.done = true;
  resident_warps_ -= 1;
  if (--cta_slots_[w.cta_slot] == 0) {
    cta_slots_[w.cta_slot] = -1;  // CTA retired; slot reusable
  }
}

void SmCore::ProcessResponses(std::uint64_t now, Interconnect& icnt,
                              GpuStats& stats) {
  // Responses are already serialized by the partition ports; drain all
  // that arrived this cycle.
  while (auto resp = icnt.PopResponseFor(id_, now)) {
    auto* table = &mshrs_;
    auto it = mshrs_.find(resp->block);
    if (it == mshrs_.end()) {
      table = &replica_mshrs_;
      it = replica_mshrs_.find(resp->block);
      if (it == replica_mshrs_.end()) {
        throw std::logic_error("response with no matching MSHR");
      }
    }
    if (it->second.fill) l1_.Fill(resp->block);
    for (const Waiter& waiter : it->second.waiters) {
      switch (waiter.kind) {
        case WaiterKind::kBlocking:
          CompleteBlocking(waiter.warp_slot, now);
          break;
        case WaiterKind::kCompare: {
          // 256-bit comparator: 128B in 4 passes; entries free in
          // arrival order.
          comparator_free_ =
              std::max(comparator_free_, now) + cfg_.CompareCycles();
          compare_done_.push(comparator_free_);
          ++stats.comparisons;
          break;
        }
      }
    }
    table->erase(it);
  }
}

void SmCore::ProcessLdst(std::uint64_t now, Interconnect& icnt,
                         GpuStats& stats) {
  for (std::uint32_t n = 0; n < cfg_.ldst_throughput && !ldst_q_.empty();
       ++n) {
    const Transaction t = ldst_q_.front();
    WarpCtx& w = warps_[t.warp_slot];

    if (t.is_store) {
      // Write-through, no-allocate: update the line if present, always
      // forward to the partition.
      l1_.Access(t.block, /*allocate=*/false);
      MemRequest req{next_req_id_++, t.block, /*is_write=*/true,
                     /*is_replica=*/false, id_};
      icnt.PushRequest(req, now, map_.Channel(t.block));
      if (plan_->propagate_stores && plan_->PcTracked(t.pc)) {
        if (const ProtectedRange* range = plan_->Lookup(t.block)) {
          // Writable-object extension: mirror the store to each copy
          // (fire-and-forget, like the primary write-through).
          for (unsigned c = 0; c < plan_->NumCopies(); ++c) {
            const Addr rblock = range->ReplicaAddr(c, t.block);
            ++stats.replica_transactions;
            MemRequest rreq{next_req_id_++, rblock, /*is_write=*/true,
                            /*is_replica=*/true, id_};
            icnt.PushRequest(rreq, now, map_.Channel(rblock));
          }
        }
      }
      ldst_q_.pop_front();
      --w.queued_txns;
      if (w.pending == 0 && w.queued_txns == 0) {
        w.inflight = 0;
        RetireWarpIfDone(t.warp_slot);
      }
      continue;
    }

    const ProtectedRange* range =
        plan_->PcTracked(t.pc) ? plan_->Lookup(t.block) : nullptr;

    // Access with allocate=false is idempotent on a miss, so stall
    // retries below re-evaluate it safely next cycle.
    if (l1_.Access(t.block, /*allocate=*/false)) {
      ++stats.l1_accesses;
      ++stats.l1_hits;
      hit_completions_.emplace(now + cfg_.l1_latency, t.warp_slot);
      ldst_q_.pop_front();
      --w.queued_txns;
      continue;
    }

    // L1 miss. Merge into an existing MSHR if possible (a pending
    // hit: no new L2 traffic).
    if (auto it = mshrs_.find(t.block); it != mshrs_.end()) {
      ++stats.l1_accesses;
      ++stats.l1_pending_hits;
      it->second.waiters.push_back({t.warp_slot, WaiterKind::kBlocking});
      it->second.fill = true;
      ldst_q_.pop_front();
      --w.queued_txns;
      continue;
    }
    if (mshrs_.size() >= cfg_.l1_mshrs) {
      ++stats.mshr_stalls;  // counted per stalled cycle
      break;                // head-of-line blocked; retry next cycle
    }
    // Lazy detection needs a compare-queue entry per replicated miss.
    const bool lazy_detect = range != nullptr &&
                             plan_->scheme == Scheme::kDetectOnly &&
                             plan_->lazy_compare;
    if (lazy_detect && compare_in_use_ >= cfg_.compare_queue_entries) {
      ++stats.compare_queue_stalls;
      break;
    }
    if (range != nullptr &&
        replica_mshrs_.size() + plan_->NumCopies() > kReplicaMshrCap) {
      ++stats.compare_queue_stalls;  // replica tracking buffer full
      break;
    }
    ++stats.l1_accesses;
    ++stats.l1_misses;
    if (cfg_.collect_block_misses) {
      ++stats.block_misses[t.block / kBlockSize];
    }

    Mshr& mshr = mshrs_[t.block];
    mshr.fill = true;
    mshr.waiters.push_back({t.warp_slot, WaiterKind::kBlocking});
    MemRequest req{next_req_id_++, t.block, /*is_write=*/false,
                   /*is_replica=*/false, id_};
    icnt.PushRequest(req, now, map_.Channel(t.block));

    if (range != nullptr) {
      const bool blocking_copies =
          plan_->scheme == Scheme::kDetectCorrect || !plan_->lazy_compare;
      for (unsigned c = 0; c < plan_->NumCopies(); ++c) {
        const Addr rblock = range->ReplicaAddr(c, t.block);
        ++stats.replica_transactions;
        const Waiter waiter{t.warp_slot, blocking_copies
                                             ? WaiterKind::kBlocking
                                             : WaiterKind::kCompare};
        if (blocking_copies) ++w.pending;
        if (!blocking_copies) ++compare_in_use_;
        if (auto rit = replica_mshrs_.find(rblock);
            rit != replica_mshrs_.end()) {
          rit->second.waiters.push_back(waiter);
        } else {
          Mshr& rmshr = replica_mshrs_[rblock];
          rmshr.fill = false;  // compare traffic never fills L1
          rmshr.waiters.push_back(waiter);
          MemRequest rreq{next_req_id_++, rblock, /*is_write=*/false,
                          /*is_replica=*/true, id_};
          icnt.PushRequest(rreq, now, map_.Channel(rblock));
        }
      }
    }
    ldst_q_.pop_front();
    --w.queued_txns;
  }
}

bool SmCore::CanIssue(const WarpCtx& w, std::uint64_t now) const {
  if (w.done) return false;
  if (w.next_inst >= w.tr.NumInsts()) return false;
  if (w.inflight >= cfg_.max_warp_mlp) return false;
  if (now < w.ready_at) return false;
  const trace::InstView inst = w.tr.Inst(w.next_inst);
  return ldst_q_.size() + inst.blocks.size() <= kLdstQueueCap;
}

void SmCore::IssueOne(std::uint32_t idx, std::uint64_t now,
                      GpuStats& stats) {
  WarpCtx& w = warps_[idx];
  const trace::InstView inst = w.tr.Inst(w.next_inst);
  const bool is_store = inst.type == AccessType::kStore;
  for (Addr block : inst.blocks) {
    ldst_q_.push_back({block, idx, inst.pc, is_store});
    ++w.queued_txns;
  }
  if (!is_store) {
    w.pending += static_cast<std::uint32_t>(inst.blocks.size());
    ++w.inflight;
  } else {
    // Stores don't block; the ALU gate still spaces instructions.
    w.ready_at = now + cfg_.alu_cycles_per_mem;
  }
  ++w.next_inst;
  ++stats.warp_insts_issued;
  ++stats.mem_insts;
  stats.transactions += inst.blocks.size();
}

void SmCore::IssueWarps(std::uint64_t now, GpuStats& stats) {
  if (warps_.empty()) return;
  const auto n = static_cast<std::uint32_t>(warps_.size());
  // Retire warps whose trace ran dry (including empty slices).
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!warps_[i].done) RetireWarpIfDone(i);
  }
  for (std::uint32_t slot = 0; slot < cfg_.issue_width; ++slot) {
    std::int32_t pick = -1;
    if (cfg_.sched_policy == SchedPolicy::kGto) {
      // Greedy-then-oldest: stick with the current warp while it can
      // issue; otherwise fall back to the oldest issuable warp.
      if (greedy_ >= 0 && greedy_ < static_cast<std::int32_t>(n) &&
          CanIssue(warps_[static_cast<std::uint32_t>(greedy_)], now)) {
        pick = greedy_;
      } else {
        std::uint64_t best_age = ~std::uint64_t{0};
        for (std::uint32_t i = 0; i < n; ++i) {
          if (warps_[i].age < best_age && CanIssue(warps_[i], now)) {
            best_age = warps_[i].age;
            pick = static_cast<std::int32_t>(i);
          }
        }
      }
    } else {  // loose round-robin
      for (std::uint32_t k = 0; k < n; ++k) {
        const std::uint32_t idx = (rr_cursor_ + k) % n;
        if (CanIssue(warps_[idx], now)) {
          pick = static_cast<std::int32_t>(idx);
          rr_cursor_ = (idx + 1) % n;
          break;
        }
      }
    }
    if (pick < 0) break;
    IssueOne(static_cast<std::uint32_t>(pick), now, stats);
    greedy_ = pick;
  }
}

std::uint64_t SmCore::NextWakeup(std::uint64_t now,
                                 const Interconnect& icnt) const {
  const std::uint64_t soonest = now + 1;
  // A non-empty LD/ST queue pins the SM to every cycle: the unit
  // drains ldst_throughput transactions per cycle and the MSHR /
  // compare-queue stall counters increment per blocked cycle.
  if (!ldst_q_.empty()) return soonest;
  std::uint64_t t = kNeverCycle;
  if (!compare_done_.empty()) {
    t = std::min(t, std::max(compare_done_.top(), soonest));
  }
  if (!hit_completions_.empty()) {
    t = std::min(t, std::max(hit_completions_.top().first, soonest));
  }
  const std::uint64_t resp = icnt.NextResponseReadyFor(id_);
  if (resp != kNeverCycle) t = std::min(t, std::max(resp, soonest));
  if (t == soonest) return t;
  // Warps that could issue once their ALU gate clears. Queue space is
  // guaranteed here (the LD/ST queue is empty), so CanIssue at the
  // returned cycle reduces to the ready_at/MLP conditions below.
  for (const WarpCtx& w : warps_) {
    if (w.done || w.next_inst >= w.tr.NumInsts()) continue;
    if (w.inflight >= cfg_.max_warp_mlp) continue;
    t = std::min(t, std::max(w.ready_at, soonest));
    if (t == soonest) break;
  }
  return t;
}

bool SmCore::Busy() const {
  if (!ldst_q_.empty() || !mshrs_.empty() || !replica_mshrs_.empty() ||
      !hit_completions_.empty()) {
    return true;
  }
  if (compare_in_use_ > 0) return true;
  return std::any_of(warps_.begin(), warps_.end(),
                     [](const WarpCtx& w) { return !w.done; });
}

void SmCore::Reset() {
  warps_.clear();
  std::fill(cta_slots_.begin(), cta_slots_.end(), -1);
  resident_warps_ = 0;
  ldst_q_.clear();
  mshrs_.clear();
  replica_mshrs_.clear();
  while (!hit_completions_.empty()) hit_completions_.pop();
  while (!compare_done_.empty()) compare_done_.pop();
  compare_in_use_ = 0;
  comparator_free_ = 0;
  rr_cursor_ = 0;
  greedy_ = -1;
}

}  // namespace dcrm::sim
