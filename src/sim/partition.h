// One memory partition: an L2 cache bank (256KB, 16-way, write-back)
// in front of one DRAM channel, fed by the interconnect.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "sim/dram.h"
#include "sim/interconnect.h"
#include "sim/tag_array.h"

namespace dcrm::sim {

class MemPartition {
 public:
  MemPartition(const GpuConfig& cfg, const AddrMap& map, std::uint32_t id);

  // One cycle: retire DRAM, emit ready hit-responses, accept new
  // requests from the interconnect.
  void Tick(std::uint64_t now, Interconnect& icnt, GpuStats& stats);

  bool Idle() const;

 private:
  void HandleRequest(const MemRequest& req, std::uint64_t now,
                     GpuStats& stats);

  GpuConfig cfg_;
  std::uint32_t id_;
  TagArray l2_;
  DramChannel dram_;
  // Read-miss MSHRs: block -> requests waiting for the DRAM fill.
  std::map<Addr, std::vector<MemRequest>> mshrs_;
  // L2 hit responses in flight (ready_cycle ordered).
  struct PendingResp {
    std::uint64_t ready;
    MemRequest req;
    bool operator>(const PendingResp& o) const { return ready > o.ready; }
  };
  std::priority_queue<PendingResp, std::vector<PendingResp>,
                      std::greater<PendingResp>>
      hit_resps_;
  std::vector<MemRequest> dram_done_;  // scratch
};

}  // namespace dcrm::sim
