// One memory partition: an L2 cache bank (256KB, 16-way, write-back)
// in front of one DRAM channel, fed by the interconnect.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <queue>
#include <vector>

#include "sim/dram.h"
#include "sim/interconnect.h"
#include "sim/tag_array.h"

namespace dcrm::sim {

class MemPartition {
 public:
  MemPartition(const GpuConfig& cfg, const AddrMap& map, std::uint32_t id);

  // One cycle: retire DRAM, emit ready hit-responses, accept new
  // requests from the interconnect.
  void Tick(std::uint64_t now, Interconnect& icnt, GpuStats& stats);

  bool Idle() const;

  // Earliest cycle > now at which Tick could act: a DRAM event, a
  // ready hit-response, or (only while MSHR and DRAM-queue capacity
  // permit popping) the head of the inbound request pipe. Conservative
  // — an early wakeup ticks a partition that then does nothing — but
  // never later than the partition's next state/stat change.
  std::uint64_t NextWakeup(std::uint64_t now, const Interconnect& icnt) const;

 private:
  void HandleRequest(const MemRequest& req, std::uint64_t now,
                     GpuStats& stats);

  GpuConfig cfg_;
  std::uint32_t id_;
  TagArray l2_;
  DramChannel dram_;
  // Read-miss MSHRs: block -> requests waiting for the DRAM fill.
  std::unordered_map<Addr, std::vector<MemRequest>> mshrs_;  // keyed only, never iterated
  // L2 hit responses in flight (ready_cycle ordered).
  struct PendingResp {
    std::uint64_t ready;
    MemRequest req;
    bool operator>(const PendingResp& o) const { return ready > o.ready; }
  };
  std::priority_queue<PendingResp, std::vector<PendingResp>,
                      std::greater<PendingResp>>
      hit_resps_;
  std::vector<MemRequest> dram_done_;  // scratch
};

}  // namespace dcrm::sim
