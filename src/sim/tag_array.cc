#include "sim/tag_array.h"

#include <stdexcept>

namespace dcrm::sim {

TagArray::TagArray(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways), lines_(sets * ways) {
  if (sets == 0 || ways == 0) {
    throw std::invalid_argument("tag array needs sets > 0 and ways > 0");
  }
  if ((sets & (sets - 1)) != 0) {
    throw std::invalid_argument("tag array set count must be a power of two");
  }
}

std::uint32_t TagArray::SetIndex(Addr block) const {
  return static_cast<std::uint32_t>((block / kBlockSize) & (sets_ - 1));
}

TagArray::Line* TagArray::Find(Addr block) {
  const std::uint32_t s = SetIndex(block);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& line = lines_[s * ways_ + w];
    if (line.valid && line.block == block) return &line;
  }
  return nullptr;
}

const TagArray::Line* TagArray::Find(Addr block) const {
  return const_cast<TagArray*>(this)->Find(block);
}

bool TagArray::Access(Addr block, bool allocate) {
  ++tick_;
  if (Line* line = Find(block)) {
    line->lru = tick_;
    return true;
  }
  if (allocate) Fill(block);
  return false;
}

bool TagArray::Contains(Addr block) const { return Find(block) != nullptr; }

void TagArray::Fill(Addr block) {
  ++tick_;
  if (Line* line = Find(block)) {
    line->lru = tick_;
    return;
  }
  const std::uint32_t s = SetIndex(block);
  Line* victim = &lines_[s * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& line = lines_[s * ways_ + w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  victim->block = block;
  victim->valid = true;
  victim->lru = tick_;
}

void TagArray::Invalidate(Addr block) {
  if (Line* line = Find(block)) line->valid = false;
}

void TagArray::Reset() {
  for (auto& l : lines_) l.valid = false;
  tick_ = 0;
}

}  // namespace dcrm::sim
