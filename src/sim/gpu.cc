#include "sim/gpu.h"

#include <stdexcept>

namespace dcrm::sim {

Gpu::Gpu(const GpuConfig& cfg, ProtectionPlan plan)
    : cfg_(cfg),
      plan_(std::move(plan)),
      map_{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()},
      icnt_(cfg) {
  plan_.Validate(cfg_);
  for (std::uint32_t s = 0; s < cfg_.num_sms; ++s) {
    sms_.push_back(std::make_unique<SmCore>(cfg_, s, map_, plan_));
  }
  for (std::uint32_t p = 0; p < cfg_.num_partitions; ++p) {
    partitions_.push_back(std::make_unique<MemPartition>(cfg_, map_, p));
  }
}

GpuStats Gpu::Run(const trace::TraceStore& store, std::uint64_t max_cycles) {
  GpuStats stats;
  for (std::uint32_t k = 0; k < store.NumKernels(); ++k) {
    RunKernel(store.Kernel(k), stats, max_cycles);
  }
  stats.cycles = cycle_;
  return stats;
}

GpuStats Gpu::Run(const std::vector<trace::KernelTrace>& kernels,
                  std::uint64_t max_cycles) {
  return Run(*trace::BuildStore(kernels), max_cycles);
}

void Gpu::RunKernel(const trace::KernelView& kernel, GpuStats& stats,
                    std::uint64_t max_cycles) {
  // Build the complete CTA list. Warps that never touched memory are
  // absent from the trace but still occupy warp slots; FindWarp hands
  // back an empty slice for them, so occupancy is faithful.
  const std::uint32_t warps_per_cta = kernel.cfg().WarpsPerCta();
  const std::uint64_t num_ctas = kernel.cfg().NumCtas();
  std::vector<std::vector<trace::WarpSlice>> ctas(num_ctas);
  for (std::uint64_t c = 0; c < num_ctas; ++c) {
    auto& list = ctas[c];
    list.reserve(warps_per_cta);
    for (std::uint32_t w = 0; w < warps_per_cta; ++w) {
      const WarpId id = static_cast<WarpId>(c * warps_per_cta + w);
      list.push_back(kernel.FindWarp(id));
    }
  }

  std::uint64_t next_cta = 0;
  const std::uint64_t start_cycle = cycle_;
  for (;;) {
    // Dispatch: fill free CTA slots round-robin across SMs.
    bool progress = true;
    while (progress && next_cta < num_ctas) {
      progress = false;
      for (auto& sm : sms_) {
        if (next_cta >= num_ctas) break;
        if (sm->CanAcceptCta(warps_per_cta)) {
          sm->AddCta(ctas[next_cta]);
          ++next_cta;
          progress = true;
        }
      }
    }

    for (auto& p : partitions_) p->Tick(cycle_, icnt_, stats);
    for (auto& sm : sms_) sm->Tick(cycle_, icnt_, stats);
    ++cycle_;

    if (next_cta >= num_ctas) {
      bool busy = !icnt_.Idle();
      for (const auto& sm : sms_) busy = busy || sm->Busy();
      for (const auto& p : partitions_) busy = busy || !p->Idle();
      if (!busy) break;
    }
    if (cycle_ - start_cycle > max_cycles) {
      throw std::runtime_error("timing simulation exceeded max_cycles");
    }
  }
  for (auto& sm : sms_) sm->Reset();
}

}  // namespace dcrm::sim
