#include "sim/gpu.h"

#include <algorithm>
#include <stdexcept>

#include "sim/event_queue.h"

namespace dcrm::sim {

Gpu::Gpu(const GpuConfig& cfg, ProtectionPlan plan)
    : cfg_(cfg),
      plan_(std::move(plan)),
      map_{cfg.num_partitions, cfg.dram_banks, cfg.BlocksPerRow()},
      icnt_(cfg) {
  plan_.Validate(cfg_);
  for (std::uint32_t s = 0; s < cfg_.num_sms; ++s) {
    sms_.push_back(std::make_unique<SmCore>(cfg_, s, map_, plan_));
  }
  for (std::uint32_t p = 0; p < cfg_.num_partitions; ++p) {
    partitions_.push_back(std::make_unique<MemPartition>(cfg_, map_, p));
  }
}

GpuStats Gpu::Run(const trace::TraceStore& store, std::uint64_t max_cycles) {
  sm_stats_.assign(sms_.size(), GpuStats{});
  part_stats_.assign(partitions_.size(), GpuStats{});
  ticks_ = 0;
  for (std::uint32_t k = 0; k < store.NumKernels(); ++k) {
    RunKernel(store.Kernel(k), max_cycles);
  }
  // Totals are sums of the per-component counters; integer addition is
  // order-independent, so the roll-up equals the old single-accumulator
  // totals bit for bit.
  GpuStats stats;
  for (const auto& s : part_stats_) stats += s;
  for (const auto& s : sm_stats_) stats += s;
  stats.cycles = cycle_;
  stats.sim_ticks = ticks_;
  return stats;
}

GpuStats Gpu::Run(const std::vector<trace::KernelTrace>& kernels,
                  std::uint64_t max_cycles) {
  return Run(*trace::BuildStore(kernels), max_cycles);
}

bool Gpu::AnyBusy() const {
  if (!icnt_.Idle()) return true;
  for (const auto& sm : sms_) {
    if (sm->Busy()) return true;
  }
  for (const auto& p : partitions_) {
    if (!p->Idle()) return true;
  }
  return false;
}

void Gpu::RunKernel(const trace::KernelView& kernel,
                    std::uint64_t max_cycles) {
  // Build the complete CTA list. Warps that never touched memory are
  // absent from the trace but still occupy warp slots; FindWarp hands
  // back an empty slice for them, so occupancy is faithful.
  const std::uint32_t warps_per_cta = kernel.cfg().WarpsPerCta();
  const std::uint64_t num_ctas = kernel.cfg().NumCtas();
  CtaList ctas(num_ctas);
  for (std::uint64_t c = 0; c < num_ctas; ++c) {
    auto& list = ctas[c];
    list.reserve(warps_per_cta);
    for (std::uint32_t w = 0; w < warps_per_cta; ++w) {
      const WarpId id = static_cast<WarpId>(c * warps_per_cta + w);
      list.push_back(kernel.FindWarp(id));
    }
  }
  if (cfg_.engine == SimEngine::kCycleStepped) {
    RunKernelCycleStepped(ctas, warps_per_cta, max_cycles);
  } else {
    RunKernelEventDriven(ctas, warps_per_cta, max_cycles);
  }
  for (auto& sm : sms_) sm->Reset();
}

// The reference model: dispatch, then tick every partition and every
// SM, every cycle.
void Gpu::RunKernelCycleStepped(const CtaList& ctas,
                                std::uint32_t warps_per_cta,
                                std::uint64_t max_cycles) {
  const std::uint64_t num_ctas = ctas.size();
  std::uint64_t next_cta = 0;
  const std::uint64_t start_cycle = cycle_;
  for (;;) {
    // Dispatch: fill free CTA slots round-robin across SMs.
    bool progress = true;
    while (progress && next_cta < num_ctas) {
      progress = false;
      for (auto& sm : sms_) {
        if (next_cta >= num_ctas) break;
        if (sm->CanAcceptCta(warps_per_cta)) {
          sm->AddCta(ctas[next_cta]);
          ++next_cta;
          progress = true;
        }
      }
    }

    for (std::size_t p = 0; p < partitions_.size(); ++p) {
      partitions_[p]->Tick(cycle_, icnt_, part_stats_[p]);
      ++part_stats_[p].sim_ticks;
    }
    for (std::size_t s = 0; s < sms_.size(); ++s) {
      sms_[s]->Tick(cycle_, icnt_, sm_stats_[s]);
      ++sm_stats_[s].sim_ticks;
    }
    ++cycle_;
    ++ticks_;

    if (next_cta >= num_ctas && !AnyBusy()) break;
    if (cycle_ - start_cycle > max_cycles) {
      throw std::runtime_error("timing simulation exceeded max_cycles");
    }
  }
}

// The event-driven engine. Identity argument: ticking a component
// before its wakeup is a pure no-op (every state/stat transition a
// Tick can make is listed in that component's NextWakeup contract), so
// skipping exactly the cycles where *no* component is due leaves the
// state evolution — and therefore every counter and the final cycle
// count — bit-identical to the reference loop above. Within a round
// the reference tick order (partitions in index order, then SMs) is
// preserved; cross-component handoffs all carry future ready times
// (icnt latency, port occupancy, DRAM timing), so nothing pushed in a
// round is consumable in the same round and the skipped components'
// absence is unobservable.
//
// Per-round cost is O(due log n), not O(components): due ids are
// popped straight off the heap (the (time, id) tie-break yields them
// already in SM-then-partition index order), wakeups are re-derived
// only for components that ticked or whose interconnect pipe saw
// pushes (the icnt dirty lists), the dispatcher re-arms from a cached
// acceptance bitmap, and termination is the queue going quiet — a
// busy component always has a wakeup scheduled, so an all-parked
// queue IS the reference's !AnyBusy() condition (verified once, not
// per round).
void Gpu::RunKernelEventDriven(const CtaList& ctas,
                               std::uint32_t warps_per_cta,
                               std::uint64_t max_cycles) {
  const std::uint64_t num_ctas = ctas.size();
  const auto num_sms = static_cast<std::uint32_t>(sms_.size());
  const auto num_parts = static_cast<std::uint32_t>(partitions_.size());
  // Slot ids: [0, num_sms) SMs, [num_sms, num_sms+num_parts)
  // partitions, last the CTA dispatcher.
  const std::uint32_t dispatcher = num_sms + num_parts;
  std::uint64_t next_cta = 0;
  const std::uint64_t start_cycle = cycle_;

  // Kernels start quiescent (the previous kernel ran to !AnyBusy()),
  // so only the dispatcher is due — matching the reference loop, which
  // always dispatches and ticks at least one cycle per kernel.
  EventQueue queue(dispatcher + 1, start_cycle);
  queue.Update(dispatcher, start_cycle);
  icnt_.ClearTouched();

  // CTA-acceptance cache for dispatcher re-arming. Acceptance changes
  // only inside AddCta and Tick (warp retirement), so refreshing the
  // entries of SMs that were due keeps the bitmap exact.
  std::vector<char> can_accept(num_sms, 0);
  std::uint32_t acceptors = 0;
  for (std::uint32_t s = 0; s < num_sms; ++s) {
    can_accept[s] = sms_[s]->CanAcceptCta(warps_per_cta) ? 1 : 0;
    acceptors += can_accept[s];
  }

  std::vector<std::uint32_t> due;  // SM ids ascending, then partitions
  std::vector<std::uint64_t> whens;  // re-key targets, parallel to due
  due.reserve(dispatcher);
  whens.reserve(dispatcher);
  // Round stamp per component: dedups the wakeup recomputation between
  // the due list and the icnt dirty lists without per-round clearing.
  std::vector<std::uint64_t> stamped(dispatcher, 0);
  std::uint64_t round = 0;

  for (;;) {
    const std::uint64_t t = queue.MinTime();
    if (t == kNeverCycle) {
      // Queue quiet: nothing will ever happen again. With the wakeup
      // contracts intact this is exactly the reference's termination
      // condition; AnyBusy() double-checks them once per kernel.
      if (next_cta >= num_ctas && !AnyBusy()) break;
      // A busy component with no wakeup is a deadlock; the reference
      // loop would idle up to the guard and throw there.
      throw std::runtime_error("timing simulation exceeded max_cycles");
    }
    if (t > start_cycle + max_cycles) {
      // The reference loop would have thrown at the guard cycle, long
      // before this event fires. (A kernel that completes on the guard
      // cycle itself parks the queue instead of landing here — break
      // outranks throw, as in the reference.)
      throw std::runtime_error("timing simulation exceeded max_cycles");
    }
    queue.AdvanceTo(t);
    ++ticks_;
    ++round;

    // Dispatch, as the reference does at the top of each cycle. An SM
    // receiving a CTA is forced due this round: the reference ticks it
    // the same cycle (retiring empty warp slices, issuing first
    // instructions).
    if (next_cta < num_ctas && queue.TimeOf(dispatcher) == t) {
      bool progress = true;
      while (progress && next_cta < num_ctas) {
        progress = false;
        for (std::uint32_t s = 0; s < num_sms; ++s) {
          if (next_cta >= num_ctas) break;
          if (sms_[s]->CanAcceptCta(warps_per_cta)) {
            sms_[s]->AddCta(ctas[next_cta]);
            ++next_cta;
            progress = true;
            queue.Update(s, t);
          }
        }
      }
    }

    // Harvest this round's due set without disturbing the heap; each
    // entry is re-keyed once below (a short sift, since its new wakeup
    // is usually close) instead of the pop-to-never + reinsert round
    // trip of two full-height sifts. Sorting ascending makes the list
    // an SM prefix followed by a partition suffix, each in index order
    // — ticking the suffix first then the prefix reproduces the
    // reference order (partitions, then SMs).
    due.clear();
    queue.CollectDue(t, due);
    if (due.size() == dispatcher + 1u) {
      // Saturated round: everyone is due, the sorted list is just the
      // id sequence.
      due.resize(dispatcher);
      for (std::uint32_t id = 0; id < dispatcher; ++id) due[id] = id;
    } else {
      std::sort(due.begin(), due.end());
      if (!due.empty() && due.back() == dispatcher) due.pop_back();
    }
    std::size_t part_begin = due.size();
    while (part_begin > 0 && due[part_begin - 1] >= num_sms) --part_begin;
    for (std::size_t i = part_begin; i < due.size(); ++i) {
      const std::uint32_t p = due[i] - num_sms;
      partitions_[p]->Tick(t, icnt_, part_stats_[p]);
      ++part_stats_[p].sim_ticks;
    }
    for (std::size_t i = 0; i < part_begin; ++i) {
      const std::uint32_t s = due[i];
      sms_[s]->Tick(t, icnt_, sm_stats_[s]);
      ++sm_stats_[s].sim_ticks;
    }
    cycle_ = t + 1;

    // Re-derive wakeups: every component that ticked, plus any whose
    // interconnect input pipe saw pushes this round. A just-ticked
    // component's wakeup must land strictly after t (every contract
    // clamps to now+1) — at t it would re-fire in the same cycle
    // forever, so fail loudly instead.
    whens.clear();
    for (const std::uint32_t id : due) {
      stamped[id] = round;
      const std::uint64_t when =
          id >= num_sms ? partitions_[id - num_sms]->NextWakeup(t, icnt_)
                        : sms_[id]->NextWakeup(t, icnt_);
      if (when <= t) {
        throw std::logic_error("event engine: wakeup not in the future");
      }
      whens.push_back(when);
      if (id < num_sms && next_cta < num_ctas) {
        const char ca = sms_[id]->CanAcceptCta(warps_per_cta) ? 1 : 0;
        acceptors += ca - can_accept[id];
        can_accept[id] = ca;
      }
    }
    // Sparse rounds re-key one by one; crowded rounds heapify once.
    if (due.size() * 8 >= queue.size()) {
      queue.BulkUpdate(due, whens);
    } else {
      for (std::size_t i = 0; i < due.size(); ++i) {
        queue.Update(due[i], whens[i]);
      }
    }
    for (const std::uint32_t p : icnt_.TouchedPartitions()) {
      if (stamped[num_sms + p] == round) continue;
      stamped[num_sms + p] = round;
      queue.Update(num_sms + p, partitions_[p]->NextWakeup(t, icnt_));
    }
    for (const std::uint32_t s : icnt_.TouchedSms()) {
      if (stamped[s] == round) continue;
      stamped[s] = round;
      queue.Update(s, sms_[s]->NextWakeup(t, icnt_));
    }
    icnt_.ClearTouched();

    // The dispatcher is due next cycle while CTAs remain and a slot is
    // free; freed slots re-arm it through the acceptance cache.
    queue.Update(dispatcher, next_cta < num_ctas && acceptors > 0
                                 ? t + 1
                                 : kNeverCycle);
  }
}

}  // namespace dcrm::sim
