// One GDDR5-like DRAM channel: 16 banks with row buffers, an FR-FCFS
// scheduler (row hits first, then oldest), a shared data bus.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/config.h"
#include "sim/event_queue.h"
#include "sim/request.h"
#include "sim/stats.h"

namespace dcrm::sim {

class DramChannel {
 public:
  DramChannel(const GpuConfig& cfg, const AddrMap& map);

  bool CanAccept() const { return queue_.size() < cfg_.dram_queue; }
  void Push(const MemRequest& req, std::uint64_t now);

  // Advances the channel: issues at most one command per cycle and
  // appends requests whose data transfer completed to `done`.
  void Tick(std::uint64_t now, std::vector<MemRequest>& done,
            GpuStats& stats);

  bool Idle() const { return queue_.empty(); }
  std::size_t QueueDepth() const { return queue_.size(); }

  // Earliest cycle > now at which Tick could retire a transfer or
  // issue a command (kNeverCycle when the queue is empty). May be
  // conservative — FR-FCFS might pick nothing at the returned cycle —
  // but is never later than the channel's next state change.
  std::uint64_t NextWakeup(std::uint64_t now) const;

 private:
  struct Bank {
    std::int64_t open_row = -1;
    std::uint64_t ready_at = 0;  // bank can accept a new command then
  };
  struct Entry {
    MemRequest req;
    std::uint64_t arrival = 0;
    bool issued = false;
    std::uint64_t done_at = 0;
  };

  GpuConfig cfg_;
  AddrMap map_;
  std::vector<Bank> banks_;
  std::deque<Entry> queue_;
  std::uint64_t bus_free_ = 0;
};

}  // namespace dcrm::sim
