// Indexed min-heap of per-component wakeup times driving the
// event-driven replay engine: each component (SM, memory partition,
// the CTA dispatcher) owns one fixed slot whose key is the earliest
// cycle at which its Tick could change state or statistics, and the
// engine advances simulated time straight to the queue minimum instead
// of ticking every component on every cycle. Updates and pops are
// O(log n) in the component count; skipping an idle span is one
// AdvanceTo call, not O(idle-cycles) work.
//
// Two invariants are enforced (throwing std::logic_error), because the
// engine's bit-identity argument rests on them:
//   1. No event fires in the past: Update() rejects wakeup times
//      earlier than the current cycle floor.
//   2. Idle-skip never overshoots a wakeup: AdvanceTo() rejects any
//      target beyond the earliest scheduled wakeup (and any move
//      backwards in time).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace dcrm::sim {

// "No wakeup scheduled": a component with this key never fires.
inline constexpr std::uint64_t kNeverCycle =
    std::numeric_limits<std::uint64_t>::max();

class EventQueue {
 public:
  // All `n` slots start at kNeverCycle; the time floor starts at
  // `start` (the cycle the engine is about to run).
  explicit EventQueue(std::uint32_t n, std::uint64_t start = 0)
      : time_(n, kNeverCycle), pos_(n), heap_(n), now_(start) {
    if (n == 0) throw std::invalid_argument("EventQueue needs >= 1 slot");
    for (std::uint32_t i = 0; i < n; ++i) {
      heap_[i] = i;
      pos_[i] = i;
    }
  }

  std::uint32_t size() const { return static_cast<std::uint32_t>(heap_.size()); }
  std::uint64_t now() const { return now_; }
  std::uint64_t TimeOf(std::uint32_t id) const { return time_.at(id); }

  // Earliest scheduled wakeup (kNeverCycle if everything is idle) and
  // the component holding it. Ties break on the lowest id, so the
  // engine's view of "who is due" is deterministic.
  std::uint64_t MinTime() const { return time_[heap_[0]]; }
  std::uint32_t MinId() const { return heap_[0]; }

  // (Re)schedules component `id` at cycle `when`, or parks it with
  // kNeverCycle. `when` may equal the current floor (a component made
  // due within the current cycle, e.g. an SM that just received a
  // CTA), but never precede it: an event in the past can no longer be
  // simulated, so the contract was already violated.
  void Update(std::uint32_t id, std::uint64_t when) {
    if (when < now_ && when != kNeverCycle) {
      throw std::logic_error("EventQueue: wakeup scheduled in the past");
    }
    if (time_.at(id) == when) return;
    time_[id] = when;
    SiftUp(pos_[id]);
    SiftDown(pos_[id]);
  }

  // Re-keys many slots at once: one Floyd heapify, O(n) total, instead
  // of per-id sifts that cost O(k log n) with large constants when the
  // k re-keyed nodes crowd the root (every node sinking past its
  // still-due siblings). Worth it once k is a noticeable fraction of
  // n; the caller picks the crossover. Same contract as Update per
  // entry.
  void BulkUpdate(const std::vector<std::uint32_t>& ids,
                  const std::vector<std::uint64_t>& whens) {
    if (ids.size() != whens.size()) {
      throw std::logic_error("EventQueue: BulkUpdate size mismatch");
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (whens[i] < now_ && whens[i] != kNeverCycle) {
        throw std::logic_error("EventQueue: wakeup scheduled in the past");
      }
      time_.at(ids[i]) = whens[i];
    }
    for (auto i = static_cast<std::uint32_t>(heap_.size() / 2); i-- > 0;) {
      SiftDown(i);
    }
  }

  // Appends every id scheduled exactly at cycle `t` to `out` (heap
  // order, NOT sorted). Non-mutating: the entries stay keyed at `t`
  // until the caller re-keys them with Update, which is one short
  // sift instead of the park-and-reinsert round trip (two full-height
  // sifts). Only valid for `t` == MinTime(): the due entries then form
  // a root-closed subtree (every ancestor of a due node is due), so
  // the walk visits O(due) nodes and can prune anything later.
  void CollectDue(std::uint64_t t, std::vector<std::uint32_t>& out) const {
    if (t != MinTime()) {
      throw std::logic_error("EventQueue: CollectDue off the minimum");
    }
    CollectFrom(0, t, out);
  }

  // Moves the time floor forward to `t` — the idle-span skip. Going
  // backwards or past the earliest pending wakeup is a bug in the
  // caller's wakeup bookkeeping, not a legal fast-forward.
  void AdvanceTo(std::uint64_t t) {
    if (t < now_) {
      throw std::logic_error("EventQueue: time moved backwards");
    }
    if (t > MinTime()) {
      throw std::logic_error("EventQueue: advance overshoots a wakeup");
    }
    now_ = t;
  }

 private:
  // Recursion depth is the heap height, O(log n).
  void CollectFrom(std::uint32_t i, std::uint64_t t,
                   std::vector<std::uint32_t>& out) const {
    if (i >= heap_.size() || time_[heap_[i]] != t) return;
    out.push_back(heap_[i]);
    CollectFrom(2 * i + 1, t, out);
    CollectFrom(2 * i + 2, t, out);
  }

  bool Less(std::uint32_t a, std::uint32_t b) const {
    return time_[a] != time_[b] ? time_[a] < time_[b] : a < b;
  }

  void Swap(std::uint32_t i, std::uint32_t j) {
    std::swap(heap_[i], heap_[j]);
    pos_[heap_[i]] = i;
    pos_[heap_[j]] = j;
  }

  void SiftUp(std::uint32_t i) {
    while (i > 0) {
      const std::uint32_t parent = (i - 1) / 2;
      if (!Less(heap_[i], heap_[parent])) break;
      Swap(i, parent);
      i = parent;
    }
  }

  void SiftDown(std::uint32_t i) {
    const auto n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      std::uint32_t best = i;
      const std::uint32_t l = 2 * i + 1;
      const std::uint32_t r = 2 * i + 2;
      if (l < n && Less(heap_[l], heap_[best])) best = l;
      if (r < n && Less(heap_[r], heap_[best])) best = r;
      if (best == i) break;
      Swap(i, best);
      i = best;
    }
  }

  std::vector<std::uint64_t> time_;  // key per component id
  std::vector<std::uint32_t> pos_;   // id -> heap index
  std::vector<std::uint32_t> heap_;  // heap of ids
  std::uint64_t now_ = 0;
};

}  // namespace dcrm::sim
