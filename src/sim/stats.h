// Aggregate counters produced by a timing-simulation run.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace dcrm::sim {

struct GpuStats {
  std::uint64_t cycles = 0;
  // Engine rounds executed: equals `cycles` advanced under the
  // cycle-stepped engine, and the (much smaller) number of event
  // rounds under the event-driven one. The only field allowed to
  // differ between engines — everything else is bit-identical.
  std::uint64_t sim_ticks = 0;
  std::uint64_t warp_insts_issued = 0;
  std::uint64_t mem_insts = 0;
  std::uint64_t transactions = 0;          // primary L1 transactions
  std::uint64_t replica_transactions = 0;  // extra accesses from replication

  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_hits = 0;
  // Accesses merged into an outstanding miss (MSHR "pending hits"):
  // they missed but generate no new L2 traffic.
  std::uint64_t l1_pending_hits = 0;
  std::uint64_t l1_misses = 0;

  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t replica_l2_hits = 0;
  std::uint64_t replica_l2_misses = 0;

  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_row_hits = 0;

  std::uint64_t mshr_stalls = 0;
  std::uint64_t compare_queue_stalls = 0;
  std::uint64_t comparisons = 0;

  // Per 128B-block L1 miss counts (only filled when
  // GpuConfig::collect_block_misses is set). Keyed by block index.
  std::unordered_map<std::uint64_t, std::uint64_t> block_misses;

  // The paper's Fig. 7 second metric: accesses that missed in L1 and
  // therefore went to L2/DRAM, including the duplicated/triplicated
  // copies.
  std::uint64_t L1MissedAccesses() const {
    return l1_misses + replica_transactions;
  }

  GpuStats& operator+=(const GpuStats& o) {
    cycles += o.cycles;
    sim_ticks += o.sim_ticks;
    warp_insts_issued += o.warp_insts_issued;
    mem_insts += o.mem_insts;
    transactions += o.transactions;
    replica_transactions += o.replica_transactions;
    l1_accesses += o.l1_accesses;
    l1_hits += o.l1_hits;
    l1_pending_hits += o.l1_pending_hits;
    l1_misses += o.l1_misses;
    l2_accesses += o.l2_accesses;
    l2_hits += o.l2_hits;
    l2_misses += o.l2_misses;
    replica_l2_hits += o.replica_l2_hits;
    replica_l2_misses += o.replica_l2_misses;
    dram_reads += o.dram_reads;
    dram_writes += o.dram_writes;
    dram_row_hits += o.dram_row_hits;
    for (const auto& [b, n] : o.block_misses) block_misses[b] += n;
    mshr_stalls += o.mshr_stalls;
    compare_queue_stalls += o.compare_queue_stalls;
    comparisons += o.comparisons;
    return *this;
  }
};

}  // namespace dcrm::sim
