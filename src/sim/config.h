// Timing-model configuration. Defaults follow Table I of the paper
// (GPGPU-Sim GTX480-like): 15 SMs, 16KB 4-way L1 per SM, 6 memory
// partitions with 256KB 16-way L2 each, 128B lines, FR-FCFS GDDR5
// with 16 banks per channel.
//
// Everything is expressed in core-clock cycles. (The paper's config
// has separate 1400MHz core / 924MHz memory clocks; we fold the ratio
// into the DRAM timing parameters, which is sufficient because every
// result in the paper is reported *normalized* to a baseline run of
// the same configuration.)
#pragma once

#include <cstdint>

#include "common/types.h"

namespace dcrm::sim {

// Warp scheduling policy. kGto (greedy-then-oldest, GPGPU-Sim's usual
// default) keeps one warp running until it stalls, which preserves
// intra-warp locality; kLrr is loose round-robin.
enum class SchedPolicy : std::uint8_t { kGto, kLrr };

// Replay engine. kCycleStepped is the reference model: every
// component ticks every cycle. kEventDriven ticks a component only
// when its reported next-wakeup cycle is due, skipping idle spans in
// O(log n) queue operations; it is bit-identical to the reference in
// cycle counts and statistics (tests/sim_event_test.cc holds it to
// that) and several times faster on the replay hot path.
enum class SimEngine : std::uint8_t { kCycleStepped, kEventDriven };

inline const char* EngineName(SimEngine e) {
  return e == SimEngine::kCycleStepped ? "cycle" : "event";
}

struct GpuConfig {
  // Replay engine; both produce bit-identical cycle counts and stats.
  SimEngine engine = SimEngine::kEventDriven;

  // Cores ("SMs").
  std::uint32_t num_sms = 15;
  std::uint32_t max_ctas_per_sm = 8;
  std::uint32_t max_warps_per_sm = 48;
  std::uint32_t issue_width = 2;  // warp instructions issued / SM / cycle
  SchedPolicy sched_policy = SchedPolicy::kGto;
  // Consecutive *independent* memory instructions a warp may have in
  // flight before it must block on the data (adjacent loads feeding
  // one arithmetic op, e.g. A[i*N+j] and x[j], overlap on real GPUs).
  std::uint32_t max_warp_mlp = 2;
  // Modeled arithmetic work between consecutive memory instructions of
  // a warp; applications override via App::AluCyclesPerMem().
  std::uint32_t alu_cycles_per_mem = 8;
  // Record per-block L1 miss counts in GpuStats::block_misses (the
  // Fig. 8 fault-site weighting uses this profile).
  bool collect_block_misses = false;

  // L1 data cache, per SM (write-through, no write-allocate).
  std::uint32_t l1_size_bytes = 16 * 1024;
  std::uint32_t l1_ways = 4;
  std::uint32_t l1_latency = 28;
  std::uint32_t l1_mshrs = 32;
  // LD/ST unit: transactions consumed per cycle.
  std::uint32_t ldst_throughput = 1;

  // Interconnect.
  std::uint32_t icnt_latency = 40;                 // one-way, cycles
  std::uint32_t icnt_resp_bytes_per_cycle = 32;    // per partition port

  // L2, per memory partition (write-back).
  std::uint32_t num_partitions = 6;
  std::uint32_t l2_size_bytes = 256 * 1024;
  std::uint32_t l2_ways = 16;
  std::uint32_t l2_latency = 30;
  std::uint32_t l2_mshrs = 64;
  std::uint32_t l2_input_queue = 16;

  // GDDR5 channel timing (core cycles; 924MHz memory clock folded in).
  std::uint32_t dram_banks = 16;
  std::uint32_t t_rcd = 18;
  std::uint32_t t_rp = 18;
  std::uint32_t t_cl = 18;
  std::uint32_t burst_cycles = 6;  // 128B transfer
  std::uint32_t row_bytes = 2048;
  std::uint32_t dram_queue = 32;

  // Replication hardware (Section IV-C of the paper).
  std::uint32_t replica_addr_table_bytes = 128;  // start-address storage
  std::uint32_t pc_table_entries = 32;           // tracked load instructions
  std::uint32_t compare_queue_entries = 32;      // lazy-compare buffer
  std::uint32_t comparator_bytes_per_cycle = 32; // 256-bit comparator

  // Recovery subsystem (detection-to-recovery extension): base penalty
  // charged before re-execution attempt k, scaled by 2^(k-1) — the
  // exponential backoff that drains in-flight traffic and reprograms
  // the retirement/remap tables before the kernel is relaunched.
  std::uint32_t recovery_backoff_cycles = 600;

  std::uint32_t L1Sets() const {
    return l1_size_bytes / kBlockSize / l1_ways;
  }
  std::uint32_t L2Sets() const {
    return l2_size_bytes / kBlockSize / l2_ways;
  }
  std::uint32_t BlocksPerRow() const { return row_bytes / kBlockSize; }
  // Cycles the comparator needs for one 128B block comparison.
  std::uint32_t CompareCycles() const {
    return kBlockSize / comparator_bytes_per_cycle;
  }
  // Max protectable objects given the 128B start-address storage
  // (32-bit addresses): 32 for one replica, 16 for two (Section IV-C).
  std::uint32_t MaxProtectedObjects(bool two_replicas) const {
    const std::uint32_t per_obj = two_replicas ? 8 : 4;  // bytes
    return replica_addr_table_bytes / per_obj;
  }
};

}  // namespace dcrm::sim
