// GPGPU-Sim-style configuration files: `key = value` lines with `#`
// comments, so benches and tools can run alternative hardware
// configurations without recompiling (`--config=FILE`).
//
// Recognized keys mirror the GpuConfig fields, e.g.
//   num_sms = 15
//   l1_size_bytes = 16384
//   sched_policy = gto        # or lrr
//   max_warp_mlp = 2
#pragma once

#include <iosfwd>
#include <string>

#include "sim/config.h"

namespace dcrm::sim {

// Applies the file's keys on top of `base` (unspecified keys keep
// their base values). Throws std::runtime_error on unknown keys or
// malformed lines, listing the offender.
GpuConfig ParseGpuConfig(std::istream& is, GpuConfig base = {});
GpuConfig ParseGpuConfigString(const std::string& text, GpuConfig base = {});
GpuConfig LoadGpuConfigFile(const std::string& path, GpuConfig base = {});

// Emits every field in the file format (round-trippable).
std::string DumpGpuConfig(const GpuConfig& cfg);

}  // namespace dcrm::sim
