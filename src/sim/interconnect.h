// SM <-> memory-partition crossbar: a fixed-latency pipe per
// destination with a bandwidth-limited response port per partition
// (128B responses at icnt_resp_bytes_per_cycle).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sim/config.h"
#include "sim/event_queue.h"
#include "sim/request.h"

namespace dcrm::sim {

class Interconnect {
 public:
  Interconnect(const GpuConfig& cfg);

  // SM -> partition. One injection per SM per cycle is enforced by the
  // caller (the LD/ST unit processes at most `ldst_throughput`
  // transactions per cycle).
  void PushRequest(const MemRequest& req, std::uint64_t now,
                   std::uint32_t partition);

  // Partition pulls at most one request per call; returns a request
  // only if its pipe delay has elapsed.
  std::optional<MemRequest> PopRequestFor(std::uint32_t partition,
                                          std::uint64_t now);

  // Partition -> SM. Models response-port serialization: each 128B
  // response occupies the partition's port for 128/resp_bytes cycles.
  void PushResponse(const MemRequest& req, std::uint64_t now,
                    std::uint32_t partition);

  std::optional<MemRequest> PopResponseFor(std::uint32_t sm,
                                           std::uint64_t now);

  bool Idle() const;

  // Event-engine support. The pipes are FIFO: nothing behind the head
  // can be popped before it, so the head's ready time is the exact
  // next-wakeup contribution of the pipe (kNeverCycle when empty).
  std::uint64_t NextRequestReadyFor(std::uint32_t partition) const {
    const auto& pipe = req_pipes_[partition];
    return pipe.empty() ? kNeverCycle : pipe.front().ready;
  }
  std::uint64_t NextResponseReadyFor(std::uint32_t sm) const {
    const auto& pipe = resp_pipes_[sm];
    return pipe.empty() ? kNeverCycle : pipe.front().ready;
  }

  // Dirty lists: destinations whose input pipe received at least one
  // push since the last ClearTouched(). The event engine drains these
  // each round to find the components whose wakeup may have moved,
  // without scanning every pipe. Each destination appears at most once
  // per drain, so the lists stay bounded even if never cleared (the
  // cycle-stepped engine ignores them).
  const std::vector<std::uint32_t>& TouchedPartitions() const {
    return touched_parts_;
  }
  const std::vector<std::uint32_t>& TouchedSms() const {
    return touched_sms_;
  }
  void ClearTouched();

 private:
  struct Timed {
    std::uint64_t ready = 0;
    MemRequest req;
  };

  GpuConfig cfg_;
  std::vector<std::deque<Timed>> req_pipes_;   // per partition
  std::vector<std::deque<Timed>> resp_pipes_;  // per SM
  std::vector<std::uint64_t> resp_port_free_;  // per partition
  std::vector<std::uint32_t> touched_parts_;
  std::vector<std::uint32_t> touched_sms_;
  std::vector<char> part_touched_;  // membership flags for the lists
  std::vector<char> sm_touched_;
};

}  // namespace dcrm::sim
