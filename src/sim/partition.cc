#include "sim/partition.h"

#include <algorithm>

namespace dcrm::sim {

MemPartition::MemPartition(const GpuConfig& cfg, const AddrMap& map,
                           std::uint32_t id)
    : cfg_(cfg), id_(id), l2_(cfg.L2Sets(), cfg.l2_ways), dram_(cfg, map) {}

void MemPartition::Tick(std::uint64_t now, Interconnect& icnt,
                        GpuStats& stats) {
  // 1. DRAM completions: fill L2, answer all merged waiters.
  dram_done_.clear();
  dram_.Tick(now, dram_done_, stats);
  for (const MemRequest& r : dram_done_) {
    if (r.is_write) continue;
    l2_.Fill(r.block);
    const auto it = mshrs_.find(r.block);
    if (it != mshrs_.end()) {
      for (const MemRequest& waiter : it->second) {
        icnt.PushResponse(waiter, now, id_);
      }
      mshrs_.erase(it);
    }
  }

  // 2. Ready L2-hit responses.
  while (!hit_resps_.empty() && hit_resps_.top().ready <= now) {
    icnt.PushResponse(hit_resps_.top().req, now, id_);
    hit_resps_.pop();
  }

  // 3. Accept one new request per cycle from the interconnect,
  // respecting MSHR and DRAM queue capacity (back-pressure by not
  // popping).
  if (mshrs_.size() < cfg_.l2_mshrs && dram_.CanAccept()) {
    if (auto req = icnt.PopRequestFor(id_, now)) {
      HandleRequest(*req, now, stats);
    }
  }
}

void MemPartition::HandleRequest(const MemRequest& req, std::uint64_t now,
                                 GpuStats& stats) {
  ++stats.l2_accesses;
  if (req.is_write) {
    // Write-back L2: a write hit is absorbed by the cache; a write
    // miss is forwarded to DRAM without allocation. Neither produces
    // a response.
    if (l2_.Access(req.block, /*allocate=*/false)) {
      ++stats.l2_hits;
    } else {
      ++stats.l2_misses;
      dram_.Push(req, now);
    }
    return;
  }
  // Read. Merge into an outstanding miss first to avoid double-counting
  // DRAM traffic.
  if (auto it = mshrs_.find(req.block); it != mshrs_.end()) {
    ++stats.l2_misses;
    it->second.push_back(req);
    return;
  }
  if (l2_.Access(req.block, /*allocate=*/false)) {
    ++stats.l2_hits;
    if (req.is_replica) ++stats.replica_l2_hits;
    hit_resps_.push({now + cfg_.l2_latency, req});
    return;
  }
  ++stats.l2_misses;
  if (req.is_replica) ++stats.replica_l2_misses;
  mshrs_[req.block].push_back(req);
  MemRequest dram_req = req;
  dram_.Push(dram_req, now);
}

bool MemPartition::Idle() const {
  return dram_.Idle() && mshrs_.empty() && hit_resps_.empty();
}

std::uint64_t MemPartition::NextWakeup(std::uint64_t now,
                                       const Interconnect& icnt) const {
  std::uint64_t t = dram_.NextWakeup(now);
  if (!hit_resps_.empty()) {
    t = std::min(t, std::max(hit_resps_.top().ready, now + 1));
  }
  // When back-pressure blocks the input, the unblocking event is a
  // DRAM completion (outstanding MSHRs imply queued DRAM reads), which
  // the dram_ term above already covers.
  if (mshrs_.size() < cfg_.l2_mshrs && dram_.CanAccept()) {
    const std::uint64_t req = icnt.NextRequestReadyFor(id_);
    if (req != kNeverCycle) t = std::min(t, std::max(req, now + 1));
  }
  return t;
}

}  // namespace dcrm::sim
