// Set-associative LRU tag array, shared by the L1/L2 timing models and
// the functional L1 used for miss-profile generation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dcrm::sim {

class TagArray {
 public:
  TagArray(std::uint32_t sets, std::uint32_t ways);

  // Looks up `block` (a 128B-aligned address or block index — any
  // consistent key). On hit, refreshes LRU. On miss with
  // `allocate=true`, fills the block, evicting the LRU way.
  // Returns true on hit.
  bool Access(Addr block, bool allocate = true);

  // Probe without changing state.
  bool Contains(Addr block) const;

  // Fill without an access (used for response-time fills).
  void Fill(Addr block);

  void Invalidate(Addr block);
  void Reset();

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }

 private:
  struct Line {
    Addr block = 0;
    bool valid = false;
    std::uint64_t lru = 0;
  };

  std::uint32_t SetIndex(Addr block) const;
  Line* Find(Addr block);
  const Line* Find(Addr block) const;

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  // sets_ * ways_, row-major by set
};

}  // namespace dcrm::sim
