#include "sim/config_io.h"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace dcrm::sim {
namespace {

std::string Trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

using Setter = std::function<void(GpuConfig&, const std::string&)>;

std::uint32_t ParseU32(const std::string& v) {
  std::size_t pos = 0;
  const unsigned long parsed = std::stoul(v, &pos);
  if (pos != v.size()) throw std::invalid_argument("trailing characters");
  return static_cast<std::uint32_t>(parsed);
}

const std::map<std::string, Setter>& Setters() {
  static const std::map<std::string, Setter> setters = {
#define DCRM_U32_KEY(field)                            \
  {#field, [](GpuConfig& c, const std::string& v) {    \
     c.field = ParseU32(v);                            \
   }}
      DCRM_U32_KEY(num_sms),
      DCRM_U32_KEY(max_ctas_per_sm),
      DCRM_U32_KEY(max_warps_per_sm),
      DCRM_U32_KEY(issue_width),
      DCRM_U32_KEY(max_warp_mlp),
      DCRM_U32_KEY(alu_cycles_per_mem),
      DCRM_U32_KEY(l1_size_bytes),
      DCRM_U32_KEY(l1_ways),
      DCRM_U32_KEY(l1_latency),
      DCRM_U32_KEY(l1_mshrs),
      DCRM_U32_KEY(ldst_throughput),
      DCRM_U32_KEY(icnt_latency),
      DCRM_U32_KEY(icnt_resp_bytes_per_cycle),
      DCRM_U32_KEY(num_partitions),
      DCRM_U32_KEY(l2_size_bytes),
      DCRM_U32_KEY(l2_ways),
      DCRM_U32_KEY(l2_latency),
      DCRM_U32_KEY(l2_mshrs),
      DCRM_U32_KEY(l2_input_queue),
      DCRM_U32_KEY(dram_banks),
      DCRM_U32_KEY(t_rcd),
      DCRM_U32_KEY(t_rp),
      DCRM_U32_KEY(t_cl),
      DCRM_U32_KEY(burst_cycles),
      DCRM_U32_KEY(row_bytes),
      DCRM_U32_KEY(dram_queue),
      DCRM_U32_KEY(replica_addr_table_bytes),
      DCRM_U32_KEY(pc_table_entries),
      DCRM_U32_KEY(compare_queue_entries),
      DCRM_U32_KEY(comparator_bytes_per_cycle),
      DCRM_U32_KEY(recovery_backoff_cycles),
#undef DCRM_U32_KEY
      {"sched_policy",
       [](GpuConfig& c, const std::string& v) {
         if (v == "gto") {
           c.sched_policy = SchedPolicy::kGto;
         } else if (v == "lrr") {
           c.sched_policy = SchedPolicy::kLrr;
         } else {
           throw std::invalid_argument("expected gto or lrr");
         }
       }},
      {"engine",
       [](GpuConfig& c, const std::string& v) {
         if (v == "cycle") {
           c.engine = SimEngine::kCycleStepped;
         } else if (v == "event") {
           c.engine = SimEngine::kEventDriven;
         } else {
           throw std::invalid_argument("expected cycle or event");
         }
       }},
      {"collect_block_misses",
       [](GpuConfig& c, const std::string& v) {
         if (v == "true" || v == "1") {
           c.collect_block_misses = true;
         } else if (v == "false" || v == "0") {
           c.collect_block_misses = false;
         } else {
           throw std::invalid_argument("expected true/false");
         }
       }},
  };
  return setters;
}

}  // namespace

GpuConfig ParseGpuConfig(std::istream& is, GpuConfig base) {
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": expected key = value");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    const auto it = Setters().find(key);
    if (it == Setters().end()) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               ": unknown key '" + key + "'");
    }
    try {
      it->second(base, value);
    } catch (const std::exception& e) {
      throw std::runtime_error("config line " + std::to_string(lineno) +
                               " (" + key + "): " + e.what());
    }
  }
  return base;
}

GpuConfig ParseGpuConfigString(const std::string& text, GpuConfig base) {
  std::istringstream is(text);
  return ParseGpuConfig(is, base);
}

GpuConfig LoadGpuConfigFile(const std::string& path, GpuConfig base) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open config file: " + path);
  return ParseGpuConfig(is, base);
}

std::string DumpGpuConfig(const GpuConfig& c) {
  std::ostringstream os;
  os << "# gpu-dcrm hardware configuration (Table I defaults)\n";
#define DCRM_EMIT(field) os << #field << " = " << c.field << '\n'
  DCRM_EMIT(num_sms);
  DCRM_EMIT(max_ctas_per_sm);
  DCRM_EMIT(max_warps_per_sm);
  DCRM_EMIT(issue_width);
  DCRM_EMIT(max_warp_mlp);
  DCRM_EMIT(alu_cycles_per_mem);
  DCRM_EMIT(l1_size_bytes);
  DCRM_EMIT(l1_ways);
  DCRM_EMIT(l1_latency);
  DCRM_EMIT(l1_mshrs);
  DCRM_EMIT(ldst_throughput);
  DCRM_EMIT(icnt_latency);
  DCRM_EMIT(icnt_resp_bytes_per_cycle);
  DCRM_EMIT(num_partitions);
  DCRM_EMIT(l2_size_bytes);
  DCRM_EMIT(l2_ways);
  DCRM_EMIT(l2_latency);
  DCRM_EMIT(l2_mshrs);
  DCRM_EMIT(l2_input_queue);
  DCRM_EMIT(dram_banks);
  DCRM_EMIT(t_rcd);
  DCRM_EMIT(t_rp);
  DCRM_EMIT(t_cl);
  DCRM_EMIT(burst_cycles);
  DCRM_EMIT(row_bytes);
  DCRM_EMIT(dram_queue);
  DCRM_EMIT(replica_addr_table_bytes);
  DCRM_EMIT(pc_table_entries);
  DCRM_EMIT(compare_queue_entries);
  DCRM_EMIT(comparator_bytes_per_cycle);
  DCRM_EMIT(recovery_backoff_cycles);
#undef DCRM_EMIT
  os << "sched_policy = "
     << (c.sched_policy == SchedPolicy::kGto ? "gto" : "lrr") << '\n';
  os << "engine = " << EngineName(c.engine) << '\n';
  os << "collect_block_misses = "
     << (c.collect_block_misses ? "true" : "false") << '\n';
  return os.str();
}

}  // namespace dcrm::sim
