#include "sim/interconnect.h"

namespace dcrm::sim {

Interconnect::Interconnect(const GpuConfig& cfg)
    : cfg_(cfg),
      req_pipes_(cfg.num_partitions),
      resp_pipes_(cfg.num_sms),
      resp_port_free_(cfg.num_partitions, 0),
      part_touched_(cfg.num_partitions, 0),
      sm_touched_(cfg.num_sms, 0) {
  touched_parts_.reserve(cfg.num_partitions);
  touched_sms_.reserve(cfg.num_sms);
}

void Interconnect::PushRequest(const MemRequest& req, std::uint64_t now,
                               std::uint32_t partition) {
  req_pipes_[partition].push_back({now + cfg_.icnt_latency, req});
  if (!part_touched_[partition]) {
    part_touched_[partition] = 1;
    touched_parts_.push_back(partition);
  }
}

std::optional<MemRequest> Interconnect::PopRequestFor(std::uint32_t partition,
                                                      std::uint64_t now) {
  auto& pipe = req_pipes_[partition];
  if (pipe.empty() || pipe.front().ready > now) return std::nullopt;
  MemRequest req = pipe.front().req;
  pipe.pop_front();
  return req;
}

void Interconnect::PushResponse(const MemRequest& req, std::uint64_t now,
                                std::uint32_t partition) {
  // Serialize on the partition's response port, then traverse the pipe.
  const std::uint32_t occupancy =
      kBlockSize / cfg_.icnt_resp_bytes_per_cycle;
  std::uint64_t start = std::max(now, resp_port_free_[partition]);
  resp_port_free_[partition] = start + occupancy;
  resp_pipes_[req.sm].push_back(
      {start + occupancy + cfg_.icnt_latency, req});
  if (!sm_touched_[req.sm]) {
    sm_touched_[req.sm] = 1;
    touched_sms_.push_back(req.sm);
  }
}

std::optional<MemRequest> Interconnect::PopResponseFor(std::uint32_t sm,
                                                       std::uint64_t now) {
  auto& pipe = resp_pipes_[sm];
  if (pipe.empty() || pipe.front().ready > now) return std::nullopt;
  MemRequest req = pipe.front().req;
  pipe.pop_front();
  return req;
}

bool Interconnect::Idle() const {
  for (const auto& p : req_pipes_) {
    if (!p.empty()) return false;
  }
  for (const auto& p : resp_pipes_) {
    if (!p.empty()) return false;
  }
  return true;
}

void Interconnect::ClearTouched() {
  for (const std::uint32_t p : touched_parts_) part_touched_[p] = 0;
  for (const std::uint32_t s : touched_sms_) sm_touched_[s] = 0;
  touched_parts_.clear();
  touched_sms_.clear();
}

}  // namespace dcrm::sim
