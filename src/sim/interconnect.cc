#include "sim/interconnect.h"

namespace dcrm::sim {

Interconnect::Interconnect(const GpuConfig& cfg)
    : cfg_(cfg),
      req_pipes_(cfg.num_partitions),
      resp_pipes_(cfg.num_sms),
      resp_port_free_(cfg.num_partitions, 0) {}

void Interconnect::PushRequest(const MemRequest& req, std::uint64_t now,
                               std::uint32_t partition) {
  req_pipes_[partition].push_back({now + cfg_.icnt_latency, req});
}

std::optional<MemRequest> Interconnect::PopRequestFor(std::uint32_t partition,
                                                      std::uint64_t now) {
  auto& pipe = req_pipes_[partition];
  if (pipe.empty() || pipe.front().ready > now) return std::nullopt;
  MemRequest req = pipe.front().req;
  pipe.pop_front();
  return req;
}

void Interconnect::PushResponse(const MemRequest& req, std::uint64_t now,
                                std::uint32_t partition) {
  // Serialize on the partition's response port, then traverse the pipe.
  const std::uint32_t occupancy =
      kBlockSize / cfg_.icnt_resp_bytes_per_cycle;
  std::uint64_t start = std::max(now, resp_port_free_[partition]);
  resp_port_free_[partition] = start + occupancy;
  resp_pipes_[req.sm].push_back(
      {start + occupancy + cfg_.icnt_latency, req});
}

std::optional<MemRequest> Interconnect::PopResponseFor(std::uint32_t sm,
                                                       std::uint64_t now) {
  auto& pipe = resp_pipes_[sm];
  if (pipe.empty() || pipe.front().ready > now) return std::nullopt;
  MemRequest req = pipe.front().req;
  pipe.pop_front();
  return req;
}

bool Interconnect::Idle() const {
  for (const auto& p : req_pipes_) {
    if (!p.empty()) return false;
  }
  for (const auto& p : resp_pipes_) {
    if (!p.empty()) return false;
  }
  return true;
}

}  // namespace dcrm::sim
