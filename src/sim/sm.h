// One streaming multiprocessor: resident CTAs, warp contexts driven by
// their memory traces, a loose round-robin scheduler, an L1 data cache
// with MSHRs, and the LD/ST-unit replication hardware (protected-range
// lookup, replica access generation, lazy-compare queue, comparator).
//
// Latency tolerance — the property the paper's low overheads rest on —
// emerges naturally: while one warp waits on memory, others issue.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <queue>
#include <vector>

#include "sim/config.h"
#include "sim/interconnect.h"
#include "sim/replication.h"
#include "sim/stats.h"
#include "sim/tag_array.h"
#include "trace/trace_store.h"

namespace dcrm::sim {

class SmCore {
 public:
  SmCore(const GpuConfig& cfg, std::uint32_t id, const AddrMap& map,
         const ProtectionPlan& plan);

  bool CanAcceptCta(std::uint32_t warps_in_cta) const;
  void AddCta(const std::vector<trace::WarpSlice>& warps);

  void Tick(std::uint64_t now, Interconnect& icnt, GpuStats& stats);

  // Earliest cycle > now at which Tick could change state or stats:
  // a comparator/L1-hit completion, an arriving response, any queued
  // LD/ST transaction (the per-cycle drain and stall counters require
  // a tick every cycle while the queue is non-empty), or a warp
  // clearing its ALU gate with MLP headroom. Conservative — an early
  // tick no-ops harmlessly — but never later than the next action.
  std::uint64_t NextWakeup(std::uint64_t now, const Interconnect& icnt) const;

  // True while any resident warp or in-flight structure has work left.
  bool Busy() const;

  // Removes retired warps/CTAs; returns number of CTA slots freed this
  // call so the dispatcher can refill.
  void Reset();

 private:
  struct WarpCtx {
    trace::WarpSlice tr;  // empty slice for warps the trace omitted
    std::uint32_t next_inst = 0;
    std::uint32_t pending = 0;      // outstanding blocking transactions
    std::uint32_t queued_txns = 0;  // transactions still in the LD/ST queue
    std::uint32_t inflight = 0;     // outstanding mem insts (MLP window)
    std::uint64_t ready_at = 0;     // ALU-gate: may issue at/after this
    std::uint64_t age = 0;          // dispatch order, for GTO priority
    std::uint32_t cta_slot = 0;
    bool done = false;

    bool Finished() const {
      return next_inst >= tr.NumInsts() && pending == 0 &&
             queued_txns == 0;
    }
  };

  struct Transaction {
    Addr block = 0;
    std::uint32_t warp_slot = 0;
    Pc pc = 0;
    bool is_store = false;
  };

  enum class WaiterKind : std::uint8_t { kBlocking, kCompare };
  struct Waiter {
    std::uint32_t warp_slot = 0;
    WaiterKind kind = WaiterKind::kBlocking;
  };
  struct Mshr {
    std::vector<Waiter> waiters;
    bool fill = false;  // fill L1 on response (primaries only)
  };

  bool CanIssue(const WarpCtx& w, std::uint64_t now) const;
  void IssueOne(std::uint32_t idx, std::uint64_t now, GpuStats& stats);
  void ProcessCompletions(std::uint64_t now);
  void ProcessResponses(std::uint64_t now, Interconnect& icnt,
                        GpuStats& stats);
  void ProcessLdst(std::uint64_t now, Interconnect& icnt, GpuStats& stats);
  void IssueWarps(std::uint64_t now, GpuStats& stats);
  void CompleteBlocking(std::uint32_t warp_slot, std::uint64_t now);
  void RetireWarpIfDone(std::uint32_t warp_slot);

  GpuConfig cfg_;
  std::uint32_t id_;
  AddrMap map_;
  const ProtectionPlan* plan_;

  TagArray l1_;
  std::vector<WarpCtx> warps_;
  std::vector<std::int32_t> cta_slots_;  // remaining warps per slot, -1 free
  std::uint32_t resident_warps_ = 0;

  std::deque<Transaction> ldst_q_;
  static constexpr std::size_t kLdstQueueCap = 64;
  // Keyed lookups only (never iterated), so the tables are hash maps:
  // replay spends a measurable slice of its time here and the
  // simulated behavior cannot depend on element order.
  std::unordered_map<Addr, Mshr> mshrs_;
  // Replica (copy) requests are tracked in the LD/ST unit's own
  // buffer (Section IV-C allocates dedicated 128B storage for loads
  // awaiting comparison), NOT in the L1 MSHR table — copy traffic
  // must not starve primary misses of MSHRs.
  std::unordered_map<Addr, Mshr> replica_mshrs_;
  static constexpr std::size_t kReplicaMshrCap = 64;

  // (ready_cycle, warp_slot) completions for L1 hits.
  using TimedSlot = std::pair<std::uint64_t, std::uint32_t>;
  std::priority_queue<TimedSlot, std::vector<TimedSlot>,
                      std::greater<TimedSlot>>
      hit_completions_;

  // Lazy-compare bookkeeping.
  std::uint32_t compare_in_use_ = 0;
  std::uint64_t comparator_free_ = 0;
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<std::uint64_t>>
      compare_done_;

  std::uint32_t rr_cursor_ = 0;
  std::int32_t greedy_ = -1;  // GTO: warp holding issue priority
  std::uint64_t next_age_ = 0;
  std::uint64_t next_req_id_ = 1;
};

}  // namespace dcrm::sim
