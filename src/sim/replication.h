// Hardware-visible description of the paper's partial-replication
// schemes, as configured into the LD/ST unit near L1 (Section IV-C):
// which address ranges (data objects) are protected, where their
// replicas live, and which static load instructions touch them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "sim/config.h"

namespace dcrm::sim {

enum class Scheme : std::uint8_t {
  kNone,
  kDetectOnly,     // duplicate, lazy bitwise compare
  kDetectCorrect,  // triplicate, majority vote (stalls for all copies)
};

inline const char* SchemeName(Scheme s) {
  switch (s) {
    case Scheme::kNone:
      return "baseline";
    case Scheme::kDetectOnly:
      return "detect-only";
    case Scheme::kDetectCorrect:
      return "detect+correct";
  }
  return "?";
}

struct ProtectedRange {
  Addr base = 0;
  std::uint64_t size = 0;
  Addr replica_base[2] = {0, 0};  // second entry used by kDetectCorrect
  // Per-range copy-count override (0 = the scheme's default). The
  // recovery subsystem's Tier 2 sets this to 2 when it escalates a
  // repeat-offender object from detect-only to a full majority vote.
  std::uint8_t copies = 0;

  bool Contains(Addr a) const { return a >= base && a < base + size; }
  Addr ReplicaAddr(unsigned copy, Addr a) const {
    return replica_base[copy] + (a - base);
  }
};

// The LD/ST-unit configuration for one run.
struct ProtectionPlan {
  Scheme scheme = Scheme::kNone;
  // Detection-only: proceed on first copy, compare lazily (the paper's
  // scheme). Setting false gives the eager ablation where the warp
  // stalls for both copies.
  bool lazy_compare = true;
  // Extension beyond the paper: propagate stores to the replicas,
  // which lifts the read-only restriction on protected objects at the
  // cost of duplicated/triplicated write traffic (the paper's schemes
  // have no write path and only cover read-only inputs).
  bool propagate_stores = false;
  std::vector<ProtectedRange> ranges;
  // Static load instructions that may touch protected data. Empty set
  // means "check addresses only" (equivalent here, since ranges never
  // alias; the table mirrors the paper's 32-entry PC store).
  std::unordered_set<Pc> pcs;

  unsigned NumCopies() const {
    switch (scheme) {
      case Scheme::kNone:
        return 0;
      case Scheme::kDetectOnly:
        return 1;
      case Scheme::kDetectCorrect:
        return 2;
    }
    return 0;
  }

  // Copies actually held for one range: the per-range escalation
  // override when set, else the scheme default.
  unsigned CopiesFor(const ProtectedRange& r) const {
    return r.copies != 0 ? r.copies : NumCopies();
  }

  const ProtectedRange* Lookup(Addr a) const {
    if (scheme == Scheme::kNone) return nullptr;
    for (const auto& r : ranges) {
      if (r.Contains(a)) return &r;
    }
    return nullptr;
  }

  bool PcTracked(Pc pc) const { return pcs.empty() || pcs.contains(pc); }

  // Validates against the hardware table capacities of Section IV-C.
  void Validate(const GpuConfig& cfg) const {
    const bool two = scheme == Scheme::kDetectCorrect;
    if (ranges.size() > cfg.MaxProtectedObjects(two)) {
      throw std::invalid_argument(
          "protected objects exceed start-address table capacity");
    }
    if (!pcs.empty() && pcs.size() > cfg.pc_table_entries) {
      throw std::invalid_argument(
          "protected load instructions exceed PC table capacity");
    }
  }
};

}  // namespace dcrm::sim
