// Shared little-endian binary encoding helpers for the repo's
// checksummed artifact formats (trace stores, shard results, campaign
// manifests): fixed-width integers, LEB128 varints, zigzag deltas, an
// FNV-1a checksum and a bounds-checked reader whose every
// out-of-bounds access is a reported corruption, never undefined
// behaviour. Writers append to a std::string and seal it with
// `AppendChecksum`; readers validate with `CheckedPayload` before
// decoding a field.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dcrm::bin {

inline void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline std::uint64_t Fnv1a(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Seals a writer's buffer with the FNV-1a checksum of everything
// written so far.
inline void AppendChecksum(std::string& out) { PutU64(out, Fnv1a(out)); }

// Bounds-checked reader over a loaded payload. `context` prefixes
// every corruption message ("trace file: truncated").
class Reader {
 public:
  Reader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  [[noreturn]] void Corrupt(const std::string& what) const {
    throw std::runtime_error(context_ + ": " + what);
  }

  std::uint32_t U32() {
    Need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(Byte()) << (8 * i);
    }
    return v;
  }

  std::uint64_t U64() {
    Need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(Byte()) << (8 * i);
    }
    return v;
  }

  std::uint64_t Varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      Need(1);
      const std::uint8_t b = Byte();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    Corrupt("varint overruns 64 bits");
  }

  std::string Bytes(std::size_t n) {
    Need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  void Skip(std::size_t n) {
    Need(n);
    pos_ += n;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void Need(std::size_t n) {
    if (data_.size() - pos_ < n) Corrupt("truncated");
  }
  std::uint8_t Byte() {
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  std::string context_;
};

// Validates the envelope every artifact format shares — leading magic,
// trailing FNV-1a checksum over everything before it — and returns the
// payload between them (magic included; version checks stay with the
// caller). Throws with the context prefix on any mismatch.
inline std::string_view CheckedPayload(std::string_view data,
                                       std::string_view magic,
                                       const std::string& context) {
  const auto corrupt = [&](const char* what) -> void {
    throw std::runtime_error(context + ": " + what);
  };
  if (data.size() < magic.size() + 8) corrupt("truncated");
  if (data.substr(0, magic.size()) != magic) corrupt("bad magic");
  const std::string_view body = data.substr(0, data.size() - 8);
  Reader tail(data, context);
  tail.Skip(data.size() - 8);
  if (tail.U64() != Fnv1a(body)) corrupt("checksum mismatch");
  return body;
}

}  // namespace dcrm::bin
