// Small filesystem helpers shared by the artifact writers (trace
// stores, shard results, campaign manifests).
//
// The load-bearing one is WriteFileAtomic: every durable artifact in
// the repo is written to a `<path>.tmp.<pid>` sibling, fsync'd, and
// renamed into place, so a reader can never observe a half-written
// file — a crashed writer leaves only a stale temp file (which the
// shard coordinator sweeps up), never a truncated artifact under the
// real name. Combined with the checksummed binary formats this gives
// the crash-tolerance contract: an artifact either loads exactly as
// written or is rejected whole.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dcrm {

// Reads the whole file. Throws std::runtime_error when unreadable.
std::string ReadFileToString(const std::string& path);

// Writes data to `<path>.tmp.<pid>`, fsyncs, then renames over `path`.
// Throws std::runtime_error (and removes the temp file) on any failure.
void WriteFileAtomic(const std::string& path, std::string_view data);

bool FileExists(const std::string& path);

// Best-effort removal; missing files are not an error.
void RemoveFileIfExists(const std::string& path);

// mkdir -p. Throws std::runtime_error on failure.
void EnsureDir(const std::string& path);

// Names (not paths) of regular files directly inside `dir`; empty when
// the directory does not exist.
std::vector<std::string> ListDir(const std::string& dir);

}  // namespace dcrm
