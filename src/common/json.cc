#include "common/json.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace dcrm::json {

namespace {

[[noreturn]] void TypeFail(const char* want, Value::Type got) {
  throw std::runtime_error(std::string("json: expected ") + want +
                           ", got type " +
                           std::to_string(static_cast<int>(got)));
}

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendUtf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  Value Run() {
    Value v = ParseValue(0);
    SkipWs();
    if (pos_ != s_.size()) Fail("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void Fail(const std::string& what) const {
    throw ParseError("json parse error at byte " + std::to_string(pos_) +
                     ": " + what);
  }

  void SkipWs() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= s_.size()) Fail("unexpected end of input");
    return s_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value ParseValue(int depth) {
    if (depth > kMaxDepth) Fail("nesting too deep");
    SkipWs();
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return Value(ParseString());
      case 't':
        if (!Consume("true")) Fail("bad literal");
        return Value(true);
      case 'f':
        if (!Consume("false")) Fail("bad literal");
        return Value(false);
      case 'n':
        if (!Consume("null")) Fail("bad literal");
        return Value(nullptr);
      default:
        return ParseNumber();
    }
  }

  Value ParseObject(int depth) {
    Expect('{');
    Value obj = Value::MakeObject();
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      SkipWs();
      if (Peek() != '"') Fail("expected object key");
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      obj.Set(std::move(key), ParseValue(depth + 1));
      SkipWs();
      const char c = Peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') Fail("expected ',' or '}'");
    }
  }

  Value ParseArray(int depth) {
    Expect('[');
    Value arr = Value::MakeArray();
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.Push(ParseValue(depth + 1));
      SkipWs();
      const char c = Peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') Fail("expected ',' or ']'");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) Fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) Fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) Fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          std::uint32_t cp = ParseHex4();
          if (cp >= 0xd800 && cp < 0xdc00) {
            // High surrogate: a low surrogate must follow.
            if (!Consume("\\u")) Fail("unpaired surrogate");
            const std::uint32_t lo = ParseHex4();
            if (lo < 0xdc00 || lo > 0xdfff) Fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp < 0xe000) {
            Fail("unpaired surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          Fail("bad escape");
      }
    }
  }

  std::uint32_t ParseHex4() {
    if (pos_ + 4 > s_.size()) Fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        Fail("bad hex digit");
      }
    }
    return v;
  }

  Value ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
      Fail("bad number");
    }
    const std::string_view text = s_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t v = 0;
      const auto [p, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec == std::errc() && p == text.data() + text.size()) {
        return Value(v);
      }
      // Out of int64 range: fall through to double.
    }
    const std::string copy(text);
    char* end = nullptr;
    const double d = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) Fail("bad number");
    return Value(d);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

void DumpTo(const Value& v, std::string& out);

void DumpDouble(double d, std::string& out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void DumpTo(const Value& v, std::string& out) {
  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      return;
    case Value::Type::kBool:
      out += v.AsBool() ? "true" : "false";
      return;
    case Value::Type::kInt:
      out += std::to_string(v.AsInt());
      return;
    case Value::Type::kDouble:
      DumpDouble(v.AsDouble(), out);
      return;
    case Value::Type::kString:
      AppendEscaped(out, v.AsString());
      return;
    case Value::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Value& e : v.AsArray()) {
        if (!first) out.push_back(',');
        first = false;
        DumpTo(e, out);
      }
      out.push_back(']');
      return;
    }
    case Value::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, val] : v.AsObject()) {
        if (!first) out.push_back(',');
        first = false;
        AppendEscaped(out, key);
        out.push_back(':');
        DumpTo(val, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

bool Value::AsBool() const {
  if (!IsBool()) TypeFail("bool", type());
  return std::get<bool>(v_);
}

std::int64_t Value::AsInt() const {
  if (!IsInt()) TypeFail("integer", type());
  return std::get<std::int64_t>(v_);
}

double Value::AsDouble() const {
  if (IsInt()) return static_cast<double>(std::get<std::int64_t>(v_));
  if (!IsDouble()) TypeFail("number", type());
  return std::get<double>(v_);
}

const std::string& Value::AsString() const {
  if (!IsString()) TypeFail("string", type());
  return std::get<std::string>(v_);
}

const Array& Value::AsArray() const {
  if (!IsArray()) TypeFail("array", type());
  return std::get<Array>(v_);
}

const Object& Value::AsObject() const {
  if (!IsObject()) TypeFail("object", type());
  return std::get<Object>(v_);
}

Value& Value::Set(std::string key, Value v) {
  if (!IsObject()) TypeFail("object", type());
  std::get<Object>(v_).emplace_back(std::move(key), std::move(v));
  return *this;
}

const Value* Value::Find(std::string_view key) const {
  if (!IsObject()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::Push(Value v) {
  if (!IsArray()) TypeFail("array", type());
  std::get<Array>(v_).push_back(std::move(v));
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(*this, out);
  return out;
}

Value Value::Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace dcrm::json
