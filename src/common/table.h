// ASCII table / CSV emitters so every bench prints the same rows and
// series the paper's tables and figures report.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dcrm {

// A simple column-aligned text table. Cells are strings; numeric
// helpers format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Starts a new row. Subsequent Add* calls append cells to it.
  TextTable& NewRow();
  TextTable& Add(std::string cell);
  TextTable& Add(double v, int precision = 3);
  TextTable& Add(std::uint64_t v);
  TextTable& Add(std::int64_t v);
  TextTable& Add(int v) { return Add(static_cast<std::int64_t>(v)); }
  TextTable& Add(unsigned v) { return Add(static_cast<std::uint64_t>(v)); }

  std::size_t NumRows() const { return rows_.size(); }

  // Renders with a header rule and right-aligned numeric-looking cells.
  std::string Render() const;
  // Comma-separated form (header + rows), for scripting.
  std::string RenderCsv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double like "1.234" trimming trailing zeros.
std::string FormatNum(double v, int precision = 3);

}  // namespace dcrm
