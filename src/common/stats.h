// Small statistics helpers used by fault-injection campaigns and
// benchmark reporting.
#pragma once

#include <cstddef>
#include <span>

namespace dcrm {

double Mean(std::span<const double> xs);
double Variance(std::span<const double> xs);  // sample variance (n-1)
double StdDev(std::span<const double> xs);

// Normal-approximation confidence interval for a binomial proportion,
// the model the paper cites ([33] Leveugle et al.) to justify 1000
// runs for 95% confidence +/-3%.
struct ProportionCi {
  double p;       // point estimate
  double margin;  // half-width
  double lo;      // clamped to [0,1]
  double hi;
};
ProportionCi BinomialCi(std::size_t successes, std::size_t trials,
                        double confidence = 0.95);

// Number of runs needed for a proportion estimate with the given
// half-width at the given confidence, worst case p=0.5. For 95% and
// 0.03 this returns ~1068, matching the paper's "1000 runs" practice.
std::size_t RunsForMargin(double margin, double confidence = 0.95);

// Two-sided z quantile, e.g. 0.95 -> 1.95996.
double ZQuantile(double confidence);

}  // namespace dcrm
