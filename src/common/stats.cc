#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace dcrm {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double ZQuantile(double confidence) {
  // Inverse error function via the Acklam/Beasley-Springer-Moro style
  // rational approximation of the normal quantile; accurate to ~1e-9,
  // far below anything the campaigns need.
  const double p = 0.5 + confidence / 2.0;
  // Coefficients for the central region.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= 1 - plow) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

ProportionCi BinomialCi(std::size_t successes, std::size_t trials,
                        double confidence) {
  ProportionCi ci{};
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  ci.p = static_cast<double>(successes) / n;
  const double z = ZQuantile(confidence);
  ci.margin = z * std::sqrt(ci.p * (1.0 - ci.p) / n);
  ci.lo = std::max(0.0, ci.p - ci.margin);
  ci.hi = std::min(1.0, ci.p + ci.margin);
  return ci;
}

std::size_t RunsForMargin(double margin, double confidence) {
  const double z = ZQuantile(confidence);
  const double n = z * z * 0.25 / (margin * margin);
  return static_cast<std::size_t>(std::ceil(n));
}

}  // namespace dcrm
