// Minimal leveled logging. Benches and examples keep their primary
// output on stdout; diagnostics go through here to stderr.
#pragma once

#include <sstream>
#include <string>

namespace dcrm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level (default kInfo). Not thread-safe by
// design: the framework is single-threaded per simulation.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace internal

#define DCRM_LOG(level) \
  ::dcrm::internal::LogLine(::dcrm::LogLevel::level)

}  // namespace dcrm
