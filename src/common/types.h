// Fundamental types shared across the simulator and the reliability
// framework.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dcrm {

// Device (virtual == physical in this model) byte address.
using Addr = std::uint64_t;

// Global warp identifier across the whole grid.
using WarpId = std::uint32_t;

// Static load/store instruction identifier ("program counter"). Each
// distinct memory-access site in a kernel body has one.
using Pc = std::uint32_t;

// Size of a data memory block / cache line in bytes. The paper (and
// GPGPU-Sim's default config) uses 128B throughout.
inline constexpr std::uint32_t kBlockSize = 128;

inline constexpr std::uint32_t kWarpSize = 32;

// Block index for a byte address.
constexpr std::uint64_t BlockOf(Addr a) { return a / kBlockSize; }
constexpr Addr BlockBase(Addr a) { return a - (a % kBlockSize); }

// CUDA-like 3-component index.
struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  constexpr std::uint64_t Count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
  friend constexpr bool operator==(const Dim3&, const Dim3&) = default;
};

enum class AccessType : std::uint8_t { kLoad, kStore };

}  // namespace dcrm
