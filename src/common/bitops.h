// Bit-level helpers for the fault model and the SECDED codec.
#pragma once

#include <bit>
#include <cstdint>

namespace dcrm {

constexpr std::uint64_t SetBit(std::uint64_t v, unsigned bit) {
  return v | (std::uint64_t{1} << bit);
}

constexpr std::uint64_t ClearBit(std::uint64_t v, unsigned bit) {
  return v & ~(std::uint64_t{1} << bit);
}

constexpr std::uint64_t FlipBit(std::uint64_t v, unsigned bit) {
  return v ^ (std::uint64_t{1} << bit);
}

constexpr bool TestBit(std::uint64_t v, unsigned bit) {
  return (v >> bit) & 1u;
}

constexpr unsigned PopCount(std::uint64_t v) {
  return static_cast<unsigned>(std::popcount(v));
}

// Parity (XOR-reduction) of a 64-bit word.
constexpr unsigned Parity(std::uint64_t v) { return PopCount(v) & 1u; }

}  // namespace dcrm
