// Child-process spawn/poll/kill helper for the shard coordinator: a
// thin fork/exec wrapper whose status handling distinguishes the
// failure modes the coordinator's retry policy cares about — clean
// exit, nonzero exit, and death by signal (a SIGKILLed or crashed
// worker). Polling is non-blocking so one coordinator thread can
// babysit a whole fleet of workers plus their timeouts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dcrm {

// Decomposed wait status of a finished child.
struct ExitStatus {
  bool signaled = false;
  int code = 0;  // exit code when !signaled, else the signal number
  bool ok() const { return !signaled && code == 0; }
  std::string Describe() const;
};

class Subprocess {
 public:
  Subprocess() = default;

  // Spawns argv (argv[0] is the executable, resolved via PATH) with
  // stdout/stderr appended to the given files when non-empty. Throws
  // std::runtime_error when the fork or redirect setup fails; an
  // unexecutable binary surfaces as exit code 127.
  static Subprocess Spawn(const std::vector<std::string>& argv,
                          const std::string& stdout_path = {},
                          const std::string& stderr_path = {});

  // Non-blocking reap: the exit status once the child has finished,
  // std::nullopt while it is still running. Idempotent after the
  // child is reaped.
  std::optional<ExitStatus> Poll();

  // Blocking reap.
  ExitStatus Wait();

  // Sends `sig`; a no-op once the child has been reaped.
  void Kill(int sig);

  bool running() { return pid_ > 0 && !Poll().has_value(); }
  int pid() const { return pid_; }

 private:
  int pid_ = -1;
  std::optional<ExitStatus> status_;
};

// Monotonic wall clock in milliseconds (timeouts, retry backoff).
std::uint64_t MonotonicMs();

void SleepMs(unsigned ms);

}  // namespace dcrm
