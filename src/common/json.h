// Minimal JSON value / parser / serializer for the service protocol
// (src/service): enough of RFC 8259 for small flat request/response
// maps, with the properties the wire format needs and a general
// library would not guarantee:
//
//  * objects keep insertion order, so Dump() of the same message is
//    byte-deterministic (cache keys and tests can compare encodings);
//  * integers that fit int64 stay integers end to end — no silent
//    double round-trip of seeds or counters;
//  * the parser is depth-limited and every malformed input throws
//    ParseError with a byte offset, never UB — it runs on bytes
//    received from untrusted clients.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace dcrm::json {

class Value;
using Array = std::vector<Value>;
// Insertion-ordered key/value pairs (no dedup; Set appends).
using Object = std::vector<std::pair<std::string, Value>>;

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : v_(b) {}
  Value(int v) : v_(static_cast<std::int64_t>(v)) {}
  Value(unsigned v) : v_(static_cast<std::int64_t>(v)) {}
  Value(std::int64_t v) : v_(v) {}
  Value(double v) : v_(v) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}

  static Value MakeArray() {
    Value v;
    v.v_ = Array{};
    return v;
  }
  static Value MakeObject() {
    Value v;
    v.v_ = Object{};
    return v;
  }

  Type type() const { return static_cast<Type>(v_.index()); }
  bool IsNull() const { return type() == Type::kNull; }
  bool IsBool() const { return type() == Type::kBool; }
  bool IsInt() const { return type() == Type::kInt; }
  bool IsDouble() const { return type() == Type::kDouble; }
  bool IsNumber() const { return IsInt() || IsDouble(); }
  bool IsString() const { return type() == Type::kString; }
  bool IsArray() const { return type() == Type::kArray; }
  bool IsObject() const { return type() == Type::kObject; }

  // Typed accessors throw std::runtime_error on a type mismatch — the
  // decode layer turns that into a malformed-request error.
  bool AsBool() const;
  std::int64_t AsInt() const;  // accepts kInt only
  double AsDouble() const;     // accepts kInt or kDouble
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;

  // Object helpers. Set appends (keys are expected unique by
  // construction); Find returns null on a missing key or non-object.
  Value& Set(std::string key, Value v);
  const Value* Find(std::string_view key) const;
  // Array append.
  void Push(Value v);

  // Compact serialization (no whitespace), deterministic for a given
  // construction order.
  std::string Dump() const;

  // Throws ParseError on malformed input, depth > 64, or trailing
  // garbage.
  static Value Parse(std::string_view text);

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Array,
               Object>
      v_;
};

}  // namespace dcrm::json
