#include "common/rng.h"

namespace dcrm {
namespace {

constexpr std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; splitmix cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next64() {
  const std::uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

std::uint64_t Rng::Below(std::uint64_t bound) {
  // Classic unbiased rejection sampling over the largest multiple of
  // `bound` that fits in 64 bits.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::Range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t r = (span == 0) ? Next64() : Below(span);
  return lo + static_cast<std::int64_t>(r);
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

}  // namespace dcrm
