#include "common/log.h"

#include <iostream>

namespace dcrm {
namespace {
LogLevel g_level = LogLevel::kInfo;

const char* Name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {
void Emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::cerr << "[" << Name(level) << "] " << msg << '\n';
}
}  // namespace internal

}  // namespace dcrm
