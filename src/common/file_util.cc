#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace dcrm {

namespace {

[[noreturn]] void Fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

std::string ReadFileToString(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) Fail("cannot read", path);
  std::string data((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  if (is.bad()) Fail("cannot read", path);
  return data;
}

void WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) Fail("cannot create", tmp);
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      Fail("cannot write", tmp);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // Durability before visibility: the bytes must be on disk before the
  // rename publishes the name, or a crash could expose an empty file
  // under the final path.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    Fail("cannot sync", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    Fail("cannot rename into", path);
  }
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

void EnsureDir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw std::runtime_error("cannot create directory " + path + ": " +
                             ec.message());
  }
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    if (e.is_regular_file()) names.push_back(e.path().filename().string());
  }
  return names;
}

}  // namespace dcrm
