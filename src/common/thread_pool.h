// A small fixed-size thread pool for deterministic fan-out.
//
// Deliberately work-stealing-free: callers partition their work into
// per-lane chunks themselves (the campaign engine chunks trials by
// trial index), dispatch one job per lane, and barrier. Nothing about
// the pool's scheduling can influence which lane processes which work
// item, which is what keeps parallel campaign results bit-identical to
// the serial engine at any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcrm {

class ThreadPool {
 public:
  // Spawns `threads` persistent workers (at least one).
  explicit ThreadPool(unsigned threads) {
    threads = threads == 0 ? 1 : threads;
    seen_.assign(threads, 0);
    workers_.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Runs job(lane) for every lane in [0, lanes) on the pool's workers
  // (lane w on worker w; lanes must be <= size()) and blocks until all
  // lanes finish. The first exception thrown by any lane is rethrown
  // here after the barrier. Not reentrant: do not Dispatch from inside
  // a job.
  void Dispatch(unsigned lanes, const std::function<void(unsigned)>& job) {
    if (lanes == 0) return;
    std::unique_lock<std::mutex> lk(m_);
    job_ = &job;
    lanes_ = lanes;
    pending_ = size();
    ++generation_;
    cv_work_.notify_all();
    cv_done_.wait(lk, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void WorkerLoop(unsigned w) {
    std::unique_lock<std::mutex> lk(m_);
    std::uint64_t& seen = seen_[w];
    for (;;) {
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (w < lanes_) {
        const std::function<void(unsigned)>* job = job_;
        lk.unlock();
        try {
          (*job)(w);
        } catch (...) {
          const std::lock_guard<std::mutex> elk(m_);
          if (!error_) error_ = std::current_exception();
        }
        lk.lock();
      }
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  unsigned lanes_ = 0;
  unsigned pending_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::uint64_t> seen_;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace dcrm
