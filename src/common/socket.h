// Unix-domain stream sockets with length-prefixed framing — the
// transport under the reliability service (src/service, DESIGN.md
// §14).
//
// Frame format: u32 little-endian payload length, then that many
// payload bytes. The reader enforces a caller-supplied frame cap
// before allocating (FrameTooLarge on an oversized announcement — the
// stream cannot be resynchronized afterwards, so the connection must
// be dropped) and polls with a stop flag so a draining daemon's
// connection threads unblock without extra signalling machinery.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dcrm::net {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The peer announced a frame larger than the cap. Fatal for the
// connection: the oversized payload was not consumed.
class FrameTooLarge : public SocketError {
 public:
  FrameTooLarge(std::uint64_t announced, std::uint64_t cap)
      : SocketError("frame of " + std::to_string(announced) +
                    " bytes exceeds the " + std::to_string(cap) +
                    "-byte cap"),
        announced_(announced) {}
  std::uint64_t announced() const { return announced_; }

 private:
  std::uint64_t announced_;
};

// RAII fd owner; move-only.
class UnixSocket {
 public:
  UnixSocket() = default;
  explicit UnixSocket(int fd) : fd_(fd) {}
  UnixSocket(const UnixSocket&) = delete;
  UnixSocket& operator=(const UnixSocket&) = delete;
  UnixSocket(UnixSocket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  UnixSocket& operator=(UnixSocket&& o) noexcept;
  ~UnixSocket();

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

// Binds and listens on `path`. A stale socket file left by a crashed
// daemon is detected (nothing accepts a probe connection) and
// unlinked; a live daemon on the same path is a bind failure. Throws
// SocketError on any failure — `dcrm serve` maps it to exit 10.
UnixSocket ListenUnix(const std::string& path, int backlog = 64);

// Accepts one connection, waiting at most `timeout_ms`; nullopt on
// timeout (callers loop, checking their stop flag between calls).
std::optional<UnixSocket> AcceptUnix(const UnixSocket& listener,
                                     int timeout_ms);

// Throws SocketError when nothing listens on `path` — `dcrm request`
// maps it to exit 11.
UnixSocket ConnectUnix(const std::string& path);

// Writes one length-prefixed frame. Throws SocketError on a broken
// peer (EPIPE is an exception here, never a signal).
void WriteFrame(int fd, std::string_view payload);

// Reads one frame. Returns nullopt on a clean close before any byte of
// a frame, or when `stop` turns true while waiting (including
// mid-frame: a draining server abandons half-read requests). Throws
// FrameTooLarge / SocketError otherwise.
std::optional<std::string> ReadFrame(int fd, std::uint32_t max_bytes,
                                     const std::atomic<bool>* stop = nullptr,
                                     int poll_interval_ms = 100);

// Reads and discards exactly `count` bytes (the unconsumed payload of
// a FrameTooLarge rejection). Closing with unread bytes in the receive
// buffer resets the connection and can destroy an in-flight response;
// draining first lets the rejection frame arrive and the close be a
// clean EOF. Returns false when the peer closed or `stop` turned true
// before `count` bytes arrived.
bool DiscardBytes(int fd, std::uint64_t count,
                  const std::atomic<bool>* stop = nullptr,
                  int poll_interval_ms = 100);

}  // namespace dcrm::net
