// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component in the framework (fault-site selection,
// synthetic input generation, stuck-at polarity) draws from an Rng
// seeded explicitly, so every experiment is reproducible from the seed
// its bench prints.
#pragma once

#include <cstdint>
#include <limits>

namespace dcrm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  // Re-seeds using splitmix64 so that nearby seeds give uncorrelated
  // streams.
  void Seed(std::uint64_t seed);

  // Uniform over [0, 2^64).
  std::uint64_t Next64();

  // Uniform over [0, bound). Requires bound > 0. Uses Lemire's
  // nearly-divisionless rejection method (unbiased).
  std::uint64_t Below(std::uint64_t bound);

  // Uniform over [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Range(std::int64_t lo, std::int64_t hi);

  // Uniform over [0, 1).
  double NextDouble();

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Standard UniformRandomBitGenerator interface so Rng works with
  // <algorithm> shuffles.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return Next64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace dcrm
