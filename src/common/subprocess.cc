#include "common/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace dcrm {

namespace {

// In the child between fork and exec: only async-signal-safe calls.
void RedirectOrDie(const char* path, int target_fd) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0 || ::dup2(fd, target_fd) < 0) _exit(126);
  ::close(fd);
}

ExitStatus Decode(int wstatus) {
  ExitStatus st;
  if (WIFSIGNALED(wstatus)) {
    st.signaled = true;
    st.code = WTERMSIG(wstatus);
  } else {
    st.code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 125;
  }
  return st;
}

}  // namespace

std::string ExitStatus::Describe() const {
  if (ok()) return "exit 0";
  if (signaled) {
    return std::string("killed by signal ") + std::to_string(code) + " (" +
           strsignal(code) + ")";
  }
  return "exit code " + std::to_string(code);
}

Subprocess Subprocess::Spawn(const std::vector<std::string>& argv,
                             const std::string& stdout_path,
                             const std::string& stderr_path) {
  if (argv.empty()) throw std::invalid_argument("Subprocess: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    if (!stdout_path.empty()) RedirectOrDie(stdout_path.c_str(), 1);
    if (!stderr_path.empty()) RedirectOrDie(stderr_path.c_str(), 2);
    ::execvp(cargv[0], cargv.data());
    _exit(127);
  }
  Subprocess p;
  p.pid_ = pid;
  return p;
}

std::optional<ExitStatus> Subprocess::Poll() {
  if (status_.has_value() || pid_ <= 0) return status_;
  int wstatus = 0;
  const pid_t r = ::waitpid(pid_, &wstatus, WNOHANG);
  if (r == 0) return std::nullopt;
  if (r < 0) {
    // ECHILD etc: nothing left to reap; report it as an abnormal exit
    // rather than spinning forever.
    status_ = ExitStatus{false, 125};
    return status_;
  }
  status_ = Decode(wstatus);
  return status_;
}

ExitStatus Subprocess::Wait() {
  if (status_.has_value()) return *status_;
  int wstatus = 0;
  while (::waitpid(pid_, &wstatus, 0) < 0) {
    if (errno != EINTR) {
      status_ = ExitStatus{false, 125};
      return *status_;
    }
  }
  status_ = Decode(wstatus);
  return *status_;
}

void Subprocess::Kill(int sig) {
  if (pid_ > 0 && !status_.has_value()) ::kill(pid_, sig);
}

std::uint64_t MonotonicMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SleepMs(unsigned ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace dcrm
