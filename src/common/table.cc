#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

namespace dcrm {

std::string FormatNum(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::NewRow() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::Add(std::string cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::Add(double v, int precision) {
  return Add(FormatNum(v, precision));
}

TextTable& TextTable::Add(std::uint64_t v) { return Add(std::to_string(v)); }
TextTable& TextTable::Add(std::int64_t v) { return Add(std::to_string(v)); }

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == '%' || c == 'x')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string TextTable::Render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_cell = [&](const std::string& s, std::size_t w, bool right) {
    if (right) {
      os << std::string(w - s.size(), ' ') << s;
    } else {
      os << s << std::string(w - s.size(), ' ');
    }
  };
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << "  ";
    emit_cell(header_[i], width[i], false);
  }
  os << '\n';
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << "  ";
    os << std::string(width[i], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << "  ";
      const std::size_t w = i < width.size() ? width[i] : row[i].size();
      emit_cell(row[i], w, LooksNumeric(row[i]));
    }
    os << '\n';
  }
  return os.str();
}

std::string TextTable::RenderCsv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.Render();
}

}  // namespace dcrm
