#include "common/socket.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dcrm::net {

namespace {

std::string ErrnoText() { return std::strerror(errno); }

sockaddr_un MakeAddr(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("socket path empty or too long (max " +
                      std::to_string(sizeof(addr.sun_path) - 1) +
                      " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

UnixSocket MakeSocket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw SocketError("socket(): " + ErrnoText());
  return UnixSocket(fd);
}

}  // namespace

UnixSocket& UnixSocket::operator=(UnixSocket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

UnixSocket::~UnixSocket() { Close(); }

void UnixSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixSocket ListenUnix(const std::string& path, int backlog) {
  const sockaddr_un addr = MakeAddr(path);
  UnixSocket s = MakeSocket();
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  const auto* ap = reinterpret_cast<const sockaddr*>(&addr);
  if (::bind(s.fd(), ap, sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) {
      throw SocketError("bind(" + path + "): " + ErrnoText());
    }
    // Distinguish a live daemon from a stale socket file: probe with a
    // connect. Refused/unanswered means the previous owner is gone —
    // unlink and rebind.
    bool live = true;
    try {
      ConnectUnix(path);
    } catch (const SocketError&) {
      live = false;
    }
    if (live) {
      throw SocketError("bind(" + path +
                        "): address in use (another daemon is listening)");
    }
    ::unlink(path.c_str());
    if (::bind(s.fd(), ap, sizeof(addr)) != 0) {
      throw SocketError("bind(" + path + "): " + ErrnoText());
    }
  }
  if (::listen(s.fd(), backlog) != 0) {
    const std::string err = ErrnoText();
    ::unlink(path.c_str());
    throw SocketError("listen(" + path + "): " + err);
  }
  return s;
}

std::optional<UnixSocket> AcceptUnix(const UnixSocket& listener,
                                     int timeout_ms) {
  pollfd p = {};
  p.fd = listener.fd();
  p.events = POLLIN;
  const int pr = ::poll(&p, 1, timeout_ms);
  if (pr < 0) {
    if (errno == EINTR) return std::nullopt;
    throw SocketError("poll(listener): " + ErrnoText());
  }
  if (pr == 0) return std::nullopt;
  const int fd = ::accept4(listener.fd(), nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return std::nullopt;
    }
    throw SocketError("accept(): " + ErrnoText());
  }
  return UnixSocket(fd);
}

UnixSocket ConnectUnix(const std::string& path) {
  const sockaddr_un addr = MakeAddr(path);
  UnixSocket s = MakeSocket();
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  const auto* ap = reinterpret_cast<const sockaddr*>(&addr);
  if (::connect(s.fd(), ap, sizeof(addr)) != 0) {
    throw SocketError("connect(" + path + "): " + ErrnoText());
  }
  return s;
}

void WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > UINT32_MAX) {
    throw SocketError("frame payload exceeds u32 length prefix");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  char hdr[4];
  for (int i = 0; i < 4; ++i) {
    hdr[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  const auto send_all = [fd](const char* data, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        throw SocketError("send(): " + ErrnoText());
      }
      off += static_cast<std::size_t>(w);
    }
  };
  send_all(hdr, sizeof(hdr));
  send_all(payload.data(), payload.size());
}

std::optional<std::string> ReadFrame(int fd, std::uint32_t max_bytes,
                                     const std::atomic<bool>* stop,
                                     int poll_interval_ms) {
  // 1 = filled, 0 = clean EOF before the first byte, -1 = stopped.
  const auto pump = [&](char* dst, std::size_t need,
                        bool eof_ok_at_start) -> int {
    std::size_t off = 0;
    while (off < need) {
      pollfd p = {};
      p.fd = fd;
      p.events = POLLIN;
      const int pr = ::poll(&p, 1, poll_interval_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        throw SocketError("poll(): " + ErrnoText());
      }
      if (pr == 0) {
        if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
          return -1;
        }
        continue;
      }
      const ssize_t r = ::recv(fd, dst + off, need - off, 0);
      if (r == 0) {
        if (off == 0 && eof_ok_at_start) return 0;
        throw SocketError("peer closed mid-frame");
      }
      if (r < 0) {
        if (errno == EINTR) continue;
        throw SocketError("recv(): " + ErrnoText());
      }
      off += static_cast<std::size_t>(r);
    }
    return 1;
  };

  char hdr[4];
  if (pump(hdr, sizeof(hdr), /*eof_ok_at_start=*/true) <= 0) {
    return std::nullopt;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(hdr[i]))
           << (8 * i);
  }
  if (len > max_bytes) throw FrameTooLarge(len, max_bytes);
  std::string body(len, '\0');
  if (len > 0 && pump(body.data(), len, /*eof_ok_at_start=*/false) <= 0) {
    return std::nullopt;
  }
  return body;
}

bool DiscardBytes(int fd, std::uint64_t count, const std::atomic<bool>* stop,
                  int poll_interval_ms) {
  char sink[4096];
  std::uint64_t left = count;
  while (left > 0) {
    pollfd p = {};
    p.fd = fd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, poll_interval_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
        return false;
      }
      continue;
    }
    const std::size_t want =
        left < sizeof(sink) ? static_cast<std::size_t>(left) : sizeof(sink);
    const ssize_t r = ::recv(fd, sink, want, 0);
    if (r == 0) return false;  // peer closed early
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    left -= static_cast<std::uint64_t>(r);
  }
  return true;
}

}  // namespace dcrm::net
