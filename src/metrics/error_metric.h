// Output error metrics of Table II: per-application ways to decide
// whether a fault-injected run produced a silent data corruption.
#pragma once

#include <cstdint>
#include <span>

namespace dcrm::metrics {

// Fraction of elements whose value differs from the golden output by
// more than `tol` (absolute). Polybench result vectors.
double VectorDiffFraction(std::span<const float> golden,
                          std::span<const float> observed,
                          float tol = 0.0f);

// As above with a mixed absolute/relative tolerance: elements count
// as different when |a-b| > abs_tol + rel_tol * |a|.
double VectorDiffFractionRel(std::span<const float> golden,
                             std::span<const float> observed,
                             double rel_tol, double abs_tol);

// Normalized root-mean-square error between two images (float pixels),
// normalized by the golden dynamic range. AxBench image outputs.
double Nrmse(std::span<const float> golden, std::span<const float> observed);

// NRMSE as computed on *rendered* images: observed pixels are clamped
// into the golden image's dynamic range first (AxBench compares the
// written 8-bit image files, so a fault that turns a stored pixel
// into 1e38 deviates by at most the pixel range, not by 1e38).
double NrmseRendered(std::span<const float> golden,
                     std::span<const float> observed);

// Fraction of argmax classifications that changed. C-NN output: one
// score vector of `num_classes` per sample, flattened.
double MisclassificationRate(std::span<const float> golden_scores,
                             std::span<const float> observed_scores,
                             std::size_t num_classes);

// Reinterprets raw output-object bytes as floats. Throws if the size
// is not a multiple of 4.
std::span<const float> AsFloats(std::span<const std::uint8_t> bytes);

}  // namespace dcrm::metrics
