#include "metrics/error_metric.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace dcrm::metrics {

double VectorDiffFraction(std::span<const float> golden,
                          std::span<const float> observed, float tol) {
  if (golden.size() != observed.size()) {
    throw std::invalid_argument("vector size mismatch");
  }
  if (golden.empty()) return 0.0;
  std::size_t diff = 0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const float a = golden[i];
    const float b = observed[i];
    // NaN on either side counts as different unless both NaN with the
    // same bit pattern is irrelevant for an SDC check — treat any NaN
    // mismatch as a difference.
    if (std::isnan(a) || std::isnan(b)) {
      if (!(std::isnan(a) && std::isnan(b))) ++diff;
      continue;
    }
    if (std::fabs(a - b) > tol) ++diff;
  }
  return static_cast<double>(diff) / static_cast<double>(golden.size());
}

double VectorDiffFractionRel(std::span<const float> golden,
                             std::span<const float> observed,
                             double rel_tol, double abs_tol) {
  if (golden.size() != observed.size()) {
    throw std::invalid_argument("vector size mismatch");
  }
  if (golden.empty()) return 0.0;
  std::size_t diff = 0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const double a = golden[i];
    const double b = observed[i];
    if (std::isnan(a) || std::isnan(b)) {
      if (!(std::isnan(a) && std::isnan(b))) ++diff;
      continue;
    }
    if (std::fabs(a - b) > abs_tol + rel_tol * std::fabs(a)) ++diff;
  }
  return static_cast<double>(diff) / static_cast<double>(golden.size());
}

double Nrmse(std::span<const float> golden, std::span<const float> observed) {
  if (golden.size() != observed.size()) {
    throw std::invalid_argument("image size mismatch");
  }
  if (golden.empty()) return 0.0;
  double se = 0.0;
  float lo = golden[0];
  float hi = golden[0];
  bool any_nan = false;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const float a = golden[i];
    const float b = observed[i];
    if (std::isnan(a) || std::isnan(b) || std::isinf(b)) {
      any_nan = true;
      continue;
    }
    const double d = static_cast<double>(a) - static_cast<double>(b);
    se += d * d;
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  if (any_nan) return 1.0;  // corrupted beyond measure
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  const double rmse = std::sqrt(se / static_cast<double>(golden.size()));
  return range > 0 ? rmse / range : (rmse > 0 ? 1.0 : 0.0);
}

double MisclassificationRate(std::span<const float> golden_scores,
                             std::span<const float> observed_scores,
                             std::size_t num_classes) {
  if (golden_scores.size() != observed_scores.size() || num_classes == 0 ||
      golden_scores.size() % num_classes != 0) {
    throw std::invalid_argument("bad score layout");
  }
  const std::size_t samples = golden_scores.size() / num_classes;
  if (samples == 0) return 0.0;
  std::size_t mis = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    auto argmax = [&](std::span<const float> v) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < num_classes; ++c) {
        if (v[s * num_classes + c] > v[s * num_classes + best]) best = c;
      }
      return best;
    };
    if (argmax(golden_scores) != argmax(observed_scores)) ++mis;
  }
  return static_cast<double>(mis) / static_cast<double>(samples);
}

double NrmseRendered(std::span<const float> golden,
                     std::span<const float> observed) {
  if (golden.size() != observed.size()) {
    throw std::invalid_argument("image size mismatch");
  }
  if (golden.empty()) return 0.0;
  float lo = golden[0];
  float hi = golden[0];
  for (const float g : golden) {
    if (std::isnan(g)) continue;
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  std::vector<float> rendered(observed.size());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const float v = observed[i];
    // NaN renders as the low end (black), like a corrupted pixel in a
    // written image file.
    rendered[i] = std::isnan(v) ? lo : std::clamp(v, lo, hi);
  }
  return Nrmse(golden, rendered);
}

std::span<const float> AsFloats(std::span<const std::uint8_t> bytes) {
  if (bytes.size() % sizeof(float) != 0) {
    throw std::invalid_argument("byte span not float-aligned");
  }
  return {reinterpret_cast<const float*>(bytes.data()),
          bytes.size() / sizeof(float)};
}

}  // namespace dcrm::metrics
