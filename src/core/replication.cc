#include "core/replication.h"

#include <cstring>
#include <stdexcept>

namespace dcrm::core {

std::vector<ReplicaInfo> ReplicateObjects(
    mem::DeviceMemory& dev, std::span<const mem::ObjectId> objects,
    unsigned copies, ReplicaPlacement placement, std::uint32_t num_channels,
    bool allow_writable) {
  if (copies == 0 || copies > 2) {
    throw std::invalid_argument("copies must be 1 or 2");
  }
  std::vector<ReplicaInfo> out;
  out.reserve(objects.size());
  auto& space = dev.space();
  for (mem::ObjectId id : objects) {
    const mem::DataObject& obj = space.Object(id);
    if (!obj.read_only && !allow_writable) {
      throw std::invalid_argument("only read-only objects can be replicated: " +
                                  obj.name);
    }
    ReplicaInfo info;
    info.object = id;
    info.copies = copies;
    for (unsigned c = 0; c < copies; ++c) {
      if (placement == ReplicaPlacement::kSameChannel) {
        // Pad the break so the replica's first block maps to the
        // primary's channel (block-interleaved: channel = block % C),
        // *then* allocate the full-size replica.
        const std::uint64_t want =
            (obj.base / kBlockSize) % num_channels;
        const std::uint64_t cur = (space.Brk() / kBlockSize) % num_channels;
        const std::uint64_t pad = (want + num_channels - cur) % num_channels;
        if (pad > 0) space.AllocateRaw(pad * kBlockSize);
      }
      const Addr base = space.AllocateRaw(obj.size_bytes);
      std::memcpy(space.Data() + base, space.Data() + obj.base,
                  obj.size_bytes);
      info.replica_base[c] = base;
    }
    out.push_back(info);
  }
  return out;
}

sim::ProtectionPlan MakeProtectionPlan(const mem::AddressSpace& space,
                                       std::span<const ReplicaInfo> replicas,
                                       sim::Scheme scheme, bool lazy_compare,
                                       bool propagate_stores) {
  sim::ProtectionPlan plan;
  plan.scheme = scheme;
  plan.lazy_compare = lazy_compare;
  plan.propagate_stores = propagate_stores;
  if (scheme == sim::Scheme::kNone) return plan;
  const unsigned needed = scheme == sim::Scheme::kDetectCorrect ? 2u : 1u;
  for (const ReplicaInfo& r : replicas) {
    if (r.copies < needed) {
      throw std::invalid_argument("not enough replicas for requested scheme");
    }
    const mem::DataObject& obj = space.Object(r.object);
    sim::ProtectedRange range;
    range.base = obj.base;
    range.size = obj.size_bytes;
    range.replica_base[0] = r.replica_base[0];
    range.replica_base[1] = r.replica_base[1];
    plan.ranges.push_back(range);
  }
  return plan;
}

}  // namespace dcrm::core
