#include "core/recovery.h"

#include <algorithm>
#include <cstring>

namespace dcrm::core {

namespace {

// Arbitration ranking: a copy that decodes clean beats one SECDED
// flags as corrected (which, for the paper's >=3-bit faults, is
// usually a *miscorrection*), which beats a DUE. Equal ranks are
// unarbitrable and fall through to Tier 1.
int ProbeRank(mem::EccStatus s) {
  switch (s) {
    case mem::EccStatus::kOk:
      return 0;
    case mem::EccStatus::kCorrectedSingle:
      return 1;
    case mem::EccStatus::kDetectedDouble:
    case mem::EccStatus::kDetectedInvalid:
      return 2;
  }
  return 2;
}

}  // namespace

RecoveryCost ChargeRecovery(const RecoveryStats& s, unsigned runs,
                            std::uint64_t run_cycles,
                            const sim::GpuConfig& cfg) {
  RecoveryCost c;
  // One DRAM access against a closed row: activate + CAS + burst.
  const double dram_access =
      static_cast<double>(cfg.t_rcd + cfg.t_cl + cfg.burst_cycles);
  // Scrub: the corrected value is written back and read again to
  // verify it stuck.
  c.scrub_cycles = static_cast<double>(s.scrubs) * 2.0 * dram_access;
  // Retire: stream the 128B block out of the bad row and into the
  // spare, then precharge the bad row for good.
  c.retire_cycles = static_cast<double>(s.retired_blocks) *
                    (2.0 * dram_access + cfg.t_rp);
  c.reexec_cycles =
      static_cast<double>(s.retries) * static_cast<double>(run_cycles);
  c.backoff_cycles = static_cast<double>(s.backoff_units) *
                     static_cast<double>(cfg.recovery_backoff_cycles);
  c.total_cycles =
      c.scrub_cycles + c.retire_cycles + c.reexec_cycles + c.backoff_cycles;
  const double denom =
      static_cast<double>(runs) * static_cast<double>(run_cycles);
  c.per_run_overhead = denom > 0 ? c.total_cycles / denom : 0.0;
  return c;
}

RecoveryManager::RecoveryManager(mem::DeviceMemory& dev,
                                 const RecoveryConfig& cfg)
    : dev_(&dev), cfg_(cfg) {
  if (cfg_.retire && cfg_.spare_blocks > 0) {
    spare_base_ = dev_->space().AllocateRaw(
        std::uint64_t{cfg_.spare_blocks} * kBlockSize);
  }
}

void RecoveryManager::SetSnapshot(std::span<const std::byte> snapshot) {
  snapshot_ = snapshot;
}

void RecoveryManager::BeginRun() {
  attempt_ = 0;
  run_used_recovery_ = false;
  // Each campaign run is an independent fault scenario: carrying
  // retirements over would silently nullify the next run's injected
  // faults. Trial offense events reset too; the campaign engine has
  // already merged them into its ledger.
  dev_->retired().Clear();
  spare_used_ = 0;
  trial_offenses_.clear();
  for (const auto& e : escalated_) SeedEscalated(e);
}

void RecoveryManager::RefreshRetiredFromSnapshot() {
  if (snapshot_.empty()) return;
  for (const auto& [from, to] : dev_->retired().Entries()) {
    const Addr src = from * kBlockSize;
    if (src + kBlockSize > snapshot_.size()) continue;
    std::memcpy(dev_->space().Data() + to * kBlockSize,
                snapshot_.data() + src, kBlockSize);
  }
}

bool RecoveryManager::OnRunFailure(Addr addr) {
  RecordOffense(addr);
  bool terminal = attempt_ >= cfg_.max_retries;
  if (!terminal && cfg_.retire) {
    const std::uint64_t block = addr / kBlockSize;
    if (!dev_->retired().Contains(block)) {
      if (!RetireBlock(block)) terminal = true;  // spare pool exhausted
    } else if (plane_ != nullptr) {
      // The primary block is already quarantined, yet the same address
      // failed again: the bad cells must sit under a replica copy.
      if (const auto* range = plane_->plan().Lookup(addr)) {
        for (unsigned c = 0; c < plane_->plan().CopiesFor(*range); ++c) {
          const std::uint64_t rb = range->ReplicaAddr(c, addr) / kBlockSize;
          if (!dev_->retired().Contains(rb) && !RetireBlock(rb)) {
            terminal = true;
          }
        }
      }
    }
  }
  if (terminal) {
    ++stats_.exhausted_runs;
    return false;
  }
  ++attempt_;
  ++stats_.retries;
  stats_.backoff_units += std::uint64_t{1}
                          << std::min(attempt_ - 1, 63u);
  run_used_recovery_ = true;
  return true;
}

bool RecoveryManager::ArbitrateMismatch(Addr addr,
                                        const sim::ProtectedRange& range,
                                        std::uint8_t* primary,
                                        const std::uint8_t* copy0,
                                        std::uint32_t size) {
  if (!cfg_.arbitrate) return false;
  const Addr replica = range.ReplicaAddr(0, addr);
  const int p = ProbeRank(dev_->SecdedProbe(addr, size));
  const int r = ProbeRank(dev_->SecdedProbe(replica, size));
  if (p == r) return false;  // both look clean or both look dirty
  ++stats_.arbitrations;
  run_used_recovery_ = true;
  RecordOffense(addr);
  if (p < r) {
    // Primary wins: repair the dirty replica copy in place.
    Scrub(replica, primary, size);
  } else {
    std::memcpy(primary, copy0, size);
    Scrub(addr, primary, size);
  }
  return true;
}

void RecoveryManager::OnVoteCorrected(Addr addr, const std::uint8_t* voted,
                                      std::uint32_t size,
                                      bool escalated_range) {
  // A correction on a Tier-2-escalated range is a fault that would
  // have terminated the run under plain detect-only.
  if (escalated_range) run_used_recovery_ = true;
  Scrub(addr, voted, size);
}

bool RecoveryManager::Scrub(Addr addr, const std::uint8_t* good,
                            std::uint32_t size) {
  if (!cfg_.scrub) return false;
  ++stats_.scrubs;
  dev_->WriteBytes(addr, good, size);
  bool clean = false;
  try {
    std::uint8_t check[16];
    dev_->ReadBytes(addr, check, size);
    clean = std::memcmp(check, good, size) == 0;
  } catch (const mem::DueError&) {
    clean = false;  // the verify read itself tripped ECC: stuck cells
  }
  if (clean) {
    ++stats_.scrub_sticks;
    return true;
  }
  // The write-back did not stick: the cells are permanently bad.
  // Quarantine the block; the retirement copy carries the block's true
  // stored contents, and the scrub lands in the spare.
  if (cfg_.retire && RetireBlock(addr / kBlockSize)) {
    dev_->WriteBytes(addr, good, size);
    return true;
  }
  return false;
}

bool RecoveryManager::RetireBlock(std::uint64_t block) {
  if (dev_->retired().Contains(block)) return true;
  if (!cfg_.retire || spare_used_ >= cfg_.spare_blocks) return false;
  const std::uint64_t spare = spare_base_ / kBlockSize + spare_used_;
  ++spare_used_;
  // The backing store always holds the true written data (stuck-at
  // faults corrupt the read path only), so copying the stored bytes
  // moves the block's exact logical contents to healthy cells.
  std::memcpy(dev_->space().Data() + spare * kBlockSize,
              dev_->space().Data() + block * kBlockSize, kBlockSize);
  dev_->retired().Map(block, spare);
  ++stats_.retired_blocks;
  return true;
}

void RecoveryManager::RecordOffense(Addr addr) {
  auto owner = dev_->space().OwnerOf(addr);
  if (!owner && plane_ != nullptr) {
    // The address may sit in replica space: attribute it to the
    // replicated object.
    for (const auto& range : plane_->plan().ranges) {
      for (unsigned c = 0; c < plane_->plan().CopiesFor(range); ++c) {
        const Addr rb = range.replica_base[c];
        if (addr >= rb && addr < rb + range.size) {
          owner = dev_->space().OwnerOf(range.base);
          break;
        }
      }
      if (owner) break;
    }
  }
  if (owner) trial_offenses_.push_back(*owner);
}

unsigned RecoveryManager::ApplyEscalations(const EscalationLedger& ledger) {
  if (!cfg_.escalate || plane_ == nullptr) return 0;
  auto& plan = plane_->mutable_plan();
  if (plan.scheme != sim::Scheme::kDetectOnly) return 0;
  unsigned applied = 0;
  for (auto& range : plan.ranges) {
    if (plan.CopiesFor(range) != 1) continue;
    const auto owner = dev_->space().OwnerOf(range.base);
    if (!owner) continue;
    if (ledger.OffenseCount(*owner) < cfg_.escalate_threshold) continue;
    const Addr rb = dev_->space().AllocateRaw(range.size);
    escalated_.push_back({rb, range.base, range.size});
    range.replica_base[1] = rb;
    range.copies = 2;
    ++stats_.escalations;
    ++applied;
    SeedEscalated(escalated_.back());
  }
  return applied;
}

void RecoveryManager::SeedEscalated(const EscalatedReplica& e) {
  // Seed from the pristine snapshot when it covers the object (the
  // campaign path); otherwise from the current stored bytes.
  const std::byte* src = (e.primary_base + e.size <= snapshot_.size())
                             ? snapshot_.data() + e.primary_base
                             : dev_->space().Data() + e.primary_base;
  std::memcpy(dev_->space().Data() + e.replica_base, src, e.size);
}

}  // namespace dcrm::core
