#include "core/profile_io.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dcrm::core {
namespace {
constexpr const char* kMagic = "dcrm-profile v2";
}

void SaveProfile(const AccessProfiler& prof, std::ostream& os) {
  os << kMagic << '\n';
  os << "totals " << prof.TotalReads() << ' '
     << (prof.TotalAccesses() - prof.TotalReads()) << '\n';
  // Deterministic order for byte-identical round trips.
  std::vector<std::pair<std::uint64_t, BlockProfile>> blocks(
      prof.blocks().begin(), prof.blocks().end());
  std::sort(blocks.begin(), blocks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  os.precision(17);
  for (const auto& [block, bp] : blocks) {
    os << "block " << block << ' ' << bp.reads << ' ' << bp.writes << ' '
       << bp.txns << ' ' << bp.warp_share << ' ' << bp.l1_misses << '\n';
  }
  for (const auto& [pc, stats] : prof.pc_stats()) {
    os << "pc " << pc << ' ' << stats.accesses;
    for (const auto& [obj, count] : stats.per_object) {
      os << ' ' << obj << ':' << count;
    }
    os << '\n';
  }
}

std::string SaveProfileToString(const AccessProfiler& prof) {
  std::ostringstream os;
  SaveProfile(prof, os);
  return os.str();
}

AccessProfiler LoadProfile(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    throw std::runtime_error("not a dcrm profile (bad magic)");
  }
  AccessProfiler prof;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "totals") {
      std::uint64_t reads = 0;
      std::uint64_t writes = 0;
      ls >> reads >> writes;
      prof.RestoreTotals(reads, writes);
    } else if (kind == "block") {
      std::uint64_t block = 0;
      BlockProfile bp;
      ls >> block >> bp.reads >> bp.writes >> bp.txns >> bp.warp_share >>
          bp.l1_misses;
      if (ls.fail()) throw std::runtime_error("malformed block line");
      prof.RestoreBlock(block, bp);
    } else if (kind == "pc") {
      Pc pc = 0;
      PcStats stats;
      ls >> pc >> stats.accesses;
      if (ls.fail()) throw std::runtime_error("malformed pc line");
      std::string pair;
      while (ls >> pair) {
        const auto colon = pair.find(':');
        if (colon == std::string::npos) {
          throw std::runtime_error("malformed pc object pair");
        }
        const auto obj = static_cast<mem::ObjectId>(
            std::stoul(pair.substr(0, colon)));
        stats.per_object[obj] = std::stoull(pair.substr(colon + 1));
      }
      prof.RestorePc(pc, stats);
    } else {
      throw std::runtime_error("unknown profile record: " + kind);
    }
  }
  return prof;
}

AccessProfiler LoadProfileFromString(const std::string& text) {
  std::istringstream is(text);
  return LoadProfile(is);
}

}  // namespace dcrm::core
