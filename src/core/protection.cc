#include "core/protection.h"

#include <cstring>

namespace dcrm::core {

void ProtectedDataPlane::Load(Pc pc, Addr addr, void* out,
                              std::uint32_t size) {
  auto* bytes = static_cast<std::uint8_t*>(out);
  dev_->ReadBytes(addr, bytes, size);

  const sim::ProtectedRange* range =
      plan_.PcTracked(pc) ? plan_.Lookup(addr) : nullptr;
  if (range == nullptr) return;

  std::uint8_t copy0[16];
  std::uint8_t copy1[16];
  if (size > sizeof(copy0)) {
    throw std::invalid_argument("protected load wider than 16 bytes");
  }
  switch (plan_.scheme) {
    case sim::Scheme::kNone:
      return;
    case sim::Scheme::kDetectOnly: {
      dev_->ReadBytes(range->ReplicaAddr(0, addr), copy0, size);
      if (std::memcmp(bytes, copy0, size) != 0) {
        ++detections_;
        throw DetectionTerminated(pc, addr);
      }
      return;
    }
    case sim::Scheme::kDetectCorrect: {
      dev_->ReadBytes(range->ReplicaAddr(0, addr), copy0, size);
      dev_->ReadBytes(range->ReplicaAddr(1, addr), copy1, size);
      bool corrected = false;
      for (std::uint32_t i = 0; i < size; ++i) {
        const std::uint8_t voted =
            static_cast<std::uint8_t>((bytes[i] & copy0[i]) |
                                      (bytes[i] & copy1[i]) |
                                      (copy0[i] & copy1[i]));
        if (voted != bytes[i]) corrected = true;
        bytes[i] = voted;
      }
      if (corrected) ++corrections_;
      return;
    }
  }
}

void ProtectedDataPlane::Store(Pc pc, Addr addr, const void* in,
                               std::uint32_t size) {
  if (!dev_->space().ValidRange(addr, size)) {
    throw std::out_of_range("store out of range");
  }
  std::memcpy(dev_->space().Data() + addr, in, size);
  if (!plan_.propagate_stores || !plan_.PcTracked(pc)) return;
  if (const sim::ProtectedRange* range = plan_.Lookup(addr)) {
    // Writable-object extension: keep every copy coherent so later
    // votes/compares see the new value, not a stale one.
    for (unsigned c = 0; c < plan_.NumCopies(); ++c) {
      std::memcpy(dev_->space().Data() + range->ReplicaAddr(c, addr), in,
                  size);
    }
  }
}

}  // namespace dcrm::core
