#include "core/protection.h"

#include <cstring>

#include "core/recovery.h"

namespace dcrm::core {

void ProtectedDataPlane::Load(Pc pc, Addr addr, void* out,
                              std::uint32_t size) {
  auto* bytes = static_cast<std::uint8_t*>(out);
  dev_->ReadBytes(addr, bytes, size);

  const sim::ProtectedRange* range =
      plan_.PcTracked(pc) ? plan_.Lookup(addr) : nullptr;
  if (range == nullptr) return;

  const unsigned copies = plan_.CopiesFor(*range);
  if (copies == 0) return;

  std::uint8_t copy0[16];
  std::uint8_t copy1[16];
  if (size > sizeof(copy0)) {
    throw std::invalid_argument("protected load wider than 16 bytes");
  }
  dev_->ReadBytes(range->ReplicaAddr(0, addr), copy0, size);
  if (copies == 1) {
    if (std::memcmp(bytes, copy0, size) != 0) {
      // Tier 0: before terminating, let the recovery manager try to
      // arbitrate the mismatch (per-copy SECDED probe). On success the
      // winning value is already in `bytes` and scrubbed back.
      if (recovery_ != nullptr &&
          recovery_->ArbitrateMismatch(addr, *range, bytes, copy0, size)) {
        return;
      }
      ++detections_;
      throw DetectionTerminated(pc, addr);
    }
    return;
  }
  // Majority vote over the primary and two replicas — the scheme's
  // triplication, or a detect-only range escalated by Tier 2.
  dev_->ReadBytes(range->ReplicaAddr(1, addr), copy1, size);
  bool corrected = false;
  for (std::uint32_t i = 0; i < size; ++i) {
    const std::uint8_t voted =
        static_cast<std::uint8_t>((bytes[i] & copy0[i]) |
                                  (bytes[i] & copy1[i]) |
                                  (copy0[i] & copy1[i]));
    if (voted != bytes[i]) corrected = true;
    bytes[i] = voted;
  }
  if (corrected) {
    ++corrections_;
    if (recovery_ != nullptr) {
      recovery_->OnVoteCorrected(addr, bytes, size,
                                 /*escalated_range=*/range->copies != 0 &&
                                     plan_.scheme ==
                                         sim::Scheme::kDetectOnly);
    }
  }
}

void ProtectedDataPlane::Store(Pc pc, Addr addr, const void* in,
                               std::uint32_t size) {
  if (!dev_->space().ValidRange(addr, size)) {
    throw std::out_of_range("store out of range");
  }
  dev_->WriteBytes(addr, in, size);
  if (!plan_.propagate_stores || !plan_.PcTracked(pc)) return;
  if (const sim::ProtectedRange* range = plan_.Lookup(addr)) {
    // Writable-object extension: keep every copy coherent so later
    // votes/compares see the new value, not a stale one.
    for (unsigned c = 0; c < plan_.CopiesFor(*range); ++c) {
      dev_->WriteBytes(range->ReplicaAddr(c, addr), in, size);
    }
  }
}

}  // namespace dcrm::core
