// Application access-pattern profiling (Section III-B of the paper):
// per-128B-block read/write counts, warp sharing, and L1-miss counts,
// plus per-data-object aggregation — the raw material for Fig. 3,
// Fig. 4, Table III, and for hot-data identification.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/kernel.h"
#include "mem/address_space.h"
#include "trace/trace_store.h"

namespace dcrm::core {

struct BlockProfile {
  std::uint64_t reads = 0;   // thread-level RD accesses
  std::uint64_t writes = 0;  // thread-level WR accesses
  // Warp-level coalesced load transactions to this block — what the
  // memory system actually sees. This is the unit behind the paper's
  // Table III access shares (e.g. P-BICG's 5.7%) and its Fig. 8
  // fault-site weighting: each transaction is one L2/DRAM-visible
  // request that a memory fault can corrupt.
  std::uint64_t txns = 0;
  // Max over kernels of (distinct warps touching this block) /
  // (warps launched by that kernel) — Fig. 4's y-axis.
  double warp_share = 0.0;
  std::uint64_t l1_misses = 0;  // filled by AttachMissProfile
};

// Per static-load-site statistics: which data objects a PC touches,
// and how often. This automates the paper's Section IV-A source/PTX
// analysis ("store the addresses of load instructions to the
// corresponding data objects") and feeds the LD/ST unit's 32-entry
// PC table.
struct PcStats {
  std::uint64_t accesses = 0;
  // Accesses per owning object (kInvalidObject = replica/unknown).
  std::map<mem::ObjectId, std::uint64_t> per_object;
};

// AccessSink recording per-block statistics. Kernel launches are
// bracketed with BeginKernel/EndKernel so warp sharing is computed
// relative to each kernel's own active warp count.
class AccessProfiler final : public exec::AccessSink {
 public:
  void BeginKernel(const exec::LaunchConfig& cfg);
  void EndKernel();

  // Enables PC -> data-object attribution (needs the address space to
  // resolve owners). Optional; without it only block stats are kept.
  void AttachSpace(const mem::AddressSpace* space) { space_ = space; }

  void OnAccess(const exec::ThreadCoord& who,
                const exec::AccessRecord& what) override;

  const std::map<Pc, PcStats>& pc_stats() const { return pcs_; }

  // Static load/store sites touching any of the given objects — the
  // contents of the LD/ST unit's PC tracking table for that cover.
  std::unordered_set<Pc> PcsTouching(
      std::span<const mem::ObjectId> objects) const;

  const std::unordered_map<std::uint64_t, BlockProfile>& blocks() const {
    return blocks_;
  }
  // Thread-level read counts per object, split by kernel epoch (the
  // i-th entry is reads during the i-th BeginKernel/EndKernel
  // bracket). Needs AttachSpace; feeds the cross-kernel hotness view
  // (ObjectProfile::kernels_reading / max_kernel_reads). Not persisted
  // by profile_io — restored profiles recompute it by re-profiling.
  const std::unordered_map<mem::ObjectId, std::vector<std::uint64_t>>&
  object_kernel_reads() const {
    return obj_kernel_reads_;
  }
  std::uint64_t TotalReads() const { return total_reads_; }
  std::uint64_t TotalAccesses() const { return total_reads_ + total_writes_; }

  // Blocks sorted by read count ascending — exactly the Fig. 3 series.
  std::vector<std::pair<std::uint64_t, BlockProfile>> SortedByReads() const;

  // Adds per-block L1-miss counts obtained from a functional replay
  // (see ReplayL1Misses).
  void AttachMissProfile(
      const std::unordered_map<std::uint64_t, std::uint64_t>& misses);

  // Adds per-block coalesced-load-transaction counts (from the traces).
  void AttachTxnProfile(
      const std::unordered_map<std::uint64_t, std::uint64_t>& txns);

  // Restore hooks used by profile_io when loading a saved profile.
  void RestoreBlock(std::uint64_t block, const BlockProfile& bp);
  void RestorePc(Pc pc, const PcStats& stats) { pcs_[pc] = stats; }
  void RestoreTotals(std::uint64_t reads, std::uint64_t writes) {
    total_reads_ = reads;
    total_writes_ = writes;
  }

 private:
  std::unordered_map<std::uint64_t, BlockProfile> blocks_;
  std::unordered_map<std::uint64_t, std::unordered_set<WarpId>> epoch_warps_;
  std::uint64_t epoch_total_warps_ = 0;
  bool in_kernel_ = false;
  std::uint64_t total_reads_ = 0;
  std::uint64_t total_writes_ = 0;
  const mem::AddressSpace* space_ = nullptr;
  std::map<Pc, PcStats> pcs_;
  // Fast path for attribution: a PC almost always touches one object.
  std::unordered_map<Pc, mem::ObjectId> pc_last_owner_;
  // Index of the current kernel epoch; advanced by EndKernel.
  std::uint32_t kernel_epoch_ = 0;
  std::unordered_map<mem::ObjectId, std::vector<std::uint64_t>>
      obj_kernel_reads_;
};

// Per-object aggregation (Table III rows).
struct ObjectProfile {
  mem::ObjectId id = mem::kInvalidObject;
  std::string name;
  bool read_only = false;
  std::uint64_t size_bytes = 0;
  std::uint64_t num_blocks = 0;
  std::uint64_t reads = 0;            // thread-level RD accesses
  std::uint64_t txns = 0;             // coalesced load transactions
  double reads_per_block = 0.0;       // hotness intensity
  double mean_warp_share = 0.0;       // mean over the object's blocks
  std::uint64_t l1_misses = 0;
  // Cross-kernel view: how many kernel launches read this object, and
  // the largest single-launch read count. A shared weight tensor in a
  // multi-kernel graph shows kernels_reading > 1 with total reads well
  // above max_kernel_reads — hotness no per-launch profile would rank
  // as high. Zero when the profiler had no attached space (or the
  // profile was restored from disk).
  std::uint32_t kernels_reading = 0;
  std::uint64_t max_kernel_reads = 0;
};

// Aggregates the block profile over the named data objects, sorted by
// total reads, highest first (Table III's ordering).
std::vector<ObjectProfile> AggregateByObject(const AccessProfiler& prof,
                                             const mem::AddressSpace& space);

// Per-block coalesced load-transaction counts from the trace store.
std::unordered_map<std::uint64_t, std::uint64_t> CountLoadTransactions(
    const trace::TraceStore& store);

// Functional L1 replay: runs the coalesced traces through per-SM L1
// tag arrays (CTAs round-robin across SMs, warps round-robin within an
// SM) and returns per-block miss counts. A fast approximation of the
// timing simulator's miss profile (its in-phase warp interleaving
// understates hot-block misses; the fault-exposure weighting uses
// CountLoadTransactions instead — see fault/campaign.cc).
std::unordered_map<std::uint64_t, std::uint64_t> ReplayL1Misses(
    const trace::TraceStore& store, std::uint32_t num_sms,
    std::uint32_t l1_sets, std::uint32_t l1_ways);

}  // namespace dcrm::core
