// Functional semantics of the two resilience schemes (Section IV-B).
//
// Detection-only: every protected load also reads the duplicate; a
// bitwise mismatch raises the terminate signal (DetectionTerminated).
// In hardware the compare happens lazily after an L1 miss; because the
// modeled faults are permanent, terminating on the first mismatching
// access yields the same run outcome, and the timing cost of laziness
// is modeled in the cycle-level simulator.
//
// Detection-and-correction: protected loads read both replicas and
// return the bitwise majority of the three copies, mirroring the
// triplication vote at the LD/ST unit.
#pragma once

#include <stdexcept>

#include "exec/data_plane.h"
#include "sim/replication.h"

namespace dcrm::core {

class RecoveryManager;

class DetectionTerminated : public std::runtime_error {
 public:
  DetectionTerminated(Pc pc, Addr addr)
      : std::runtime_error("protected data mismatch: terminate"),
        pc_(pc),
        addr_(addr) {}
  Pc pc() const { return pc_; }
  Addr addr() const { return addr_; }

 private:
  Pc pc_;
  Addr addr_;
};

class ProtectedDataPlane final : public exec::DataPlane {
 public:
  ProtectedDataPlane(mem::DeviceMemory& dev, sim::ProtectionPlan plan)
      : dev_(&dev), plan_(std::move(plan)) {}

  void Load(Pc pc, Addr addr, void* out, std::uint32_t size) override;
  void Store(Pc pc, Addr addr, const void* in, std::uint32_t size) override;

  const sim::ProtectionPlan& plan() const { return plan_; }
  // Mutable access for the recovery subsystem's Tier-2 escalation
  // (upgrading a repeat-offender range to a second replica).
  sim::ProtectionPlan& mutable_plan() { return plan_; }
  std::uint64_t detections() const { return detections_; }
  std::uint64_t corrections() const { return corrections_; }

  // Wires the detect-to-recover pipeline in: mismatches are offered to
  // the manager for arbitration before terminating, and majority-vote
  // corrections are reported for Tier-0 scrubbing.
  void AttachRecovery(RecoveryManager* rm) { recovery_ = rm; }

 private:
  mem::DeviceMemory* dev_;
  sim::ProtectionPlan plan_;
  RecoveryManager* recovery_ = nullptr;
  std::uint64_t detections_ = 0;
  std::uint64_t corrections_ = 0;
};

}  // namespace dcrm::core
