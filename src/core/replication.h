// Replica management (Section IV-B/IV-C): duplicate or triplicate
// selected read-only data objects at distinct DRAM addresses and build
// the LD/ST-unit protection plan from them.
#pragma once

#include <span>
#include <vector>

#include "mem/device_memory.h"
#include "sim/replication.h"

namespace dcrm::core {

enum class ReplicaPlacement : std::uint8_t {
  // Natural placement: replicas allocated at the next free addresses.
  // Block-interleaved channel mapping then spreads replica traffic
  // across partitions.
  kDefault,
  // Adversarial placement for the ablation: replicas offset so every
  // replica block maps to the *same* channel as its primary,
  // concentrating the extra traffic.
  kSameChannel,
};

struct ReplicaInfo {
  mem::ObjectId object = mem::kInvalidObject;
  unsigned copies = 0;          // 1 (detection) or 2 (correction)
  Addr replica_base[2] = {0, 0};
};

// Allocates `copies` replicas for each object and copies the current
// (golden) contents. Objects must be read-only — the paper's schemes
// have no write-propagation path — unless `allow_writable` is set,
// in which case the caller must enable ProtectionPlan::
// propagate_stores so the copies stay coherent.
std::vector<ReplicaInfo> ReplicateObjects(
    mem::DeviceMemory& dev, std::span<const mem::ObjectId> objects,
    unsigned copies, ReplicaPlacement placement = ReplicaPlacement::kDefault,
    std::uint32_t num_channels = 6, bool allow_writable = false);

// Builds the hardware protection plan for the replicated objects.
sim::ProtectionPlan MakeProtectionPlan(const mem::AddressSpace& space,
                                       std::span<const ReplicaInfo> replicas,
                                       sim::Scheme scheme,
                                       bool lazy_compare = true,
                                       bool propagate_stores = false);

}  // namespace dcrm::core
