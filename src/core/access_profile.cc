#include "core/access_profile.h"

#include <algorithm>
#include <stdexcept>

#include "sim/tag_array.h"

namespace dcrm::core {

void AccessProfiler::BeginKernel(const exec::LaunchConfig& cfg) {
  if (in_kernel_) throw std::logic_error("BeginKernel while in kernel");
  in_kernel_ = true;
  epoch_warps_.clear();
  epoch_total_warps_ = cfg.TotalWarps();
}

void AccessProfiler::EndKernel() {
  if (!in_kernel_) throw std::logic_error("EndKernel outside kernel");
  in_kernel_ = false;
  for (const auto& [block, warps] : epoch_warps_) {
    const double share =
        epoch_total_warps_ == 0
            ? 0.0
            : static_cast<double>(warps.size()) /
                  static_cast<double>(epoch_total_warps_);
    auto& bp = blocks_[block];
    bp.warp_share = std::max(bp.warp_share, share);
  }
  epoch_warps_.clear();
  ++kernel_epoch_;
}

void AccessProfiler::OnAccess(const exec::ThreadCoord& who,
                              const exec::AccessRecord& what) {
  const std::uint64_t block = BlockOf(what.addr);
  auto& bp = blocks_[block];
  if (what.type == AccessType::kLoad) {
    ++bp.reads;
    ++total_reads_;
  } else {
    ++bp.writes;
    ++total_writes_;
  }
  if (in_kernel_) epoch_warps_[block].insert(who.warp_global);

  if (space_ != nullptr) {
    auto& ps = pcs_[what.pc];
    ++ps.accesses;
    // Fast path: a static load site nearly always touches one object.
    mem::ObjectId id = mem::kInvalidObject;
    if (const auto it = pc_last_owner_.find(what.pc);
        it != pc_last_owner_.end() &&
        it->second != mem::kInvalidObject &&
        space_->Object(it->second).Contains(what.addr)) {
      id = it->second;
    } else {
      id = space_->OwnerOf(what.addr).value_or(mem::kInvalidObject);
      pc_last_owner_[what.pc] = id;
    }
    ++ps.per_object[id];
    if (what.type == AccessType::kLoad && in_kernel_ &&
        id != mem::kInvalidObject) {
      auto& per_kernel = obj_kernel_reads_[id];
      if (per_kernel.size() <= kernel_epoch_) {
        per_kernel.resize(kernel_epoch_ + 1, 0);
      }
      ++per_kernel[kernel_epoch_];
    }
  }
}

std::unordered_set<Pc> AccessProfiler::PcsTouching(
    std::span<const mem::ObjectId> objects) const {
  const std::unordered_set<mem::ObjectId> wanted(objects.begin(),
                                                 objects.end());
  std::unordered_set<Pc> out;
  for (const auto& [pc, stats] : pcs_) {
    for (const auto& [obj, count] : stats.per_object) {
      if (wanted.contains(obj)) {
        out.insert(pc);
        break;
      }
    }
  }
  return out;
}

std::vector<std::pair<std::uint64_t, BlockProfile>>
AccessProfiler::SortedByReads() const {
  std::vector<std::pair<std::uint64_t, BlockProfile>> out(blocks_.begin(),
                                                          blocks_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second.reads != b.second.reads) {
      return a.second.reads < b.second.reads;
    }
    return a.first < b.first;
  });
  return out;
}

void AccessProfiler::RestoreBlock(std::uint64_t block,
                                  const BlockProfile& bp) {
  blocks_[block] = bp;
}

void AccessProfiler::AttachMissProfile(
    const std::unordered_map<std::uint64_t, std::uint64_t>& misses) {
  for (const auto& [block, count] : misses) {
    blocks_[block].l1_misses += count;
  }
}

void AccessProfiler::AttachTxnProfile(
    const std::unordered_map<std::uint64_t, std::uint64_t>& txns) {
  for (const auto& [block, count] : txns) {
    blocks_[block].txns += count;
  }
}

std::unordered_map<std::uint64_t, std::uint64_t> CountLoadTransactions(
    const trace::TraceStore& store) {
  std::unordered_map<std::uint64_t, std::uint64_t> txns;
  for (std::uint32_t k = 0; k < store.NumKernels(); ++k) {
    const trace::KernelView kv = store.Kernel(k);
    for (std::uint32_t w = 0; w < kv.NumWarps(); ++w) {
      const trace::WarpSlice ws = kv.Warp(w);
      for (std::uint32_t i = 0; i < ws.NumInsts(); ++i) {
        const trace::InstView inst = ws.Inst(i);
        if (inst.type != AccessType::kLoad) continue;
        for (Addr b : inst.blocks) ++txns[BlockOf(b)];
      }
    }
  }
  return txns;
}

std::vector<ObjectProfile> AggregateByObject(const AccessProfiler& prof,
                                             const mem::AddressSpace& space) {
  std::vector<ObjectProfile> out;
  out.reserve(space.Objects().size());
  for (const auto& obj : space.Objects()) {
    ObjectProfile op;
    op.id = obj.id;
    op.name = obj.name;
    op.read_only = obj.read_only;
    op.size_bytes = obj.size_bytes;
    op.num_blocks = obj.NumBlocks();
    double share_sum = 0.0;
    std::uint64_t touched = 0;
    const std::uint64_t first = obj.base / kBlockSize;
    const std::uint64_t last = (obj.end() - 1) / kBlockSize;
    for (std::uint64_t b = first; b <= last; ++b) {
      const auto it = prof.blocks().find(b);
      if (it == prof.blocks().end()) continue;
      op.reads += it->second.reads;
      op.txns += it->second.txns;
      op.l1_misses += it->second.l1_misses;
      share_sum += it->second.warp_share;
      ++touched;
    }
    op.reads_per_block =
        op.num_blocks == 0
            ? 0.0
            : static_cast<double>(op.reads) /
                  static_cast<double>(op.num_blocks);
    op.mean_warp_share =
        touched == 0 ? 0.0 : share_sum / static_cast<double>(touched);
    if (const auto kit = prof.object_kernel_reads().find(obj.id);
        kit != prof.object_kernel_reads().end()) {
      for (const std::uint64_t n : kit->second) {
        if (n == 0) continue;
        ++op.kernels_reading;
        op.max_kernel_reads = std::max(op.max_kernel_reads, n);
      }
    }
    out.push_back(std::move(op));
  }
  // Table III order: per-block read intensity, highest first. (Total
  // read counts would rank large streamed matrices above the small
  // reused vectors — e.g. `a` above `y1,y2` in P-MVT — which
  // contradicts the paper's listed order; intensity matches all rows.)
  std::sort(out.begin(), out.end(),
            [](const ObjectProfile& a, const ObjectProfile& b) {
              if (a.reads_per_block != b.reads_per_block) {
                return a.reads_per_block > b.reads_per_block;
              }
              if (a.reads != b.reads) return a.reads > b.reads;
              return a.name < b.name;
            });
  return out;
}

std::unordered_map<std::uint64_t, std::uint64_t> ReplayL1Misses(
    const trace::TraceStore& store, std::uint32_t num_sms,
    std::uint32_t l1_sets, std::uint32_t l1_ways) {
  std::unordered_map<std::uint64_t, std::uint64_t> misses;
  std::vector<sim::TagArray> l1s;
  l1s.reserve(num_sms);
  for (std::uint32_t s = 0; s < num_sms; ++s) l1s.emplace_back(l1_sets, l1_ways);

  for (std::uint32_t k = 0; k < store.NumKernels(); ++k) {
    const trace::KernelView kernel = store.Kernel(k);
    // Group warp slices per SM (CTA round-robin), then interleave the
    // warps of each SM round-robin, one instruction at a time — an
    // order-of-magnitude approximation of the loose round-robin
    // scheduler that is enough for a miss *profile*.
    std::vector<std::vector<trace::WarpSlice>> per_sm(num_sms);
    for (std::uint32_t w = 0; w < kernel.NumWarps(); ++w) {
      const trace::WarpSlice ws = kernel.Warp(w);
      per_sm[ws.cta() % num_sms].push_back(ws);
    }
    for (std::uint32_t s = 0; s < num_sms; ++s) {
      auto& warps = per_sm[s];
      std::vector<std::uint32_t> cursor(warps.size(), 0);
      bool any = true;
      while (any) {
        any = false;
        for (std::size_t wi = 0; wi < warps.size(); ++wi) {
          if (cursor[wi] >= warps[wi].NumInsts()) continue;
          any = true;
          const trace::InstView inst = warps[wi].Inst(cursor[wi]++);
          for (Addr block : inst.blocks) {
            const bool is_store = inst.type == AccessType::kStore;
            // Write-through no-allocate L1: stores don't allocate and
            // don't contribute miss counts.
            if (is_store) {
              l1s[s].Access(block, /*allocate=*/false);
              continue;
            }
            if (!l1s[s].Access(block, /*allocate=*/true)) {
              ++misses[BlockOf(block)];
            }
          }
        }
      }
    }
  }
  return misses;
}

}  // namespace dcrm::core
