// Hot data identification (Observations I, II and IV of the paper):
// decide whether an application has a hot access pattern at all
// (Fig. 3(a)-(f) vs (g)-(h)), and if so which read-only input data
// objects are "hot" — highly accessed per block, shared across many
// warps, and small.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/access_profile.h"

namespace dcrm::core {

struct HotConfig {
  // App-level gate: the max-block/median-block read ratio that
  // separates knee-shaped profiles (C-NN: 4732x) from flat ones
  // (C-BlackScholes: ~1x, P-GRAMSCHM: small steps).
  double min_max_median_ratio = 8.0;
  // An object qualifies when its per-block read intensity is at least
  // this multiple of the app-wide *median* per-block read count.
  double min_intensity_ratio = 4.0;
  // ...and an average touched block is shared by at least this
  // fraction of a kernel's active warps. Deliberately permissive: the
  // paper's Fig. 4(c)-(d) shows C-NN / A-SRAD hot blocks shared by
  // many-but-not-all warps (C-NN conv weights are shared by 1/maps of
  // the active warps — all images' warps of one feature map).
  double min_warp_share = 0.04;
  // Hot set must stay a small fraction of total application memory
  // (Table III: at most 2.15% in the paper's apps).
  double max_footprint = 0.25;
};

struct HotClassification {
  bool has_hot_pattern = false;
  double max_median_ratio = 0.0;
  // Hot objects, in Table III order (most accessed first).
  std::vector<ObjectProfile> hot_objects;
  // All read-only input objects in Table III order (the coverage order
  // for Figs. 7 and 9).
  std::vector<ObjectProfile> coverage_order;
  // Hot footprint as a fraction of total named object bytes.
  double hot_footprint = 0.0;
  // Fraction of all thread-level accesses that touch hot blocks.
  double hot_access_share = 0.0;
};

HotClassification ClassifyHot(const AccessProfiler& prof,
                              const mem::AddressSpace& space,
                              const HotConfig& cfg = {});

// Block-level split used by the Fig. 5/6 experiments: the hot blocks
// are the blocks of the hot objects; the rest is every other *touched*
// block.
struct BlockSplit {
  std::vector<std::uint64_t> hot;   // block indices
  std::vector<std::uint64_t> rest;
};
BlockSplit SplitBlocks(const HotClassification& cls,
                       const AccessProfiler& prof,
                       const mem::AddressSpace& space);

}  // namespace dcrm::core
