// Detection-to-recovery pipeline: what happens *after* the paper's
// duplication/triplication schemes notice a fault. The paper stops at
// detection (terminate-and-rerun is left to the user); production
// reliability stacks must recover. RecoveryManager implements a tiered
// policy:
//
//  Tier 0 — in-place repair. Majority-vote corrections are scrubbed
//    back to the primary location instead of being recomputed on every
//    access; a duplication mismatch is arbitrated by an out-of-band
//    SECDED probe of each copy (the code can't *correct* the paper's
//    multi-bit faults, but it reliably identifies which copy sits on
//    bad cells), the winning value is returned and scrubbed. A scrub
//    whose verify read still mismatches sits on permanently stuck
//    cells, so its 128B block is retired (quarantined and remapped to
//    a spare region — mem::BlockRemapTable).
//
//  Tier 1 — bounded re-execution. An unarbitrable mismatch or a
//    SECDED DUE terminates the attempt; the offending block is
//    retired, the pristine input snapshot is restored, and the kernel
//    is re-run — up to max_retries attempts, each charged an
//    exponentially growing backoff penalty in the timing model.
//
//  Tier 2 — graceful degradation. Objects that keep offending across
//    runs are escalated from detect-only to a full majority vote by
//    allocating a second replica, so future faults are corrected
//    without re-execution. Only when the retry budget or the spare
//    pool is exhausted does the terminal kDetected/kDue surface.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/protection.h"
#include "mem/device_memory.h"
#include "sim/config.h"

namespace dcrm::core {

// Campaign-lifetime repeat-offender memory: per-object offense counts
// accumulated across trials. This is deliberately *not* owned by the
// RecoveryManager — a manager holds per-trial state only (retirements,
// attempt budget, trial offense events), so independent per-worker
// managers can run trials concurrently while the campaign engine
// merges their offense events into one ledger at deterministic epoch
// boundaries (trial-index order, never scheduling order).
class EscalationLedger {
 public:
  void Record(mem::ObjectId id, unsigned n = 1) { counts_[id] += n; }
  void Merge(std::span<const mem::ObjectId> events) {
    for (const mem::ObjectId id : events) ++counts_[id];
  }
  // Merges another ledger's counts (shard results, epoch deltas).
  void Merge(const EscalationLedger& o) {
    for (const auto& [id, n] : o.counts_) counts_[id] += n;
  }
  unsigned OffenseCount(mem::ObjectId id) const {
    const auto it = counts_.find(id);
    return it == counts_.end() ? 0u : it->second;
  }
  const std::unordered_map<mem::ObjectId, unsigned>& counts() const {
    return counts_;
  }
  void Clear() { counts_.clear(); }
  bool operator==(const EscalationLedger&) const = default;

 private:
  std::unordered_map<mem::ObjectId, unsigned> counts_;
};

// Offense events recorded between two snapshots of one monotonically
// growing ledger (`after` extends `before`). Shard workers report one
// delta per escalation epoch; the coordinator rebuilds the campaign
// ledger — and the escalation replay schedule — by merging them back
// in epoch order.
inline EscalationLedger LedgerDelta(const EscalationLedger& after,
                                    const EscalationLedger& before) {
  EscalationLedger d;
  for (const auto& [id, n] : after.counts()) {
    const unsigned prior = before.OffenseCount(id);
    if (n > prior) d.Record(id, n - prior);
  }
  return d;
}

struct RecoveryConfig {
  bool enabled = false;
  // Tier 0.
  bool scrub = true;      // persist repaired values back to the store
  bool arbitrate = true;  // settle duplication mismatches by SECDED probe
  // Tier 1.
  bool retire = true;        // quarantine + remap faulty 128B blocks
  unsigned max_retries = 3;  // re-execution budget per run
  unsigned spare_blocks = 32;
  // Tier 2.
  bool escalate = true;
  unsigned escalate_threshold = 2;  // offenses before detect-only -> vote
};

struct RecoveryStats {
  std::uint64_t scrubs = 0;          // tier-0 write-backs issued
  std::uint64_t scrub_sticks = 0;    // write-backs whose verify read passed
  std::uint64_t arbitrations = 0;    // mismatches settled by SECDED probe
  std::uint64_t retired_blocks = 0;  // blocks quarantined + remapped
  std::uint64_t retries = 0;         // kernel re-executions
  std::uint64_t backoff_units = 0;   // sum over retries of 2^(attempt-1)
  std::uint64_t escalations = 0;     // tier-2 detect-only -> vote upgrades
  std::uint64_t exhausted_runs = 0;  // retry budget / spare pool ran out

  // Element-wise sum; campaign engines merge per-trial deltas with it.
  RecoveryStats& operator+=(const RecoveryStats& o) {
    scrubs += o.scrubs;
    scrub_sticks += o.scrub_sticks;
    arbitrations += o.arbitrations;
    retired_blocks += o.retired_blocks;
    retries += o.retries;
    backoff_units += o.backoff_units;
    escalations += o.escalations;
    exhausted_runs += o.exhausted_runs;
    return *this;
  }

  bool operator==(const RecoveryStats&) const = default;
};

// Element-wise difference of two monotone counter snapshots
// (`after - before`): the work done between them.
inline RecoveryStats StatsDelta(const RecoveryStats& after,
                                const RecoveryStats& before) {
  RecoveryStats d;
  d.scrubs = after.scrubs - before.scrubs;
  d.scrub_sticks = after.scrub_sticks - before.scrub_sticks;
  d.arbitrations = after.arbitrations - before.arbitrations;
  d.retired_blocks = after.retired_blocks - before.retired_blocks;
  d.retries = after.retries - before.retries;
  d.backoff_units = after.backoff_units - before.backoff_units;
  d.escalations = after.escalations - before.escalations;
  d.exhausted_runs = after.exhausted_runs - before.exhausted_runs;
  return d;
}

// Cycle cost of the recovery actions, so the paper's "replication is
// cheap" claim can be re-evaluated with recovery included. All values
// are core-clock cycles over the whole campaign; `per_run_overhead` is
// the added fraction of one protected execution, amortized over runs.
struct RecoveryCost {
  double scrub_cycles = 0;    // write-back + verify read per scrub
  double retire_cycles = 0;   // 128B copy-out/copy-in + table update
  double reexec_cycles = 0;   // full re-executions (retries * run)
  double backoff_cycles = 0;  // exponential pre-retry backoff
  double total_cycles = 0;
  double per_run_overhead = 0;
};

RecoveryCost ChargeRecovery(const RecoveryStats& s, unsigned runs,
                            std::uint64_t run_cycles,
                            const sim::GpuConfig& cfg);

class RecoveryManager {
 public:
  RecoveryManager(mem::DeviceMemory& dev, const RecoveryConfig& cfg);

  // The pristine store image used to refill retired blocks and to seed
  // escalation replicas. Must outlive the manager (the campaign owns
  // both).
  void SetSnapshot(std::span<const std::byte> snapshot);

  // Attaches the protected plane so Tier 2 can mutate its plan; also
  // call plane->AttachRecovery(this) to receive Tier-0 callbacks.
  void AttachPlane(ProtectedDataPlane* plane) { plane_ = plane; }

  // Per-run (per-trial) lifecycle: resets attempt state, clears the
  // retirement table and the trial's offense events (each campaign run
  // is an independent fault scenario), and re-seeds previously
  // escalated replicas from the snapshot. Escalation is *not* applied
  // here: the campaign engine merges trial offense events into its
  // EscalationLedger and calls ApplyEscalations at deterministic epoch
  // boundaries.
  void BeginRun();

  // Tier-2 escalation against the campaign's ledger: every detect-only
  // range whose owning object has reached escalate_threshold offenses
  // gains a second replica (detect-only -> vote). Iterates plan ranges
  // in plan order, so replica allocation is deterministic. Returns the
  // number of ranges newly escalated by this call.
  unsigned ApplyEscalations(const EscalationLedger& ledger);

  // Offense events recorded during the current trial (since the last
  // BeginRun), in occurrence order, attributed to owning objects.
  const std::vector<mem::ObjectId>& trial_offenses() const {
    return trial_offenses_;
  }

  // True when this run completed only through recovery actions
  // (arbitration, escalated-range correction, or re-execution) — the
  // campaign classifies such runs kRecovered instead of kMasked.
  bool RunUsedRecovery() const { return run_used_recovery_; }
  unsigned attempt() const { return attempt_; }

  // Called by the campaign when an attempt terminated with a detection
  // or DUE at `addr`. Retires the offending block (on a repeat offense
  // at an already-retired block, the replica blocks) and decides
  // whether a bounded re-execution attempt remains. Returns false when
  // the outcome is terminal.
  bool OnRunFailure(Addr addr);

  // The campaign restores its pristine snapshot by writing the
  // *original* store locations; retired blocks read from their spares,
  // so those must be refilled from the snapshot too. Call after every
  // snapshot restore.
  void RefreshRetiredFromSnapshot();

  // Tier-0 plane callbacks.
  bool ArbitrateMismatch(Addr addr, const sim::ProtectedRange& range,
                         std::uint8_t* primary, const std::uint8_t* copy0,
                         std::uint32_t size);
  void OnVoteCorrected(Addr addr, const std::uint8_t* voted,
                       std::uint32_t size, bool escalated_range);

  const RecoveryConfig& config() const { return cfg_; }
  const RecoveryStats& stats() const { return stats_; }
  std::uint64_t spare_blocks_used() const { return spare_used_; }

 private:
  // Escalation replicas allocated so far: {replica_base, primary_base,
  // size}, re-seeded from the snapshot at every BeginRun.
  struct EscalatedReplica {
    Addr replica_base = 0;
    Addr primary_base = 0;
    std::uint64_t size = 0;
  };

  // Writes `good` back to `addr`, verifies it sticks, and retires the
  // block when it does not. Returns true if the location now reads
  // back clean.
  bool Scrub(Addr addr, const std::uint8_t* good, std::uint32_t size);
  bool RetireBlock(std::uint64_t block);
  void RecordOffense(Addr addr);
  void SeedEscalated(const EscalatedReplica& e);

  mem::DeviceMemory* dev_;
  RecoveryConfig cfg_;
  RecoveryStats stats_;
  ProtectedDataPlane* plane_ = nullptr;
  std::span<const std::byte> snapshot_;

  Addr spare_base_ = 0;
  std::uint64_t spare_used_ = 0;
  unsigned attempt_ = 0;
  bool run_used_recovery_ = false;

  // Offense events of the current trial only, in occurrence order. The
  // campaign-lifetime offense memory lives in the engine's
  // EscalationLedger.
  std::vector<mem::ObjectId> trial_offenses_;
  std::vector<EscalatedReplica> escalated_;
};

}  // namespace dcrm::core
