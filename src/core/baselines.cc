#include "core/baselines.h"

#include <stdexcept>

namespace dcrm::core {

trace::KernelTrace MakeRmtTrace(const trace::KernelTrace& in) {
  trace::KernelTrace out;
  out.cfg = in.cfg;
  // Each CTA's thread count doubles (leading + trailing warps).
  out.cfg.block.x *= 2;
  const std::uint32_t wpc_in = in.cfg.WarpsPerCta();
  const std::uint32_t wpc_out = out.cfg.WarpsPerCta();
  out.warps.reserve(in.warps.size() * 2);
  for (const auto& w : in.warps) {
    const std::uint32_t within = w.warp - w.cta * wpc_in;
    trace::WarpTrace lead = w;
    lead.warp = w.cta * wpc_out + within;
    trace::WarpTrace shadow;
    shadow.cta = w.cta;
    shadow.warp = w.cta * wpc_out + wpc_in + within;
    shadow.insts.reserve(w.insts.size());
    for (const auto& inst : w.insts) {
      if (inst.type == AccessType::kStore) continue;  // verify-only copy
      shadow.insts.push_back(inst);
    }
    out.warps.push_back(std::move(lead));
    out.warps.push_back(std::move(shadow));
  }
  return out;
}

double RecoveryModel::DetectRerun(double p_fault, double overhead) {
  if (p_fault < 0 || p_fault >= 1) {
    throw std::invalid_argument("p_fault must be in [0, 1)");
  }
  return (1.0 + overhead) / (1.0 - p_fault);
}

double RecoveryModel::Correct(double overhead) { return 1.0 + overhead; }

double RecoveryModel::CheckpointRestart(double p_fault, double interval,
                                        double ckpt_cost,
                                        double restore_cost) {
  if (interval <= 0 || interval > 1) {
    throw std::invalid_argument("interval must be in (0, 1]");
  }
  return 1.0 + ckpt_cost / interval +
         p_fault * (interval / 2.0 + restore_cost);
}

double RecoveryModel::CheckpointCost(std::uint64_t bytes,
                                     double bytes_per_cycle,
                                     std::uint64_t run_cycles) {
  if (bytes_per_cycle <= 0 || run_cycles == 0) {
    throw std::invalid_argument("bad checkpoint parameters");
  }
  return static_cast<double>(bytes) / bytes_per_cycle /
         static_cast<double>(run_cycles);
}

}  // namespace dcrm::core
