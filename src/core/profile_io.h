// Persistence for the one-time offline profile (Section IV-A: "the
// access pattern and source code analyses are done once offline").
// A saved profile lets later sessions build protection plans and run
// campaigns without re-executing the application's profiling run.
//
// Format: a versioned line-oriented text format,
//   dcrm-profile v2
//   totals <reads> <writes>
//   block <index> <reads> <writes> <txns> <warp_share> <l1_misses>
//   pc <pc> <accesses> [<object_id>:<count>]...
#pragma once

#include <iosfwd>
#include <string>

#include "core/access_profile.h"

namespace dcrm::core {

void SaveProfile(const AccessProfiler& prof, std::ostream& os);
std::string SaveProfileToString(const AccessProfiler& prof);

// Throws std::runtime_error on malformed input.
AccessProfiler LoadProfile(std::istream& is);
AccessProfiler LoadProfileFromString(const std::string& text);

}  // namespace dcrm::core
