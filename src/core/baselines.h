// Baseline reliability mechanisms the paper positions itself against
// (Section VI): redundant multithreading (Wadden et al. [69], Gupta
// et al. [20], Yang et al. [70]) and checkpoint-restart (CRUM [19],
// NVCR [48]; Lee et al. [29] call its overhead prohibitive).
//
// RMT here is the memory-level view: every warp is duplicated, the
// shadow warp re-issues all loads (verification consumes the data)
// and suppresses stores (the trailing copy only checks). Two
// properties fall out, both of which the bench demonstrates:
//   1. the overhead is large (2x issue and load traffic, halved
//      occupancy), and
//   2. it cannot catch the faults this paper targets at all — both
//      copies read the *same* faulty DRAM, so their computations
//      agree on corrupted data. Replication of the data itself is
//      what detects memory faults.
#pragma once

#include <cstdint>

#include "trace/trace.h"

namespace dcrm::core {

// Duplicates every warp of the trace inside its CTA: the shadow warp
// replays the loads and drops the stores. CTA warp counts double, so
// per-SM occupancy halves — the real cost of warp-level RMT.
trace::KernelTrace MakeRmtTrace(const trace::KernelTrace& in);

// Expected-completion-time models for recovery strategies, all in
// units of one fault-free execution (T = 1).
//
// p_fault: probability that a run encounters a detectable fault.
// overhead: the protection scheme's fractional run-time overhead.
struct RecoveryModel {
  // Detection-only + terminate/rerun (this paper's scheme): each
  // attempt costs (1+overhead); on fault (probability p) the run is
  // discarded and retried. E[T] = (1+o) / (1-p), the geometric-retry
  // mean, assuming permanent-fault retries land on different blocks
  // (the paper's user-rerun model).
  static double DetectRerun(double p_fault, double overhead);

  // Detection-and-correction (triplication): corrected in place, no
  // rerun. E[T] = 1 + o.
  static double Correct(double overhead);

  // Checkpoint-restart: checkpoints every `interval` fraction of the
  // run (0 < interval <= 1) cost `ckpt_cost` each (fraction of T);
  // a fault loses on average half an interval plus the restore.
  // E[T] = 1 + ckpt_cost/interval + p*(interval/2 + restore_cost).
  static double CheckpointRestart(double p_fault, double interval,
                                  double ckpt_cost, double restore_cost);

  // Full-run time fraction needed to copy `bytes` at
  // `bytes_per_cycle` given the run length in cycles — the paper's
  // point that GPGPU footprints make checkpoints expensive.
  static double CheckpointCost(std::uint64_t bytes, double bytes_per_cycle,
                               std::uint64_t run_cycles);
};

}  // namespace dcrm::core
