#include "core/online_detector.h"

#include <algorithm>
#include <stdexcept>

namespace dcrm::core {

OnlineHotDetector::OnlineHotDetector(std::size_t entries)
    : capacity_(entries) {
  if (entries == 0) throw std::invalid_argument("need at least one entry");
  table_.reserve(entries + 1);
}

void OnlineHotDetector::Observe(std::uint64_t block) {
  ++observed_;
  if (const auto it = table_.find(block); it != table_.end()) {
    ++it->second.count;
    return;
  }
  if (table_.size() < capacity_) {
    table_.emplace(block, Cell{1, 0});
    return;
  }
  // Space-Saving replacement: evict the minimum-count entry; the new
  // entry adopts count+1 with the evicted count recorded as its error
  // (so count stays an upper bound and count-error a lower bound).
  const auto min_it = std::min_element(
      table_.begin(), table_.end(), [](const auto& a, const auto& b) {
        return a.second.count < b.second.count;
      });
  const std::uint64_t evicted = min_it->second.count;
  table_.erase(min_it);
  table_.emplace(block, Cell{evicted + 1, evicted});
}

std::vector<OnlineHotDetector::Entry> OnlineHotDetector::Top() const {
  std::vector<Entry> out;
  out.reserve(table_.size());
  for (const auto& [block, cell] : table_) {
    out.push_back({block, cell.count, cell.error});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.block < b.block;
  });
  return out;
}

std::vector<std::uint64_t> OnlineHotDetector::HotBlocks(double ratio) const {
  const auto top = Top();
  if (top.empty()) return {};
  std::vector<std::uint64_t> guaranteed;
  guaranteed.reserve(top.size());
  for (const auto& e : top) guaranteed.push_back(e.Guaranteed());
  std::sort(guaranteed.begin(), guaranteed.end());
  const double median =
      static_cast<double>(guaranteed[guaranteed.size() / 2]);
  std::vector<std::uint64_t> out;
  for (const auto& e : top) {
    if (static_cast<double>(e.Guaranteed()) >=
        ratio * std::max(1.0, median)) {
      out.push_back(e.block);
    }
  }
  return out;
}

}  // namespace dcrm::core
