// Online hot-block detection — the natural extension of the paper's
// one-time *offline* profiling (Section IV-C notes the analysis "can
// be automated with binary instrumentation"; a hardware table makes
// it fully dynamic).
//
// A small Space-Saving–style counter table (Metwally et al.'s
// stream-frequency algorithm, hardware-friendly: N entries, O(1)
// update) observes block addresses as they are accessed. Blocks whose
// estimated counts dominate are reported hot. The accompanying bench
// measures how well the online top-K agrees with the offline profile
// across the applications.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace dcrm::core {

class OnlineHotDetector {
 public:
  // `entries`: counter-table capacity (hardware budget). 64 entries of
  // (block id, count) is 64 x 12B — smaller than one cache line pair.
  explicit OnlineHotDetector(std::size_t entries);

  // Observes one block access (call per coalesced transaction or per
  // thread access; consistency matters more than the unit).
  void Observe(std::uint64_t block);

  struct Entry {
    std::uint64_t block = 0;
    std::uint64_t count = 0;  // estimated frequency (upper bound)
    std::uint64_t error = 0;  // count inherited at insertion
    // Guaranteed lower bound on the true frequency.
    std::uint64_t Guaranteed() const { return count - error; }
  };

  // Entries sorted by estimated count, highest first.
  std::vector<Entry> Top() const;

  // Blocks whose *guaranteed* count (count - error, the Space-Saving
  // lower bound) is at least `ratio` times the table's median
  // guaranteed count — the online analogue of the offline knee test.
  // Using the lower bound cancels the inflation that evict-inherit
  // puts on churning cold entries.
  std::vector<std::uint64_t> HotBlocks(double ratio = 8.0) const;

  std::uint64_t observed() const { return observed_; }

 private:
  struct Cell {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Cell> table_;
  std::uint64_t observed_ = 0;
};

}  // namespace dcrm::core
