#include "core/hot_classifier.h"

#include <algorithm>

namespace dcrm::core {
namespace {

double MedianBlockReads(const AccessProfiler& prof) {
  std::vector<std::uint64_t> reads;
  reads.reserve(prof.blocks().size());
  for (const auto& [block, bp] : prof.blocks()) {
    if (bp.reads > 0) reads.push_back(bp.reads);
  }
  if (reads.empty()) return 0.0;
  const std::size_t mid = reads.size() / 2;
  std::nth_element(reads.begin(), reads.begin() + mid, reads.end());
  return static_cast<double>(reads[mid]);
}

double MaxBlockReads(const AccessProfiler& prof) {
  std::uint64_t mx = 0;
  for (const auto& [block, bp] : prof.blocks()) mx = std::max(mx, bp.reads);
  return static_cast<double>(mx);
}

}  // namespace

HotClassification ClassifyHot(const AccessProfiler& prof,
                              const mem::AddressSpace& space,
                              const HotConfig& cfg) {
  HotClassification out;
  const double median = MedianBlockReads(prof);
  const double mx = MaxBlockReads(prof);
  out.max_median_ratio = median > 0 ? mx / median : 0.0;
  out.has_hot_pattern = out.max_median_ratio >= cfg.min_max_median_ratio;

  auto objects = AggregateByObject(prof, space);
  // Coverage order: read-only input objects with any reads, most
  // accessed first (already sorted by AggregateByObject).
  for (const auto& op : objects) {
    if (op.read_only && op.reads > 0) out.coverage_order.push_back(op);
  }
  if (!out.has_hot_pattern) return out;

  // Reference intensity: the app-wide *median* block read count. The
  // mean would be inflated by the hot blocks themselves (in C-NN the
  // five Layer1_Weights blocks carry >20% of all reads), moving the
  // goalposts for every later candidate.
  const double median_block_reads = median;

  // The paper's hot set is always a *prefix* of the Table III order,
  // so stop at the first object that fails a gate.
  std::uint64_t hot_bytes = 0;
  for (const auto& op : out.coverage_order) {
    if (median_block_reads <= 0) break;
    const bool intense =
        op.reads_per_block >= cfg.min_intensity_ratio * median_block_reads;
    const bool shared = op.mean_warp_share >= cfg.min_warp_share;
    if (!intense || !shared) break;
    const double footprint =
        static_cast<double>(hot_bytes + op.size_bytes) /
        static_cast<double>(space.TotalObjectBytes());
    if (footprint > cfg.max_footprint) break;
    out.hot_objects.push_back(op);
    hot_bytes += op.size_bytes;
  }
  out.hot_footprint = space.TotalObjectBytes() == 0
                          ? 0.0
                          : static_cast<double>(hot_bytes) /
                                static_cast<double>(space.TotalObjectBytes());

  // Share of accesses landing in hot blocks — in coalesced memory
  // transactions if a transaction profile is attached (the paper's
  // Table III unit: P-BICG's r+p carry 5.7% of transactions because
  // the uncoalesced A matrix fans out to 32 transactions per warp
  // instruction), otherwise in thread-level accesses.
  std::uint64_t total_txns = 0;
  for (const auto& [block, bp] : prof.blocks()) total_txns += bp.txns;
  std::uint64_t hot_accesses = 0;
  std::uint64_t hot_txns = 0;
  for (const auto& op : out.hot_objects) {
    const auto& obj = space.Object(op.id);
    const std::uint64_t first = obj.base / kBlockSize;
    const std::uint64_t last = (obj.end() - 1) / kBlockSize;
    for (std::uint64_t b = first; b <= last; ++b) {
      const auto it = prof.blocks().find(b);
      if (it == prof.blocks().end()) continue;
      hot_accesses += it->second.reads + it->second.writes;
      hot_txns += it->second.txns;
    }
  }
  if (total_txns > 0) {
    out.hot_access_share =
        static_cast<double>(hot_txns) / static_cast<double>(total_txns);
  } else {
    out.hot_access_share =
        prof.TotalAccesses() == 0
            ? 0.0
            : static_cast<double>(hot_accesses) /
                  static_cast<double>(prof.TotalAccesses());
  }
  return out;
}

BlockSplit SplitBlocks(const HotClassification& cls,
                       const AccessProfiler& prof,
                       const mem::AddressSpace& space) {
  BlockSplit split;
  std::unordered_set<std::uint64_t> hot_set;
  for (const auto& op : cls.hot_objects) {
    const auto& obj = space.Object(op.id);
    const std::uint64_t first = obj.base / kBlockSize;
    const std::uint64_t last = (obj.end() - 1) / kBlockSize;
    for (std::uint64_t b = first; b <= last; ++b) hot_set.insert(b);
  }
  split.hot.reserve(hot_set.size());
  split.rest.reserve(prof.blocks().size());
  for (const auto& [block, bp] : prof.blocks()) {
    if (hot_set.contains(block)) {
      split.hot.push_back(block);
    } else {
      split.rest.push_back(block);
    }
  }
  std::sort(split.hot.begin(), split.hot.end());
  std::sort(split.rest.begin(), split.rest.end());
  return split;
}

}  // namespace dcrm::core
