// Application factory with size presets, so tests, campaigns and
// benches agree on workload scales.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/app.h"

namespace dcrm::apps {

enum class AppScale {
  kTiny,    // unit tests & fast fault campaigns
  kSmall,   // default campaigns
  kMedium,  // timing benches (more CTAs, better occupancy)
};

// Creates the named application at the given scale. Throws
// std::invalid_argument for unknown names.
std::unique_ptr<App> MakeApp(std::string_view name, AppScale scale);

// The paper's eight Table II applications — the default set for the
// figure-reproduction benches.
const std::vector<std::string>& PaperAppNames();

// The paper's eight plus the suite-mates with the same knee profile
// (P-ATAX, C-ConvRows).
const std::vector<std::string>& HotPatternAppNames();

// The multi-kernel DAG workloads (transformer encoder block, 2-layer
// MLP) — the apps whose Graph() is not a single chain.
const std::vector<std::string>& GraphAppNames();

// Every registered application: the ten studied ones, the two
// Fig. 3(g)-(h) counterexamples (C-BlackScholes, P-GRAMSCHM), and the
// kernel-graph workloads.
const std::vector<std::string>& AllAppNames();

}  // namespace dcrm::apps
