#include "apps/app.h"

#include <stdexcept>

namespace dcrm::apps {

void RunKernels(App& app, exec::DataPlane& plane, exec::AccessSink* sink) {
  for (auto& k : app.Kernels()) {
    exec::LaunchKernel(k.cfg, plane, sink, k.body);
  }
}

std::vector<float> ReadOutputs(const App& app, const mem::DeviceMemory& dev) {
  std::vector<float> out;
  for (const std::string& name : app.OutputObjects()) {
    const auto id = dev.space().FindByName(name);
    if (!id) throw std::logic_error("unknown output object: " + name);
    const auto& obj = dev.space().Object(*id);
    const std::size_t n = obj.size_bytes / sizeof(float);
    const std::size_t start = out.size();
    out.resize(start + n);
    dev.ReadBytes(obj.base, reinterpret_cast<std::uint8_t*>(out.data() + start),
                  n * sizeof(float));
  }
  return out;
}

}  // namespace dcrm::apps
