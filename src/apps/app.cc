#include "apps/app.h"

#include <stdexcept>

namespace dcrm::apps {

exec::KernelGraph App::Graph() {
  // Compatibility shim: the ordered kernel list becomes a single chain
  // with ordering-only edges. Chain topological order is insertion
  // order, so execution, traces and goldens are bit-identical to the
  // pre-graph loop — and because the chain edges carry no object, the
  // trace layer persists no graph metadata for shimmed apps (their
  // serialized stores and fingerprints stay byte-identical too).
  exec::KernelGraph g;
  std::uint32_t prev = 0;
  for (auto& k : Kernels()) {
    exec::GraphNode node;
    node.name = std::move(k.name);
    node.cfg = k.cfg;
    node.body = std::move(k.body);
    const std::uint32_t id = g.AddNode(std::move(node));
    if (id > 0) g.AddEdge(prev, id);
    prev = id;
  }
  return g;
}

void RunKernels(App& app, exec::DataPlane& plane, exec::AccessSink* sink) {
  exec::KernelGraph graph = app.Graph();
  exec::RunGraph(graph, plane, sink);
}

std::vector<KernelLaunch> GraphKernels(exec::KernelGraph graph) {
  std::vector<KernelLaunch> out;
  out.reserve(graph.NumNodes());
  for (const std::uint32_t id : graph.TopoOrder()) {
    exec::GraphNode& node = graph.Node(id);
    out.push_back(KernelLaunch{std::move(node.name), node.cfg,
                               std::move(node.body)});
  }
  return out;
}

std::vector<float> ReadOutputs(const App& app, const mem::DeviceMemory& dev) {
  std::vector<float> out;
  for (const std::string& name : app.OutputObjects()) {
    const auto id = dev.space().FindByName(name);
    if (!id) throw std::logic_error("unknown output object: " + name);
    const auto& obj = dev.space().Object(*id);
    const std::size_t n = obj.size_bytes / sizeof(float);
    const std::size_t start = out.size();
    out.resize(start + n);
    dev.ReadBytes(obj.base, reinterpret_cast<std::uint8_t*>(out.data() + start),
                  n * sizeof(float));
  }
  return out;
}

}  // namespace dcrm::apps
