// A-SRAD (speckle-reducing anisotropic diffusion, Rodinia-style, one
// iteration). Hot data objects: the neighbor index arrays i_N, i_S
// (rows) and i_E, i_W (cols) — tiny, broadcast-read by many warps.
// The Image (J) is the large read-only input; the diffusion
// coefficient field C is an intermediate and J_out the output.
//
// The loaded neighbor indices drive the actual address arithmetic, so
// faults in them redirect reads to wrong rows/columns (SDC) or out of
// the address space (crash), as on real hardware.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class SradApp final : public App {
 public:
  explicit SradApp(std::uint32_t rows = 128, std::uint32_t cols = 128)
      : rows_(rows), cols_(cols) {}

  std::string Name() const override { return "A-SRAD"; }
  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override {
    return {"J_out"};
  }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override {
    // AxBench-style 10% quality threshold: a faulty image block only
    // perturbs its 3x3 neighborhoods (NRMSE ~0.03 at small scales),
    // while a corrupted filter/dimension scalar wrecks every pixel.
    return 0.10;
  }
  std::string MetricName() const override {
    return "NRMSE vs. fault-free image";
  }
  std::uint32_t AluCyclesPerMem() const override { return 10; }

 private:
  std::uint32_t rows_, cols_;
  exec::ArrayRef<float> j_, c_, jout_;
  exec::ArrayRef<std::int32_t> in_, is_, ie_, iw_;
};

}  // namespace dcrm::apps
