// P-BICG (Polybench): s = A^T r ; q = A p. Listing 1 of the paper.
// Hot data objects: r (kernel 1) and p (kernel 2) — broadcast reads
// shared by every warp; A is streamed with low per-block reuse.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class BicgApp final : public App {
 public:
  explicit BicgApp(std::uint32_t nx = 256, std::uint32_t ny = 256)
      : nx_(nx), ny_(ny) {}

  std::string Name() const override { return "P-BICG"; }
  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override {
    return {"s", "q"};
  }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override {
    // 5% of output elements: a handful of locally-corrupted elements
    // (faults in streamed matrix blocks touch O(#faulty blocks)
    // outputs) stays below this at any scale, while a corrupted hot
    // vector element poisons every output element.
    return 0.05;
  }
  std::string MetricName() const override {
    return "fraction of differing output vector elements";
  }
  std::uint32_t AluCyclesPerMem() const override { return 6; }

 private:
  std::uint32_t nx_;
  std::uint32_t ny_;
  exec::ArrayRef<float> a_, r_, p_, s_, q_;
};

}  // namespace dcrm::apps
