#include "apps/histogram.h"

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
enum : Pc {
  kLdData = 1,
  kLdPartialRmw = 2,
  kStPartialRmw = 3,
  kLdPartialReduce = 4,
  kStBin = 5,
};
constexpr std::uint32_t kCta = HistogramApp::kCtaSize;
}  // namespace

void HistogramApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  data_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Data", std::uint64_t{n_} * 4, true)).base);
  const std::uint32_t ctas = (threads_ + kCta - 1) / kCta;
  partial_ = exec::ArrayRef<std::uint32_t>(
      sp.Object(
            sp.Allocate("Partials", std::uint64_t{ctas} * bins_ * 4, false))
          .base);
  bins_arr_ = exec::ArrayRef<std::uint32_t>(
      sp.Object(sp.Allocate("Bins", std::uint64_t{bins_} * 4, false)).base);
  FillUniform(dev, data_.base(), n_, 0.0f,
              static_cast<float>(bins_), 111);
  for (std::uint32_t i = 0; i < ctas * bins_; ++i) {
    dev.Write<std::uint32_t>(partial_.AddrOf(i), 0);
  }
  for (std::uint32_t i = 0; i < bins_; ++i) {
    dev.Write<std::uint32_t>(bins_arr_.AddrOf(i), 0);
  }
}

std::vector<KernelLaunch> HistogramApp::Kernels() {
  const auto data = data_;
  const auto partial = partial_;
  const auto bins_arr = bins_arr_;
  const std::uint32_t n = n_;
  const std::uint32_t threads = threads_;
  const std::uint32_t bins = bins_;

  // Kernel 1: per-CTA partial histograms over strided slices
  // (read-modify-write per element; sequential functional execution
  // makes the CTA-shared updates deterministic, standing in for the
  // SDK's atomics).
  KernelLaunch k1;
  k1.name = "histogramPartials";
  k1.cfg.grid = {(threads + kCta - 1) / kCta, 1, 1};
  k1.cfg.block = {kCta, 1, 1};
  k1.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t tid =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    if (tid >= threads) return;
    for (std::uint32_t i = tid; i < n; i += threads) {
      const float v = data.Ld(ctx, kLdData, i);
      auto bin = static_cast<std::int64_t>(v);
      if (bin < 0) bin = 0;
      if (bin >= bins) bin = bins - 1;
      const std::uint64_t slot =
          std::uint64_t{ctx.blockIdx().x} * bins +
          static_cast<std::uint64_t>(bin);
      const std::uint32_t cur = partial.Ld(ctx, kLdPartialRmw, slot);
      partial.St(ctx, kStPartialRmw, slot, cur + 1);
    }
  };

  const std::uint32_t ctas = (threads + kCta - 1) / kCta;

  // Kernel 2: reduce the partials, one thread per bin.
  KernelLaunch k2;
  k2.name = "histogramReduce";
  k2.cfg.grid = {(bins + kCta - 1) / kCta, 1, 1};
  k2.cfg.block = {kCta, 1, 1};
  k2.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t bin =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    if (bin >= bins) return;
    std::uint32_t acc = 0;
    for (std::uint32_t c = 0; c < ctas; ++c) {
      acc += partial.Ld(ctx, kLdPartialReduce, std::uint64_t{c} * bins + bin);
    }
    bins_arr.St(ctx, kStBin, bin, acc);
  };

  return {std::move(k1), std::move(k2)};
}

double HistogramApp::OutputError(std::span<const float> golden,
                                 std::span<const float> observed) const {
  // Bins are uint32, compared bit-exactly (reinterpreted as floats by
  // the framework; identical bits -> identical floats).
  return metrics::VectorDiffFraction(golden, observed, 0.0f);
}

}  // namespace dcrm::apps
