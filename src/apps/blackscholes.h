// C-BlackScholes (CUDA SDK): embarrassingly parallel option pricing.
// Every input element is read exactly once by exactly one thread —
// the flat access profile of Fig. 3(g); the app has no hot memory
// blocks and is the paper's counterexample.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class BlackScholesApp final : public App {
 public:
  explicit BlackScholesApp(std::uint32_t n = 16384) : n_(n) {}

  std::string Name() const override { return "C-BlackScholes"; }
  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override {
    return {"CallResult", "PutResult"};
  }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override { return 0.01; }
  std::string MetricName() const override {
    return "fraction of differing option prices";
  }
  std::uint32_t AluCyclesPerMem() const override { return 24; }

 private:
  std::uint32_t n_;
  exec::ArrayRef<float> price_, strike_, years_, call_, put_;
};

}  // namespace dcrm::apps
