#include "apps/convolution.h"

#include <cmath>

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
enum : Pc { kLdInput = 1, kLdKernel = 2, kStOut = 3 };
constexpr std::uint32_t kTile = 16;
}  // namespace

void ConvolutionRowsApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  const std::uint64_t pixels = std::uint64_t{width_} * height_;
  const std::uint32_t taps = 2 * radius_ + 1;
  input_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Input", pixels * 4, true)).base);
  kernel_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Kernel", taps * 4, true)).base);
  output_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Output", pixels * 4, false)).base);
  FillUniform(dev, input_.base(), pixels, 0.0f, 255.0f, 101);
  // Normalized Gaussian taps, like the SDK sample's host setup.
  float sum = 0.0f;
  std::vector<float> taps_v(taps);
  for (std::uint32_t i = 0; i < taps; ++i) {
    const float d = (static_cast<float>(i) - static_cast<float>(radius_)) /
                    static_cast<float>(radius_);
    taps_v[i] = std::exp(-d * d);
    sum += taps_v[i];
  }
  for (std::uint32_t i = 0; i < taps; ++i) {
    dev.Write<float>(kernel_.AddrOf(i), taps_v[i] / sum);
  }
  FillConst(dev, output_.base(), pixels, 0.0f);
}

std::vector<KernelLaunch> ConvolutionRowsApp::Kernels() {
  const auto input = input_;
  const auto kernel = kernel_;
  const auto output = output_;
  const std::uint32_t width = width_;
  const std::uint32_t height = height_;
  const std::int64_t radius = radius_;

  KernelLaunch k;
  k.name = "convolutionRowsKernel";
  k.cfg.grid = {(width + kTile - 1) / kTile, (height + kTile - 1) / kTile, 1};
  k.cfg.block = {kTile, kTile, 1};
  k.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t x =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    const std::uint32_t y =
        ctx.blockIdx().y * ctx.blockDim().y + ctx.threadIdx().y;
    if (x >= width || y >= height) return;
    float acc = 0.0f;
    for (std::int64_t k_off = -radius; k_off <= radius; ++k_off) {
      std::int64_t sx = static_cast<std::int64_t>(x) + k_off;
      sx = std::min<std::int64_t>(std::max<std::int64_t>(sx, 0), width - 1);
      acc += input.Ld(ctx, kLdInput,
                      std::uint64_t{y} * width +
                          static_cast<std::uint64_t>(sx)) *
             kernel.Ld(ctx, kLdKernel,
                       static_cast<std::uint64_t>(k_off + radius));
    }
    output.St(ctx, kStOut, std::uint64_t{y} * width + x, acc);
  };
  return {std::move(k)};
}

double ConvolutionRowsApp::OutputError(std::span<const float> golden,
                                       std::span<const float> observed) const {
  return metrics::NrmseRendered(golden, observed);
}

}  // namespace dcrm::apps
