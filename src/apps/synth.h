// Deterministic synthetic input generation shared by the applications.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "mem/device_memory.h"

namespace dcrm::apps {

// Fills `count` floats at `base` with uniform values in [lo, hi),
// deterministically from `seed`.
inline void FillUniform(mem::DeviceMemory& dev, Addr base, std::uint64_t count,
                        float lo, float hi, std::uint64_t seed) {
  Rng rng(seed);
  for (std::uint64_t i = 0; i < count; ++i) {
    const float v =
        lo + static_cast<float>(rng.NextDouble()) * (hi - lo);
    dev.Write<float>(base + i * sizeof(float), v);
  }
}

inline void FillConst(mem::DeviceMemory& dev, Addr base, std::uint64_t count,
                      float v) {
  for (std::uint64_t i = 0; i < count; ++i) {
    dev.Write<float>(base + i * sizeof(float), v);
  }
}

}  // namespace dcrm::apps
