#include "apps/blackscholes.h"

#include <cmath>

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
enum : Pc { kLdS = 1, kLdX = 2, kLdT = 3, kStCall = 4, kStPut = 5 };
constexpr std::uint32_t kCta = 128;
constexpr float kRiskFree = 0.02f;
constexpr float kVolatility = 0.30f;

// Cumulative normal distribution (Abramowitz-Stegun polynomial, as in
// the CUDA SDK sample).
float Cnd(float d) {
  const float a1 = 0.31938153f;
  const float a2 = -0.356563782f;
  const float a3 = 1.781477937f;
  const float a4 = -1.821255978f;
  const float a5 = 1.330274429f;
  const float rsqrt2pi = 0.39894228040143267794f;
  const float k = 1.0f / (1.0f + 0.2316419f * std::fabs(d));
  float cnd = rsqrt2pi * std::exp(-0.5f * d * d) *
              (k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5)))));
  if (d > 0) cnd = 1.0f - cnd;
  return cnd;
}
}  // namespace

void BlackScholesApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  price_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("StockPrice", n_ * 4, true)).base);
  strike_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("OptionStrike", n_ * 4, true)).base);
  years_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("OptionYears", n_ * 4, true)).base);
  call_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("CallResult", n_ * 4, false)).base);
  put_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("PutResult", n_ * 4, false)).base);
  FillUniform(dev, price_.base(), n_, 5.0f, 30.0f, 71);
  FillUniform(dev, strike_.base(), n_, 1.0f, 100.0f, 72);
  FillUniform(dev, years_.base(), n_, 0.25f, 10.0f, 73);
  FillConst(dev, call_.base(), n_, 0.0f);
  FillConst(dev, put_.base(), n_, 0.0f);
}

std::vector<KernelLaunch> BlackScholesApp::Kernels() {
  const auto price = price_;
  const auto strike = strike_;
  const auto years = years_;
  const auto call = call_;
  const auto put = put_;
  const std::uint32_t n = n_;

  KernelLaunch k;
  k.name = "BlackScholesGPU";
  k.cfg.grid = {(n + kCta - 1) / kCta, 1, 1};
  k.cfg.block = {kCta, 1, 1};
  k.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t i =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    if (i >= n) return;
    const float s = price.Ld(ctx, kLdS, i);
    const float x = strike.Ld(ctx, kLdX, i);
    const float t = years.Ld(ctx, kLdT, i);
    const float sqrt_t = std::sqrt(t);
    const float d1 = (std::log(s / x) +
                      (kRiskFree + 0.5f * kVolatility * kVolatility) * t) /
                     (kVolatility * sqrt_t);
    const float d2 = d1 - kVolatility * sqrt_t;
    const float cnd_d1 = Cnd(d1);
    const float cnd_d2 = Cnd(d2);
    const float exp_rt = std::exp(-kRiskFree * t);
    call.St(ctx, kStCall, i, s * cnd_d1 - x * exp_rt * cnd_d2);
    put.St(ctx, kStPut, i,
           x * exp_rt * (1.0f - cnd_d2) - s * (1.0f - cnd_d1));
  };
  return {std::move(k)};
}

double BlackScholesApp::OutputError(std::span<const float> golden,
                                    std::span<const float> observed) const {
  return metrics::VectorDiffFractionRel(golden, observed, 1e-6, 1e-6);
}

}  // namespace dcrm::apps
