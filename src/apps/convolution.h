// C-ConvolutionRows (CUDA SDK separable-convolution, rows pass): each
// thread filters one pixel with a 1D kernel of KERNEL_RADIUS taps per
// side. Hot data object: the Kernel coefficient array — a single
// block broadcast-read 2R+1 times by every thread.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class ConvolutionRowsApp final : public App {
 public:
  explicit ConvolutionRowsApp(std::uint32_t width = 128,
                              std::uint32_t height = 128,
                              std::uint32_t radius = 8)
      : width_(width), height_(height), radius_(radius) {}

  std::string Name() const override { return "C-ConvRows"; }
  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override {
    return {"Output"};
  }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override { return 0.10; }
  std::string MetricName() const override {
    return "NRMSE vs. fault-free image";
  }
  std::uint32_t AluCyclesPerMem() const override { return 8; }

 private:
  std::uint32_t width_, height_, radius_;
  exec::ArrayRef<float> input_, kernel_, output_;
};

}  // namespace dcrm::apps
