#include "apps/atax.h"

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
enum : Pc {
  kLdA1 = 1,
  kLdX = 2,
  kStTmp = 3,
  kLdA2 = 4,
  kLdTmp = 5,
  kStY = 6,
};
constexpr std::uint32_t kCta = 256;
}  // namespace

void AtaxApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  const std::uint64_t mn = std::uint64_t{m_} * n_;
  a_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("A", mn * 4, true)).base);
  x_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("x", n_ * 4, true)).base);
  tmp_ =
      exec::ArrayRef<float>(sp.Object(sp.Allocate("tmp", m_ * 4, false)).base);
  y_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("y", n_ * 4, false)).base);
  FillUniform(dev, a_.base(), mn, -1.0f, 1.0f, 91);
  FillUniform(dev, x_.base(), n_, -1.0f, 1.0f, 92);
  FillConst(dev, tmp_.base(), m_, 0.0f);
  FillConst(dev, y_.base(), n_, 0.0f);
}

std::vector<KernelLaunch> AtaxApp::Kernels() {
  const std::uint32_t m = m_;
  const std::uint32_t n = n_;
  const auto a = a_;
  const auto x = x_;
  const auto tmp = tmp_;
  const auto y = y_;

  KernelLaunch k1;
  k1.name = "atax_kernel1";
  k1.cfg.grid = {(m + kCta - 1) / kCta, 1, 1};
  k1.cfg.block = {kCta, 1, 1};
  k1.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t i =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    if (i >= m) return;
    float acc = 0.0f;
    for (std::uint32_t j = 0; j < n; ++j) {
      acc += a.Ld(ctx, kLdA1, std::uint64_t{i} * n + j) * x.Ld(ctx, kLdX, j);
    }
    tmp.St(ctx, kStTmp, i, acc);
  };

  KernelLaunch k2;
  k2.name = "atax_kernel2";
  k2.cfg.grid = {(n + kCta - 1) / kCta, 1, 1};
  k2.cfg.block = {kCta, 1, 1};
  k2.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t j =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    if (j >= n) return;
    float acc = 0.0f;
    for (std::uint32_t i = 0; i < m; ++i) {
      acc +=
          a.Ld(ctx, kLdA2, std::uint64_t{i} * n + j) * tmp.Ld(ctx, kLdTmp, i);
    }
    y.St(ctx, kStY, j, acc);
  };

  return {std::move(k1), std::move(k2)};
}

double AtaxApp::OutputError(std::span<const float> golden,
                            std::span<const float> observed) const {
  return metrics::VectorDiffFractionRel(golden, observed, 1e-6, 1e-6);
}

}  // namespace dcrm::apps
