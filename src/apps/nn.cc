#include "apps/nn.h"

#include <cmath>

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
enum : Pc {
  kLdW1Bias = 1,
  kLdImg = 2,
  kLdW1 = 3,
  kStN2 = 4,
  kLdW2Bias = 5,
  kLdN2 = 6,
  kLdW2 = 7,
  kStN3 = 8,
  kLdW3Bias = 9,
  kLdN3 = 10,
  kLdW3 = 11,
  kStN4 = 12,
  kLdW4Bias = 13,
  kLdN4 = 14,
  kLdW4 = 15,
  kStScore = 16,
};

constexpr std::uint32_t kImgDim = 29;          // 29x29 inputs
constexpr std::uint32_t kImgSize = kImgDim * kImgDim;
constexpr std::uint32_t kMaps1 = 6;            // first-layer feature maps
constexpr std::uint32_t kL1Out = 13;           // 13x13 per map
constexpr std::uint32_t kL2Out = 5;            // 5x5 per map

float Squash(float x) { return 1.7159f * std::tanh(0.66666667f * x); }

// The classic 5x5 window offsets of the CUDA NN benchmark's
// kernelTemplate (row-major within the 29-wide input).
constexpr std::uint32_t KernelTemplate(std::uint32_t i) {
  return (i / 5) * kImgDim + (i % 5);
}
}  // namespace

void NnApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  const std::uint64_t w1n = kMaps1 * 26;                 // 25 + bias per map
  const std::uint64_t w2n = std::uint64_t{maps2_} * (kMaps1 * 25 + 1);
  const std::uint64_t w3n =
      std::uint64_t{fc_} * (maps2_ * kL2Out * kL2Out + 1);
  const std::uint64_t w4n = std::uint64_t{classes_} * (fc_ + 1);

  images_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Images", std::uint64_t{ni_} * kImgSize * 4, true))
          .base);
  w1_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Layer1_Weights", w1n * 4, true)).base);
  w2_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Layer2_Weights", w2n * 4, true)).base);
  w3_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Layer3_Weights", w3n * 4, true)).base);
  w4_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Layer4_Weights", w4n * 4, true)).base);

  const std::uint64_t n2n = std::uint64_t{ni_} * kMaps1 * kL1Out * kL1Out;
  const std::uint64_t n3n = std::uint64_t{ni_} * maps2_ * kL2Out * kL2Out;
  const std::uint64_t n4n = std::uint64_t{ni_} * fc_;
  n2_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Layer2_Neurons", n2n * 4, false)).base);
  n3_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Layer3_Neurons", n3n * 4, false)).base);
  n4_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Layer4_Neurons", n4n * 4, false)).base);
  scores_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Out_Scores", std::uint64_t{ni_} * classes_ * 4,
                            false))
          .base);

  FillUniform(dev, images_.base(), std::uint64_t{ni_} * kImgSize, 0.0f, 1.0f,
              51);
  FillUniform(dev, w1_.base(), w1n, -0.5f, 0.5f, 52);
  FillUniform(dev, w2_.base(), w2n, -0.3f, 0.3f, 53);
  FillUniform(dev, w3_.base(), w3n, -0.2f, 0.2f, 54);
  FillUniform(dev, w4_.base(), w4n, -0.2f, 0.2f, 55);
  FillConst(dev, n2_.base(), n2n, 0.0f);
  FillConst(dev, n3_.base(), n3n, 0.0f);
  FillConst(dev, n4_.base(), n4n, 0.0f);
  FillConst(dev, scores_.base(), std::uint64_t{ni_} * classes_, 0.0f);
}

std::vector<KernelLaunch> NnApp::Kernels() {
  const auto images = images_;
  const auto w1 = w1_;
  const auto w2 = w2_;
  const auto w3 = w3_;
  const auto w4 = w4_;
  const auto n2 = n2_;
  const auto n3 = n3_;
  const auto n4 = n4_;
  const auto scores = scores_;
  const std::uint32_t maps2 = maps2_;
  const std::uint32_t fc = fc_;
  const std::uint32_t classes = classes_;

  // First layer (Listing 2): grid (map, image), block 13x13.
  KernelLaunch k1;
  k1.name = "FirstLayer";
  k1.cfg.grid = {kMaps1, ni_, 1};
  k1.cfg.block = {kL1Out, kL1Out, 1};
  k1.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t map = ctx.blockIdx().x;
    const std::uint32_t img = ctx.blockIdx().y;
    const std::uint32_t px = ctx.threadIdx().x;
    const std::uint32_t py = ctx.threadIdx().y;
    std::uint32_t weight_begin = map * 26;
    const std::uint32_t wx = px * 2;
    const std::uint32_t wy = py * 2;
    float acc = w1.Ld(ctx, kLdW1Bias, weight_begin);
    ++weight_begin;
    for (std::uint32_t i = 0; i < 25; ++i) {
      acc += images.Ld(ctx, kLdImg,
                       std::uint64_t{wy} * kImgDim + wx + KernelTemplate(i) +
                           std::uint64_t{kImgSize} * img) *
             w1.Ld(ctx, kLdW1, weight_begin + i);
    }
    n2.St(ctx, kStN2,
          std::uint64_t{kL1Out} * kL1Out * map + py * kL1Out + px +
              std::uint64_t{kL1Out} * kL1Out * kMaps1 * img,
          Squash(acc));
  };

  // Second layer: grid (map2, image), block 5x5.
  KernelLaunch k2;
  k2.name = "SecondLayer";
  k2.cfg.grid = {maps2, ni_, 1};
  k2.cfg.block = {kL2Out, kL2Out, 1};
  k2.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t map = ctx.blockIdx().x;
    const std::uint32_t img = ctx.blockIdx().y;
    const std::uint32_t px = ctx.threadIdx().x;
    const std::uint32_t py = ctx.threadIdx().y;
    const std::uint32_t wb = map * (kMaps1 * 25 + 1);
    float acc = w2.Ld(ctx, kLdW2Bias, wb);
    for (std::uint32_t m = 0; m < kMaps1; ++m) {
      for (std::uint32_t i = 0; i < 25; ++i) {
        const std::uint32_t sx = px * 2 + i % 5;
        const std::uint32_t sy = py * 2 + i / 5;
        acc += n2.Ld(ctx, kLdN2,
                     std::uint64_t{kL1Out} * kL1Out * m + sy * kL1Out + sx +
                         std::uint64_t{kL1Out} * kL1Out * kMaps1 * img) *
               w2.Ld(ctx, kLdW2, wb + 1 + m * 25 + i);
      }
    }
    n3.St(ctx, kStN3,
          std::uint64_t{kL2Out} * kL2Out * map + py * kL2Out + px +
              std::uint64_t{kL2Out} * kL2Out * maps2 * img,
          Squash(acc));
  };

  // Third layer (fully connected): grid (image), block (fc).
  const std::uint32_t l3_in = maps2 * kL2Out * kL2Out;
  KernelLaunch k3;
  k3.name = "ThirdLayer";
  k3.cfg.grid = {ni_, 1, 1};
  k3.cfg.block = {fc, 1, 1};
  k3.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t img = ctx.blockIdx().x;
    const std::uint32_t n = ctx.threadIdx().x;
    const std::uint32_t wb = n * (l3_in + 1);
    float acc = w3.Ld(ctx, kLdW3Bias, wb);
    for (std::uint32_t i = 0; i < l3_in; ++i) {
      acc += n3.Ld(ctx, kLdN3, std::uint64_t{l3_in} * img + i) *
             w3.Ld(ctx, kLdW3, wb + 1 + i);
    }
    n4.St(ctx, kStN4, std::uint64_t{fc} * img + n, Squash(acc));
  };

  // Fourth layer (classifier): grid (image), block (classes).
  KernelLaunch k4;
  k4.name = "FourthLayer";
  k4.cfg.grid = {ni_, 1, 1};
  k4.cfg.block = {classes, 1, 1};
  k4.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t img = ctx.blockIdx().x;
    const std::uint32_t c = ctx.threadIdx().x;
    const std::uint32_t wb = c * (fc + 1);
    float acc = w4.Ld(ctx, kLdW4Bias, wb);
    for (std::uint32_t i = 0; i < fc; ++i) {
      acc += n4.Ld(ctx, kLdN4, std::uint64_t{fc} * img + i) *
             w4.Ld(ctx, kLdW4, wb + 1 + i);
    }
    scores.St(ctx, kStScore, std::uint64_t{classes} * img + c, acc);
  };

  return {std::move(k1), std::move(k2), std::move(k3), std::move(k4)};
}

double NnApp::OutputError(std::span<const float> golden,
                          std::span<const float> observed) const {
  return metrics::MisclassificationRate(golden, observed, classes_);
}

}  // namespace dcrm::apps
