#include "apps/bicg.h"

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
// Static load/store site ids ("PCs"), mirroring the PTX analysis.
enum : Pc {
  kLdA1 = 1,
  kLdR = 2,
  kStS = 3,
  kLdA2 = 4,
  kLdP = 5,
  kStQ = 6,
};
constexpr std::uint32_t kCta = 256;
}  // namespace

void BicgApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  a_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("A", std::uint64_t{nx_} * ny_ * 4, true)).base);
  r_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("r", nx_ * 4, true)).base);
  p_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("p", ny_ * 4, true)).base);
  s_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("s", ny_ * 4, false)).base);
  q_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("q", nx_ * 4, false)).base);
  FillUniform(dev, a_.base(), std::uint64_t{nx_} * ny_, -1.0f, 1.0f, 11);
  FillUniform(dev, r_.base(), nx_, -1.0f, 1.0f, 12);
  FillUniform(dev, p_.base(), ny_, -1.0f, 1.0f, 13);
  FillConst(dev, s_.base(), ny_, 0.0f);
  FillConst(dev, q_.base(), nx_, 0.0f);
}

std::vector<KernelLaunch> BicgApp::Kernels() {
  const std::uint32_t nx = nx_;
  const std::uint32_t ny = ny_;
  const auto a = a_;
  const auto r = r_;
  const auto p = p_;
  const auto s = s_;
  const auto q = q_;

  KernelLaunch k1;
  k1.name = "bicg_kernel1";
  k1.cfg.grid = {(ny + kCta - 1) / kCta, 1, 1};
  k1.cfg.block = {kCta, 1, 1};
  k1.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t j =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    if (j >= ny) return;
    float acc = 0.0f;
    for (std::uint32_t i = 0; i < nx; ++i) {
      acc += a.Ld(ctx, kLdA1, std::uint64_t{i} * ny + j) * r.Ld(ctx, kLdR, i);
    }
    s.St(ctx, kStS, j, acc);
  };

  KernelLaunch k2;
  k2.name = "bicg_kernel2";
  k2.cfg.grid = {(nx + kCta - 1) / kCta, 1, 1};
  k2.cfg.block = {kCta, 1, 1};
  k2.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t i =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    if (i >= nx) return;
    float acc = 0.0f;
    for (std::uint32_t j = 0; j < ny; ++j) {
      acc += a.Ld(ctx, kLdA2, std::uint64_t{i} * ny + j) * p.Ld(ctx, kLdP, j);
    }
    q.St(ctx, kStQ, i, acc);
  };

  return {std::move(k1), std::move(k2)};
}

double BicgApp::OutputError(std::span<const float> golden,
                            std::span<const float> observed) const {
  return metrics::VectorDiffFractionRel(golden, observed, 1e-6, 1e-6);
}

}  // namespace dcrm::apps
