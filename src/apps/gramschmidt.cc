#include "apps/gramschmidt.h"

#include <cmath>

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
enum : Pc {
  kLdA1 = 1,
  kStR1 = 2,
  kLdA2 = 3,
  kLdR2 = 4,
  kStQ = 5,
  kLdQ3 = 6,
  kLdA3 = 7,
  kStR3 = 8,
  kLdQ4 = 9,
  kLdR4 = 10,
  kLdA4 = 11,
  kStA = 12,
};
constexpr std::uint32_t kCta = 128;
}  // namespace

void GramSchmidtApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  // Column-major storage: column c occupies [c*n, (c+1)*n).
  const std::uint64_t an = std::uint64_t{n_} * k_;
  a_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("A", an * 4, false)).base);
  q_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("Q", an * 4, false)).base);
  r_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("R", std::uint64_t{k_} * k_ * 4, false)).base);
  FillUniform(dev, a_.base(), an, -1.0f, 1.0f, 81);
  FillConst(dev, q_.base(), an, 0.0f);
  FillConst(dev, r_.base(), std::uint64_t{k_} * k_, 0.0f);
}

std::vector<KernelLaunch> GramSchmidtApp::Kernels() {
  std::vector<KernelLaunch> out;
  const auto a = a_;
  const auto q = q_;
  const auto r = r_;
  const std::uint32_t n = n_;
  const std::uint32_t k = k_;

  for (std::uint32_t c = 0; c < k; ++c) {
    // Kernel 1: column norm (single thread, as in the Polybench GPU
    // port).
    KernelLaunch k1;
    k1.name = "gramschmidt_kernel1";
    k1.cfg.grid = {1, 1, 1};
    k1.cfg.block = {1, 1, 1};
    k1.body = [=](exec::ThreadCtx& ctx) {
      float nrm = 0.0f;
      for (std::uint32_t row = 0; row < n; ++row) {
        const float v = a.Ld(ctx, kLdA1, std::uint64_t{c} * n + row);
        nrm += v * v;
      }
      r.St(ctx, kStR1, std::uint64_t{c} * k + c, std::sqrt(nrm));
    };
    out.push_back(std::move(k1));

    // Kernel 2: normalize column c into Q.
    KernelLaunch k2;
    k2.name = "gramschmidt_kernel2";
    k2.cfg.grid = {(n + kCta - 1) / kCta, 1, 1};
    k2.cfg.block = {kCta, 1, 1};
    k2.body = [=](exec::ThreadCtx& ctx) {
      const std::uint32_t row =
          ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
      if (row >= n) return;
      const float nrm = r.Ld(ctx, kLdR2, std::uint64_t{c} * k + c);
      q.St(ctx, kStQ, std::uint64_t{c} * n + row,
           a.Ld(ctx, kLdA2, std::uint64_t{c} * n + row) / nrm);
    };
    out.push_back(std::move(k2));

    // Kernel 3: project the remaining columns (one thread per column).
    if (c + 1 < k) {
      KernelLaunch k3;
      k3.name = "gramschmidt_kernel3";
      const std::uint32_t rem = k - c - 1;
      k3.cfg.grid = {(rem + kCta - 1) / kCta, 1, 1};
      k3.cfg.block = {kCta, 1, 1};
      k3.body = [=](exec::ThreadCtx& ctx) {
        const std::uint32_t t =
            ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
        if (t >= rem) return;
        const std::uint32_t col = c + 1 + t;
        float dot = 0.0f;
        for (std::uint32_t row = 0; row < n; ++row) {
          dot += q.Ld(ctx, kLdQ3, std::uint64_t{c} * n + row) *
                 a.Ld(ctx, kLdA3, std::uint64_t{col} * n + row);
        }
        r.St(ctx, kStR3, std::uint64_t{c} * k + col, dot);
        for (std::uint32_t row = 0; row < n; ++row) {
          const float upd =
              a.Ld(ctx, kLdA4, std::uint64_t{col} * n + row) -
              q.Ld(ctx, kLdQ4, std::uint64_t{c} * n + row) * dot;
          a.St(ctx, kStA, std::uint64_t{col} * n + row, upd);
        }
      };
      out.push_back(std::move(k3));
    }
  }
  return out;
}

double GramSchmidtApp::OutputError(std::span<const float> golden,
                                   std::span<const float> observed) const {
  return metrics::VectorDiffFractionRel(golden, observed, 1e-5, 1e-5);
}

}  // namespace dcrm::apps
