// P-MVT (Polybench): x1 += A*y1 ; x2 += A^T*y2 (two kernels).
// Hot data objects: y1 and y2 — broadcast-read across all warps.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class MvtApp final : public App {
 public:
  explicit MvtApp(std::uint32_t n = 256) : n_(n) {}

  std::string Name() const override { return "P-MVT"; }
  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override {
    return {"x1", "x2"};
  }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override {
    // 5% of output elements: a handful of locally-corrupted elements
    // (faults in streamed matrix blocks touch O(#faulty blocks)
    // outputs) stays below this at any scale, while a corrupted hot
    // vector element poisons every output element.
    return 0.05;
  }
  std::string MetricName() const override {
    return "fraction of differing output vector elements";
  }
  std::uint32_t AluCyclesPerMem() const override { return 6; }

 private:
  std::uint32_t n_;
  exec::ArrayRef<float> a_, y1_, y2_, x1_, x2_;
};

}  // namespace dcrm::apps
