#include "apps/transformer.h"

#include <cmath>

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
// Static load/store site ids ("PCs"), mirroring the PTX analysis.
enum : Pc {
  kLdXGemm = 1,
  kLdW = 2,
  kStQkv = 3,
  kLdQ = 4,
  kLdK = 5,
  kStScore = 6,
  kLdScore = 7,
  kStProb = 8,
  kLdProb = 9,
  kLdV = 10,
  kStCtx = 11,
  kLdCtx = 12,
  kLdWo = 13,
  kStAttnOut = 14,
  kLdAttnOut = 15,
  kLdXLn = 16,
  kLdGamma = 17,
  kLdBeta = 18,
  kStY = 19,
};
constexpr std::uint32_t kCta = 64;

exec::LaunchConfig Cfg1D(std::uint32_t threads) {
  exec::LaunchConfig cfg;
  cfg.grid = {(threads + kCta - 1) / kCta, 1, 1};
  cfg.block = {kCta, 1, 1};
  return cfg;
}
}  // namespace

void TransformerApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  const std::uint64_t sd = std::uint64_t{seq_} * dim_ * 4;
  const std::uint64_t dd = std::uint64_t{dim_} * dim_ * 4;
  const std::uint64_t ss = std::uint64_t{seq_} * seq_ * 4;
  x_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("X", sd, true)).base);
  wq_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("Wq", dd, true)).base);
  wk_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("Wk", dd, true)).base);
  wv_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("Wv", dd, true)).base);
  wo_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("Wo", dd, true)).base);
  gamma_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("ln_gamma", dim_ * 4, true)).base);
  beta_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("ln_beta", dim_ * 4, true)).base);
  q_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("Q", sd, false)).base);
  k_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("K", sd, false)).base);
  v_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("V", sd, false)).base);
  scores_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("scores", ss, false)).base);
  probs_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("probs", ss, false)).base);
  ctx_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("ctx", sd, false)).base);
  attn_out_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("attn_out", sd, false)).base);
  y_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("Y", sd, false)).base);

  const std::uint64_t sd_n = std::uint64_t{seq_} * dim_;
  const std::uint64_t dd_n = std::uint64_t{dim_} * dim_;
  FillUniform(dev, x_.base(), sd_n, -1.0f, 1.0f, 21);
  FillUniform(dev, wq_.base(), dd_n, -0.5f, 0.5f, 22);
  FillUniform(dev, wk_.base(), dd_n, -0.5f, 0.5f, 23);
  FillUniform(dev, wv_.base(), dd_n, -0.5f, 0.5f, 24);
  FillUniform(dev, wo_.base(), dd_n, -0.5f, 0.5f, 25);
  FillUniform(dev, gamma_.base(), dim_, 0.5f, 1.5f, 26);
  FillUniform(dev, beta_.base(), dim_, -0.1f, 0.1f, 27);
  FillConst(dev, q_.base(), sd_n, 0.0f);
  FillConst(dev, k_.base(), sd_n, 0.0f);
  FillConst(dev, v_.base(), sd_n, 0.0f);
  FillConst(dev, scores_.base(), std::uint64_t{seq_} * seq_, 0.0f);
  FillConst(dev, probs_.base(), std::uint64_t{seq_} * seq_, 0.0f);
  FillConst(dev, ctx_.base(), sd_n, 0.0f);
  FillConst(dev, attn_out_.base(), sd_n, 0.0f);
  FillConst(dev, y_.base(), sd_n, 0.0f);
}

exec::KernelGraph TransformerApp::Graph() {
  const std::uint32_t seq = seq_;
  const std::uint32_t dim = dim_;
  const auto x = x_;
  const auto gamma = gamma_;
  const auto beta = beta_;
  const auto q = q_;
  const auto k = k_;
  const auto v = v_;
  const auto scores = scores_;
  const auto probs = probs_;
  const auto ctx = ctx_;
  const auto attn_out = attn_out_;
  const auto y = y_;

  exec::KernelGraph g;

  // Chunked QKV projections: two row-halves per projection, all six
  // launches sharing one name — the repeated-kernel case the
  // node-keyed stats exist for.
  struct Proj {
    const char* weight;
    const char* out_name;
    exec::ArrayRef<float> w;
    exec::ArrayRef<float> out;
  };
  const Proj projs[3] = {{"Wq", "Q", wq_, q_},
                         {"Wk", "K", wk_, k_},
                         {"Wv", "V", wv_, v_}};
  const std::uint32_t half = seq / 2;
  for (const Proj& p : projs) {
    for (std::uint32_t c = 0; c < 2; ++c) {
      const std::uint32_t row0 = c * half;
      const std::uint32_t rows = c == 0 ? half : seq - half;
      const auto w = p.w;
      const auto out = p.out;
      exec::GraphNode node;
      node.name = "qkv_gemm";
      node.cfg = Cfg1D(rows * dim);
      node.reads = {"X", p.weight};
      node.writes = {p.out_name};
      node.body = [=](exec::ThreadCtx& tc) {
        const std::uint32_t t =
            tc.blockIdx().x * tc.blockDim().x + tc.threadIdx().x;
        if (t >= rows * dim) return;
        const std::uint32_t i = row0 + t / dim;
        const std::uint32_t d = t % dim;
        float acc = 0.0f;
        for (std::uint32_t e = 0; e < dim; ++e) {
          acc += x.Ld(tc, kLdXGemm, std::uint64_t{i} * dim + e) *
                 w.Ld(tc, kLdW, std::uint64_t{e} * dim + d);
        }
        out.St(tc, kStQkv, std::uint64_t{i} * dim + d, acc);
      };
      g.AddNode(std::move(node));
    }
  }

  {
    exec::GraphNode node;
    node.name = "attn_score";
    node.cfg = Cfg1D(seq * seq);
    node.reads = {"Q", "K"};
    node.writes = {"scores"};
    node.body = [=](exec::ThreadCtx& tc) {
      const std::uint32_t t =
          tc.blockIdx().x * tc.blockDim().x + tc.threadIdx().x;
      if (t >= seq * seq) return;
      const std::uint32_t i = t / seq;
      const std::uint32_t j = t % seq;
      float acc = 0.0f;
      for (std::uint32_t d = 0; d < dim; ++d) {
        acc += q.Ld(tc, kLdQ, std::uint64_t{i} * dim + d) *
               k.Ld(tc, kLdK, std::uint64_t{j} * dim + d);
      }
      scores.St(tc, kStScore, std::uint64_t{i} * seq + j,
                acc / std::sqrt(static_cast<float>(dim)));
    };
    g.AddNode(std::move(node));
  }

  {
    exec::GraphNode node;
    node.name = "softmax";
    node.cfg = Cfg1D(seq);
    node.reads = {"scores"};
    node.writes = {"probs"};
    node.body = [=](exec::ThreadCtx& tc) {
      const std::uint32_t i =
          tc.blockIdx().x * tc.blockDim().x + tc.threadIdx().x;
      if (i >= seq) return;
      float m = -1e30f;
      for (std::uint32_t j = 0; j < seq; ++j) {
        const float s = scores.Ld(tc, kLdScore, std::uint64_t{i} * seq + j);
        if (s > m) m = s;
      }
      float sum = 0.0f;
      for (std::uint32_t j = 0; j < seq; ++j) {
        sum += std::exp(scores.Ld(tc, kLdScore, std::uint64_t{i} * seq + j) -
                        m);
      }
      for (std::uint32_t j = 0; j < seq; ++j) {
        const float e = std::exp(
            scores.Ld(tc, kLdScore, std::uint64_t{i} * seq + j) - m);
        probs.St(tc, kStProb, std::uint64_t{i} * seq + j, e / sum);
      }
    };
    g.AddNode(std::move(node));
  }

  {
    exec::GraphNode node;
    node.name = "attn_ctx";
    node.cfg = Cfg1D(seq * dim);
    node.reads = {"probs", "V"};
    node.writes = {"ctx"};
    node.body = [=](exec::ThreadCtx& tc) {
      const std::uint32_t t =
          tc.blockIdx().x * tc.blockDim().x + tc.threadIdx().x;
      if (t >= seq * dim) return;
      const std::uint32_t i = t / dim;
      const std::uint32_t d = t % dim;
      float acc = 0.0f;
      for (std::uint32_t j = 0; j < seq; ++j) {
        acc += probs.Ld(tc, kLdProb, std::uint64_t{i} * seq + j) *
               v.Ld(tc, kLdV, std::uint64_t{j} * dim + d);
      }
      ctx.St(tc, kStCtx, std::uint64_t{i} * dim + d, acc);
    };
    g.AddNode(std::move(node));
  }

  {
    const auto wo = wo_;
    exec::GraphNode node;
    node.name = "out_proj";
    node.cfg = Cfg1D(seq * dim);
    node.reads = {"ctx", "Wo"};
    node.writes = {"attn_out"};
    node.body = [=](exec::ThreadCtx& tc) {
      const std::uint32_t t =
          tc.blockIdx().x * tc.blockDim().x + tc.threadIdx().x;
      if (t >= seq * dim) return;
      const std::uint32_t i = t / dim;
      const std::uint32_t d = t % dim;
      float acc = 0.0f;
      for (std::uint32_t e = 0; e < dim; ++e) {
        acc += ctx.Ld(tc, kLdCtx, std::uint64_t{i} * dim + e) *
               wo.Ld(tc, kLdWo, std::uint64_t{e} * dim + d);
      }
      attn_out.St(tc, kStAttnOut, std::uint64_t{i} * dim + d, acc);
    };
    g.AddNode(std::move(node));
  }

  {
    exec::GraphNode node;
    node.name = "layernorm";
    node.cfg = Cfg1D(seq);
    node.reads = {"attn_out", "X", "ln_gamma", "ln_beta"};
    node.writes = {"Y"};
    node.body = [=](exec::ThreadCtx& tc) {
      const std::uint32_t i =
          tc.blockIdx().x * tc.blockDim().x + tc.threadIdx().x;
      if (i >= seq) return;
      // Residual add + layernorm, two passes over the row (the second
      // re-reads attn_out and X rather than caching — thread-private
      // buffers are not part of the access model).
      float mean = 0.0f;
      for (std::uint32_t d = 0; d < dim; ++d) {
        mean += attn_out.Ld(tc, kLdAttnOut, std::uint64_t{i} * dim + d) +
                x.Ld(tc, kLdXLn, std::uint64_t{i} * dim + d);
      }
      mean /= static_cast<float>(dim);
      float var = 0.0f;
      for (std::uint32_t d = 0; d < dim; ++d) {
        const float h =
            attn_out.Ld(tc, kLdAttnOut, std::uint64_t{i} * dim + d) +
            x.Ld(tc, kLdXLn, std::uint64_t{i} * dim + d);
        var += (h - mean) * (h - mean);
      }
      var /= static_cast<float>(dim);
      const float inv = 1.0f / std::sqrt(var + 1e-5f);
      for (std::uint32_t d = 0; d < dim; ++d) {
        const float h =
            attn_out.Ld(tc, kLdAttnOut, std::uint64_t{i} * dim + d) +
            x.Ld(tc, kLdXLn, std::uint64_t{i} * dim + d);
        y.St(tc, kStY, std::uint64_t{i} * dim + d,
             gamma.Ld(tc, kLdGamma, d) * (h - mean) * inv +
                 beta.Ld(tc, kLdBeta, d));
      }
    };
    g.AddNode(std::move(node));
  }

  g.ConnectByObjects();
  return g;
}

double TransformerApp::OutputError(std::span<const float> golden,
                                   std::span<const float> observed) const {
  return metrics::VectorDiffFractionRel(golden, observed, 1e-6, 1e-6);
}

}  // namespace dcrm::apps
