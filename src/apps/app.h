// Application model: each studied GPGPU application (Table II) is a
// set of kernel launches over named device data objects, plus the
// app-specific output error metric used to classify a run as SDC.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/kernel.h"
#include "exec/kernel_graph.h"
#include "exec/launcher.h"
#include "mem/device_memory.h"

namespace dcrm::apps {

struct KernelLaunch {
  std::string name;
  exec::LaunchConfig cfg;
  exec::KernelFn body;
};

class App {
 public:
  virtual ~App() = default;

  virtual std::string Name() const = 0;

  // Allocates and deterministically initializes every data object in
  // `dev`, remembering the handles for Kernels(). Called once per
  // device; campaign re-runs restore the store snapshot instead.
  virtual void Setup(mem::DeviceMemory& dev) = 0;

  // Kernel launches in program order. Valid after Setup(). For
  // graph-declared apps this is the deterministic topological
  // linearization of Graph() (see GraphKernels).
  virtual std::vector<KernelLaunch> Kernels() = 0;

  // Kernel-graph declaration: nodes with object read/write sets,
  // edges as data dependencies. The default is the compatibility shim
  // — a single chain over Kernels() linked by ordering-only edges —
  // which executes in exactly the legacy order, so list-style apps
  // migrate without any trace/golden/fingerprint change. Multi-kernel
  // DAG apps override this and derive Kernels() from it instead.
  virtual exec::KernelGraph Graph();

  // Names of the output data objects, in comparison order.
  virtual std::vector<std::string> OutputObjects() const = 0;

  // Table II error metric between golden and observed outputs
  // (concatenated output objects, as floats).
  virtual double OutputError(std::span<const float> golden,
                             std::span<const float> observed) const = 0;

  // Error above this threshold classifies the run as an SDC.
  virtual double SdcThreshold() const = 0;
  virtual std::string MetricName() const = 0;

  // Modeled arithmetic intensity for the timing simulator (cycles of
  // dependent ALU work per memory instruction).
  virtual std::uint32_t AluCyclesPerMem() const { return 8; }
};

// Runs all kernels functionally, in the graph's deterministic
// topological order. Exceptions (DetectionTerminated, DueError)
// propagate to the caller.
void RunKernels(App& app, exec::DataPlane& plane, exec::AccessSink* sink);

// Flattens a kernel graph into the legacy launch-list form, in
// TopoOrder() — how graph-declared apps implement Kernels().
std::vector<KernelLaunch> GraphKernels(exec::KernelGraph graph);

// Reads the app's output objects (through the faulty read path) into
// one float vector.
std::vector<float> ReadOutputs(const App& app, const mem::DeviceMemory& dev);

}  // namespace dcrm::apps
