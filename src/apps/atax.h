// P-ATAX (Polybench): y = A^T (A x).
// Hot data object: x — broadcast-read by every thread of kernel 1.
// (tmp is also broadcast-read in kernel 2, but it is written by
// kernel 1, so the paper's read-only schemes cannot cover it — a
// built-in example of the coverage gap the writable-object extension
// addresses.)
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class AtaxApp final : public App {
 public:
  explicit AtaxApp(std::uint32_t m = 256, std::uint32_t n = 256)
      : m_(m), n_(n) {}

  std::string Name() const override { return "P-ATAX"; }
  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override { return {"y"}; }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override {
    // Same rationale as the other Polybench apps (see bicg.h).
    return 0.05;
  }
  std::string MetricName() const override {
    return "fraction of differing output vector elements";
  }
  std::uint32_t AluCyclesPerMem() const override { return 6; }

 private:
  std::uint32_t m_, n_;
  exec::ArrayRef<float> a_, x_, tmp_, y_;
};

}  // namespace dcrm::apps
